package repro_test

// One benchmark per experiment of DESIGN.md's per-experiment index. The
// E-series benchmarks regenerate the paper's figures/theorems (their first
// iteration also asserts the paper's qualitative shape); the P-series
// measures the substrate.

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/base"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tm"
)

// E1 — Figure 1(a): the consensus (l,k) plane.
func BenchmarkFigure1aConsensusPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc, err := core.Figure1a(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s, _ := pc.StrongestImplementable()
			w, _ := pc.WeakestNonImplementable()
			b.Logf("\n%sstrongest white %v, weakest black %v", pc.Render(), s, w)
			if s != (core.LKPoint{L: 1, K: 1}) || w != (core.LKPoint{L: 1, K: 2}) {
				b.Fatalf("panel (a) shape mismatch: %v %v", s, w)
			}
		}
	}
}

// E2 — Figure 1(b): the TM opacity (l,k) plane.
func BenchmarkFigure1bTMPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := core.Figure1b(4)
		if i == 0 {
			s, _ := pc.StrongestImplementable()
			w, _ := pc.WeakestNonImplementable()
			b.Logf("\n%sstrongest white %v, weakest black %v", pc.Render(), s, w)
			if s != (core.LKPoint{L: 1, K: 4}) || w != (core.LKPoint{L: 2, K: 2}) {
				b.Fatalf("panel (b) shape mismatch: %v %v", s, w)
			}
		}
	}
}

// E3 — Corollary 4.5: F1 ∩ F2 = ∅ for consensus, so G_max = ∅ and no
// weakest excluding liveness exists.
func BenchmarkCorollary45GmaxEmpty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f1 := core.NewHistorySet("F1", adversary.ConsensusF1(0, 1)...)
		f2 := core.NewHistorySet("F2", adversary.ConsensusF2(0, 1)...)
		g := core.Gmax(f1, f2)
		if !g.Empty() {
			b.Fatal("Gmax must be empty")
		}
	}
}

// E4 — Corollary 4.6: the swapped TM adversary sets are disjoint.
func BenchmarkCorollary46TMGmaxEmpty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a1 := adversary.NewTMStarve(1, 2)
		h1 := a1.Attack(tm.NewI12(2), 2, 200).H
		a2 := adversary.NewTMStarve(2, 1)
		h2 := a2.Attack(tm.NewI12(2), 2, 200).H
		g := core.Gmax(core.NewHistorySet("F1", h1), core.NewHistorySet("F2", h2))
		if !g.Empty() {
			b.Fatal("TM Gmax must be empty")
		}
	}
}

// E5 — Theorem 4.9 (and Corollaries 4.10/4.11): the trivial
// implementations give incomparable liveness properties.
func BenchmarkTheorem49TrivialImpls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.CheckTheorem49(5)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Holds() {
			b.Fatalf("Theorem 4.9 failed:\n%s", r)
		}
	}
}

// E6 — Theorem 5.2: strongest/weakest points for register consensus.
func BenchmarkTheorem52(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc, err := core.Figure1a(3)
		if err != nil {
			b.Fatal(err)
		}
		s, okS := pc.StrongestImplementable()
		w, okW := pc.WeakestNonImplementable()
		if !okS || !okW || s != (core.LKPoint{L: 1, K: 1}) || w != (core.LKPoint{L: 1, K: 2}) {
			b.Fatalf("Theorem 5.2 mismatch: %v %v", s, w)
		}
	}
}

// E7 — Theorem 5.3: strongest/weakest points for TM + opacity, and their
// incomparability.
func BenchmarkTheorem53(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := core.Figure1b(4)
		s, okS := pc.StrongestImplementable()
		w, okW := pc.WeakestNonImplementable()
		if !okS || !okW || s != (core.LKPoint{L: 1, K: 4}) || w != (core.LKPoint{L: 2, K: 2}) {
			b.Fatalf("Theorem 5.3 mismatch: %v %v", s, w)
		}
		if s.Comparable(w) {
			b.Fatal("(1,n) and (2,2) must be incomparable")
		}
	}
}

// E8 — Lemma 5.4: I12 ensures opacity, property S, and (1,2)-freedom.
func BenchmarkLemma54I12(b *testing.B) {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.Config{
			Procs:     2,
			Object:    tm.NewI12(2),
			Env:       tm.TxnLoop(tpl),
			Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
			MaxSteps:  400,
		})
		if !(safety.PropertyS{}).Holds(res.H) {
			b.Fatal("I12 must ensure S")
		}
		e := liveness.FromResult(res, 0)
		if !(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(e) {
			b.Fatal("I12 must ensure (1,2)-freedom")
		}
	}
}

// E9 — Section 5.3 counterexample: two incomparable minimal black points
// against property S.
func BenchmarkSection53Counterexample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pc := core.Section53Plane(4)
		mb := pc.MinimalBlacks()
		if len(mb) != 2 {
			b.Fatalf("want two minimal blacks, got %v", mb)
		}
		if _, ok := pc.WeakestNonImplementable(); ok {
			b.Fatal("no unique weakest may exist for S")
		}
	}
}

// E10 — Theorem 4.4 on finite models (both the positive and the negative
// instance, plus the exhaustive sweep).
func BenchmarkTheorem44Gmax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []*core.FiniteModel{core.ModelWithWeakest(), core.ModelWithoutWeakest()} {
			r, err := m.CheckTheorem44()
			if err != nil {
				b.Fatal(err)
			}
			if !r.Agrees {
				b.Fatal("Theorem 4.4 must hold")
			}
		}
	}
}

// P1 — simulator step throughput.
func BenchmarkSimSteps(b *testing.B) {
	obj := consensus.NewCASBased()
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    obj,
		Env:       consensus.ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Limit(sim.Alternate(1, 2), b.N),
		MaxSteps:  b.N + 1,
	})
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ReportMetric(float64(res.Steps), "steps/run")
}

// P1 — linearizability checker cost against history length.
func BenchmarkLinearizabilityChecker(b *testing.B) {
	for _, ops := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			h := concurrentRegisterHistory(ops)
			spec := safety.RegisterSpec{Initial: 0}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !safety.Linearizable(spec, h) {
					b.Fatal("history must be linearizable")
				}
			}
		})
	}
}

// concurrentRegisterHistory builds a linearizable history of ops
// operations with overlapping writes and reads.
func concurrentRegisterHistory(ops int) history.History {
	var h history.History
	val := 0
	for i := 0; i < ops/2; i++ {
		h = append(h,
			history.Invoke(1, "write", i),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", val),
			history.Response(1, "write", history.OK),
		)
		val = i
	}
	return h
}

// P1 — opacity checker cost against transaction count.
func BenchmarkOpacityChecker(b *testing.B) {
	for _, txs := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("txs=%d", txs), func(b *testing.B) {
			h := tmChainHistory(txs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !safety.Opaque(h) {
					b.Fatal("history must be opaque")
				}
			}
		})
	}
}

// tmChainHistory builds txs sequentially-overlapping committed
// transactions on two variables.
func tmChainHistory(txs int) history.History {
	var h history.History
	val := 0
	for i := 0; i < txs; i++ {
		p := i%2 + 1
		h = append(h,
			history.Invoke(p, history.TMStart, nil),
			history.Response(p, history.TMStart, history.OK),
			history.InvokeObj(p, history.TMRead, "x", nil),
			history.ResponseObj(p, history.TMRead, "x", val),
			history.InvokeObj(p, history.TMWrite, "x", val+1),
			history.ResponseObj(p, history.TMWrite, "x", history.OK),
			history.Invoke(p, history.TMTryC, nil),
			history.Response(p, history.TMTryC, history.Commit),
		)
		val++
	}
	return h
}

// P1 — TM commit throughput under contention, per implementation.
func BenchmarkTMCommitThroughput(b *testing.B) {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	impls := []struct {
		name string
		mk   func() sim.Object
	}{
		{"I12", func() sim.Object { return tm.NewI12(2) }},
		{"GlobalCAS", func() sim.Object { return tm.NewGlobalCAS(2) }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			commits := 0
			steps := 0
			for i := 0; i < b.N; i++ {
				res := sim.Run(sim.Config{
					Procs:     2,
					Object:    impl.mk(),
					Env:       tm.TxnLoop(tpl),
					Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
					MaxSteps:  400,
				})
				steps += res.Steps
				for _, e := range res.H {
					if e.Kind == history.KindResponse && e.Val == history.Commit {
						commits++
					}
				}
			}
			b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
	}
}

// P1 — bivalence adversary cost against schedule length.
func BenchmarkBivalenceAdversary(b *testing.B) {
	for _, steps := range []int{40, 80, 160} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				adv := &adversary.Bivalence{
					NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
					V1:        0,
					V2:        1,
				}
				res, err := adv.Run(steps)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Probes), "probes")
				}
			}
		})
	}
}

// P1 — exhaustive exploration throughput.
func BenchmarkExhaustiveExplore(b *testing.B) {
	prop := safety.AgreementValidity{}
	for i := 0; i < b.N; i++ {
		st, err := explore.Run(explore.Config{
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth: 10,
			Check: explore.CheckSafety("agreement+validity", prop.Holds),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(st.Prefixes), "prefixes")
		}
	}
}

// P1 — base-object step overhead through the full scheduler handshake.
func BenchmarkBaseObjectStep(b *testing.B) {
	reg := base.NewRegister("r", 0)
	obj := sim.ObjectFunc(func(p *sim.Proc, inv sim.Invocation) history.Value {
		return reg.Read(p)
	})
	res := sim.Run(sim.Config{
		Procs:     1,
		Object:    obj,
		Env:       sim.Repeat(sim.Invocation{Op: "read"}),
		Scheduler: &sim.RoundRobin{},
		MaxSteps:  b.N + 1,
	})
	if res.Err != nil {
		b.Fatal(res.Err)
	}
}
