// Package repro is a from-scratch Go reproduction of "Safety-Liveness
// Exclusion in Distributed Computing" (Bushkov & Guerraoui, PODC 2015).
//
// The public API lives in the slx package tree: slx (the unified
// Property/Checker surface — safety and liveness judged through one
// Check(Execution) Verdict interface, with replayable witness
// schedules), slx/hist, slx/run, slx/check, slx/consensus, slx/tm,
// slx/mutex, slx/adversary and slx/plane. Import those; see README.md
// for a quickstart.
//
// The repository mechanizes the paper's framework — histories, I/O
// automata, safety and liveness properties, adversary sets, the
// (l,k)-freedom lattice — and executes every argument of the paper against
// real implementations running on a deterministic shared-memory simulator:
//
//   - internal/history, internal/automata: the formal substrate of
//     Section 2 (events, histories, h|p_i projections, I/O automata with
//     the paper's composition and fairness).
//   - internal/base, internal/sim: atomic base objects and the
//     scheduler-driven asynchronous shared-memory system; the scheduler is
//     the paper's adversarial external scheduler.
//   - internal/safety, internal/liveness: linearizability, consensus
//     agreement+validity, TM opacity, strict serializability and the
//     Section 5.3 property S; wait/lock/obstruction-freedom, local
//     progress and the (l,k)-freedom family of Definition 5.1.
//   - internal/consensus, internal/tm: commit-adopt obstruction-free
//     consensus from registers, CAS-based wait-free consensus, the paper's
//     Algorithm 1 (I(1,2)) and the AGP-style global-CAS TM.
//   - internal/adversary: the bivalence adversary, the TM starvation
//     strategy of Section 4.1, the Section 5.3 three-process adversary and
//     the swapped adversary sets F1/F2.
//   - internal/core: the exclusion engine — plane classification (Figure
//     1), G_max and Theorem 4.4 (verified by brute force on finite
//     models), and Theorem 4.9 over the trivial implementations.
//   - internal/explore: exhaustive bounded model checking of the positive
//     (implementability) claims.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// every figure and theorem of the paper's evaluation; cmd/figures prints
// Figure 1.
package repro
