package repro_test

// Sampling-throughput benchmarks for the probabilistic mass-exploration
// engine (slx.WithSample): PCT schedules over the depth-10, 3-process
// linearizability workload, on the default session-reuse engine and on
// the from-root replay fallback (slx.WithReplayExecution). The
// acceptance bar — session reuse measurably cheaper than from-root
// replay — is gated by TestSampleSessionReuseCheaper on deterministic
// allocation counts (the two engines grant identical simulator steps by
// construction: restoring the root mark re-grants zero rebuild steps,
// which the test also pins), so regressions fail the benchmark smoke
// run. Committed figures live in BENCH_explore.json's "sample" and
// "sample_replay" sections.

import (
	"testing"

	"repro/slx"
)

// sampleSchedules is the per-Explore schedule budget of the sampling
// benchmarks and the engine-cost gate.
const sampleSchedules = 200

// sampleChecker is the depth-10 sampling variant of the depth-7
// exhaustive workload: same register object, same 3-process
// write-then-read scripts, PCT with 3 change points under a fixed
// master seed.
func sampleChecker(extra ...slx.Option) *slx.Checker {
	opts := []slx.Option{
		slx.WithDepth(10),
		slx.WithSample(sampleSchedules, 3),
		slx.WithSeed(11),
	}
	return linExploreChecker(append(opts, extra...)...)
}

// TestSampleSessionReuseCheaper is the acceptance gate of the sampling
// engines: per sampled schedule, the session-reuse engine must allocate
// at most 0.8x what the from-root replay fallback allocates (measured
// 0.73x: the monitor and property work is shared, the saving is the
// per-schedule runtime/object/environment construction replay repeats),
// while granting exactly the same simulator steps — the engines consult
// the strategy identically, and session reset is a root-mark restore
// that rebuilds zero steps, which the test pins via Resims == 0.
func TestSampleSessionReuseCheaper(t *testing.T) {
	sess, err := sampleChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("session sample: %v", err)
	}
	repl, err := sampleChecker(slx.WithReplayExecution()).Explore(linProp())
	if err != nil {
		t.Fatalf("replay sample: %v", err)
	}
	if !sess.OK() || !repl.OK() {
		t.Fatalf("register must be linearizable on every schedule (session OK=%v, replay OK=%v)", sess.OK(), repl.OK())
	}
	if sess.Schedules != repl.Schedules || sess.SimSteps != repl.SimSteps ||
		sess.DistinctStates != repl.DistinctStates || sess.EventScans != repl.EventScans {
		t.Fatalf("engines sampled different runs:\nsession %d schedules / %d steps / %d states / %d scans\nreplay  %d schedules / %d steps / %d states / %d scans",
			sess.Schedules, sess.SimSteps, sess.DistinctStates, sess.EventScans,
			repl.Schedules, repl.SimSteps, repl.DistinctStates, repl.EventScans)
	}
	if sess.Resims != 0 {
		t.Fatalf("session reset must restore the root mark without rebuild steps, re-simulated %d", sess.Resims)
	}

	sessAllocs := testing.AllocsPerRun(5, func() {
		if _, err := sampleChecker().Explore(linProp()); err != nil {
			t.Fatal(err)
		}
	})
	replAllocs := testing.AllocsPerRun(5, func() {
		if _, err := sampleChecker(slx.WithReplayExecution()).Explore(linProp()); err != nil {
			t.Fatal(err)
		}
	})
	if sessAllocs > 0.8*replAllocs {
		t.Fatalf("session engine allocated %.0f per %d schedules, want <= 0.8x replay's %.0f",
			sessAllocs, sampleSchedules, replAllocs)
	}
	t.Logf("%d schedules depth-10: allocs session=%.0f replay=%.0f (%.2fx fewer), simSteps=%d, distinct states=%d",
		sampleSchedules, sessAllocs, replAllocs, replAllocs/sessAllocs, sess.SimSteps, sess.DistinctStates)
}

// BenchmarkSampleThroughput measures the default sampling path: PCT
// schedules on one persistent session reset by root-mark restore.
func BenchmarkSampleThroughput(b *testing.B) {
	benchSampleThroughput(b, sampleChecker())
}

// BenchmarkSampleThroughputReplay measures the from-root replay
// fallback (the engine used for objects without the snapshot hook).
func BenchmarkSampleThroughputReplay(b *testing.B) {
	benchSampleThroughput(b, sampleChecker(slx.WithReplayExecution()))
}

func benchSampleThroughput(b *testing.B, c *slx.Checker) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := c.Explore(linProp())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("violation: %s", rep.Failures()[0])
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Schedules), "schedules")
			b.ReportMetric(float64(rep.DistinctStates), "distinctStates")
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*sampleSchedules)/sec, "schedules/sec")
	}
}
