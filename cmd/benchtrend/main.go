// Command benchtrend turns `go test -bench` output into a
// machine-readable JSON report and gates it against the committed
// baseline (BENCH_explore.json). CI pipes the Explore benchmark run
// through it: the JSON is uploaded as a build artifact (the perf
// trajectory of the exploration engine, one point per commit), and the
// process exits non-zero when a tracked metric regresses.
//
// Gates, per section present in both the run and the baseline:
//
//   - the prefixes and eventScans counts must not exceed baseline×ratio
//     (these are deterministic, so growth means a reduction — monitors,
//     POR, the state cache — actually regressed);
//   - the allocation counts (allocs/op and B/op from -benchmem) must
//     not exceed baseline×-allocratio (default 1.25). Exploration is
//     deterministic at one worker, so allocation counts are effectively
//     exact — the continuation runtime's pooling made them the engine's
//     primary cost signal, and a 25%+ growth means a pool or a reuse
//     path actually regressed. Sections whose allocation counts depend
//     on scheduler timing (work stealing, the HTTP service) carry a
//     looser per-section "alloc_gate_ratio" in the baseline file, which
//     overrides the flag for that section;
//   - sections may additionally declare absolute ceilings ("ns_gate",
//     "allocs_gate"): the monitor section carries the continuation
//     runtime's acceptance bar — ≥5× ns/op and ≤10% allocs/op vs the
//     retired goroutine runtime (16,085,683 ns and 156,806 allocs on
//     the reference host) — so re-baselining after a regression cannot
//     quietly lower the bar;
//   - the sampling sections' schedules and distinct_states counts must
//     match the baseline exactly (they are deterministic under the
//     benchmark's fixed master seed — drift is a behavior change);
//     their schedules/sec below baseline/-samplethroughput is advisory;
//   - prefixes/sec below baseline/ratio is reported in the artifact and
//     the log but is ADVISORY only: wall-clock throughput depends on
//     the host, and a contended shared CI runner must not fail a build
//     the deterministic counters prove clean.
//
// The historical -stepratio gate ((sim_steps+resim_steps)/prefixes of
// the monitor section, the incremental engine's acceptance bar) is
// retired: the continuation runtime restores control state by struct
// copy, so the bound is exact — zero resim steps, one sim step per
// non-root prefix — and TestExploreContinuationSteps pins it directly.
//
// Usage:
//
//	go test -bench 'ExploreLinearizability|SampleThroughput' -benchmem -benchtime 1x -run '^$' . | benchtrend -baseline BENCH_explore.json -out bench-trend.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sections maps benchmark names to baseline section keys. Baseline
// sections without a live benchmark (e.g. the retired first-level-split
// scheduler, kept for the historical comparison) are simply not gated.
var sections = map[string]string{
	"BenchmarkExploreLinearizabilityMonitor":  "monitor",
	"BenchmarkExploreLinearizabilityReplay":   "replay_monitor",
	"BenchmarkExploreLinearizabilityBatch":    "batch",
	"BenchmarkExploreLinearizabilityPOR":      "por",
	"BenchmarkExploreLinearizabilityCache":    "cache",
	"BenchmarkExploreLinearizabilityCachePOR": "cache_por",
	"BenchmarkExploreLinearizabilityWorkers4": "parallel_work_stealing",
	"BenchmarkExploreRecoveryMonitor":         "recovery",
	"BenchmarkExploreRecoveryCachePOR":        "recovery_cache_por",
	"BenchmarkSampleThroughput":               "sample",
	"BenchmarkSampleThroughputReplay":         "sample_replay",
	"BenchmarkServiceThroughput":              "service",
}

// metrics is one section's measurements, in the baseline's JSON shape.
type metrics struct {
	NsPerOp         float64 `json:"ns_per_op"`
	Prefixes        float64 `json:"prefixes,omitempty"`
	SimSteps        float64 `json:"sim_steps,omitempty"`
	ResimSteps      float64 `json:"resim_steps,omitempty"`
	EventScans      float64 `json:"event_scans,omitempty"`
	PrefixesPerSec  float64 `json:"prefixes_per_sec,omitempty"`
	Schedules       float64 `json:"schedules,omitempty"`
	DistinctStates  float64 `json:"distinct_states,omitempty"`
	SchedulesPerSec float64 `json:"schedules_per_sec,omitempty"`
	JobsPerSec      float64 `json:"jobs_per_sec,omitempty"`
	AllocsPerOp     float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp      float64 `json:"bytes_per_op,omitempty"`
	// AllocRatio, set only in baseline sections, overrides -allocratio
	// for that section's allocation gates (work stealing and the HTTP
	// service allocate timing-dependently and need headroom).
	AllocRatio float64 `json:"alloc_gate_ratio,omitempty"`
	// NsGate and AllocsGate, set only in baseline sections, are
	// absolute ceilings: the continuation runtime's acceptance bar
	// (≥5× ns/op, ≤10% allocs/op vs the retired goroutine runtime)
	// frozen as numbers so the bar itself can never drift with the
	// baseline.
	NsGate     float64 `json:"ns_gate,omitempty"`
	AllocsGate float64 `json:"allocs_gate,omitempty"`
}

// comparison is one gate evaluation. Advisory comparisons (wall-clock
// throughput) are recorded but never fail the run.
type comparison struct {
	Section  string  `json:"section"`
	Metric   string  `json:"metric"`
	Measured float64 `json:"measured"`
	Baseline float64 `json:"baseline"`
	Ratio    float64 `json:"ratio"`
	OK       bool    `json:"ok"`
	Advisory bool    `json:"advisory,omitempty"`
}

// report is the uploaded artifact.
type report struct {
	Timestamp   string              `json:"timestamp"`
	Ratio       float64             `json:"max_regression_ratio"`
	Sections    map[string]*metrics `json:"sections"`
	Comparisons []comparison        `json:"comparisons"`
	Pass        bool                `json:"pass"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_explore.json", "committed baseline JSON")
	outPath := flag.String("out", "bench-trend.json", "where to write the trend report")
	ratio := flag.Float64("ratio", 2.0, "maximum tolerated regression factor of the deterministic work counts")
	allocRatio := flag.Float64("allocratio", 1.25, "maximum tolerated regression factor of allocs/op and B/op (per-section alloc_gate_ratio in the baseline overrides)")
	sampleRatio := flag.Float64("samplethroughput", 2.0, "advisory tolerated slowdown factor of the sampling sections' schedules/sec")
	flag.Parse()

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal("parse bench output: %v", err)
	}
	if len(measured) == 0 {
		fatal("no tracked benchmark lines found on stdin")
	}
	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal("load baseline: %v", err)
	}

	rep := &report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Ratio:     *ratio,
		Sections:  measured,
		Pass:      true,
	}
	for _, key := range sortedKeys(measured) {
		m := measured[key]
		b, ok := baseline[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtrend: note: no baseline section %q (new benchmark?)\n", key)
			continue
		}
		rep.checkAdvisory(key, "prefixes_per_sec", m.PrefixesPerSec, b.PrefixesPerSec, m.PrefixesPerSec >= b.PrefixesPerSec / *ratio)
		rep.check(key, "prefixes", m.Prefixes, b.Prefixes, m.Prefixes <= b.Prefixes**ratio)
		rep.check(key, "event_scans", m.EventScans, b.EventScans, m.EventScans <= b.EventScans**ratio)
		// Allocation gates: hard, with the baseline's per-section
		// alloc_gate_ratio taking precedence over the flag.
		ar := *allocRatio
		if b.AllocRatio > 0 {
			ar = b.AllocRatio
		}
		rep.check(key, "allocs_per_op", m.AllocsPerOp, b.AllocsPerOp, m.AllocsPerOp <= b.AllocsPerOp*ar)
		rep.check(key, "bytes_per_op", m.BytesPerOp, b.BytesPerOp, m.BytesPerOp <= b.BytesPerOp*ar)
		// Absolute acceptance ceilings, where the baseline declares them.
		rep.check(key, "ns_per_op_ceiling", m.NsPerOp, b.NsGate, m.NsPerOp <= b.NsGate)
		rep.check(key, "allocs_per_op_ceiling", m.AllocsPerOp, b.AllocsGate, m.AllocsPerOp <= b.AllocsGate)
		// Sampling sections: schedules and terminal-state coverage are
		// deterministic under the benchmark's fixed seed, so any drift is a
		// behavior change, not noise; wall-clock throughput stays advisory.
		rep.checkAdvisory(key, "schedules_per_sec", m.SchedulesPerSec, b.SchedulesPerSec, m.SchedulesPerSec >= b.SchedulesPerSec / *sampleRatio)
		// The service section is end-to-end wall clock (HTTP round trips
		// included), so its jobs/sec is advisory like the other rates.
		rep.checkAdvisory(key, "jobs_per_sec", m.JobsPerSec, b.JobsPerSec, m.JobsPerSec >= b.JobsPerSec / *sampleRatio)
		rep.check(key, "schedules", m.Schedules, b.Schedules, m.Schedules == b.Schedules)
		rep.check(key, "distinct_states", m.DistinctStates, b.DistinctStates, m.DistinctStates == b.DistinctStates)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal report: %v", err)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		fatal("write report: %v", err)
	}
	for _, c := range rep.Comparisons {
		status := "ok"
		switch {
		case !c.OK && c.Advisory:
			status = "SLOW (advisory, host-dependent — not gating)"
		case !c.OK:
			status = "REGRESSION"
		}
		fmt.Printf("%-22s %-16s measured %12.0f baseline %12.0f  %s\n", c.Section, c.Metric, c.Measured, c.Baseline, status)
	}
	if !rep.Pass {
		fatal("benchmark trend regressed past a gate (see %s)", *outPath)
	}
	fmt.Printf("bench trend ok: %d sections gated against %s\n", len(measured), *baselinePath)
}

func (r *report) check(section, metric string, measured, baseline float64, ok bool) {
	if baseline == 0 {
		return // metric not tracked for this section
	}
	r.Comparisons = append(r.Comparisons, comparison{
		Section: section, Metric: metric, Measured: measured, Baseline: baseline, Ratio: r.Ratio, OK: ok,
	})
	if !ok {
		r.Pass = false
	}
}

// checkAdvisory records a comparison that informs but never gates.
func (r *report) checkAdvisory(section, metric string, measured, baseline float64, ok bool) {
	if baseline == 0 {
		return
	}
	r.Comparisons = append(r.Comparisons, comparison{
		Section: section, Metric: metric, Measured: measured, Baseline: baseline, Ratio: r.Ratio, OK: ok, Advisory: true,
	})
}

// parseBench extracts the per-benchmark metrics from `go test -bench`
// output lines ("BenchmarkName[-P] N ns/op k metric ...").
func parseBench(f *os.File) (map[string]*metrics, error) {
	out := make(map[string]*metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		key, tracked := sections[name]
		if !tracked {
			continue
		}
		m := &metrics{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "prefixes":
				m.Prefixes = v
			case "simSteps":
				m.SimSteps = v
			case "resimSteps":
				m.ResimSteps = v
			case "eventScans":
				m.EventScans = v
			case "prefixes/sec":
				m.PrefixesPerSec = v
			case "schedules":
				m.Schedules = v
			case "distinctStates":
				m.DistinctStates = v
			case "schedules/sec":
				m.SchedulesPerSec = v
			case "jobs/sec":
				m.JobsPerSec = v
			case "allocs/op":
				m.AllocsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			}
		}
		out[key] = m
	}
	return out, sc.Err()
}

// loadBaseline reads the committed baseline's sections. The file's
// top-level keys mix metadata strings with section objects; anything
// that unmarshals into metrics counts as a section.
func loadBaseline(path string) (map[string]*metrics, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf, &raw); err != nil {
		return nil, err
	}
	out := make(map[string]*metrics)
	for key, msg := range raw {
		var m metrics
		if err := json.Unmarshal(msg, &m); err != nil {
			continue // metadata (strings, numbers), not a section
		}
		if m.NsPerOp > 0 || m.Prefixes > 0 || m.Schedules > 0 {
			out[key] = &m
		}
	}
	return out, nil
}

func sortedKeys(m map[string]*metrics) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchtrend: "+format+"\n", args...)
	os.Exit(1)
}
