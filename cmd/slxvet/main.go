// Command slxvet is the multichecker for the engine's static soundness
// contracts: it loads the requested packages and runs the four
// internal/lint analyzers (hookparity, canonenc, detorder, replaypure)
// over their non-test sources, printing one line per finding and
// exiting non-zero if any contract is violated.
//
// Usage:
//
//	go run ./cmd/slxvet [-facts dir] [packages]
//
// Packages default to ./... resolved in the current module. -facts
// names the analysis facts directory (per-package diagnostics keyed by
// source and dependency hashes); CI caches it across runs, and an
// empty value disables caching.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker; split from main for testing. Exit
// codes follow go vet: 0 clean, 1 findings, 2 operational failure.
func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("slxvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	facts := flags.String("facts", defaultFactsDir(), "analysis facts (cache) directory; empty disables caching")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "slxvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "slxvet:", err)
		return 2
	}
	cache, err := analysis.OpenCache(*facts)
	if err != nil {
		fmt.Fprintln(stderr, "slxvet:", err)
		return 2
	}
	diags, err := analysis.RunCached(pkgs, lint.Analyzers(), cache)
	if err != nil {
		fmt.Fprintln(stderr, "slxvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// defaultFactsDir places the cache under the user cache directory, or
// disables caching when none is available.
func defaultFactsDir() string {
	if env := os.Getenv("SLXVET_FACTS"); env != "" {
		return env
	}
	dir, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(dir, "slxvet")
}
