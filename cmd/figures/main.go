// Command figures regenerates Figure 1 of the paper (and the Section 5.3
// plane) by classifying the (l,k)-freedom lattice against running
// implementations and adversaries.
//
// Usage:
//
//	figures [-n 4] [-panel a|b|s|all]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/slx/plane"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 4, "plane bound (number of processes axis)")
	panel := flag.String("panel", "all", "panel to print: a, b, s, or all")
	flag.Parse()

	if *n < 2 || *n > 8 {
		return fmt.Errorf("n must be in [2,8], got %d", *n)
	}

	printPanel := func(name string, pc *plane.PlaneClassification) {
		fmt.Printf("=== Figure 1(%s) ===\n%s", name, pc.Render())
		if s, ok := pc.StrongestImplementable(); ok {
			fmt.Printf("strongest (l,k)-freedom that does not exclude S: %v\n", s)
		} else {
			fmt.Printf("strongest implementable: none (maximal whites %v)\n", pc.MaximalWhites())
		}
		if w, ok := pc.WeakestNonImplementable(); ok {
			fmt.Printf("weakest (l,k)-freedom that excludes S:          %v\n", w)
		} else {
			fmt.Printf("weakest non-implementable: none (minimal blacks %v)\n", pc.MinimalBlacks())
		}
		fmt.Println()
	}

	if *panel == "a" || *panel == "all" {
		pc, err := plane.Figure1a(*n)
		if err != nil {
			return err
		}
		printPanel("a", pc)
	}
	if *panel == "b" || *panel == "all" {
		printPanel("b", plane.Figure1b(*n))
	}
	if *panel == "s" || *panel == "all" {
		pc := plane.Section53Plane(*n)
		fmt.Printf("=== Section 5.3 counterexample ===\n%s", pc.Render())
		fmt.Printf("maximal whites: %v\n", pc.MaximalWhites())
		fmt.Printf("minimal blacks: %v — ", pc.MinimalBlacks())
		if _, ok := pc.WeakestNonImplementable(); !ok {
			fmt.Println("incomparable, so no weakest (l,k)-freedom excludes S")
		} else {
			fmt.Println("unexpected unique weakest")
		}
	}
	return nil
}
