// Command slx (Safety-Liveness eXclusion) runs the individual experiments
// of the reproduction through the public slx API.
//
// Usage:
//
//	slx bivalence [-steps 140]           FLP/CIL adversary vs register consensus
//	slx tmstarve  [-impl i12] [-steps 600]  Section 4.1 TM adversary
//	slx s3        [-steps 900]           Section 5.3 three-process adversary
//	slx gmax                             Corollaries 4.5 / 4.6 (G_max = ∅)
//	slx theorem44                        Theorem 4.4 on finite models
//	slx theorem49                        Theorem 4.9 over I_t / I_b automata
//	slx explore   [-target consensus] [-depth 12]  exhaustive safety check
//	slx explore   -sample [-schedules N] [-d K] [-seed S]  probabilistic (PCT) check
//	slx submit    [-addr URL] [-wait] ...        submit a check job to an slxd daemon
//	slx status    [-addr URL] [job-id]           show one slxd job, or list all
//	slx report                           full paper-versus-measured summary
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/service"
	"repro/slx"
	"repro/slx/adversary"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/plane"
	"repro/slx/run"
	"repro/slx/tm"
)

// command is one slx subcommand. The usage message is generated from
// this table, so dispatch and documentation cannot drift apart.
type command struct {
	name     string
	synopsis string // flags summary, empty when the command takes none
	about    string
	run      func(args []string) error
}

// commands is the subcommand table; dispatch and usage both read it.
var commands = []command{
	{"bivalence", "[-steps 140]", "FLP/CIL adversary vs register consensus", cmdBivalence},
	{"tmstarve", "[-impl i12] [-steps 600]", "Section 4.1 TM adversary", cmdTMStarve},
	{"s3", "[-steps 900]", "Section 5.3 three-process adversary", cmdS3},
	{"gmax", "", "Corollaries 4.5 / 4.6 (G_max = ∅)", func([]string) error { return cmdGmax() }},
	{"theorem44", "", "Theorem 4.4 on finite models", func([]string) error { return cmdTheorem44() }},
	{"theorem49", "", "Theorem 4.9 over I_t / I_b automata", func([]string) error { return cmdTheorem49() }},
	{"explore", "[-target consensus] [-depth 12] [-crashes n] [-recoveries n] [-batch] [-por] [-cache] [-workers n] [-replay] [-timeout d] [-sample] [-schedules n] [-d k] [-seed s] [-walk]", "exhaustive or sampled (PCT) safety check", cmdExplore},
	{"submit", "[-addr url] [-wait] <explore flags>", "submit a check job to an slxd daemon", cmdSubmit},
	{"status", "[-addr url] [job-id]", "show one slxd job, or list all", cmdStatus},
	{"report", "", "full paper-versus-measured summary", func([]string) error { return cmdReport() }},
}

// baseContext parents explore's signal context; tests swap it to drive
// the interrupt path without delivering a real SIGINT to the process.
var baseContext = context.Background()

// exitCodeError carries a specific process exit code through dispatch:
// interrupted explorations exit 130 (the shell's SIGINT convention) and
// timed-out ones 124 (the timeout(1) convention), distinct from the
// generic 1 of a found violation.
type exitCodeError struct {
	code int
	err  error
}

func (e *exitCodeError) Error() string { return e.err.Error() }
func (e *exitCodeError) Unwrap() error { return e.err }

// exitCode maps a dispatch error to the process exit code.
func exitCode(err error) int {
	var ec *exitCodeError
	if errors.As(err, &ec) {
		return ec.code
	}
	return 1
}

// usage renders the one-line and per-command usage from the table.
func usage() string {
	names := make([]string, len(commands))
	var b strings.Builder
	for i, c := range commands {
		names[i] = c.name
		fmt.Fprintf(&b, "\n  slx %-10s %-28s %s", c.name, c.synopsis, c.about)
	}
	return fmt.Sprintf("usage: slx <%s> [flags]%s", strings.Join(names, "|"), b.String())
}

func main() {
	if err := dispatch(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slx:", err)
		os.Exit(exitCode(err))
	}
}

func dispatch(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usage())
	}
	for _, c := range commands {
		if c.name == args[0] {
			return c.run(args[1:])
		}
	}
	return fmt.Errorf("unknown subcommand %q\n%s", args[0], usage())
}

func cmdBivalence(args []string) error {
	fs := flag.NewFlagSet("bivalence", flag.ContinueOnError)
	steps := fs.Int("steps", 140, "length of the fair non-deciding schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat := adversary.NewBivalenceStrategy(0, 1)
	c := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithProcs(2),
		slx.WithMaxSteps(*steps),
	)
	rep, err := c.Adversary(strat,
		check.LK(1, 2, nil),
		check.LK(1, 1, nil),
		check.AgreementValidity(),
	)
	if err != nil {
		return err
	}
	e := rep.Execution
	fmt.Printf("constructed a fair %d-step schedule with %d solo probes\n", len(rep.Schedule), strat.Probes())
	fmt.Printf("steps: p1=%d p2=%d\n", e.StepsBy[1], e.StepsBy[2])
	fmt.Printf("external history: %s\n", e.H)
	lk12, _ := rep.Verdict("(1,2)-freedom")
	lk11, _ := rep.Verdict("(1,1)-freedom")
	av, _ := rep.Verdict("agreement+validity")
	fmt.Printf("(1,2)-freedom holds: %v (expected false)\n", lk12.Holds)
	fmt.Printf("(1,1)-freedom holds: %v (vacuously true)\n", lk11.Holds)
	fmt.Printf("agreement+validity holds: %v\n", av.Holds)
	return nil
}

func cmdTMStarve(args []string) error {
	fs := flag.NewFlagSet("tmstarve", flag.ContinueOnError)
	impl := fs.String("impl", "i12", "TM implementation: i12 or globalcas")
	steps := fs.Int("steps", 600, "step budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var newObj func() run.Object
	switch *impl {
	case "i12":
		newObj = func() run.Object { return tm.NewI12(2) }
	case "globalcas":
		newObj = func() run.Object { return tm.NewGlobalCAS(2) }
	default:
		return fmt.Errorf("unknown impl %q", *impl)
	}
	strat := adversary.NewTMStarveStrategy(1, 2)
	c := slx.New(
		slx.WithObject(newObj),
		slx.WithProcs(2),
		slx.WithMaxSteps(*steps),
	)
	rep, err := c.Adversary(strat,
		check.LocalProgress(),
		check.LK(2, 2, check.TMGood()),
		check.Opacity(),
	)
	if err != nil {
		return err
	}
	commits := map[int]int{}
	for _, ev := range rep.Execution.H {
		if ev.Kind == hist.KindResponse && ev.Val == hist.Commit {
			commits[ev.Proc]++
		}
	}
	fmt.Printf("starvation cycles completed: %d\n", strat.Loops())
	fmt.Printf("victim committed: %v; commits per process: p1=%d p2=%d\n",
		strat.VictimCommitted(), commits[1], commits[2])
	lp, _ := rep.Verdict("local-progress")
	lk22, _ := rep.Verdict("(2,2)-freedom")
	op, _ := rep.Verdict("opacity")
	fmt.Printf("local progress holds: %v (expected false)\n", lp.Holds)
	fmt.Printf("(2,2)-freedom holds: %v (expected false)\n", lk22.Holds)
	fmt.Printf("opacity holds: %v (the adversary wins on liveness, not safety)\n", op.Holds)
	return nil
}

func cmdS3(args []string) error {
	fs := flag.NewFlagSet("s3", flag.ContinueOnError)
	steps := fs.Int("steps", 900, "step budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat := adversary.NewS3Strategy()
	c := slx.New(
		slx.WithObject(func() run.Object { return tm.NewI12(3) }),
		slx.WithProcs(3),
		slx.WithMaxSteps(*steps),
	)
	rep, err := c.Adversary(strat,
		check.LK(1, 3, check.TMGood()),
		check.PropertyS(),
	)
	if err != nil {
		return err
	}
	fmt.Printf("all-aborted rounds: %d; anyone committed: %v\n", strat.Rounds(), strat.Committed())
	lk13, _ := rep.Verdict("(1,3)-freedom")
	ps, _ := rep.Verdict("S(opacity+timestamp-abort)")
	fmt.Printf("(1,3)-freedom holds: %v (expected false)\n", lk13.Holds)
	fmt.Printf("property S holds: %v\n", ps.Holds)
	return nil
}

func cmdGmax() error {
	f1 := plane.NewHistorySet("F1", adversary.ConsensusF1(0, 1)...)
	f2 := plane.NewHistorySet("F2", adversary.ConsensusF2(0, 1)...)
	fmt.Printf("consensus: |F1|=%d |F2|=%d |F1∩F2|=%d → G_max empty: %v (Corollary 4.5)\n",
		f1.Len(), f2.Len(), plane.Intersect(f1, f2).Len(), plane.Gmax(f1, f2).Empty())

	a1 := adversary.NewTMStarve(1, 2)
	h1 := a1.Attack(tm.NewI12(2), 2, 200).H
	a2 := adversary.NewTMStarve(2, 1)
	h2 := a2.Attack(tm.NewI12(2), 2, 200).H
	g := plane.Gmax(plane.NewHistorySet("TM-F1", h1), plane.NewHistorySet("TM-F2", h2))
	fmt.Printf("TM: first events %s vs %s → G_max empty: %v (Corollary 4.6)\n",
		h1[0], h2[0], g.Empty())
	return nil
}

func cmdTheorem44() error {
	for _, tc := range []struct {
		name string
		m    *plane.FiniteModel
	}{
		{"model with weakest", plane.ModelWithWeakest()},
		{"model without weakest (corollary shape)", plane.ModelWithoutWeakest()},
	} {
		r, err := tc.m.CheckTheorem44()
		if err != nil {
			return err
		}
		fmt.Printf("%s: weakest exists=%v, Gmax∈F(Lmax)=%v, theorem agrees=%v\n",
			tc.name, r.WeakestExists, r.GmaxIsAdversary, r.Agrees)
	}
	return nil
}

func cmdTheorem49() error {
	r, err := plane.CheckTheorem49(5)
	if err != nil {
		return err
	}
	fmt.Print(r.String())
	fmt.Printf("all proof steps verified: %v\n", r.Holds())
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	target := fs.String("target", "consensus", fmt.Sprintf("check target: %s", strings.Join(service.TargetNames(), ", ")))
	depth := fs.Int("depth", 12, "schedule depth")
	crashes := fs.Int("crashes", 0, "crash budget (branch on crashing ready processes)")
	recoveries := fs.Int("recoveries", 0, "recovery budget (branch on recovering crashed processes; needs -crashes)")
	batch := fs.Bool("batch", false, "legacy batch checking (re-judge every prefix) instead of incremental monitors")
	por := fs.Bool("por", false, "sleep-set partial-order reduction (prune interleavings that only commute independent steps)")
	cache := fs.Bool("cache", false, "state-fingerprint cache (prune subtrees rooted at already-explored states)")
	workers := fs.Int("workers", 1, "explore with n work-stealing workers")
	replay := fs.Bool("replay", false, "force from-root replay execution (disable incremental sessions)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget; an expired exploration reports partial statistics and exits 124")
	sampleMode := fs.Bool("sample", false, "probabilistic sampling instead of exhaustive enumeration")
	schedules := fs.Int("schedules", 10000, "sampled schedules (with -sample)")
	d := fs.Int("d", 3, "PCT priority-change points per schedule (with -sample)")
	seed := fs.Int64("seed", 1, "master seed; schedule i uses seed+i (with -sample)")
	walk := fs.Bool("walk", false, "uniform random walk instead of PCT (with -sample)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tgt, ok := service.LookupTarget(*target)
	if !ok {
		return fmt.Errorf("unknown target %q (targets: %s)", *target, strings.Join(service.TargetNames(), ", "))
	}
	// Ctrl-C cancels the exploration instead of killing the process:
	// Explore unwinds with a partial, Interrupted report, which is
	// printed before exiting 130. A second SIGINT kills hard (stop()
	// restores default delivery once the context fires).
	ctx, stop := signal.NotifyContext(baseContext, os.Interrupt)
	defer stop()
	prop := tgt.Property()
	opts := append(tgt.Options(),
		slx.WithDepth(*depth), slx.WithWorkers(*workers), slx.WithContext(ctx))
	if *timeout > 0 {
		opts = append(opts, slx.WithTimeout(*timeout))
	}
	if *crashes > 0 {
		opts = append(opts, slx.WithCrashes(*crashes))
	}
	if *recoveries != 0 {
		opts = append(opts, slx.WithRecoveries(*recoveries))
	}
	if *batch {
		opts = append(opts, slx.WithBatchExplore())
	}
	if *por {
		opts = append(opts, slx.WithPOR())
	}
	if *cache {
		opts = append(opts, slx.WithStateCache())
	}
	if *replay {
		opts = append(opts, slx.WithReplayExecution())
	}
	if *sampleMode {
		opts = append(opts, slx.WithSample(*schedules, *d), slx.WithSeed(*seed))
		if *walk {
			opts = append(opts, slx.WithSampleWalk())
		}
	}
	start := time.Now()
	rep, err := slx.New(opts...).Explore(prop)
	elapsed := time.Since(start)
	if err != nil {
		if rep != nil && rep.Interrupted {
			if rep.Sampled {
				printSampleColumns(rep, elapsed)
			} else {
				fmt.Printf("interrupted after %d prefixes (%d simulator steps) in %.1fs: partial exploration, no verdicts\n",
					rep.Prefixes, rep.SimSteps, elapsed.Seconds())
			}
			code := 130
			if errors.Is(err, context.DeadlineExceeded) {
				code = 124
			}
			return &exitCodeError{code: code, err: fmt.Errorf("interrupted: %w", err)}
		}
		return err
	}
	if rep.Sampled {
		printSampleColumns(rep, elapsed)
	}
	if !rep.OK() {
		return fmt.Errorf("violation found: %s (witness %v)", rep.Failures()[0], rep.Witness())
	}
	if rep.Sampled {
		return nil
	}
	mode := "incremental monitors"
	if *batch {
		mode = "batch re-checking"
	}
	if *replay {
		mode += ", replay execution"
	} else {
		mode += ", incremental execution"
	}
	if *por {
		mode += ", POR"
	}
	if *cache {
		mode += ", state cache"
	}
	if rep.Workers > 1 {
		mode += fmt.Sprintf(", %d workers", rep.Workers)
	}
	fmt.Printf("explored %d schedule prefixes (%d simulator steps + %d resim steps, %d property-event scans via %s): no violation up to depth %d\n",
		rep.Prefixes, rep.SimSteps, rep.Resims, rep.EventScans, mode, *depth)
	if *por {
		fmt.Printf("partial-order reduction pruned %d subtrees\n", rep.Pruned)
	}
	if *cache {
		fmt.Printf("state cache pruned %d subtrees rooted at already-explored states\n", rep.CacheHits)
	}
	return nil
}

// printSampleColumns renders the sampling statistics. It runs before the
// violation error is returned, so the columns survive a non-zero exit.
func printSampleColumns(rep *slx.Report, elapsed time.Duration) {
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(rep.Schedules) / s
	}
	fmt.Printf("  %-18s %d\n", "schedules run", rep.Schedules)
	fmt.Printf("  %-18s %d\n", "distinct states", rep.DistinctStates)
	fmt.Printf("  %-18s %.0f\n", "schedules/sec", rate)
	if rep.FailingSeed != 0 {
		fmt.Printf("  %-18s %d  (replay with -sample -schedules 1 -seed %d)\n",
			"first failing seed", rep.FailingSeed, rep.FailingSeed)
	}
	if rep.Interrupted {
		fmt.Printf("  %-18s %s\n", "interrupted", "context cancelled before the schedule budget")
	}
	if rep.OK() && !rep.Interrupted {
		fmt.Printf("no violation on %d sampled schedules — probabilistic evidence, not exhaustive proof\n", rep.Schedules)
	}
}
