// Command slx (Safety-Liveness eXclusion) runs the individual experiments
// of the reproduction.
//
// Usage:
//
//	slx bivalence [-steps 140]           FLP/CIL adversary vs register consensus
//	slx tmstarve  [-impl i12] [-steps 600]  Section 4.1 TM adversary
//	slx s3        [-steps 900]           Section 5.3 three-process adversary
//	slx gmax                             Corollaries 4.5 / 4.6 (G_max = ∅)
//	slx theorem44                        Theorem 4.4 on finite models
//	slx theorem49                        Theorem 4.9 over I_t / I_b automata
//	slx explore   [-target consensus] [-depth 12]  exhaustive safety check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slx:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: slx <bivalence|tmstarve|s3|gmax|theorem44|theorem49|explore> [flags]")
	}
	switch args[0] {
	case "bivalence":
		return cmdBivalence(args[1:])
	case "tmstarve":
		return cmdTMStarve(args[1:])
	case "s3":
		return cmdS3(args[1:])
	case "gmax":
		return cmdGmax()
	case "theorem44":
		return cmdTheorem44()
	case "theorem49":
		return cmdTheorem49()
	case "explore":
		return cmdExplore(args[1:])
	case "report":
		return cmdReport()
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdBivalence(args []string) error {
	fs := flag.NewFlagSet("bivalence", flag.ContinueOnError)
	steps := fs.Int("steps", 140, "length of the fair non-deciding schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	adv := &adversary.Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        0,
		V2:        1,
	}
	res, err := adv.Run(*steps)
	if err != nil {
		return err
	}
	fmt.Printf("constructed a fair %d-step schedule with %d solo probes\n", len(res.Schedule), res.Probes)
	fmt.Printf("steps: p1=%d p2=%d\n", res.Run.StepsBy[1], res.Run.StepsBy[2])
	fmt.Printf("external history: %s\n", res.Run.H)
	e := liveness.FromResult(res.Run, 0)
	fmt.Printf("(1,2)-freedom holds: %v (expected false)\n", (liveness.LK{L: 1, K: 2}).Holds(e))
	fmt.Printf("(1,1)-freedom holds: %v (vacuously true)\n", (liveness.LK{L: 1, K: 1}).Holds(e))
	fmt.Printf("agreement+validity holds: %v\n", (safety.AgreementValidity{}).Holds(res.Run.H))
	return nil
}

func cmdTMStarve(args []string) error {
	fs := flag.NewFlagSet("tmstarve", flag.ContinueOnError)
	impl := fs.String("impl", "i12", "TM implementation: i12 or globalcas")
	steps := fs.Int("steps", 600, "step budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var obj sim.Object
	switch *impl {
	case "i12":
		obj = tm.NewI12(2)
	case "globalcas":
		obj = tm.NewGlobalCAS(2)
	default:
		return fmt.Errorf("unknown impl %q", *impl)
	}
	adv := adversary.NewTMStarve(1, 2)
	res := adv.Attack(obj, 2, *steps)
	if res.Err != nil {
		return res.Err
	}
	commits := map[int]int{}
	for _, e := range res.H {
		if e.Kind == history.KindResponse && e.Val == history.Commit {
			commits[e.Proc]++
		}
	}
	fmt.Printf("starvation cycles completed: %d\n", adv.Loops())
	fmt.Printf("victim committed: %v; commits per process: p1=%d p2=%d\n",
		adv.VictimCommitted(), commits[1], commits[2])
	e := liveness.FromResult(res, 0)
	fmt.Printf("local progress holds: %v (expected false)\n", (liveness.LocalProgress{}).Holds(e))
	fmt.Printf("(2,2)-freedom holds: %v (expected false)\n",
		(liveness.LK{L: 2, K: 2, Good: liveness.TMGood()}).Holds(e))
	fmt.Printf("opacity holds: %v (the adversary wins on liveness, not safety)\n", safety.Opaque(res.H))
	return nil
}

func cmdS3(args []string) error {
	fs := flag.NewFlagSet("s3", flag.ContinueOnError)
	steps := fs.Int("steps", 900, "step budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	adv := adversary.NewS3(3)
	res := adv.Attack(tm.NewI12(3), *steps)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("all-aborted rounds: %d; anyone committed: %v\n", adv.Rounds(), adv.Committed())
	e := liveness.FromResult(res, 0)
	fmt.Printf("(1,3)-freedom holds: %v (expected false)\n",
		(liveness.LK{L: 1, K: 3, Good: liveness.TMGood()}).Holds(e))
	fmt.Printf("property S holds: %v\n", (safety.PropertyS{}).Holds(res.H))
	return nil
}

func cmdGmax() error {
	f1 := core.NewHistorySet("F1", adversary.ConsensusF1(0, 1)...)
	f2 := core.NewHistorySet("F2", adversary.ConsensusF2(0, 1)...)
	fmt.Printf("consensus: |F1|=%d |F2|=%d |F1∩F2|=%d → G_max empty: %v (Corollary 4.5)\n",
		f1.Len(), f2.Len(), core.Intersect(f1, f2).Len(), core.Gmax(f1, f2).Empty())

	a1 := adversary.NewTMStarve(1, 2)
	h1 := a1.Attack(tm.NewI12(2), 2, 200).H
	a2 := adversary.NewTMStarve(2, 1)
	h2 := a2.Attack(tm.NewI12(2), 2, 200).H
	g := core.Gmax(core.NewHistorySet("TM-F1", h1), core.NewHistorySet("TM-F2", h2))
	fmt.Printf("TM: first events %s vs %s → G_max empty: %v (Corollary 4.6)\n",
		h1[0], h2[0], g.Empty())
	return nil
}

func cmdTheorem44() error {
	for _, tc := range []struct {
		name string
		m    *core.FiniteModel
	}{
		{"model with weakest", core.ModelWithWeakest()},
		{"model without weakest (corollary shape)", core.ModelWithoutWeakest()},
	} {
		r, err := tc.m.CheckTheorem44()
		if err != nil {
			return err
		}
		fmt.Printf("%s: weakest exists=%v, Gmax∈F(Lmax)=%v, theorem agrees=%v\n",
			tc.name, r.WeakestExists, r.GmaxIsAdversary, r.Agrees)
	}
	return nil
}

func cmdTheorem49() error {
	r, err := core.CheckTheorem49(5)
	if err != nil {
		return err
	}
	fmt.Print(r.String())
	fmt.Printf("all proof steps verified: %v\n", r.Holds())
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	target := fs.String("target", "consensus", "consensus, i12, or globalcas")
	depth := fs.Int("depth", 12, "schedule depth")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := explore.Config{Procs: 2, Depth: *depth}
	switch *target {
	case "consensus":
		prop := safety.AgreementValidity{}
		cfg.NewObject = func() sim.Object { return consensus.NewCommitAdoptOF(2) }
		cfg.NewEnv = func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		}
		cfg.Check = explore.CheckSafety("agreement+validity", prop.Holds)
	case "i12", "globalcas":
		tpl := map[int]tm.Txn{
			1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
			2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
		}
		cfg.NewEnv = func() sim.Environment { return tm.TxnLoop(tpl) }
		if *target == "i12" {
			propS := safety.PropertyS{}
			cfg.NewObject = func() sim.Object { return tm.NewI12(2) }
			cfg.Check = explore.CheckSafety("opacity+S", propS.Holds)
		} else {
			cfg.NewObject = func() sim.Object { return tm.NewGlobalCAS(2) }
			cfg.Check = explore.CheckSafety("opacity", safety.Opaque)
		}
	default:
		return fmt.Errorf("unknown target %q", *target)
	}
	st, err := explore.Run(cfg)
	if err != nil {
		return fmt.Errorf("violation found: %w (witness %v)", err, st.Witness)
	}
	fmt.Printf("explored %d schedule prefixes (%d simulator steps): no violation up to depth %d\n",
		st.Prefixes, st.Steps, *depth)
	return nil
}
