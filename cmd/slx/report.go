package main

import (
	"fmt"

	"repro/slx"
	"repro/slx/adversary"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/plane"
	"repro/slx/run"
	"repro/slx/tm"
)

// cmdReport runs every experiment of EXPERIMENTS.md and prints a one-page
// paper-versus-measured summary.
func cmdReport() error {
	fmt.Println("Safety-Liveness Exclusion (PODC 2015) — reproduction report")
	fmt.Println("============================================================")

	fmt.Println("\nE1/E6 — Figure 1(a), Theorem 5.2 (consensus from registers)")
	pa, err := plane.Figure1a(4)
	if err != nil {
		return err
	}
	fmt.Print(pa.Render())
	sa, _ := pa.StrongestImplementable()
	wa, _ := pa.WeakestNonImplementable()
	fmt.Printf("strongest implementable %v (paper: (1,1)), weakest non-implementable %v (paper: (1,2))\n", sa, wa)

	fmt.Println("\nE2/E7 — Figure 1(b), Theorem 5.3 (TM + opacity)")
	pb := plane.Figure1b(4)
	fmt.Print(pb.Render())
	sb, _ := pb.StrongestImplementable()
	wb, _ := pb.WeakestNonImplementable()
	fmt.Printf("strongest implementable %v (paper: (1,n)), weakest non-implementable %v (paper: (2,2)); incomparable: %v\n",
		sb, wb, !sb.Comparable(wb))

	fmt.Println("\nE3 — Corollary 4.5 (consensus G_max)")
	f1 := plane.NewHistorySet("F1", adversary.ConsensusF1(0, 1)...)
	f2 := plane.NewHistorySet("F2", adversary.ConsensusF2(0, 1)...)
	fmt.Printf("|F1|=%d |F2|=%d, F1∩F2=∅: %v → no weakest excluding liveness\n",
		f1.Len(), f2.Len(), plane.Gmax(f1, f2).Empty())

	fmt.Println("\nE4 — Corollary 4.6 (TM G_max)")
	a1 := adversary.NewTMStarve(1, 2)
	h1 := a1.Attack(tm.NewI12(2), 2, 200).H
	a2 := adversary.NewTMStarve(2, 1)
	h2 := a2.Attack(tm.NewI12(2), 2, 200).H
	fmt.Printf("strategy histories start with %s vs %s; disjoint: %v\n",
		h1[0], h2[0], plane.Gmax(plane.NewHistorySet("F1", h1), plane.NewHistorySet("F2", h2)).Empty())

	fmt.Println("\nE5 — Theorem 4.9 (trivial implementations I_t, I_b)")
	t49, err := plane.CheckTheorem49(5)
	if err != nil {
		return err
	}
	fmt.Printf("all proof steps verified on the composed automata: %v\n", t49.Holds())

	fmt.Println("\nE8 — Lemma 5.4 (Algorithm 1 / I12)")
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return tm.NewI12(2) }),
		slx.WithEnv(func() run.Environment { return tm.TxnLoop(tpl) }),
		slx.WithProcs(2),
		slx.WithDepth(12),
		slx.WithWorkers(4),
	).Explore(check.PropertyS())
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("I12 safety violated: %s", rep.Failures()[0])
	}
	fmt.Printf("opacity+S model-checked on %d schedule prefixes to depth 12: clean (%d sim steps + %d resim steps, incremental execution)\n",
		rep.Prefixes, rep.SimSteps, rep.Resims)
	srep, err := slx.New(
		slx.WithObject(func() run.Object { return tm.NewI12(2) }),
		slx.WithEnv(func() run.Environment { return tm.TxnLoop(tpl) }),
		slx.WithProcs(2),
		slx.WithDepth(20),
		slx.WithWorkers(4),
		slx.WithSample(2000, 3),
		slx.WithSeed(1),
	).Explore(check.PropertyS())
	if err != nil {
		return err
	}
	if !srep.OK() {
		return fmt.Errorf("I12 safety violated under sampling: %s", srep.Failures()[0])
	}
	fmt.Printf("opacity+S sampled on %d PCT schedules (fixed seed 1, d=3) to depth 20: clean — probabilistic evidence past the exhaustive depth ceiling\n",
		srep.Schedules)

	fmt.Println("\nE9 — Section 5.3 counterexample")
	ps := plane.Section53Plane(4)
	fmt.Printf("maximal whites %v, minimal blacks %v → no weakest (l,k) point excludes S\n",
		ps.MaximalWhites(), ps.MinimalBlacks())

	fmt.Println("\nE10 — Theorem 4.4 on finite models")
	for _, tc := range []struct {
		name string
		m    *plane.FiniteModel
	}{
		{"positive instance", plane.ModelWithWeakest()},
		{"corollary-shaped instance", plane.ModelWithoutWeakest()},
	} {
		r, err := tc.m.CheckTheorem44()
		if err != nil {
			return err
		}
		fmt.Printf("%s: weakest exists=%v, Gmax adversary=%v, iff agrees=%v\n",
			tc.name, r.WeakestExists, r.GmaxIsAdversary, r.Agrees)
	}

	fmt.Println("\nE11 — Section 6: (n,x)-liveness (totally ordered family)")
	nx, err := plane.NXConsensus(2)
	if err != nil {
		return err
	}
	sx, _ := nx.StrongestImplementable()
	wx, _ := nx.WeakestNonImplementable()
	fmt.Printf("strongest implementable (n,%d) (paper: (n,0)), weakest non-implementable (n,%d) (paper: (n,1))\n", sx, wx)

	fmt.Println("\nE12 — k-set agreement (paper's 'other contexts')")
	values := []hist.Value{10, 20, 30}
	kf1 := plane.NewHistorySet("kF1", adversary.KSetF1(2, values)...)
	kf2 := plane.NewHistorySet("kF2", adversary.KSetF2(2, values)...)
	fmt.Printf("2-set adversary sets disjoint: %v → no weakest excluding liveness for 2-set agreement\n",
		plane.Gmax(kf1, kf2).Empty())

	fmt.Println("\nBivalence adversary sanity (register consensus vs CAS)")
	biv := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithProcs(2),
		slx.WithMaxSteps(100),
	)
	brep, err := biv.Adversary(adversary.NewBivalenceStrategy(0, 1))
	if err != nil {
		return err
	}
	fmt.Printf("registers: %d-step fair non-deciding schedule (history %s)\n",
		len(brep.Schedule), brep.Execution.H)
	casBiv := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCASBased() }),
		slx.WithProcs(2),
		slx.WithMaxSteps(40),
	)
	if _, err := casBiv.Adversary(adversary.NewBivalenceStrategy(0, 1)); err != nil {
		fmt.Printf("CAS: adversary stuck as expected (%v)\n", err)
	} else {
		fmt.Println("CAS: UNEXPECTED adversary success")
	}
	return nil
}
