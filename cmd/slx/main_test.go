package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// TestExploreExitCodes: dispatch returns an error (→ non-zero process
// exit in main) exactly when a violation is found, in both exhaustive
// and sampling modes.
func TestExploreExitCodes(t *testing.T) {
	cases := map[string]struct {
		args    []string
		wantErr bool
	}{
		"exhaustive/violation": {
			args:    []string{"explore", "-target", "lossyreg", "-depth", "8"},
			wantErr: true,
		},
		"exhaustive/clean": {
			args:    []string{"explore", "-target", "consensus", "-depth", "6"},
			wantErr: false,
		},
		"sample/violation": {
			args:    []string{"explore", "-target", "lossyreg", "-sample", "-schedules", "500", "-d", "2", "-depth", "10", "-seed", "1"},
			wantErr: true,
		},
		"sample/clean": {
			args:    []string{"explore", "-target", "consensus", "-sample", "-schedules", "200", "-d", "3", "-depth", "8", "-seed", "5"},
			wantErr: false,
		},
		"sample/walk-violation": {
			args:    []string{"explore", "-target", "lossyreg", "-sample", "-walk", "-schedules", "500", "-depth", "10", "-seed", "1"},
			wantErr: true,
		},
		"unknown-target": {
			args:    []string{"explore", "-target", "nosuch"},
			wantErr: true,
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			err := dispatch(tc.args)
			if (err != nil) != tc.wantErr {
				t.Fatalf("dispatch(%v) err=%v, want error=%v", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestExploreTimeout: -timeout cuts an exhaustive exploration short and
// maps to exit code 124 (the timeout(1) convention), distinct from the
// violation exit 1.
func TestExploreTimeout(t *testing.T) {
	// Exhaustive queueblast above depth 10 cannot finish in any test
	// budget, so the run can only end via the deadline.
	err := dispatch([]string{"explore", "-target", "queueblast", "-depth", "12", "-timeout", "150ms"})
	if err == nil {
		t.Fatal("timed-out exploration should report an error")
	}
	if code := exitCode(err); code != 124 {
		t.Fatalf("exit code %d (%v), want 124", code, err)
	}
}

// TestExploreInterrupted: cancelling the base context (what a SIGINT
// does through signal.NotifyContext) unwinds with a partial report and
// exit code 130, in both exploration modes.
func TestExploreInterrupted(t *testing.T) {
	cases := map[string][]string{
		"exhaustive": {"explore", "-target", "queueblast", "-depth", "12"},
		"sample":     {"explore", "-target", "consensus", "-sample", "-schedules", "2000000000", "-d", "3", "-depth", "8"},
	}
	for name, args := range cases {
		args := args
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			old := baseContext
			baseContext = ctx
			defer func() { baseContext = old }()
			go func() {
				time.Sleep(100 * time.Millisecond)
				cancel()
			}()
			err := dispatch(args)
			if err == nil {
				t.Fatal("interrupted exploration should report an error")
			}
			if code := exitCode(err); code != 130 {
				t.Fatalf("exit code %d (%v), want 130", code, err)
			}
		})
	}
}

// TestSubmitStatusRoundTrip drives the client subcommands against an
// in-process daemon: submit -wait returns the violation exit path and
// status renders both the listing and a single job.
func TestSubmitStatusRoundTrip(t *testing.T) {
	srv, err := service.NewServer(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	if err := dispatch([]string{"submit", "-addr", hs.URL, "-wait", "-target", "consensus", "-depth", "6"}); err != nil {
		t.Fatalf("clean submit -wait: %v", err)
	}
	if err := dispatch([]string{"submit", "-addr", hs.URL, "-wait", "-target", "lossyreg", "-depth", "8"}); err == nil {
		t.Fatal("violating submit -wait should exit non-zero")
	}
	if err := dispatch([]string{"status", "-addr", hs.URL}); err != nil {
		t.Fatalf("status list: %v", err)
	}
	if err := dispatch([]string{"status", "-addr", hs.URL, "job-1"}); err != nil {
		t.Fatalf("status job-1: %v", err)
	}
	if err := dispatch([]string{"status", "-addr", hs.URL, "job-999"}); err == nil {
		t.Fatal("status for a missing job should fail")
	}
	// An invalid spec is rejected at submit time with the daemon's 400.
	if err := dispatch([]string{"submit", "-addr", hs.URL, "-target", "consensus", "-sample", "-por", "-schedules", "10"}); err == nil {
		t.Fatal("invalid spec should be rejected")
	}
}
