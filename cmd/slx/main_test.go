package main

import "testing"

// TestExploreExitCodes: dispatch returns an error (→ non-zero process
// exit in main) exactly when a violation is found, in both exhaustive
// and sampling modes.
func TestExploreExitCodes(t *testing.T) {
	cases := map[string]struct {
		args    []string
		wantErr bool
	}{
		"exhaustive/violation": {
			args:    []string{"explore", "-target", "lossyreg", "-depth", "8"},
			wantErr: true,
		},
		"exhaustive/clean": {
			args:    []string{"explore", "-target", "consensus", "-depth", "6"},
			wantErr: false,
		},
		"sample/violation": {
			args:    []string{"explore", "-target", "lossyreg", "-sample", "-schedules", "500", "-d", "2", "-depth", "10", "-seed", "1"},
			wantErr: true,
		},
		"sample/clean": {
			args:    []string{"explore", "-target", "consensus", "-sample", "-schedules", "200", "-d", "3", "-depth", "8", "-seed", "5"},
			wantErr: false,
		},
		"sample/walk-violation": {
			args:    []string{"explore", "-target", "lossyreg", "-sample", "-walk", "-schedules", "500", "-depth", "10", "-seed", "1"},
			wantErr: true,
		},
		"unknown-target": {
			args:    []string{"explore", "-target", "nosuch"},
			wantErr: true,
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			err := dispatch(tc.args)
			if (err != nil) != tc.wantErr {
				t.Fatalf("dispatch(%v) err=%v, want error=%v", tc.args, err, tc.wantErr)
			}
		})
	}
}
