package main

// The slxd client half of the CLI: `slx submit` posts a check job to a
// running daemon and `slx status` polls it. The flags mirror `slx
// explore` one-to-one, because a JobSpec is the JSON form of the same
// checker options: the daemon's report for a spec equals the in-process
// report `slx explore` would print for the matching flags.

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/service"
	"repro/slx"
)

const defaultAddr = "http://127.0.0.1:8321"

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", defaultAddr, "slxd base URL")
	wait := fs.Bool("wait", false, "poll until the job is terminal and print its result")
	interval := fs.Duration("interval", 200*time.Millisecond, "poll interval (with -wait)")
	target := fs.String("target", "consensus", fmt.Sprintf("check target: %s", strings.Join(service.TargetNames(), ", ")))
	procs := fs.Int("procs", 0, "override the target's process count")
	depth := fs.Int("depth", 12, "schedule depth")
	crashes := fs.Int("crashes", 0, "crash budget")
	recoveries := fs.Int("recoveries", 0, "recovery budget (needs -crashes)")
	batch := fs.Bool("batch", false, "legacy batch checking")
	por := fs.Bool("por", false, "sleep-set partial-order reduction")
	cache := fs.Bool("cache", false, "state-fingerprint cache")
	sharedCache := fs.Bool("shared-cache", false, "share the daemon's visited tier for this target (needs -cache)")
	workers := fs.Int("workers", 0, "engine workers (extra lanes are offered to the daemon's pool)")
	replay := fs.Bool("replay", false, "force from-root replay execution")
	timeout := fs.Duration("timeout", 0, "per-job wall-clock budget")
	sampleMode := fs.Bool("sample", false, "probabilistic sampling instead of exhaustive enumeration")
	schedules := fs.Int("schedules", 0, "sampled schedules (with -sample)")
	d := fs.Int("d", 0, "PCT priority-change points per schedule (with -sample)")
	seed := fs.Int64("seed", 0, "master seed; schedule i uses seed+i (with -sample)")
	walk := fs.Bool("walk", false, "uniform random walk instead of PCT (with -sample)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := service.JobSpec{
		Target: *target,
		Spec: slx.Spec{
			Procs:      *procs,
			Depth:      *depth,
			Crashes:    *crashes,
			Recoveries: *recoveries,
			Workers:    *workers,
			POR:        *por,
			Cache:      *cache,
			Batch:      *batch,
			Replay:     *replay,
			Sample:     *sampleMode,
			Schedules:  *schedules,
			D:          *d,
			Walk:       *walk,
			Seed:       *seed,
			TimeoutMs:  timeout.Milliseconds(),
		},
		SharedCache: *sharedCache,
	}
	var job service.Job
	if err := apiCall(http.MethodPost, *addr+"/v1/jobs", spec, &job); err != nil {
		return err
	}
	fmt.Printf("submitted %s (%s, %s)\n", job.ID, job.Spec.Target, job.Spec.Mode)
	if !*wait {
		fmt.Printf("poll with: slx status -addr %s %s\n", *addr, job.ID)
		return nil
	}
	for !terminalState(job.State) {
		time.Sleep(*interval)
		if err := apiCall(http.MethodGet, *addr+"/v1/jobs/"+job.ID, nil, &job); err != nil {
			return err
		}
	}
	printJob(job)
	if job.State == service.StateFailed {
		return fmt.Errorf("job %s failed: %s", job.ID, job.Error)
	}
	if job.Result != nil && !job.Result.OK {
		return fmt.Errorf("violation found by %s", job.ID)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	addr := fs.String("addr", defaultAddr, "slxd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("usage: slx status [-addr url] [job-id]")
	}
	if fs.NArg() == 1 {
		var job service.Job
		if err := apiCall(http.MethodGet, *addr+"/v1/jobs/"+fs.Arg(0), nil, &job); err != nil {
			return err
		}
		printJob(job)
		return nil
	}
	var jobs []service.Job
	if err := apiCall(http.MethodGet, *addr+"/v1/jobs", nil, &jobs); err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-8s %-12s %-10s %-10s %s\n", "id", "target", "mode", "state", "result")
	for _, j := range jobs {
		res := ""
		switch {
		case j.Error != "" && j.Result == nil:
			res = j.Error
		case j.Result != nil && j.Result.OK && !j.Result.Interrupted:
			res = "ok"
		case j.Result != nil && j.Result.Interrupted:
			res = "interrupted (partial)"
		case j.Result != nil:
			res = "VIOLATION"
		}
		fmt.Printf("%-8s %-12s %-10s %-10s %s\n", j.ID, j.Spec.Target, j.Spec.Mode, j.State, res)
	}
	return nil
}

// printJob renders one job with its result details.
func printJob(j service.Job) {
	fmt.Printf("%s: %s (%s, %s)", j.ID, j.State, j.Spec.Target, j.Spec.Mode)
	if j.DurationMs > 0 {
		fmt.Printf(", %dms", j.DurationMs)
	}
	fmt.Println()
	if j.Error != "" {
		fmt.Printf("  error: %s\n", j.Error)
	}
	r := j.Result
	if r == nil {
		return
	}
	if r.Sampled {
		fmt.Printf("  schedules %d, distinct states %d", r.Schedules, r.DistinctStates)
		if r.FailingSeed != 0 {
			fmt.Printf(", failing seed %d", r.FailingSeed)
		}
	} else {
		fmt.Printf("  prefixes %d, sim steps %d", r.Prefixes, r.SimSteps)
		if r.CacheHits > 0 {
			fmt.Printf(", cache hits %d", r.CacheHits)
		}
	}
	if r.Interrupted {
		fmt.Printf(", interrupted")
	}
	fmt.Println()
	for _, v := range r.Verdicts {
		if v.Holds {
			fmt.Printf("  %s: PASS\n", v.Property)
		} else {
			fmt.Printf("  %s: FAIL (%s)\n", v.Property, v.Reason)
		}
	}
	if len(r.Witness) > 0 {
		w, _ := json.Marshal(r.Witness)
		fmt.Printf("  witness: %s\n", w)
	}
}

// terminalState mirrors the service's terminal-state set.
func terminalState(s string) bool {
	return s == service.StateDone || s == service.StateFailed || s == service.StateCancelled
}

// Retry tunables. A transient failure — the daemon not up yet, a
// connection reset, or an explicit 429/503 back-pressure response — is
// retried with full-jitter exponential backoff, capped per delay and in
// attempt count. Tests swap retrySleep and reseed retryRand to make the
// schedule deterministic and instant.
var (
	retryAttempts = 4
	retryBase     = 50 * time.Millisecond
	retryCap      = 1 * time.Second
	retrySleep    = time.Sleep
	retryRand     = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// backoffDelay returns the full-jitter delay for 0-based attempt i:
// uniform in [0, min(cap, base<<i)]. Jitter spreads concurrent clients
// so a recovering daemon is not hit by a synchronized thundering herd.
func backoffDelay(i int) time.Duration {
	d := retryBase << uint(i)
	if d <= 0 || d > retryCap {
		d = retryCap
	}
	return time.Duration(retryRand.Int63n(int64(d) + 1))
}

// httpStatusError carries the daemon's non-2xx status so the retry loop
// can distinguish back-pressure (429, 503) from real rejections (400,
// 404), which must surface immediately.
type httpStatusError struct {
	code int
	msg  string
}

func (e *httpStatusError) Error() string { return e.msg }

// transientErr reports whether a failure is worth retrying: any
// transport-level error (connection refused while the daemon starts,
// reset mid-flight) or an explicit retry-me status. Everything else —
// bad spec, unknown job, JSON mismatch — is permanent.
func transientErr(err error) bool {
	var he *httpStatusError
	if errors.As(err, &he) {
		return he.code == http.StatusTooManyRequests || he.code == http.StatusServiceUnavailable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// apiCall performs a JSON round-trip against the daemon, retrying
// transient failures; non-2xx responses surface the daemon's error
// message.
func apiCall(method, url string, in, out any) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = data
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = apiOnce(method, url, payload, out)
		if err == nil || !transientErr(err) || attempt >= retryAttempts {
			return err
		}
		retrySleep(backoffDelay(attempt))
	}
}

// apiOnce is a single request/response exchange. The payload is a
// pre-marshalled body (nil for body-less methods) so every retry sends
// an identical request.
func apiOnce(method, url string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &httpStatusError{code: resp.StatusCode, msg: fmt.Sprintf("%s: %s", resp.Status, e.Error)}
		}
		return &httpStatusError{code: resp.StatusCode, msg: fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(data)))}
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}
