package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// withInstantRetries makes the backoff schedule deterministic and
// instant for the duration of a test: sleeps are recorded instead of
// taken and the jitter source is reseeded.
func withInstantRetries(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	oldSleep, oldRand := retrySleep, retryRand
	retrySleep = func(d time.Duration) { slept = append(slept, d) }
	retryRand = rand.New(rand.NewSource(1))
	t.Cleanup(func() { retrySleep, retryRand = oldSleep, oldRand })
	return &slept
}

// flakyHandler rejects the first fail requests with the given status,
// then delegates to the wrapped handler.
func flakyHandler(fail int64, status int, next http.Handler) (http.Handler, *int64) {
	var seen int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&seen, 1) <= fail {
			http.Error(w, `{"error":"warming up"}`, status)
			return
		}
		next.ServeHTTP(w, r)
	}), &seen
}

// TestClientRetriesTransientStatuses: submit -wait and status ride out
// leading 503s and 429s; the backoff sleeps once per rejected attempt.
func TestClientRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{http.StatusServiceUnavailable, http.StatusTooManyRequests} {
		t.Run(http.StatusText(status), func(t *testing.T) {
			slept := withInstantRetries(t)
			srv, err := service.NewServer(service.Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			h, _ := flakyHandler(2, status, srv.Handler())
			hs := httptest.NewServer(h)
			defer hs.Close()

			if err := dispatch([]string{"submit", "-addr", hs.URL, "-wait", "-target", "consensus", "-depth", "4"}); err != nil {
				t.Fatalf("submit -wait through %d rejections: %v", status, err)
			}
			if len(*slept) < 2 {
				t.Fatalf("slept %d times, want >= 2 (one per rejected attempt)", len(*slept))
			}
			for _, d := range *slept {
				if d < 0 || d > retryCap {
					t.Fatalf("backoff delay %v outside [0, %v]", d, retryCap)
				}
			}
			if err := dispatch([]string{"status", "-addr", hs.URL}); err != nil {
				t.Fatalf("status list after flaky start: %v", err)
			}
		})
	}
}

// TestClientRetriesConnectionRefused: with no daemon listening at all,
// the client retries the connection the full budget and then reports
// the transport error.
func TestClientRetriesConnectionRefused(t *testing.T) {
	slept := withInstantRetries(t)
	// Grab an address nothing listens on: bind, record, close.
	hs := httptest.NewServer(http.NotFoundHandler())
	addr := hs.URL
	hs.Close()

	err := dispatch([]string{"status", "-addr", addr})
	if err == nil {
		t.Fatal("status against a dead daemon must fail")
	}
	if got := len(*slept); got != retryAttempts {
		t.Fatalf("slept %d times, want %d (full retry budget)", got, retryAttempts)
	}
}

// TestClientDoesNotRetryPermanentErrors: a 400 (invalid spec) and a 404
// (unknown job) surface immediately — no sleeps, one request each.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	slept := withInstantRetries(t)
	srv, err := service.NewServer(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, seen := flakyHandler(0, 0, srv.Handler())
	hs := httptest.NewServer(h)
	defer hs.Close()

	if err := dispatch([]string{"submit", "-addr", hs.URL, "-target", "consensus", "-sample", "-por", "-schedules", "5"}); err == nil {
		t.Fatal("invalid spec must be rejected")
	} else if !strings.Contains(err.Error(), "400") {
		t.Fatalf("want the daemon's 400, got: %v", err)
	}
	if err := dispatch([]string{"status", "-addr", hs.URL, "job-999"}); err == nil {
		t.Fatal("missing job must fail")
	}
	if len(*slept) != 0 {
		t.Fatalf("permanent errors slept %d times, want 0", len(*slept))
	}
	if got := atomic.LoadInt64(seen); got != 2 {
		t.Fatalf("daemon saw %d requests, want 2 (no retries)", got)
	}
}

// TestBackoffDelayShape: delays are capped, non-negative, and the
// exponential envelope grows until the cap.
func TestBackoffDelayShape(t *testing.T) {
	oldRand := retryRand
	retryRand = rand.New(rand.NewSource(42))
	defer func() { retryRand = oldRand }()
	for i := 0; i < 40; i++ {
		d := backoffDelay(i)
		env := retryBase << uint(i)
		if env <= 0 || env > retryCap {
			env = retryCap
		}
		if d < 0 || d > env {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", i, d, env)
		}
	}
}
