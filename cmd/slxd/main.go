// Command slxd is the exploration service daemon: it accepts check jobs
// over HTTP/JSON, runs them on a bounded worker pool where each worker
// drives an ordinary slx.Checker, and stores the resulting reports —
// including replayable witness schedules and failing seeds — in a
// results store with an optional JSON-file spill.
//
// Usage:
//
//	slxd [-addr :8321] [-workers 4] [-queue 64] [-spill dir] [-drain 30s]
//
// API:
//
//	POST   /v1/jobs       submit a job (see internal/service.JobSpec)
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  one job with its result
//	DELETE /v1/jobs/{id}  cancel (partial, interrupted result is kept)
//	GET    /v1/targets    registered check targets
//	GET    /healthz       liveness
//	GET    /readyz        readiness (503 while draining)
//	GET    /metrics       Prometheus text format
//
// SIGINT/SIGTERM drains gracefully: submits stop, queued and running
// jobs finish, then the process exits. Jobs still running when -drain
// expires are cancelled and store partial, Interrupted results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slxd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slxd", flag.ContinueOnError)
	addr := fs.String("addr", ":8321", "listen address")
	workers := fs.Int("workers", 4, "worker pool size")
	queue := fs.Int("queue", 64, "job queue capacity")
	spill := fs.String("spill", "", "spill finished jobs to job-<id>.json files in this directory")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline before running jobs are cancelled")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := service.NewServer(service.Config{Workers: *workers, Queue: *queue, SpillDir: *spill})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("slxd: listening on %s (%d workers, queue %d)\n", ln.Addr(), *workers, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills hard

	fmt.Printf("slxd: draining (deadline %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Println("slxd: drain deadline exceeded; running jobs cancelled, partial results stored")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("slxd: bye")
	return nil
}
