package queue

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// explorePersistent checks strict linearizability of the Persistent
// queue on every schedule with the given crash and recovery budgets.
func explorePersistent(t *testing.T, depth, crashes, recoveries int) *explore.Stats {
	t.Helper()
	spec := safety.QueueSpec{}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewPersistent(2) },
		NewEnv: func() sim.Environment {
			return sim.Script(map[int][]sim.Invocation{
				1: {{Op: "enq", Arg: "a"}},
				2: {{Op: "deq"}, {Op: "deq"}},
			})
		},
		Depth:      depth,
		Crashes:    crashes,
		Recoveries: recoveries,
		Check: explore.CheckSafety("strict-linearizability", func(h history.History) bool {
			return safety.StrictLinearizable(spec, h)
		}),
	})
	if err != nil {
		t.Fatalf("explore (crashes=%d recoveries=%d): %v", crashes, recoveries, err)
	}
	return st
}

// TestPersistentStrictLinearizableExhaustive is the positive twin of the
// examples/durablequeue scenario: the guarded redo keeps the queue
// strictly linearizable on every schedule, crash and recovery
// interleavings included — the exact workload on which the
// roll-forward bug violates.
func TestPersistentStrictLinearizableExhaustive(t *testing.T) {
	plain := explorePersistent(t, 14, 0, 0)
	crash := explorePersistent(t, 14, 1, 0)
	rec := explorePersistent(t, 14, 1, 1)
	if plain.Prefixes == 0 {
		t.Fatal("no exploration happened")
	}
	if !(plain.Prefixes < crash.Prefixes && crash.Prefixes < rec.Prefixes) {
		t.Errorf("budgets must strictly widen the tree: %d < %d < %d expected",
			plain.Prefixes, crash.Prefixes, rec.Prefixes)
	}
}

// TestPersistentCrashAfterFlushAppliesOnce pins the redo guard: a crash
// between the intent flush and the committed CAS leaves a durable
// intent, recovery applies it, and the element is delivered exactly
// once.
func TestPersistentCrashAfterFlushAppliesOnce(t *testing.T) {
	q := NewPersistent(2)
	env := sim.Script(map[int][]sim.Invocation{
		1: {{Op: "enq", Arg: "a"}},
		2: {{Op: "deq"}, {Op: "deq"}},
	})
	phase := 0
	sched := sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		switch phase {
		case 0: // run p1 until the intent is durable but not applied
			if q.intents[1].PeekDurable() != nil && len(q.committed.Peek().(*qstate).items) == 0 {
				phase = 1
				return sim.Decision{Proc: 1, Crash: true}, true
			}
			return sim.Decision{Proc: 1}, true
		case 1:
			phase = 2
			return sim.Decision{Proc: 1, Recover: true}, true
		case 2: // run recovery until the redo lands
			if len(q.committed.Peek().(*qstate).items) == 1 {
				phase = 3
			} else {
				return sim.Decision{Proc: 1}, true
			}
		}
		if !v.ReadyContains(2) {
			return sim.Decision{}, false
		}
		return sim.Decision{Proc: 2}, true
	})
	res := sim.Run(sim.Config{Procs: 2, Object: q, Env: env, Scheduler: sched, MaxSteps: 200})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	var got []history.Value
	for _, op := range res.H.Operations() {
		if op.Proc == 2 && op.Name == "deq" && op.Done {
			got = append(got, op.Val)
		}
	}
	if len(got) != 2 || got[0] != history.Value("a") || got[1] != history.Value(safety.EmptyResp) {
		t.Fatalf("deqs = %v, want [a empty] (exactly-once delivery)", got)
	}
	if !safety.StrictLinearizable(safety.QueueSpec{}, res.H) {
		t.Fatalf("history must be strictly linearizable: %s", res.H)
	}
}

// TestPersistentRandomRecoverySchedules drives random schedules with
// crash and recovery decisions and checks strict linearizability of
// every history.
func TestPersistentRandomRecoverySchedules(t *testing.T) {
	spec := safety.QueueSpec{}
	for seed := int64(0); seed < 200; seed++ {
		res := sim.Run(sim.Config{
			Procs:  2,
			Object: NewPersistent(2),
			Env: sim.Script(map[int][]sim.Invocation{
				1: {{Op: "enq", Arg: "v1"}, {Op: "deq"}},
				2: {{Op: "enq", Arg: "v2"}, {Op: "deq"}},
			}),
			Scheduler:        sim.RandomRecovery(seed, 0.06, 0.3, 2, 2),
			MaxSteps:         300,
			RecoverQuiescent: true,
		})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !safety.StrictLinearizable(spec, res.H) {
			t.Fatalf("seed %d: not strictly linearizable: %s", seed, res.H)
		}
	}
}
