package queue

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func workload() map[int][]sim.Invocation {
	return map[int][]sim.Invocation{
		1: {{Op: "enq", Arg: "v1"}, {Op: "deq"}, {Op: "enq", Arg: "v2"}},
		2: {{Op: "deq"}, {Op: "enq", Arg: "v3"}, {Op: "deq"}},
	}
}

func TestQueuesLinearizableUnderRandomSchedules(t *testing.T) {
	impls := map[string]func() sim.Object{
		"locked": func() sim.Object { return NewLocked() },
		"cas":    func() sim.Object { return NewCASQueue() },
	}
	spec := safety.QueueSpec{}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 120; seed++ {
				res := sim.Run(sim.Config{
					Procs:     2,
					Object:    mk(),
					Env:       sim.Script(workload()),
					Scheduler: sim.Random(seed),
					MaxSteps:  500,
				})
				if res.Err != nil {
					t.Fatalf("seed %d: %v", seed, res.Err)
				}
				if !safety.Linearizable(spec, res.H) {
					t.Fatalf("seed %d: not linearizable: %s", seed, res.H)
				}
			}
		})
	}
}

func TestCASQueueLinearizableExhaustive(t *testing.T) {
	spec := safety.QueueSpec{}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewCASQueue() },
		NewEnv: func() sim.Environment {
			return sim.Script(map[int][]sim.Invocation{
				1: {{Op: "enq", Arg: "v1"}, {Op: "deq"}},
				2: {{Op: "enq", Arg: "v2"}, {Op: "deq"}},
			})
		},
		Depth: 14,
		Check: explore.CheckSafety("queue-linearizability", func(h history.History) bool {
			return safety.Linearizable(spec, h)
		}),
	})
	if err != nil {
		t.Fatalf("exhaustive check failed: %v (witness %v)", err, st.Witness)
	}
}

func TestLockedQueueBlocksOnCrashInCriticalSection(t *testing.T) {
	// Crash p1 after it acquired the lock (mid-operation): p2 spins
	// forever — the blocking failure the paper's non-blocking systems
	// exclude.
	res := sim.Run(sim.Config{
		Procs:  2,
		Object: NewLocked(),
		Env: sim.Script(map[int][]sim.Invocation{
			1: {{Op: "enq", Arg: "v1"}},
			2: {{Op: "deq"}},
		}),
		Scheduler: sim.Seq(
			// p1: invoke + flag write + turn write + flag read (acquired,
			// mid-section) then crash.
			sim.Limit(sim.Solo(1), 4),
			sim.Fixed([]sim.Decision{{Proc: 1, Crash: true}}),
			sim.Limit(sim.Solo(2), 200),
		),
		MaxSteps: 300,
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !res.H.Pending(2) {
		t.Fatal("p2 must spin forever behind the dead lock holder")
	}
	e := liveness.FromResult(res, 50)
	// p2 takes infinitely many steps alone and never progresses:
	// obstruction-freedom (and hence (1,1)-freedom) is violated.
	if (liveness.LK{L: 1, K: 1}).Holds(e) {
		t.Error("the blocked run must violate (1,1)-freedom")
	}
}

func TestCASQueueSurvivesCrashMidOperation(t *testing.T) {
	// The same crash point cannot block the CAS queue.
	res := sim.Run(sim.Config{
		Procs:  2,
		Object: NewCASQueue(),
		Env: sim.Script(map[int][]sim.Invocation{
			1: {{Op: "enq", Arg: "v1"}},
			2: {{Op: "deq"}},
		}),
		Scheduler: sim.Seq(
			sim.Limit(sim.Solo(1), 2), // invoke + state read, pre-CAS
			sim.Fixed([]sim.Decision{{Proc: 1, Crash: true}}),
			sim.Limit(sim.Solo(2), 100),
		),
		MaxSteps: 200,
	})
	if res.H.Pending(2) {
		t.Fatal("p2 must complete despite p1's crash")
	}
	if !safety.Linearizable(safety.QueueSpec{}, res.H) {
		t.Fatalf("history must stay linearizable: %s", res.H)
	}
}

func TestCASQueueLockFreeUnderContention(t *testing.T) {
	env := sim.EnvironmentFunc(func(proc int, v *sim.View) (sim.Invocation, bool) {
		if len(v.H.Project(proc))%4 < 2 {
			return sim.Invocation{Op: "enq", Arg: "p"}, true
		}
		return sim.Invocation{Op: "deq"}, true
	})
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    NewCASQueue(),
		Env:       env,
		Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
		MaxSteps:  400,
	})
	e := liveness.FromResult(res, 0)
	if !(liveness.LLockFreedom{L: 1}).Holds(e) {
		t.Error("the CAS queue is lock-free: someone always completes")
	}
}

func TestQueueSequentialFIFO(t *testing.T) {
	res := sim.Run(sim.Config{
		Procs:  1,
		Object: NewCASQueue(),
		Env: sim.Script(map[int][]sim.Invocation{
			1: {
				{Op: "deq"},
				{Op: "enq", Arg: "a"}, {Op: "enq", Arg: "b"},
				{Op: "deq"}, {Op: "deq"}, {Op: "deq"},
			},
		}),
		Scheduler: &sim.RoundRobin{},
		MaxSteps:  100,
	})
	var resps []history.Value
	for _, op := range res.H.Operations() {
		if op.Name == "deq" && op.Done {
			resps = append(resps, op.Val)
		}
	}
	want := []history.Value{safety.EmptyResp, "a", "b", safety.EmptyResp}
	if len(resps) != len(want) {
		t.Fatalf("deq responses = %v", resps)
	}
	for i := range want {
		if resps[i] != want[i] {
			t.Fatalf("deq[%d] = %v, want %v", i, resps[i], want[i])
		}
	}
}
