package queue

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// Persistent is the crash–recovery queue: a lock-free CAS queue whose
// operations survive crashes through per-process durable intent
// records. Every mutating operation follows the write-ahead discipline
//
//	read committed → write intent (volatile) → flush intent (durable)
//	→ CAS committed → clear intent (volatile) → flush clear (durable)
//
// and the recovery routine of a crashed process replays its durable
// intent with a prev-pointer guard: the redo CAS succeeds only if the
// committed state still equals the intent's pre-state, which — qstate
// records being freshly allocated and never reused — happens exactly
// when the crashed operation had not taken effect. The replay is
// therefore idempotent: a crashed operation takes effect at most once
// (strictly linearizable under crash+recovery; contrast the seeded
// roll-forward bug in examples/durablequeue, which re-applies the
// operation unconditionally).
//
// Durable state: the committed qstate and the flushed halves of the
// intent registers. Volatile state: the intent registers' caches, wiped
// by CrashVolatile at every crash — an intent written but not yet
// flushed vanishes with the crash, and with it the operation.
//
//slx:nofingerprint CAS on *qstate pointer identity: content-equal states diverge (ABA)
type Persistent struct {
	committed *base.CAS
	intents   []*base.DurableRegister // indexed by 1-based proc id
}

// intent is one durable redo record, immutable once stored.
type intent struct {
	prev, next *qstate
	resp       history.Value
}

// NewPersistent creates the queue for processes 1..n.
func NewPersistent(n int) *Persistent {
	q := &Persistent{
		committed: base.NewCAS("queue", &qstate{}),
		intents:   make([]*base.DurableRegister, n+1),
	}
	for p := 1; p <= n; p++ {
		q.intents[p] = base.NewDurableRegister(fmt.Sprintf("intent.%d", p), nil)
	}
	return q
}

// Footprints implements sim.Footprinted: all shared state is in the
// committed CAS and the per-process intent registers, each of which
// declares its accesses.
func (q *Persistent) Footprints() bool { return true }

// CrashVolatile implements sim.Recoverable: every intent cache reverts
// to its flushed value. The committed CAS is durable.
func (q *Persistent) CrashVolatile() {
	for _, r := range q.intents {
		if r != nil {
			r.CrashWipe()
		}
	}
}

// RecoverFrame implements sim.Recoverable.
func (q *Persistent) RecoverFrame() sim.Frame { return &persistRecFrame{q: q} }

// persistState is a captured queue configuration.
type persistState struct {
	committed any
	intents   []any
}

// Snapshot implements sim.Snapshottable: the committed pointer (exact,
// preserving the CAS identity semantics) plus both halves of every
// intent register.
func (q *Persistent) Snapshot() any {
	st := &persistState{committed: q.committed.Snapshot(), intents: make([]any, len(q.intents))}
	for i, r := range q.intents {
		if r != nil {
			st.intents[i] = r.Snapshot()
		}
	}
	return st
}

// Restore implements sim.Snapshottable.
func (q *Persistent) Restore(v any) {
	st := v.(*persistState)
	q.committed.Restore(st.committed)
	for i, r := range q.intents {
		if r != nil {
			r.Restore(st.intents[i])
		}
	}
}

// step computes one operation's transition at st. ok=false means the
// operation completes without mutating (empty dequeue, unknown op).
func persistStep(st *qstate, op string, arg history.Value) (next *qstate, resp history.Value, ok bool) {
	switch op {
	case "enq":
		return st.enq(arg), history.OK, true
	case "deq":
		if len(st.items) == 0 {
			return nil, safety.EmptyResp, false
		}
		next, resp = st.deq()
		return next, resp, true
	default:
		return nil, nil, false
	}
}

// Apply implements sim.Object.
func (q *Persistent) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	reg := q.intents[p.ID()]
	for {
		st := q.committed.Read(p).(*qstate)
		next, resp, ok := persistStep(st, inv.Op, inv.Arg)
		if !ok {
			// Empty dequeue (or unknown op) linearizes at the read; nothing
			// to persist.
			return resp
		}
		reg.Write(p, &intent{prev: st, next: next, resp: resp})
		reg.Flush(p)
		if q.committed.CompareAndSwap(p, st, next) {
			reg.Write(p, nil)
			reg.Flush(p)
			return resp
		}
	}
}

// persistFrame is one in-flight Persistent operation. pc: 0 = read
// committed, 1 = write intent, 2 = flush intent, 3 = CAS committed
// (back to 0 on failure), 4 = clear intent, 5 = flush the clear.
type persistFrame struct {
	q    *Persistent
	inv  sim.Invocation
	pc   int
	in   *intent
	resp history.Value
}

// Begin implements sim.Stepped.
func (q *Persistent) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	return &persistFrame{q: q, inv: inv}, nil, sim.StepPaused
}

// Step implements sim.Frame.
func (f *persistFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	q := f.q
	reg := q.intents[p.ID()]
	switch f.pc {
	case 0:
		st := q.committed.ReadW(p).(*qstate)
		next, resp, ok := persistStep(st, f.inv.Op, f.inv.Arg)
		if !ok {
			// See Apply: the empty dequeue linearizes at the read.
			return resp, sim.StepDone
		}
		f.in = &intent{prev: st, next: next, resp: resp}
		f.pc = 1
	case 1:
		reg.WriteW(p, f.in)
		f.pc = 2
	case 2:
		reg.FlushW(p)
		f.pc = 3
	case 3:
		if q.committed.CompareAndSwapW(p, f.in.prev, f.in.next) {
			f.resp = f.in.resp
			f.pc = 4
		} else {
			f.in = nil
			f.pc = 0
		}
	case 4:
		reg.WriteW(p, nil)
		f.pc = 5
	case 5:
		reg.FlushW(p)
		return f.resp, sim.StepDone
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *persistFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// persistRecFrame is the recovery routine: read the durable intent,
// redo it with the prev-guard, clear it. pc: 0 = read intent (done if
// none), 1 = guarded redo CAS, 2 = clear intent, 3 = flush the clear.
type persistRecFrame struct {
	q  *Persistent
	pc int
	in *intent
}

// Step implements sim.Frame. Recovery frames record no response; the
// returned value on StepDone is discarded by the runtime.
func (f *persistRecFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	reg := f.q.intents[p.ID()]
	switch f.pc {
	case 0:
		in, _ := reg.ReadW(p).(*intent)
		if in == nil {
			return nil, sim.StepDone
		}
		f.in = in
		f.pc = 1
	case 1:
		// The guard: committed still equals the intent's pre-state exactly
		// when the crashed operation had not taken effect (qstate records
		// are never reused), so the redo applies it at most once.
		f.q.committed.CompareAndSwapW(p, f.in.prev, f.in.next)
		f.pc = 2
	case 2:
		reg.WriteW(p, nil)
		f.pc = 3
	case 3:
		reg.FlushW(p)
		return nil, sim.StepDone
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *persistRecFrame) Fork() sim.Frame {
	c := *f
	return &c
}
