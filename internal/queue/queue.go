// Package queue implements FIFO queues from base objects, the "high-level
// object implementations from registers" context the paper's Section 1
// applies its results to. Two implementations contrast the blocking and
// non-blocking worlds:
//
//   - Locked: a register-held queue guarded by a two-process Peterson lock
//     — linearizable, starvation-free under fair schedules, but *blocking*:
//     a process crashing inside the critical section wedges everyone else
//     forever (the failure mode motivating the paper's non-blocking
//     systems).
//   - CASQueue: a Treiber-style queue on a single compare-and-swap object
//     — linearizable and lock-free: crashes between steps never block the
//     others, and a failed CAS implies another operation committed.
//
// Operations: "enq" (argument, responds OK) and "deq" (responds the head
// value or safety.EmptyResp).
package queue

import (
	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/mutex"
	"repro/internal/safety"
	"repro/internal/sim"
)

// qstate is the immutable queue content stored in the central object.
type qstate struct {
	items []history.Value
}

func (q *qstate) enq(v history.Value) *qstate {
	items := make([]history.Value, len(q.items)+1)
	copy(items, q.items)
	items[len(q.items)] = v
	return &qstate{items: items}
}

func (q *qstate) deq() (*qstate, history.Value) {
	if len(q.items) == 0 {
		return q, safety.EmptyResp
	}
	items := make([]history.Value, len(q.items)-1)
	copy(items, q.items[1:])
	return &qstate{items: items}, q.items[0]
}

// Locked is the lock-based queue (two processes, Peterson lock).
//
//slx:norecover lock and state registers are modeled durable; recovery is a bare re-spawn
type Locked struct {
	lock  *mutex.Peterson
	state *base.Register
}

// NewLocked creates the queue.
func NewLocked() *Locked {
	return &Locked{
		lock:  mutex.NewPeterson(),
		state: base.NewRegister("queue", &qstate{}),
	}
}

// Footprints implements sim.Footprinted: all shared state is in the
// Peterson lock's registers and the queue register.
func (q *Locked) Footprints() bool { return true }

// Fingerprint implements sim.Fingerprintable: the lock registers plus
// the queue register, whose *qstate content is only ever read and
// replaced — never compared by pointer — so the content encoding is
// canonical.
func (q *Locked) Fingerprint(f *sim.Fingerprinter) {
	q.lock.Fingerprint(f)
	q.state.Fingerprint(f)
}

// lockedState is a captured queue configuration.
type lockedState struct{ lock, state any }

// Snapshot implements sim.Snapshottable: the Peterson lock plus the
// queue register (whose *qstate records are immutable).
func (q *Locked) Snapshot() any {
	return &lockedState{lock: q.lock.Snapshot(), state: q.state.Snapshot()}
}

// Restore implements sim.Snapshottable.
func (q *Locked) Restore(v any) {
	st := v.(*lockedState)
	q.lock.Restore(st.lock)
	q.state.Restore(st.state)
}

// Apply implements sim.Object.
func (q *Locked) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	q.lock.Acquire(p)
	st := q.state.Read(p).(*qstate)
	var resp history.Value
	switch inv.Op {
	case "enq":
		q.state.Write(p, st.enq(inv.Arg))
		resp = history.OK
	case "deq":
		next, v := st.deq()
		q.state.Write(p, next)
		resp = v
	}
	q.lock.Release(p)
	return resp
}

// lockedFrame is one in-flight Locked operation: acquire the embedded
// Peterson lock (delegating to its continuation frame), read the state
// register, write the new state, release. pc: 0 = acquiring, 1 = read
// state, 2 = write state, 3 = releasing.
type lockedFrame struct {
	q    *Locked
	inv  sim.Invocation
	pc   int
	sub  sim.Frame // in-flight lock acquire/release continuation
	next *qstate
	resp history.Value
}

// Begin implements sim.Stepped: the first access is the lock acquire's
// opening write, so the invocation window runs no object code.
func (q *Locked) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	sub, _, _ := q.lock.Begin(p, sim.Invocation{Op: mutex.OpAcquire})
	return &lockedFrame{q: q, inv: inv, sub: sub}, nil, sim.StepPaused
}

// Step implements sim.Frame.
func (f *lockedFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	q := f.q
	switch f.pc {
	case 0: // acquiring the lock
		if _, st := f.sub.Step(p); st == sim.StepDone {
			f.sub = nil
			f.pc = 1
		}
	case 1: // read the queue state; compute the new content locally
		st := q.state.ReadW(p).(*qstate)
		switch f.inv.Op {
		case "enq":
			f.next = st.enq(f.inv.Arg)
			f.resp = history.OK
			f.pc = 2
		case "deq":
			f.next, f.resp = st.deq()
			f.pc = 2
		default:
			// Unknown ops skip the write, matching Apply.
			f.sub, _, _ = q.lock.Begin(p, sim.Invocation{Op: mutex.OpRelease})
			f.pc = 3
		}
	case 2: // write the new queue state
		q.state.WriteW(p, f.next)
		f.sub, _, _ = q.lock.Begin(p, sim.Invocation{Op: mutex.OpRelease})
		f.pc = 3
	case 3: // releasing the lock
		if _, st := f.sub.Step(p); st == sim.StepDone {
			return f.resp, sim.StepDone
		}
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *lockedFrame) Fork() sim.Frame {
	c := *f
	if c.sub != nil {
		c.sub = c.sub.Fork()
	}
	return &c
}

// CASQueue is the lock-free queue on one CAS object.
//
// CASQueue deliberately does NOT implement sim.Fingerprintable: its CAS
// compares *qstate pointers, so two content-equal states can still
// behave differently — after a deq(x);enq(x) pair the queue content is
// restored but a process holding the old pointer will fail its CAS
// (the classic ABA distinction). A content fingerprint would equate
// those states and let the exploration cache prune subtrees with
// genuinely different futures.
//
//slx:nofingerprint CAS on *qstate pointer identity: content-equal states diverge (ABA)
//slx:nofootprint every step CASes the one state cell, so all steps conflict anyway
//slx:norecover the one CAS cell is modeled durable; Persistent is the crash-modeled variant
type CASQueue struct {
	state *base.CAS
}

// NewCASQueue creates the queue.
func NewCASQueue() *CASQueue {
	return &CASQueue{state: base.NewCAS("queue", &qstate{})}
}

// Snapshot implements sim.Snapshottable. Unlike a fingerprint, a
// snapshot may capture pointer identity — Restore reinstates the exact
// *qstate pointer, so the ABA distinction that rules out the content
// fingerprint is preserved and incremental exploration stays sound.
func (q *CASQueue) Snapshot() any { return q.state.Snapshot() }

// Restore implements sim.Snapshottable.
func (q *CASQueue) Restore(v any) { q.state.Restore(v) }

// Apply implements sim.Object.
func (q *CASQueue) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	for {
		st := q.state.Read(p).(*qstate)
		switch inv.Op {
		case "enq":
			if q.state.CompareAndSwap(p, st, st.enq(inv.Arg)) {
				return history.OK
			}
		case "deq":
			next, v := st.deq()
			if len(st.items) == 0 {
				// An empty dequeue linearizes at the read; no CAS needed.
				return v
			}
			if q.state.CompareAndSwap(p, st, next) {
				return v
			}
		default:
			return nil
		}
	}
}

// casQueueFrame is one in-flight CASQueue operation: alternating
// read/CAS steps until a CAS succeeds. st is the pointer read by the
// previous step (nil when the next step is the read).
type casQueueFrame struct {
	q   *CASQueue
	inv sim.Invocation
	st  *qstate
}

// Begin implements sim.Stepped.
func (q *CASQueue) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	return &casQueueFrame{q: q, inv: inv}, nil, sim.StepPaused
}

// Step implements sim.Frame.
func (f *casQueueFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	q := f.q
	if f.st == nil {
		st := q.state.ReadW(p).(*qstate)
		switch f.inv.Op {
		case "enq":
		case "deq":
			if len(st.items) == 0 {
				// An empty dequeue linearizes at the read; no CAS needed.
				_, v := st.deq()
				return v, sim.StepDone
			}
		default:
			return nil, sim.StepDone
		}
		f.st = st
		return nil, sim.StepPaused
	}
	st := f.st
	f.st = nil
	switch f.inv.Op {
	case "enq":
		if q.state.CompareAndSwapW(p, st, st.enq(f.inv.Arg)) {
			return history.OK, sim.StepDone
		}
	case "deq":
		next, v := st.deq()
		if q.state.CompareAndSwapW(p, st, next) {
			return v, sim.StepDone
		}
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *casQueueFrame) Fork() sim.Frame {
	c := *f
	return &c
}
