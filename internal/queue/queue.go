// Package queue implements FIFO queues from base objects, the "high-level
// object implementations from registers" context the paper's Section 1
// applies its results to. Two implementations contrast the blocking and
// non-blocking worlds:
//
//   - Locked: a register-held queue guarded by a two-process Peterson lock
//     — linearizable, starvation-free under fair schedules, but *blocking*:
//     a process crashing inside the critical section wedges everyone else
//     forever (the failure mode motivating the paper's non-blocking
//     systems).
//   - CASQueue: a Treiber-style queue on a single compare-and-swap object
//     — linearizable and lock-free: crashes between steps never block the
//     others, and a failed CAS implies another operation committed.
//
// Operations: "enq" (argument, responds OK) and "deq" (responds the head
// value or safety.EmptyResp).
package queue

import (
	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/mutex"
	"repro/internal/safety"
	"repro/internal/sim"
)

// qstate is the immutable queue content stored in the central object.
type qstate struct {
	items []history.Value
}

func (q *qstate) enq(v history.Value) *qstate {
	items := make([]history.Value, len(q.items)+1)
	copy(items, q.items)
	items[len(q.items)] = v
	return &qstate{items: items}
}

func (q *qstate) deq() (*qstate, history.Value) {
	if len(q.items) == 0 {
		return q, safety.EmptyResp
	}
	items := make([]history.Value, len(q.items)-1)
	copy(items, q.items[1:])
	return &qstate{items: items}, q.items[0]
}

// Locked is the lock-based queue (two processes, Peterson lock).
type Locked struct {
	lock  *mutex.Peterson
	state *base.Register
}

// NewLocked creates the queue.
func NewLocked() *Locked {
	return &Locked{
		lock:  mutex.NewPeterson(),
		state: base.NewRegister("queue", &qstate{}),
	}
}

// Footprints implements sim.Footprinted: all shared state is in the
// Peterson lock's registers and the queue register.
func (q *Locked) Footprints() bool { return true }

// Fingerprint implements sim.Fingerprintable: the lock registers plus
// the queue register, whose *qstate content is only ever read and
// replaced — never compared by pointer — so the content encoding is
// canonical.
func (q *Locked) Fingerprint(f *sim.Fingerprinter) {
	q.lock.Fingerprint(f)
	q.state.Fingerprint(f)
}

// lockedState is a captured queue configuration.
type lockedState struct{ lock, state any }

// Snapshot implements sim.Snapshottable: the Peterson lock plus the
// queue register (whose *qstate records are immutable).
func (q *Locked) Snapshot() any {
	return &lockedState{lock: q.lock.Snapshot(), state: q.state.Snapshot()}
}

// Restore implements sim.Snapshottable.
func (q *Locked) Restore(v any) {
	st := v.(*lockedState)
	q.lock.Restore(st.lock)
	q.state.Restore(st.state)
}

// Apply implements sim.Object.
func (q *Locked) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	q.lock.Acquire(p)
	st := q.state.Read(p).(*qstate)
	var resp history.Value
	switch inv.Op {
	case "enq":
		q.state.Write(p, st.enq(inv.Arg))
		resp = history.OK
	case "deq":
		next, v := st.deq()
		q.state.Write(p, next)
		resp = v
	}
	q.lock.Release(p)
	return resp
}

// CASQueue is the lock-free queue on one CAS object.
//
// CASQueue deliberately does NOT implement sim.Fingerprintable: its CAS
// compares *qstate pointers, so two content-equal states can still
// behave differently — after a deq(x);enq(x) pair the queue content is
// restored but a process holding the old pointer will fail its CAS
// (the classic ABA distinction). A content fingerprint would equate
// those states and let the exploration cache prune subtrees with
// genuinely different futures.
//
//slx:nofingerprint CAS on *qstate pointer identity: content-equal states diverge (ABA)
//slx:nofootprint every step CASes the one state cell, so all steps conflict anyway
type CASQueue struct {
	state *base.CAS
}

// NewCASQueue creates the queue.
func NewCASQueue() *CASQueue {
	return &CASQueue{state: base.NewCAS("queue", &qstate{})}
}

// Snapshot implements sim.Snapshottable. Unlike a fingerprint, a
// snapshot may capture pointer identity — Restore reinstates the exact
// *qstate pointer, so the ABA distinction that rules out the content
// fingerprint is preserved and incremental exploration stays sound.
func (q *CASQueue) Snapshot() any { return q.state.Snapshot() }

// Restore implements sim.Snapshottable.
func (q *CASQueue) Restore(v any) { q.state.Restore(v) }

// Apply implements sim.Object.
func (q *CASQueue) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	for {
		st := q.state.Read(p).(*qstate)
		switch inv.Op {
		case "enq":
			if q.state.CompareAndSwap(p, st, st.enq(inv.Arg)) {
				return history.OK
			}
		case "deq":
			next, v := st.deq()
			if len(st.items) == 0 {
				// An empty dequeue linearizes at the read; no CAS needed.
				return v
			}
			if q.state.CompareAndSwap(p, st, next) {
				return v
			}
		default:
			return nil
		}
	}
}
