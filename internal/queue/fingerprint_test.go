package queue

import (
	"errors"
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// TestLockedFingerprintAcrossSchedules: two schedules that leave the
// locked queue in the same configuration — same content, lock free,
// both processes idle — fingerprint identically, and different content
// fingerprints differently.
func TestLockedFingerprintAcrossSchedules(t *testing.T) {
	run := func(script map[int][]sim.Invocation, procs []int) *sim.Result {
		t.Helper()
		res := sim.Run(sim.Config{
			Procs:       2,
			Object:      NewLocked(),
			Env:         sim.Script(script),
			Scheduler:   sim.FixedProcs(procs),
			MaxSteps:    len(procs) + 1,
			Fingerprint: true,
		})
		if res.Err != nil {
			t.Fatalf("run failed: %v", res.Err)
		}
		if !res.Fingerprinted {
			t.Fatal("locked queue run did not fingerprint")
		}
		return res
	}
	// One enq by each process, run to quiescence in both orders: the
	// queue contents differ ([a b] vs [b a]), so fingerprints differ —
	// but each order replayed twice fingerprints identically.
	script := map[int][]sim.Invocation{
		1: {{Op: "enq", Arg: "a"}},
		2: {{Op: "enq", Arg: "b"}},
	}
	steps := make([]int, 0, 32)
	for i := 0; i < 16; i++ {
		steps = append(steps, 1)
	}
	for i := 0; i < 16; i++ {
		steps = append(steps, 2)
	}
	p1First := run(script, steps)
	p1FirstAgain := run(script, steps)
	if p1First.Fingerprint != p1FirstAgain.Fingerprint {
		t.Error("identical runs fingerprint differently")
	}
	rev := make([]int, len(steps))
	for i, p := range steps {
		rev[i] = 3 - p
	}
	p2First := run(script, rev)
	if p1First.Fingerprint == p2First.Fingerprint {
		t.Error("different queue contents ([a b] vs [b a]) fingerprint equal")
	}
}

// TestCASQueueNotFingerprintable pins the deliberate opt-out: the
// Treiber-style queue compares *qstate pointers in its CAS, so a
// content fingerprint would equate ABA-distinct states (deq(x);enq(x)
// restores the content but not the pointer a stalled process holds).
// It must therefore NOT implement sim.Fingerprintable.
func TestCASQueueNotFingerprintable(t *testing.T) {
	var obj sim.Object = NewCASQueue()
	if _, ok := obj.(sim.Fingerprintable); ok {
		t.Fatal("CASQueue implements Fingerprintable; its CAS is pointer-identity-sensitive, so content fingerprints are unsound for it")
	}
	var locked sim.Object = NewLocked()
	if _, ok := locked.(sim.Fingerprintable); !ok {
		t.Fatal("Locked queue lost its Fingerprintable hook")
	}
}

// linSet adapts the incremental linearizability monitor to
// explore.MonitorSet, forwarding the digest hook so the state cache can
// key on the monitor's residual state.
type linSet struct{ m safety.Monitor }

func (s *linSet) Step(e history.Event) error {
	if !s.m.Step(e) {
		return errors.New("queue linearizability violated")
	}
	return nil
}

func (s *linSet) Fork() explore.MonitorSet { return &linSet{m: s.m.Fork()} }

func (s *linSet) StateDigest() (uint64, bool) {
	d, ok := s.m.(safety.Digester)
	if !ok {
		return 0, false
	}
	return d.StateDigest()
}

// TestLockedQueueExploreCachedVerdict: exploring the locked queue with
// the state cache reaches the same linearizability verdict as without,
// while pruning revisited states. (The monitor is the generic JIT
// linearizability monitor over QueueSpec, exercising the LinMonitor
// digest on a spec with real sequential state.)
func TestLockedQueueExploreCachedVerdict(t *testing.T) {
	runExplore := func(cache bool) *explore.Stats {
		st, err := explore.Run(explore.Config{
			Procs:     2,
			NewObject: func() sim.Object { return NewLocked() },
			NewEnv: func() sim.Environment {
				return sim.Script(map[int][]sim.Invocation{
					1: {{Op: "enq", Arg: "a"}, {Op: "deq"}},
					2: {{Op: "enq", Arg: "b"}},
				})
			},
			Depth: 10,
			NewMonitors: func() explore.MonitorSet {
				return &linSet{m: safety.NewLinMonitor(safety.QueueSpec{})}
			},
			Cache: cache,
		})
		if err != nil {
			t.Fatalf("locked queue must be linearizable at this depth (cache=%v): %v", cache, err)
		}
		return st
	}
	plain := runExplore(false)
	cached := runExplore(true)
	if cached.CacheHits == 0 {
		t.Error("state cache hit nothing on the locked queue workload")
	}
	if cached.Prefixes >= plain.Prefixes {
		t.Errorf("cache did not reduce explored prefixes: %d vs %d", cached.Prefixes, plain.Prefixes)
	}
	t.Logf("locked queue: prefixes plain=%d cached=%d hits=%d", plain.Prefixes, cached.Prefixes, cached.CacheHits)
}
