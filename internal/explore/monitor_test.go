package explore

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/base"
	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// recordingSet adapts a safety.Monitor to MonitorSet, counting steps and
// forks (atomically, so the parallel path can share the counters).
type recordingSet struct {
	m            safety.Monitor
	steps, forks *atomic.Int64
}

func (s *recordingSet) Step(e history.Event) error {
	s.steps.Add(1)
	if !s.m.Step(e) {
		return fmt.Errorf("monitor violation")
	}
	return nil
}

func (s *recordingSet) Fork() MonitorSet {
	s.forks.Add(1)
	return &recordingSet{m: s.m.Fork(), steps: s.steps, forks: s.forks}
}

func proposeOnce01() func() sim.Environment {
	return func() sim.Environment {
		return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
	}
}

// TestMonitorPathMatchesBatch explores the same tree through the batch
// Check and through monitors and requires identical prefix counts, plus
// strictly fewer monitor event steps than batch event scans.
func TestMonitorPathMatchesBatch(t *testing.T) {
	prop := safety.AgreementValidity{}
	batchScans := 0
	batch, err := Run(Config{
		Procs:     2,
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		NewEnv:    proposeOnce01(),
		Depth:     9,
		Check: func(h history.History, schedule []sim.Decision) error {
			batchScans += len(h)
			if !prop.Holds(h) {
				return fmt.Errorf("violated")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("batch explore: %v", err)
	}
	var steps, forks atomic.Int64
	mon, err := Run(Config{
		Procs:     2,
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		NewEnv:    proposeOnce01(),
		Depth:     9,
		NewMonitors: func() MonitorSet {
			return &recordingSet{m: prop.Spawn(), steps: &steps, forks: &forks}
		},
	})
	if err != nil {
		t.Fatalf("monitor explore: %v", err)
	}
	if mon.Prefixes != batch.Prefixes || mon.Steps != batch.Steps {
		t.Fatalf("monitor path explored %d prefixes/%d steps, batch %d/%d",
			mon.Prefixes, mon.Steps, batch.Prefixes, batch.Steps)
	}
	if forks.Load() == 0 {
		t.Fatal("the monitor set must have been forked at branch points")
	}
	if int(steps.Load())*2 > batchScans {
		t.Fatalf("monitor path stepped %d events, want ≤ half of the batch path's %d scans", steps.Load(), batchScans)
	}
	t.Logf("prefixes=%d monitor events=%d batch scans=%d forks=%d", mon.Prefixes, steps.Load(), batchScans, forks.Load())
}

// TestMonitorPathFindsViolationWithWitness: the monitor path reports the
// violation wrapped in a *Violation carrying a non-nil witness that
// replays to a violating history.
func TestMonitorPathFindsViolationWithWitness(t *testing.T) {
	prop := safety.AgreementValidity{}
	newObj := func() sim.Object { return &brokenConsensus{r: base.NewRegister("r", nil)} }
	var steps, forks atomic.Int64
	st, err := Run(Config{
		Procs:     2,
		NewObject: newObj,
		NewEnv:    proposeOnce01(),
		Depth:     6,
		NewMonitors: func() MonitorSet {
			return &recordingSet{m: prop.Spawn(), steps: &steps, forks: &forks}
		},
	})
	if err == nil {
		t.Fatal("monitor path must find the agreement violation")
	}
	var vio *Violation
	if !errors.As(err, &vio) {
		t.Fatalf("error must be a *Violation, got %T: %v", err, err)
	}
	if vio.Schedule == nil || st.Witness == nil {
		t.Fatal("witness must be non-nil on failure")
	}
	if vio.EventIndex < 0 || vio.EventIndex >= len(vio.H) {
		t.Fatalf("event index %d out of range of %d-event history", vio.EventIndex, len(vio.H))
	}
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    newObj(),
		Env:       proposeOnce01()(),
		Scheduler: sim.Fixed(vio.Schedule),
		MaxSteps:  len(vio.Schedule) + 1,
	})
	if prop.Holds(res.H) {
		t.Error("witness schedule must reproduce the violation")
	}
}

// TestRootViolationWitnessNonNil: a property violated on the empty
// prefix must still yield a non-nil (empty) witness, on the serial and
// the parallel path, batch and monitor mode alike.
func TestRootViolationWitnessNonNil(t *testing.T) {
	alwaysBad := func(h history.History, schedule []sim.Decision) error {
		return fmt.Errorf("always violated")
	}
	for _, workers := range []int{1, 4} {
		st, err := Run(Config{
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv:    proposeOnce01(),
			Depth:     3,
			Workers:   workers,
			Check:     alwaysBad,
		})
		if err == nil {
			t.Fatalf("workers=%d: violation expected", workers)
		}
		if st.Witness == nil || len(st.Witness) != 0 {
			t.Errorf("workers=%d: root witness = %#v, want non-nil empty schedule", workers, st.Witness)
		}
	}
}

// failFirstSet violates on the very first event it sees.
type failFirstSet struct{}

func (failFirstSet) Step(e history.Event) error { return fmt.Errorf("first event rejected") }
func (f failFirstSet) Fork() MonitorSet         { return f }

// TestMonitorParallelMatchesSequential: the monitor path explores the
// same tree under Workers > 1, and violations found by workers carry
// their witnesses.
func TestMonitorParallelMatchesSequential(t *testing.T) {
	prop := safety.AgreementValidity{}
	mk := func(workers int) *Stats {
		var steps, forks atomic.Int64
		st, err := Run(Config{
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv:    proposeOnce01(),
			Depth:     9,
			Workers:   workers,
			NewMonitors: func() MonitorSet {
				return &recordingSet{m: prop.Spawn(), steps: &steps, forks: &forks}
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return st
	}
	if seq, par := mk(1), mk(4); seq.Prefixes != par.Prefixes {
		t.Errorf("parallel explored %d prefixes, sequential %d", par.Prefixes, seq.Prefixes)
	}

	// A violation below the root, found by a worker, surfaces with its witness.
	st, err := Run(Config{
		Procs:       2,
		NewObject:   func() sim.Object { return &brokenConsensus{r: base.NewRegister("r", nil)} },
		NewEnv:      proposeOnce01(),
		Depth:       6,
		Workers:     4,
		NewMonitors: func() MonitorSet { return failFirstSet{} },
	})
	if err == nil {
		t.Fatal("violation expected")
	}
	var vio *Violation
	if !errors.As(err, &vio) || st.Witness == nil {
		t.Fatalf("want *Violation with witness, got %T (witness %#v)", err, st.Witness)
	}
}
