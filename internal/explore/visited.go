package explore

import "sync"

// visitedSet is the concurrent state cache: it maps cache keys
// (configuration fingerprint combined with monitor digest) to the
// budgets and sleep sets their subtrees were fully explored under. The
// map is sharded by key so parallel workers rarely contend.
//
// An entry means: from a configuration with this key, every schedule of
// at most remDepth further steps, remCrashes further crashes and
// remRecoveries further recoveries — except those whose first decision
// was asleep in the stored sleep set — was explored without a violation.
// A lookup may therefore prune its subtree only if it has at most that
// much budget left and its own sleep set covers the stored one (a larger
// stored sleep set could have skipped branches the current node still
// needs; Godefroid's classic condition for composing state caching with
// sleep sets).
type visitedSet struct {
	shards [visitedShards]visitedShard
}

// Visited is a visited-set cache tier that can be handed to an
// exploration via Config.Visited and shared across several explorations
// of the same object/environment/monitor family (see the Config.Visited
// contract for when sharing is sound). The zero value is not usable;
// construct with NewVisited.
type Visited struct {
	set *visitedSet
}

// NewVisited creates an empty shareable visited-set tier.
func NewVisited() *Visited { return &Visited{set: newVisitedSet()} }

// Len reports how many distinct cache keys the tier holds (a coarse
// size measure for service metrics; entries per key are not counted).
func (v *Visited) Len() int {
	n := 0
	for i := range v.set.shards {
		s := &v.set.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

const visitedShards = 64

type visitedShard struct {
	mu sync.Mutex
	m  map[uint64][]visitedEntry
}

type visitedEntry struct {
	remDepth, remCrashes, remRecoveries int
	sleep                               []sleepEntry
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[uint64][]visitedEntry)
	}
	return v
}

func (v *visitedSet) shard(key uint64) *visitedShard {
	return &v.shards[key%visitedShards]
}

// sleepCovered reports whether every stored sleep entry is also asleep
// now: then the stored exploration explored at least every branch the
// current node would.
func sleepCovered(stored, now []sleepEntry) bool {
	for _, e := range stored {
		found := false
		for _, n := range now {
			if e == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// hit reports whether an already explored state dominates the current
// one: at least as much remaining budget, and a sleep set the current
// one covers.
func (v *visitedSet) hit(key uint64, remDepth, remCrashes, remRecoveries int, sleep []sleepEntry) bool {
	s := v.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.m[key] {
		if e.remDepth >= remDepth && e.remCrashes >= remCrashes && e.remRecoveries >= remRecoveries && sleepCovered(e.sleep, sleep) {
			return true
		}
	}
	return false
}

// store publishes a fully explored state. Entries dominated by the new
// one are dropped; the store is skipped if an existing entry dominates
// it (a racing worker may have published a stronger one meanwhile).
func (v *visitedSet) store(key uint64, remDepth, remCrashes, remRecoveries int, sleep []sleepEntry) {
	s := v.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.m[key]
	for _, e := range entries {
		if e.remDepth >= remDepth && e.remCrashes >= remCrashes && e.remRecoveries >= remRecoveries && sleepCovered(e.sleep, sleep) {
			return // dominated: nothing new to publish
		}
	}
	kept := entries[:0]
	for _, e := range entries {
		if remDepth >= e.remDepth && remCrashes >= e.remCrashes && remRecoveries >= e.remRecoveries && sleepCovered(sleep, e.sleep) {
			continue // the new entry dominates this one
		}
		kept = append(kept, e)
	}
	s.m[key] = append(kept, visitedEntry{remDepth: remDepth, remCrashes: remCrashes, remRecoveries: remRecoveries, sleep: sleep})
}
