package explore

import (
	"reflect"
	"testing"

	"repro/internal/base"
	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tm"
)

// footprintedBroken is brokenConsensus with declared footprints: it
// decides its own proposal (seeded agreement violation), so POR must
// still find a violation that full exploration finds.
type footprintedBroken struct {
	r *base.Register
}

func (b *footprintedBroken) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	b.r.Write(p, inv.Arg)
	return inv.Arg
}

func (b *footprintedBroken) Footprints() bool { return true }

// racyLock is a seeded deep bug: a test-and-test-and-set "lock" whose
// test and set are two separate register steps, so mutual exclusion is
// violated only on the interleavings where both processes read false
// before either writes — exactly the racy schedules a wrong reduction
// would be tempted to prune (the racing steps touch the same register,
// so POR must keep them ordered both ways).
type racyLock struct {
	held *base.Register
}

func (l *racyLock) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case safety.LockAcquire:
		for {
			if !l.held.Read(p).(bool) {
				l.held.Write(p, true)
				return "locked"
			}
		}
	case safety.LockRelease:
		l.held.Write(p, false)
		return "unlocked"
	}
	return nil
}

func (l *racyLock) Footprints() bool { return true }

// porConfigs is the cross-check table: every example object is explored
// with and without POR and must produce the identical verdict.
func porConfigs() map[string]Config {
	prop := safety.AgreementValidity{}
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Var: "x"}}},
	}
	propS := safety.PropertyS{}
	return map[string]Config{
		"commit-adopt/agreement": {
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth: 10,
			Check: CheckSafety("agreement+validity", prop.Holds),
		},
		"commit-adopt/crashes": {
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth:   7,
			Crashes: 1,
			Check:   CheckSafety("agreement+validity", prop.Holds),
		},
		"cas-consensus/agreement": {
			Procs:     3,
			NewObject: func() sim.Object { return consensus.NewCASBased() },
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1, 3: 2})
			},
			Depth: 8,
			Check: CheckSafety("agreement+validity", prop.Holds),
		},
		"broken-consensus/violation": {
			Procs: 2,
			NewObject: func() sim.Object {
				return &footprintedBroken{r: base.NewRegister("r", nil)}
			},
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth: 6,
			Check: CheckSafety("agreement+validity", prop.Holds),
		},
		"racy-lock/mutex-violation": {
			Procs:     2,
			NewObject: func() sim.Object { return &racyLock{held: base.NewRegister("lock", false)} },
			NewEnv: func() sim.Environment {
				return sim.Script(map[int][]sim.Invocation{
					1: {{Op: safety.LockAcquire}, {Op: safety.LockRelease}},
					2: {{Op: safety.LockAcquire}, {Op: safety.LockRelease}},
				})
			},
			Depth: 10,
			Check: CheckSafety("mutual-exclusion", safety.MutualExclusion{}.Holds),
		},
		"i12/property-s": {
			Procs:     2,
			NewObject: func() sim.Object { return tm.NewI12(2) },
			NewEnv:    func() sim.Environment { return tm.TxnLoop(tpl) },
			Depth:     9,
			Check:     CheckSafety("opacity+S", propS.Holds),
		},
		"globalcas/opacity": {
			Procs:     2,
			NewObject: func() sim.Object { return tm.NewGlobalCAS(2) },
			NewEnv:    func() sim.Environment { return tm.TxnLoop(tpl) },
			Depth:     9,
			Check:     CheckSafety("opacity", safety.Opaque),
		},
	}
}

// TestPORCrossCheck is the acceptance gate of the reduction: with and
// without POR every exploration must reach the identical verdict —
// in particular POR must never miss a violation full exploration finds —
// and POR must never explore more than the full tree.
func TestPORCrossCheck(t *testing.T) {
	for name, cfg := range porConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			full := cfg
			full.POR = false
			fst, ferr := Run(full)
			por := cfg
			por.POR = true
			pst, perr := Run(por)
			if (ferr == nil) != (perr == nil) {
				t.Fatalf("verdicts differ: full err=%v, POR err=%v", ferr, perr)
			}
			if ferr != nil && pst.Witness == nil {
				t.Fatal("POR violation must carry a witness")
			}
			if fst.Pruned != 0 {
				t.Errorf("full exploration pruned %d subtrees, want 0", fst.Pruned)
			}
			if pst.Prefixes > fst.Prefixes {
				t.Errorf("POR explored %d prefixes, full only %d", pst.Prefixes, fst.Prefixes)
			}
			t.Logf("prefixes full=%d por=%d pruned=%d (violation=%v)",
				fst.Prefixes, pst.Prefixes, pst.Pruned, ferr != nil)
		})
	}
}

// TestPORWitnessReplays checks that a POR witness is a real
// counterexample: replaying it reproduces a violating history.
func TestPORWitnessReplays(t *testing.T) {
	prop := safety.AgreementValidity{}
	cfg := porConfigs()["broken-consensus/violation"]
	cfg.POR = true
	st, err := Run(cfg)
	if err == nil {
		t.Fatal("POR must find the seeded agreement violation")
	}
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    &footprintedBroken{r: base.NewRegister("r", nil)},
		Env:       consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Fixed(st.Witness),
		MaxSteps:  len(st.Witness) + 1,
	})
	if prop.Holds(res.H) {
		t.Errorf("witness %v replays to a non-violating history %s", st.Witness, res.H)
	}
}

// TestPORPrunes checks that the reduction actually prunes on a
// footprinted workload (the cross-check alone would pass with zero
// pruning).
func TestPORPrunes(t *testing.T) {
	cfg := porConfigs()["commit-adopt/agreement"]
	cfg.POR = true
	pst, err := Run(cfg)
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	if pst.Pruned == 0 {
		t.Fatal("POR pruned nothing on the register-based commit-adopt workload")
	}
	cfg.POR = false
	fst, err := Run(cfg)
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	if pst.Prefixes >= fst.Prefixes {
		t.Fatalf("POR explored %d prefixes, full %d — no reduction", pst.Prefixes, fst.Prefixes)
	}
	t.Logf("commit-adopt depth-10: prefixes full=%d por=%d (%.1fx)", fst.Prefixes, pst.Prefixes,
		float64(fst.Prefixes)/float64(pst.Prefixes))
}

// TestPORUnfootprintedDegrades checks the degradation contract: an
// object that does not declare footprints explores the exact full tree
// (same prefixes and steps, zero pruning) even with POR enabled.
func TestPORUnfootprintedDegrades(t *testing.T) {
	prop := safety.AgreementValidity{}
	cfg := Config{
		Procs: 2,
		NewObject: func() sim.Object {
			// brokenConsensus (no Footprints method) from explore_test.go.
			return &brokenConsensus{r: base.NewRegister("r", nil)}
		},
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth: 5,
		Check: CheckSafety("agreement+validity", prop.Holds),
	}
	fst, ferr := Run(cfg)
	cfg.POR = true
	pst, perr := Run(cfg)
	if (ferr == nil) != (perr == nil) {
		t.Fatalf("verdicts differ: full err=%v, POR err=%v", ferr, perr)
	}
	if pst.Pruned != 0 {
		t.Errorf("POR pruned %d subtrees without footprints", pst.Pruned)
	}
	if pst.Prefixes != fst.Prefixes || pst.Steps != fst.Steps {
		t.Errorf("degraded POR explored %d/%d, full %d/%d — trees differ",
			pst.Prefixes, pst.Steps, fst.Prefixes, fst.Steps)
	}
	if !reflect.DeepEqual(fst.Witness, pst.Witness) {
		t.Errorf("degraded POR witness %v differs from full %v", pst.Witness, fst.Witness)
	}
}

// TestPORParallelMatchesSequential checks that POR prunes the identical
// tree under Workers > 1: the first-level sleep sets are precomputed
// for the workers, so prefixes, steps and pruning counts all agree with
// the sequential reduction.
func TestPORParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"commit-adopt/agreement", "cas-consensus/agreement", "commit-adopt/crashes"} {
		cfg := porConfigs()[name]
		cfg.POR = true
		seq, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		cfg.Workers = 4
		par, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if par.Prefixes != seq.Prefixes || par.Steps != seq.Steps || par.Pruned != seq.Pruned {
			t.Errorf("%s: parallel %d/%d/%d (prefixes/steps/pruned) != sequential %d/%d/%d",
				name, par.Prefixes, par.Steps, par.Pruned, seq.Prefixes, seq.Steps, seq.Pruned)
		}
	}
}
