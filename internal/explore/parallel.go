package explore

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Parallel exploration: a bounded work-stealing scheduler over subtree
// tasks. Each worker runs the same DFS as sequential exploration; at a
// branch point it keeps the first live child inline and, while its deque
// has room, publishes the remaining sibling subtrees as stealable tasks
// (monitor sets forked, sleep sets precomputed via footprint probes).
// Idle workers pop their own deque newest-first (depth-first locality)
// and steal from the longest victim deque oldest-first (the shallowest,
// largest subtrees). All workers share the engine's visited set.
//
// Witness determinism: sequential DFS reports the failure at the
// preorder-least prefix, because it stops at the first one it reaches.
// The pool reproduces that schedule-independently by tracking the
// preorder-least failure found so far and cutting off exactly the work
// that is preorder-after it: every node preorder-before the current best
// is still explored, so when the pool drains, the recorded failure is
// the preorder-least one in the whole tree — the same prefix, and the
// same error, sequential exploration reports. (Under Config.Cache the
// shared visited set makes which equivalent witness is reached
// timing-dependent; verdicts are unaffected.)

const (
	// minSplitDepth is the minimum remaining depth at which a worker
	// splits sibling subtrees into tasks: shallower subtrees cost more
	// in task and probe overhead than they recoup in balance.
	minSplitDepth = 2
	// wsDequeCap bounds each worker's deque; a worker whose deque is
	// full explores its children inline like sequential DFS.
	wsDequeCap = 256
)

// wsTask is one stealable subtree: the schedule prefix of its root, the
// root's preorder path (child ordinals), its crash and recovery budgets
// spent, the parent's event count, the forked monitor set as of the
// parent, and the inherited sleep set.
type wsTask struct {
	prefix       []sim.Decision
	path         []int
	crashes      int
	recoveries   int
	parentEvents int
	ms           MonitorSet
	sleep        []sleepEntry
}

// wsWorker is the per-worker handle threaded through the DFS.
type wsWorker struct {
	id   int
	pool *wsPool
}

// wsFailure is a candidate result: the preorder position of the failing
// node, the original error, and its witness.
type wsFailure struct {
	path    []int
	err     error
	witness []sim.Decision
}

// nodeError tags a node failure (violation, check error, replay error)
// with its preorder position so the pool can order candidates.
type nodeError struct {
	path []int
	err  error
}

func (e *nodeError) Error() string { return e.err.Error() }
func (e *nodeError) Unwrap() error { return e.err }

// fatalError tags an exploration-wide abort (context cancellation).
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// cmpPath orders preorder positions: lexicographic on child ordinals,
// with an ancestor (proper prefix) preceding its descendants.
func cmpPath(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// wsPool is the shared scheduler state.
type wsPool struct {
	g    *engine
	mu   sync.Mutex
	cond *sync.Cond
	// deques[i] is worker i's deque: the owner pushes and pops at the
	// tail, thieves take from the head.
	deques      [][]*wsTask
	outstanding int // queued + running tasks
	best        *wsFailure
	fatalErr    error
	total       *Stats

	// Lock-free snapshots of best.path and the abort flag for cutoff,
	// which runs on every explored node: a stale read only delays a
	// cutoff (extra work, never a wrong skip), so the hot path need not
	// contend on mu with the deque operations.
	bestPath atomic.Pointer[[]int]
	aborted  atomic.Bool
}

// runParallel explores the tree with the work-stealing pool.
func (g *engine) runParallel(workers int) (*Stats, error) {
	total := &Stats{Workers: workers}
	p := &wsPool{g: g, deques: make([][]*wsTask, workers), total: total}
	p.cond = sync.NewCond(&p.mu)
	var ms MonitorSet
	if g.cfg.NewMonitors != nil {
		ms = g.cfg.NewMonitors()
	}
	p.deques[0] = append(p.deques[0], &wsTask{ms: ms}) // the root subtree: the whole tree
	p.outstanding = 1

	// Loop 0 runs inline on the calling goroutine so the exploration
	// always makes progress; the remaining loops are either spawned as
	// goroutines or offered to the external executor (Config.Spawn),
	// which may decline them. A loop that starts after the pool has
	// drained exits immediately, so late-running accepted offers are
	// harmless.
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		id := i
		wg.Add(1)
		loop := func() {
			defer wg.Done()
			p.run(id)
		}
		if g.cfg.Spawn != nil {
			if !g.cfg.Spawn(loop) {
				wg.Done()
			}
		} else {
			go loop()
		}
	}
	p.run(0)
	wg.Wait()
	if p.fatalErr != nil {
		return total, p.fatalErr
	}
	if p.best != nil {
		total.Witness = p.best.witness
		return total, p.best.err
	}
	return total, nil
}

// run is one worker's loop: take a task, explore its subtree, report.
// Each worker owns one exec for its lifetime: a stolen task seeds the
// session by one replay of the split prefix, then the subtree descends
// incrementally.
func (p *wsPool) run(id int) {
	w := &wsWorker{id: id, pool: p}
	var ex pathExec
	defer func() {
		if ex != nil {
			ex.close()
		}
	}()
	for {
		t := p.next(id)
		if t == nil {
			return
		}
		st := &Stats{}
		if ex == nil {
			var err error
			if ex, err = p.g.newExec(st); err != nil {
				p.finish(st, &fatalError{err: err})
				continue
			}
		} else {
			ex.bind(st)
		}
		err := p.g.runTask(w, ex, t, st)
		p.finish(st, err)
	}
}

// next returns the worker's next task: its own newest, else a steal,
// else it waits until work appears or the pool drains (nil).
func (p *wsPool) next(id int) *wsTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.fatalErr != nil {
			return nil
		}
		if q := p.deques[id]; len(q) > 0 {
			t := q[len(q)-1]
			p.deques[id] = q[:len(q)-1]
			if p.skipLocked(t) {
				continue
			}
			return t
		}
		victim, most := -1, 0
		for j := range p.deques {
			if j != id && len(p.deques[j]) > most {
				victim, most = j, len(p.deques[j])
			}
		}
		if victim >= 0 {
			q := p.deques[victim]
			t := q[0]
			p.deques[victim] = q[1:]
			if p.skipLocked(t) {
				continue
			}
			return t
		}
		if p.outstanding == 0 {
			p.cond.Broadcast()
			return nil
		}
		p.cond.Wait()
	}
}

// skipLocked drops a task that is preorder-after the best failure found
// so far (its subtree cannot improve the result). Caller holds mu.
func (p *wsPool) skipLocked(t *wsTask) bool {
	if p.best == nil || cmpPath(t.path, p.best.path) < 0 {
		return false
	}
	p.outstanding--
	if p.outstanding == 0 {
		p.cond.Broadcast()
	}
	return true
}

// cutoff reports whether a node at path should not be explored: the
// pool is aborting, or a failure preorder-before (or at) it is already
// known. It reads the atomic snapshots, not mu — see their field
// comment for why staleness is harmless.
func (p *wsPool) cutoff(path []int) bool {
	if p.aborted.Load() {
		return true
	}
	best := p.bestPath.Load()
	return best != nil && cmpPath(path, *best) >= 0
}

// room reports whether worker id's deque can take n more tasks. Only
// the owner pushes, so a true result cannot be invalidated by a racing
// push (steals only shrink the deque).
func (p *wsPool) room(id, n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.deques[id])+n <= wsDequeCap
}

// pushAll publishes tasks to worker id's deque tail. The tasks are a
// node's later siblings in reverse preorder, so the owner's next tail
// pop — after its inline subtree drains — is the preorder-least sibling.
func (p *wsPool) pushAll(id int, tasks []*wsTask) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(tasks) - 1; i >= 0; i-- {
		p.deques[id] = append(p.deques[id], tasks[i])
	}
	p.outstanding += len(tasks)
	p.cond.Broadcast()
}

// finish merges a completed task's statistics and classifies its error:
// fatal aborts the pool, node failures compete for the preorder-least
// slot.
func (p *wsPool) finish(st *Stats, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total.Prefixes += st.Prefixes
	p.total.Steps += st.Steps
	p.total.Resims += st.Resims
	p.total.Pruned += st.Pruned
	p.total.CacheHits += st.CacheHits
	if err != nil {
		var fe *fatalError
		var ne *nodeError
		switch {
		case errors.As(err, &fe):
			if p.fatalErr == nil {
				p.fatalErr = fe.err
				p.aborted.Store(true)
			}
		case errors.As(err, &ne):
			if p.best == nil || cmpPath(ne.path, p.best.path) < 0 {
				p.best = &wsFailure{path: ne.path, err: ne.err, witness: st.Witness}
				p.bestPath.Store(&p.best.path)
			}
		default:
			if p.fatalErr == nil {
				p.fatalErr = err
				p.aborted.Store(true)
			}
		}
	}
	p.outstanding--
	if p.outstanding == 0 || p.fatalErr != nil {
		p.cond.Broadcast()
	}
}

// trySplit hands a node's later live children to the pool as stealable
// tasks, returning how many were spawned (0 when the deque is full).
// Under POR each spawned child's sleep set needs the first-step
// footprints of its earlier live siblings — which have not run yet — so
// they are probed first: the session exec extends and rewinds one step
// per sibling (counted as re-simulation), the replay exec runs one
// short replay each (excluded from the statistics, like PR3's
// first-level probes).
func (g *engine) trySplit(w *wsWorker, ex pathExec, mark execMark, ps *pathState, crashes, recoveries int, ms MonitorSet, z []sleepEntry, children []sim.Decision, live []int) int {
	n := len(live) - 1
	if !w.pool.room(w.id, n) {
		return 0
	}
	parentEvents := len(ex.history())
	var probes []sim.Access // aligned with live[:len(live)-1]
	if g.cfg.POR {
		probes = make([]sim.Access, len(live)-1)
		for j, ci := range live[:len(live)-1] {
			if children[ci].Crash || children[ci].Recover {
				continue
			}
			// A failed probe leaves the footprint unknown, which only
			// makes the spawned sibling conservatively dependent.
			probes[j], _ = ex.probe(mark, children[ci])
		}
	}
	prefix := ps.prefix[:len(ps.prefix):len(ps.prefix)]
	path := ps.path[:len(ps.path):len(ps.path)]
	tasks := make([]*wsTask, 0, n)
	sl := z[:len(z):len(z)]
	for j := 1; j < len(live); j++ {
		ci := live[j]
		d := children[ci]
		if g.cfg.POR {
			// The sibling explored before this child goes to sleep for it,
			// exactly as the sequential loop would append it.
			if prev := children[live[j-1]]; !prev.Crash && !prev.Recover {
				sl = append(sl[:len(sl):len(sl)], sleepEntry{d: prev, a: probes[j-1]})
			}
		}
		var tms MonitorSet
		if ms != nil {
			tms = ms.Fork()
		}
		cr, rv := crashes, recoveries
		switch {
		case d.Crash:
			cr++
		case d.Recover:
			rv++
		}
		tasks = append(tasks, &wsTask{
			prefix:       append(prefix, d),
			path:         append(path, ci),
			crashes:      cr,
			recoveries:   rv,
			parentEvents: parentEvents,
			ms:           tms,
			sleep:        sl,
		})
	}
	w.pool.pushAll(w.id, tasks)
	return n
}
