package explore

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/base"
	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// brokenCfg explores the seeded agreement violation: many subtrees
// contain violations, so a parallel exploration that reported whichever
// worker finished first would return a different witness run to run.
func brokenCfg(workers int) Config {
	prop := safety.AgreementValidity{}
	return Config{
		Procs: 2,
		NewObject: func() sim.Object {
			return &brokenConsensus{r: base.NewRegister("r", nil)}
		},
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth:   6,
		Workers: workers,
		Check:   CheckSafety("agreement+validity", prop.Holds),
	}
}

// TestParallelWitnessDeterministic checks that a multi-violation object
// yields the identical witness at Workers=1 and Workers=8: the parallel
// path must report the failure of the lexicographically least root
// decision — the one sequential DFS reaches first — not whichever
// worker's failure arrives first.
func TestParallelWitnessDeterministic(t *testing.T) {
	seqSt, seqErr := Run(brokenCfg(1))
	if seqErr == nil {
		t.Fatal("sequential exploration must find the violation")
	}
	for i := 0; i < 20; i++ {
		parSt, parErr := Run(brokenCfg(8))
		if parErr == nil {
			t.Fatal("parallel exploration must find the violation")
		}
		if !reflect.DeepEqual(parSt.Witness, seqSt.Witness) {
			t.Fatalf("run %d: parallel witness %v != sequential witness %v",
				i, parSt.Witness, seqSt.Witness)
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("run %d: parallel error %q != sequential error %q", i, parErr, seqErr)
		}
	}
}

// TestCrashBranchingOnlyReadyProcs pins the crash-branch fix: crash
// children are generated only for processes that can still take steps.
// One process, one two-step operation, depth 4, one crash budget: the
// tree is exactly {[], [1], [c1], [1 1], [1 c1]} — after the operation
// completes the process is idle and no crash-only subtrees (which would
// duplicate their siblings modulo the crash event) are enumerated.
func TestCrashBranchingOnlyReadyProcs(t *testing.T) {
	cfg := Config{
		Procs: 1,
		NewObject: func() sim.Object {
			return sim.ObjectFunc(func(p *sim.Proc, inv sim.Invocation) history.Value {
				p.Exec("work", func() {})
				return history.OK
			})
		},
		NewEnv: func() sim.Environment {
			return sim.OneShot(map[int]sim.Invocation{1: {Op: "op"}})
		},
		Depth:   4,
		Crashes: 1,
		Check:   func(h history.History, s []sim.Decision) error { return nil },
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if st.Prefixes != 5 {
		t.Errorf("explored %d prefixes, want exactly 5 (no crash branches for idle processes)", st.Prefixes)
	}
}

// TestCrashParitySequentialParallel checks the two paths enumerate the
// identical crash-injected tree: same prefixes, same steps, same
// verdict. (The parallel path previously built crash roots for every
// process 1..n without consulting the captured ready set.)
func TestCrashParitySequentialParallel(t *testing.T) {
	prop := safety.AgreementValidity{}
	mk := func(workers int) Config {
		return Config{
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth:   8,
			Crashes: 2,
			Workers: workers,
			Check:   CheckSafety("agreement+validity", prop.Holds),
		}
	}
	seq, err := Run(mk(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Run(mk(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Prefixes != par.Prefixes || seq.Steps != par.Steps {
		t.Errorf("parallel %d prefixes / %d steps != sequential %d prefixes / %d steps",
			par.Prefixes, par.Steps, seq.Prefixes, seq.Steps)
	}
}

// TestRootViolationStatsParity checks the boundary error case both paths
// share: a property rejecting the empty history fails on the root
// prefix, and sequential and parallel explorations must report identical
// statistics (one prefix, a non-nil empty witness) and the same error.
func TestRootViolationStatsParity(t *testing.T) {
	rootErr := errors.New("empty history rejected")
	mk := func(workers int) Config {
		return Config{
			Procs: 2,
			NewObject: func() sim.Object {
				return &brokenConsensus{r: base.NewRegister("r", nil)}
			},
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth:   4,
			Workers: workers,
			Check: func(h history.History, s []sim.Decision) error {
				if len(h) == 0 {
					return rootErr
				}
				return nil
			},
		}
	}
	seq, seqErr := Run(mk(1))
	par, parErr := Run(mk(4))
	if !errors.Is(seqErr, rootErr) || !errors.Is(parErr, rootErr) {
		t.Fatalf("both paths must fail on the root prefix (seq %v, par %v)", seqErr, parErr)
	}
	if seq.Prefixes != 1 || par.Prefixes != 1 {
		t.Errorf("root failure must count exactly the root prefix: seq %d, par %d", seq.Prefixes, par.Prefixes)
	}
	if seq.Witness == nil || len(seq.Witness) != 0 || !reflect.DeepEqual(seq.Witness, par.Witness) {
		t.Errorf("root witnesses must be non-nil and empty on both paths: seq %v, par %v", seq.Witness, par.Witness)
	}
	if seq.Steps != par.Steps {
		t.Errorf("root failure steps differ: seq %d, par %d", seq.Steps, par.Steps)
	}
}

// TestReplayFailureStats pins the stats contract of a failed task
// seed, shared by the sequential entry point and the parallel workers
// (both run the same runTask function): the failing prefix is not
// counted, its executed steps are, no witness is fabricated, and the
// error names the replay.
func TestReplayFailureStats(t *testing.T) {
	cfg := brokenCfg(1)
	// A prefix that crashes process 1 twice is invalid: the simulator
	// reports StopError and the replay fails.
	bad := []sim.Decision{{Proc: 2}, {Proc: 1, Crash: true}, {Proc: 1, Crash: true}}
	st := &Stats{}
	g := &engine{cfg: cfg}
	ex, err := g.newExec(st)
	if err != nil {
		t.Fatalf("newExec: %v", err)
	}
	defer ex.close()
	err = g.runTask(nil, ex, &wsTask{prefix: bad, crashes: 2}, st)
	if err == nil || !strings.Contains(err.Error(), "replay failed") {
		t.Fatalf("invalid prefix must fail its replay, got %v", err)
	}
	if st.Prefixes != 0 {
		t.Errorf("failed replay counted %d prefixes, want 0", st.Prefixes)
	}
	if st.Steps == 0 {
		t.Error("steps executed before the failure must be counted")
	}
	if st.Witness != nil {
		t.Errorf("failed replay fabricated witness %v", st.Witness)
	}
}

// TestParallelReplayErrorDeterministic checks that when several workers
// fail, the reported error is that of the least root decision even when
// the failures are replay errors rather than violations.
func TestParallelReplayErrorDeterministic(t *testing.T) {
	// Every child check fails with an error naming its schedule: with 2
	// ready processes both workers fail, and the parallel path must
	// always report the proc-1 subtree's error.
	mk := func(workers int) Config {
		cfg := brokenCfg(workers)
		cfg.Check = func(h history.History, s []sim.Decision) error {
			if len(s) == 0 {
				return nil
			}
			return fmt.Errorf("fail at %v", s)
		}
		return cfg
	}
	seq, seqErr := Run(mk(1))
	for i := 0; i < 20; i++ {
		par, parErr := Run(mk(8))
		if parErr == nil || seqErr == nil {
			t.Fatal("both paths must fail")
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("run %d: parallel error %q != sequential %q", i, parErr, seqErr)
		}
		if !reflect.DeepEqual(par.Witness, seq.Witness) {
			t.Fatalf("run %d: parallel witness %v != sequential %v", i, par.Witness, seq.Witness)
		}
	}
}
