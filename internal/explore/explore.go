// Package explore performs exhaustive bounded exploration of the
// simulator: it enumerates every schedule up to a depth (optionally with
// crash injection) and checks every reachable history. This is how the
// repository certifies the positive (implementability) side of the
// paper's claims: the commit-adopt consensus satisfies
// agreement+validity on all interleavings at small depth, and both TM
// implementations satisfy opacity (and I12 property S) likewise.
//
// Because processes are goroutines, configurations cannot be snapshotted;
// exploration re-executes each schedule prefix from scratch. Runs are
// deterministic, so re-execution reaches the identical configuration.
//
// Checking comes in two flavors. The batch path (Config.Check) re-judges
// the entire history of every explored prefix. The incremental path
// (Config.NewMonitors) threads a MonitorSet down the DFS: the set is
// forked at every branch point and fed only the delta events the new
// schedule edge produced (Result.EventsSince), so each event is judged
// once per path instead of once per descendant prefix.
package explore

import (
	"context"
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// MonitorSet judges one DFS path incrementally: exploration feeds it
// each new event exactly once and forks it at schedule branch points.
type MonitorSet interface {
	// Step consumes one new event of the path. A non-nil error is the
	// violation (exploration stops and reports it with the witness).
	Step(e history.Event) error
	// Fork returns an independent copy for a sibling branch; stepping
	// either copy must not affect the other.
	Fork() MonitorSet
}

// Violation wraps a MonitorSet violation with its location: the witness
// schedule (always non-nil), the full history of the violating prefix,
// and the index of the event on which Step failed. Unwrap exposes the
// monitor's error.
type Violation struct {
	// Schedule is the witness prefix (non-nil, possibly empty).
	Schedule []sim.Decision
	// H is the history of the violating prefix.
	H history.History
	// EventIndex is the index in H of the event Step rejected.
	EventIndex int
	// Cause is the error Step returned.
	Cause error
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("explore: violation at event %d of schedule %v: %v", v.EventIndex, v.Schedule, v.Cause)
}

// Unwrap exposes the monitor's error.
func (v *Violation) Unwrap() error { return v.Cause }

// Config describes an exhaustive exploration.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// NewObject creates a fresh implementation instance (called once per
	// explored prefix).
	NewObject func() sim.Object
	// NewEnv creates a fresh environment instance (environments may carry
	// per-run state).
	NewEnv func() sim.Environment
	// Depth bounds the schedule length.
	Depth int
	// Crashes additionally branches on crashing each live process, at most
	// this many times per schedule. 0 disables crash injection.
	Crashes int
	// Check is invoked on the history of every explored prefix together
	// with the schedule that produced it. Returning an error aborts the
	// exploration; the error and witness schedule are reported. When
	// Workers > 1, Check must be safe for concurrent use. Ignored when
	// NewMonitors is set.
	Check func(h history.History, schedule []sim.Decision) error
	// NewMonitors, when set, selects the incremental path: it creates the
	// root monitor set once per exploration (and once per worker subtree
	// fork under Workers > 1). A Step error aborts the exploration and is
	// reported wrapped in a *Violation.
	NewMonitors func() MonitorSet
	// Workers > 1 explores the first-level subtrees concurrently, one
	// goroutine per ready first decision, at most Workers at a time.
	Workers int
	// Ctx optionally cancels the exploration; it is polled once per
	// explored prefix and its error returned as-is.
	Ctx context.Context
}

// Stats summarizes an exploration.
type Stats struct {
	// Prefixes is the number of schedule prefixes explored (histories
	// checked).
	Prefixes int
	// Steps is the total number of simulator steps executed across all
	// replays.
	Steps int
	// Witness is the schedule on which the check failed: nil when no
	// violation was found, non-nil (and empty for the root prefix)
	// otherwise.
	Witness []sim.Decision
}

// witness copies a prefix into a witness schedule, normalizing the empty
// (root) prefix to a non-nil empty slice so a violation always carries a
// non-nil witness.
func witness(prefix []sim.Decision) []sim.Decision {
	return append([]sim.Decision{}, prefix...)
}

// Run explores exhaustively. It returns the statistics and the first
// check or monitor error, if any (with Stats.Witness set).
func Run(cfg Config) (*Stats, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("explore: Procs must be >= 1")
	}
	if cfg.Check == nil && cfg.NewMonitors == nil {
		return nil, fmt.Errorf("explore: Check or NewMonitors must be set")
	}
	if cfg.Workers > 1 {
		return runParallel(cfg)
	}
	st := &Stats{}
	var ms MonitorSet
	if cfg.NewMonitors != nil {
		ms = cfg.NewMonitors()
	}
	err := explore(cfg, nil, 0, 0, ms, st)
	return st, err
}

// runParallel splits the exploration at the first level: the root prefix
// is checked once, then each ready first decision's subtree is explored by
// its own worker (bounded by cfg.Workers). Statistics are merged; the
// first error wins.
func runParallel(cfg Config) (*Stats, error) {
	total := &Stats{}
	res, ready := replay(cfg, nil, total)
	if res.Err != nil {
		return total, fmt.Errorf("explore: replay failed: %w", res.Err)
	}
	total.Prefixes++
	if err := ctxErr(cfg); err != nil {
		return total, err
	}
	var root MonitorSet
	if cfg.NewMonitors != nil {
		root = cfg.NewMonitors()
		if err := stepDelta(root, res, 0, nil, total); err != nil {
			return total, err
		}
	} else if err := cfg.Check(res.H, nil); err != nil {
		total.Witness = witness(nil)
		return total, err
	}
	if cfg.Depth < 1 {
		return total, nil
	}

	var roots []sim.Decision
	for _, p := range ready {
		roots = append(roots, sim.Decision{Proc: p})
	}
	if cfg.Crashes > 0 {
		for p := 1; p <= cfg.Procs; p++ {
			roots = append(roots, sim.Decision{Proc: p, Crash: true})
		}
	}

	type outcome struct {
		st  *Stats
		err error
	}
	results := make(chan outcome, len(roots))
	sem := make(chan struct{}, cfg.Workers)
	for _, rootDec := range roots {
		rootDec := rootDec
		var ms MonitorSet
		if root != nil {
			ms = root.Fork()
		}
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			st := &Stats{}
			crashes := 0
			if rootDec.Crash {
				crashes = 1
			}
			err := explore(cfg, []sim.Decision{rootDec}, crashes, len(res.H), ms, st)
			results <- outcome{st: st, err: err}
		}()
	}
	var firstErr error
	for range roots {
		o := <-results
		total.Prefixes += o.st.Prefixes
		total.Steps += o.st.Steps
		if o.err != nil && firstErr == nil {
			firstErr = o.err
			total.Witness = o.st.Witness
		}
	}
	return total, firstErr
}

// replay executes the schedule prefix and returns the run result plus the
// set of processes ready afterwards.
func replay(cfg Config, prefix []sim.Decision, st *Stats) (*sim.Result, []int) {
	var ready []int
	captured := false
	sched := sim.Seq(
		sim.Fixed(prefix),
		sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
			if !captured {
				ready = append([]int(nil), v.Ready...)
				captured = true
			}
			return sim.Decision{}, false
		}),
	)
	res := sim.Run(sim.Config{
		Procs:     cfg.Procs,
		Object:    cfg.NewObject(),
		Env:       cfg.NewEnv(),
		Scheduler: sched,
		MaxSteps:  len(prefix) + 1,
	})
	st.Steps += res.Steps
	return res, ready
}

// ctxErr polls the optional context.
func ctxErr(cfg Config) error {
	if cfg.Ctx != nil {
		return cfg.Ctx.Err()
	}
	return nil
}

// stepDelta feeds the prefix's new events (those at index parentEvents or
// later) into the monitor set; a violation is wrapped with its location
// and recorded in the stats.
func stepDelta(ms MonitorSet, res *sim.Result, parentEvents int, prefix []sim.Decision, st *Stats) error {
	delta := res.EventsSince(parentEvents)
	for k := range delta {
		if err := ms.Step(delta[k]); err != nil {
			w := witness(prefix)
			st.Witness = w
			return &Violation{Schedule: w, H: res.H, EventIndex: parentEvents + k, Cause: err}
		}
	}
	return nil
}

// explore visits the prefix and recurses into its children. parentEvents
// is the number of history events the parent prefix recorded; ms is the
// monitor set as of the parent (nil on the batch path).
func explore(cfg Config, prefix []sim.Decision, crashes, parentEvents int, ms MonitorSet, st *Stats) error {
	res, ready := replay(cfg, prefix, st)
	if res.Err != nil {
		return fmt.Errorf("explore: replay failed: %w", res.Err)
	}
	st.Prefixes++
	if err := ctxErr(cfg); err != nil {
		return err
	}
	if ms != nil {
		if err := stepDelta(ms, res, parentEvents, prefix, st); err != nil {
			return err
		}
	} else if err := cfg.Check(res.H, prefix); err != nil {
		st.Witness = witness(prefix)
		return err
	}
	steps := 0
	for _, d := range prefix {
		if !d.Crash {
			steps++
		}
	}
	if steps >= cfg.Depth {
		return nil
	}
	var children []sim.Decision
	for _, p := range ready {
		children = append(children, sim.Decision{Proc: p})
	}
	if crashes < cfg.Crashes {
		crashed := make(map[int]bool)
		for _, d := range prefix {
			if d.Crash {
				crashed[d.Proc] = true
			}
		}
		for p := 1; p <= cfg.Procs; p++ {
			if !crashed[p] {
				children = append(children, sim.Decision{Proc: p, Crash: true})
			}
		}
	}
	for i, d := range children {
		cms := ms
		if ms != nil && i < len(children)-1 {
			cms = ms.Fork() // the last child inherits the set without a copy
		}
		nextCrashes := crashes
		if d.Crash {
			nextCrashes++
		}
		if err := explore(cfg, append(prefix, d), nextCrashes, len(res.H), cms, st); err != nil {
			return err
		}
	}
	return nil
}

// CheckSafety adapts a history predicate to a Check function with a
// descriptive error.
func CheckSafety(name string, holds func(h history.History) bool) func(history.History, []sim.Decision) error {
	return func(h history.History, schedule []sim.Decision) error {
		if !holds(h) {
			return fmt.Errorf("explore: %s violated by schedule %v on history %s", name, schedule, h)
		}
		return nil
	}
}
