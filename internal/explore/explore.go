// Package explore performs exhaustive bounded exploration of the
// simulator: it enumerates every schedule up to a depth (optionally with
// crash injection) and checks every reachable history. This is how the
// repository certifies the positive (implementability) side of the
// paper's claims: the commit-adopt consensus satisfies
// agreement+validity on all interleavings at small depth, and both TM
// implementations satisfy opacity (and I12 property S) likewise.
//
// Execution comes in two flavors. When the object under test implements
// sim.Snapshottable, exploration runs incrementally: one persistent
// sim.Session per worker descends the tree by extending the live
// configuration one decision at a time and backtracks by restoring
// snapshots, so each tree edge costs amortized O(1) simulator steps
// (plus bounded pending-operation rebuilds, reported in Stats.Resims)
// instead of a from-root replay quadratic in depth. Objects without the
// hook — and explorations forced by Config.ForceReplay — fall back
// transparently to the historical engine: every prefix is re-executed
// from the initial configuration (runs are deterministic, so
// re-execution reaches the identical configuration). Both engines
// enumerate the identical tree, verdicts and witnesses.
//
// Checking comes in two flavors. The batch path (Config.Check) re-judges
// the entire history of every explored prefix. The incremental path
// (Config.NewMonitors) threads a MonitorSet down the DFS: the set is
// forked at every branch point and fed only the delta events the new
// schedule edge produced (Result.EventsSince), so each event is judged
// once per path instead of once per descendant prefix.
//
// Config.POR additionally enables sleep-set partial-order reduction:
// when the object under test reports per-step footprints
// (sim.Footprinted), subtrees that only commute independent steps of an
// already-explored sibling are skipped. See the package's dependence
// relation in dependent for what "independent" means here and DESIGN.md
// for the soundness argument.
//
// Config.Cache enables state-fingerprint deduplication: prefixes whose
// reached configuration (sim.Result.Fingerprint) and monitor residual
// state (Digester) match an already fully explored state are pruned,
// cutting the subtrees rooted at states that many inequivalent
// schedules reach. Config.Workers > 1 explores the tree with a bounded
// work-stealing scheduler; all workers share the visited set.
//
// Package sample is the probabilistic sibling: instead of enumerating
// the tree it draws seeded PCT (or random-walk) schedules from it,
// feeding the same MonitorSet and reporting the same Violation — the
// trade of completeness for depth when exhaustive exploration cannot
// reach the interesting states.
package explore

import (
	"context"
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// MonitorSet judges one DFS path incrementally: exploration feeds it
// each new event exactly once and forks it at schedule branch points.
type MonitorSet interface {
	// Step consumes one new event of the path. A non-nil error is the
	// violation (exploration stops and reports it with the witness).
	Step(e history.Event) error
	// Fork returns an independent copy for a sibling branch; stepping
	// either copy must not affect the other.
	Fork() MonitorSet
}

// ReleasableMonitorSet is the optional hook a MonitorSet implements to
// reclaim forks. The engine calls Release exactly once, when the
// subtree a fork was made for has been fully explored without error: no
// Step, Fork, or digest call follows, so the set may recycle its state
// into later Fork calls. Sets on error paths (a violation's set, or
// tasks abandoned by a cutoff) are never released — the garbage
// collector keeps them correct — so implementations need no idempotence.
type ReleasableMonitorSet interface {
	MonitorSet
	Release()
}

// releaseMonitors hands ms back to its owner when it opts in.
func releaseMonitors(ms MonitorSet) {
	if r, ok := ms.(ReleasableMonitorSet); ok {
		r.Release()
	}
}

// Digester is the optional hook a MonitorSet implements to make states
// cacheable under Config.Cache: StateDigest returns a canonical digest
// of the set's residual state — everything its future Step verdicts can
// depend on — such that equal digests imply identical verdicts on every
// event suffix. ok=false marks the current state undigestable; the
// prefix is then neither looked up nor stored. Without the hook (or
// with ok=false throughout) the cache never hits and the exploration is
// exhaustive as before.
type Digester interface {
	StateDigest() (uint64, bool)
}

// Violation wraps a MonitorSet violation with its location: the witness
// schedule (always non-nil), the full history of the violating prefix,
// and the index of the event on which Step failed. Unwrap exposes the
// monitor's error.
type Violation struct {
	// Schedule is the witness prefix (non-nil, possibly empty).
	Schedule []sim.Decision
	// H is the history of the violating prefix.
	H history.History
	// EventIndex is the index in H of the event Step rejected.
	EventIndex int
	// Cause is the error Step returned.
	Cause error
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("explore: violation at event %d of schedule %v: %v", v.EventIndex, v.Schedule, v.Cause)
}

// Unwrap exposes the monitor's error.
func (v *Violation) Unwrap() error { return v.Cause }

// Config describes an exhaustive exploration.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// NewObject creates a fresh implementation instance (called once per
	// explored prefix).
	NewObject func() sim.Object
	// NewEnv creates a fresh environment instance (environments may carry
	// per-run state).
	NewEnv func() sim.Environment
	// Depth bounds the schedule length.
	Depth int
	// Crashes additionally branches on crashing each ready process, at
	// most this many times per schedule. 0 disables crash injection.
	// (Idle and blocked processes take no further steps, so crashing them
	// would only duplicate their sibling subtrees modulo a crash event.)
	Crashes int
	// Recoveries additionally branches on recovering each crashed
	// process, at most this many times per schedule. 0 disables recovery
	// injection; it only matters together with Crashes > 0 (without
	// crashes no process is ever recoverable). A recovered process
	// re-enters the ready set — its pending operation never responds, its
	// volatile state is wiped (sim.Recoverable), and it runs its recovery
	// routine before rejoining the workload. Like crash decisions,
	// recover decisions are never pruned or slept by POR. Under
	// incremental execution recovery requires a rewindable environment
	// (sim.RewindableEnv); other environments fall back to replay
	// execution transparently.
	Recoveries int
	// Check is invoked on the history of every explored prefix together
	// with the schedule that produced it. Returning an error aborts the
	// exploration; the error and witness schedule are reported. When
	// Workers > 1, Check must be safe for concurrent use. Ignored when
	// NewMonitors is set.
	Check func(h history.History, schedule []sim.Decision) error
	// NewMonitors, when set, selects the incremental path: it creates the
	// root monitor set once per exploration. A Step error aborts the
	// exploration and is reported wrapped in a *Violation.
	NewMonitors func() MonitorSet
	// Workers > 1 explores the tree concurrently with a bounded
	// work-stealing scheduler: each worker runs the same DFS and splits
	// sibling subtrees into stealable tasks while its deque has room.
	// Violations are still reported deterministically — the failure at
	// the preorder-least (lexicographically least) schedule prefix, the
	// one sequential DFS reaches first — regardless of worker timing.
	Workers int
	// Spawn optionally offers the extra worker loops of Workers > 1 to
	// an external executor instead of spawning goroutines: loop 0 always
	// runs inline on the calling goroutine (so the exploration makes
	// progress no matter what the executor does), and each remaining
	// loop is offered once. Spawn returns whether it accepted the loop;
	// an accepted loop must eventually be run (it exits promptly if the
	// subtree pool has drained by then), a declined loop is simply not
	// started. This is how the slxd service pool bounds the total
	// exploration concurrency across jobs: stolen-subtree sub-tasks run
	// on whichever pool slots accept a loop. Statistics stay worker-count
	// independent either way. Nil spawns goroutines as before.
	Spawn func(loop func()) bool
	// POR enables sleep-set partial-order reduction: subtrees whose first
	// step is asleep (covered, up to commuting independent steps, by an
	// already-explored sibling) are skipped and counted in Stats.Pruned.
	// Pruning requires the object to report per-step footprints
	// (sim.Footprinted); without them every step conflicts with every
	// other and the exploration is exhaustive as before. POR assumes the
	// checked properties are invariant under swapping adjacent
	// invocations (or adjacent responses) of different processes, and
	// environments that decide invocations per process, independent of
	// the view — both hold for the repository's environments and
	// properties. Crash and recover decisions are never pruned or slept.
	POR bool
	// ForceReplay forces from-root replay execution even when the
	// object supports snapshots (sim.Snapshottable): the escape hatch
	// for cross-checking the incremental engine and for environments
	// outside the session contract (see sim.SessionConfig.NewEnv).
	ForceReplay bool
	// Cache enables the state-fingerprint visited set: a prefix whose
	// reached configuration and monitor digest match a state whose
	// subtree was already fully explored (with at least as much depth
	// and crash budget remaining, and under a sleep set no larger than
	// the current one) is pruned and counted in Stats.CacheHits. It
	// requires the monitor path (NewMonitors) — cache-hit soundness
	// rests on the monitor digest — and objects that opt into
	// sim.Fingerprintable; prefixes without a valid fingerprint are
	// explored as usual. Like POR it assumes view-independent
	// environments. Witnesses remain deterministic at Workers == 1;
	// with Workers > 1 the shared visited set makes WHICH equivalent
	// witness is found timing-dependent (verdicts are unaffected).
	Cache bool
	// Visited optionally supplies the visited-set tier Cache uses, so
	// the tier outlives one exploration and is shared across several
	// (the slxd service shares one tier per target). Sharing is sound
	// only between explorations with identical NewObject, NewEnv and
	// NewMonitors semantics: entries carry their remaining depth/crash
	// budgets and sleep sets, so differing Depth, Crashes or POR
	// settings compose through the usual domination rules, but a
	// different object or monitor family would make equal digests
	// meaningless. Pre-populated entries can change WHICH equivalent
	// witness a violated exploration reports (verdicts are unaffected),
	// exactly like the Workers > 1 sharing. Nil (or Cache unset) keeps
	// the cache private to the exploration.
	Visited *Visited
	// Ctx optionally cancels the exploration; it is polled once per
	// explored prefix and its error returned as-is.
	Ctx context.Context
}

// Stats summarizes an exploration.
type Stats struct {
	// Prefixes is the number of schedule prefixes explored (histories
	// checked).
	Prefixes int
	// Steps counts the simulator steps that advanced exploration into
	// counted prefixes. Under incremental execution that is one step
	// per explored non-crash edge, identical for sequential and
	// parallel runs; under replay execution it is the total steps
	// across all from-root replays (the historical, depth-quadratic
	// number). The footprint probes that POR with Workers > 1 performs
	// at split points are excluded, so parallel and sequential
	// statistics stay comparable.
	Steps int
	// Resims counts simulator steps spent re-establishing already
	// visited configurations rather than exploring new ones: under
	// incremental execution the pending-operation rebuild steps of
	// snapshot restores, the seed replays of stolen subtrees and the
	// POR split probes; under replay execution the re-executed prefix
	// portion of every from-root replay (there also included in Steps,
	// which keeps its historical meaning). Timing-dependent at
	// Workers > 1 (stealing decides how much re-seeding happens).
	Resims int
	// Pruned is the number of subtrees skipped by partial-order
	// reduction (0 unless Config.POR).
	Pruned int
	// CacheHits is the number of subtrees skipped because the reached
	// state was already fully explored (0 unless Config.Cache).
	CacheHits int
	// Workers is the number of workers the exploration actually used
	// (Config.Workers clamped to at least 1).
	Workers int
	// Witness is the schedule on which the check failed: nil when no
	// violation was found, non-nil (and empty for the root prefix)
	// otherwise.
	Witness []sim.Decision
}

// witness copies a prefix into a witness schedule, normalizing the empty
// (root) prefix to a non-nil empty slice so a violation always carries a
// non-nil witness.
func witness(prefix []sim.Decision) []sim.Decision {
	return append([]sim.Decision{}, prefix...)
}

// sleepEntry is one member of a sleep set: a decision that an earlier
// sibling branch already explored, together with the footprint its step
// had when it entered the set. The footprint stays valid while the entry
// stays asleep: an entry is dropped as soon as a dependent step is
// taken, and commuting with independent steps cannot change what the
// step reads or writes.
type sleepEntry struct {
	d sim.Decision
	a sim.Access
}

// dependent reports whether the two decisions (with their footprints)
// must not be commuted. Steps of one process are ordered; crash and
// recover decisions are visible to every property and change
// enabledness; unknown footprints conflict with everything; an
// invocation and a response of different processes must keep their order
// (it is the real-time precedence properties observe); and two
// base-object accesses conflict when they touch the same object and
// either writes.
func dependent(d1 sim.Decision, a1 sim.Access, d2 sim.Decision, a2 sim.Access) bool {
	if d1.Proc == d2.Proc || d1.Crash || d2.Crash || a1.Crash || a2.Crash {
		return true
	}
	if d1.Recover || d2.Recover || a1.Recover || a2.Recover {
		return true
	}
	if !a1.Known || !a2.Known {
		return true
	}
	if (a1.Invoked && a2.Responded) || (a1.Responded && a2.Invoked) {
		return true
	}
	return a1.Conflicts(a2)
}

// accessAt returns the access-log entry for schedule position i, or an
// unknown (conflicts-with-everything) access when the run recorded no
// log (object without footprints) or stopped short.
func accessAt(res *sim.Result, i int) sim.Access {
	if i < 0 || i >= len(res.Accesses) {
		return sim.Access{}
	}
	return res.Accesses[i]
}

// filterSleep keeps the entries independent of the step (d, a) just
// taken. It always allocates, so the parent's set is never mutated.
func filterSleep(sleep []sleepEntry, d sim.Decision, a sim.Access) []sleepEntry {
	var out []sleepEntry
	for _, z := range sleep {
		if !dependent(z.d, z.a, d, a) {
			out = append(out, z)
		}
	}
	return out
}

// inSleep reports whether decision d is asleep.
func inSleep(sleep []sleepEntry, d sim.Decision) bool {
	for _, z := range sleep {
		if z.d == d {
			return true
		}
	}
	return false
}

// engine carries the state one exploration shares across its recursion
// (and, at Workers > 1, across its workers).
type engine struct {
	cfg         Config
	visited     *visitedSet // non-nil iff cfg.Cache
	incremental bool        // session execution available for this object
}

// Run explores exhaustively. It returns the statistics and the first
// check or monitor error, if any (with Stats.Witness set).
func Run(cfg Config) (*Stats, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("explore: Procs must be >= 1")
	}
	if cfg.Check == nil && cfg.NewMonitors == nil {
		return nil, fmt.Errorf("explore: Check or NewMonitors must be set")
	}
	if cfg.NewObject == nil || cfg.NewEnv == nil {
		return nil, fmt.Errorf("explore: NewObject and NewEnv must be set")
	}
	if cfg.Cache && cfg.NewMonitors == nil {
		return nil, fmt.Errorf("explore: Cache requires the incremental monitor path (NewMonitors): cache-hit soundness rests on the monitor state digest")
	}
	g := &engine{cfg: cfg}
	if !cfg.ForceReplay {
		g.incremental = sim.CanSnapshot(cfg.NewObject())
		if g.incremental && cfg.Recoveries > 0 {
			// Session recovery needs a rewindable environment: the
			// fallback rewind rebuilds consultation points from response
			// events, which recovery consultations do not produce.
			if _, ok := cfg.NewEnv().(sim.RewindableEnv); !ok {
				g.incremental = false
			}
		}
	}
	if cfg.Cache {
		if cfg.Visited != nil {
			g.visited = cfg.Visited.set
		} else {
			g.visited = newVisitedSet()
		}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 {
		return g.runParallel(workers)
	}
	st := &Stats{Workers: 1}
	var ms MonitorSet
	if cfg.NewMonitors != nil {
		ms = cfg.NewMonitors()
	}
	ex, err := g.newExec(st)
	if err != nil {
		return st, err
	}
	defer ex.close()
	err = g.runTask(nil, ex, &wsTask{ms: ms}, st)
	return st, err
}

// budgets tallies a prefix's non-step decisions (crash and recover
// budget already spent) and its step count.
func budgets(prefix []sim.Decision) (steps, crashes, recoveries int) {
	for _, d := range prefix {
		switch {
		case d.Crash:
			crashes++
		case d.Recover:
			recoveries++
		default:
			steps++
		}
	}
	return
}

// replay executes the schedule prefix from the initial configuration
// and returns the run result plus the set of processes ready afterwards
// (the replay-fallback primitive; sessions never call it).
func (g *engine) replay(prefix []sim.Decision, st *Stats) (*sim.Result, []int) {
	var ready []int
	i := 0
	// One scheduler closure: feed the prefix by index, then capture the
	// ready set of the reached configuration and stop. (Replaced the
	// earlier Seq(Fixed, SchedulerFunc) composition, which burned an
	// extra scheduler dispatch and a decision-slice copy per node.)
	sched := sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		if i < len(prefix) {
			d := prefix[i]
			i++
			return d, true
		}
		ready = append([]int(nil), v.Ready...)
		return sim.Decision{}, false
	})
	res := sim.Run(sim.Config{
		Procs:     g.cfg.Procs,
		Object:    g.cfg.NewObject(),
		Env:       g.cfg.NewEnv(),
		Scheduler: sched,
		MaxSteps:  len(prefix) + 1,
		// A prefix may recover from a configuration where every live
		// process is crashed; the quiescence stop must not fire first.
		RecoverQuiescent: g.cfg.Recoveries > 0,
		Fingerprint:      g.cfg.Cache,
	})
	if st != nil {
		st.Steps += res.Steps
	}
	return res, ready
}

// pathState is one worker's DFS bookkeeping: the decision stack of the
// current prefix (shared across the recursion — witnesses and task
// prefixes copy out of it), the preorder path stack (used only under
// parallelism), and the running non-crash step count.
type pathState struct {
	prefix []sim.Decision
	path   []int
	steps  int
}

// runTask explores the subtree rooted at the task's prefix with the
// given exec. w is nil on the sequential path.
func (g *engine) runTask(w *wsWorker, ex pathExec, t *wsTask, st *Stats) error {
	node, err := ex.task(t.prefix, t.parentEvents)
	if err != nil {
		return g.fail(w, t.path, fmt.Errorf("explore: replay failed: %w", err))
	}
	ps := &pathState{
		prefix: t.prefix[:len(t.prefix):len(t.prefix)],
		path:   t.path[:len(t.path):len(t.path)],
	}
	ps.steps, _, _ = budgets(t.prefix)
	_, err = g.explore(w, ex, node, ps, t.crashes, t.recoveries, t.ms, t.sleep, st)
	ex.recycle(node)
	if err == nil && t.ms != nil {
		releaseMonitors(t.ms)
	}
	return err
}

// ctxErr polls the optional context.
func (g *engine) ctxErr() error {
	if g.cfg.Ctx != nil {
		return g.cfg.Ctx.Err()
	}
	return nil
}

// stepDelta feeds the node's new events (its delta since the parent)
// into the monitor set; a violation is wrapped with its location and
// recorded in the stats.
func stepDelta(ms MonitorSet, node *nodeInfo, h history.History, prefix []sim.Decision, st *Stats) error {
	parentEvents := len(h) - len(node.delta)
	for k := range node.delta {
		if err := ms.Step(node.delta[k]); err != nil {
			w := witness(prefix)
			st.Witness = w
			// Copy the history out of the session's live buffer: the
			// witness outlives this node, and under parallelism the
			// session keeps truncating and extending the backing while
			// other workers drain.
			return &Violation{Schedule: w, H: append(history.History(nil), h...), EventIndex: parentEvents + k, Cause: err}
		}
	}
	return nil
}

// combineKey mixes the configuration fingerprint with the monitor
// digest into one cache key.
func combineKey(fp, digest uint64) uint64 {
	return history.DigestWord(fp, digest)
}

// explore visits the exec's current node and recurses into its
// children (descending by enter, backtracking by leave). w is the
// executing worker (nil on the sequential path); node is the info the
// exec reported on arrival; ps carries the shared prefix/path stacks;
// ms is the monitor set as of the parent (nil on the batch path); sleep
// is the sleep set inherited from the parent, not yet filtered by this
// node's own last step. It reports whether the subtree was explored to
// completion: a parallel cutoff anywhere beneath this node makes it
// incomplete, and an incomplete subtree must never be published to the
// visited set — even when the node's own child loop never re-checked
// the cutoff (e.g. the abandoned child was its last).
func (g *engine) explore(w *wsWorker, ex pathExec, node *nodeInfo, ps *pathState, crashes, recoveries int, ms MonitorSet, sleep []sleepEntry, st *Stats) (bool, error) {
	st.Prefixes++
	if err := g.ctxErr(); err != nil {
		return false, g.fatal(w, err)
	}
	if ms != nil {
		if err := stepDelta(ms, node, ex.history(), ps.prefix, st); err != nil {
			return false, g.fail(w, ps.path, err)
		}
	} else if err := g.cfg.Check(ex.history(), ps.prefix[:len(ps.prefix):len(ps.prefix)]); err != nil {
		st.Witness = witness(ps.prefix)
		return false, g.fail(w, ps.path, err)
	}
	if ps.steps >= g.cfg.Depth {
		return true, nil
	}
	// Children are indexed, not materialized (the hot loop allocates no
	// per-node slices): ready-process steps first, then — crash budget
	// permitting — crashes of the same processes, then — recovery budget
	// permitting — recoveries of the crashed processes. Crash only ready
	// processes: idle and blocked processes take no further steps, so
	// crashing them duplicates sibling subtrees.
	nready := len(node.ready)
	nchildren := nready
	crashBase := -1
	if crashes < g.cfg.Crashes {
		crashBase = nchildren
		nchildren += nready
	}
	recoverBase := -1
	if recoveries < g.cfg.Recoveries && len(node.crashed) > 0 {
		recoverBase = nchildren
		nchildren += len(node.crashed)
	}
	childAt := func(i int) sim.Decision {
		switch {
		case i < nready:
			return sim.Decision{Proc: node.ready[i]}
		case recoverBase >= 0 && i >= recoverBase:
			return sim.Decision{Proc: node.crashed[i-recoverBase], Recover: true}
		default:
			return sim.Decision{Proc: node.ready[i-crashBase], Crash: true}
		}
	}
	var z []sleepEntry
	if g.cfg.POR && len(ps.prefix) > 0 {
		z = filterSleep(sleep, ps.prefix[len(ps.prefix)-1], node.access)
	}
	// Whether a child is asleep depends only on the inherited set z:
	// entries appended for explored siblings are those siblings'
	// decisions, which never equal a later child's. So the children that
	// will actually be explored are known up front.
	nlive, firstLive, lastLive := 0, -1, -1
	for i := 0; i < nchildren; i++ {
		if !g.cfg.POR || !inSleep(z, childAt(i)) {
			if firstLive < 0 {
				firstLive = i
			}
			lastLive = i
			nlive++
		}
	}
	st.Pruned += nchildren - nlive
	if nlive == 0 {
		return true, nil
	}

	// State cache: if an equivalent configuration — same fingerprint,
	// same monitor residual state — was already fully explored with at
	// least this much depth and crash budget remaining and under a sleep
	// set no larger than z, this subtree adds nothing. Otherwise explore
	// it and, if it completes cleanly, publish it. zStart is clipped so
	// the loop's appends below cannot mutate the stored set.
	var ckey uint64
	var zStart []sleepEntry
	remDepth, remCrashes := g.cfg.Depth-ps.steps, g.cfg.Crashes-crashes
	remRecoveries := g.cfg.Recoveries - recoveries
	cacheable := false
	if g.visited != nil && node.fped {
		if dg, ok := monitorDigest(ms); ok {
			ckey = combineKey(node.fp, dg)
			zStart = z[:len(z):len(z)]
			if g.visited.hit(ckey, remDepth, remCrashes, remRecoveries, zStart) {
				st.CacheHits++
				return true, nil
			}
			cacheable = true
		}
	}

	// A mark is only needed when more than one child will be explored
	// (or probed) from this node: a single live child is entered
	// directly from the current position and never returned to.
	var mark execMark
	if nlive > 1 {
		mark = ex.mark()
	}

	// Under parallelism, split the later live children off as stealable
	// tasks when the worker's deque has room (and the subtrees are worth
	// the task overhead), exploring only the first live child inline.
	// Only this path materializes the child list.
	spawned := 0
	if w != nil && nlive > 1 && remDepth >= minSplitDepth {
		children := make([]sim.Decision, nchildren)
		live := make([]int, 0, nlive)
		for i := range children {
			children[i] = childAt(i)
			if !g.cfg.POR || !inSleep(z, children[i]) {
				live = append(live, i)
			}
		}
		spawned = g.trySplit(w, ex, mark, ps, crashes, recoveries, ms, z, children, live)
	}

	complete := true
	for i := 0; i < nchildren; i++ {
		d := childAt(i)
		if g.cfg.POR && inSleep(z, d) {
			continue // already counted in Pruned above
		}
		if spawned > 0 && i > firstLive {
			break // later live children were handed to the pool
		}
		if w != nil {
			ps.path = append(ps.path, i)
			if w.pool.cutoff(ps.path) {
				// Everything from here on is preorder-after a failure
				// already found; the subtree is abandoned, so neither it
				// nor any ancestor may be published as fully explored.
				ps.path = ps.path[:len(ps.path)-1]
				complete = false
				break
			}
		}
		cms := ms
		if ms != nil && i < lastLive && spawned == 0 {
			cms = ms.Fork() // the last explored child inherits the set without a copy
		}
		nextCrashes, nextRecoveries := crashes, recoveries
		switch {
		case d.Crash:
			nextCrashes++
		case d.Recover:
			nextRecoveries++
		}
		if mark != nil {
			if err := ex.leave(mark); err != nil {
				return false, g.fatal(w, err)
			}
		}
		cn, err := ex.enter(d)
		if err != nil {
			return false, g.fail(w, ps.path, fmt.Errorf("explore: replay failed: %w", err))
		}
		ps.prefix = append(ps.prefix, d)
		if !d.Crash && !d.Recover {
			ps.steps++
		}
		cc, err := g.explore(w, ex, cn, ps, nextCrashes, nextRecoveries, cms, z, st)
		if err == nil && cms != ms {
			releaseMonitors(cms) // forked for this child, now fully explored
		}
		ps.prefix = ps.prefix[:len(ps.prefix)-1]
		if !d.Crash && !d.Recover {
			ps.steps--
		}
		if w != nil {
			ps.path = ps.path[:len(ps.path)-1]
		}
		if err != nil {
			return false, err
		}
		if !cc {
			// The child's subtree was abandoned by a cutoff below it; this
			// node's subtree is incomplete even if its own loop never
			// re-checks the cutoff (the abandoned child may be its last).
			complete = false
		}
		if g.cfg.POR && !d.Crash && !d.Recover {
			z = append(z, sleepEntry{d: d, a: cn.access})
		}
		ex.recycle(cn)
	}
	if mark != nil {
		ex.release(mark)
	}
	if spawned > 0 {
		// Later live children were handed to the pool and may not have
		// run yet, so neither this node nor any ancestor has seen its
		// whole subtree: report it incomplete so no one on this path
		// publishes a visited-set entry covering pending tasks. (A stored
		// entry for a subtree with unexplored descendants could prune the
		// very task meant to explore them — two such entries can even
		// cross-prune each other — losing violations.)
		complete = false
	}
	if cacheable && complete {
		g.visited.store(ckey, remDepth, remCrashes, remRecoveries, zStart)
	}
	return complete, nil
}

// fail wraps a node failure with its preorder position under
// parallelism; sequential exploration returns the error unchanged.
func (g *engine) fail(w *wsWorker, path []int, err error) error {
	if w == nil {
		return err
	}
	return &nodeError{path: append([]int(nil), path...), err: err}
}

// fatal marks an exploration-wide abort (context cancellation).
func (g *engine) fatal(w *wsWorker, err error) error {
	if w == nil {
		return err
	}
	return &fatalError{err: err}
}

// monitorDigest extracts the canonical residual-state digest of the
// monitor set, when it provides one.
func monitorDigest(ms MonitorSet) (uint64, bool) {
	d, ok := ms.(Digester)
	if !ok {
		return 0, false
	}
	return d.StateDigest()
}

// CheckSafety adapts a history predicate to a Check function with a
// descriptive error.
func CheckSafety(name string, holds func(h history.History) bool) func(history.History, []sim.Decision) error {
	return func(h history.History, schedule []sim.Decision) error {
		if !holds(h) {
			return fmt.Errorf("explore: %s violated by schedule %v on history %s", name, schedule, h)
		}
		return nil
	}
}
