// Package explore performs exhaustive bounded exploration of the
// simulator: it enumerates every schedule up to a depth (optionally with
// crash injection) and checks every reachable history. This is how the
// repository certifies the positive (implementability) side of the
// paper's claims: the commit-adopt consensus satisfies
// agreement+validity on all interleavings at small depth, and both TM
// implementations satisfy opacity (and I12 property S) likewise.
//
// Because processes are goroutines, configurations cannot be snapshotted;
// exploration re-executes each schedule prefix from scratch. Runs are
// deterministic, so re-execution reaches the identical configuration.
//
// Checking comes in two flavors. The batch path (Config.Check) re-judges
// the entire history of every explored prefix. The incremental path
// (Config.NewMonitors) threads a MonitorSet down the DFS: the set is
// forked at every branch point and fed only the delta events the new
// schedule edge produced (Result.EventsSince), so each event is judged
// once per path instead of once per descendant prefix.
//
// Config.POR additionally enables sleep-set partial-order reduction:
// when the object under test reports per-step footprints
// (sim.Footprinted), subtrees that only commute independent steps of an
// already-explored sibling are skipped. See the package's dependence
// relation in dependent for what "independent" means here and DESIGN.md
// for the soundness argument.
package explore

import (
	"context"
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// MonitorSet judges one DFS path incrementally: exploration feeds it
// each new event exactly once and forks it at schedule branch points.
type MonitorSet interface {
	// Step consumes one new event of the path. A non-nil error is the
	// violation (exploration stops and reports it with the witness).
	Step(e history.Event) error
	// Fork returns an independent copy for a sibling branch; stepping
	// either copy must not affect the other.
	Fork() MonitorSet
}

// Violation wraps a MonitorSet violation with its location: the witness
// schedule (always non-nil), the full history of the violating prefix,
// and the index of the event on which Step failed. Unwrap exposes the
// monitor's error.
type Violation struct {
	// Schedule is the witness prefix (non-nil, possibly empty).
	Schedule []sim.Decision
	// H is the history of the violating prefix.
	H history.History
	// EventIndex is the index in H of the event Step rejected.
	EventIndex int
	// Cause is the error Step returned.
	Cause error
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("explore: violation at event %d of schedule %v: %v", v.EventIndex, v.Schedule, v.Cause)
}

// Unwrap exposes the monitor's error.
func (v *Violation) Unwrap() error { return v.Cause }

// Config describes an exhaustive exploration.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// NewObject creates a fresh implementation instance (called once per
	// explored prefix).
	NewObject func() sim.Object
	// NewEnv creates a fresh environment instance (environments may carry
	// per-run state).
	NewEnv func() sim.Environment
	// Depth bounds the schedule length.
	Depth int
	// Crashes additionally branches on crashing each ready process, at
	// most this many times per schedule. 0 disables crash injection.
	// (Idle and blocked processes take no further steps, so crashing them
	// would only duplicate their sibling subtrees modulo a crash event.)
	Crashes int
	// Check is invoked on the history of every explored prefix together
	// with the schedule that produced it. Returning an error aborts the
	// exploration; the error and witness schedule are reported. When
	// Workers > 1, Check must be safe for concurrent use. Ignored when
	// NewMonitors is set.
	Check func(h history.History, schedule []sim.Decision) error
	// NewMonitors, when set, selects the incremental path: it creates the
	// root monitor set once per exploration (and once per worker subtree
	// fork under Workers > 1). A Step error aborts the exploration and is
	// reported wrapped in a *Violation.
	NewMonitors func() MonitorSet
	// Workers > 1 explores the first-level subtrees concurrently, one
	// goroutine per ready first decision, at most Workers at a time.
	Workers int
	// POR enables sleep-set partial-order reduction: subtrees whose first
	// step is asleep (covered, up to commuting independent steps, by an
	// already-explored sibling) are skipped and counted in Stats.Pruned.
	// Pruning requires the object to report per-step footprints
	// (sim.Footprinted); without them every step conflicts with every
	// other and the exploration is exhaustive as before. POR assumes the
	// checked properties are invariant under swapping adjacent
	// invocations (or adjacent responses) of different processes, and
	// environments that decide invocations per process, independent of
	// the view — both hold for the repository's environments and
	// properties. Crash decisions are never pruned or slept.
	POR bool
	// Ctx optionally cancels the exploration; it is polled once per
	// explored prefix and its error returned as-is.
	Ctx context.Context
}

// Stats summarizes an exploration.
type Stats struct {
	// Prefixes is the number of schedule prefixes explored (histories
	// checked).
	Prefixes int
	// Steps is the total number of simulator steps executed across all
	// replays. (The first-level footprint probes that POR with Workers >
	// 1 performs are excluded, so parallel and sequential statistics stay
	// comparable; they cost at most two steps per first-level child.)
	Steps int
	// Pruned is the number of subtrees skipped by partial-order
	// reduction (0 unless Config.POR).
	Pruned int
	// Witness is the schedule on which the check failed: nil when no
	// violation was found, non-nil (and empty for the root prefix)
	// otherwise.
	Witness []sim.Decision
}

// witness copies a prefix into a witness schedule, normalizing the empty
// (root) prefix to a non-nil empty slice so a violation always carries a
// non-nil witness.
func witness(prefix []sim.Decision) []sim.Decision {
	return append([]sim.Decision{}, prefix...)
}

// sleepEntry is one member of a sleep set: a decision that an earlier
// sibling branch already explored, together with the footprint its step
// had when it entered the set. The footprint stays valid while the entry
// stays asleep: an entry is dropped as soon as a dependent step is
// taken, and commuting with independent steps cannot change what the
// step reads or writes.
type sleepEntry struct {
	d sim.Decision
	a sim.Access
}

// dependent reports whether the two decisions (with their footprints)
// must not be commuted. Steps of one process are ordered; crash
// decisions are visible to every property and change enabledness;
// unknown footprints conflict with everything; an invocation and a
// response of different processes must keep their order (it is the
// real-time precedence properties observe); and two base-object accesses
// conflict when they touch the same object and either writes.
func dependent(d1 sim.Decision, a1 sim.Access, d2 sim.Decision, a2 sim.Access) bool {
	if d1.Proc == d2.Proc || d1.Crash || d2.Crash || a1.Crash || a2.Crash {
		return true
	}
	if !a1.Known || !a2.Known {
		return true
	}
	if (a1.Invoked && a2.Responded) || (a1.Responded && a2.Invoked) {
		return true
	}
	return a1.Conflicts(a2)
}

// accessAt returns the access-log entry for schedule position i, or an
// unknown (conflicts-with-everything) access when the run recorded no
// log (object without footprints) or stopped short.
func accessAt(res *sim.Result, i int) sim.Access {
	if i < 0 || i >= len(res.Accesses) {
		return sim.Access{}
	}
	return res.Accesses[i]
}

// filterSleep keeps the entries independent of the step (d, a) just
// taken. It always allocates, so the parent's set is never mutated.
func filterSleep(sleep []sleepEntry, d sim.Decision, a sim.Access) []sleepEntry {
	var out []sleepEntry
	for _, z := range sleep {
		if !dependent(z.d, z.a, d, a) {
			out = append(out, z)
		}
	}
	return out
}

// inSleep reports whether decision d is asleep.
func inSleep(sleep []sleepEntry, d sim.Decision) bool {
	for _, z := range sleep {
		if z.d == d {
			return true
		}
	}
	return false
}

// Run explores exhaustively. It returns the statistics and the first
// check or monitor error, if any (with Stats.Witness set).
func Run(cfg Config) (*Stats, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("explore: Procs must be >= 1")
	}
	if cfg.Check == nil && cfg.NewMonitors == nil {
		return nil, fmt.Errorf("explore: Check or NewMonitors must be set")
	}
	if cfg.Workers > 1 {
		return runParallel(cfg)
	}
	st := &Stats{}
	var ms MonitorSet
	if cfg.NewMonitors != nil {
		ms = cfg.NewMonitors()
	}
	_, err := explore(cfg, nil, 0, 0, ms, nil, st)
	return st, err
}

// runParallel splits the exploration at the first level: the root prefix
// is checked once, then each first decision's subtree is explored by its
// own worker (bounded by cfg.Workers). Statistics are merged. When
// several subtrees fail, the failure of the lexicographically least root
// decision — the one sequential exploration would reach first — is
// reported, so witnesses are deterministic regardless of worker timing.
func runParallel(cfg Config) (*Stats, error) {
	total := &Stats{}
	res, ready := replay(cfg, nil, total)
	if res.Err != nil {
		return total, fmt.Errorf("explore: replay failed: %w", res.Err)
	}
	total.Prefixes++
	if err := ctxErr(cfg); err != nil {
		return total, err
	}
	var root MonitorSet
	if cfg.NewMonitors != nil {
		root = cfg.NewMonitors()
		if err := stepDelta(root, res, 0, nil, total); err != nil {
			return total, err
		}
	} else if err := cfg.Check(res.H, nil); err != nil {
		total.Witness = witness(nil)
		return total, err
	}
	if cfg.Depth < 1 {
		return total, nil
	}

	var roots []sim.Decision
	for _, p := range ready {
		roots = append(roots, sim.Decision{Proc: p})
	}
	steps := len(roots)
	if cfg.Crashes > 0 {
		// Crash only ready processes, mirroring the sequential path.
		for _, p := range ready {
			roots = append(roots, sim.Decision{Proc: p, Crash: true})
		}
	}

	// Under POR the sleep set of the i-th first-level subtree holds its
	// earlier step siblings with their footprints; probe each step root
	// once to learn them before the workers start. The probes re-execute
	// at most two steps each and are not counted in the statistics.
	var entries []sleepEntry
	if cfg.POR {
		probe := &Stats{}
		for _, d := range roots[:steps] {
			pres, _ := replay(cfg, []sim.Decision{d}, probe)
			entries = append(entries, sleepEntry{d: d, a: accessAt(pres, 0)})
		}
	}

	type outcome struct {
		idx int
		st  *Stats
		err error
	}
	results := make(chan outcome, len(roots))
	sem := make(chan struct{}, cfg.Workers)
	for i, rootDec := range roots {
		i, rootDec := i, rootDec
		var ms MonitorSet
		if root != nil {
			ms = root.Fork()
		}
		var sleep []sleepEntry
		if cfg.POR && !rootDec.Crash {
			sleep = entries[:i]
		}
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			st := &Stats{}
			crashes := 0
			if rootDec.Crash {
				crashes = 1
			}
			_, err := explore(cfg, []sim.Decision{rootDec}, crashes, len(res.H), ms, sleep, st)
			results <- outcome{idx: i, st: st, err: err}
		}()
	}
	firstIdx := -1
	var firstErr error
	var firstWitness []sim.Decision
	for range roots {
		o := <-results
		total.Prefixes += o.st.Prefixes
		total.Steps += o.st.Steps
		total.Pruned += o.st.Pruned
		if o.err != nil && (firstIdx == -1 || o.idx < firstIdx) {
			firstIdx = o.idx
			firstErr = o.err
			firstWitness = o.st.Witness
		}
	}
	if firstErr != nil {
		total.Witness = firstWitness
	}
	return total, firstErr
}

// replay executes the schedule prefix and returns the run result plus the
// set of processes ready afterwards.
func replay(cfg Config, prefix []sim.Decision, st *Stats) (*sim.Result, []int) {
	var ready []int
	captured := false
	sched := sim.Seq(
		sim.Fixed(prefix),
		sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
			if !captured {
				ready = append([]int(nil), v.Ready...)
				captured = true
			}
			return sim.Decision{}, false
		}),
	)
	res := sim.Run(sim.Config{
		Procs:     cfg.Procs,
		Object:    cfg.NewObject(),
		Env:       cfg.NewEnv(),
		Scheduler: sched,
		MaxSteps:  len(prefix) + 1,
	})
	st.Steps += res.Steps
	return res, ready
}

// ctxErr polls the optional context.
func ctxErr(cfg Config) error {
	if cfg.Ctx != nil {
		return cfg.Ctx.Err()
	}
	return nil
}

// stepDelta feeds the prefix's new events (those at index parentEvents or
// later) into the monitor set; a violation is wrapped with its location
// and recorded in the stats.
func stepDelta(ms MonitorSet, res *sim.Result, parentEvents int, prefix []sim.Decision, st *Stats) error {
	delta := res.EventsSince(parentEvents)
	for k := range delta {
		if err := ms.Step(delta[k]); err != nil {
			w := witness(prefix)
			st.Witness = w
			return &Violation{Schedule: w, H: res.H, EventIndex: parentEvents + k, Cause: err}
		}
	}
	return nil
}

// explore visits the prefix and recurses into its children. parentEvents
// is the number of history events the parent prefix recorded; ms is the
// monitor set as of the parent (nil on the batch path); sleep is the
// sleep set inherited from the parent, not yet filtered by this prefix's
// own last step. It returns the footprint of that last step so the
// parent can put this child to sleep for later siblings.
func explore(cfg Config, prefix []sim.Decision, crashes, parentEvents int, ms MonitorSet, sleep []sleepEntry, st *Stats) (sim.Access, error) {
	res, ready := replay(cfg, prefix, st)
	var my sim.Access
	if len(prefix) > 0 {
		my = accessAt(res, len(prefix)-1)
	}
	if res.Err != nil {
		return my, fmt.Errorf("explore: replay failed: %w", res.Err)
	}
	st.Prefixes++
	if err := ctxErr(cfg); err != nil {
		return my, err
	}
	if ms != nil {
		if err := stepDelta(ms, res, parentEvents, prefix, st); err != nil {
			return my, err
		}
	} else if err := cfg.Check(res.H, prefix); err != nil {
		st.Witness = witness(prefix)
		return my, err
	}
	steps := 0
	for _, d := range prefix {
		if !d.Crash {
			steps++
		}
	}
	if steps >= cfg.Depth {
		return my, nil
	}
	var children []sim.Decision
	for _, p := range ready {
		children = append(children, sim.Decision{Proc: p})
	}
	if crashes < cfg.Crashes {
		// Crash only ready processes: idle and blocked processes take no
		// further steps, so crashing them duplicates sibling subtrees.
		for _, p := range ready {
			children = append(children, sim.Decision{Proc: p, Crash: true})
		}
	}
	var z []sleepEntry
	if cfg.POR && len(prefix) > 0 {
		z = filterSleep(sleep, prefix[len(prefix)-1], my)
	}
	// Whether a child is asleep depends only on the inherited set z:
	// entries appended for explored siblings are those siblings'
	// decisions, which never equal a later child's. So the last child
	// that will actually be explored — the one that may inherit the
	// monitor set without a copy — is known up front.
	lastLive := -1
	for i, d := range children {
		if !cfg.POR || !inSleep(z, d) {
			lastLive = i
		}
	}
	for i, d := range children {
		if cfg.POR && inSleep(z, d) {
			st.Pruned++
			continue
		}
		cms := ms
		if ms != nil && i < lastLive {
			cms = ms.Fork() // the last explored child inherits the set without a copy
		}
		nextCrashes := crashes
		if d.Crash {
			nextCrashes++
		}
		a, err := explore(cfg, append(prefix, d), nextCrashes, len(res.H), cms, z, st)
		if err != nil {
			return my, err
		}
		if cfg.POR && !d.Crash {
			z = append(z, sleepEntry{d: d, a: a})
		}
	}
	return my, nil
}

// CheckSafety adapts a history predicate to a Check function with a
// descriptive error.
func CheckSafety(name string, holds func(h history.History) bool) func(history.History, []sim.Decision) error {
	return func(h history.History, schedule []sim.Decision) error {
		if !holds(h) {
			return fmt.Errorf("explore: %s violated by schedule %v on history %s", name, schedule, h)
		}
		return nil
	}
}
