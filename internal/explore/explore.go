// Package explore performs exhaustive bounded exploration of the
// simulator: it enumerates every schedule up to a depth (optionally with
// crash injection) and checks a predicate on every reachable history. This
// is how the repository certifies the positive (implementability) side of
// the paper's claims: the commit-adopt consensus satisfies
// agreement+validity on all interleavings at small depth, and both TM
// implementations satisfy opacity (and I12 property S) likewise.
//
// Because processes are goroutines, configurations cannot be snapshotted;
// exploration re-executes each schedule prefix from scratch. Runs are
// deterministic, so re-execution reaches the identical configuration.
package explore

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// Config describes an exhaustive exploration.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// NewObject creates a fresh implementation instance (called once per
	// explored prefix).
	NewObject func() sim.Object
	// NewEnv creates a fresh environment instance (environments may carry
	// per-run state).
	NewEnv func() sim.Environment
	// Depth bounds the schedule length.
	Depth int
	// Crashes additionally branches on crashing each live process, at most
	// this many times per schedule. 0 disables crash injection.
	Crashes int
	// Check is invoked on the history of every explored prefix together
	// with the schedule that produced it. Returning an error aborts the
	// exploration; the error and witness schedule are reported. When
	// Workers > 1, Check must be safe for concurrent use.
	Check func(h history.History, schedule []sim.Decision) error
	// Workers > 1 explores the first-level subtrees concurrently, one
	// goroutine per ready first decision, at most Workers at a time.
	Workers int
}

// Stats summarizes an exploration.
type Stats struct {
	// Prefixes is the number of schedule prefixes explored (histories
	// checked).
	Prefixes int
	// Steps is the total number of simulator steps executed across all
	// replays.
	Steps int
	// Witness is the schedule on which Check failed, nil if none.
	Witness []sim.Decision
}

// Run explores exhaustively. It returns the statistics and the first Check
// error, if any (with Stats.Witness set).
func Run(cfg Config) (*Stats, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("explore: Procs must be >= 1")
	}
	if cfg.Check == nil {
		return nil, fmt.Errorf("explore: Check must be set")
	}
	if cfg.Workers > 1 {
		return runParallel(cfg)
	}
	st := &Stats{}
	err := explore(cfg, nil, 0, st)
	return st, err
}

// runParallel splits the exploration at the first level: the root prefix
// is checked once, then each ready first decision's subtree is explored by
// its own worker (bounded by cfg.Workers). Statistics are merged; the
// first error wins.
func runParallel(cfg Config) (*Stats, error) {
	total := &Stats{}
	res, ready := replay(cfg, nil, total)
	if res.Err != nil {
		return total, fmt.Errorf("explore: replay failed: %w", res.Err)
	}
	total.Prefixes++
	if err := cfg.Check(res.H, nil); err != nil {
		total.Witness = []sim.Decision{}
		return total, err
	}
	if cfg.Depth < 1 {
		return total, nil
	}

	var roots []sim.Decision
	for _, p := range ready {
		roots = append(roots, sim.Decision{Proc: p})
	}
	if cfg.Crashes > 0 {
		for p := 1; p <= cfg.Procs; p++ {
			roots = append(roots, sim.Decision{Proc: p, Crash: true})
		}
	}

	type outcome struct {
		st  *Stats
		err error
	}
	results := make(chan outcome, len(roots))
	sem := make(chan struct{}, cfg.Workers)
	for _, root := range roots {
		root := root
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			st := &Stats{}
			crashes := 0
			if root.Crash {
				crashes = 1
			}
			err := explore(cfg, []sim.Decision{root}, crashes, st)
			results <- outcome{st: st, err: err}
		}()
	}
	var firstErr error
	for range roots {
		o := <-results
		total.Prefixes += o.st.Prefixes
		total.Steps += o.st.Steps
		if o.err != nil && firstErr == nil {
			firstErr = o.err
			total.Witness = o.st.Witness
		}
	}
	return total, firstErr
}

// replay executes the schedule prefix and returns the run result plus the
// set of processes ready afterwards.
func replay(cfg Config, prefix []sim.Decision, st *Stats) (*sim.Result, []int) {
	var ready []int
	captured := false
	sched := sim.Seq(
		sim.Fixed(prefix),
		sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
			if !captured {
				ready = append([]int(nil), v.Ready...)
				captured = true
			}
			return sim.Decision{}, false
		}),
	)
	res := sim.Run(sim.Config{
		Procs:     cfg.Procs,
		Object:    cfg.NewObject(),
		Env:       cfg.NewEnv(),
		Scheduler: sched,
		MaxSteps:  len(prefix) + 1,
	})
	st.Steps += res.Steps
	return res, ready
}

func explore(cfg Config, prefix []sim.Decision, crashes int, st *Stats) error {
	res, ready := replay(cfg, prefix, st)
	if res.Err != nil {
		return fmt.Errorf("explore: replay failed: %w", res.Err)
	}
	st.Prefixes++
	if err := cfg.Check(res.H, prefix); err != nil {
		st.Witness = append([]sim.Decision(nil), prefix...)
		return err
	}
	steps := 0
	for _, d := range prefix {
		if !d.Crash {
			steps++
		}
	}
	if steps >= cfg.Depth {
		return nil
	}
	for _, p := range ready {
		if err := explore(cfg, append(prefix, sim.Decision{Proc: p}), crashes, st); err != nil {
			return err
		}
	}
	if crashes < cfg.Crashes {
		crashed := make(map[int]bool)
		for _, d := range prefix {
			if d.Crash {
				crashed[d.Proc] = true
			}
		}
		for p := 1; p <= cfg.Procs; p++ {
			if crashed[p] {
				continue
			}
			next := append(prefix, sim.Decision{Proc: p, Crash: true})
			if err := explore(cfg, next, crashes+1, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckSafety adapts a history predicate to a Check function with a
// descriptive error.
func CheckSafety(name string, holds func(h history.History) bool) func(history.History, []sim.Decision) error {
	return func(h history.History, schedule []sim.Decision) error {
		if !holds(h) {
			return fmt.Errorf("explore: %s violated by schedule %v on history %s", name, schedule, h)
		}
		return nil
	}
}
