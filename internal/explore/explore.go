// Package explore performs exhaustive bounded exploration of the
// simulator: it enumerates every schedule up to a depth (optionally with
// crash injection) and checks every reachable history. This is how the
// repository certifies the positive (implementability) side of the
// paper's claims: the commit-adopt consensus satisfies
// agreement+validity on all interleavings at small depth, and both TM
// implementations satisfy opacity (and I12 property S) likewise.
//
// Because processes are goroutines, configurations cannot be snapshotted;
// exploration re-executes each schedule prefix from scratch. Runs are
// deterministic, so re-execution reaches the identical configuration.
//
// Checking comes in two flavors. The batch path (Config.Check) re-judges
// the entire history of every explored prefix. The incremental path
// (Config.NewMonitors) threads a MonitorSet down the DFS: the set is
// forked at every branch point and fed only the delta events the new
// schedule edge produced (Result.EventsSince), so each event is judged
// once per path instead of once per descendant prefix.
//
// Config.POR additionally enables sleep-set partial-order reduction:
// when the object under test reports per-step footprints
// (sim.Footprinted), subtrees that only commute independent steps of an
// already-explored sibling are skipped. See the package's dependence
// relation in dependent for what "independent" means here and DESIGN.md
// for the soundness argument.
//
// Config.Cache enables state-fingerprint deduplication: prefixes whose
// reached configuration (sim.Result.Fingerprint) and monitor residual
// state (Digester) match an already fully explored state are pruned,
// cutting the subtrees rooted at states that many inequivalent
// schedules reach. Config.Workers > 1 explores the tree with a bounded
// work-stealing scheduler; all workers share the visited set.
package explore

import (
	"context"
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// MonitorSet judges one DFS path incrementally: exploration feeds it
// each new event exactly once and forks it at schedule branch points.
type MonitorSet interface {
	// Step consumes one new event of the path. A non-nil error is the
	// violation (exploration stops and reports it with the witness).
	Step(e history.Event) error
	// Fork returns an independent copy for a sibling branch; stepping
	// either copy must not affect the other.
	Fork() MonitorSet
}

// Digester is the optional hook a MonitorSet implements to make states
// cacheable under Config.Cache: StateDigest returns a canonical digest
// of the set's residual state — everything its future Step verdicts can
// depend on — such that equal digests imply identical verdicts on every
// event suffix. ok=false marks the current state undigestable; the
// prefix is then neither looked up nor stored. Without the hook (or
// with ok=false throughout) the cache never hits and the exploration is
// exhaustive as before.
type Digester interface {
	StateDigest() (uint64, bool)
}

// Violation wraps a MonitorSet violation with its location: the witness
// schedule (always non-nil), the full history of the violating prefix,
// and the index of the event on which Step failed. Unwrap exposes the
// monitor's error.
type Violation struct {
	// Schedule is the witness prefix (non-nil, possibly empty).
	Schedule []sim.Decision
	// H is the history of the violating prefix.
	H history.History
	// EventIndex is the index in H of the event Step rejected.
	EventIndex int
	// Cause is the error Step returned.
	Cause error
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("explore: violation at event %d of schedule %v: %v", v.EventIndex, v.Schedule, v.Cause)
}

// Unwrap exposes the monitor's error.
func (v *Violation) Unwrap() error { return v.Cause }

// Config describes an exhaustive exploration.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// NewObject creates a fresh implementation instance (called once per
	// explored prefix).
	NewObject func() sim.Object
	// NewEnv creates a fresh environment instance (environments may carry
	// per-run state).
	NewEnv func() sim.Environment
	// Depth bounds the schedule length.
	Depth int
	// Crashes additionally branches on crashing each ready process, at
	// most this many times per schedule. 0 disables crash injection.
	// (Idle and blocked processes take no further steps, so crashing them
	// would only duplicate their sibling subtrees modulo a crash event.)
	Crashes int
	// Check is invoked on the history of every explored prefix together
	// with the schedule that produced it. Returning an error aborts the
	// exploration; the error and witness schedule are reported. When
	// Workers > 1, Check must be safe for concurrent use. Ignored when
	// NewMonitors is set.
	Check func(h history.History, schedule []sim.Decision) error
	// NewMonitors, when set, selects the incremental path: it creates the
	// root monitor set once per exploration. A Step error aborts the
	// exploration and is reported wrapped in a *Violation.
	NewMonitors func() MonitorSet
	// Workers > 1 explores the tree concurrently with a bounded
	// work-stealing scheduler: each worker runs the same DFS and splits
	// sibling subtrees into stealable tasks while its deque has room.
	// Violations are still reported deterministically — the failure at
	// the preorder-least (lexicographically least) schedule prefix, the
	// one sequential DFS reaches first — regardless of worker timing.
	Workers int
	// POR enables sleep-set partial-order reduction: subtrees whose first
	// step is asleep (covered, up to commuting independent steps, by an
	// already-explored sibling) are skipped and counted in Stats.Pruned.
	// Pruning requires the object to report per-step footprints
	// (sim.Footprinted); without them every step conflicts with every
	// other and the exploration is exhaustive as before. POR assumes the
	// checked properties are invariant under swapping adjacent
	// invocations (or adjacent responses) of different processes, and
	// environments that decide invocations per process, independent of
	// the view — both hold for the repository's environments and
	// properties. Crash decisions are never pruned or slept.
	POR bool
	// Cache enables the state-fingerprint visited set: a prefix whose
	// reached configuration and monitor digest match a state whose
	// subtree was already fully explored (with at least as much depth
	// and crash budget remaining, and under a sleep set no larger than
	// the current one) is pruned and counted in Stats.CacheHits. It
	// requires the monitor path (NewMonitors) — cache-hit soundness
	// rests on the monitor digest — and objects that opt into
	// sim.Fingerprintable; prefixes without a valid fingerprint are
	// explored as usual. Like POR it assumes view-independent
	// environments. Witnesses remain deterministic at Workers == 1;
	// with Workers > 1 the shared visited set makes WHICH equivalent
	// witness is found timing-dependent (verdicts are unaffected).
	Cache bool
	// Ctx optionally cancels the exploration; it is polled once per
	// explored prefix and its error returned as-is.
	Ctx context.Context
}

// Stats summarizes an exploration.
type Stats struct {
	// Prefixes is the number of schedule prefixes explored (histories
	// checked).
	Prefixes int
	// Steps is the total number of simulator steps executed across all
	// replays. (The footprint probes that POR with Workers > 1 performs
	// at split points are excluded, so parallel and sequential
	// statistics stay comparable.)
	Steps int
	// Pruned is the number of subtrees skipped by partial-order
	// reduction (0 unless Config.POR).
	Pruned int
	// CacheHits is the number of subtrees skipped because the reached
	// state was already fully explored (0 unless Config.Cache).
	CacheHits int
	// Workers is the number of workers the exploration actually used
	// (Config.Workers clamped to at least 1).
	Workers int
	// Witness is the schedule on which the check failed: nil when no
	// violation was found, non-nil (and empty for the root prefix)
	// otherwise.
	Witness []sim.Decision
}

// witness copies a prefix into a witness schedule, normalizing the empty
// (root) prefix to a non-nil empty slice so a violation always carries a
// non-nil witness.
func witness(prefix []sim.Decision) []sim.Decision {
	return append([]sim.Decision{}, prefix...)
}

// sleepEntry is one member of a sleep set: a decision that an earlier
// sibling branch already explored, together with the footprint its step
// had when it entered the set. The footprint stays valid while the entry
// stays asleep: an entry is dropped as soon as a dependent step is
// taken, and commuting with independent steps cannot change what the
// step reads or writes.
type sleepEntry struct {
	d sim.Decision
	a sim.Access
}

// dependent reports whether the two decisions (with their footprints)
// must not be commuted. Steps of one process are ordered; crash
// decisions are visible to every property and change enabledness;
// unknown footprints conflict with everything; an invocation and a
// response of different processes must keep their order (it is the
// real-time precedence properties observe); and two base-object accesses
// conflict when they touch the same object and either writes.
func dependent(d1 sim.Decision, a1 sim.Access, d2 sim.Decision, a2 sim.Access) bool {
	if d1.Proc == d2.Proc || d1.Crash || d2.Crash || a1.Crash || a2.Crash {
		return true
	}
	if !a1.Known || !a2.Known {
		return true
	}
	if (a1.Invoked && a2.Responded) || (a1.Responded && a2.Invoked) {
		return true
	}
	return a1.Conflicts(a2)
}

// accessAt returns the access-log entry for schedule position i, or an
// unknown (conflicts-with-everything) access when the run recorded no
// log (object without footprints) or stopped short.
func accessAt(res *sim.Result, i int) sim.Access {
	if i < 0 || i >= len(res.Accesses) {
		return sim.Access{}
	}
	return res.Accesses[i]
}

// filterSleep keeps the entries independent of the step (d, a) just
// taken. It always allocates, so the parent's set is never mutated.
func filterSleep(sleep []sleepEntry, d sim.Decision, a sim.Access) []sleepEntry {
	var out []sleepEntry
	for _, z := range sleep {
		if !dependent(z.d, z.a, d, a) {
			out = append(out, z)
		}
	}
	return out
}

// inSleep reports whether decision d is asleep.
func inSleep(sleep []sleepEntry, d sim.Decision) bool {
	for _, z := range sleep {
		if z.d == d {
			return true
		}
	}
	return false
}

// engine carries the state one exploration shares across its recursion
// (and, at Workers > 1, across its workers).
type engine struct {
	cfg     Config
	visited *visitedSet // non-nil iff cfg.Cache
}

// Run explores exhaustively. It returns the statistics and the first
// check or monitor error, if any (with Stats.Witness set).
func Run(cfg Config) (*Stats, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("explore: Procs must be >= 1")
	}
	if cfg.Check == nil && cfg.NewMonitors == nil {
		return nil, fmt.Errorf("explore: Check or NewMonitors must be set")
	}
	if cfg.Cache && cfg.NewMonitors == nil {
		return nil, fmt.Errorf("explore: Cache requires the incremental monitor path (NewMonitors): cache-hit soundness rests on the monitor state digest")
	}
	g := &engine{cfg: cfg}
	if cfg.Cache {
		g.visited = newVisitedSet()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > 1 {
		return g.runParallel(workers)
	}
	st := &Stats{Workers: 1}
	var ms MonitorSet
	if cfg.NewMonitors != nil {
		ms = cfg.NewMonitors()
	}
	_, _, err := g.explore(nil, nil, nil, 0, 0, ms, nil, st)
	return st, err
}

// replay executes the schedule prefix and returns the run result plus the
// set of processes ready afterwards.
func (g *engine) replay(prefix []sim.Decision, st *Stats) (*sim.Result, []int) {
	var ready []int
	captured := false
	sched := sim.Seq(
		sim.Fixed(prefix),
		sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
			if !captured {
				ready = append([]int(nil), v.Ready...)
				captured = true
			}
			return sim.Decision{}, false
		}),
	)
	res := sim.Run(sim.Config{
		Procs:       g.cfg.Procs,
		Object:      g.cfg.NewObject(),
		Env:         g.cfg.NewEnv(),
		Scheduler:   sched,
		MaxSteps:    len(prefix) + 1,
		Fingerprint: g.cfg.Cache,
	})
	if st != nil {
		st.Steps += res.Steps
	}
	return res, ready
}

// ctxErr polls the optional context.
func (g *engine) ctxErr() error {
	if g.cfg.Ctx != nil {
		return g.cfg.Ctx.Err()
	}
	return nil
}

// stepDelta feeds the prefix's new events (those at index parentEvents or
// later) into the monitor set; a violation is wrapped with its location
// and recorded in the stats.
func stepDelta(ms MonitorSet, res *sim.Result, parentEvents int, prefix []sim.Decision, st *Stats) error {
	delta := res.EventsSince(parentEvents)
	for k := range delta {
		if err := ms.Step(delta[k]); err != nil {
			w := witness(prefix)
			st.Witness = w
			return &Violation{Schedule: w, H: res.H, EventIndex: parentEvents + k, Cause: err}
		}
	}
	return nil
}

// combineKey mixes the configuration fingerprint with the monitor
// digest into one cache key.
func combineKey(fp, digest uint64) uint64 {
	return history.DigestWord(fp, digest)
}

// explore visits the prefix and recurses into its children. w is the
// executing worker (nil on the sequential path); path is the node's
// child-ordinal path from the root, used for preorder comparisons under
// parallelism. parentEvents is the number of history events the parent
// prefix recorded; ms is the monitor set as of the parent (nil on the
// batch path); sleep is the sleep set inherited from the parent, not
// yet filtered by this prefix's own last step. It returns the footprint
// of that last step so the parent can put this child to sleep for later
// siblings, and whether the subtree was explored to completion: a
// parallel cutoff anywhere beneath this node makes it incomplete, and
// an incomplete subtree must never be published to the visited set —
// even when the node's own child loop never re-checked the cutoff
// (e.g. the abandoned child was its last).
func (g *engine) explore(w *wsWorker, prefix []sim.Decision, path []int, crashes, parentEvents int, ms MonitorSet, sleep []sleepEntry, st *Stats) (sim.Access, bool, error) {
	res, ready := g.replay(prefix, st)
	var my sim.Access
	if len(prefix) > 0 {
		my = accessAt(res, len(prefix)-1)
	}
	if res.Err != nil {
		return my, false, g.fail(w, path, fmt.Errorf("explore: replay failed: %w", res.Err))
	}
	st.Prefixes++
	if err := g.ctxErr(); err != nil {
		return my, false, g.fatal(w, err)
	}
	if ms != nil {
		if err := stepDelta(ms, res, parentEvents, prefix, st); err != nil {
			return my, false, g.fail(w, path, err)
		}
	} else if err := g.cfg.Check(res.H, prefix); err != nil {
		st.Witness = witness(prefix)
		return my, false, g.fail(w, path, err)
	}
	steps := 0
	for _, d := range prefix {
		if !d.Crash {
			steps++
		}
	}
	if steps >= g.cfg.Depth {
		return my, true, nil
	}
	var children []sim.Decision
	for _, p := range ready {
		children = append(children, sim.Decision{Proc: p})
	}
	if crashes < g.cfg.Crashes {
		// Crash only ready processes: idle and blocked processes take no
		// further steps, so crashing them duplicates sibling subtrees.
		for _, p := range ready {
			children = append(children, sim.Decision{Proc: p, Crash: true})
		}
	}
	var z []sleepEntry
	if g.cfg.POR && len(prefix) > 0 {
		z = filterSleep(sleep, prefix[len(prefix)-1], my)
	}
	// Whether a child is asleep depends only on the inherited set z:
	// entries appended for explored siblings are those siblings'
	// decisions, which never equal a later child's. So the children that
	// will actually be explored are known up front.
	var live []int
	for i, d := range children {
		if !g.cfg.POR || !inSleep(z, d) {
			live = append(live, i)
		}
	}
	st.Pruned += len(children) - len(live)
	if len(live) == 0 {
		return my, true, nil
	}

	// State cache: if an equivalent configuration — same fingerprint,
	// same monitor residual state — was already fully explored with at
	// least this much depth and crash budget remaining and under a sleep
	// set no larger than z, this subtree adds nothing. Otherwise explore
	// it and, if it completes cleanly, publish it. zStart is clipped so
	// the loop's appends below cannot mutate the stored set.
	var ckey uint64
	var zStart []sleepEntry
	remDepth, remCrashes := g.cfg.Depth-steps, g.cfg.Crashes-crashes
	cacheable := false
	if g.visited != nil && res.Fingerprinted {
		if dg, ok := monitorDigest(ms); ok {
			ckey = combineKey(res.Fingerprint, dg)
			zStart = z[:len(z):len(z)]
			if g.visited.hit(ckey, remDepth, remCrashes, zStart) {
				st.CacheHits++
				return my, true, nil
			}
			cacheable = true
		}
	}

	// Under parallelism, split the later live children off as stealable
	// tasks when the worker's deque has room (and the subtrees are worth
	// the task overhead), exploring only the first live child inline.
	spawned := 0
	if w != nil && len(live) > 1 && remDepth >= minSplitDepth {
		spawned = g.trySplit(w, prefix, path, crashes, res, ms, z, children, live)
	}

	lastLive := live[len(live)-1]
	complete := true
	for i, d := range children {
		if g.cfg.POR && inSleep(z, d) {
			continue // already counted in Pruned above
		}
		if spawned > 0 && i > live[0] {
			break // later live children were handed to the pool
		}
		cpath := path
		if w != nil {
			cpath = append(path[:len(path):len(path)], i)
			if w.pool.cutoff(cpath) {
				// Everything from here on is preorder-after a failure
				// already found; the subtree is abandoned, so neither it
				// nor any ancestor may be published as fully explored.
				complete = false
				break
			}
		}
		cms := ms
		if ms != nil && i < lastLive && spawned == 0 {
			cms = ms.Fork() // the last explored child inherits the set without a copy
		}
		nextCrashes := crashes
		if d.Crash {
			nextCrashes++
		}
		a, cc, err := g.explore(w, append(prefix, d), cpath, nextCrashes, len(res.H), cms, z, st)
		if err != nil {
			return my, false, err
		}
		if !cc {
			// The child's subtree was abandoned by a cutoff below it; this
			// node's subtree is incomplete even if its own loop never
			// re-checks the cutoff (the abandoned child may be its last).
			complete = false
		}
		if g.cfg.POR && !d.Crash {
			z = append(z, sleepEntry{d: d, a: a})
		}
	}
	if spawned > 0 {
		// Later live children were handed to the pool and may not have
		// run yet, so neither this node nor any ancestor has seen its
		// whole subtree: report it incomplete so no one on this path
		// publishes a visited-set entry covering pending tasks. (A stored
		// entry for a subtree with unexplored descendants could prune the
		// very task meant to explore them — two such entries can even
		// cross-prune each other — losing violations.)
		complete = false
	}
	if cacheable && complete {
		g.visited.store(ckey, remDepth, remCrashes, zStart)
	}
	return my, complete, nil
}

// fail wraps a node failure with its preorder position under
// parallelism; sequential exploration returns the error unchanged.
func (g *engine) fail(w *wsWorker, path []int, err error) error {
	if w == nil {
		return err
	}
	return &nodeError{path: append([]int(nil), path...), err: err}
}

// fatal marks an exploration-wide abort (context cancellation).
func (g *engine) fatal(w *wsWorker, err error) error {
	if w == nil {
		return err
	}
	return &fatalError{err: err}
}

// monitorDigest extracts the canonical residual-state digest of the
// monitor set, when it provides one.
func monitorDigest(ms MonitorSet) (uint64, bool) {
	d, ok := ms.(Digester)
	if !ok {
		return 0, false
	}
	return d.StateDigest()
}

// CheckSafety adapts a history predicate to a Check function with a
// descriptive error.
func CheckSafety(name string, holds func(h history.History) bool) func(history.History, []sim.Decision) error {
	return func(h history.History, schedule []sim.Decision) error {
		if !holds(h) {
			return fmt.Errorf("explore: %s violated by schedule %v on history %s", name, schedule, h)
		}
		return nil
	}
}
