package explore

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// pathExec executes one worker's DFS path moves. Two implementations
// exist: sessionExec descends by extending a persistent sim.Session one
// decision at a time and backtracks by restoring snapshots (amortized
// O(1) simulator steps per tree edge), and replayExec re-executes every
// prefix from the initial configuration (the historical engine, kept as
// the transparent fallback for objects without the sim.Snapshottable
// hook and as the Config.ForceReplay escape hatch).
type pathExec interface {
	// bind redirects statistics charging to st (workers reuse one exec
	// across tasks, each with its own Stats).
	bind(st *Stats)
	// task positions the exec at the given prefix — a stolen subtree's
	// root, or the exploration root for an empty prefix — and returns
	// its node info. parentEvents is the number of history events the
	// prefix's parent recorded (0 at the root): the returned delta
	// starts there.
	task(prefix []sim.Decision, parentEvents int) (*nodeInfo, error)
	// enter moves from the current node to its child d.
	enter(d sim.Decision) (*nodeInfo, error)
	// mark captures the current node for later leaves.
	mark() execMark
	// leave returns to a marked ancestor of the current position; a
	// no-op when already there.
	leave(m execMark) error
	// probe reports the footprint of child d's first step from the
	// marked node without advancing the exploration; the exec is left
	// at an unspecified position (callers leave(m) before the next
	// enter). Probe work never counts toward Stats.Steps.
	probe(m execMark, d sim.Decision) (sim.Access, error)
	// release returns a mark that will never be left to again, letting
	// the exec pool its resources. Optional — dropping a mark instead
	// is correct, just garbage.
	release(m execMark)
	// recycle returns a node info the DFS is done with for reuse by a
	// later task/enter. Optional, like release.
	recycle(ni *nodeInfo)
	// history returns the full event history of the current node.
	history() history.History
	// close releases the exec's resources.
	close()
}

// execMark is an opaque position token of a pathExec.
type execMark any

// nodeInfo is what the DFS needs to know about the node an exec move
// just reached.
type nodeInfo struct {
	// delta holds the events recorded since the node's parent
	// (capacity-clipped; monitors may retain it).
	delta history.History
	// access is the footprint of the node's last decision (zero at the
	// root or for untracked objects).
	access sim.Access
	// ready lists the processes that can step from this node, sorted.
	ready []int
	// crashed lists the crashed processes (recover candidates), sorted.
	// Only populated when the exploration has a recovery budget.
	crashed []int
	// fp/fped carry the configuration fingerprint under Config.Cache.
	fp   uint64
	fped bool
}

// newExec builds the engine's executor: a session exec when the object
// supports snapshots (and replay is not forced), else a replay exec.
func (g *engine) newExec(st *Stats) (pathExec, error) {
	if g.incremental {
		return newSessionExec(g, st)
	}
	return &replayExec{g: g, st: st}, nil
}

// sessionExec drives a persistent simulation session.
type sessionExec struct {
	g    *engine
	st   *Stats
	sess *sim.Session
	root *sim.Mark
	// nifree pools nodeInfos recycled by the DFS (live nodeInfos are
	// bounded by the exploration depth, so the pool stays tiny); each
	// reuse also reuses the ready-slice backing.
	nifree []*nodeInfo
}

func newSessionExec(g *engine, st *Stats) (*sessionExec, error) {
	sess, err := sim.NewSession(sim.SessionConfig{
		Procs:       g.cfg.Procs,
		Object:      g.cfg.NewObject(),
		NewEnv:      g.cfg.NewEnv,
		Fingerprint: g.cfg.Cache,
	})
	if err != nil {
		return nil, err
	}
	return &sessionExec{g: g, st: st, sess: sess, root: sess.Mark()}, nil
}

func (e *sessionExec) bind(st *Stats) { e.st = st }

func (e *sessionExec) task(prefix []sim.Decision, parentEvents int) (*nodeInfo, error) {
	if err := e.leave(e.root); err != nil {
		return nil, err
	}
	if len(prefix) == 0 {
		return e.node(e.sess.History(), sim.Access{}), nil
	}
	// Seed the split prefix up to the task node's parent with one
	// incremental replay (re-simulation, not exploration), then enter
	// the node itself as a regular explored edge.
	for _, d := range prefix[:len(prefix)-1] {
		info, err := e.sess.Extend(d)
		e.st.Resims += info.Steps
		if err != nil {
			return nil, err
		}
	}
	if got := len(e.sess.History()); got != parentEvents {
		return nil, fmt.Errorf("sim session desynchronized: seed replay recorded %d events, split recorded %d", got, parentEvents)
	}
	return e.enter(prefix[len(prefix)-1])
}

func (e *sessionExec) enter(d sim.Decision) (*nodeInfo, error) {
	info, err := e.sess.Extend(d)
	e.st.Steps += info.Steps
	if err != nil {
		return nil, err
	}
	return e.node(info.Delta, info.Access), nil
}

func (e *sessionExec) node(delta history.History, a sim.Access) *nodeInfo {
	var ni *nodeInfo
	if n := len(e.nifree); n > 0 {
		ni = e.nifree[n-1]
		e.nifree = e.nifree[:n-1]
		*ni = nodeInfo{ready: ni.ready[:0], crashed: ni.crashed[:0]}
	} else {
		ni = &nodeInfo{}
	}
	ni.delta, ni.access = delta, a
	ni.ready = e.sess.ReadyAppend(ni.ready)
	if e.g.cfg.Recoveries > 0 {
		ni.crashed = e.sess.CrashedAppend(ni.crashed)
	}
	if e.g.cfg.Cache {
		ni.fp, ni.fped = e.sess.Fingerprint()
	}
	return ni
}

func (e *sessionExec) mark() execMark { return e.sess.Mark() }

func (e *sessionExec) release(m execMark) { e.sess.Release(m.(*sim.Mark)) }

func (e *sessionExec) recycle(ni *nodeInfo) { e.nifree = append(e.nifree, ni) }

func (e *sessionExec) leave(m execMark) error {
	n, err := e.sess.Restore(m.(*sim.Mark))
	e.st.Resims += n
	return err
}

func (e *sessionExec) probe(m execMark, d sim.Decision) (sim.Access, error) {
	if err := e.leave(m); err != nil {
		return sim.Access{}, err
	}
	info, err := e.sess.Extend(d)
	e.st.Resims += info.Steps
	return info.Access, err
}

func (e *sessionExec) history() history.History { return e.sess.History() }

func (e *sessionExec) close() { e.sess.Close() }

// replayExec re-executes every prefix from the initial configuration.
type replayExec struct {
	g     *engine
	st    *Stats
	stack []sim.Decision
	res   *sim.Result
}

// replayMark records a replay exec position: a stack depth plus the
// result of that node's replay.
type replayMark struct {
	depth int
	res   *sim.Result
}

func (e *replayExec) bind(st *Stats) { e.st = st }

func (e *replayExec) task(prefix []sim.Decision, parentEvents int) (*nodeInfo, error) {
	e.stack = append(e.stack[:0], prefix...)
	res, ready := e.g.replay(e.stack, e.st)
	e.chargeResim(res, prefix)
	if res.Err != nil {
		return nil, res.Err
	}
	e.res = res
	return e.node(res, ready, res.EventsSince(parentEvents)), nil
}

func (e *replayExec) enter(d sim.Decision) (*nodeInfo, error) {
	parentLen := len(e.res.H)
	e.stack = append(e.stack, d)
	res, ready := e.g.replay(e.stack, e.st)
	e.chargeResim(res, e.stack)
	if res.Err != nil {
		return nil, res.Err
	}
	e.res = res
	return e.node(res, ready, res.EventsSince(parentLen)), nil
}

// chargeResim accounts the re-executed portion of a from-root replay:
// everything but the replayed node's own (non-crash) last decision
// re-establishes an already-visited configuration.
func (e *replayExec) chargeResim(res *sim.Result, prefix []sim.Decision) {
	resim := res.Steps
	if res.Err == nil && len(prefix) > 0 && !prefix[len(prefix)-1].Crash {
		resim--
	}
	e.st.Resims += resim
}

func (e *replayExec) node(res *sim.Result, ready []int, delta history.History) *nodeInfo {
	ni := &nodeInfo{
		delta:  delta,
		access: accessAt(res, len(e.stack)-1),
		ready:  ready,
		fp:     res.Fingerprint,
		fped:   res.Fingerprinted,
	}
	if e.g.cfg.Recoveries > 0 {
		ni.crashed = res.Crashed
	}
	return ni
}

func (e *replayExec) mark() execMark { return &replayMark{depth: len(e.stack), res: e.res} }

func (e *replayExec) leave(m execMark) error {
	mm := m.(*replayMark)
	e.stack = e.stack[:mm.depth]
	e.res = mm.res
	return nil
}

func (e *replayExec) probe(m execMark, d sim.Decision) (sim.Access, error) {
	mm := m.(*replayMark)
	// Probes are excluded from the statistics (like PR3's first-level
	// probes) so parallel and sequential counts stay comparable.
	pres, _ := e.g.replay(append(e.stack[:mm.depth:mm.depth], d), nil)
	return accessAt(pres, mm.depth), nil
}

func (e *replayExec) history() history.History { return e.res.H }

func (e *replayExec) release(execMark) {}

func (e *replayExec) recycle(*nodeInfo) {}

func (e *replayExec) close() {}
