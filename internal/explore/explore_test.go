package explore

import (
	"strings"
	"testing"

	"repro/internal/base"
	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tm"
)

func TestExhaustiveCommitAdoptConsensusSafety(t *testing.T) {
	prop := safety.AgreementValidity{}
	st, err := Run(Config{
		Procs:     2,
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth: 13,
		Check: CheckSafety("agreement+validity", prop.Holds),
	})
	if err != nil {
		t.Fatalf("exhaustive check failed: %v (witness %v)", err, st.Witness)
	}
	if st.Prefixes < 1000 {
		t.Errorf("expected substantial exploration, got %d prefixes", st.Prefixes)
	}
}

func TestExhaustiveCommitAdoptWithCrashes(t *testing.T) {
	prop := safety.AgreementValidity{}
	st, err := Run(Config{
		Procs:     2,
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth:   9,
		Crashes: 1,
		Check:   CheckSafety("agreement+validity", prop.Holds),
	})
	if err != nil {
		t.Fatalf("exhaustive check with crashes failed: %v (witness %v)", err, st.Witness)
	}
	if st.Prefixes == 0 {
		t.Error("no exploration happened")
	}
}

func TestExhaustiveI12OpacityAndS(t *testing.T) {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Var: "x"}}},
	}
	propS := safety.PropertyS{}
	st, err := Run(Config{
		Procs:     2,
		NewObject: func() sim.Object { return tm.NewI12(2) },
		NewEnv:    func() sim.Environment { return tm.TxnLoop(tpl) },
		Depth:     12,
		Check: CheckSafety("opacity+S", func(h history.History) bool {
			return propS.Holds(h)
		}),
	})
	if err != nil {
		t.Fatalf("exhaustive I12 check failed: %v (witness %v)", err, st.Witness)
	}
	t.Logf("explored %d prefixes, %d steps", st.Prefixes, st.Steps)
}

func TestExhaustiveGlobalCASOpacity(t *testing.T) {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	st, err := Run(Config{
		Procs:     2,
		NewObject: func() sim.Object { return tm.NewGlobalCAS(2) },
		NewEnv:    func() sim.Environment { return tm.TxnLoop(tpl) },
		Depth:     12,
		Check:     CheckSafety("opacity", safety.Opaque),
	})
	if err != nil {
		t.Fatalf("exhaustive GlobalCAS check failed: %v (witness %v)", err, st.Witness)
	}
	t.Logf("explored %d prefixes, %d steps", st.Prefixes, st.Steps)
}

// brokenConsensus decides its own proposal immediately: agreement is
// violated whenever two processes with different values both decide.
type brokenConsensus struct {
	r *base.Register
}

func (b *brokenConsensus) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	b.r.Write(p, inv.Arg)
	return inv.Arg
}

func TestExplorerFindsViolation(t *testing.T) {
	prop := safety.AgreementValidity{}
	st, err := Run(Config{
		Procs: 2,
		NewObject: func() sim.Object {
			return &brokenConsensus{r: base.NewRegister("r", nil)}
		},
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth: 6,
		Check: CheckSafety("agreement+validity", prop.Holds),
	})
	if err == nil {
		t.Fatal("explorer must find the agreement violation")
	}
	if st.Witness == nil {
		t.Fatal("witness schedule must be recorded")
	}
	if !strings.Contains(err.Error(), "agreement+validity") {
		t.Errorf("error should name the property: %v", err)
	}
	// The witness replays to a violating history.
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    &brokenConsensus{r: base.NewRegister("r", nil)},
		Env:       consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Fixed(st.Witness),
		MaxSteps:  len(st.Witness) + 1,
	})
	if prop.Holds(res.H) {
		t.Error("witness schedule must reproduce the violation")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	prop := safety.AgreementValidity{}
	mk := func(workers int) Stats {
		st, err := Run(Config{
			Procs:     2,
			NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
			NewEnv: func() sim.Environment {
				return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
			},
			Depth:   11,
			Workers: workers,
			Check:   CheckSafety("agreement+validity", prop.Holds),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return *st
	}
	seq := mk(1)
	par := mk(4)
	if seq.Prefixes != par.Prefixes {
		t.Errorf("parallel explored %d prefixes, sequential %d", par.Prefixes, seq.Prefixes)
	}
}

func TestParallelFindsViolation(t *testing.T) {
	prop := safety.AgreementValidity{}
	st, err := Run(Config{
		Procs: 2,
		NewObject: func() sim.Object {
			return &brokenConsensus{r: base.NewRegister("r", nil)}
		},
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth:   6,
		Workers: 4,
		Check:   CheckSafety("agreement+validity", prop.Holds),
	})
	if err == nil {
		t.Fatal("parallel explorer must find the violation")
	}
	if st.Witness == nil {
		t.Fatal("witness must be recorded")
	}
}

func TestExplorerConfigErrors(t *testing.T) {
	if _, err := Run(Config{Procs: 0}); err == nil {
		t.Error("zero procs must be rejected")
	}
	if _, err := Run(Config{Procs: 1}); err == nil {
		t.Error("missing Check must be rejected")
	}
}
