package explore

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// cleanCfg is a clean (no-violation) crash-injected exploration of the
// commit-adopt consensus, sized to force many splits at many depths.
func cleanCfg(workers int, por bool) Config {
	prop := safety.AgreementValidity{}
	return Config{
		Procs:     2,
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		NewEnv: func() sim.Environment {
			return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
		},
		Depth:   8,
		Crashes: 1,
		Workers: workers,
		POR:     por,
		Check:   CheckSafety("agreement+validity", prop.Holds),
	}
}

// TestWorkStealingCleanParity: on a clean exploration the work-stealing
// scheduler must enumerate the identical tree as sequential DFS — same
// prefixes, same simulator steps, same prunes — at every worker count,
// with POR off and on. (Under POR the spawned siblings' sleep sets come
// from footprint probes; parity here pins that the probed sets match
// what the sequential recursion accumulates.)
func TestWorkStealingCleanParity(t *testing.T) {
	for _, por := range []bool{false, true} {
		seq, err := Run(cleanCfg(1, por))
		if err != nil {
			t.Fatalf("sequential (por=%v): %v", por, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := Run(cleanCfg(workers, por))
			if err != nil {
				t.Fatalf("workers=%d por=%v: %v", workers, por, err)
			}
			if par.Workers != workers {
				t.Errorf("workers=%d: Stats.Workers = %d", workers, par.Workers)
			}
			if par.Prefixes != seq.Prefixes || par.Steps != seq.Steps || par.Pruned != seq.Pruned {
				t.Errorf("workers=%d por=%v: tree differs from sequential: %d/%d/%d vs %d/%d/%d",
					workers, por, par.Prefixes, par.Steps, par.Pruned, seq.Prefixes, seq.Steps, seq.Pruned)
			}
		}
	}
}

// TestWorkStealingWitnessStress hammers witness determinism under the
// work-stealing scheduler on a multi-violation object with crash
// branching: across repetitions and worker counts, the reported witness
// and error must equal the sequential ones. Run with -race in CI, this
// doubles as the scheduler's data-race stress test.
func TestWorkStealingWitnessStress(t *testing.T) {
	mk := func(workers int) Config {
		cfg := brokenCfg(workers)
		cfg.Depth = 7
		cfg.Crashes = 1
		return cfg
	}
	seq, seqErr := Run(mk(1))
	if seqErr == nil {
		t.Fatal("sequential exploration must find the violation")
	}
	for i := 0; i < 15; i++ {
		for _, workers := range []int{2, 4, 8} {
			par, parErr := Run(mk(workers))
			if parErr == nil {
				t.Fatalf("run %d workers=%d: violation not found", i, workers)
			}
			if parErr.Error() != seqErr.Error() {
				t.Fatalf("run %d workers=%d: error %q != sequential %q", i, workers, parErr, seqErr)
			}
			if !reflect.DeepEqual(par.Witness, seq.Witness) {
				t.Fatalf("run %d workers=%d: witness %v != sequential %v", i, workers, par.Witness, seq.Witness)
			}
		}
	}
}

// TestWorkStealingCancellation: cancelling the context aborts the pool
// and surfaces the context error from every worker count.
func TestWorkStealingCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		cfg := cleanCfg(workers, false)
		cfg.Ctx = ctx
		_, err := Run(cfg)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestCacheRequiresMonitors pins the engine-level guard: Config.Cache
// without NewMonitors is a configuration error, not a silent no-op.
func TestCacheRequiresMonitors(t *testing.T) {
	cfg := cleanCfg(1, false)
	cfg.Cache = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("Cache without NewMonitors must be rejected")
	}
}

// TestVisitedSetSemantics unit-tests the concurrent visited set: budget
// dominance, sleep-set coverage, and pareto pruning of entries.
func TestVisitedSetSemantics(t *testing.T) {
	v := newVisitedSet()
	s1 := []sleepEntry{{d: sim.Decision{Proc: 1}, a: sim.Access{Obj: "r", Known: true}}}

	v.store(42, 3, 1, 1, nil)
	if !v.hit(42, 3, 1, 1, nil) {
		t.Error("exact replica not hit")
	}
	if !v.hit(42, 2, 0, 0, nil) {
		t.Error("smaller budget not dominated")
	}
	if v.hit(42, 4, 1, 1, nil) {
		t.Error("deeper budget wrongly hit")
	}
	if v.hit(42, 3, 2, 1, nil) {
		t.Error("larger crash budget wrongly hit")
	}
	if v.hit(42, 3, 1, 2, nil) {
		t.Error("larger recovery budget wrongly hit")
	}
	if v.hit(7, 3, 1, 1, nil) {
		t.Error("different key hit")
	}

	// Stored under sleep set s1: only arrivals whose sleep set covers s1
	// may prune (the stored exploration skipped s1's branches).
	v.store(99, 5, 0, 0, s1)
	if v.hit(99, 5, 0, 0, nil) {
		t.Error("arrival with empty sleep set hit an entry stored under a sleep set")
	}
	if !v.hit(99, 5, 0, 0, s1) {
		t.Error("arrival with covering sleep set not hit")
	}
	// A stronger store (same budget, no sleeping) supersedes s1's entry
	// and serves both arrivals.
	v.store(99, 5, 0, 0, nil)
	if !v.hit(99, 5, 0, 0, nil) || !v.hit(99, 5, 0, 0, s1) {
		t.Error("stronger entry does not serve both arrivals")
	}
	if got := len(v.shard(99).m[99]); got != 1 {
		t.Errorf("dominated entry not pruned: %d entries", got)
	}
}
