// Package base implements the atomic base objects of the paper's system
// model (Section 2): read/write registers, compare-and-swap, test-and-set,
// fetch-and-add, and an atomic snapshot array. Base objects are the
// primitives "usually provided by the hardware" from which higher-level
// shared objects (consensus, transactional memory) are implemented.
//
// Every operation on a base object is exactly one atomic step of the
// executing process, expressed in two equivalent forms:
//
//   - The blocking form (Read, Write, ...) takes a Stepper: the
//     operation obtains a step grant from the scheduler (blocking
//     inside Stepper.Exec) and performs its effect atomically within
//     that grant. sim.Run executes objects this way, one goroutine per
//     process.
//
//   - The window form (ReadW, WriteW, ...) takes an Accessor and
//     performs the effect immediately: the caller — a continuation
//     state machine's Begin/Step body (see sim.Stepped) — already runs
//     inside a granted step window, so nothing blocks and no goroutine
//     exists.
//
// The simulation runtime serializes all grants, so base-object state
// needs no locking.
package base

import "repro/internal/history"

// Value is the datum stored in base objects.
type Value = history.Value

// Stepper grants atomic steps. Exec blocks until the scheduler schedules
// the calling process, then runs op as a single atomic step. desc is a
// human-readable step description used for tracing.
//
// Exec panics with a runtime-internal sentinel if the process has been
// crashed or the run has ended; algorithm code must not recover it.
type Stepper interface {
	Exec(desc string, op func())
}

// Accessor is the per-step access context of a granted window: it
// declares the step's footprint and folds observed values into the
// executing process's local-state fingerprint. sim.Proc implements it;
// the window methods (ReadW, WriteW, ...) take it directly because
// their callers already execute inside a granted step.
type Accessor interface {
	// Access declares that the step read (write=false) or mutated
	// (write=true) the named base object.
	Access(obj string, write bool)
	// Observe folds a value the step read from shared state into the
	// process's local-state fingerprint.
	Observe(v Value)
}

// accessDeclarer is the optional footprint hook of the simulation
// runtime (sim.Proc implements it): a stepper that records, per granted
// step, which base object was accessed and whether it was written.
// Exploration uses the recorded access log for partial-order reduction.
type accessDeclarer interface {
	Access(obj string, write bool)
}

// declare reports the footprint of the step currently executing through
// s, when the stepper tracks footprints. Every base-object operation
// calls it from within its atomic step.
func declare(s Stepper, obj string, write bool) {
	if d, ok := s.(accessDeclarer); ok {
		d.Access(obj, write)
	}
}

// valueObserver is the optional local-state hook of the simulation
// runtime (sim.Proc implements it): a stepper that folds every value a
// step reads from shared state into the executing process's state
// fingerprint. Exploration's state cache needs it — a process's future
// behavior mid-operation depends on what it has read so far.
type valueObserver interface {
	Observe(v Value)
}

// observe reports a value the current step read, when the stepper
// fingerprints. Every base-object operation that returns shared state
// to the caller calls it from within its atomic step.
func observe(s Stepper, v Value) {
	if o, ok := s.(valueObserver); ok {
		o.Observe(v)
	}
}

// StateSink receives the canonical state encoding of a base object.
// sim.Fingerprinter implements it; implementations composing base
// objects forward the sink to each base object's Fingerprint method in
// a fixed order to build their sim.Fingerprintable hook.
type StateSink interface {
	// Str folds a string component (names, tags).
	Str(s string)
	// Val folds a stored value by dynamic type and content.
	Val(v Value)
	// Int folds an integer component.
	Int(v int)
	// Bool folds a boolean component.
	Bool(b bool)
}

// Register is an atomic read/write register.
type Register struct {
	name string
	val  Value
}

// NewRegister creates a register with the given initial value.
func NewRegister(name string, initial Value) *Register {
	return &Register{name: name, val: initial}
}

// Name returns the register's name.
func (r *Register) Name() string { return r.name }

// ReadW atomically reads the register within the caller's granted step.
func (r *Register) ReadW(a Accessor) Value {
	a.Access(r.name, false)
	v := r.val
	a.Observe(v)
	return v
}

// Read atomically reads the register.
func (r *Register) Read(s Stepper) Value {
	var v Value
	s.Exec("read "+r.name, func() {
		declare(s, r.name, false)
		v = r.val
		observe(s, v)
	})
	return v
}

// Fingerprint writes the register's canonical state (name and value).
func (r *Register) Fingerprint(f StateSink) {
	f.Str(r.name)
	f.Val(r.val)
}

// Snapshot captures the register's state. Stored values follow the
// immutable-record idiom (they are replaced, never mutated in place),
// so the shallow value is the state.
func (r *Register) Snapshot() any { return r.val }

// Restore reinstates a state captured by Snapshot.
func (r *Register) Restore(s any) { r.val = s }

// WriteW atomically writes v within the caller's granted step.
func (r *Register) WriteW(a Accessor, v Value) {
	a.Access(r.name, true)
	r.val = v
}

// Write atomically writes v to the register.
func (r *Register) Write(s Stepper, v Value) {
	s.Exec("write "+r.name, func() {
		declare(s, r.name, true)
		r.val = v
	})
}

// DurableRegister is the crash-aware register pair of the recovery
// runtime: an atomic register whose content lives in a volatile cache
// until an explicit flush persists it. Read and Write act on the cache;
// Flush copies the cache into the durable cell, each in one atomic
// step. CrashWipe — called from the owning object's
// sim.Recoverable.CrashVolatile hook — discards the cache, exposing the
// last flushed value, which is exactly what a recovery routine then
// observes. A write that is never flushed vanishes at the next crash.
type DurableRegister struct {
	name    string
	durable Value
	vol     Value
}

// NewDurableRegister creates a durable register whose durable cell and
// cache both hold initial.
func NewDurableRegister(name string, initial Value) *DurableRegister {
	return &DurableRegister{name: name, durable: initial, vol: initial}
}

// Name returns the register's name.
func (r *DurableRegister) Name() string { return r.name }

// ReadW atomically reads the cached value within the caller's granted
// step.
func (r *DurableRegister) ReadW(a Accessor) Value {
	a.Access(r.name, false)
	v := r.vol
	a.Observe(v)
	return v
}

// Read atomically reads the cached value.
func (r *DurableRegister) Read(s Stepper) Value {
	var v Value
	s.Exec("read "+r.name, func() {
		declare(s, r.name, false)
		v = r.vol
		observe(s, v)
	})
	return v
}

// WriteW atomically writes v to the cache within the caller's granted
// step. The write is volatile until a flush.
func (r *DurableRegister) WriteW(a Accessor, v Value) {
	a.Access(r.name, true)
	r.vol = v
}

// Write atomically writes v to the cache. The write is volatile until a
// flush.
func (r *DurableRegister) Write(s Stepper, v Value) {
	s.Exec("write "+r.name, func() {
		declare(s, r.name, true)
		r.vol = v
	})
}

// FlushW atomically persists the cached value within the caller's
// granted step.
func (r *DurableRegister) FlushW(a Accessor) {
	a.Access(r.name, true)
	r.durable = r.vol
}

// Flush atomically persists the cached value.
func (r *DurableRegister) Flush(s Stepper) {
	s.Exec("flush "+r.name, func() {
		declare(s, r.name, true)
		r.durable = r.vol
	})
}

// CrashWipe discards the volatile cache, exposing the last flushed
// value. It is not a step: the simulation runtime invokes the owning
// object's CrashVolatile hook between windows, at every crash decision.
func (r *DurableRegister) CrashWipe() { r.vol = r.durable }

// PeekDurable returns the durable cell without recording an access. Like
// CAS.Peek it exists for scheduler callbacks and tests, which run
// strictly between process windows; algorithm code must use Read after a
// crash (the wiped cache equals the durable cell).
func (r *DurableRegister) PeekDurable() Value { return r.durable }

// Peek returns the volatile cache without recording an access; see
// PeekDurable.
func (r *DurableRegister) Peek() Value { return r.vol }

// Fingerprint writes the register's canonical state: name, durable cell
// and cache.
func (r *DurableRegister) Fingerprint(f StateSink) {
	f.Str(r.name)
	f.Val(r.durable)
	f.Val(r.vol)
}

// durableRegState is a captured (durable, volatile) pair.
type durableRegState struct{ durable, vol Value }

// Snapshot captures both cells (stored values follow the
// immutable-record idiom: replaced, never mutated in place).
func (r *DurableRegister) Snapshot() any {
	return durableRegState{durable: r.durable, vol: r.vol}
}

// Restore reinstates a state captured by Snapshot.
func (r *DurableRegister) Restore(s any) {
	st := s.(durableRegState)
	r.durable, r.vol = st.durable, st.vol
}

// CAS is an atomic compare-and-swap object. Comparison uses ==, so
// composite states should be stored as pointers to immutable records (the
// usual technique for CAS-based algorithms).
type CAS struct {
	name string
	val  Value
}

// NewCAS creates a compare-and-swap object with the given initial value.
func NewCAS(name string, initial Value) *CAS {
	return &CAS{name: name, val: initial}
}

// Name returns the object's name.
func (c *CAS) Name() string { return c.name }

// ReadW atomically reads the current value within the caller's granted
// step.
func (c *CAS) ReadW(a Accessor) Value {
	a.Access(c.name, false)
	v := c.val
	a.Observe(v)
	return v
}

// Read atomically reads the current value.
func (c *CAS) Read(s Stepper) Value {
	var v Value
	s.Exec("read "+c.name, func() {
		declare(s, c.name, false)
		v = c.val
		observe(s, v)
	})
	return v
}

// Fingerprint writes the object's canonical state (name and value). The
// encoding is by content, so implementations whose correctness rides on
// the identity of stored allocations (fresh-record CAS idioms) must not
// expose it through a sim.Fingerprintable hook — see that interface.
func (c *CAS) Fingerprint(f StateSink) {
	f.Str(c.name)
	f.Val(c.val)
}

// Snapshot captures the object's state: the exact stored value,
// pointer identity included, which is what the CAS idiom (fresh
// immutable records compared by pointer) requires of a restore.
func (c *CAS) Snapshot() any { return c.val }

// Restore reinstates a state captured by Snapshot.
func (c *CAS) Restore(s any) { c.val = s }

// CompareAndSwapW atomically replaces the current value with new if it
// equals old, within the caller's granted step.
func (c *CAS) CompareAndSwapW(a Accessor, old, new Value) bool {
	// A failed compare-and-swap mutates nothing: declaring it a read
	// is sound (while a sleep entry holding this footprint is alive,
	// any write to the object is dependent and evicts it, so the
	// compare outcome cannot change) and lets exploration commute
	// failed CAS steps of different processes.
	a.Access(c.name, c.val == old)
	ok := false
	if c.val == old {
		c.val = new
		ok = true
	}
	a.Observe(ok)
	return ok
}

// CompareAndSwap atomically replaces the current value with new if it
// equals old, reporting whether the swap happened.
func (c *CAS) CompareAndSwap(s Stepper, old, new Value) bool {
	var ok bool
	s.Exec("cas "+c.name, func() {
		// See CompareAndSwapW for the failed-CAS read footprint.
		declare(s, c.name, c.val == old)
		if c.val == old {
			c.val = new
			ok = true
		}
		observe(s, ok)
	})
	return ok
}

// Peek reads the current value without consuming a step. It is intended
// for inspection from scheduler callbacks and tests, which the simulator
// runs strictly between process windows; algorithm code must use Read.
func (c *CAS) Peek() Value { return c.val }

// SwapW atomically replaces the current value unconditionally within
// the caller's granted step and returns the previous value.
func (c *CAS) SwapW(a Accessor, new Value) Value {
	a.Access(c.name, true)
	prev := c.val
	c.val = new
	a.Observe(prev)
	return prev
}

// Swap atomically replaces the current value unconditionally and returns
// the previous value.
func (c *CAS) Swap(s Stepper, new Value) Value {
	var prev Value
	s.Exec("swap "+c.name, func() {
		declare(s, c.name, true)
		prev = c.val
		c.val = new
		observe(s, prev)
	})
	return prev
}

// TAS is an atomic test-and-set bit.
type TAS struct {
	name string
	set  bool
}

// NewTAS creates a test-and-set object, initially unset.
func NewTAS(name string) *TAS {
	return &TAS{name: name}
}

// Name returns the object's name.
func (t *TAS) Name() string { return t.name }

// TestAndSetW atomically sets the bit within the caller's granted step
// and reports whether this call was the one that set it (true = won).
func (t *TAS) TestAndSetW(a Accessor) bool {
	// A losing test-and-set leaves the bit set: a read footprint, by
	// the same argument as CompareAndSwapW.
	a.Access(t.name, !t.set)
	won := !t.set
	t.set = true
	a.Observe(won)
	return won
}

// TestAndSet atomically sets the bit and reports whether this call was the
// one that set it (true = won).
func (t *TAS) TestAndSet(s Stepper) bool {
	var won bool
	s.Exec("tas "+t.name, func() {
		// See TestAndSetW for the losing-TAS read footprint.
		declare(s, t.name, !t.set)
		won = !t.set
		t.set = true
		observe(s, won)
	})
	return won
}

// ReadW atomically reads the bit within the caller's granted step.
func (t *TAS) ReadW(a Accessor) bool {
	a.Access(t.name, false)
	v := t.set
	a.Observe(v)
	return v
}

// Read atomically reads the bit.
func (t *TAS) Read(s Stepper) bool {
	var v bool
	s.Exec("read "+t.name, func() {
		declare(s, t.name, false)
		v = t.set
		observe(s, v)
	})
	return v
}

// Fingerprint writes the bit's canonical state (name and value).
func (t *TAS) Fingerprint(f StateSink) {
	f.Str(t.name)
	f.Bool(t.set)
}

// Snapshot captures the bit.
func (t *TAS) Snapshot() any { return t.set }

// Restore reinstates a state captured by Snapshot.
func (t *TAS) Restore(s any) { t.set = s.(bool) }

// ResetW atomically clears the bit within the caller's granted step.
func (t *TAS) ResetW(a Accessor) {
	a.Access(t.name, true)
	t.set = false
}

// Reset atomically clears the bit (the release half of a test-and-set
// spinlock).
func (t *TAS) Reset(s Stepper) {
	s.Exec("reset "+t.name, func() {
		declare(s, t.name, true)
		t.set = false
	})
}

// FetchAdd is an atomic fetch-and-add counter.
type FetchAdd struct {
	name string
	val  int
}

// NewFetchAdd creates a counter with the given initial value.
func NewFetchAdd(name string, initial int) *FetchAdd {
	return &FetchAdd{name: name, val: initial}
}

// Name returns the object's name.
func (f *FetchAdd) Name() string { return f.name }

// AddW atomically adds delta within the caller's granted step and
// returns the previous value.
func (f *FetchAdd) AddW(a Accessor, delta int) int {
	a.Access(f.name, true)
	prev := f.val
	f.val += delta
	a.Observe(prev)
	return prev
}

// Add atomically adds delta and returns the previous value.
func (f *FetchAdd) Add(s Stepper, delta int) int {
	var prev int
	s.Exec("faa "+f.name, func() {
		declare(s, f.name, true)
		prev = f.val
		f.val += delta
		observe(s, prev)
	})
	return prev
}

// ReadW atomically reads the counter within the caller's granted step.
func (f *FetchAdd) ReadW(a Accessor) int {
	a.Access(f.name, false)
	v := f.val
	a.Observe(v)
	return v
}

// Read atomically reads the counter.
func (f *FetchAdd) Read(s Stepper) int {
	var v int
	s.Exec("read "+f.name, func() {
		declare(s, f.name, false)
		v = f.val
		observe(s, v)
	})
	return v
}

// Fingerprint writes the counter's canonical state (name and value).
func (f *FetchAdd) Fingerprint(sink StateSink) {
	sink.Str(f.name)
	sink.Int(f.val)
}

// Snapshot captures the counter.
func (f *FetchAdd) Snapshot() any { return f.val }

// Restore reinstates a state captured by Snapshot.
func (f *FetchAdd) Restore(s any) { f.val = s.(int) }

// Snapshot is an atomic snapshot object of n single-writer registers with
// an atomic scan, as used by the paper's Algorithm 1 (R[1..n] with
// R.scan()). Update writes one component; Scan returns a consistent copy of
// all components in a single atomic step.
type Snapshot struct {
	name  string
	slots []Value
}

// NewSnapshot creates a snapshot object with n components, all initialized
// to initial.
func NewSnapshot(name string, n int, initial Value) *Snapshot {
	slots := make([]Value, n)
	for i := range slots {
		slots[i] = initial
	}
	return &Snapshot{name: name, slots: slots}
}

// Name returns the object's name.
func (sn *Snapshot) Name() string { return sn.name }

// Len returns the number of components.
func (sn *Snapshot) Len() int { return len(sn.slots) }

// UpdateW atomically writes v to component i (0-based) within the
// caller's granted step.
func (sn *Snapshot) UpdateW(a Accessor, i int, v Value) {
	a.Access(sn.name, true)
	sn.slots[i] = v
}

// Update atomically writes v to component i (0-based).
func (sn *Snapshot) Update(s Stepper, i int, v Value) {
	s.Exec("update "+sn.name, func() {
		declare(s, sn.name, true)
		sn.slots[i] = v
	})
}

// ScanW atomically appends a copy of all components to dst within the
// caller's granted step and returns the extended slice (pass dst[:0] to
// reuse a buffer, nil to allocate).
func (sn *Snapshot) ScanW(a Accessor, dst []Value) []Value {
	a.Access(sn.name, false)
	dst = append(dst, sn.slots...)
	for _, v := range sn.slots {
		a.Observe(v)
	}
	return dst
}

// Scan atomically returns a copy of all components.
func (sn *Snapshot) Scan(s Stepper) []Value {
	var out []Value
	s.Exec("scan "+sn.name, func() {
		out = make([]Value, len(sn.slots))
		declare(s, sn.name, false)
		copy(out, sn.slots)
		for _, v := range out {
			observe(s, v)
		}
	})
	return out
}

// Fingerprint writes the snapshot object's canonical state (name and
// every component in index order).
func (sn *Snapshot) Fingerprint(f StateSink) {
	f.Str(sn.name)
	f.Int(len(sn.slots))
	for _, v := range sn.slots {
		f.Val(v)
	}
}

// Snapshot captures all components (copied: Update mutates the slot
// array in place).
func (sn *Snapshot) Snapshot() any {
	out := make([]Value, len(sn.slots))
	copy(out, sn.slots)
	return out
}

// Restore reinstates a state captured by Snapshot.
func (sn *Snapshot) Restore(s any) {
	copy(sn.slots, s.([]Value))
}
