package base

import "testing"

// sinkRecorder implements StateSink by recording a canonical trace, so
// tests can assert what each base object declares without depending on
// the hash function.
type sinkRecorder struct {
	trace []Value
}

func (s *sinkRecorder) Str(v string) { s.trace = append(s.trace, "s:"+v) }
func (s *sinkRecorder) Val(v Value)  { s.trace = append(s.trace, v) }
func (s *sinkRecorder) Int(v int)    { s.trace = append(s.trace, v) }
func (s *sinkRecorder) Bool(v bool)  { s.trace = append(s.trace, v) }

func traceOf(fp interface{ Fingerprint(StateSink) }) []Value {
	s := &sinkRecorder{}
	fp.Fingerprint(s)
	return s.trace
}

func equalTraces(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFingerprintTracksState: every base object's fingerprint changes
// exactly with its state — equal state, equal trace; mutated state,
// different trace.
func TestFingerprintTracksState(t *testing.T) {
	st := &countStepper{}

	r := NewRegister("r", 0)
	before := traceOf(r)
	if !equalTraces(before, traceOf(NewRegister("r", 0))) {
		t.Error("equal registers fingerprint differently")
	}
	r.Write(st, 7)
	if equalTraces(before, traceOf(r)) {
		t.Error("register write did not change the fingerprint")
	}

	c := NewCAS("c", nil)
	before = traceOf(c)
	c.CompareAndSwap(st, nil, "x")
	if equalTraces(before, traceOf(c)) {
		t.Error("successful CAS did not change the fingerprint")
	}
	mid := traceOf(c)
	c.CompareAndSwap(st, nil, "y") // fails: value is "x"
	if !equalTraces(mid, traceOf(c)) {
		t.Error("failed CAS changed the fingerprint")
	}

	ts := NewTAS("t")
	before = traceOf(ts)
	ts.TestAndSet(st)
	if equalTraces(before, traceOf(ts)) {
		t.Error("test-and-set did not change the fingerprint")
	}
	ts.Reset(st)
	if !equalTraces(before, traceOf(ts)) {
		t.Error("reset did not restore the fingerprint")
	}

	fa := NewFetchAdd("f", 10)
	before = traceOf(fa)
	fa.Add(st, 5)
	if equalTraces(before, traceOf(fa)) {
		t.Error("fetch-add did not change the fingerprint")
	}

	sn := NewSnapshot("sn", 3, 0)
	before = traceOf(sn)
	sn.Update(st, 1, 9)
	after := traceOf(sn)
	if equalTraces(before, after) {
		t.Error("snapshot update did not change the fingerprint")
	}
	sn2 := NewSnapshot("sn", 3, 0)
	sn2.Update(st, 2, 9) // same value, different slot
	if equalTraces(after, traceOf(sn2)) {
		t.Error("snapshot fingerprints ignore the slot index")
	}
}

// TestFingerprintNamesDisambiguate: two objects of the same kind and
// value but different names must not fingerprint equal — composite
// implementations rely on names to keep their layout canonical.
func TestFingerprintNamesDisambiguate(t *testing.T) {
	if equalTraces(traceOf(NewRegister("a", 1)), traceOf(NewRegister("b", 1))) {
		t.Error("register name not part of the fingerprint")
	}
}

// observeRecorder implements both Stepper and the runtime's observe
// hook, recording what base objects report as read.
type observeRecorder struct {
	countStepper
	observed []Value
}

func (o *observeRecorder) Observe(v Value) { o.observed = append(o.observed, v) }

// TestReadsObserve: every value-returning base-object operation reports
// its result to the observe hook, so mid-operation local state reaches
// the state fingerprint.
func TestReadsObserve(t *testing.T) {
	o := &observeRecorder{}
	r := NewRegister("r", 4)
	if r.Read(o); len(o.observed) != 1 || o.observed[0] != 4 {
		t.Errorf("register read observed %v, want [4]", o.observed)
	}

	o = &observeRecorder{}
	c := NewCAS("c", 1)
	c.Read(o)
	c.CompareAndSwap(o, 1, 2) // success → observes true
	c.CompareAndSwap(o, 1, 3) // failure → observes false
	c.Swap(o, 9)
	want := []Value{1, true, false, 2}
	if !equalTraces(o.observed, want) {
		t.Errorf("CAS operations observed %v, want %v", o.observed, want)
	}

	o = &observeRecorder{}
	ts := NewTAS("t")
	ts.TestAndSet(o)
	ts.TestAndSet(o)
	ts.Read(o)
	if !equalTraces(o.observed, []Value{true, false, true}) {
		t.Errorf("TAS operations observed %v, want [true false true]", o.observed)
	}

	o = &observeRecorder{}
	fa := NewFetchAdd("f", 3)
	fa.Add(o, 2)
	fa.Read(o)
	if !equalTraces(o.observed, []Value{3, 5}) {
		t.Errorf("fetch-add operations observed %v, want [3 5]", o.observed)
	}

	o = &observeRecorder{}
	sn := NewSnapshot("sn", 2, 0)
	sn.Update(o, 1, 8)
	sn.Scan(o)
	if !equalTraces(o.observed, []Value{0, 8}) {
		t.Errorf("snapshot scan observed %v, want [0 8]", o.observed)
	}
}
