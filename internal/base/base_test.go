package base

import (
	"testing"
	"testing/quick"
)

// countStepper runs every op immediately and counts atomic steps; it stands
// in for the simulation runtime in unit tests.
type countStepper struct {
	steps int
	descs []string
}

func (c *countStepper) Exec(desc string, op func()) {
	c.steps++
	c.descs = append(c.descs, desc)
	op()
}

func TestRegister(t *testing.T) {
	s := &countStepper{}
	r := NewRegister("r", 0)
	if got := r.Read(s); got != 0 {
		t.Errorf("initial Read = %v, want 0", got)
	}
	r.Write(s, 42)
	if got := r.Read(s); got != 42 {
		t.Errorf("Read after Write = %v, want 42", got)
	}
	if s.steps != 3 {
		t.Errorf("steps = %d, want 3 (each op is one atomic step)", s.steps)
	}
	if r.Name() != "r" {
		t.Errorf("Name() = %q", r.Name())
	}
}

func TestDurableRegister(t *testing.T) {
	s := &countStepper{}
	r := NewDurableRegister("d", 0)
	if got := r.Read(s); got != 0 {
		t.Errorf("initial Read = %v, want 0", got)
	}
	r.Write(s, 7)
	if got, dur := r.Read(s), r.PeekDurable(); got != 7 || dur != 0 {
		t.Errorf("after Write: cache %v durable %v, want 7 and 0 (writes are volatile until flushed)", got, dur)
	}
	r.CrashWipe()
	if got := r.Read(s); got != 0 {
		t.Errorf("Read after unflushed crash = %v, want 0 (the write vanished)", got)
	}
	r.Write(s, 7)
	r.Flush(s)
	if got, dur := r.Peek(), r.PeekDurable(); got != 7 || dur != 7 {
		t.Errorf("after Flush: cache %v durable %v, want 7 and 7", got, dur)
	}
	r.Write(s, 8)
	r.CrashWipe()
	if got := r.Read(s); got != 7 {
		t.Errorf("Read after crash = %v, want the flushed 7", got)
	}
	if s.steps != 8 {
		t.Errorf("steps = %d, want 8 (CrashWipe and the peeks are not steps)", s.steps)
	}
	if r.Name() != "d" {
		t.Errorf("Name() = %q", r.Name())
	}
}

func TestDurableRegisterSnapshot(t *testing.T) {
	s := &countStepper{}
	r := NewDurableRegister("d", 0)
	r.Write(s, 1)
	r.Flush(s)
	r.Write(s, 2)
	snap := r.Snapshot()
	r.Write(s, 3)
	r.Flush(s)
	r.Restore(snap)
	if got, dur := r.Peek(), r.PeekDurable(); got != 2 || dur != 1 {
		t.Errorf("after Restore: cache %v durable %v, want 2 and 1", got, dur)
	}
}

func TestCAS(t *testing.T) {
	s := &countStepper{}
	c := NewCAS("c", nil)
	if !c.CompareAndSwap(s, nil, 1) {
		t.Error("CAS from initial nil should succeed")
	}
	if c.CompareAndSwap(s, nil, 2) {
		t.Error("CAS with stale expected value should fail")
	}
	if got := c.Read(s); got != 1 {
		t.Errorf("Read = %v, want 1", got)
	}
	if prev := c.Swap(s, 9); prev != 1 {
		t.Errorf("Swap returned %v, want previous value 1", prev)
	}
	if got := c.Read(s); got != 9 {
		t.Errorf("Read after Swap = %v, want 9", got)
	}
}

func TestCASPointerIdentity(t *testing.T) {
	// Composite states are stored as pointers to immutable records; CAS
	// compares identities, so two structurally equal records are distinct.
	type state struct{ v int }
	s := &countStepper{}
	a, b := &state{1}, &state{1}
	c := NewCAS("c", a)
	if c.CompareAndSwap(s, b, &state{2}) {
		t.Error("CAS must compare pointer identity, not structure")
	}
	if !c.CompareAndSwap(s, a, b) {
		t.Error("CAS with the installed pointer should succeed")
	}
}

func TestTAS(t *testing.T) {
	s := &countStepper{}
	ts := NewTAS("t")
	if ts.Read(s) {
		t.Error("TAS initially unset")
	}
	if !ts.TestAndSet(s) {
		t.Error("first TestAndSet should win")
	}
	if ts.TestAndSet(s) {
		t.Error("second TestAndSet should lose")
	}
	if !ts.Read(s) {
		t.Error("bit should be set")
	}
}

func TestFetchAdd(t *testing.T) {
	s := &countStepper{}
	f := NewFetchAdd("f", 10)
	if prev := f.Add(s, 5); prev != 10 {
		t.Errorf("Add returned %d, want previous 10", prev)
	}
	if got := f.Read(s); got != 15 {
		t.Errorf("Read = %d, want 15", got)
	}
	if prev := f.Add(s, -3); prev != 15 {
		t.Errorf("Add returned %d, want 15", prev)
	}
	if got := f.Read(s); got != 12 {
		t.Errorf("Read = %d, want 12", got)
	}
}

func TestSnapshot(t *testing.T) {
	s := &countStepper{}
	sn := NewSnapshot("R", 3, 0)
	if sn.Len() != 3 {
		t.Fatalf("Len = %d", sn.Len())
	}
	sn.Update(s, 1, 7)
	got := sn.Scan(s)
	want := []Value{0, 7, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
	// Scan returns a copy: mutating it must not affect the object.
	got[0] = 99
	if again := sn.Scan(s); again[0] != 0 {
		t.Error("Scan must return a defensive copy")
	}
	if s.steps != 3 {
		t.Errorf("steps = %d, want 3 (one update + two scans)", s.steps)
	}
}

func TestQuickRegisterLastWriteWins(t *testing.T) {
	f := func(writes []int) bool {
		s := &countStepper{}
		r := NewRegister("r", -1)
		for _, w := range writes {
			r.Write(s, w)
		}
		want := Value(-1)
		if len(writes) > 0 {
			want = writes[len(writes)-1]
		}
		return r.Read(s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFetchAddSum(t *testing.T) {
	f := func(deltas []int8) bool {
		s := &countStepper{}
		fa := NewFetchAdd("f", 0)
		sum := 0
		for _, d := range deltas {
			fa.Add(s, int(d))
			sum += int(d)
		}
		return fa.Read(s) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCASLinearizesToSequence(t *testing.T) {
	// Applying a random sequence of CAS ops sequentially must behave like
	// the functional model.
	f := func(ops []struct{ Old, New uint8 }) bool {
		s := &countStepper{}
		c := NewCAS("c", 0)
		model := Value(0)
		for _, op := range ops {
			ok := c.CompareAndSwap(s, int(op.Old), int(op.New))
			wantOK := model == int(op.Old)
			if wantOK {
				model = int(op.New)
			}
			if ok != wantOK {
				return false
			}
		}
		return c.Read(s) == model
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
