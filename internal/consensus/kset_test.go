package consensus

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func TestKSetAgreementChecker(t *testing.T) {
	inv := func(p int, v history.Value) history.Event {
		return history.Invoke(p, safety.ConsensusPropose, v)
	}
	res := func(p int, v history.Value) history.Event {
		return history.Response(p, safety.ConsensusPropose, v)
	}
	tests := []struct {
		name string
		k    int
		h    history.History
		want bool
	}{
		{"two values ok for k=2", 2, history.History{
			inv(1, 1), inv(2, 2), inv(3, 3),
			res(1, 1), res(2, 2), res(3, 1),
		}, true},
		{"three values violate k=2", 2, history.History{
			inv(1, 1), inv(2, 2), inv(3, 3),
			res(1, 1), res(2, 2), res(3, 3),
		}, false},
		{"validity still applies", 2, history.History{
			inv(1, 1), res(1, 9),
		}, false},
		{"k=1 is consensus", 1, history.History{
			inv(1, 1), inv(2, 2), res(1, 1), res(2, 2),
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prop := safety.KSetAgreement{K: tt.k}
			if got := prop.Holds(tt.h); got != tt.want {
				t.Errorf("Holds = %v, want %v", got, tt.want)
			}
			if !safety.PrefixClosed(prop, tt.h) {
				t.Error("k-set agreement must be prefix-closed")
			}
		})
	}
}

func TestDecideOwnSafeIffNAtMostK(t *testing.T) {
	// n = 2 <= k = 2: safe and wait-free under every schedule.
	prop2 := safety.KSetAgreement{K: 2}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewDecideOwn(2) },
		NewEnv: func() sim.Environment {
			return ProposeOnce(map[int]history.Value{1: 1, 2: 2})
		},
		Depth: 8,
		Check: explore.CheckSafety("2-set", prop2.Holds),
	})
	if err != nil {
		t.Fatalf("DecideOwn must be 2-set safe for n=2: %v (witness %v)", err, st.Witness)
	}
	// n = 3 > k = 2: the checker catches the violation on any schedule
	// where all three decide.
	res := sim.Run(sim.Config{
		Procs:     3,
		Object:    NewDecideOwn(3),
		Env:       ProposeOnce(map[int]history.Value{1: 1, 2: 2, 3: 3}),
		Scheduler: &sim.RoundRobin{},
		MaxSteps:  100,
	})
	if prop2.Holds(res.H) {
		t.Fatal("three own-value decisions must violate 2-set agreement")
	}
	// It does satisfy 3-set agreement.
	if !(safety.KSetAgreement{K: 3}).Holds(res.H) {
		t.Error("n=3 own-value decisions satisfy 3-set agreement")
	}
}

func TestDecideOwnWaitFree(t *testing.T) {
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    NewDecideOwn(2),
		Env:       ProposeForever(map[int]history.Value{1: 1, 2: 2}),
		Scheduler: sim.Limit(sim.Alternate(1, 2), 200),
		MaxSteps:  200,
	})
	e := liveness.FromResult(res, 0)
	if !(liveness.WaitFreedom{}).Holds(e) {
		t.Error("DecideOwn is wait-free")
	}
}

func TestFirstAnnouncedExplorerFindsKSetViolation(t *testing.T) {
	// The plausible candidate for n=3, k=2: the explorer finds the
	// reverse-order interleaving on which three distinct values are
	// decided.
	prop := safety.KSetAgreement{K: 2}
	st, err := explore.Run(explore.Config{
		Procs:     3,
		NewObject: func() sim.Object { return NewFirstAnnounced(3) },
		NewEnv: func() sim.Environment {
			return ProposeOnce(map[int]history.Value{1: 1, 2: 2, 3: 3})
		},
		Depth: 9,
		Check: explore.CheckSafety("2-set", prop.Holds),
	})
	if err == nil {
		t.Fatal("the explorer must find a 2-set violation for FirstAnnounced with n=3")
	}
	if st.Witness == nil {
		t.Fatal("violation must come with a witness schedule")
	}
}

func TestCommitAdoptIsKSetSafe(t *testing.T) {
	// Consensus ensures k-set agreement for every k >= 1.
	for seed := int64(0); seed < 50; seed++ {
		res := sim.Run(sim.Config{
			Procs:     3,
			Object:    NewCommitAdoptOF(3),
			Env:       ProposeOnce(map[int]history.Value{1: 1, 2: 2, 3: 3}),
			Scheduler: sim.Random(seed),
			MaxSteps:  1500,
		})
		if !(safety.KSetAgreement{K: 2}).Holds(res.H) {
			t.Fatalf("seed %d: consensus decisions violate 2-set: %s", seed, res.H)
		}
	}
}
