// Package consensus implements the consensus shared object type of the
// paper's corollaries, with three implementations:
//
//   - CommitAdoptOF: an obstruction-free consensus from read/write
//     registers only, built from rounds of commit-adopt (in the style of
//     Herlihy-Luchangco-Moir [20] and Guerraoui-Ruppert [17]). It is the
//     (1,1)-freedom white point of Figure 1(a): a process running without
//     step contention decides, and once any process decides, every propose
//     returns the decision in two steps.
//   - CASBased: a wait-free consensus from a single compare-and-swap
//     object, the ablation showing that L_max is achievable once base
//     objects stronger than registers are allowed (the register-only
//     restriction is what makes the exclusion bite).
//   - Trivial and RespondOnce: the degenerate implementations I_t and I_b
//     from the proof of Theorem 4.9, which ensure any safety property by
//     (almost) never responding.
//
// Processes propose by invoking "propose" with a value; re-invocations
// after a decision return the decided value (the object is a one-shot
// decision with a repeatable accessor, which is what the liveness
// experiments need: progress = infinitely many responses).
package consensus

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// Propose is the consensus invocation name.
const Propose = "propose"

// bEntry is a commit-adopt phase-2 register value.
type bEntry struct {
	v      history.Value
	commit bool
}

// caRound is one commit-adopt object built from 2n registers.
type caRound struct {
	a []*base.Register
	b []*base.Register
}

// newCARound builds round number rnd. Register names carry the round and
// component indices so distinct registers never share a name: footprint
// tracking (sim.Footprinted) identifies base objects by name, and a
// shared name would make independent accesses look conflicting.
func newCARound(rnd, n int) *caRound {
	r := &caRound{
		a: make([]*base.Register, n),
		b: make([]*base.Register, n),
	}
	for i := 0; i < n; i++ {
		r.a[i] = base.NewRegister(fmt.Sprintf("A%d[%d]", rnd, i), nil)
		r.b[i] = base.NewRegister(fmt.Sprintf("B%d[%d]", rnd, i), nil)
	}
	return r
}

// run executes commit-adopt for process p with input v, returning the
// adopted value and whether it was committed.
func (r *caRound) run(p *sim.Proc, v history.Value) (history.Value, bool) {
	i := p.ID() - 1
	r.a[i].Write(p, v)
	allSame := true
	for j := range r.a {
		if av := r.a[j].Read(p); av != nil && av != v {
			allSame = false
		}
	}
	r.b[i].Write(p, bEntry{v: v, commit: allSame})
	var committed *bEntry
	mixed := false
	for j := range r.b {
		bv := r.b[j].Read(p)
		if bv == nil {
			continue
		}
		e := bv.(bEntry)
		if e.commit {
			if committed == nil {
				committed = &e
			}
		} else {
			mixed = true
		}
	}
	if committed != nil {
		return committed.v, !mixed
	}
	return v, false
}

// CommitAdoptOF is obstruction-free consensus from registers: rounds of
// commit-adopt plus a decision register.
//
//slx:norecover all state lives in shared registers modeled durable; a crashed proposer just stops
type CommitAdoptOF struct {
	n        int
	decision *base.Register
	rounds   []*caRound
}

// NewCommitAdoptOF creates the implementation for n processes.
func NewCommitAdoptOF(n int) *CommitAdoptOF {
	return &CommitAdoptOF{n: n, decision: base.NewRegister("D", nil)}
}

// round returns the r-th commit-adopt object (0-based), allocating lazily.
// Allocation is serialized by the simulator's step discipline, and is
// footprint-neutral: whichever process extends the slice appends the
// identical fresh rounds, so commuting independent steps cannot change
// what any process observes.
func (c *CommitAdoptOF) round(r int) *caRound {
	for len(c.rounds) <= r {
		c.rounds = append(c.rounds, newCARound(len(c.rounds), c.n))
	}
	return c.rounds[r]
}

// Footprints implements sim.Footprinted: all shared state is in named
// base registers, so the per-step access log is trustworthy and
// exploration may use it for partial-order reduction.
func (c *CommitAdoptOF) Footprints() bool { return true }

// Fingerprint implements sim.Fingerprintable: all shared state is in
// the decision register and the round registers (whose names carry the
// round index, so layouts cannot collide), and every value the rounds
// compare is compared by content, never by pointer identity. Lazily
// allocated rounds are included as written: an all-nil allocated round
// fingerprints differently from an unallocated one, which only splits
// states and never merges distinct ones.
func (c *CommitAdoptOF) Fingerprint(f *sim.Fingerprinter) {
	c.decision.Fingerprint(f)
	f.Int(len(c.rounds))
	for _, r := range c.rounds {
		for i := range r.a {
			r.a[i].Fingerprint(f)
			r.b[i].Fingerprint(f)
		}
	}
}

// caState is a captured CommitAdoptOF configuration: the decision
// register plus every allocated round's registers, in allocation order.
type caState struct {
	decision any
	rounds   int
	regs     []any // a[i], b[i] pairs, round-major
}

// Snapshot implements sim.Snapshottable.
func (c *CommitAdoptOF) Snapshot() any {
	st := &caState{decision: c.decision.Snapshot(), rounds: len(c.rounds)}
	st.regs = make([]any, 0, 2*c.n*len(c.rounds))
	for _, r := range c.rounds {
		for i := range r.a {
			st.regs = append(st.regs, r.a[i].Snapshot(), r.b[i].Snapshot())
		}
	}
	return st
}

// Restore implements sim.Snapshottable. Rounds allocated after the
// snapshot are dropped (re-extension re-allocates them identically);
// rounds the snapshot saw keep their identity, so register pointers
// held by in-flight operations stay valid.
func (c *CommitAdoptOF) Restore(v any) {
	st := v.(*caState)
	c.decision.Restore(st.decision)
	for len(c.rounds) < st.rounds {
		c.rounds = append(c.rounds, newCARound(len(c.rounds), c.n))
	}
	c.rounds = c.rounds[:st.rounds]
	k := 0
	for _, r := range c.rounds {
		for i := range r.a {
			r.a[i].Restore(st.regs[k])
			r.b[i].Restore(st.regs[k+1])
			k += 2
		}
	}
}

// Apply implements sim.Object.
func (c *CommitAdoptOF) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	if d := c.decision.Read(p); d != nil {
		return d
	}
	v := inv.Arg
	for r := 0; ; r++ {
		adopted, committed := c.round(r).run(p, v)
		v = adopted
		if committed {
			c.decision.Write(p, v)
			return v
		}
		if d := c.decision.Read(p); d != nil {
			return d
		}
	}
}

// Frame phases for commitAdoptFrame.pc. Each constant names the access
// the NEXT Step call performs.
const (
	caReadDecision  = iota // decision.Read (first access of the op)
	caWriteA               // a[i].Write of the current round
	caReadA                // a[j].Read, j advancing 0..n-1
	caWriteB               // b[i].Write
	caReadB                // b[j].Read, j advancing 0..n-1
	caWriteDecision        // decision.Write (commit)
	caCheckDecision        // decision.Read at the end of an uncommitted round
)

// commitAdoptFrame is one in-flight propose: the explicit continuation of
// Apply's round loop. Local state (the adopted value, the scan results)
// lives in the frame; the lazy c.round(r) allocation runs at the end of
// the Step that decides to enter round r, which is the same window it
// occupies in the blocking form.
type commitAdoptFrame struct {
	c   *CommitAdoptOF
	v   history.Value // current proposal (adopted value after each round)
	pc  int
	rnd *caRound // round being executed (allocated by the preceding step)
	rix int      // index of rnd
	j   int      // scan index for caReadA / caReadB

	allSame   bool // phase-1 scan verdict
	committed history.Value
	hasCommit bool
	mixed     bool
}

// Begin implements sim.Stepped. The first access is the decision read,
// so the invocation window runs no object code.
func (c *CommitAdoptOF) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	return &commitAdoptFrame{c: c, v: inv.Arg}, nil, sim.StepPaused
}

// Step implements sim.Frame.
func (f *commitAdoptFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	c := f.c
	i := p.ID() - 1
	switch f.pc {
	case caReadDecision:
		if d := c.decision.ReadW(p); d != nil {
			return d, sim.StepDone
		}
		f.rnd = c.round(f.rix)
		f.pc = caWriteA
	case caWriteA:
		f.rnd.a[i].WriteW(p, f.v)
		f.allSame = true
		f.j = 0
		f.pc = caReadA
	case caReadA:
		if av := f.rnd.a[f.j].ReadW(p); av != nil && av != f.v {
			f.allSame = false
		}
		if f.j++; f.j == len(f.rnd.a) {
			f.pc = caWriteB
		}
	case caWriteB:
		f.rnd.b[i].WriteW(p, bEntry{v: f.v, commit: f.allSame})
		f.hasCommit = false
		f.committed = nil
		f.mixed = false
		f.j = 0
		f.pc = caReadB
	case caReadB:
		if bv := f.rnd.b[f.j].ReadW(p); bv != nil {
			e := bv.(bEntry)
			if e.commit {
				if !f.hasCommit {
					f.hasCommit = true
					f.committed = e.v
				}
			} else {
				f.mixed = true
			}
		}
		if f.j++; f.j == len(f.rnd.b) {
			// Resolve the round: adopt, and commit iff some entry
			// committed and none adopted.
			if f.hasCommit {
				f.v = f.committed
				if !f.mixed {
					f.pc = caWriteDecision
					break
				}
			}
			f.pc = caCheckDecision
		}
	case caWriteDecision:
		c.decision.WriteW(p, f.v)
		return f.v, sim.StepDone
	case caCheckDecision:
		if d := c.decision.ReadW(p); d != nil {
			return d, sim.StepDone
		}
		f.rix++
		f.rnd = c.round(f.rix)
		f.pc = caWriteA
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *commitAdoptFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// CASBased is wait-free consensus from one compare-and-swap object.
//
//slx:norecover the one CAS cell is modeled durable; a crashed proposer just stops
type CASBased struct {
	c *base.CAS
}

// NewCASBased creates the implementation.
func NewCASBased() *CASBased {
	return &CASBased{c: base.NewCAS("C", nil)}
}

// Apply implements sim.Object.
func (c *CASBased) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	c.c.CompareAndSwap(p, nil, inv.Arg)
	return c.c.Read(p)
}

// casBasedFrame is one in-flight propose: CAS(nil, arg), then read the
// winner.
type casBasedFrame struct {
	c    *CASBased
	arg  history.Value
	cast bool
}

// Begin implements sim.Stepped.
func (c *CASBased) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	return &casBasedFrame{c: c, arg: inv.Arg}, nil, sim.StepPaused
}

// Step implements sim.Frame.
func (f *casBasedFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	if !f.cast {
		f.c.c.CompareAndSwapW(p, nil, f.arg)
		f.cast = true
		return nil, sim.StepPaused
	}
	return f.c.c.ReadW(p), sim.StepDone
}

// Fork implements sim.Frame.
func (f *casBasedFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// Footprints implements sim.Footprinted: the only shared state is the
// single CAS object.
func (c *CASBased) Footprints() bool { return true }

// Fingerprint implements sim.Fingerprintable: the single CAS object
// holds proposal values compared by ==, i.e. by content, so the
// content encoding is canonical.
func (c *CASBased) Fingerprint(f *sim.Fingerprinter) {
	c.c.Fingerprint(f)
}

// Snapshot implements sim.Snapshottable: the single CAS object is the
// whole state.
func (c *CASBased) Snapshot() any { return c.c.Snapshot() }

// Restore implements sim.Snapshottable.
func (c *CASBased) Restore(v any) { c.c.Restore(v) }

// Trivial is the implementation I_t from the proof of Theorem 4.9: it never
// responds to any invocation (every process blocks forever). It vacuously
// ensures every safety property that contains the invocation-only
// histories.
type Trivial struct{}

// Apply implements sim.Object.
func (Trivial) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	p.Block()
	return nil
}

// RespondOnce is the implementation I_b from the proof of Theorem 4.9: the
// first invocation matching (Proc, Op, Arg) receives Resp; every other
// invocation by any process blocks forever.
type RespondOnce struct {
	// Proc, Op, Arg select the single invocation that gets a response.
	Proc int
	Op   string
	Arg  history.Value
	// Resp is the response it gets.
	Resp history.Value

	responded bool
}

// Apply implements sim.Object.
func (r *RespondOnce) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	if !r.responded && p.ID() == r.Proc && inv.Op == r.Op && inv.Arg == r.Arg {
		r.responded = true
		return r.Resp
	}
	p.Block()
	return nil
}

// ProposeForever is the liveness environment: each process proposes its
// assigned value over and over.
func ProposeForever(values map[int]history.Value) sim.Environment {
	invs := make(map[int]sim.Invocation, len(values))
	for p, v := range values {
		invs[p] = sim.Invocation{Op: Propose, Arg: v}
	}
	return sim.RepeatPerProc(invs)
}

// ProposeOnce is the safety environment: each process proposes its value
// once.
func ProposeOnce(values map[int]history.Value) sim.Environment {
	invs := make(map[int]sim.Invocation, len(values))
	for p, v := range values {
		invs[p] = sim.Invocation{Op: Propose, Arg: v}
	}
	return sim.OneShot(invs)
}
