package consensus

import (
	"testing"

	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func runConsensus(t *testing.T, obj sim.Object, procs int, env sim.Environment, sched sim.Scheduler, maxSteps int) *sim.Result {
	t.Helper()
	res := sim.Run(sim.Config{
		Procs: procs, Object: obj, Env: env, Scheduler: sched, MaxSteps: maxSteps,
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !res.H.WellFormed() {
		t.Fatalf("history not well-formed: %s", res.H)
	}
	return res
}

func TestCommitAdoptSoloDecidesOwnValue(t *testing.T) {
	res := runConsensus(t, NewCommitAdoptOF(2), 2,
		ProposeOnce(map[int]history.Value{1: 7}),
		sim.Solo(1), 0)
	d := safety.Decisions(res.H)
	if d[1] != 7 {
		t.Errorf("solo proposer decided %v, want own value 7", d[1])
	}
	if !(safety.AgreementValidity{}).Holds(res.H) {
		t.Error("safety violated")
	}
}

func TestCommitAdoptSequentialAgreement(t *testing.T) {
	// p1 decides alone; p2 then proposes a different value and must adopt
	// p1's decision.
	res := runConsensus(t, NewCommitAdoptOF(2), 2,
		ProposeOnce(map[int]history.Value{1: 7, 2: 9}),
		sim.Seq(sim.Solo(1), sim.Solo(2)), 0)
	d := safety.Decisions(res.H)
	if d[1] != 7 || d[2] != 7 {
		t.Errorf("decisions = %v, want both 7", d)
	}
}

func TestCommitAdoptRandomSchedulesSafe(t *testing.T) {
	// Agreement and validity must hold under arbitrary schedules and
	// crash injection.
	prop := safety.AgreementValidity{}
	for seed := int64(0); seed < 200; seed++ {
		obj := NewCommitAdoptOF(3)
		res := sim.Run(sim.Config{
			Procs:  3,
			Object: obj,
			Env: ProposeOnce(map[int]history.Value{
				1: 10, 2: 20, 3: 30,
			}),
			Scheduler: sim.RandomCrashy(seed, 0.05, 2),
			MaxSteps:  2000,
		})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !prop.Holds(res.H) {
			t.Fatalf("seed %d: safety violated: %s", seed, res.H)
		}
	}
}

func TestCommitAdoptLockStepLivelock(t *testing.T) {
	// Perfect lock-step alternation keeps the two processes symmetric
	// forever: every commit-adopt round ends with both adopting their own
	// value. This is the deterministic heart of the bivalence adversary
	// and a direct witness that (1,2)-freedom is violated.
	res := runConsensus(t, NewCommitAdoptOF(2), 2,
		ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		sim.Limit(sim.Alternate(1, 2), 600), 600)
	if res.Reason != sim.StopBudget {
		t.Fatalf("run should exhaust its budget, got %v", res.Reason)
	}
	if n := len(safety.Decisions(res.H)); n != 0 {
		t.Fatalf("lock-step run decided (%d decisions); expected livelock", n)
	}
	e := liveness.FromResult(res, 0)
	if (liveness.LK{L: 1, K: 2}).Holds(e) {
		t.Error("(1,2)-freedom must be violated by the livelock")
	}
	if !(liveness.LK{L: 1, K: 1}).Holds(e) {
		t.Error("(1,1)-freedom is vacuous here (two steppers)")
	}
}

func TestCommitAdoptSoloAfterContentionDecides(t *testing.T) {
	// Obstruction-freedom from an arbitrary reachable configuration: run
	// lock-step contention for a while, then let p1 run alone; it must
	// decide.
	res := runConsensus(t, NewCommitAdoptOF(2), 2,
		ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		sim.Seq(sim.Limit(sim.Alternate(1, 2), 100), sim.Limit(sim.Solo(1), 200)), 0)
	d := safety.Decisions(res.H)
	if _, ok := d[1]; !ok {
		t.Fatalf("p1 ran solo after contention and must decide; history: %s", res.H)
	}
	if d[1] != 0 && d[1] != 1 {
		t.Errorf("decided %v, want a proposed value", d[1])
	}
}

func TestCommitAdoptRepeatedProposalsReturnDecision(t *testing.T) {
	res := runConsensus(t, NewCommitAdoptOF(2), 2,
		ProposeForever(map[int]history.Value{1: 4, 2: 5}),
		sim.Seq(sim.Limit(sim.Solo(1), 100), sim.Limit(&sim.RoundRobin{}, 100)), 0)
	vals := make(map[history.Value]bool)
	count := 0
	for _, op := range res.H.Operations() {
		if op.Done {
			vals[op.Val] = true
			count++
		}
	}
	if len(vals) != 1 {
		t.Errorf("all responses must carry the single decision, got %v", vals)
	}
	if count < 3 {
		t.Errorf("repeat environment should produce many decisions, got %d", count)
	}
}

func TestCommitAdoptCrashMidRoundIsHarmless(t *testing.T) {
	// Crash p2 at every possible early point; p1 must still decide solo
	// (non-blocking system) and safety must hold.
	for crashAt := 1; crashAt <= 12; crashAt++ {
		var sched []sim.Decision
		for i := 0; i < crashAt; i++ {
			sched = append(sched, sim.Decision{Proc: 2})
		}
		sched = append(sched, sim.Decision{Proc: 2, Crash: true})
		obj := NewCommitAdoptOF(2)
		res := sim.Run(sim.Config{
			Procs:  2,
			Object: obj,
			Env:    ProposeOnce(map[int]history.Value{1: 1, 2: 2}),
			Scheduler: sim.Seq(
				sim.Fixed(sched),
				sim.Solo(1),
			),
			MaxSteps: 2000,
		})
		if res.Err != nil {
			t.Fatalf("crashAt %d: %v", crashAt, res.Err)
		}
		if !(safety.AgreementValidity{}).Holds(res.H) {
			t.Fatalf("crashAt %d: safety violated: %s", crashAt, res.H)
		}
		if _, ok := safety.Decisions(res.H)[1]; !ok {
			t.Fatalf("crashAt %d: p1 must decide despite p2's crash", crashAt)
		}
	}
}

func TestCASBasedConsensus(t *testing.T) {
	t.Run("wait-free under lock-step", func(t *testing.T) {
		// The schedule that livelocks the register implementation cannot
		// hurt the CAS one.
		res := runConsensus(t, NewCASBased(), 2,
			ProposeForever(map[int]history.Value{1: 0, 2: 1}),
			sim.Limit(sim.Alternate(1, 2), 200), 0)
		if !(safety.AgreementValidity{}).Holds(res.H) {
			t.Error("safety violated")
		}
		e := liveness.FromResult(res, 0)
		if !(liveness.WaitFreedom{}).Holds(e) {
			t.Error("CAS consensus is wait-free")
		}
		if !(liveness.LK{L: 2, K: 2}).Holds(e) {
			t.Error("(2,2)-freedom holds for the CAS implementation")
		}
	})
	t.Run("safe under random schedules", func(t *testing.T) {
		for seed := int64(0); seed < 100; seed++ {
			res := sim.Run(sim.Config{
				Procs:     3,
				Object:    NewCASBased(),
				Env:       ProposeOnce(map[int]history.Value{1: 1, 2: 2, 3: 3}),
				Scheduler: sim.Random(seed),
				MaxSteps:  500,
			})
			if !(safety.AgreementValidity{}).Holds(res.H) {
				t.Fatalf("seed %d: safety violated: %s", seed, res.H)
			}
		}
	})
}

func TestTrivialNeverResponds(t *testing.T) {
	res := runConsensus(t, Trivial{}, 2,
		ProposeOnce(map[int]history.Value{1: 1, 2: 2}),
		&sim.RoundRobin{}, 0)
	for _, e := range res.H {
		if e.Kind == history.KindResponse {
			t.Fatalf("Trivial responded: %s", res.H)
		}
	}
	// It vacuously ensures consensus safety.
	if !(safety.AgreementValidity{}).Holds(res.H) {
		t.Error("invocation-only histories satisfy agreement+validity")
	}
	if res.Reason != sim.StopQuiescent {
		t.Errorf("all processes parked: want quiescent stop, got %v", res.Reason)
	}
}

func TestRespondOnce(t *testing.T) {
	obj := &RespondOnce{Proc: 1, Op: Propose, Arg: 7, Resp: 7}
	res := runConsensus(t, obj, 2,
		sim.Script(map[int][]sim.Invocation{
			1: {{Op: Propose, Arg: 7}, {Op: Propose, Arg: 7}},
			2: {{Op: Propose, Arg: 7}},
		}),
		&sim.RoundRobin{}, 100)
	responses := 0
	for _, e := range res.H {
		if e.Kind == history.KindResponse {
			responses++
			if e.Proc != 1 || e.Val != 7 {
				t.Errorf("unexpected response %s", e)
			}
		}
	}
	if responses != 1 {
		t.Errorf("got %d responses, want exactly 1", responses)
	}
}

func TestRespondOnceWrongInvocationBlocks(t *testing.T) {
	obj := &RespondOnce{Proc: 1, Op: Propose, Arg: 7, Resp: 7}
	res := runConsensus(t, obj, 1,
		ProposeOnce(map[int]history.Value{1: 9}), // arg mismatch
		&sim.RoundRobin{}, 100)
	for _, e := range res.H {
		if e.Kind == history.KindResponse {
			t.Fatalf("mismatching invocation must block: %s", res.H)
		}
	}
}
