package consensus

import (
	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// DecideOwn is the trivial wait-free k-set agreement implementation for
// n <= k processes: every process announces and decides its own value (at
// most n <= k distinct decisions). For n >= k+1 it violates k-set
// agreement, matching the Borowsky-Gafni boundary: k-set agreement is
// wait-free solvable from registers iff n <= k.
type DecideOwn struct {
	ann *base.Snapshot
}

// NewDecideOwn creates the implementation for n processes.
func NewDecideOwn(n int) *DecideOwn {
	return &DecideOwn{ann: base.NewSnapshot("ann", n, nil)}
}

// Apply implements sim.Object.
func (d *DecideOwn) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	d.ann.Update(p, p.ID()-1, inv.Arg)
	return inv.Arg
}

// FirstAnnounced is a k-set agreement implementation that decides the
// value in the lowest announced slot it observes: wait-free and safe for
// every n (all processes converge to at most... in fact exactly the values
// that were in low slots when each scanned — up to n distinct values in
// adversarial interleavings, but at most k when at most k values are ever
// announced). It is used by tests as a *plausible but wrong* candidate for
// n > k: the explorer finds the violating interleaving.
type FirstAnnounced struct {
	ann *base.Snapshot
}

// NewFirstAnnounced creates the implementation for n processes.
func NewFirstAnnounced(n int) *FirstAnnounced {
	return &FirstAnnounced{ann: base.NewSnapshot("ann", n, nil)}
}

// Apply implements sim.Object.
func (d *FirstAnnounced) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	d.ann.Update(p, p.ID()-1, inv.Arg)
	snap := d.ann.Scan(p)
	for _, v := range snap {
		if v != nil {
			return v
		}
	}
	return inv.Arg
}
