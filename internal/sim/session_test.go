package sim

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/base"
	"repro/internal/history"
)

// snapObject exercises every base object kind with multi-step,
// branching operations, composing their Snapshot/Restore hooks —
// the round-trip fixture of the session engine.
type snapObject struct {
	reg  *base.Register
	cas  *base.CAS
	tas  *base.TAS
	ctr  *base.FetchAdd
	snap *base.Snapshot
}

func newSnapObject(n int) *snapObject {
	return &snapObject{
		reg:  base.NewRegister("reg", 0),
		cas:  base.NewCAS("cas", 0),
		tas:  base.NewTAS("tas"),
		ctr:  base.NewFetchAdd("ctr", 0),
		snap: base.NewSnapshot("snap", n, 0),
	}
}

func (o *snapObject) Apply(p *Proc, inv Invocation) history.Value {
	switch inv.Op {
	case "mix":
		o.reg.Write(p, inv.Arg)
		v := o.ctr.Add(p, 1)
		if o.tas.TestAndSet(p) {
			old := o.cas.Read(p)
			o.cas.CompareAndSwap(p, old, v)
		} else {
			o.snap.Update(p, p.ID()-1, v)
		}
		sn := o.snap.Scan(p)
		sum := 0
		for _, x := range sn {
			sum += x.(int)
		}
		return sum*100 + v
	case "read":
		return o.reg.Read(p)
	}
	return nil
}

func (o *snapObject) Fingerprint(f *Fingerprinter) {
	o.reg.Fingerprint(f)
	o.cas.Fingerprint(f)
	o.tas.Fingerprint(f)
	o.ctr.Fingerprint(f)
	o.snap.Fingerprint(f)
}

type snapObjectState struct{ reg, cas, tas, ctr, snap any }

func (o *snapObject) Snapshot() any {
	return &snapObjectState{
		reg: o.reg.Snapshot(), cas: o.cas.Snapshot(), tas: o.tas.Snapshot(),
		ctr: o.ctr.Snapshot(), snap: o.snap.Snapshot(),
	}
}

func (o *snapObject) Restore(v any) {
	st := v.(*snapObjectState)
	o.reg.Restore(st.reg)
	o.cas.Restore(st.cas)
	o.tas.Restore(st.tas)
	o.ctr.Restore(st.ctr)
	o.snap.Restore(st.snap)
}

// snapFrame is one in-flight snapObject operation, branching on the
// test-and-set outcome exactly as Apply does.
type snapFrame struct {
	o   *snapObject
	inv Invocation
	pc  int
	v   int
	old history.Value
}

// Begin implements Stepped.
func (o *snapObject) Begin(p *Proc, inv Invocation) (Frame, history.Value, StepStatus) {
	switch inv.Op {
	case "mix", "read":
		return &snapFrame{o: o, inv: inv}, nil, StepPaused
	}
	return nil, nil, StepDone
}

// Step implements Frame.
func (f *snapFrame) Step(p *Proc) (history.Value, StepStatus) {
	o := f.o
	if f.inv.Op == "read" {
		return o.reg.ReadW(p), StepDone
	}
	switch f.pc {
	case 0:
		o.reg.WriteW(p, f.inv.Arg)
		f.pc = 1
	case 1:
		f.v = o.ctr.AddW(p, 1)
		f.pc = 2
	case 2:
		if o.tas.TestAndSetW(p) {
			f.pc = 3
		} else {
			f.pc = 5
		}
	case 3:
		f.old = o.cas.ReadW(p)
		f.pc = 4
	case 4:
		o.cas.CompareAndSwapW(p, f.old, f.v)
		f.pc = 6
	case 5:
		o.snap.UpdateW(p, p.ID()-1, f.v)
		f.pc = 6
	case 6:
		sn := o.snap.ScanW(p, nil)
		sum := 0
		for _, x := range sn {
			sum += x.(int)
		}
		return sum*100 + f.v, StepDone
	}
	return nil, StepPaused
}

// Fork implements Frame.
func (f *snapFrame) Fork() Frame {
	c := *f
	return &c
}

// sessionCrossCheck walks the full schedule tree to the given depth
// with one persistent session (descend by Extend, backtrack by
// Restore) and, at EVERY node, compares the session's history,
// fingerprint and ready set against an independent from-root replay of
// the same prefix. Mid-operation marks, pending-operation rebuilds,
// idle transitions and (optionally) crash decisions are all hit.
func sessionCrossCheck(t *testing.T, procs, depth, crashes int, newObj func() Object, newEnv func() Environment, fingerprint bool) (nodes int) {
	t.Helper()
	sess, err := NewSession(SessionConfig{Procs: procs, Object: newObj(), NewEnv: newEnv, Fingerprint: fingerprint})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()

	var prefix []Decision
	var walk func(remDepth, remCrashes int)
	walk = func(remDepth, remCrashes int) {
		nodes++
		// Independent replay of the current prefix.
		sched := Fixed(append([]Decision(nil), prefix...))
		res := Run(Config{
			Procs: procs, Object: newObj(), Env: newEnv(),
			Scheduler: sched, MaxSteps: len(prefix) + 1, Fingerprint: fingerprint,
		})
		if res.Err != nil {
			t.Fatalf("replay of %v failed: %v", prefix, res.Err)
		}
		if !reflect.DeepEqual(res.H, sess.History()) && !(len(res.H) == 0 && len(sess.History()) == 0) {
			t.Fatalf("history diverged at %v:\nsession: %s\nreplay:  %s", prefix, sess.History(), res.H)
		}
		if fingerprint {
			sfp, sok := sess.Fingerprint()
			if sok != res.Fingerprinted || (sok && sfp != res.Fingerprint) {
				t.Fatalf("fingerprint diverged at %v: session (%x,%v), replay (%x,%v)",
					prefix, sfp, sok, res.Fingerprint, res.Fingerprinted)
			}
		}
		ready := sess.Ready()
		var replayReady []int
		notReady := map[int]bool{}
		for _, id := range res.Idle {
			notReady[id] = true
		}
		for _, id := range res.Blocked {
			notReady[id] = true
		}
		for _, id := range res.Crashed {
			notReady[id] = true
		}
		for id := 1; id <= procs; id++ {
			if !notReady[id] {
				replayReady = append(replayReady, id)
			}
		}
		sort.Ints(replayReady)
		if !reflect.DeepEqual(ready, replayReady) {
			t.Fatalf("ready diverged at %v: session %v, replay %v", prefix, ready, replayReady)
		}
		if remDepth == 0 {
			return
		}
		var children []Decision
		for _, id := range ready {
			children = append(children, Decision{Proc: id})
		}
		if remCrashes > 0 {
			for _, id := range ready {
				children = append(children, Decision{Proc: id, Crash: true})
			}
		}
		if len(children) == 0 {
			return
		}
		mark := sess.Mark()
		for _, d := range children {
			if _, err := sess.Restore(mark); err != nil {
				t.Fatalf("restore at %v: %v", prefix, err)
			}
			if _, err := sess.Extend(d); err != nil {
				t.Fatalf("extend %v at %v: %v", d, prefix, err)
			}
			prefix = append(prefix, d)
			nc := remCrashes
			if d.Crash {
				nc--
			}
			walk(remDepth-1, nc)
			prefix = prefix[:len(prefix)-1]
		}
		if _, err := sess.Restore(mark); err != nil {
			t.Fatalf("final restore at %v: %v", prefix, err)
		}
	}
	walk(depth, crashes)
	return nodes
}

// TestSessionMatchesReplayEverywhere is the session engine's core
// soundness check: on a stateful Script environment over an object
// composing every base object kind, every node of the depth-7
// two-process tree agrees with a from-root replay.
func TestSessionMatchesReplayEverywhere(t *testing.T) {
	script := map[int][]Invocation{
		1: {{Op: "mix", Arg: 10}, {Op: "read"}},
		2: {{Op: "mix", Arg: 20}, {Op: "read"}},
	}
	newObj := func() Object { return newSnapObject(2) }
	newEnv := func() Environment { return Script(script) }
	nodes := sessionCrossCheck(t, 2, 7, 0, newObj, newEnv, true)
	if nodes < 100 {
		t.Errorf("cross-check visited only %d nodes; tree unexpectedly small", nodes)
	}
	t.Logf("cross-checked %d nodes", nodes)
}

// TestSessionMatchesReplayWithCrashes repeats the cross-check with
// crash decisions branching at every level (restores must rewind crash
// statuses and reinstate the crashed operations' pending frames).
func TestSessionMatchesReplayWithCrashes(t *testing.T) {
	script := map[int][]Invocation{
		1: {{Op: "mix", Arg: 1}},
		2: {{Op: "mix", Arg: 2}},
	}
	newObj := func() Object { return newSnapObject(2) }
	newEnv := func() Environment { return Script(script) }
	nodes := sessionCrossCheck(t, 2, 5, 2, newObj, newEnv, true)
	t.Logf("cross-checked %d nodes", nodes)
}

// viewEnv is a stateless, view-dependent environment in the style of
// mutex.AcquireReleaseLoop: the next operation depends on the process's
// own last response. Session restores must reproduce its decisions via
// the historical truncated views.
func viewEnv() Environment {
	return EnvironmentFunc(func(proc int, v *View) (Invocation, bool) {
		proj := v.H.Project(proc)
		for i := len(proj) - 1; i >= 0; i-- {
			if proj[i].Kind == history.KindResponse {
				if proj[i].Val == "won" {
					return Invocation{Op: "release"}, true
				}
				return Invocation{Op: "try"}, true
			}
		}
		return Invocation{Op: "try"}, true
	})
}

// tasObject gives viewEnv something to react to: "try" wins or loses a
// test-and-set, "release" clears it.
type tasObject struct{ t *base.TAS }

func (o *tasObject) Apply(p *Proc, inv Invocation) history.Value {
	switch inv.Op {
	case "try":
		if o.t.TestAndSet(p) {
			return "won"
		}
		return "lost"
	case "release":
		o.t.Reset(p)
		return "ok"
	}
	return nil
}

func (o *tasObject) Fingerprint(f *Fingerprinter) { o.t.Fingerprint(f) }
func (o *tasObject) Snapshot() any                { return o.t.Snapshot() }
func (o *tasObject) Restore(v any)                { o.t.Restore(v) }

// tasFrame is one in-flight tasObject operation: a single window.
type tasFrame struct {
	o   *tasObject
	inv Invocation
}

// Begin implements Stepped.
func (o *tasObject) Begin(p *Proc, inv Invocation) (Frame, history.Value, StepStatus) {
	switch inv.Op {
	case "try", "release":
		return &tasFrame{o: o, inv: inv}, nil, StepPaused
	}
	return nil, nil, StepDone
}

// Step implements Frame.
func (f *tasFrame) Step(p *Proc) (history.Value, StepStatus) {
	if f.inv.Op == "try" {
		if f.o.t.TestAndSetW(p) {
			return "won", StepDone
		}
		return "lost", StepDone
	}
	f.o.t.ResetW(p)
	return "ok", StepDone
}

// Fork implements Frame: the frame is immutable.
func (f *tasFrame) Fork() Frame { return f }

// TestSessionViewDependentEnv cross-checks the session against replay
// under a view-dependent environment (decisions derived from the
// process's own history projection).
func TestSessionViewDependentEnv(t *testing.T) {
	newObj := func() Object { return &tasObject{t: base.NewTAS("t")} }
	nodes := sessionCrossCheck(t, 2, 7, 0, newObj, viewEnv, true)
	t.Logf("cross-checked %d nodes", nodes)
}

// TestSessionLazyArgPoisonRestored pins LazyArg semantics under the
// session: a lazily resolved argument poisons the fingerprint of the
// subtree below it, and a restore above the lazy step lifts the poison.
func TestSessionLazyArgPoisonRestored(t *testing.T) {
	script := map[int][]Invocation{
		1: {{Op: "mix", Arg: 1}},
		2: {{Op: "mix", Arg: LazyArg(func(v *View) history.Value { return v.Steps })}},
	}
	sess, err := NewSession(SessionConfig{
		Procs:       2,
		Object:      newSnapObject(2),
		NewEnv:      func() Environment { return Script(script) },
		Fingerprint: true,
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	if _, ok := sess.Fingerprint(); !ok {
		t.Fatal("root must fingerprint")
	}
	mark := sess.Mark()
	if _, err := sess.Extend(Decision{Proc: 1}); err != nil {
		t.Fatalf("extend: %v", err)
	}
	if _, ok := sess.Fingerprint(); !ok {
		t.Fatal("proc 1's branch must still fingerprint")
	}
	if _, err := sess.Extend(Decision{Proc: 2}); err != nil {
		t.Fatalf("extend: %v", err)
	}
	if _, ok := sess.Fingerprint(); ok {
		t.Fatal("lazy invocation must poison the fingerprint")
	}
	if _, err := sess.Restore(mark); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, ok := sess.Fingerprint(); !ok {
		t.Fatal("restore above the lazy step must lift the poison")
	}
}

// gatedObject vetoes snapshots at runtime despite having the methods.
type gatedObject struct{ snapObject }

func (g *gatedObject) Snapshotting() bool { return false }

// TestNewSessionRejects pins the constructor contract: objects without
// the hook — or vetoing it via SessionGated — are rejected, as are
// missing environments.
func TestNewSessionRejects(t *testing.T) {
	plain := ObjectFunc(func(p *Proc, inv Invocation) history.Value { return nil })
	env := func() Environment { return Script(nil) }
	if _, err := NewSession(SessionConfig{Procs: 1, Object: plain, NewEnv: env}); err == nil {
		t.Error("object without Snapshottable must be rejected")
	}
	if CanSnapshot(plain) {
		t.Error("CanSnapshot must be false without the hook")
	}
	g := &gatedObject{}
	g.snapObject = *newSnapObject(1)
	if CanSnapshot(g) {
		t.Error("CanSnapshot must honor the SessionGated veto")
	}
	if _, err := NewSession(SessionConfig{Procs: 1, Object: g, NewEnv: env}); err == nil {
		t.Error("SessionGated veto must be rejected")
	}
	if _, err := NewSession(SessionConfig{Procs: 1, Object: newSnapObject(1)}); err == nil {
		t.Error("missing NewEnv must be rejected")
	}
	if !CanSnapshot(newSnapObject(1)) {
		t.Error("CanSnapshot must be true for the hook-bearing object")
	}
}

// TestSessionExtendValidation pins Extend's decision validation (the
// sim.Run StopError cases) and that the session survives rejected
// decisions.
func TestSessionExtendValidation(t *testing.T) {
	script := map[int][]Invocation{1: {{Op: "mix", Arg: 1}}}
	sess, err := NewSession(SessionConfig{
		Procs:  2,
		Object: newSnapObject(2),
		NewEnv: func() Environment { return Script(script) },
	})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	if _, err := sess.Extend(Decision{Proc: 3}); err == nil {
		t.Error("out-of-range process must be rejected")
	}
	if _, err := sess.Extend(Decision{Proc: 2}); err == nil {
		t.Error("stepping the idle process must be rejected")
	}
	if _, err := sess.Extend(Decision{Proc: 2, Crash: true}); err != nil {
		t.Errorf("crashing the idle process is allowed by sim.Run, got %v", err)
	}
	if _, err := sess.Extend(Decision{Proc: 2, Crash: true}); err == nil {
		t.Error("double crash must be rejected")
	}
	if _, err := sess.Extend(Decision{Proc: 1}); err != nil {
		t.Errorf("valid step rejected: %v", err)
	}
}
