package sim

import (
	"repro/internal/history"
)

// Fingerprinter accumulates a canonical 64-bit digest (FNV-1a) of
// simulation state. Writers must feed state components in a fixed,
// deterministic order; every component is written with a type tag so
// adjacent components of different kinds cannot collide by
// concatenation. The digest is deterministic across runs and processes,
// which is what lets exploration deduplicate states across replays and
// lets tests assert "same state, same fingerprint" across schedules.
type Fingerprinter struct {
	h        uint64
	poisoned bool
	scratch  []byte // reused encoding buffer for Val
}

// NewFingerprinter returns an empty fingerprinter.
func NewFingerprinter() *Fingerprinter {
	return &Fingerprinter{h: history.DigestSeed()}
}

func (f *Fingerprinter) byteIn(b byte) {
	f.h = history.DigestByte(f.h, b)
}

func (f *Fingerprinter) tag(t byte) { f.byteIn(t) }

// Str folds a string component into the digest, length-delimited.
func (f *Fingerprinter) Str(s string) {
	f.tag('s')
	f.Int(len(s))
	for i := 0; i < len(s); i++ {
		f.byteIn(s[i])
	}
}

// Int folds an integer component into the digest.
func (f *Fingerprinter) Int(v int) {
	f.tag('i')
	f.Uint64(uint64(v))
}

// Bool folds a boolean component into the digest.
func (f *Fingerprinter) Bool(b bool) {
	f.tag('b')
	if b {
		f.byteIn(1)
	} else {
		f.byteIn(0)
	}
}

// Uint64 folds a 64-bit word into the digest.
func (f *Fingerprinter) Uint64(v uint64) {
	f.h = history.DigestWord(f.h, v)
}

// Val folds an arbitrary history value into the digest by its dynamic
// type and content (history.AppendCanonical: every node kind- and
// type-tagged, every variable-size component length-delimited, map
// entries sorted). Two values encode identically iff they are
// structurally equal by content, and two values of different dynamic
// types never collide with each other's content. It is NOT
// identity-aware: two distinct allocations with equal content encode
// the same, which is exactly why implementations that compare pointers
// (CAS over fresh allocations) must not opt into fingerprinting — see
// Fingerprintable.
//
// A value the encoder refuses — a non-nil pointer below the top level
// (identity, not content, and possibly cyclic), a channel or function,
// or a type whose fmt.Stringer/Formatter/error methods take over its
// rendering — poisons the fingerprint instead: the run yields no
// Result.Fingerprint and the state cache skips it, like a LazyArg run.
func (f *Fingerprinter) Val(v history.Value) {
	f.tag('v')
	if v == nil {
		f.Str("<nil>")
		return
	}
	b, ok := history.AppendCanonical(f.scratch[:0], v)
	f.scratch = b // keep the grown buffer for the next value
	if !ok {
		f.poisoned = true
		return
	}
	f.tag('s')
	f.Int(len(b))
	for i := 0; i < len(b); i++ {
		f.byteIn(b[i])
	}
}

// Sum returns the digest of everything folded in so far.
func (f *Fingerprinter) Sum() uint64 { return f.h }

// Poisoned reports whether some folded value could not be canonically
// encoded (see Val); a poisoned digest must not be used as a state
// fingerprint.
func (f *Fingerprinter) Poisoned() bool { return f.poisoned }

// Fingerprintable is the opt-in state-fingerprint hook: an Object
// implementing it promises that
//
//  1. Fingerprint writes a canonical encoding of ALL state shared
//     between processes (for implementations built from internal/base
//     objects: each base object's Fingerprint method, in a fixed
//     order), such that two instances with equal encodings behave
//     identically under identical future schedules, and
//  2. every value Apply reads from shared state into process-local
//     variables is declared to the executing process via Proc.Observe
//     (base-object read operations do this automatically), so the
//     runtime can fold mid-operation local state into the fingerprint.
//
// Implementations whose behavior depends on pointer identity — e.g. a
// compare-and-swap over freshly allocated records, where two
// content-equal states can still differ on which allocation the CAS
// will accept — must NOT implement the hook: content encodings cannot
// distinguish such states, and a fingerprint that equates them would
// let exploration prune subtrees with genuinely different futures.
// Values passed to Fingerprinter.Val must be encodable by content:
// scalars and strings, composed through structs, arrays, slices, maps,
// and interfaces, with at most one top-level pointer to a composite
// (which is dereferenced). Everything else — a nested non-nil pointer
// (identity, not content), a top-level pointer to a scalar, channels,
// functions, and types implementing fmt.Stringer, fmt.Formatter, or
// error — poisons the fingerprint: the run then yields no
// Result.Fingerprint, same as a non-fingerprintable object, rather
// than producing a nondeterministic or colliding one (the symptom is
// WithStateCache reporting zero hits). Objects without the hook simply
// yield no Result.Fingerprint and exploration's state cache skips
// them.
type Fingerprintable interface {
	Object
	// Fingerprint writes the object's canonical shared state into f.
	Fingerprint(f *Fingerprinter)
}

// fingerprint computes the canonical state fingerprint of the current
// configuration: the object's declared state, plus each process's
// control state — status (ready/idle/blocked/crashed, which also
// encodes the crash set), completed-operation count (its position in a
// view-independent environment's script), pending invocation, steps
// taken within the pending operation (its program counter), and the
// running digest of values it observed within the pending operation
// (its mid-operation local state). It is called between step windows,
// when no process is executing. ok is false when some folded value
// poisoned the digest (see Fingerprinter.Val).
func (r *runtime) fingerprint() (fp uint64, ok bool) {
	f := NewFingerprinter()
	r.cfg.Object.(Fingerprintable).Fingerprint(f)
	for id := 1; id <= r.cfg.Procs; id++ {
		f.Int(int(r.status[id]))
		f.Int(r.fpCompleted[id])
		f.Int(r.fpOpSteps[id])
		f.Uint64(r.fpObs[id])
		if r.fpHasPend[id] {
			p := &r.fpPending[id]
			f.Bool(true)
			f.Str(p.Op)
			f.Str(p.Obj)
			f.Val(p.Arg)
		} else {
			f.Bool(false)
		}
		// Crash–recovery control state: the recovery epoch and the
		// invoked-operation count separate configurations whose histories
		// consumed different invocations through crashed operations (the
		// environment's position depends on invocations, not completions),
		// and the recovering flag separates a recovery routine about to
		// take its first step from a process between operations. The
		// arrays are nil exactly when no recover decision happened on this
		// runtime, in which case every epoch is zero — the fold is a pure
		// function of the configuration either way.
		if r.recEpochs != nil {
			f.Int(r.recEpochs[id])
			f.Bool(r.recovering[id])
		} else {
			f.Int(0)
			f.Bool(false)
		}
		f.Int(r.fpInvoked[id])
	}
	return f.Sum(), !f.Poisoned()
}
