package sim

import (
	"fmt"

	"repro/internal/history"
)

// Fingerprinter accumulates a canonical 64-bit digest (FNV-1a) of
// simulation state. Writers must feed state components in a fixed,
// deterministic order; every component is written with a type tag so
// adjacent components of different kinds cannot collide by
// concatenation. The digest is deterministic across runs and processes,
// which is what lets exploration deduplicate states across replays and
// lets tests assert "same state, same fingerprint" across schedules.
type Fingerprinter struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewFingerprinter returns an empty fingerprinter.
func NewFingerprinter() *Fingerprinter {
	return &Fingerprinter{h: fnvOffset64}
}

func (f *Fingerprinter) byteIn(b byte) {
	f.h = (f.h ^ uint64(b)) * fnvPrime64
}

func (f *Fingerprinter) tag(t byte) { f.byteIn(t) }

// Str folds a string component into the digest, length-delimited.
func (f *Fingerprinter) Str(s string) {
	f.tag('s')
	f.Int(len(s))
	for i := 0; i < len(s); i++ {
		f.byteIn(s[i])
	}
}

// Int folds an integer component into the digest.
func (f *Fingerprinter) Int(v int) {
	f.tag('i')
	f.Uint64(uint64(v))
}

// Bool folds a boolean component into the digest.
func (f *Fingerprinter) Bool(b bool) {
	f.tag('b')
	if b {
		f.byteIn(1)
	} else {
		f.byteIn(0)
	}
}

// Uint64 folds a 64-bit word into the digest.
func (f *Fingerprinter) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		f.byteIn(byte(v >> (8 * i)))
	}
}

// Val folds an arbitrary history value into the digest by its dynamic
// type and printed content. The encoding is canonical for the value
// kinds stored in base objects (scalars, comparable structs, pointers to
// immutable records — fmt prints the pointed-to content): two values
// that are == or deep-equal by content encode identically, and two
// values of different dynamic types never collide with each other's
// content. It is NOT identity-aware: two distinct allocations with equal
// content encode the same, which is exactly why implementations that
// compare pointers (CAS over fresh allocations) must not opt into
// fingerprinting — see Fingerprintable.
func (f *Fingerprinter) Val(v history.Value) {
	f.tag('v')
	if v == nil {
		f.Str("<nil>")
		return
	}
	f.Str(fmt.Sprintf("%T=%v", v, v))
}

// Sum returns the digest of everything folded in so far.
func (f *Fingerprinter) Sum() uint64 { return f.h }

// Fingerprintable is the opt-in state-fingerprint hook: an Object
// implementing it promises that
//
//  1. Fingerprint writes a canonical encoding of ALL state shared
//     between processes (for implementations built from internal/base
//     objects: each base object's Fingerprint method, in a fixed
//     order), such that two instances with equal encodings behave
//     identically under identical future schedules, and
//  2. every value Apply reads from shared state into process-local
//     variables is declared to the executing process via Proc.Observe
//     (base-object read operations do this automatically), so the
//     runtime can fold mid-operation local state into the fingerprint.
//
// Implementations whose behavior depends on pointer identity — e.g. a
// compare-and-swap over freshly allocated records, where two
// content-equal states can still differ on which allocation the CAS
// will accept — must NOT implement the hook: content encodings cannot
// distinguish such states, and a fingerprint that equates them would
// let exploration prune subtrees with genuinely different futures.
// Objects without the hook simply yield no Result.Fingerprint and
// exploration's state cache skips them.
type Fingerprintable interface {
	Object
	// Fingerprint writes the object's canonical shared state into f.
	Fingerprint(f *Fingerprinter)
}

// fingerprint computes the canonical state fingerprint of the current
// configuration: the object's declared state, plus each process's
// control state — status (ready/idle/blocked/crashed, which also
// encodes the crash set), completed-operation count (its position in a
// view-independent environment's script), pending invocation, steps
// taken within the pending operation (its program counter), and the
// running digest of values it observed within the pending operation
// (its mid-operation local state). It is called between step windows,
// when no process is executing.
func (r *runtime) fingerprint() uint64 {
	f := NewFingerprinter()
	r.cfg.Object.(Fingerprintable).Fingerprint(f)
	for id := 1; id <= r.cfg.Procs; id++ {
		f.Int(int(r.status[id]))
		f.Int(r.fpCompleted[id])
		f.Int(r.fpOpSteps[id])
		f.Uint64(r.fpObs[id])
		if p := r.fpPending[id]; p != nil {
			f.Bool(true)
			f.Str(p.Op)
			f.Str(p.Obj)
			f.Val(p.Arg)
		} else {
			f.Bool(false)
		}
	}
	return f.Sum()
}
