package sim

import "repro/internal/history"

// StepStatus is what a continuation frame reports after executing one
// granted step (or what Begin reports for the invocation window).
type StepStatus int

const (
	// StepPaused: the operation has more atomic steps to take; the
	// process remains ready and the frame will be stepped again.
	StepPaused StepStatus = iota + 1
	// StepDone: the operation completed; the accompanying value is its
	// response, recorded in the history within the same window.
	StepDone
	// StepBlocked: the implementation parks the process forever (the
	// continuation-runtime equivalent of Proc.Block).
	StepBlocked
)

// String names the status.
func (s StepStatus) String() string {
	switch s {
	case StepPaused:
		return "paused"
	case StepDone:
		return "done"
	case StepBlocked:
		return "blocked"
	default:
		return "invalid"
	}
}

// Stepped is the continuation hook of the incremental execution engine:
// an Object that can run each operation as an explicit state machine,
// one resumable step closure per scheduler grant, instead of blocking a
// live goroutine inside Apply. Sessions execute exclusively through
// this hook — a direct dispatch loop with no goroutines, no channel
// handoffs, and no rebuild-by-replay on Restore.
//
// Begin is called within the invocation window (the granted step that
// records the invocation event). It must run exactly the code Apply
// would run before its first base-object access: composite-level local
// setup, including any Proc.Observe calls Apply performs before the
// first access, but no base-object access (nothing may call Proc.Access
// — the invocation window has no footprint). It returns
//
//   - (frame, _, StepPaused) when the operation has base-object steps
//     left: each subsequent grant calls frame.Step once;
//   - (nil, val, StepDone) when the operation performs no base-object
//     access at all (val is the response, recorded in the same window);
//   - (nil, _, StepBlocked) when the operation blocks immediately.
//
// The Stepped machine and the blocking Apply must describe the same
// algorithm step for step: sim.Run (and WithReplayExecution above it)
// executes Apply and serves as the parity oracle for the continuation
// runtime. The window rule for translating Apply bodies: Begin gets the
// code before the first access; Step k gets the k-th access plus the
// local code that follows it up to the next access or the return.
type Stepped interface {
	Object
	Begin(p *Proc, inv Invocation) (Frame, history.Value, StepStatus)
}

// Frame is one in-flight operation of one process: the explicit
// continuation of everything Apply would have kept on a goroutine
// stack. Step executes the operation's next atomic step — exactly one
// base-object access through the usual Proc hooks (Access/Observe, via
// the internal/base *W window methods) plus the trailing local code up
// to the next access — and reports whether the operation paused again,
// completed (returning its response), or blocked forever.
//
// Fork returns a frame equivalent to the receiver for Session.Mark and
// Session.Restore: stepping the original must not affect the fork and
// vice versa. A frame whose state never mutates after creation (every
// single-remaining-step frame qualifies) may return itself; frames with
// mutable progress state (loop counters, phase indices, collected
// values) must return a deep copy.
type Frame interface {
	Step(p *Proc) (history.Value, StepStatus)
	Fork() Frame
}
