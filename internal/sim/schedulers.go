package sim

import "math/rand"

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(v *View) (Decision, bool)

// Next implements Scheduler.
func (f SchedulerFunc) Next(v *View) (Decision, bool) { return f(v) }

// RoundRobin schedules ready processes cyclically by id, giving each
// process fair turns. The zero value is ready to use.
type RoundRobin struct {
	last int
}

// Next implements Scheduler.
func (rr *RoundRobin) Next(v *View) (Decision, bool) {
	if len(v.Ready) == 0 {
		return Decision{}, false
	}
	// Pick the smallest ready id strictly greater than last, wrapping.
	for _, p := range v.Ready {
		if p > rr.last {
			rr.last = p
			return Decision{Proc: p}, true
		}
	}
	rr.last = v.Ready[0]
	return Decision{Proc: v.Ready[0]}, true
}

// Solo schedules only the given process; the run ends when it is no longer
// ready. It realizes the "running alone" (step-contention-free) schedules
// of obstruction-freedom.
func Solo(proc int) Scheduler {
	return SchedulerFunc(func(v *View) (Decision, bool) {
		if v.ReadyContains(proc) {
			return Decision{Proc: proc}, true
		}
		return Decision{}, false
	})
}

// Fixed replays an explicit decision sequence, then stops. Decisions naming
// processes that cannot take them — steps of non-ready processes, recoveries
// of non-crashed ones — are skipped (this lets prefixes recorded from runs
// with different continuations replay robustly).
func Fixed(schedule []Decision) Scheduler {
	i := 0
	return SchedulerFunc(func(v *View) (Decision, bool) {
		for i < len(schedule) {
			d := schedule[i]
			i++
			switch {
			case d.Crash:
				return d, true
			case d.Recover:
				// A recovery names a crashed process, never a ready one.
				for _, p := range v.Crashed {
					if p == d.Proc {
						return d, true
					}
				}
			case v.ReadyContains(d.Proc):
				return d, true
			}
		}
		return Decision{}, false
	})
}

// FixedProcs replays an explicit sequence of process ids (no crashes), then
// stops.
func FixedProcs(procs []int) Scheduler {
	ds := make([]Decision, len(procs))
	for i, p := range procs {
		ds[i] = Decision{Proc: p}
	}
	return Fixed(ds)
}

// Seq runs each scheduler in turn: when one returns ok=false, the next
// takes over. The run ends when the last one stops.
func Seq(scheds ...Scheduler) Scheduler {
	i := 0
	return SchedulerFunc(func(v *View) (Decision, bool) {
		for i < len(scheds) {
			if d, ok := scheds[i].Next(v); ok {
				return d, true
			}
			i++
		}
		return Decision{}, false
	})
}

// Random schedules uniformly among ready processes using a seeded source,
// so runs are reproducible per seed.
func Random(seed int64) Scheduler {
	rng := rand.New(rand.NewSource(seed))
	return SchedulerFunc(func(v *View) (Decision, bool) {
		if len(v.Ready) == 0 {
			return Decision{}, false
		}
		return Decision{Proc: v.Ready[rng.Intn(len(v.Ready))]}, true
	})
}

// RandomCrashy is Random plus a per-decision crash probability (in
// [0,1]), crashing a uniformly chosen live process. At most maxCrashes
// crashes are injected.
func RandomCrashy(seed int64, crashProb float64, maxCrashes int) Scheduler {
	rng := rand.New(rand.NewSource(seed))
	crashes := 0
	return SchedulerFunc(func(v *View) (Decision, bool) {
		if crashes < maxCrashes && rng.Float64() < crashProb {
			live := make([]int, 0, len(v.Ready)+len(v.Idle)+len(v.Blocked))
			live = append(live, v.Ready...)
			live = append(live, v.Idle...)
			live = append(live, v.Blocked...)
			if len(live) > 0 {
				crashes++
				return Decision{Proc: live[rng.Intn(len(live))], Crash: true}, true
			}
		}
		if len(v.Ready) == 0 {
			return Decision{}, false
		}
		return Decision{Proc: v.Ready[rng.Intn(len(v.Ready))]}, true
	})
}

// RandomRecovery is RandomCrashy plus a per-decision recovery
// probability (in [0,1]): a uniformly chosen crashed process is
// recovered with probability recoverProb, at most maxRecoveries times.
func RandomRecovery(seed int64, crashProb, recoverProb float64, maxCrashes, maxRecoveries int) Scheduler {
	rng := rand.New(rand.NewSource(seed))
	crashes, recoveries := 0, 0
	return SchedulerFunc(func(v *View) (Decision, bool) {
		if recoveries < maxRecoveries && len(v.Crashed) > 0 && rng.Float64() < recoverProb {
			recoveries++
			return Decision{Proc: v.Crashed[rng.Intn(len(v.Crashed))], Recover: true}, true
		}
		if crashes < maxCrashes && rng.Float64() < crashProb {
			live := make([]int, 0, len(v.Ready)+len(v.Idle)+len(v.Blocked))
			live = append(live, v.Ready...)
			live = append(live, v.Idle...)
			live = append(live, v.Blocked...)
			if len(live) > 0 {
				crashes++
				return Decision{Proc: live[rng.Intn(len(live))], Crash: true}, true
			}
		}
		if len(v.Ready) == 0 {
			return Decision{}, false
		}
		return Decision{Proc: v.Ready[rng.Intn(len(v.Ready))]}, true
	})
}

// Limit wraps a scheduler and stops after at most n of its decisions.
func Limit(s Scheduler, n int) Scheduler {
	taken := 0
	return SchedulerFunc(func(v *View) (Decision, bool) {
		if taken >= n {
			return Decision{}, false
		}
		d, ok := s.Next(v)
		if ok {
			taken++
		}
		return d, ok
	})
}

// Alternate steps the given processes in strict rotation, skipping entries
// that are not ready. It stops when none of them is ready.
func Alternate(procs ...int) Scheduler {
	i := 0
	return SchedulerFunc(func(v *View) (Decision, bool) {
		for tries := 0; tries < len(procs); tries++ {
			p := procs[i%len(procs)]
			i++
			if v.ReadyContains(p) {
				return Decision{Proc: p}, true
			}
		}
		return Decision{}, false
	})
}
