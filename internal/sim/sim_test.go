package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/base"
	"repro/internal/history"
)

// Proc must satisfy base.Stepper so base objects can be driven directly.
var _ base.Stepper = (*Proc)(nil)

// regObject exposes a single register through read/write operations; used
// to exercise the runtime.
type regObject struct {
	r *base.Register
}

func newRegObject() *regObject {
	return &regObject{r: base.NewRegister("r", 0)}
}

func (o *regObject) Apply(p *Proc, inv Invocation) history.Value {
	switch inv.Op {
	case "read":
		return o.r.Read(p)
	case "write":
		o.r.Write(p, inv.Arg)
		return history.OK
	default:
		return nil
	}
}

// blockObject parks every caller forever (the trivial implementation I_t).
type blockObject struct{}

func (blockObject) Apply(p *Proc, inv Invocation) history.Value {
	p.Block()
	return nil
}

func TestRunSequentialReadWrite(t *testing.T) {
	res := Run(Config{
		Procs:  1,
		Object: newRegObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: 5}, {Op: "read"}},
		}),
		Scheduler: &RoundRobin{},
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if res.Reason != StopQuiescent {
		t.Fatalf("reason = %v, want quiescent", res.Reason)
	}
	if !res.H.WellFormed() {
		t.Fatalf("history not well-formed: %s", res.H)
	}
	ops := res.H.Operations()
	if len(ops) != 2 || !ops[1].Done || ops[1].Val != 5 {
		t.Fatalf("ops = %+v; read should return 5", ops)
	}
	// Each operation costs one invocation step plus one base-object step.
	if res.Steps != 4 {
		t.Errorf("steps = %d, want 4 (2 invokes + 2 register ops)", res.Steps)
	}
}

func TestRunInterleavingControlsHistoryOrder(t *testing.T) {
	// p1 writes 1, p2 writes 2; the scheduler fully determines the final
	// register value.
	mk := func(order []int) history.Value {
		obj := newRegObject()
		res := Run(Config{
			Procs:  2,
			Object: obj,
			Env: Script(map[int][]Invocation{
				1: {{Op: "write", Arg: 1}, {Op: "read"}},
				2: {{Op: "write", Arg: 2}},
			}),
			Scheduler: FixedProcs(order),
		})
		if res.Err != nil {
			t.Fatalf("run error: %v", res.Err)
		}
		ops := res.H.Operations()
		for _, op := range ops {
			if op.Proc == 1 && op.Name == "read" && op.Done {
				return op.Val
			}
		}
		return nil
	}
	// p1 invokes+writes, p2 invokes+writes, then p1 reads → sees 2.
	if got := mk([]int{1, 1, 2, 2, 1, 1}); got != 2 {
		t.Errorf("read after p2's write = %v, want 2", got)
	}
	// p2 first, then p1's write, then read → sees 1.
	if got := mk([]int{2, 2, 1, 1, 1, 1}); got != 1 {
		t.Errorf("read after p1's write = %v, want 1", got)
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	cfg := func() Config {
		return Config{
			Procs:  3,
			Object: newRegObject(),
			Env: Script(map[int][]Invocation{
				1: {{Op: "write", Arg: 1}, {Op: "read"}, {Op: "write", Arg: 3}},
				2: {{Op: "read"}, {Op: "write", Arg: 2}},
				3: {{Op: "read"}, {Op: "read"}},
			}),
		}
	}
	c1 := cfg()
	c1.Scheduler = Random(42)
	first := Run(c1)
	if first.Err != nil {
		t.Fatalf("first run error: %v", first.Err)
	}
	c2 := cfg()
	c2.Scheduler = Fixed(first.Schedule)
	second := Run(c2)
	if second.Err != nil {
		t.Fatalf("replay error: %v", second.Err)
	}
	if !first.H.Equal(second.H) {
		t.Fatalf("replay diverged:\n first: %s\nsecond: %s", first.H, second.H)
	}
	if first.Steps != second.Steps {
		t.Errorf("replay step count %d != %d", second.Steps, first.Steps)
	}
}

func TestRunCrash(t *testing.T) {
	res := Run(Config{
		Procs:  2,
		Object: newRegObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: 1}},
			2: {{Op: "write", Arg: 2}},
		}),
		Scheduler: Fixed([]Decision{
			{Proc: 1},              // p1 invokes write(1)
			{Proc: 1, Crash: true}, // p1 crashes mid-operation
			{Proc: 2}, {Proc: 2},   // p2 completes
		}),
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !res.H.Crashed(1) {
		t.Fatal("history should record crash of p1")
	}
	if !res.H.WellFormed() {
		t.Fatalf("history not well-formed: %s", res.H)
	}
	if res.H.Pending(1) != true {
		t.Error("p1 crashed pending; its operation must stay pending")
	}
	if res.StepsBy[1] != 1 {
		t.Errorf("p1 steps = %d, want 1 (crash is not a step)", res.StepsBy[1])
	}
	// p2's write must have completed despite p1's crash (non-blocking
	// system).
	found := false
	for _, op := range res.H.Operations() {
		if op.Proc == 2 && op.Done {
			found = true
		}
	}
	if !found {
		t.Error("p2's operation should complete")
	}
}

func TestRunBlockedImplementation(t *testing.T) {
	res := Run(Config{
		Procs:     1,
		Object:    blockObject{},
		Env:       OneShot(map[int]Invocation{1: {Op: "op"}}),
		Scheduler: &RoundRobin{},
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if res.Reason != StopQuiescent {
		t.Errorf("reason = %v, want quiescent (process parked)", res.Reason)
	}
	if res.H.Pending(1) != true {
		t.Error("operation must be pending forever")
	}
	if n := len(res.H); n != 1 {
		t.Errorf("history has %d events, want just the invocation", n)
	}
}

func TestRunBudget(t *testing.T) {
	res := Run(Config{
		Procs:     1,
		Object:    newRegObject(),
		Env:       Repeat(Invocation{Op: "read"}),
		Scheduler: &RoundRobin{},
		MaxSteps:  7,
	})
	if res.Reason != StopBudget {
		t.Errorf("reason = %v, want budget", res.Reason)
	}
	if res.Steps != 7 {
		t.Errorf("steps = %d, want 7", res.Steps)
	}
}

func TestRunSoloScheduler(t *testing.T) {
	res := Run(Config{
		Procs:  2,
		Object: newRegObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: 1}},
			2: {{Op: "write", Arg: 2}},
		}),
		Scheduler: Solo(2),
	})
	if res.StepsBy[1] != 0 {
		t.Errorf("p1 took %d steps under Solo(2)", res.StepsBy[1])
	}
	if res.StepsBy[2] != 2 {
		t.Errorf("p2 took %d steps, want 2", res.StepsBy[2])
	}
	if res.Reason != StopScheduler {
		t.Errorf("reason = %v, want scheduler stop once p2 is idle", res.Reason)
	}
}

func TestRunSchedulerErrors(t *testing.T) {
	t.Run("invalid proc id", func(t *testing.T) {
		res := Run(Config{
			Procs:     1,
			Object:    newRegObject(),
			Env:       OneShot(map[int]Invocation{1: {Op: "read"}}),
			Scheduler: FixedProcs([]int{5}),
		})
		// FixedProcs skips non-ready ids, so use a raw scheduler instead.
		_ = res
		res = Run(Config{
			Procs:  1,
			Object: newRegObject(),
			Env:    OneShot(map[int]Invocation{1: {Op: "read"}}),
			Scheduler: SchedulerFunc(func(v *View) (Decision, bool) {
				return Decision{Proc: 5}, true
			}),
		})
		if res.Reason != StopError || res.Err == nil {
			t.Errorf("want error for invalid process, got %v / %v", res.Reason, res.Err)
		}
	})
	t.Run("double crash", func(t *testing.T) {
		res := Run(Config{
			Procs:  2,
			Object: newRegObject(),
			Env:    Repeat(Invocation{Op: "read"}),
			Scheduler: Fixed([]Decision{
				{Proc: 1, Crash: true},
				{Proc: 1, Crash: true},
			}),
		})
		if res.Reason != StopError || res.Err == nil {
			t.Errorf("want error for double crash, got %v / %v", res.Reason, res.Err)
		}
	})
	t.Run("zero procs", func(t *testing.T) {
		res := Run(Config{})
		if res.Reason != StopError {
			t.Error("want error for zero processes")
		}
	})
}

func TestRunEventStepsMonotone(t *testing.T) {
	res := Run(Config{
		Procs:  2,
		Object: newRegObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: 1}, {Op: "read"}},
			2: {{Op: "read"}},
		}),
		Scheduler: Random(7),
	})
	if len(res.EventSteps) != len(res.H) {
		t.Fatalf("EventSteps length %d != history length %d", len(res.EventSteps), len(res.H))
	}
	for i := 1; i < len(res.EventSteps); i++ {
		if res.EventSteps[i] < res.EventSteps[i-1] {
			t.Fatalf("EventSteps not monotone at %d: %v", i, res.EventSteps)
		}
	}
}

func TestAlternateScheduler(t *testing.T) {
	res := Run(Config{
		Procs:     2,
		Object:    newRegObject(),
		Env:       Repeat(Invocation{Op: "read"}),
		Scheduler: Limit(Alternate(1, 2), 10),
	})
	if res.StepsBy[1] != 5 || res.StepsBy[2] != 5 {
		t.Errorf("steps = %v, want perfect alternation 5/5", res.StepsBy)
	}
}

func TestRandomCrashyInjectsAtMostMax(t *testing.T) {
	res := Run(Config{
		Procs:     3,
		Object:    newRegObject(),
		Env:       Repeat(Invocation{Op: "read"}),
		Scheduler: RandomCrashy(1, 0.2, 2),
		MaxSteps:  200,
	})
	crashes := 0
	for _, e := range res.H {
		if e.Kind == history.KindCrash {
			crashes++
		}
	}
	if crashes > 2 {
		t.Errorf("injected %d crashes, max 2", crashes)
	}
	if !res.H.WellFormed() {
		t.Error("history must stay well-formed under crashes")
	}
}

func TestQuickDeterminismPerSeed(t *testing.T) {
	// Two runs with the same seed must produce identical histories,
	// schedules, and step counts.
	f := func(seed int64, budget uint8) bool {
		steps := 10 + int(budget)%120
		mk := func() *Result {
			return Run(Config{
				Procs:  3,
				Object: newRegObject(),
				Env: Script(map[int][]Invocation{
					1: {{Op: "write", Arg: 1}, {Op: "read"}},
					2: {{Op: "read"}, {Op: "write", Arg: 2}},
					3: {{Op: "read"}},
				}),
				Scheduler: Random(seed),
				MaxSteps:  steps,
			})
		}
		a, b := mk(), mk()
		if !a.H.Equal(b.H) || a.Steps != b.Steps {
			return false
		}
		for i := range a.Schedule {
			if a.Schedule[i] != b.Schedule[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSeqScheduler(t *testing.T) {
	// First run p1 solo for its write, then p2 solo.
	res := Run(Config{
		Procs:  2,
		Object: newRegObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: 1}},
			2: {{Op: "read"}},
		}),
		Scheduler: Seq(Solo(1), Solo(2)),
	})
	ops := res.H.Operations()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[1].Proc != 2 || ops[1].Val != 1 {
		t.Errorf("p2 should read 1 after p1's solo write: %+v", ops[1])
	}
}
