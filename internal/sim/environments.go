package sim

// EnvironmentFunc adapts a function to the Environment interface.
type EnvironmentFunc func(proc int, v *View) (Invocation, bool)

// Next implements Environment.
func (f EnvironmentFunc) Next(proc int, v *View) (Invocation, bool) {
	return f(proc, v)
}

// OneShot gives each process exactly one invocation (from invs, keyed by
// process id) and then parks it. Processes without an entry are parked
// immediately. It models one-shot objects such as consensus.
func OneShot(invs map[int]Invocation) Environment {
	done := make(map[int]bool)
	return EnvironmentFunc(func(proc int, v *View) (Invocation, bool) {
		inv, ok := invs[proc]
		if !ok || done[proc] {
			return Invocation{}, false
		}
		done[proc] = true
		return inv, true
	})
}

// Script gives each process a fixed sequence of invocations, then parks it.
func Script(script map[int][]Invocation) Environment {
	next := make(map[int]int)
	return EnvironmentFunc(func(proc int, v *View) (Invocation, bool) {
		seq := script[proc]
		i := next[proc]
		if i >= len(seq) {
			return Invocation{}, false
		}
		next[proc] = i + 1
		return seq[i], true
	})
}

// Repeat makes every process invoke the same invocation forever (useful
// with step budgets).
func Repeat(inv Invocation) Environment {
	return EnvironmentFunc(func(proc int, v *View) (Invocation, bool) {
		return inv, true
	})
}

// RepeatPerProc makes each process invoke its own invocation forever.
// Processes without an entry are parked immediately. This is the standard
// environment for liveness evaluation: progress is "infinitely many good
// responses", so processes must keep invoking.
func RepeatPerProc(invs map[int]Invocation) Environment {
	return EnvironmentFunc(func(proc int, v *View) (Invocation, bool) {
		inv, ok := invs[proc]
		return inv, ok
	})
}
