package sim

import "repro/internal/history"

// EnvironmentFunc adapts a function to the Environment interface.
type EnvironmentFunc func(proc int, v *View) (Invocation, bool)

// Next implements Environment.
func (f EnvironmentFunc) Next(proc int, v *View) (Invocation, bool) {
	return f(proc, v)
}

// invokesBy counts the invocation events of proc in h: the number of
// operations the process has started, which is exactly the number of
// environment consultations it has consumed (each consultation's chosen
// operation is invoked before the next consultation). The stock
// environments derive their position from it instead of keeping mutable
// counters, which makes them stateless: a Session.Restore needs no
// environment rewind at all.
func invokesBy(h history.History, proc int) int {
	n := 0
	for i := range h {
		if h[i].Kind == history.KindInvoke && h[i].Proc == proc {
			n++
		}
	}
	return n
}

// statelessEnv implements the RewindableEnv hook for environments whose
// decisions are pure functions of (proc, view): there is no state to
// capture.
type statelessEnv struct{}

// EnvSnapshot implements RewindableEnv; stateless environments have
// nothing to capture.
func (statelessEnv) EnvSnapshot() any { return nil }

// EnvRestore implements RewindableEnv.
func (statelessEnv) EnvRestore(any) {}

// oneShotEnv gives each process exactly one invocation.
type oneShotEnv struct {
	statelessEnv
	invs map[int]Invocation
}

// Next implements Environment.
func (e *oneShotEnv) Next(proc int, v *View) (Invocation, bool) {
	inv, ok := e.invs[proc]
	if !ok || invokesBy(v.H, proc) > 0 {
		return Invocation{}, false
	}
	return inv, true
}

// OneShot gives each process exactly one invocation (from invs, keyed by
// process id) and then parks it. Processes without an entry are parked
// immediately. It models one-shot objects such as consensus.
func OneShot(invs map[int]Invocation) Environment {
	return &oneShotEnv{invs: invs}
}

// scriptEnv gives each process a fixed sequence of invocations.
type scriptEnv struct {
	statelessEnv
	script map[int][]Invocation
}

// Next implements Environment.
func (e *scriptEnv) Next(proc int, v *View) (Invocation, bool) {
	seq := e.script[proc]
	i := invokesBy(v.H, proc)
	if i >= len(seq) {
		return Invocation{}, false
	}
	return seq[i], true
}

// Script gives each process a fixed sequence of invocations, then parks it.
func Script(script map[int][]Invocation) Environment {
	return &scriptEnv{script: script}
}

// repeatEnv makes every process invoke the same invocation forever.
type repeatEnv struct {
	statelessEnv
	inv Invocation
}

// Next implements Environment.
func (e *repeatEnv) Next(proc int, v *View) (Invocation, bool) {
	return e.inv, true
}

// Repeat makes every process invoke the same invocation forever (useful
// with step budgets).
func Repeat(inv Invocation) Environment {
	return &repeatEnv{inv: inv}
}

// repeatPerProcEnv makes each process invoke its own invocation forever.
type repeatPerProcEnv struct {
	statelessEnv
	invs map[int]Invocation
}

// Next implements Environment.
func (e *repeatPerProcEnv) Next(proc int, v *View) (Invocation, bool) {
	inv, ok := e.invs[proc]
	return inv, ok
}

// RepeatPerProc makes each process invoke its own invocation forever.
// Processes without an entry are parked immediately. This is the standard
// environment for liveness evaluation: progress is "infinitely many good
// responses", so processes must keep invoking.
func RepeatPerProc(invs map[int]Invocation) Environment {
	return &repeatPerProcEnv{invs: invs}
}
