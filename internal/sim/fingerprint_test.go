package sim

import (
	"testing"

	"repro/internal/base"
	"repro/internal/history"
)

// fpObject is a two-register object with the fingerprint hook: each
// process writes its own register, so different schedules can reach the
// identical state.
type fpObject struct {
	a, b *base.Register
}

func newFPObject() *fpObject {
	return &fpObject{a: base.NewRegister("a", 0), b: base.NewRegister("b", 0)}
}

func (o *fpObject) Apply(p *Proc, inv Invocation) history.Value {
	switch inv.Op {
	case "write":
		if p.ID() == 1 {
			o.a.Write(p, inv.Arg)
		} else {
			o.b.Write(p, inv.Arg)
		}
		return history.OK
	case "read":
		if p.ID() == 1 {
			return o.a.Read(p)
		}
		return o.b.Read(p)
	}
	return nil
}

func (o *fpObject) Fingerprint(f *Fingerprinter) {
	o.a.Fingerprint(f)
	o.b.Fingerprint(f)
}

// fpRun replays the process sequence against a fresh fpObject with
// fingerprinting on.
func fpRun(t *testing.T, procs []int, script map[int][]Invocation) *Result {
	t.Helper()
	res := Run(Config{
		Procs:       2,
		Object:      newFPObject(),
		Env:         Script(script),
		Scheduler:   FixedProcs(procs),
		Fingerprint: true,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if !res.Fingerprinted {
		t.Fatal("run did not fingerprint despite Config.Fingerprint and the object hook")
	}
	return res
}

// TestFingerprintSameStateAcrossSchedules: two different interleavings
// that reach the identical configuration — same register contents, both
// processes done — must produce the identical fingerprint.
func TestFingerprintSameStateAcrossSchedules(t *testing.T) {
	script := map[int][]Invocation{
		1: {{Op: "write", Arg: 7}},
		2: {{Op: "write", Arg: 9}},
	}
	// p1 fully, then p2 — versus interleaved — versus p2 first.
	orders := [][]int{
		{1, 1, 2, 2},
		{1, 2, 1, 2},
		{2, 2, 1, 1},
		{2, 1, 2, 1},
	}
	want := fpRun(t, orders[0], script).Fingerprint
	for _, o := range orders[1:] {
		if got := fpRun(t, o, script).Fingerprint; got != want {
			t.Errorf("order %v: fingerprint %#x != %#x (same final state must fingerprint equal)", o, got, want)
		}
	}
}

// TestFingerprintDistinguishesState: different register contents, a
// different pending invocation, or a crash must all change the
// fingerprint.
func TestFingerprintDistinguishesState(t *testing.T) {
	base := fpRun(t, []int{1, 1, 2, 2}, map[int][]Invocation{
		1: {{Op: "write", Arg: 7}},
		2: {{Op: "write", Arg: 9}},
	})
	differentValue := fpRun(t, []int{1, 1, 2, 2}, map[int][]Invocation{
		1: {{Op: "write", Arg: 8}},
		2: {{Op: "write", Arg: 9}},
	})
	if base.Fingerprint == differentValue.Fingerprint {
		t.Error("different register contents fingerprint equal")
	}
	midOperation := fpRun(t, []int{1, 1, 2}, map[int][]Invocation{
		1: {{Op: "write", Arg: 7}},
		2: {{Op: "write", Arg: 9}},
	})
	if base.Fingerprint == midOperation.Fingerprint {
		t.Error("pending invocation fingerprints equal to completed one")
	}
	differentArg := fpRun(t, []int{1, 1, 2}, map[int][]Invocation{
		1: {{Op: "write", Arg: 7}},
		2: {{Op: "write", Arg: 10}},
	})
	if midOperation.Fingerprint == differentArg.Fingerprint {
		t.Error("different pending arguments fingerprint equal")
	}
}

// TestFingerprintObservations: two configurations that agree on object
// state, program counters, pending invocations and crash set but
// differ in what a process READ mid-operation must fingerprint
// differently — the read value is live local state that determines the
// process's next move (the stale-test-and-set distinction DESIGN.md's
// soundness argument leans on).
func TestFingerprintObservations(t *testing.T) {
	obsOf := func(procs []int) uint64 {
		res := Run(Config{
			Procs:       2,
			Object:      &sharedRegObject{r: base.NewRegister("s", 0)},
			Env:         Script(map[int][]Invocation{1: {{Op: "read"}}, 2: {{Op: "write", Arg: 5}, {Op: "write", Arg: 0}}}),
			Scheduler:   FixedProcs(procs),
			Fingerprint: true,
		})
		if res.Err != nil || !res.Fingerprinted {
			t.Fatalf("run failed: %v (fingerprinted=%v)", res.Err, res.Fingerprinted)
		}
		return res.Fingerprint
	}
	// p1's read step runs while the register is 0 (before p2's writes)
	// versus while it is 5 (between them); p2 then restores 0, so both
	// runs end with the identical object state, statuses and counters.
	before := obsOf([]int{1, 1, 2, 2, 2, 2})
	during := obsOf([]int{2, 2, 1, 1, 2, 2})
	if before == during {
		t.Error("different mid-operation observations fingerprint equal")
	}
}

// sharedRegObject reads/writes one shared register; "read" performs a
// probe step (the observation) and then parks the process, keeping the
// operation pending so the observed value stays live local state.
type sharedRegObject struct {
	r *base.Register
}

func (o *sharedRegObject) Apply(p *Proc, inv Invocation) history.Value {
	switch inv.Op {
	case "read":
		v := o.r.Read(p)
		p.Block()
		return v
	case "write":
		o.r.Write(p, inv.Arg)
		return history.OK
	}
	return nil
}

func (o *sharedRegObject) Fingerprint(f *Fingerprinter) { o.r.Fingerprint(f) }

// TestFingerprintOffByDefault: without Config.Fingerprint the result
// carries no fingerprint even when the object has the hook.
func TestFingerprintOffByDefault(t *testing.T) {
	res := Run(Config{
		Procs:     2,
		Object:    newFPObject(),
		Env:       Script(map[int][]Invocation{1: {{Op: "write", Arg: 1}}}),
		Scheduler: FixedProcs([]int{1, 1}),
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.Fingerprinted {
		t.Error("Fingerprinted set without Config.Fingerprint")
	}
}

// TestFingerprintLazyArgPoisons: a LazyArg resolves against the
// scheduling-time view, so no configuration fingerprint can stand in
// for the process's local state; the run must refuse to fingerprint.
func TestFingerprintLazyArgPoisons(t *testing.T) {
	res := Run(Config{
		Procs:  2,
		Object: newFPObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: LazyArg(func(v *View) history.Value { return len(v.H) })}},
		}),
		Scheduler:   FixedProcs([]int{1, 1}),
		Fingerprint: true,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.Fingerprinted {
		t.Error("LazyArg run still fingerprinted; lazy resolution must poison the fingerprint")
	}
}

// TestFingerprintNestedPointerPoisons: fmt only dereferences a pointer
// at the top level, so a value carrying a pointer below the top level
// would encode raw addresses — nondeterministic across runs and, with
// allocator reuse, collidable across distinct states. Val must detect
// such values and poison the fingerprint instead of encoding them.
func TestFingerprintNestedPointerPoisons(t *testing.T) {
	type inner struct{ n int }
	type nested struct{ p *inner }
	type record struct{ a, b int }

	cases := []struct {
		name   string
		v      history.Value
		poison bool
	}{
		{"int", 7, false},
		{"string", "x", false},
		{"comparable struct", record{1, 2}, false},
		{"top-level pointer to struct", &record{1, 2}, false},
		{"slice of scalars", []int{1, 2}, false},
		{"map of scalars", map[string]int{"a": 1}, false},
		{"slice of interface-wrapped scalars", []history.Value{1, "x"}, false},
		{"struct with nil pointer field", nested{}, false},
		{"top-level pointer to scalar", new(int), true},
		{"struct with pointer field", nested{p: &inner{n: 3}}, true},
		{"pointer to struct with pointer field", &nested{p: &inner{n: 4}}, true},
		{"slice of pointers", []*inner{{n: 1}}, true},
		{"struct with interface holding pointer", struct{ v any }{v: new(int)}, true},
		{"func", func() {}, true},
		{"stringer", fpStringer{n: 1}, true},
	}
	for _, tc := range cases {
		f := NewFingerprinter()
		f.Val(tc.v)
		if f.Poisoned() != tc.poison {
			t.Errorf("%s: Poisoned() = %v, want %v", tc.name, f.Poisoned(), tc.poison)
		}
	}
}

// TestFingerprintValInjective: Val's canonical encoding must separate
// values that fmt's %v renders identically — %v space-joins composite
// elements, so []string{"x y"} and []string{"x", "y"} both print
// "[x y]"; a fingerprint built on %v would equate the two states and
// let the cache prune a subtree with genuinely different futures.
func TestFingerprintValInjective(t *testing.T) {
	type pair struct{ A, B string }
	cases := []struct {
		name string
		a, b history.Value
	}{
		{"slice element split", []string{"x y"}, []string{"x", "y"}},
		{"struct field boundary", pair{"a b", "c"}, pair{"a", "b c"}},
		{"map key/value boundary", map[string]string{"a:b": "c"}, map[string]string{"a": "b:c"}},
		{"dynamic type", int32(1), int64(1)},
	}
	for _, tc := range cases {
		fa, fb := NewFingerprinter(), NewFingerprinter()
		fa.Val(tc.a)
		fb.Val(tc.b)
		if fa.Poisoned() || fb.Poisoned() {
			t.Errorf("%s: values unexpectedly poisoned", tc.name)
			continue
		}
		if fa.Sum() == fb.Sum() {
			t.Errorf("%s: %#v and %#v fingerprint equal", tc.name, tc.a, tc.b)
		}
	}
}

// fpStringer exercises the %v method-dispatch escape hatch: String()
// bypasses structural printing, so the walk must refuse the type even
// though its fields are scalars.
type fpStringer struct{ n int }

func (fpStringer) String() string { return "s" }

// TestFingerprintNestedPointerValuePoisonsRun: a run whose script feeds
// a nested-pointer value through the object must refuse to fingerprint,
// same as a LazyArg run, rather than produce an address-dependent one.
func TestFingerprintNestedPointerValuePoisonsRun(t *testing.T) {
	type inner struct{ n int }
	type nested struct{ p *inner }
	res := Run(Config{
		Procs:  2,
		Object: newFPObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: nested{p: &inner{n: 3}}}},
		}),
		Scheduler:   FixedProcs([]int{1, 1}),
		Fingerprint: true,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.Fingerprinted {
		t.Error("nested-pointer value run still fingerprinted; it must poison the fingerprint")
	}
}

// TestFingerprintCrashSet: crashing a process changes the fingerprint
// even when object state and everyone's progress are unchanged.
func TestFingerprintCrashSet(t *testing.T) {
	clean := fpRun(t, []int{1, 1}, map[int][]Invocation{
		1: {{Op: "write", Arg: 7}},
		2: {{Op: "write", Arg: 9}},
	})
	crashed := Run(Config{
		Procs:  2,
		Object: newFPObject(),
		Env: Script(map[int][]Invocation{
			1: {{Op: "write", Arg: 7}},
			2: {{Op: "write", Arg: 9}},
		}),
		Scheduler:   Seq(FixedProcs([]int{1, 1}), Fixed([]Decision{{Proc: 2, Crash: true}})),
		Fingerprint: true,
	})
	if crashed.Err != nil || !crashed.Fingerprinted {
		t.Fatalf("crash run failed: %v (fingerprinted=%v)", crashed.Err, crashed.Fingerprinted)
	}
	if clean.Fingerprint == crashed.Fingerprint {
		t.Error("crashing a process left the fingerprint unchanged")
	}
}
