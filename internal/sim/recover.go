package sim

// Recoverable is the opt-in crash–recovery hook: an Object implementing
// it splits its state into a durable part that survives crashes and a
// volatile part that does not, and provides the recovery routine a
// recovering process runs before rejoining its workload.
//
// CrashVolatile is invoked at every crash decision, whether or not the
// run has a recovery budget: it must wipe (reset to their initial or
// empty values) exactly the object's volatile components, leaving the
// durable ones untouched. It runs between granted windows and must not
// call Proc hooks.
//
// RecoverFrame is invoked at every recover decision: it returns the
// recovery routine as a continuation Frame, stepped under the
// recovering process's granted windows exactly like an operation frame
// (each Step is one base-object access plus trailing local code),
// except that its completion records no response event — recovery is
// not an operation. A nil frame means recovery needs no shared-memory
// work: the process re-enters its workload immediately. The frame
// learns the recovering process from the *Proc passed to Step.
//
// Objects not implementing the hook still support recover decisions:
// all their state is treated as durable and recovery runs no routine —
// the classic crash-restart model where only the process's volatile
// continuation (its in-flight operation and its chosen-but-uninvoked
// next invocation) is lost.
//
// Composition contract: volatile state wiped by CrashVolatile and any
// state the recovery routine mutates must still be covered by the usual
// hooks — Snapshot/Restore (sessions rewind across crash and recover
// decisions), Fingerprint (two configurations differing only in
// volatile state must digest differently), and Footprints (recovery
// steps declare their accesses like any other step).
type Recoverable interface {
	Object
	CrashVolatile()
	RecoverFrame() Frame
}
