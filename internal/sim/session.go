package sim

import (
	"errors"
	"fmt"

	"repro/internal/history"
)

// Snapshottable is the opt-in snapshot hook of the incremental
// exploration engine: a Session can rewind an Object implementing it to
// an earlier configuration instead of re-executing the whole schedule
// prefix from the initial state. Implementing it promises that
//
//  1. Snapshot returns a value capturing ALL state that outlives a
//     single granted step and is not process-goroutine-local — for
//     implementations built from internal/base objects, each base
//     object's Snapshot in a fixed order, plus any composite-level
//     state (lazy allocations, per-process operation contexts) — such
//     that Restore(s) brings the object back to behavior
//     indistinguishable from the moment Snapshot was called.
//  2. Restore never adopts the snapshot value mutably: the engine
//     restores the same snapshot many times (including twice around a
//     single rewind), so Restore must copy what it cannot treat as
//     immutable, and Snapshot must return data later mutations of the
//     object cannot reach.
//  3. Every value Apply reads from shared state into process-local
//     variables is reported via Proc.Observe, and every step closure
//     (and every composite-level read of state mutated within an
//     in-flight operation) consults Proc.Replaying: when true it takes
//     the value from Proc.Replayed instead of the real access and skips
//     every mutation. internal/base objects do all of this
//     automatically; see the slx test objects for the hand-rolled
//     single-step pattern.
//  4. Apply is deterministic given the invocation and the observed
//     values (which the simulator already requires for replay).
//
// Unlike Fingerprintable, pointer identity is no obstacle: a snapshot
// may hold pointers to immutable records (the CAS idiom), since Restore
// reinstates the exact pointers. Objects without the hook are simply
// executed by from-root replay; exploration's soundness never depends
// on Snapshottable being implemented or implementable.
type Snapshottable interface {
	Object
	// Snapshot captures the object's current state.
	Snapshot() any
	// Restore reinstates a state previously returned by Snapshot.
	Restore(any)
}

// SessionGated is optionally implemented alongside Snapshottable by
// objects whose snapshot support depends on runtime composition (e.g. a
// TM with a pluggable snapshot component): Snapshotting() == false
// vetoes incremental execution and the exploration engine falls back to
// from-root replay, exactly as if the hook were absent.
type SessionGated interface {
	Snapshotting() bool
}

// CanSnapshot reports whether an object supports session execution: it
// implements Snapshottable and does not veto it via SessionGated.
func CanSnapshot(o Object) bool {
	if _, ok := o.(Snapshottable); !ok {
		return false
	}
	if g, ok := o.(SessionGated); ok && !g.Snapshotting() {
		return false
	}
	return true
}

// SessionConfig describes a persistent incremental simulation.
type SessionConfig struct {
	// Procs is the number of processes n (1-based ids 1..n).
	Procs int
	// Object is the implementation under test; it must implement
	// Snapshottable. The session owns and mutates it.
	Object Object
	// NewEnv creates an environment instance. A factory rather than an
	// instance: every Restore that rebuilds a process replaces the
	// environment with a fresh one fast-forwarded to the restored
	// configuration. Incremental execution therefore supports
	// environments that decide each invocation from the invoking
	// process's identity, its own invocation count, and its own
	// projection of the history (all repository environments qualify);
	// environments inspecting other View fields need replay execution.
	NewEnv func() Environment
	// Fingerprint enables configuration fingerprints (Session.Fingerprint)
	// when the Object also implements Fingerprintable.
	Fingerprint bool
}

// Session is a live simulation that supports incremental extension
// (Extend: grant exactly one more scheduler decision, reusing the
// running process goroutines) and backtracking (Mark/Restore: rewind to
// an earlier configuration on the current execution path). Exploration
// uses it to visit each schedule-tree edge in amortized O(1) simulator
// steps instead of replaying every prefix from the root.
//
// A Restore rewinds three kinds of state: the object (via its
// Snapshottable hook), the runtime bookkeeping (history, step counts,
// statuses), and each process's goroutine. Goroutine stacks cannot be
// copied, so a process that stepped since the mark is rebuilt: its
// goroutine is unwound and respawned, and its pending operation is
// re-executed with every shared-state read answered from the read log
// recorded live (Proc.Observe) — so the rebuilt local frames are exactly
// the marked ones, without touching (or depending on) shared state.
//
// Sessions are not safe for concurrent use; marks may only be restored
// on the path that created them (a mark is a prefix of the current
// execution).
type Session struct {
	rt     *runtime
	obj    Snapshottable
	newEnv func() Environment
	closed bool
}

// NewSession starts a session positioned at the initial configuration.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Procs < 1 {
		return nil, errors.New("sim: session Procs must be >= 1")
	}
	if !CanSnapshot(cfg.Object) {
		return nil, fmt.Errorf("sim: session object %T does not support snapshots", cfg.Object)
	}
	obj := cfg.Object.(Snapshottable)
	if cfg.NewEnv == nil {
		return nil, errors.New("sim: session requires NewEnv")
	}
	r := newRuntime(Config{
		Procs:       cfg.Procs,
		Object:      cfg.Object,
		Fingerprint: cfg.Fingerprint,
	}, cfg.NewEnv())
	r.enableCtl()
	r.sess = true
	r.sessReads = make([][]history.Value, cfg.Procs+1)
	s := &Session{rt: r, obj: obj, newEnv: cfg.NewEnv}
	// Start processes one at a time so initial readiness is deterministic
	// (mirrors sim.Run).
	for id := 1; id <= cfg.Procs; id++ {
		r.spawn(id)
	}
	return s, nil
}

// StepInfo reports what one Extend did.
type StepInfo struct {
	// Delta holds the events the decision recorded, capacity-clipped so
	// appends elsewhere can never overwrite them (monitors may retain
	// the slice).
	Delta history.History
	// Access is the footprint of the decision (zero/unknown when the
	// object does not track footprints), matching Result.Accesses.
	Access Access
	// Steps is the number of simulator steps granted: 0 for a crash
	// decision, 1 otherwise.
	Steps int
}

// Extend applies one scheduler decision to the live configuration. The
// decision must be valid (a ready process, or a crash of a non-crashed
// process), exactly as for a sim.Run scheduler.
func (s *Session) Extend(d Decision) (StepInfo, error) {
	r := s.rt
	if err := s.usable(); err != nil {
		return StepInfo{}, err
	}
	evBefore := len(r.h)
	stepsBefore := r.steps
	if err := r.applyDecision(d); err != nil {
		return StepInfo{}, err
	}
	info := StepInfo{
		Delta: r.h[evBefore:len(r.h):len(r.h)],
		Steps: r.steps - stepsBefore,
	}
	if r.track && len(r.accesses) > 0 {
		info.Access = r.accesses[len(r.accesses)-1]
	}
	return info, nil
}

// Ready returns the sorted ids of processes currently awaiting a step.
func (s *Session) Ready() []int {
	return s.ReadyAppend(nil)
}

// ReadyAppend appends the sorted ids of processes currently awaiting a
// step to dst and returns the extended slice. Callers that consult
// readiness once per simulated step (the sampling engine's schedule
// loop) reuse one buffer across calls instead of allocating per step.
func (s *Session) ReadyAppend(dst []int) []int {
	r := s.rt
	for id := 1; id <= r.cfg.Procs; id++ {
		if r.status[id] == statusReady {
			dst = append(dst, id)
		}
	}
	return dst
}

// History returns the external history of the current configuration,
// capacity-clipped against later appends.
func (s *Session) History() history.History {
	return s.rt.h[:len(s.rt.h):len(s.rt.h)]
}

// Steps returns the number of simulator steps granted so far (rebuild
// re-execution excluded).
func (s *Session) Steps() int { return s.rt.steps }

// Fingerprint computes the canonical configuration fingerprint, exactly
// as Result.Fingerprint would report it for a from-root replay of the
// same schedule. ok is false when the session does not fingerprint
// (SessionConfig.Fingerprint off, object not Fingerprintable) or the
// execution was poisoned (LazyArg, unencodable value).
func (s *Session) Fingerprint() (uint64, bool) {
	r := s.rt
	if !r.fpTrack || r.fpPoisoned {
		return 0, false
	}
	return r.fingerprint()
}

// Mark captures the current configuration for a later Restore.
type Mark struct {
	obj      any
	hLen     int
	schedLen int
	accLen   int
	steps    int
	poisoned bool
	procs    []procMark // index 0 unused
}

// procMark is one process's control state at a mark.
type procMark struct {
	status    procStatus
	stepsBy   int
	completed int
	opSteps   int
	obs       uint64
	pending   *Invocation
	reads     []history.Value
}

// Mark snapshots the current configuration. The live buffers are
// capacity-clipped so later appends reallocate instead of overwriting
// state the mark still references.
func (s *Session) Mark() *Mark {
	r := s.rt
	m := &Mark{
		obj:      s.obj.Snapshot(),
		hLen:     len(r.h),
		schedLen: len(r.schedule),
		accLen:   len(r.accesses),
		steps:    r.steps,
		poisoned: r.fpPoisoned,
		procs:    make([]procMark, r.cfg.Procs+1),
	}
	r.h = r.h[:len(r.h):len(r.h)]
	r.eventSteps = r.eventSteps[:len(r.eventSteps):len(r.eventSteps)]
	r.schedule = r.schedule[:len(r.schedule):len(r.schedule)]
	r.accesses = r.accesses[:len(r.accesses):len(r.accesses)]
	for id := 1; id <= r.cfg.Procs; id++ {
		pm := &m.procs[id]
		pm.status = r.status[id]
		pm.stepsBy = r.stepsBy[id]
		pm.completed = r.fpCompleted[id]
		pm.opSteps = r.fpOpSteps[id]
		pm.pending = r.fpPending[id]
		if r.fpTrack {
			pm.obs = r.fpObs[id]
		}
		reads := r.sessReads[id]
		pm.reads = reads[:len(reads):len(reads)]
		r.sessReads[id] = pm.reads
	}
	return m
}

// Restore rewinds the session to a mark taken earlier on the current
// execution path. It returns the number of rebuild steps re-executed
// (re-granted pending-operation steps of processes whose goroutines had
// to be respawned) so callers can account re-simulation work.
func (s *Session) Restore(m *Mark) (int, error) {
	r := s.rt
	if err := s.usable(); err != nil {
		return 0, err
	}
	// Fast path: the configuration has not moved (or only needs status
	// rewinds after crash decisions, handled below).
	if r.steps == m.steps && len(r.h) == m.hLen {
		same := true
		for id := 1; id <= r.cfg.Procs; id++ {
			if r.status[id] != m.procs[id].status {
				same = false
				break
			}
		}
		if same {
			return 0, nil
		}
	}

	// Rewind runtime bookkeeping. Truncations capacity-clip: property
	// monitors retain delta slices of the old suffix, which appends past
	// the truncation point must never overwrite.
	r.h = r.h[:m.hLen:m.hLen]
	r.eventSteps = r.eventSteps[:m.hLen:m.hLen]
	r.schedule = r.schedule[:m.schedLen:m.schedLen]
	r.accesses = r.accesses[:m.accLen:m.accLen]
	r.steps = m.steps
	r.fpPoisoned = m.poisoned

	// A process whose step count moved since the mark has goroutine
	// frames the mark does not describe: it must be rebuilt. Everyone
	// else took no granted steps, so their frames (and read logs,
	// pending invocations, environment positions) are exactly the
	// mark's; only their status can differ, via crash decisions.
	rebuilds := false
	for id := 1; id <= r.cfg.Procs; id++ {
		if r.stepsBy[id] != m.procs[id].stepsBy {
			rebuilds = true
			break
		}
	}
	if !rebuilds {
		for id := 1; id <= r.cfg.Procs; id++ {
			r.status[id] = m.procs[id].status
		}
		return 0, nil
	}

	// Restore the object before rebuilding (composite-level reads during
	// the rebuild observe mark state) and again after (composite-level
	// side effects of re-executed operation code — local contexts, lazy
	// allocations — are reverted; base-object accesses are already
	// suppressed by the injection machinery).
	s.obj.Restore(m.obj)
	r.env = s.newEnv()
	respAfter := r.responseIndices()
	granted := 0
	for id := 1; id <= r.cfg.Procs; id++ {
		pm := &m.procs[id]
		if r.stepsBy[id] == pm.stepsBy {
			r.status[id] = pm.status
			// Keep the parked goroutine, but position the fresh
			// environment past every invocation this process has
			// consumed: its completed operations plus the one its loop
			// already holds (or consumed returning idle).
			s.fastForward(id, pm.completed+1, respAfter)
			continue
		}
		granted += s.rebuildProc(id, pm, respAfter)
		if r.desync != nil {
			return granted, r.desync
		}
	}
	s.obj.Restore(m.obj)
	return granted, nil
}

// rebuildProc respawns process id's goroutine in the mark's state: its
// environment is fast-forwarded, the goroutine restarted, and its
// pending operation re-executed with reads injected from the mark's
// read log. Returns the number of re-granted steps.
func (s *Session) rebuildProc(id int, pm *procMark, respAfter [][]int) int {
	r := s.rt
	// Unwind the old goroutine if it is still parked on a grant (ready
	// or crashed); idle and blocked goroutines have already exited.
	if p := r.procs[id]; p != nil && (r.status[id] == statusReady || r.status[id] == statusCrashed) {
		close(p.halt)
		<-p.dead
	}
	r.procs[id] = nil
	r.stepsBy[id] = pm.stepsBy
	r.fpCompleted[id] = pm.completed
	r.fpOpSteps[id] = pm.opSteps
	r.fpPending[id] = pm.pending
	if r.fpTrack {
		r.fpObs[id] = pm.obs
	}
	r.sessReads[id] = pm.reads
	s.fastForward(id, pm.completed, respAfter)

	r.rebuildActive = true
	r.rebuildProc = id
	r.rebuildInv = pm.pending
	r.rebuildReads = pm.reads
	r.rebuildIdx = 0
	r.rebuildView = s.histView(id, pm.completed+1, respAfter)
	defer func() {
		r.rebuildActive = false
		r.rebuildInv = nil
		r.rebuildReads = nil
		r.rebuildView = nil
	}()

	r.spawn(id)
	granted := 0
	if pm.pending != nil {
		for j := 0; j < pm.opSteps; j++ {
			if r.status[id] != statusReady {
				r.desync = fmt.Errorf("sim: session restore desynchronized: process %d stopped after %d of %d rebuild steps", id, j, pm.opSteps)
				return granted
			}
			p := r.procs[id]
			p.grant <- struct{}{}
			r.status[id] = <-p.sync
			granted++
		}
		if r.desync == nil && r.rebuildIdx != len(r.rebuildReads) {
			r.desync = fmt.Errorf("sim: session restore desynchronized: process %d replayed %d of %d recorded reads", id, r.rebuildIdx, len(r.rebuildReads))
			return granted
		}
	}
	if r.desync == nil && r.status[id] != pm.status {
		r.desync = fmt.Errorf("sim: session restore desynchronized: process %d rebuilt into status %d, marked %d", id, r.status[id], pm.status)
		return granted
	}
	r.status[id] = pm.status
	return granted
}

// responseIndices returns, per process, the history index just past
// each of its response events, in order — the points at which the
// process consulted the environment for its next invocation.
func (r *runtime) responseIndices() [][]int {
	out := make([][]int, r.cfg.Procs+1)
	for i := range r.h {
		if r.h[i].Kind == history.KindResponse {
			out[r.h[i].Proc] = append(out[r.h[i].Proc], i+1)
		}
	}
	return out
}

// histView reconstructs the view process id saw when it made its
// call-th environment consultation: the history truncated just after
// its (call-1)-th response (empty for the first call). Only H and Steps
// are populated; see SessionConfig.NewEnv for the environment contract.
func (s *Session) histView(id, call int, respAfter [][]int) *View {
	r := s.rt
	k := 0
	if call >= 2 {
		ra := respAfter[id]
		i := call - 2
		if i >= len(ra) {
			i = len(ra) - 1
		}
		if i >= 0 {
			k = ra[i]
		}
	}
	v := &View{H: r.h[:k:k]}
	if k > 0 {
		v.Steps = r.eventSteps[k-1]
	}
	return v
}

// fastForward advances the (fresh) environment past process id's first
// `calls` consultations, presenting each with its historical view.
func (s *Session) fastForward(id, calls int, respAfter [][]int) {
	for j := 1; j <= calls; j++ {
		s.rt.env.Next(id, s.histView(id, j, respAfter))
	}
}

// usable returns the sticky error state of the session.
func (s *Session) usable() error {
	if s.closed {
		return errors.New("sim: session is closed")
	}
	if s.rt.desync != nil {
		return s.rt.desync
	}
	return nil
}

// Close shuts the session down, unwinding every process goroutine. The
// session's history remains readable; Extend/Restore fail afterwards.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.rt.shutdown()
}
