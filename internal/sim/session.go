package sim

import (
	"errors"
	"fmt"

	"repro/internal/history"
)

// Snapshottable is the state-capture half of the incremental execution
// engine's object contract: a Session rewinds an Object implementing it
// to an earlier configuration instead of re-executing the whole
// schedule prefix from the initial state. Implementing it promises that
//
//  1. Snapshot returns a value capturing ALL state that outlives a
//     single granted step and is not held in continuation frames — for
//     implementations built from internal/base objects, each base
//     object's Snapshot in a fixed order, plus any composite-level
//     state (lazy allocations, per-process operation contexts) — such
//     that Restore(s) brings the object back to behavior
//     indistinguishable from the moment Snapshot was called.
//  2. Restore never adopts the snapshot value mutably: the engine
//     restores the same snapshot many times (including twice around a
//     single rewind), so Restore must copy what it cannot treat as
//     immutable, and Snapshot must return data later mutations of the
//     object cannot reach.
//  3. State local to one in-flight operation lives in its Frame (see
//     Stepped), not in the object: the Session forks frames on Mark and
//     Restore, so anything a frame reaches by pointer must either be
//     covered by Snapshot/Restore or be deep-copied by Frame.Fork.
//  4. Apply (and the equivalent Stepped machine) is deterministic given
//     the invocation and the observed values (which the simulator
//     already requires for replay).
//
// Unlike Fingerprintable, pointer identity is no obstacle: a snapshot
// may hold pointers to immutable records (the CAS idiom), since Restore
// reinstates the exact pointers. Objects without the hook are simply
// executed by from-root replay; exploration's soundness never depends
// on Snapshottable being implemented or implementable.
type Snapshottable interface {
	Object
	// Snapshot captures the object's current state.
	Snapshot() any
	// Restore reinstates a state previously returned by Snapshot.
	Restore(any)
}

// SessionGated is optionally implemented alongside Snapshottable by
// objects whose snapshot support depends on runtime composition (e.g. a
// TM with a pluggable snapshot component): Snapshotting() == false
// vetoes incremental execution and the exploration engine falls back to
// from-root replay, exactly as if the hook were absent.
type SessionGated interface {
	Snapshotting() bool
}

// CanSnapshot reports whether an object supports session execution: it
// implements both Snapshottable and Stepped (the continuation runtime
// executes exclusively through Stepped frames) and does not veto
// sessions via SessionGated.
func CanSnapshot(o Object) bool {
	if _, ok := o.(Snapshottable); !ok {
		return false
	}
	if _, ok := o.(Stepped); !ok {
		return false
	}
	if g, ok := o.(SessionGated); ok && !g.Snapshotting() {
		return false
	}
	return true
}

// RewindableEnv is the optional fast-rewind hook for environments used
// under a Session: EnvSnapshot captures the environment's decision
// state and EnvRestore reinstates it, making Session.Restore a pure
// struct copy. The usual Snapshot contract applies (the same snapshot
// may be restored many times; EnvRestore must not adopt it mutably).
// Environments without the hook still work: Restore falls back to a
// fresh NewEnv() fast-forwarded through each process's historical
// consultations, which supports any environment deciding invocations
// from the invoking process's identity, its own invocation count, and
// its own projection of the history.
type RewindableEnv interface {
	Environment
	EnvSnapshot() any
	EnvRestore(any)
}

// SessionConfig describes a persistent incremental simulation.
type SessionConfig struct {
	// Procs is the number of processes n (1-based ids 1..n).
	Procs int
	// Object is the implementation under test; it must implement
	// Snapshottable and Stepped (see CanSnapshot). The session owns and
	// mutates it.
	Object Object
	// NewEnv creates an environment instance. A factory rather than an
	// instance: when the environment does not implement RewindableEnv,
	// every Restore replaces it with a fresh one fast-forwarded to the
	// restored configuration. Incremental execution therefore supports
	// environments that decide each invocation from the invoking
	// process's identity, its own invocation count, and its own
	// projection of the history (all repository environments qualify);
	// environments inspecting other View fields need replay execution.
	NewEnv func() Environment
	// Fingerprint enables configuration fingerprints (Session.Fingerprint)
	// when the Object also implements Fingerprintable.
	Fingerprint bool
}

// Session is a live simulation that supports incremental extension
// (Extend: apply exactly one more scheduler decision) and backtracking
// (Mark/Restore: rewind to an earlier configuration on the current
// execution path). Exploration uses it to visit each schedule-tree edge
// in O(1) simulator steps instead of replaying every prefix from the
// root.
//
// The session runs no goroutines: each process's in-flight operation is
// an explicit continuation Frame (see Stepped), and a decision is
// dispatched as a direct call into the object's state machine. Restore
// is therefore a plain struct copy — object snapshot, per-process
// control state, forked frames — with zero re-executed steps.
//
// Sessions are not safe for concurrent use; marks may only be restored
// on the path that created them (a mark is a prefix of the current
// execution).
type Session struct {
	rt     *runtime
	obj    Snapshottable
	newEnv func() Environment
	renv   RewindableEnv // non-nil when the env supports fast rewind
	closed bool
	free   *Mark // freelist of Released marks, linked through Mark.link
}

// NewSession starts a session positioned at the initial configuration.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Procs < 1 {
		return nil, errors.New("sim: session Procs must be >= 1")
	}
	if !CanSnapshot(cfg.Object) {
		return nil, fmt.Errorf("sim: session object %T does not support snapshots", cfg.Object)
	}
	obj := cfg.Object.(Snapshottable)
	if cfg.NewEnv == nil {
		return nil, errors.New("sim: session requires NewEnv")
	}
	r := newRuntime(Config{
		Procs:       cfg.Procs,
		Object:      cfg.Object,
		Fingerprint: cfg.Fingerprint,
	}, cfg.NewEnv())
	r.enableCtl()
	r.direct = true
	r.stepped = cfg.Object.(Stepped)
	r.frames = make([]Frame, cfg.Procs+1)
	r.next = make([]Invocation, cfg.Procs+1)
	r.hasNext = make([]bool, cfg.Procs+1)
	s := &Session{rt: r, obj: obj, newEnv: cfg.NewEnv}
	s.renv, _ = r.env.(RewindableEnv)
	for id := 1; id <= cfg.Procs; id++ {
		r.procs[id] = &Proc{id: id, n: cfg.Procs, rt: r}
	}
	// Consult the environment for each process's first invocation, one
	// process at a time so initial readiness is deterministic (mirrors
	// sim.Run's spawn order: process id sees the statuses of 1..id-1).
	for id := 1; id <= cfg.Procs; id++ {
		r.consultEnv(id)
	}
	return s, nil
}

// consultEnv asks the environment for process id's next invocation and
// records the outcome in the per-process control state. The process's
// own status must still be its pre-consultation value (ready mid-run,
// unset at startup), matching what the goroutine runtime's view shows.
func (r *runtime) consultEnv(id int) {
	r.envCalls++
	if inv, ok := r.env.Next(id, r.sessionView()); ok {
		r.next[id] = inv
		r.hasNext[id] = true
		r.status[id] = statusReady
	} else {
		r.hasNext[id] = false
		r.status[id] = statusIdle
	}
}

// sessionView rebuilds the runtime's reusable view. The view and its
// slices are valid only until the next session operation; environments
// and LazyArgs must not retain them.
func (r *runtime) sessionView() *View {
	v := &r.vw
	v.H = r.h[:len(r.h):len(r.h)]
	v.Steps = r.steps
	v.StepsBy = append(v.StepsBy[:0], r.stepsBy...)
	v.Ready = v.Ready[:0]
	v.Idle = v.Idle[:0]
	v.Blocked = v.Blocked[:0]
	v.Crashed = v.Crashed[:0]
	for id := 1; id <= r.cfg.Procs; id++ {
		switch r.status[id] {
		case statusReady:
			v.Ready = append(v.Ready, id)
		case statusIdle:
			v.Idle = append(v.Idle, id)
		case statusBlocked:
			v.Blocked = append(v.Blocked, id)
		case statusCrashed:
			v.Crashed = append(v.Crashed, id)
		}
	}
	return v
}

// StepInfo reports what one Extend did.
type StepInfo struct {
	// Delta holds the events the decision recorded. It is a view into
	// the session's live history buffer: valid until the session is
	// restored at or below the delta's first event (and then extended),
	// which in DFS terms means valid for as long as the node that
	// produced it is on the exploration stack. Callers that retain a
	// delta beyond that (violation witnesses) must copy it.
	Delta history.History
	// Access is the footprint of the decision (zero/unknown when the
	// object does not track footprints), matching Result.Accesses.
	Access Access
	// Steps is the number of simulator steps granted: 0 for a crash or
	// recover decision, 1 otherwise.
	Steps int
}

// Extend applies one scheduler decision to the live configuration. The
// decision must be valid (a ready process, a crash of a non-crashed
// process, or a recover of a crashed one), exactly as for a sim.Run
// scheduler.
func (s *Session) Extend(d Decision) (StepInfo, error) {
	r := s.rt
	if s.closed {
		return StepInfo{}, errors.New("sim: session is closed")
	}
	evBefore := len(r.h)
	stepsBefore := r.steps
	if err := r.extendDirect(d); err != nil {
		return StepInfo{}, err
	}
	return StepInfo{
		Delta:  r.h[evBefore:len(r.h):len(r.h)],
		Access: r.lastAccess,
		Steps:  r.steps - stepsBefore,
	}, nil
}

// extendDirect validates and dispatches one scheduler decision through
// the continuation runtime: the session-mode equivalent of
// applyDecision, with the granted window executed as a direct call into
// the object's state machine instead of a goroutine handoff.
func (r *runtime) extendDirect(d Decision) error {
	if d.Proc < 1 || d.Proc > r.cfg.Procs {
		return fmt.Errorf("sim: scheduler chose invalid process %d", d.Proc)
	}
	id := d.Proc
	if d.Crash && d.Recover {
		return fmt.Errorf("sim: decision cannot both crash and recover process %d", id)
	}
	if d.Crash {
		if r.status[id] == statusCrashed {
			return fmt.Errorf("sim: scheduler crashed process %d twice", id)
		}
		// The crashed process keeps its frame and pending invocation:
		// they are part of the configuration (fingerprints include the
		// pending operations of crashed processes), they just never run —
		// unless a later recover decision discards them.
		r.record(history.Crash(id))
		r.status[id] = statusCrashed
		if r.recObj != nil {
			r.recObj.CrashVolatile()
		}
		r.lastAccess = Access{}
		if r.track {
			r.lastAccess = Access{Known: true, Crash: true}
		}
		return nil
	}
	if d.Recover {
		if r.status[id] != statusCrashed {
			return fmt.Errorf("sim: scheduler recovered non-crashed process %d", id)
		}
		if _, ok := r.env.(RewindableEnv); !ok {
			// The fallback environment rewind reconstructs consultation
			// points from response events, which recovery consultations do
			// not produce; exploration routes such environments to replay
			// execution instead.
			return fmt.Errorf("sim: recover under a session requires a rewindable environment (%T lacks EnvSnapshot/EnvRestore)", r.env)
		}
		r.record(history.Recover(id))
		r.noteRecover(id)
		r.fpPending[id] = Invocation{}
		r.fpHasPend[id] = false
		r.fpOpSteps[id] = 0
		if r.fpTrack {
			r.fpObs[id] = history.DigestSeed()
		}
		// The in-flight frame and the chosen-but-uninvoked next invocation
		// are volatile process state: both die with the crash.
		r.frames[id] = nil
		r.hasNext[id] = false
		var rec Frame
		if r.recObj != nil {
			rec = r.recObj.RecoverFrame()
		}
		// Set unconditionally: the process may have crashed during a
		// previous recovery routine, leaving the flag true.
		r.recovering[id] = rec != nil
		if rec != nil {
			r.frames[id] = rec
			r.status[id] = statusReady
		} else {
			// No recovery routine: consult the environment immediately,
			// within the recover decision, mirroring the goroutine
			// runtime's respawn handshake.
			r.consultEnv(id)
		}
		r.lastAccess = Access{}
		if r.track {
			r.lastAccess = Access{Known: true, Recover: true}
		}
		return nil
	}
	if r.status[id] != statusReady {
		return fmt.Errorf("sim: scheduler stepped non-ready process %d", id)
	}
	r.steps++
	r.stepsBy[id]++
	// Incremented before the window so a response recorded within it
	// (which ends the operation) resets the counter to zero.
	r.fpOpSteps[id]++
	r.beginWindow()
	evBefore := len(r.h)
	p := r.procs[id]
	var val history.Value
	var st StepStatus
	if f := r.frames[id]; f != nil {
		val, st = f.Step(p)
		if st != StepPaused {
			r.frames[id] = nil
		}
	} else {
		// Invocation window: resolve the argument, record the event, and
		// run the operation's pre-first-access code via Begin.
		inv := r.next[id]
		r.hasNext[id] = false
		if la, lazy := inv.Arg.(LazyArg); lazy {
			inv.Arg = la(r.sessionView())
			r.lazyStep = true
			r.fpPoisoned = true
		}
		r.record(history.Event{
			Kind: history.KindInvoke, Proc: id,
			Op: inv.Op, Obj: inv.Obj, Arg: inv.Arg,
		})
		var f Frame
		f, val, st = r.stepped.Begin(p, inv)
		if st == StepPaused {
			r.frames[id] = f
		}
	}
	switch st {
	case StepPaused:
		// The operation pauses at its next step boundary; the process
		// stays ready.
	case StepBlocked:
		r.status[id] = statusBlocked
	case StepDone:
		if r.recovering != nil && r.recovering[id] {
			// A completed recovery routine records no response — recovery
			// is not an operation — but the next-environment consultation
			// still happens within the same window, exactly as under the
			// goroutine runtime's respawn path.
			r.recoveryDone(id)
			r.consultEnv(id)
			break
		}
		// Response and next-environment consultation happen within the
		// same window, exactly as under the goroutine runtime.
		pend := r.fpPending[id]
		r.record(history.Event{
			Kind: history.KindResponse, Proc: id,
			Op: pend.Op, Obj: pend.Obj, Val: val,
		})
		r.consultEnv(id)
	default:
		return fmt.Errorf("sim: object %T returned invalid step status %d", r.cfg.Object, st)
	}
	r.lastAccess = Access{}
	if r.track {
		r.lastAccess = r.endWindow(evBefore)
	}
	return nil
}

// Ready returns the sorted ids of processes currently awaiting a step.
func (s *Session) Ready() []int {
	return s.ReadyAppend(nil)
}

// ReadyAppend appends the sorted ids of processes currently awaiting a
// step to dst and returns the extended slice. Callers that consult
// readiness once per simulated step (the sampling engine's schedule
// loop) reuse one buffer across calls instead of allocating per step.
func (s *Session) ReadyAppend(dst []int) []int {
	r := s.rt
	for id := 1; id <= r.cfg.Procs; id++ {
		if r.status[id] == statusReady {
			dst = append(dst, id)
		}
	}
	return dst
}

// CrashedAppend appends the sorted ids of currently crashed processes to
// dst and returns the extended slice: the candidates for a recover
// decision, mirroring ReadyAppend for step decisions.
func (s *Session) CrashedAppend(dst []int) []int {
	r := s.rt
	for id := 1; id <= r.cfg.Procs; id++ {
		if r.status[id] == statusCrashed {
			dst = append(dst, id)
		}
	}
	return dst
}

// History returns the external history of the current configuration.
// Like StepInfo.Delta, it is a view into the session's live buffer:
// valid until the session is restored below the current position and
// extended again. Callers that retain it (violation witnesses) must
// copy it.
func (s *Session) History() history.History {
	return s.rt.h[:len(s.rt.h):len(s.rt.h)]
}

// Steps returns the number of simulator steps granted so far.
func (s *Session) Steps() int { return s.rt.steps }

// Fingerprint computes the canonical configuration fingerprint, exactly
// as Result.Fingerprint would report it for a from-root replay of the
// same schedule. ok is false when the session does not fingerprint
// (SessionConfig.Fingerprint off, object not Fingerprintable) or the
// execution was poisoned (LazyArg, unencodable value).
func (s *Session) Fingerprint() (uint64, bool) {
	r := s.rt
	if !r.fpTrack || r.fpPoisoned {
		return 0, false
	}
	return r.fingerprint()
}

// Mark captures the current configuration for a later Restore: the
// object snapshot plus a plain copy of each process's control state
// (status, counters, pending invocation, forked continuation frame,
// chosen-but-uninvoked next invocation) and the environment position.
type Mark struct {
	obj      any
	env      any
	hLen     int
	steps    int
	envCalls int
	poisoned bool
	procs    []procMark // index 0 unused
	link     *Mark      // Session.Release freelist
}

// procMark is one process's control state at a mark.
type procMark struct {
	status     procStatus
	stepsBy    int
	completed  int
	invoked    int
	opSteps    int
	obs        uint64
	pending    Invocation
	hasPend    bool
	frame      Frame
	next       Invocation
	hasNext    bool
	recEpoch   int
	recovering bool
}

// Mark snapshots the current configuration. Marks are cheap (no
// goroutine state exists to capture) and poolable: Release returns one
// to the session for reuse.
func (s *Session) Mark() *Mark {
	r := s.rt
	m := s.free
	if m != nil {
		s.free = m.link
		m.link = nil
	} else {
		m = &Mark{procs: make([]procMark, r.cfg.Procs+1)}
	}
	m.obj = s.obj.Snapshot()
	m.env = nil
	if s.renv != nil {
		m.env = s.renv.EnvSnapshot()
	}
	m.hLen = len(r.h)
	m.steps = r.steps
	m.envCalls = r.envCalls
	m.poisoned = r.fpPoisoned
	for id := 1; id <= r.cfg.Procs; id++ {
		pm := &m.procs[id]
		pm.status = r.status[id]
		pm.stepsBy = r.stepsBy[id]
		pm.completed = r.fpCompleted[id]
		pm.invoked = r.fpInvoked[id]
		pm.opSteps = r.fpOpSteps[id]
		pm.recEpoch = 0
		pm.recovering = false
		if r.recEpochs != nil {
			pm.recEpoch = r.recEpochs[id]
			pm.recovering = r.recovering[id]
		}
		pm.obs = 0
		if r.fpTrack {
			pm.obs = r.fpObs[id]
		}
		pm.pending = r.fpPending[id]
		pm.hasPend = r.fpHasPend[id]
		pm.frame = nil
		if f := r.frames[id]; f != nil {
			pm.frame = f.Fork()
		}
		pm.next = r.next[id]
		pm.hasNext = r.hasNext[id]
	}
	return m
}

// Release returns a mark to the session's pool for reuse by a later
// Mark. The caller must not use the mark afterwards; releasing a mark
// that could still be restored is a use-after-free on the caller's
// side. Release is optional — unreleased marks are simply garbage
// collected.
func (s *Session) Release(m *Mark) {
	if m == nil || m.link != nil {
		return
	}
	m.obj = nil
	m.env = nil
	for i := range m.procs {
		m.procs[i].pending = Invocation{}
		m.procs[i].frame = nil
		m.procs[i].next = Invocation{}
	}
	m.link = s.free
	s.free = m
}

// Restore rewinds the session to a mark taken earlier on the current
// execution path: a plain struct copy of the control state plus the
// object snapshot — no re-executed steps, ever. The returned count is
// always 0; the signature is kept so callers account re-simulation work
// uniformly across engines.
func (s *Session) Restore(m *Mark) (int, error) {
	r := s.rt
	if s.closed {
		return 0, errors.New("sim: session is closed")
	}
	moved := r.steps != m.steps || len(r.h) != m.hLen
	if !moved {
		same := true
		for id := 1; id <= r.cfg.Procs; id++ {
			if r.status[id] != m.procs[id].status {
				same = false
				break
			}
		}
		if same {
			return 0, nil
		}
	}

	// History truncates in place: deltas handed out above the mark are
	// dead once the caller restores below them (see StepInfo.Delta).
	r.h = r.h[:m.hLen]
	r.eventSteps = r.eventSteps[:m.hLen]
	r.steps = m.steps
	r.fpPoisoned = m.poisoned
	for id := 1; id <= r.cfg.Procs; id++ {
		pm := &m.procs[id]
		r.status[id] = pm.status
		r.stepsBy[id] = pm.stepsBy
		r.fpCompleted[id] = pm.completed
		r.fpInvoked[id] = pm.invoked
		r.fpOpSteps[id] = pm.opSteps
		if r.recEpochs != nil {
			// Marks taken before the first recover hold zeros; arrays stay
			// allocated across restores (the fingerprint fold reads zeros
			// from both states identically).
			r.recEpochs[id] = pm.recEpoch
			r.recovering[id] = pm.recovering
		}
		if r.fpTrack {
			r.fpObs[id] = pm.obs
		}
		r.fpPending[id] = pm.pending
		r.fpHasPend[id] = pm.hasPend
		r.frames[id] = nil
		if pm.frame != nil {
			// Fork on the way out too: the same mark may be restored
			// many times, and the live frame must not mutate the mark's.
			r.frames[id] = pm.frame.Fork()
		}
		r.next[id] = pm.next
		r.hasNext[id] = pm.hasNext
	}
	if moved {
		s.obj.Restore(m.obj)
	}
	if r.envCalls != m.envCalls {
		if s.renv != nil {
			s.renv.EnvRestore(m.env)
		} else {
			// Fallback for environments without the rewind hook: a fresh
			// instance fast-forwarded through each process's historical
			// consultations (one per completed operation plus the one
			// that chose its pending/next invocation).
			r.env = s.newEnv()
			respAfter := r.responseIndices()
			for id := 1; id <= r.cfg.Procs; id++ {
				s.fastForward(id, m.procs[id].completed+1, respAfter)
			}
		}
		r.envCalls = m.envCalls
	}
	return 0, nil
}

// responseIndices returns, per process, the history index just past
// each of its response events, in order — the points at which the
// process consulted the environment for its next invocation.
func (r *runtime) responseIndices() [][]int {
	out := make([][]int, r.cfg.Procs+1)
	for i := range r.h {
		if r.h[i].Kind == history.KindResponse {
			out[r.h[i].Proc] = append(out[r.h[i].Proc], i+1)
		}
	}
	return out
}

// histView reconstructs the view process id saw when it made its
// call-th environment consultation: the history truncated just after
// its (call-1)-th response (empty for the first call). Only H and Steps
// are populated; see SessionConfig.NewEnv for the environment contract.
func (s *Session) histView(id, call int, respAfter [][]int) *View {
	r := s.rt
	k := 0
	if call >= 2 {
		ra := respAfter[id]
		i := call - 2
		if i >= len(ra) {
			i = len(ra) - 1
		}
		if i >= 0 {
			k = ra[i]
		}
	}
	v := &View{H: r.h[:k:k]}
	if k > 0 {
		v.Steps = r.eventSteps[k-1]
	}
	return v
}

// fastForward advances the (fresh) environment past process id's first
// `calls` consultations, presenting each with its historical view.
func (s *Session) fastForward(id, calls int, respAfter [][]int) {
	for j := 1; j <= calls; j++ {
		s.rt.env.Next(id, s.histView(id, j, respAfter))
	}
}

// Close shuts the session down. The session's history remains readable;
// Extend/Restore fail afterwards.
func (s *Session) Close() {
	s.closed = true
}
