// Package sim implements the asynchronous shared-memory system of the
// paper's Section 2 as a deterministic, scheduler-driven simulator.
//
// Run executes each of the n processes as a goroutine. Before every
// atomic step — an invocation or a base-object operation — the process
// blocks until the scheduler grants it a step; the scheduler therefore
// plays exactly the role of the paper's external scheduler ("an
// external entity ... over which processes have no control"). Because
// grants are serialized by the runtime, a run is fully determined by
// the schedule (the sequence of scheduler decisions) for deterministic
// algorithms and environments, which makes replay and adversarial
// probing possible: a configuration is represented by the schedule
// prefix that produced it.
//
// Session executes the same model without goroutines: objects
// implementing Stepped run each operation as an explicit continuation
// state machine (one resumable step closure per grant) driven by a
// direct dispatch loop, which makes snapshot/restore a plain struct
// copy and the exploration hot loop allocation-free. Run remains the
// parity oracle for the continuation runtime.
//
// The runtime records the external history (invocations, responses, crash
// events) exactly as defined in internal/history, along with per-event step
// indices used by the bounded liveness checkers.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/history"
)

// DefaultMaxSteps bounds a run when Config.MaxSteps is zero.
const DefaultMaxSteps = 10000

// Sentinel panics used internally to unwind process goroutines. They are
// recovered by the runtime; algorithm code must never recover them.
var (
	errHalted  = errors.New("sim: process halted (run ended or crashed)")
	errBlocked = errors.New("sim: process blocked forever by implementation")
)

// Invocation describes an operation a process invokes on the object under
// test.
type Invocation struct {
	// Op is the operation name (e.g. "propose", "start", "read").
	Op string
	// Obj optionally names the addressed object/variable.
	Obj string
	// Arg is the invocation argument, nil if none. It may be a LazyArg.
	Arg history.Value
}

// LazyArg is an invocation argument resolved at the moment the invocation
// is scheduled (not when the environment chooses the operation). The
// paper's TM adversary needs this: process p1's Step-3 write argument is
// v”+1, where v” is a value p2 reads after p1's operation was chosen.
type LazyArg func(v *View) history.Value

// Object is a shared-object implementation under test (the paper's
// implementation I = {I_1, ..., I_n}).
//
// Apply executes one operation on behalf of process p, performing every
// atomic shared-memory access through p (one call to p.Exec per base-object
// step), and returns the response value. Apply must not block on anything
// other than p.Exec, and must not spawn goroutines that touch shared state.
type Object interface {
	Apply(p *Proc, inv Invocation) history.Value
}

// ObjectFunc adapts a function to Object.
type ObjectFunc func(p *Proc, inv Invocation) history.Value

// Apply implements Object.
func (f ObjectFunc) Apply(p *Proc, inv Invocation) history.Value { return f(p, inv) }

// Footprinted is the opt-in footprint hook for partial-order reduction:
// an Object implementing it (with Footprints returning true) promises
// that every access Apply makes to state shared between processes is
// performed through base objects that declare the access to the
// executing process (internal/base objects do this automatically via
// Proc.Access), and that any other cross-process state it keeps is
// footprint-neutral (e.g. deterministic lazy allocation whose outcome
// does not depend on which process performs it). The runtime then
// records a per-decision access log in Result.Accesses, which
// exploration uses to commute independent steps. Objects without the
// hook degrade to an unknown footprint on every step: every step
// conflicts with every other and exploration prunes nothing.
type Footprinted interface {
	Object
	// Footprints reports whether the access log should be trusted.
	Footprints() bool
}

// Access is the recorded footprint of one scheduler decision: which base
// object the granted step touched and how, plus the step's visibility
// (which history events it recorded). Exploration derives step
// independence from it.
type Access struct {
	// Obj names the base object the step accessed; "" when the step
	// performed no base-object access. Two base objects of one
	// implementation instance must not share a name if they are to be
	// treated as independent (a shared name is sound — it only makes the
	// steps conflict).
	Obj string
	// Write reports whether the access mutated the object.
	Write bool
	// Known reports whether the footprint is trustworthy. False means the
	// step's effect is unknown and it must be treated as conflicting with
	// everything (undeclared accesses, conflicting declarations, lazy
	// arguments resolved against the scheduling-time view).
	Known bool
	// Invoked and Responded report whether the step recorded an
	// invocation / response event (crash and recover decisions record
	// their own events and are marked with Crash / Recover instead).
	Invoked, Responded bool
	// Crash marks the access-log entry of a crash decision.
	Crash bool
	// Recover marks the access-log entry of a recover decision.
	Recover bool
}

// Conflicts reports whether two accesses touch the same base object with
// at least one write, or either footprint is unknown.
func (a Access) Conflicts(b Access) bool {
	if !a.Known || !b.Known {
		return true
	}
	return a.Obj != "" && a.Obj == b.Obj && (a.Write || b.Write)
}

// Environment decides which operations processes invoke, playing the
// adversary's role of choosing inputs. Next is called within the granted
// step of the invoking process and must be deterministic for replay.
// Returning ok=false parks the process forever (it has no further work).
type Environment interface {
	Next(proc int, v *View) (inv Invocation, ok bool)
}

// Decision is one scheduler choice: grant a step to Proc, crash it, or
// recover it after a crash.
type Decision struct {
	Proc    int
	Crash   bool
	Recover bool
}

// String renders the decision compactly ("3", "crash(3)" or
// "recover(3)").
func (d Decision) String() string {
	switch {
	case d.Crash:
		return fmt.Sprintf("crash(%d)", d.Proc)
	case d.Recover:
		return fmt.Sprintf("recover(%d)", d.Proc)
	}
	return fmt.Sprintf("%d", d.Proc)
}

// Scheduler picks the next decision given the current view. Returning
// ok=false ends the run. Next must only name processes in v.Ready (for
// steps), non-crashed processes (for crashes), or crashed processes
// (for recoveries).
type Scheduler interface {
	Next(v *View) (d Decision, ok bool)
}

// View is a read-only snapshot of the run passed to schedulers and
// environments. Callers must not mutate any field.
type View struct {
	// H is the external history so far.
	H history.History
	// Steps is the number of granted steps so far.
	Steps int
	// Ready lists processes currently waiting for a step grant, sorted.
	Ready []int
	// Idle lists processes that finished all their work, sorted.
	Idle []int
	// Blocked lists processes parked forever by the implementation, sorted.
	Blocked []int
	// Crashed lists crashed processes, sorted.
	Crashed []int
	// StepsBy[i] is the number of steps granted to process i; index 0 is
	// unused (processes are 1-based).
	StepsBy []int
}

// ReadyContains reports whether proc is ready.
func (v *View) ReadyContains(proc int) bool {
	for _, p := range v.Ready {
		if p == proc {
			return true
		}
	}
	return false
}

// StopReason says why a run ended.
type StopReason int

// Stop reasons.
const (
	// StopBudget: the step budget was exhausted.
	StopBudget StopReason = iota + 1
	// StopScheduler: the scheduler returned ok=false.
	StopScheduler
	// StopQuiescent: no process is ready (all idle, blocked or crashed).
	StopQuiescent
	// StopError: the scheduler made an invalid decision.
	StopError
)

// String names the stop reason.
func (s StopReason) String() string {
	switch s {
	case StopBudget:
		return "budget"
	case StopScheduler:
		return "scheduler"
	case StopQuiescent:
		return "quiescent"
	case StopError:
		return "error"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Result is the outcome of a run.
type Result struct {
	// H is the recorded external history.
	H history.History
	// EventSteps[i] is the step index (value of Steps) at which H[i] was
	// recorded.
	EventSteps []int
	// Schedule is the full sequence of decisions taken, enabling replay.
	Schedule []Decision
	// Steps is the total number of granted steps.
	Steps int
	// StepsBy[i] counts steps granted to process i (index 0 unused).
	StepsBy []int
	// Reason says why the run stopped.
	Reason StopReason
	// Err is non-nil when Reason is StopError.
	Err error
	// Idle lists processes that ran out of work; Blocked lists processes
	// parked forever by the implementation; Crashed lists crashed
	// processes (all as of the end of the run, sorted). Processes in none
	// of the three were still ready.
	Idle, Blocked, Crashed []int
	// Accesses is the per-decision access log, aligned with Schedule. It
	// is recorded only when the Object implements Footprinted and opts
	// in; nil otherwise.
	Accesses []Access
	// Fingerprint is the canonical digest of the configuration the run
	// stopped in: object state (via the Fingerprintable hook), process
	// program counters and observations, pending invocations, and the
	// crash set. Valid only when Fingerprinted is true — the run was
	// configured with Config.Fingerprint, the object implements
	// Fingerprintable, and nothing poisoned the run: no lazy argument (a
	// LazyArg resolves against the scheduling-time view, making local
	// state depend on more than the reached configuration) and no folded
	// value whose printed form could contain an address (see
	// Fingerprinter.Val).
	Fingerprint uint64
	// Fingerprinted reports whether Fingerprint is valid.
	Fingerprinted bool
}

// EventsSince returns the events recorded at history index n or later —
// the incremental delta between a parent prefix replay that recorded n
// events and this deeper replay. Runs are deterministic, so a replay of
// an extended schedule records exactly the parent's events first; the
// returned slice is capacity-clipped so appending to it cannot clobber
// the result's history. Incremental property monitors consume this delta
// instead of re-scanning the full history.
func (r *Result) EventsSince(n int) history.History {
	if n < 0 {
		n = 0
	}
	if n >= len(r.H) {
		return nil
	}
	return r.H[n:len(r.H):len(r.H)]
}

// Config describes a run.
type Config struct {
	// Procs is the number of processes n (1-based ids 1..n).
	Procs int
	// Object is the implementation under test. It must be fresh (runs
	// mutate it).
	Object Object
	// Env decides invocations.
	Env Environment
	// Scheduler decides the interleaving.
	Scheduler Scheduler
	// MaxSteps bounds the run; 0 means DefaultMaxSteps.
	MaxSteps int
	// Fingerprint asks the run to compute Result.Fingerprint when the
	// Object implements Fingerprintable. Off by default: fingerprinting
	// costs a full state walk per run, which exploration only wants when
	// its state cache is enabled.
	Fingerprint bool
	// RecoverQuiescent keeps the run alive when no process is ready but
	// some process is crashed: the scheduler is still consulted (with an
	// empty Ready set) and may issue a recover decision. Off by default,
	// a configuration with no ready process is quiescent and the run
	// stops — the right behavior for every run without recovery
	// injection, where a crashed process can never step again.
	RecoverQuiescent bool
}

type procStatus int

const (
	statusReady procStatus = iota + 1
	statusIdle
	statusBlocked
	statusCrashed
)

// Proc is the per-process handle passed to Object.Apply. It implements
// base.Stepper.
type Proc struct {
	id int
	n  int
	rt *runtime

	grant chan struct{}
	sync  chan procStatus
	dead  chan struct{}
	// halt is per-process so a Session.Restore can unwind one process's
	// goroutine without disturbing the others.
	halt chan struct{}
}

// ID returns the 1-based process identifier.
func (p *Proc) ID() int { return p.id }

// N returns the total number of processes in the system.
func (p *Proc) N() int { return p.n }

// Exec performs op as one atomic step: it blocks until the scheduler grants
// this process a step, then runs op. desc describes the step for tracing.
// Exec only exists under the goroutine runtime (sim.Run); continuation
// sessions dispatch Stepped frames directly and never block, so an
// object stepping through Exec inside a session is a contract violation.
func (p *Proc) Exec(desc string, op func()) {
	_ = desc
	if p.rt.direct {
		panic("sim: Proc.Exec called inside a continuation session; Stepped objects must perform accesses in Begin/Step windows")
	}
	p.yield(statusReady)
	p.awaitGrant()
	op()
}

// Access declares the base-object footprint of the current granted step:
// the step read (write=false) or mutated (write=true) the base object
// named obj. Base objects (internal/base) call it on behalf of their
// operations; an implementation whose Apply touches shared state through
// its own steps must declare them itself to participate in footprint
// tracking (see Footprinted). Access must only be called within a
// granted step's window; it is a no-op when the run's object has not
// opted into tracking.
func (p *Proc) Access(obj string, write bool) {
	r := p.rt
	if !r.track {
		return
	}
	if r.declCount > 0 && r.declObj != obj {
		r.declMixed = true
	}
	r.declObj = obj
	r.declWrite = r.declWrite || write
	r.declCount++
}

// Observe folds v — a value the current granted step read from shared
// state — into the executing process's local-state fingerprint. Base
// objects (internal/base) call it on behalf of their read operations;
// an implementation opting into Fingerprintable whose steps read shared
// state through its own accesses must declare the values itself (see
// that interface). Observe must only be called within a granted step's
// window; it is a no-op when the run does not fingerprint.
func (p *Proc) Observe(v history.Value) {
	r := p.rt
	if !r.fpTrack {
		return
	}
	// r.fpEnc is reused across calls (windows are serialized, so no two
	// Observes race) to keep its encoding buffer warm on this hot path.
	r.fpEnc.h = r.fpObs[p.id]
	r.fpEnc.poisoned = false
	r.fpEnc.Val(v)
	if r.fpEnc.Poisoned() {
		r.fpPoisoned = true
		return
	}
	r.fpObs[p.id] = r.fpEnc.Sum()
}

// Block parks the process forever: the current operation never completes
// and the process never takes another step. It models implementations whose
// automata stop enabling actions (e.g. the trivial implementation I_t in
// the proof of Theorem 4.9). Block does not return.
func (p *Proc) Block() {
	panic(errBlocked)
}

func (p *Proc) yield(st procStatus) {
	p.sync <- st
}

func (p *Proc) awaitGrant() {
	select {
	case <-p.grant:
	case <-p.halt:
		panic(errHalted)
	}
}

type runtime struct {
	cfg   Config
	env   Environment // current environment (a Session.Restore swaps in a rebuilt one)
	procs []*Proc     // index 0 unused

	h          history.History
	eventSteps []int
	steps      int
	stepsBy    []int
	schedule   []Decision
	status     []procStatus // index 0 unused

	// Footprint tracking (only when the object opts in via Footprinted).
	// The decl* fields accumulate the declarations of the current granted
	// window; lazyStep poisons a window that resolved a LazyArg, whose
	// effect depends on the scheduling-time view.
	track     bool
	accesses  []Access
	declObj   string
	declWrite bool
	declCount int
	declMixed bool
	lazyStep  bool

	// Control-state tracking (ctl): the per-process pending invocation,
	// steps taken within the pending operation, completed-operation and
	// invoked-operation counts, index 0 unused. Fingerprinting needs it
	// to encode program counters; sessions need it to rebuild processes
	// on Restore. The invoked count exists for recovery: an operation
	// killed by a crash consumed an environment invocation without ever
	// completing, and stateless environments derive their position from
	// invocation counts, so the fingerprint must separate configurations
	// that differ only in consumed-but-never-completed invocations.
	ctl         bool
	fpPending   []Invocation
	fpHasPend   []bool
	fpOpSteps   []int
	fpCompleted []int
	fpInvoked   []int

	// Crash–recovery state: recObj is the object's Recoverable facet
	// (nil when not implemented), recEpochs counts recover decisions per
	// process, and recovering marks processes currently executing their
	// recovery routine. The two arrays stay nil until the first recover
	// decision, so crash-free runs pay nothing for them.
	recObj     Recoverable
	recEpochs  []int
	recovering []bool

	// State-fingerprint tracking (only when Config.Fingerprint is set and
	// the object opts in via Fingerprintable): the running observation
	// digest of each process's pending operation. fpPoisoned marks a run
	// whose local state depends on a scheduling-time view (LazyArg),
	// which no configuration fingerprint can capture.
	fpTrack    bool
	fpObs      []uint64
	fpPoisoned bool
	fpEnc      Fingerprinter // reused by Observe for its encoding buffer

	// Continuation-session state (only under Session, never sim.Run).
	// The session dispatches Stepped frames directly: frames holds each
	// process's in-flight operation continuation (nil between
	// operations), next/hasNext the invocation the environment chose but
	// the process has not yet invoked, lastAccess the footprint of the
	// most recent decision, and envCalls the total number of environment
	// consultations made (so Restore knows whether the environment needs
	// rewinding). vw is the reusable view handed to environments and
	// LazyArgs: it is valid only for the duration of the call.
	direct     bool
	stepped    Stepped
	frames     []Frame      // index 0 unused
	next       []Invocation // index 0 unused
	hasNext    []bool       // index 0 unused
	lastAccess Access
	envCalls   int
	vw         View
}

// beginWindow resets the per-window footprint accumulators.
func (r *runtime) beginWindow() {
	r.declObj = ""
	r.declWrite = false
	r.declCount = 0
	r.declMixed = false
	r.lazyStep = false
}

// endWindow converts the window's declarations and the events it
// recorded (those at history index evBefore or later) into an Access.
func (r *runtime) endWindow(evBefore int) Access {
	a := Access{Known: !r.declMixed && !r.lazyStep}
	if r.declCount > 0 {
		a.Obj = r.declObj
		a.Write = r.declWrite
	}
	for _, e := range r.h[evBefore:] {
		switch e.Kind {
		case history.KindInvoke:
			a.Invoked = true
		case history.KindResponse:
			a.Responded = true
		}
	}
	return a
}

// record appends an external event to the history. Under sim.Run it is
// called from process goroutines strictly within their granted windows,
// so accesses are serialized with the runtime loop by the grant/sync
// channel handshake; under a Session it is called by the dispatch loop.
func (r *runtime) record(e history.Event) {
	r.h = append(r.h, e)
	r.eventSteps = append(r.eventSteps, r.steps)
	if r.ctl {
		switch e.Kind {
		case history.KindInvoke:
			r.fpPending[e.Proc] = Invocation{Op: e.Op, Obj: e.Obj, Arg: e.Arg}
			r.fpHasPend[e.Proc] = true
			r.fpInvoked[e.Proc]++
		case history.KindResponse:
			// The operation is over: its local variables are dead, so the
			// observation digest and in-operation step counter reset.
			r.fpHasPend[e.Proc] = false
			r.fpCompleted[e.Proc]++
			r.fpOpSteps[e.Proc] = 0
			if r.fpTrack {
				r.fpObs[e.Proc] = history.DigestSeed()
			}
		}
	}
}

func (r *runtime) view() *View {
	v := &View{
		H:       r.h[:len(r.h):len(r.h)],
		Steps:   r.steps,
		StepsBy: append([]int(nil), r.stepsBy...),
	}
	for id := 1; id <= r.cfg.Procs; id++ {
		switch r.status[id] {
		case statusReady:
			v.Ready = append(v.Ready, id)
		case statusIdle:
			v.Idle = append(v.Idle, id)
		case statusBlocked:
			v.Blocked = append(v.Blocked, id)
		case statusCrashed:
			v.Crashed = append(v.Crashed, id)
		}
	}
	sort.Ints(v.Ready)
	return v
}

func (r *runtime) procLoop(p *Proc) { r.procLoopFrom(p, nil) }

// procLoopFrom is procLoop with an optional recovery routine to drive
// first: a recovered process's goroutine steps the recovery frame under
// granted windows (one Step per grant, like an operation frame, but
// recording no response on completion), then re-enters the normal
// environment loop.
func (r *runtime) procLoopFrom(p *Proc, rec Frame) {
	normal := false
	defer func() {
		v := recover()
		switch {
		case v == nil && normal:
			// Idle exit: the final yield already happened.
		case v == errHalted: //nolint:errorlint // sentinel identity is intended
			// Shutdown while blocked; the runtime is not waiting on sync.
		case v == errBlocked: //nolint:errorlint // sentinel identity is intended
			p.yield(statusBlocked)
		default:
			// Real panic from algorithm code: surface it.
			close(p.dead)
			panic(v)
		}
		close(p.dead)
	}()

	for rec != nil {
		var st StepStatus
		p.Exec("recover", func() {
			_, st = rec.Step(p)
		})
		switch st {
		case StepPaused:
		case StepBlocked:
			panic(errBlocked)
		default: // StepDone: the routine is over, no response is recorded.
			rec = nil
			r.recoveryDone(p.id)
		}
	}

	for {
		// Consult the environment at the end of the previous window (or at
		// startup, before the initial yield): a process with no further
		// work is idle, not ready, matching the paper's fairness notion
		// that only enabled actions demand turns.
		inv, ok := r.envNext(p)
		if !ok {
			p.yield(statusIdle)
			normal = true
			return
		}
		// The grant of this step is what schedules the invocation event.
		// Lazy arguments resolve here, against the view at scheduling time.
		p.Exec("invoke", func() {
			if la, lazy := inv.Arg.(LazyArg); lazy {
				inv.Arg = la(r.view())
				r.lazyStep = true
				r.fpPoisoned = true
			}
			r.record(history.Event{
				Kind: history.KindInvoke, Proc: p.id,
				Op: inv.Op, Obj: inv.Obj, Arg: inv.Arg,
			})
		})
		val := r.cfg.Object.Apply(p, inv)
		r.record(history.Event{
			Kind: history.KindResponse, Proc: p.id,
			Op: inv.Op, Obj: inv.Obj, Val: val,
		})
	}
}

// envNext consults the environment for a process's next invocation
// (goroutine runtime only; sessions consult via their dispatch loop).
func (r *runtime) envNext(p *Proc) (Invocation, bool) {
	return r.env.Next(p.id, r.view())
}

// newRuntime builds the shared runtime core of Run and Session.
func newRuntime(cfg Config, env Environment) *runtime {
	r := &runtime{
		cfg:     cfg,
		env:     env,
		procs:   make([]*Proc, cfg.Procs+1),
		stepsBy: make([]int, cfg.Procs+1),
		status:  make([]procStatus, cfg.Procs+1),
	}
	if f, ok := cfg.Object.(Footprinted); ok && f.Footprints() {
		r.track = true
	}
	r.recObj, _ = cfg.Object.(Recoverable)
	if _, ok := cfg.Object.(Fingerprintable); ok && cfg.Fingerprint {
		r.fpTrack = true
		r.fpObs = make([]uint64, cfg.Procs+1)
		for i := range r.fpObs {
			r.fpObs[i] = history.DigestSeed()
		}
	}
	return r
}

// enableCtl switches on control-state tracking (pending invocations,
// per-operation step counts, completed-operation counts).
func (r *runtime) enableCtl() {
	r.ctl = true
	r.fpPending = make([]Invocation, r.cfg.Procs+1)
	r.fpHasPend = make([]bool, r.cfg.Procs+1)
	r.fpOpSteps = make([]int, r.cfg.Procs+1)
	r.fpCompleted = make([]int, r.cfg.Procs+1)
	r.fpInvoked = make([]int, r.cfg.Procs+1)
}

// noteRecover bumps a process's recovery epoch, lazily allocating the
// recovery-tracking arrays on the first recover decision.
func (r *runtime) noteRecover(id int) {
	if r.recEpochs == nil {
		r.recEpochs = make([]int, r.cfg.Procs+1)
		r.recovering = make([]bool, r.cfg.Procs+1)
	}
	r.recEpochs[id]++
}

// recoveryDone marks the end of a process's recovery routine: the
// routine's step counter and observation digest die with it, so the
// next operation starts from clean in-operation state.
func (r *runtime) recoveryDone(id int) {
	if r.recovering != nil {
		r.recovering[id] = false
	}
	if r.ctl {
		r.fpOpSteps[id] = 0
	}
	if r.fpTrack {
		r.fpObs[id] = history.DigestSeed()
	}
}

// spawn starts (or restarts) process id's goroutine and waits for its
// initial yield, so readiness transitions stay deterministic.
func (r *runtime) spawn(id int) { r.respawn(id, nil) }

// respawn starts process id's goroutine, optionally with a recovery
// routine to drive first, and waits for its initial yield.
func (r *runtime) respawn(id int, rec Frame) {
	p := &Proc{
		id: id, n: r.cfg.Procs, rt: r,
		grant: make(chan struct{}),
		sync:  make(chan procStatus),
		dead:  make(chan struct{}),
		halt:  make(chan struct{}),
	}
	r.procs[id] = p
	go r.procLoopFrom(p, rec)
	r.status[id] = <-p.sync // initial yield before first invocation
}

// applyDecision validates and executes one scheduler decision. The
// returned error corresponds to sim.Run's StopError cases; the caller
// must have checked its own budget and that some process is ready.
func (r *runtime) applyDecision(d Decision) error {
	if d.Proc < 1 || d.Proc > r.cfg.Procs {
		return fmt.Errorf("sim: scheduler chose invalid process %d", d.Proc)
	}
	if d.Crash && d.Recover {
		return fmt.Errorf("sim: decision cannot both crash and recover process %d", d.Proc)
	}
	if d.Crash {
		if r.status[d.Proc] == statusCrashed {
			return fmt.Errorf("sim: scheduler crashed process %d twice", d.Proc)
		}
		r.schedule = append(r.schedule, d)
		r.record(history.Crash(d.Proc))
		r.status[d.Proc] = statusCrashed
		if r.recObj != nil {
			r.recObj.CrashVolatile()
		}
		if r.track {
			r.accesses = append(r.accesses, Access{Known: true, Crash: true})
		}
		return nil
	}
	if d.Recover {
		if r.status[d.Proc] != statusCrashed {
			return fmt.Errorf("sim: scheduler recovered non-crashed process %d", d.Proc)
		}
		// Kill the crashed process's parked goroutine, then re-spawn it
		// fresh: recovery routine first (if any), then the environment
		// loop. Its pending invocation never responds.
		if p := r.procs[d.Proc]; p != nil {
			close(p.halt)
			<-p.dead
		}
		r.schedule = append(r.schedule, d)
		r.record(history.Recover(d.Proc))
		r.noteRecover(d.Proc)
		if r.ctl {
			r.fpPending[d.Proc] = Invocation{}
			r.fpHasPend[d.Proc] = false
			r.fpOpSteps[d.Proc] = 0
		}
		if r.fpTrack {
			r.fpObs[d.Proc] = history.DigestSeed()
		}
		var rec Frame
		if r.recObj != nil {
			rec = r.recObj.RecoverFrame()
		}
		r.recovering[d.Proc] = rec != nil
		r.respawn(d.Proc, rec)
		if r.track {
			r.accesses = append(r.accesses, Access{Known: true, Recover: true})
		}
		return nil
	}
	if r.status[d.Proc] != statusReady {
		return fmt.Errorf("sim: scheduler stepped non-ready process %d", d.Proc)
	}
	r.steps++
	r.stepsBy[d.Proc]++
	if r.ctl {
		// Incremented before the window so a response recorded within
		// it (which ends the operation) resets the counter to zero.
		r.fpOpSteps[d.Proc]++
	}
	r.schedule = append(r.schedule, d)
	p := r.procs[d.Proc]
	evBefore := len(r.h)
	r.beginWindow()
	p.grant <- struct{}{}
	r.status[d.Proc] = <-p.sync
	if r.track {
		r.accesses = append(r.accesses, r.endWindow(evBefore))
	}
	return nil
}

// shutdown wakes every process still blocked on a grant and waits for
// all goroutines to exit (no fire-and-forget goroutines).
func (r *runtime) shutdown() {
	for id := 1; id <= r.cfg.Procs; id++ {
		if p := r.procs[id]; p != nil {
			close(p.halt)
			<-p.dead
		}
	}
}

// Run executes a configured simulation to completion and returns its
// result. It is safe to call concurrently with other Runs on distinct
// Config values.
func Run(cfg Config) *Result {
	if cfg.Procs < 1 {
		return &Result{Reason: StopError, Err: errors.New("sim: Procs must be >= 1")}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	r := newRuntime(cfg, cfg.Env)
	if r.fpTrack {
		r.enableCtl()
	}

	// Start processes one at a time so initial readiness is deterministic.
	for id := 1; id <= cfg.Procs; id++ {
		r.spawn(id)
	}

	res := &Result{}
	for {
		if r.steps >= cfg.MaxSteps {
			res.Reason = StopBudget
			break
		}
		v := r.view()
		if len(v.Ready) == 0 && (!cfg.RecoverQuiescent || len(v.Crashed) == 0) {
			res.Reason = StopQuiescent
			break
		}
		d, ok := cfg.Scheduler.Next(v)
		if !ok {
			res.Reason = StopScheduler
			break
		}
		if err := r.applyDecision(d); err != nil {
			res.Reason = StopError
			res.Err = err
			break
		}
	}

	r.shutdown()

	res.H = r.h
	res.EventSteps = r.eventSteps
	res.Schedule = r.schedule
	res.Steps = r.steps
	res.StepsBy = r.stepsBy
	final := r.view()
	res.Idle = final.Idle
	res.Blocked = final.Blocked
	res.Crashed = final.Crashed
	res.Accesses = r.accesses
	if r.fpTrack && !r.fpPoisoned {
		if fp, ok := r.fingerprint(); ok {
			res.Fingerprint = fp
			res.Fingerprinted = true
		}
	}
	return res
}
