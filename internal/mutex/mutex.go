// Package mutex implements the lock shared-object type the paper's
// Section 3.2 cites as the home of starvation-freedom ("the strongest
// liveness requirement for lock-based implementations"), with three
// implementations from base objects:
//
//   - Peterson: the classic two-process starvation-free lock from
//     registers;
//   - Tournament: the n-process tournament of Peterson locks
//     (starvation-free, registers only);
//   - TASLock: a test-and-set spinlock — deadlock-free but NOT
//     starvation-free, which the StarveTAS adversary demonstrates with a
//     fair schedule on which one process never acquires.
//
// The object type has operations "acquire" (response Locked) and
// "release" (response Unlocked); the good-response set for lock liveness
// is {Locked}, so starvation-freedom is exactly wait-freedom over
// acquisitions and deadlock-freedom is 1-lock-freedom.
package mutex

import (
	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

// Lock operation names (aliases of the safety package's) and responses.
const (
	OpAcquire = safety.LockAcquire
	OpRelease = safety.LockRelease
	Locked    = "locked"
	Unlocked  = "unlocked"
)

// Good is the lock good-response set: only acquisitions are progress.
func Good() liveness.Good { return liveness.Good{Locked: true} }

// StarvationFreedom is the lock L_max: every correct process that keeps
// requesting the lock acquires it infinitely often.
func StarvationFreedom() liveness.Property {
	return liveness.WaitFreedom{Good: Good()}
}

// DeadlockFreedom requires that some process keeps acquiring.
func DeadlockFreedom() liveness.Property {
	return liveness.LLockFreedom{L: 1, Good: Good()}
}

// Peterson is the two-process Peterson lock from registers. Process ids
// must be 1 and 2.
//
//slx:norecover flag and turn registers are modeled durable; a crashed holder simply never releases
type Peterson struct {
	flag [2]*base.Register
	turn *base.Register
}

// NewPeterson creates the lock.
func NewPeterson() *Peterson {
	return &Peterson{
		flag: [2]*base.Register{
			base.NewRegister("flag1", false),
			base.NewRegister("flag2", false),
		},
		turn: base.NewRegister("turn", 1),
	}
}

// Acquire blocks (spinning on register reads) until the lock is held by p.
// Process ids must be 1 or 2.
func (l *Peterson) Acquire(p *sim.Proc) {
	me := p.ID() - 1
	other := 1 - me
	l.flag[me].Write(p, true)
	l.turn.Write(p, other+1)
	for {
		if !l.flag[other].Read(p).(bool) {
			return
		}
		if l.turn.Read(p) != other+1 {
			return
		}
	}
}

// Release releases the lock held by p.
func (l *Peterson) Release(p *sim.Proc) {
	l.flag[p.ID()-1].Write(p, false)
}

// Footprints implements sim.Footprinted: all shared state is in the
// three named registers.
func (l *Peterson) Footprints() bool { return true }

// Fingerprint implements sim.Fingerprintable: the three registers hold
// booleans and process ids, compared by value.
func (l *Peterson) Fingerprint(f *sim.Fingerprinter) {
	l.flag[0].Fingerprint(f)
	l.flag[1].Fingerprint(f)
	l.turn.Fingerprint(f)
}

// petersonState is a captured lock configuration.
type petersonState struct{ f0, f1, turn any }

// Snapshot implements sim.Snapshottable: the three registers are the
// whole state.
func (l *Peterson) Snapshot() any {
	return &petersonState{f0: l.flag[0].Snapshot(), f1: l.flag[1].Snapshot(), turn: l.turn.Snapshot()}
}

// Restore implements sim.Snapshottable.
func (l *Peterson) Restore(v any) {
	st := v.(*petersonState)
	l.flag[0].Restore(st.f0)
	l.flag[1].Restore(st.f1)
	l.turn.Restore(st.turn)
}

// Apply implements sim.Object.
func (l *Peterson) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case OpAcquire:
		l.Acquire(p)
		return Locked
	case OpRelease:
		l.Release(p)
		return Unlocked
	default:
		return nil
	}
}

// petersonFrame is one in-flight Peterson operation as a continuation
// state machine; pc tracks the acquire protocol's position (write own
// flag, write turn, then the two-read spin loop).
type petersonFrame struct {
	l       *Peterson
	me      int // p.ID() - 1
	acquire bool
	pc      int
}

// Begin implements sim.Stepped: both operations start with a base
// access, so the invocation window runs no object code.
func (l *Peterson) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case OpAcquire:
		return &petersonFrame{l: l, me: p.ID() - 1, acquire: true}, nil, sim.StepPaused
	case OpRelease:
		return &petersonFrame{l: l, me: p.ID() - 1}, nil, sim.StepPaused
	default:
		return nil, nil, sim.StepDone
	}
}

// Step implements sim.Frame, mirroring Acquire/Release step for step.
func (f *petersonFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	l := f.l
	if !f.acquire {
		l.flag[f.me].WriteW(p, false)
		return Unlocked, sim.StepDone
	}
	other := 1 - f.me
	switch f.pc {
	case 0:
		l.flag[f.me].WriteW(p, true)
		f.pc = 1
	case 1:
		l.turn.WriteW(p, other+1)
		f.pc = 2
	case 2:
		if !l.flag[other].ReadW(p).(bool) {
			return Locked, sim.StepDone
		}
		f.pc = 3
	case 3:
		if l.turn.ReadW(p) != other+1 {
			return Locked, sim.StepDone
		}
		f.pc = 2
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *petersonFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// TASLock is a test-and-set spinlock: deadlock-free, not starvation-free.
//
//slx:norecover the one TAS bit is modeled durable; a crashed holder simply never releases
type TASLock struct {
	t *base.TAS
}

// NewTASLock creates the lock.
func NewTASLock() *TASLock {
	return &TASLock{t: base.NewTAS("lock")}
}

// Acquire spins on test-and-set until the lock is held by p.
func (l *TASLock) Acquire(p *sim.Proc) {
	for !l.t.TestAndSet(p) {
	}
}

// Release releases the lock.
func (l *TASLock) Release(p *sim.Proc) {
	l.t.Reset(p)
}

// Footprints implements sim.Footprinted: all shared state is the single
// test-and-set bit.
func (l *TASLock) Footprints() bool { return true }

// Fingerprint implements sim.Fingerprintable: the single bit is the
// whole shared state.
func (l *TASLock) Fingerprint(f *sim.Fingerprinter) {
	l.t.Fingerprint(f)
}

// Snapshot implements sim.Snapshottable: the bit is the whole state.
func (l *TASLock) Snapshot() any { return l.t.Snapshot() }

// Restore implements sim.Snapshottable.
func (l *TASLock) Restore(v any) { l.t.Restore(v) }

// Apply implements sim.Object.
func (l *TASLock) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case OpAcquire:
		l.Acquire(p)
		return Locked
	case OpRelease:
		l.Release(p)
		return Unlocked
	default:
		return nil
	}
}

// tasLockFrame is one in-flight TASLock operation. It carries no
// mutable state (the spin loop re-runs the same test-and-set step), so
// Fork returns the frame itself.
type tasLockFrame struct {
	l       *TASLock
	acquire bool
}

// Begin implements sim.Stepped.
func (l *TASLock) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case OpAcquire:
		return &tasLockFrame{l: l, acquire: true}, nil, sim.StepPaused
	case OpRelease:
		return &tasLockFrame{l: l}, nil, sim.StepPaused
	default:
		return nil, nil, sim.StepDone
	}
}

// Step implements sim.Frame.
func (f *tasLockFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	if !f.acquire {
		f.l.t.ResetW(p)
		return Unlocked, sim.StepDone
	}
	if f.l.t.TestAndSetW(p) {
		return Locked, sim.StepDone
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame: the frame is immutable.
func (f *tasLockFrame) Fork() sim.Frame { return f }

// Tournament is the n-process tournament lock: a binary tree of Peterson
// locks; a process climbs from its leaf to the root, playing the side its
// subtree lies on at each node, and releases top-down in reverse. n is
// rounded up to a power of two.
type Tournament struct {
	n      int
	levels int
	// node flags/turn per internal node: node index 1..(leafBase-1),
	// heap-style (children of i are 2i and 2i+1).
	flag map[int][2]*base.Register
	turn map[int]*base.Register
	leaf int // first leaf index = number of internal nodes + 1
}

// NewTournament creates the lock for n processes (n >= 1).
func NewTournament(n int) *Tournament {
	size := 1
	levels := 0
	for size < n {
		size *= 2
		levels++
	}
	t := &Tournament{
		n:      n,
		levels: levels,
		flag:   make(map[int][2]*base.Register),
		turn:   make(map[int]*base.Register),
		leaf:   size,
	}
	for node := 1; node < size; node++ {
		t.flag[node] = [2]*base.Register{
			base.NewRegister("flagL", false),
			base.NewRegister("flagR", false),
		}
		t.turn[node] = base.NewRegister("turn", 0)
	}
	return t
}

// Apply implements sim.Object.
func (t *Tournament) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case OpAcquire:
		pos := t.leaf + p.ID() - 1
		for pos > 1 {
			side := pos % 2 // 0 = left child, 1 = right child
			node := pos / 2
			t.petersonAcquire(p, node, side)
			pos = node
		}
		return Locked
	case OpRelease:
		// Release top-down: recompute the path and release in root-to-leaf
		// order.
		var path []int // node indices with sides encoded in the climb
		pos := t.leaf + p.ID() - 1
		for pos > 1 {
			path = append(path, pos)
			pos /= 2
		}
		for i := len(path) - 1; i >= 0; i-- {
			node := path[i] / 2
			side := path[i] % 2
			t.flagReg(node, side).Write(p, false)
		}
		return Unlocked
	default:
		return nil
	}
}

func (t *Tournament) flagReg(node, side int) *base.Register {
	return t.flag[node][side]
}

func (t *Tournament) petersonAcquire(p *sim.Proc, node, side int) {
	other := 1 - side
	t.flagReg(node, side).Write(p, true)
	t.turn[node].Write(p, other)
	for {
		if !t.flagReg(node, other).Read(p).(bool) {
			return
		}
		if t.turn[node].Read(p) != other {
			return
		}
	}
}

// acquireReleaseEnv alternates acquire/release per process, derived
// purely from the process's own last response in the view. Stateless,
// so it implements the sim.RewindableEnv hook with a nil snapshot.
type acquireReleaseEnv struct{ procs int }

// Next implements sim.Environment.
func (e *acquireReleaseEnv) Next(proc int, v *sim.View) (sim.Invocation, bool) {
	if proc > e.procs {
		return sim.Invocation{}, false
	}
	h := v.H
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Proc == proc && h[i].Kind == history.KindResponse {
			if h[i].Val == Locked {
				return sim.Invocation{Op: OpRelease}, true
			}
			return sim.Invocation{Op: OpAcquire}, true
		}
	}
	return sim.Invocation{Op: OpAcquire}, true
}

// EnvSnapshot implements sim.RewindableEnv (stateless).
func (e *acquireReleaseEnv) EnvSnapshot() any { return nil }

// EnvRestore implements sim.RewindableEnv.
func (e *acquireReleaseEnv) EnvRestore(any) {}

// AcquireReleaseLoop is the lock liveness environment: every process
// alternates acquire and release forever. The next operation is derived
// purely from the process's own last response, so the environment is
// stateless and rewinds for free under incremental sessions.
func AcquireReleaseLoop(procs int) sim.Environment {
	return &acquireReleaseEnv{procs: procs}
}

// StarveTAS is the adversary scheduler that starves process victim on a
// TAS lock while staying fair (both processes take infinitely many steps):
// the victim is granted steps only while the other process holds the lock,
// so each of its test-and-set attempts fails; the owner cycles
// acquire/release forever. Derived purely from the history, so it works
// against any lock implementation — against starvation-free locks (e.g.
// Peterson) the run it produces simply stops being constructible (the
// owner blocks), which tests demonstrate.
func StarveTAS(victim, owner int) sim.Scheduler {
	last := 0
	return sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		// While the owner holds the lock, alternate the two processes so
		// the owner still advances toward its release (fairness); while the
		// lock is free, run only the owner so it re-acquires before the
		// victim can attempt a test-and-set.
		if holder(v.H) == owner && last != victim && v.ReadyContains(victim) {
			last = victim
			return sim.Decision{Proc: victim}, true
		}
		if v.ReadyContains(owner) {
			last = owner
			return sim.Decision{Proc: owner}, true
		}
		if v.ReadyContains(victim) {
			last = victim
			return sim.Decision{Proc: victim}, true
		}
		return sim.Decision{}, false
	})
}

// holder returns the process currently holding the lock per the history (0
// if none): the last acquire response not yet followed by its release
// invocation.
func holder(h history.History) int {
	cur := 0
	for _, e := range h {
		switch {
		case e.Kind == history.KindResponse && e.Op == OpAcquire && e.Val == Locked:
			cur = e.Proc
		case e.Kind == history.KindInvoke && e.Op == OpRelease && e.Proc == cur:
			cur = 0
		}
	}
	return cur
}
