package mutex

import (
	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// Bakery is Lamport's bakery lock for n processes from registers only:
// first-come-first-served and hence starvation-free. Tickets grow without
// bound, which is fine in simulation (the paper's registers hold arbitrary
// values).
//
//slx:nosnapshot unbounded tickets make restored sessions diverge from recorded history lengths
//slx:nofootprint acquire scans every process's slots, so steps conflict pairwise anyway
//slx:norecover tickets and flags are modeled durable; a crashed holder simply never releases
type Bakery struct {
	n        int
	choosing []*base.Register
	number   []*base.Register
}

// NewBakery creates the lock for n processes.
func NewBakery(n int) *Bakery {
	b := &Bakery{
		n:        n,
		choosing: make([]*base.Register, n),
		number:   make([]*base.Register, n),
	}
	for i := 0; i < n; i++ {
		b.choosing[i] = base.NewRegister("choosing", false)
		b.number[i] = base.NewRegister("number", 0)
	}
	return b
}

// Fingerprint implements sim.Fingerprintable: tickets and choosing
// flags, in process order. (The registers share the names "choosing"
// and "number" across processes, which is fine here: the fixed write
// order keys each component by position.)
func (b *Bakery) Fingerprint(f *sim.Fingerprinter) {
	for i := 0; i < b.n; i++ {
		b.choosing[i].Fingerprint(f)
		b.number[i].Fingerprint(f)
	}
}

// Acquire takes the lock for p, waiting first-come-first-served.
func (b *Bakery) Acquire(p *sim.Proc) {
	me := p.ID() - 1
	b.choosing[me].Write(p, true)
	max := 0
	for j := 0; j < b.n; j++ {
		if n := b.number[j].Read(p).(int); n > max {
			max = n
		}
	}
	myNum := max + 1
	b.number[me].Write(p, myNum)
	b.choosing[me].Write(p, false)
	for j := 0; j < b.n; j++ {
		if j == me {
			continue
		}
		for b.choosing[j].Read(p).(bool) {
		}
		for {
			nj := b.number[j].Read(p).(int)
			if nj == 0 || nj > myNum || (nj == myNum && j > me) {
				break
			}
		}
	}
}

// Release releases the lock.
func (b *Bakery) Release(p *sim.Proc) {
	b.number[p.ID()-1].Write(p, 0)
}

// Apply implements sim.Object.
func (b *Bakery) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case OpAcquire:
		b.Acquire(p)
		return Locked
	case OpRelease:
		b.Release(p)
		return Unlocked
	default:
		return nil
	}
}
