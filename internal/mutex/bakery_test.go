package mutex

import (
	"fmt"
	"testing"

	"repro/internal/explore"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func TestBakeryMutualExclusionRandom(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := int64(0); seed < 60; seed++ {
				runLock(t, NewBakery(n), n, sim.Limit(sim.Random(seed), 600), 600)
			}
		})
	}
}

func TestBakeryExhaustiveShallow(t *testing.T) {
	prop := safety.MutualExclusion{}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewBakery(2) },
		NewEnv:    func() sim.Environment { return AcquireReleaseLoop(2) },
		Depth:     12,
		Workers:   4,
		Check:     explore.CheckSafety("mutual-exclusion", prop.Holds),
	})
	if err != nil {
		t.Fatalf("exhaustive check failed: %v (witness %v)", err, st.Witness)
	}
}

func TestBakeryStarvationFree(t *testing.T) {
	res := runLock(t, NewBakery(3), 3, sim.Limit(&sim.RoundRobin{}, 2500), 2500)
	e := liveness.FromResult(res, 0)
	if !StarvationFreedom().Holds(e) {
		t.Errorf("bakery must be starvation-free under round-robin; acquisitions %v",
			acquisitions(res.H))
	}
}

func TestBakeryFCFSUnderCrash(t *testing.T) {
	// A crashed process that held no ticket must not block the others.
	res := sim.Run(sim.Config{
		Procs:  2,
		Object: NewBakery(2),
		Env:    AcquireReleaseLoop(2),
		Scheduler: sim.Seq(
			sim.Fixed([]sim.Decision{{Proc: 2, Crash: true}}),
			sim.Limit(sim.Solo(1), 400),
		),
		MaxSteps: 450,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if acquisitions(res.H)[1] < 5 {
		t.Errorf("p1 must keep acquiring solo; got %v", acquisitions(res.H))
	}
	if !(safety.MutualExclusion{}).Holds(res.H) {
		t.Error("mutual exclusion violated")
	}
}

func TestBakeryBlocksBehindCrashedTicketHolder(t *testing.T) {
	// The flip side: bakery is blocking — a process that crashes holding a
	// ticket (after its number write) wedges the others forever.
	res := sim.Run(sim.Config{
		Procs:  2,
		Object: NewBakery(2),
		Env:    AcquireReleaseLoop(2),
		Scheduler: sim.Seq(
			// p1: invoke + choosing write + 2 number reads + number write
			// (ticket taken, choosing still true or just cleared).
			sim.Limit(sim.Solo(1), 6),
			sim.Fixed([]sim.Decision{{Proc: 1, Crash: true}}),
			sim.Limit(sim.Solo(2), 300),
		),
		MaxSteps: 400,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := acquisitions(res.H)[2]; got != 0 {
		t.Errorf("p2 acquired %d times behind a dead ticket holder; bakery is blocking", got)
	}
}
