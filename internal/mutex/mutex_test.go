package mutex

import (
	"fmt"
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func acquisitions(h history.History) map[int]int {
	out := make(map[int]int)
	for _, e := range h {
		if e.Kind == history.KindResponse && e.Val == Locked {
			out[e.Proc]++
		}
	}
	return out
}

func runLock(t *testing.T, obj sim.Object, procs int, sched sim.Scheduler, maxSteps int) *sim.Result {
	t.Helper()
	res := sim.Run(sim.Config{
		Procs:     procs,
		Object:    obj,
		Env:       AcquireReleaseLoop(procs),
		Scheduler: sched,
		MaxSteps:  maxSteps,
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !(safety.MutualExclusion{}).Holds(res.H) {
		t.Fatalf("mutual exclusion violated: %s", res.H)
	}
	return res
}

func TestPetersonMutualExclusionRandom(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		runLock(t, NewPeterson(), 2, sim.Limit(sim.Random(seed), 300), 300)
	}
}

func TestPetersonExhaustive(t *testing.T) {
	prop := safety.MutualExclusion{}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewPeterson() },
		NewEnv:    func() sim.Environment { return AcquireReleaseLoop(2) },
		Depth:     14,
		Check:     explore.CheckSafety("mutual-exclusion", prop.Holds),
	})
	if err != nil {
		t.Fatalf("exhaustive check failed: %v (witness %v)", err, st.Witness)
	}
	if st.Prefixes < 1000 {
		t.Errorf("expected substantial exploration, got %d prefixes", st.Prefixes)
	}
}

func TestPetersonStarvationFreeUnderFairSchedules(t *testing.T) {
	schedulers := map[string]func() sim.Scheduler{
		"round-robin": func() sim.Scheduler { return sim.Limit(&sim.RoundRobin{}, 600) },
		"alternate":   func() sim.Scheduler { return sim.Limit(sim.Alternate(1, 2), 600) },
		"random":      func() sim.Scheduler { return sim.Limit(sim.Random(3), 600) },
	}
	for name, mk := range schedulers {
		t.Run(name, func(t *testing.T) {
			res := runLock(t, NewPeterson(), 2, mk(), 600)
			e := liveness.FromResult(res, 0)
			if !StarvationFreedom().Holds(e) {
				t.Errorf("Peterson must be starvation-free under %s; acquisitions %v",
					name, acquisitions(res.H))
			}
		})
	}
}

func TestTASLockDeadlockFreeButNotStarvationFree(t *testing.T) {
	// Under the starvation adversary, p2 spins forever while p1 cycles.
	res := runLock(t, NewTASLock(), 2, sim.Limit(StarveTAS(2, 1), 800), 800)
	acq := acquisitions(res.H)
	if acq[2] != 0 {
		t.Fatalf("victim acquired %d times; the adversary failed", acq[2])
	}
	if acq[1] < 10 {
		t.Fatalf("owner should cycle many times, got %d", acq[1])
	}
	// The schedule is fair: both processes keep stepping.
	e := liveness.FromResult(res, 0)
	steppers := e.Steppers()
	if len(steppers) != 2 {
		t.Fatalf("unfair run: steppers %v", steppers)
	}
	if StarvationFreedom().Holds(e) {
		t.Error("starvation-freedom must fail for the TAS lock")
	}
	if !DeadlockFreedom().Holds(e) {
		t.Error("deadlock-freedom holds: the owner keeps acquiring")
	}
}

func TestPetersonResistsStarveTAS(t *testing.T) {
	// Against Peterson the same adversary cannot starve fairly: once the
	// victim has announced interest (flag+turn), the owner's re-acquire
	// spins, the holder-based condition stops granting the victim, and the
	// run stalls into the owner spinning — the victim is simply no longer
	// starved *and* stepped. Verify the adversary fails to produce a fair
	// starvation run: either the victim acquires, or the victim stops
	// taking steps (the run is not a fair counterexample).
	res := runLock(t, NewPeterson(), 2, sim.Limit(StarveTAS(2, 1), 800), 800)
	acq := acquisitions(res.H)
	e := liveness.FromResult(res, 0)
	steppers := e.Steppers()
	victimStepsForever := len(steppers) == 2
	if acq[2] == 0 && victimStepsForever {
		t.Fatalf("adversary fairly starved Peterson: acquisitions %v", acq)
	}
}

func TestTournamentMutualExclusion(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				runLock(t, NewTournament(n), n, sim.Limit(sim.Random(seed), 500), 500)
			}
		})
	}
}

func TestTournamentStarvationFreeUnderRoundRobin(t *testing.T) {
	res := runLock(t, NewTournament(4), 4, sim.Limit(&sim.RoundRobin{}, 4000), 4000)
	e := liveness.FromResult(res, 0)
	if !StarvationFreedom().Holds(e) {
		t.Errorf("tournament lock must be starvation-free under round-robin; acquisitions %v",
			acquisitions(res.H))
	}
}

func TestTournamentExhaustiveTwoProcs(t *testing.T) {
	prop := safety.MutualExclusion{}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewTournament(2) },
		NewEnv:    func() sim.Environment { return AcquireReleaseLoop(2) },
		Depth:     13,
		Check:     explore.CheckSafety("mutual-exclusion", prop.Holds),
	})
	if err != nil {
		t.Fatalf("exhaustive check failed: %v (witness %v)", err, st.Witness)
	}
}

func TestHolderTracking(t *testing.T) {
	h := history.History{
		history.Invoke(1, OpAcquire, nil),
		history.Response(1, OpAcquire, Locked),
	}
	if holder(h) != 1 {
		t.Errorf("holder = %d, want 1", holder(h))
	}
	h = h.Append(history.Invoke(1, OpRelease, nil))
	if holder(h) != 0 {
		t.Errorf("holder after release invocation = %d, want 0", holder(h))
	}
}

func TestMutualExclusionChecker(t *testing.T) {
	prop := safety.MutualExclusion{}
	tests := []struct {
		name string
		h    history.History
		want bool
	}{
		{"empty", history.History{}, true},
		{"clean handoff", history.History{
			history.Invoke(1, OpAcquire, nil), history.Response(1, OpAcquire, Locked),
			history.Invoke(1, OpRelease, nil), history.Response(1, OpRelease, Unlocked),
			history.Invoke(2, OpAcquire, nil), history.Response(2, OpAcquire, Locked),
		}, true},
		{"two holders", history.History{
			history.Invoke(1, OpAcquire, nil), history.Response(1, OpAcquire, Locked),
			history.Invoke(2, OpAcquire, nil), history.Response(2, OpAcquire, Locked),
		}, false},
		{"release by non-holder", history.History{
			history.Invoke(1, OpAcquire, nil), history.Response(1, OpAcquire, Locked),
			history.Invoke(2, OpRelease, nil),
		}, false},
		{"acquire after release invocation ok", history.History{
			history.Invoke(1, OpAcquire, nil), history.Response(1, OpAcquire, Locked),
			history.Invoke(1, OpRelease, nil),
			history.Invoke(2, OpAcquire, nil), history.Response(2, OpAcquire, Locked),
			history.Response(1, OpRelease, Unlocked),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := prop.Holds(tt.h); got != tt.want {
				t.Errorf("Holds = %v, want %v", got, tt.want)
			}
			if !safety.PrefixClosed(prop, tt.h) {
				t.Error("mutual exclusion must be prefix-closed")
			}
		})
	}
}
