package adversary

import (
	"repro/internal/history"
	"repro/internal/safety"
)

// ConsensusF1 returns the paper's Section 4.1 adversary set F1 w.r.t.
// wait-freedom and agreement+validity for consensus from registers: the six
// histories in which p1 proposes v, then p2 proposes v' (v ≠ v'), and at
// most one of the two decides. The Chor-Israeli-Li impossibility guarantees
// that every register-based implementation has a fair execution whose
// external history is one of these (an infinite execution with no further
// external events).
func ConsensusF1(v, vPrime history.Value) []history.History {
	inv1 := history.Invoke(1, safety.ConsensusPropose, v)
	inv2 := history.Invoke(2, safety.ConsensusPropose, vPrime)
	res := func(p int, val history.Value) history.Event {
		return history.Response(p, safety.ConsensusPropose, val)
	}
	return []history.History{
		{inv1, inv2},
		{inv1, res(1, v), inv2},
		{inv1, inv2, res(1, v)},
		{inv1, inv2, res(1, vPrime)},
		{inv1, inv2, res(2, v)},
		{inv1, inv2, res(2, vPrime)},
	}
}

// ConsensusF2 returns the process-swapped adversary set F2: p2 proposes
// first. F1 ∩ F2 = ∅ because every history of F1 begins with propose_1 and
// every history of F2 begins with propose_2, which is the heart of
// Corollary 4.5.
func ConsensusF2(v, vPrime history.Value) []history.History {
	f1 := ConsensusF1(v, vPrime)
	out := make([]history.History, len(f1))
	for i, h := range f1 {
		out[i] = SwapProcs(h, 1, 2)
	}
	return out
}

// KSetF1 returns a finite adversary set for k-set agreement, mirroring the
// consensus construction (the paper's Section 1 "our impossibilities can
// be applied to ... k-set agreement"): k+1 processes propose k+1 distinct
// values with p1 proposing first, and at most one of them decides. The
// Borowsky-Gafni impossibility guarantees every register-based
// implementation has a fair execution with such an external history.
// values must contain at least k+1 distinct entries.
func KSetF1(k int, values []history.Value) []history.History {
	n := k + 1
	var base history.History
	for p := 1; p <= n; p++ {
		base = append(base, history.Invoke(p, safety.ConsensusPropose, values[p-1]))
	}
	out := []history.History{base}
	for p := 1; p <= n; p++ {
		for _, v := range values[:n] {
			out = append(out, base.Append(history.Response(p, safety.ConsensusPropose, v)))
		}
	}
	return out
}

// KSetF2 is the process-swapped variant of KSetF1 (p2 proposes first);
// KSetF1 ∩ KSetF2 = ∅ since the first invocations differ, so G_max = ∅
// and no weakest liveness property excludes k-set agreement either.
func KSetF2(k int, values []history.Value) []history.History {
	f1 := KSetF1(k, values)
	out := make([]history.History, len(f1))
	for i, h := range f1 {
		out[i] = SwapProcs(h, 1, 2)
	}
	return out
}

// SwapProcs returns a copy of h with the identifiers of processes a and b
// exchanged (the paper's "exchange processes in the strategy so that p1
// plays the role of p2 and vice versa").
func SwapProcs(h history.History, a, b int) history.History {
	out := h.Clone()
	for i := range out {
		switch out[i].Proc {
		case a:
			out[i].Proc = b
		case b:
			out[i].Proc = a
		}
	}
	return out
}
