package adversary

import (
	"repro/internal/history"
	"repro/internal/sim"
)

// TMStarve is the paper's Section 4.1 adversary against TM implementations
// (the strategy of Bushkov-Guerraoui-Kapalka), with the two roles
// parameterizable so that the process-swapped variant of Corollary 4.6 is
// the same code:
//
//	Step 1: Victim starts a transaction and reads Var (retrying on abort).
//	Step 2: Helper starts, reads Var (value v''), writes v'+1 and commits
//	        (retrying on abort).
//	Step 3: Victim writes v''+1 and requests commit; on abort the strategy
//	        returns to Step 1; on commit it stops (the adversary lost).
//
// Against any TM ensuring opacity, Step 3 always aborts — the helper's
// commit invalidates the victim's snapshot — so the victim never commits
// while the helper commits infinitely often: local progress and
// (2,2)-freedom are violated. Loops counts completed Step3→Step1 cycles,
// the repetition certificate for the violation.
type TMStarve struct {
	// Victim and Helper are the process ids playing p1 and p2 of the
	// paper's strategy.
	Victim, Helper int
	// Var is the contended transactional variable (default "x").
	Var string

	phase  int // 1, 2, 3
	loops  int
	won    bool // victim committed: the adversary lost the game
	cursor int  // history events already consumed by advance
}

// NewTMStarve creates the adversary with the given role assignment.
func NewTMStarve(victim, helper int) *TMStarve {
	return &TMStarve{Victim: victim, Helper: helper, Var: "x", phase: 1}
}

// Loops returns the number of completed starvation cycles (Step 3 aborts
// that returned the strategy to Step 1).
func (a *TMStarve) Loops() int { return a.loops }

// VictimCommitted reports whether the victim ever committed (which would
// mean the implementation beat the adversary; opaque TMs never do).
func (a *TMStarve) VictimCommitted() bool { return a.won }

// advance consumes new history events and updates the strategy phase.
func (a *TMStarve) advance(h history.History) {
	for ; a.cursor < len(h); a.cursor++ {
		e := h[a.cursor]
		if e.Kind != history.KindResponse {
			continue
		}
		switch a.phase {
		case 1:
			if e.Proc == a.Victim && e.Op == history.TMRead && e.Val != history.Abort {
				a.phase = 2
			}
		case 2:
			if e.Proc == a.Helper && e.Op == history.TMTryC && e.Val == history.Commit {
				a.phase = 3
			}
		case 3:
			if e.Proc != a.Victim {
				continue
			}
			switch {
			case e.Val == history.Abort:
				a.phase = 1
				a.loops++
			case e.Op == history.TMTryC && e.Val == history.Commit:
				a.won = true
			}
		}
	}
}

// Scheduler returns the adversary's scheduler: it always steps the process
// whose strategy step is active.
func (a *TMStarve) Scheduler() sim.Scheduler {
	return sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		a.advance(v.H)
		if a.won {
			return sim.Decision{}, false
		}
		active := a.Victim
		if a.phase == 2 {
			active = a.Helper
		}
		if !v.ReadyContains(active) {
			return sim.Decision{}, false
		}
		return sim.Decision{Proc: active}, true
	})
}

// lastCompleted returns the op name and response value of proc's most
// recent completed operation in h.
func lastCompleted(h history.History, proc int) (op string, val history.Value, ok bool) {
	for i := len(h) - 1; i >= 0; i-- {
		e := h[i]
		if e.Proc == proc && e.Kind == history.KindResponse {
			return e.Op, e.Val, true
		}
	}
	return "", nil, false
}

// lastRead returns proc's most recent successful read value of anything,
// defaulting to 0.
func lastRead(h history.History, proc int) int {
	for i := len(h) - 1; i >= 0; i-- {
		e := h[i]
		if e.Proc == proc && e.Kind == history.KindResponse && e.Op == history.TMRead && e.Val != history.Abort {
			if n, isInt := e.Val.(int); isInt {
				return n
			}
		}
	}
	return 0
}

// Environment returns the adversary's input choices. Both processes follow
// the cycle start → read → write → tryC, restarting after any abort; the
// written values are the other process's read plus one, resolved lazily at
// scheduling time exactly as in the paper's strategy.
func (a *TMStarve) Environment() sim.Environment {
	next := func(proc, other int, v *sim.View) (sim.Invocation, bool) {
		op, val, ok := lastCompleted(v.H, proc)
		switch {
		case !ok || val == history.Abort:
			return sim.Invocation{Op: history.TMStart}, true
		case op == history.TMStart:
			return sim.Invocation{Op: history.TMRead, Obj: a.Var}, true
		case op == history.TMRead:
			arg := sim.LazyArg(func(v *sim.View) history.Value {
				return lastRead(v.H, other) + 1
			})
			return sim.Invocation{Op: history.TMWrite, Obj: a.Var, Arg: arg}, true
		case op == history.TMWrite:
			return sim.Invocation{Op: history.TMTryC}, true
		case op == history.TMTryC && val == history.Commit:
			if proc == a.Victim {
				return sim.Invocation{}, false // adversary lost; park
			}
			return sim.Invocation{Op: history.TMStart}, true
		default:
			return sim.Invocation{Op: history.TMStart}, true
		}
	}
	return sim.EnvironmentFunc(func(proc int, v *sim.View) (sim.Invocation, bool) {
		switch proc {
		case a.Victim:
			return next(a.Victim, a.Helper, v)
		case a.Helper:
			return next(a.Helper, a.Victim, v)
		default:
			return sim.Invocation{}, false // bystanders take no part
		}
	})
}

// Attack runs the adversary against a fresh TM implementation for at most
// maxSteps steps and returns the run result.
func (a *TMStarve) Attack(obj sim.Object, procs, maxSteps int) *sim.Result {
	return sim.Run(sim.Config{
		Procs:     procs,
		Object:    obj,
		Env:       a.Environment(),
		Scheduler: a.Scheduler(),
		MaxSteps:  maxSteps,
	})
}
