package adversary

import (
	"repro/internal/history"
	"repro/internal/sim"
)

// S3 is the Section 5.3 adversary against TM implementations ensuring
// property S, for three (or more) processes:
//
//	Step 1: all processes concurrently invoke start and wait for their
//	        responses (ok or A).
//	Step 2: the processes that were not aborted concurrently invoke tryC;
//	        if every response is A the strategy returns to Step 1,
//	        otherwise (a commit) it stops.
//
// Against a TM ensuring S, in every round the transactions form a
// qualifying same-timestamp concurrent group, so a commit would violate S:
// every transaction aborts forever and no process ever makes commit
// progress — (1,3)-freedom is violated. Rounds counts completed
// all-aborted rounds (the repetition certificate).
type S3 struct {
	// N is the number of attacking processes (the paper uses 3).
	N int

	phase     int // 1 = concurrent starts, 2 = concurrent tryCs
	rounds    int
	committed bool
	cursor    int
	startDone map[int]bool
	startOK   map[int]bool
	tryCDone  map[int]bool
}

// NewS3 creates the adversary for n attacking processes (n >= 3 for the
// property-S argument).
func NewS3(n int) *S3 {
	return &S3{
		N:         n,
		phase:     1,
		startDone: make(map[int]bool),
		startOK:   make(map[int]bool),
		tryCDone:  make(map[int]bool),
	}
}

// Rounds returns the number of completed all-aborted rounds.
func (a *S3) Rounds() int { return a.rounds }

// Committed reports whether some process committed (the adversary lost;
// property-S implementations never let this happen).
func (a *S3) Committed() bool { return a.committed }

func (a *S3) advance(h history.History) {
	for ; a.cursor < len(h); a.cursor++ {
		e := h[a.cursor]
		if e.Kind != history.KindResponse {
			continue
		}
		switch e.Op {
		case history.TMStart:
			a.startDone[e.Proc] = true
			a.startOK[e.Proc] = e.Val != history.Abort
		case history.TMTryC:
			a.tryCDone[e.Proc] = true
			if e.Val == history.Commit {
				a.committed = true
			}
		}
		a.maybeTransition()
	}
}

func (a *S3) maybeTransition() {
	switch a.phase {
	case 1:
		for p := 1; p <= a.N; p++ {
			if !a.startDone[p] {
				return
			}
		}
		a.phase = 2
		// Processes whose start aborted sit this round out.
		for p := 1; p <= a.N; p++ {
			a.tryCDone[p] = !a.startOK[p]
		}
	case 2:
		for p := 1; p <= a.N; p++ {
			if !a.tryCDone[p] {
				return
			}
		}
		a.phase = 1
		a.rounds++
		for p := 1; p <= a.N; p++ {
			a.startDone[p] = false
			a.startOK[p] = false
			a.tryCDone[p] = false
		}
	}
}

// Scheduler rotates among the processes that still owe a response in the
// current step, interleaving their operations so the starts (and then the
// commit requests) are concurrent.
func (a *S3) Scheduler() sim.Scheduler {
	last := 0
	return sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		a.advance(v.H)
		if a.committed {
			return sim.Decision{}, false
		}
		due := func(p int) bool {
			if a.phase == 1 {
				return !a.startDone[p]
			}
			return !a.tryCDone[p]
		}
		for off := 1; off <= a.N; off++ {
			p := (last+off-1)%a.N + 1
			if due(p) && v.ReadyContains(p) {
				last = p
				return sim.Decision{Proc: p}, true
			}
		}
		return sim.Decision{}, false
	})
}

// Environment alternates start and tryC per process: after a successful
// start the process requests a commit; after any abort it starts afresh.
func (a *S3) Environment() sim.Environment {
	return sim.EnvironmentFunc(func(proc int, v *sim.View) (sim.Invocation, bool) {
		if proc > a.N {
			return sim.Invocation{}, false
		}
		op, val, ok := lastCompleted(v.H, proc)
		if ok && op == history.TMStart && val != history.Abort {
			return sim.Invocation{Op: history.TMTryC}, true
		}
		return sim.Invocation{Op: history.TMStart}, true
	})
}

// Attack runs the adversary against a fresh TM implementation.
func (a *S3) Attack(obj sim.Object, maxSteps int) *sim.Result {
	return sim.Run(sim.Config{
		Procs:     a.N,
		Object:    obj,
		Env:       a.Environment(),
		Scheduler: a.Scheduler(),
		MaxSteps:  maxSteps,
	})
}
