package adversary

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tm"
)

func TestBivalenceDefeatsRegisterConsensus(t *testing.T) {
	adv := &Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        0,
		V2:        1,
	}
	res, err := adv.Run(140)
	if err != nil {
		t.Fatalf("adversary failed: %v", err)
	}
	if len(res.Schedule) != 140 {
		t.Fatalf("schedule length %d", len(res.Schedule))
	}
	// Nobody decides on the constructed schedule.
	for _, e := range res.Run.H {
		if e.Kind == history.KindResponse {
			t.Fatalf("a process decided on the bivalent schedule: %s", res.Run.H)
		}
	}
	// The schedule is fair: both processes keep taking steps.
	if res.Run.StepsBy[1] == 0 || res.Run.StepsBy[2] == 0 {
		t.Fatalf("schedule is unfair: steps %v", res.Run.StepsBy)
	}
	half := res.Schedule[len(res.Schedule)/2:]
	seen := map[int]bool{}
	for _, p := range half {
		seen[p] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("both processes must step in the tail: %v", seen)
	}
	// (1,2)-freedom is violated; (1,1)-freedom is vacuous.
	e := liveness.FromResult(res.Run, 0)
	if (liveness.LK{L: 1, K: 2}).Holds(e) {
		t.Error("(1,2)-freedom must fail on the adversary's run")
	}
	if !(liveness.LK{L: 1, K: 1}).Holds(e) {
		t.Error("(1,1)-freedom is vacuously satisfied (two steppers)")
	}
	// Safety still holds, and the external history is the F1 pattern
	// propose_1(v)·propose_2(v').
	if !(safety.AgreementValidity{}).Holds(res.Run.H) {
		t.Error("safety must hold")
	}
	want := ConsensusF1(0, 1)[0]
	if !res.Run.H.Equal(want) {
		t.Errorf("external history = %s, want %s", res.Run.H, want)
	}
	if res.Probes == 0 {
		t.Error("probe accounting broken")
	}
}

func TestBivalenceRespectsSwappedRoles(t *testing.T) {
	// Swapping proposals yields the mirrored attack; the external history
	// is still the two bare invocations.
	adv := &Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        1,
		V2:        0,
	}
	res, err := adv.Run(60)
	if err != nil {
		t.Fatalf("adversary failed: %v", err)
	}
	if len(res.Run.H) != 2 {
		t.Fatalf("history = %s", res.Run.H)
	}
}

func TestBivalenceFailsAgainstCAS(t *testing.T) {
	// Against CAS-based consensus the adversary must get stuck: it reaches
	// a critical configuration whose both successors are univalent with
	// different valences — exactly why CAS has consensus number > 1.
	adv := &Bivalence{
		NewObject: func() sim.Object { return consensus.NewCASBased() },
		V1:        0,
		V2:        1,
	}
	if _, err := adv.Run(60); err == nil {
		t.Fatal("the bivalence adversary cannot defeat CAS consensus")
	}
}

func TestBivalenceRejectsEqualProposals(t *testing.T) {
	adv := &Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        5,
		V2:        5,
	}
	if _, err := adv.Run(10); err == nil {
		t.Fatal("equal proposals cannot be bivalent")
	}
}

func TestTMStarveAgainstI12(t *testing.T) {
	testTMStarve(t, func() sim.Object { return tm.NewI12(2) })
}

func TestTMStarveAgainstGlobalCAS(t *testing.T) {
	testTMStarve(t, func() sim.Object { return tm.NewGlobalCAS(2) })
}

func testTMStarve(t *testing.T, mk func() sim.Object) {
	t.Helper()
	adv := NewTMStarve(1, 2)
	res := adv.Attack(mk(), 2, 600)
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if adv.VictimCommitted() {
		t.Fatal("the victim committed against an opaque TM")
	}
	if adv.Loops() < 5 {
		t.Fatalf("expected many starvation cycles, got %d", adv.Loops())
	}
	commits := map[int]int{}
	for _, e := range res.H {
		if e.Kind == history.KindResponse && e.Val == history.Commit {
			commits[e.Proc]++
		}
	}
	if commits[1] != 0 {
		t.Fatalf("victim committed %d times", commits[1])
	}
	if commits[2] < 5 {
		t.Fatalf("helper should commit every cycle, got %d", commits[2])
	}
	// Local progress and (2,2)-freedom are violated; (1,2)-freedom holds.
	e := liveness.FromResult(res, 0)
	if (liveness.LocalProgress{}).Holds(e) {
		t.Error("local progress must fail")
	}
	if (liveness.LK{L: 2, K: 2, Good: liveness.TMGood()}).Holds(e) {
		t.Error("(2,2)-freedom must fail")
	}
	if !(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(e) {
		t.Error("(1,2)-freedom holds: the helper commits")
	}
	// The history stays opaque: the adversary wins on liveness, not
	// safety.
	if !safety.Opaque(res.H) {
		t.Error("opacity must hold on the adversary's run")
	}
	// The first event is the victim's start: the swapped adversary's
	// histories are disjoint from these (Corollary 4.6).
	if res.H[0].Proc != 1 || res.H[0].Op != history.TMStart {
		t.Errorf("first event = %s, want start_1", res.H[0])
	}
}

func TestTMStarveLassoCertificate(t *testing.T) {
	// The starvation run's schedule tail is periodic (each cycle repeats
	// the same step pattern) and the victim gets zero commits per cycle —
	// the repetition certificate mirroring the paper's "the adversary
	// repeats Step 1" argument.
	adv := NewTMStarve(1, 2)
	res := adv.Attack(tm.NewI12(2), 2, 600)
	e := liveness.FromResult(res, 0)
	c, ok := liveness.FindLasso(e, 4, 80)
	if !ok {
		t.Fatal("the starvation schedule must be periodic")
	}
	if !c.Starved(e, liveness.TMGood(), 1) {
		t.Errorf("victim must be starved per cycle: %v", c.GoodPerRep(e, liveness.TMGood(), 1))
	}
	if c.Starved(e, liveness.TMGood(), 2) {
		t.Errorf("helper commits per cycle: %v", c.GoodPerRep(e, liveness.TMGood(), 2))
	}
}

func TestS3LassoCertificate(t *testing.T) {
	adv := NewS3(3)
	res := adv.Attack(tm.NewI12(3), 900)
	e := liveness.FromResult(res, 0)
	c, ok := liveness.FindLasso(e, 4, 60)
	if !ok {
		t.Fatal("the S3 schedule must be periodic")
	}
	for p := 1; p <= 3; p++ {
		if !c.Starved(e, liveness.TMGood(), p) {
			t.Errorf("p%d must be starved per round: %v", p, c.GoodPerRep(e, liveness.TMGood(), p))
		}
	}
}

func TestBivalenceLassoCertificate(t *testing.T) {
	// The constructed bivalent schedule of the commit-adopt implementation
	// converges to the lock-step alternation, which is periodic with zero
	// responses per period.
	adv := &Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        0,
		V2:        1,
	}
	res, err := adv.Run(140)
	if err != nil {
		t.Fatal(err)
	}
	e := liveness.FromResult(res.Run, 0)
	c, ok := liveness.FindLasso(e, 4, 40)
	if !ok {
		t.Fatal("the bivalent schedule should settle into a periodic pattern")
	}
	for p := 1; p <= 2; p++ {
		if !c.Starved(e, nil, p) {
			t.Errorf("p%d never decides: %v", p, c.GoodPerRep(e, nil, p))
		}
	}
}

func TestTMStarveSwappedRolesDisjointHistories(t *testing.T) {
	a1 := NewTMStarve(1, 2)
	r1 := a1.Attack(tm.NewI12(2), 2, 200)
	a2 := NewTMStarve(2, 1)
	r2 := a2.Attack(tm.NewI12(2), 2, 200)
	if r1.H[0].Proc == r2.H[0].Proc {
		t.Fatal("swapped adversary must start with the other process")
	}
	// No prefix of one is a history of the other (they differ at the very
	// first event), which gives F1 ∩ F2 = ∅.
	if r1.H[0].Equal(r2.H[0]) {
		t.Error("first events must differ")
	}
	// The swapped run is the role-mirror of the original.
	if !SwapProcs(r1.H, 1, 2).Equal(r2.H) {
		t.Error("swapped adversary's history should mirror the original")
	}
}

func TestS3AgainstI12(t *testing.T) {
	adv := NewS3(3)
	res := adv.Attack(tm.NewI12(3), 900)
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if adv.Committed() {
		t.Fatal("no transaction may commit against a property-S TM")
	}
	if adv.Rounds() < 10 {
		t.Fatalf("expected many aborted rounds, got %d", adv.Rounds())
	}
	for _, e := range res.H {
		if e.Kind == history.KindResponse && e.Val == history.Commit {
			t.Fatalf("commit appeared: %s", res.H)
		}
	}
	e := liveness.FromResult(res, 0)
	if (liveness.LK{L: 1, K: 3, Good: liveness.TMGood()}).Holds(e) {
		t.Error("(1,3)-freedom must fail: three steppers, zero commits")
	}
	if !(safety.PropertyS{}).Holds(res.H) {
		t.Error("property S holds on the all-aborted history")
	}
}

func TestS3AgainstGlobalCASCommits(t *testing.T) {
	// Without the timestamp rule someone commits in the first round and
	// the adversary stops, having produced a property-S violation.
	adv := NewS3(3)
	res := adv.Attack(tm.NewGlobalCAS(3), 900)
	if !adv.Committed() {
		t.Fatal("GlobalCAS lets the first tryC commit")
	}
	if (safety.PropertyS{}).Holds(res.H) {
		t.Error("the committed group violates property S")
	}
	if !safety.Opaque(res.H) {
		t.Error("opacity itself holds")
	}
}

func TestConsensusF1F2(t *testing.T) {
	f1 := ConsensusF1(0, 1)
	f2 := ConsensusF2(0, 1)
	if len(f1) != 6 || len(f2) != 6 {
		t.Fatalf("|F1| = %d, |F2| = %d, want 6 each", len(f1), len(f2))
	}
	prop := safety.AgreementValidity{}
	for i, h := range f1 {
		if !h.WellFormed() {
			t.Errorf("F1[%d] not well-formed: %s", i, h)
		}
		if !prop.Holds(h) {
			t.Errorf("F1[%d] must be in S (Definition 4.3 condition 1): %s", i, h)
		}
		if len(h.PendingProcs()) == 0 {
			t.Errorf("F1[%d] must leave someone undecided: %s", i, h)
		}
		if h[0].Proc != 1 {
			t.Errorf("F1[%d] must begin with p1's proposal", i)
		}
	}
	for i, h := range f2 {
		if h[0].Proc != 2 {
			t.Errorf("F2[%d] must begin with p2's proposal", i)
		}
	}
	// Disjointness: the heart of Corollary 4.5.
	keys := make(map[string]bool)
	for _, h := range f1 {
		keys[h.Key()] = true
	}
	for _, h := range f2 {
		if keys[h.Key()] {
			t.Fatalf("F1 and F2 intersect at %s", h)
		}
	}
}

func TestSwapProcsInvolution(t *testing.T) {
	h := history.History{
		history.Invoke(1, "propose", 0),
		history.Invoke(2, "propose", 1),
		history.Response(1, "propose", 0),
		history.Crash(3),
	}
	sw := SwapProcs(h, 1, 2)
	if sw[0].Proc != 2 || sw[1].Proc != 1 || sw[3].Proc != 3 {
		t.Errorf("swap wrong: %s", sw)
	}
	if !SwapProcs(sw, 1, 2).Equal(h) {
		t.Error("SwapProcs must be an involution")
	}
	if len(h) == 0 || h[0].Proc != 1 {
		t.Error("SwapProcs must not mutate its input")
	}
}
