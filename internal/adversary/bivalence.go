// Package adversary implements the adversaries of the paper's impossibility
// arguments as executable strategies against real implementations:
//
//   - Bivalence: the FLP/Chor-Israeli-Li adversary for register-based
//     consensus (Section 4.1's F1). It maintains a bivalent schedule prefix
//     by probing solo-run decisions under deterministic replay and extends
//     it forever while keeping both processes stepping — a fair schedule in
//     which nobody ever decides.
//   - TMStarve: the Steps 1-3 strategy of Section 4.1 against opaque TMs:
//     p1 is forever aborted by p2's interfering commits, violating local
//     progress (and (2,2)-freedom).
//   - S3: the Section 5.3 adversary: three processes repeatedly start
//     concurrently and then request commits concurrently; against any TM
//     ensuring property S, every transaction aborts, violating
//     (1,3)-freedom.
//   - ConsensusF1/F2 and SwapProcs: the paper's finite adversary sets and
//     the process-swap transformation, used for the G_max = ∅ corollaries.
//
// An adversary is an entity that "decides on the schedule and inputs of
// processes" — here realized as a paired sim.Scheduler and
// sim.Environment over shared strategy state.
package adversary

import (
	"errors"
	"fmt"

	"repro/internal/history"
	"repro/internal/sim"
)

// Bivalence drives any deterministic two-process consensus implementation
// into an arbitrarily long fair schedule in which neither process decides.
//
// A schedule prefix σ is *bivalent* when the two solo continuations decide
// differently: running p1 alone after σ decides a different value than
// running p2 alone after σ. The empty prefix is bivalent (each process
// alone decides its own proposal, by validity); from a bivalent prefix of a
// deterministic two-process implementation at least one one-step extension
// is bivalent (otherwise the two univalent successors would have different
// valences, contradicting determinism of register steps — the classic
// FLP/CIL case analysis). The adversary greedily extends, preferring the
// process with fewer steps so far, which keeps the schedule fair.
type Bivalence struct {
	// NewObject creates a fresh instance of the implementation under
	// attack; it is called once per replay probe.
	NewObject func() sim.Object
	// V1, V2 are the proposals of p1 and p2; they must differ.
	V1, V2 history.Value
	// ProbeSlack bounds each solo probe: the probe run may take up to
	// len(prefix)+ProbeSlack steps. It must exceed the implementation's
	// solo decision time from any reachable configuration. 0 means 400.
	ProbeSlack int
}

// Result is the outcome of a Bivalence attack.
type Result struct {
	// Schedule is the constructed fair non-deciding schedule prefix.
	Schedule []int
	// Run is the replay of Schedule against a fresh instance.
	Run *sim.Result
	// Probes counts solo-probe replays performed.
	Probes int
}

// env returns the proposal environment: both processes propose forever.
func (b *Bivalence) env() sim.Environment {
	return sim.RepeatPerProc(map[int]sim.Invocation{
		1: {Op: "propose", Arg: b.V1},
		2: {Op: "propose", Arg: b.V2},
	})
}

// probe replays prefix and then runs proc solo, returning the decision
// value (the first response in the run) and whether one occurred.
func (b *Bivalence) probe(prefix []int, proc int) (history.Value, bool) {
	slack := b.ProbeSlack
	if slack == 0 {
		slack = 400
	}
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    b.NewObject(),
		Env:       b.env(),
		Scheduler: sim.Seq(sim.FixedProcs(prefix), sim.Solo(proc)),
		MaxSteps:  len(prefix) + slack,
	})
	for _, e := range res.H {
		if e.Kind == history.KindResponse {
			return e.Val, true
		}
	}
	return nil, false
}

// bivalent reports whether prefix is bivalent, counting probes.
func (b *Bivalence) bivalent(prefix []int, probes *int) (bool, error) {
	*probes += 2
	d1, ok1 := b.probe(prefix, 1)
	if !ok1 {
		return false, fmt.Errorf("adversary: solo probe of p1 after %d steps did not decide (raise ProbeSlack or the implementation is not obstruction-free)", len(prefix))
	}
	d2, ok2 := b.probe(prefix, 2)
	if !ok2 {
		return false, fmt.Errorf("adversary: solo probe of p2 after %d steps did not decide", len(prefix))
	}
	return d1 != d2, nil
}

// Run constructs a fair non-deciding schedule of the given length and
// replays it, returning the result. It fails if the initial configuration
// is not bivalent (equal proposals) or if bivalence cannot be maintained,
// which for a correct register-based consensus implementation cannot happen.
func (b *Bivalence) Run(steps int) (*Result, error) {
	if b.V1 == b.V2 {
		return nil, errors.New("adversary: proposals must differ for initial bivalence")
	}
	probes := 0
	ok, err := b.bivalent(nil, &probes)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("adversary: initial configuration not bivalent; implementation violates validity")
	}
	prefix := make([]int, 0, steps)
	count := [3]int{}
	for len(prefix) < steps {
		// Prefer the process with fewer steps, for fairness.
		first, second := 1, 2
		if count[2] < count[1] {
			first, second = 2, 1
		}
		extended := false
		for _, p := range []int{first, second} {
			cand := append(prefix, p)
			ok, err := b.bivalent(cand, &probes)
			if err != nil {
				return nil, err
			}
			if ok {
				prefix = cand
				count[p]++
				extended = true
				break
			}
		}
		if !extended {
			return nil, fmt.Errorf("adversary: no bivalence-preserving step after %d steps (impossible for a correct deterministic register implementation)", len(prefix))
		}
	}
	run := sim.Run(sim.Config{
		Procs:     2,
		Object:    b.NewObject(),
		Env:       b.env(),
		Scheduler: sim.FixedProcs(prefix),
		MaxSteps:  len(prefix) + 1,
	})
	return &Result{Schedule: prefix, Run: run, Probes: probes}, nil
}
