// Package snapshot implements a wait-free atomic snapshot object from
// single-writer multi-reader registers, following Afek, Attiya, Dolev,
// Gafni, Merritt and Shavit (JACM 1993).
//
// The paper's Algorithm 1 uses a snapshot object R[1..n] with an atomic
// scan. internal/base provides it as a hardware primitive (one-step scan);
// this package provides the classic software construction so that the TM
// can be built from registers and a single compare-and-swap only — every
// register access is one simulator step, and scans are genuinely
// concurrent with updates.
//
// Update_i embeds a full scan ("view") into the written cell; Scan double
// collects until either two collects agree (a clean snapshot) or some
// updater is seen to move twice, in which case its embedded view — taken
// entirely within our scan's window — is borrowed. Both operations are
// wait-free: a scan performs O(n) double collects.
package snapshot

import (
	"fmt"

	"repro/internal/base"
)

// Value is the component datum.
type Value = base.Value

// cell is the immutable record stored in each component register.
type cell struct {
	val Value
	seq int
	// view is the scan embedded by the update that wrote this cell; nil
	// for the initial cell.
	view []Value
}

// SW is the software snapshot object. Component i must only be updated by
// process i+1 (single-writer), which is how the paper's Algorithm 1 uses
// R[1..n].
type SW struct {
	name string
	regs []*base.Register

	// borrows counts scans that returned an embedded view rather than a
	// clean double collect (observability for tests and benchmarks). It is
	// only mutated inside granted steps' windows, so reads after a run are
	// race-free.
	borrows int
}

// Borrows returns how many scans returned a borrowed embedded view.
func (s *SW) Borrows() int { return s.borrows }

// New creates a software snapshot with n components initialized to
// initial.
func New(name string, n int, initial Value) *SW {
	s := &SW{name: name, regs: make([]*base.Register, n)}
	for i := range s.regs {
		s.regs[i] = base.NewRegister(
			fmt.Sprintf("%s[%d]", name, i),
			&cell{val: initial},
		)
	}
	return s
}

// Len returns the number of components.
func (s *SW) Len() int { return len(s.regs) }

// swState is a captured SW configuration: the component cells (immutable
// records, so the pointers are the state) plus the borrow counter.
type swState struct {
	cells   []Value
	borrows int
}

// Snapshot captures the snapshot object's state for the incremental
// exploration engine (composed into sim.Snapshottable hooks).
func (s *SW) Snapshot() any {
	st := &swState{cells: make([]Value, len(s.regs)), borrows: s.borrows}
	for i, r := range s.regs {
		st.cells[i] = r.Snapshot()
	}
	return st
}

// Restore reinstates a state captured by Snapshot.
func (s *SW) Restore(v any) {
	st := v.(*swState)
	for i, r := range s.regs {
		r.Restore(st.cells[i])
	}
	s.borrows = st.borrows
}

// collect reads every component register once (n steps).
func (s *SW) collect(p base.Stepper) []*cell {
	out := make([]*cell, len(s.regs))
	for i, r := range s.regs {
		out[i] = r.Read(p).(*cell)
	}
	return out
}

func values(cells []*cell) []Value {
	out := make([]Value, len(cells))
	for i, c := range cells {
		out[i] = c.val
	}
	return out
}

// Scan returns an atomic snapshot of all components. It is wait-free: each
// double collect either agrees (the snapshot is the second collect, which
// was valid at every point between the two) or some component moved; a
// component that moves twice embeds a view scanned entirely inside our
// window, which is returned instead.
func (s *SW) Scan(p base.Stepper) []Value {
	n := len(s.regs)
	moved := make([]int, n)
	prev := s.collect(p)
	for {
		cur := s.collect(p)
		agree := true
		for i := range cur {
			if cur[i].seq != prev[i].seq {
				agree = false
				moved[i]++
				if moved[i] >= 2 {
					// cur[i]'s update began after our scan did (it is the
					// second move we observed), so its embedded view was
					// taken within our window.
					s.borrows++
					view := make([]Value, n)
					copy(view, cur[i].view)
					return view
				}
			}
		}
		if agree {
			return values(cur)
		}
		prev = cur
	}
}

// Update atomically sets component i (0-based) to v. Per the single-writer
// discipline, only one process may ever update a given component. The
// update embeds a fresh scan, making it linearizable with concurrent
// scans.
func (s *SW) Update(p base.Stepper, i int, v Value) {
	view := s.Scan(p)
	old := s.regs[i].Read(p).(*cell)
	s.regs[i].Write(p, &cell{val: v, seq: old.seq + 1, view: view})
}
