package snapshot

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// seqStepper executes ops immediately; for sequential unit tests.
type seqStepper struct{ steps int }

func (s *seqStepper) Exec(desc string, op func()) {
	s.steps++
	op()
}

func TestSequentialSemantics(t *testing.T) {
	st := &seqStepper{}
	s := New("R", 3, 0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.Scan(st)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("initial Scan[%d] = %v", i, v)
		}
	}
	s.Update(st, 1, 7)
	got = s.Scan(st)
	want := []Value{0, 7, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
	s.Update(st, 1, 8)
	s.Update(st, 2, 9)
	got = s.Scan(st)
	want = []Value{0, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
	if s.Borrows() != 0 {
		t.Errorf("sequential scans never borrow, got %d", s.Borrows())
	}
}

// snapObject drives SW through the simulator: "update" writes the caller's
// own component, "scan" returns the encoded vector.
type snapObject struct {
	s *SW
}

func (o *snapObject) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case "update":
		o.s.Update(p, p.ID()-1, inv.Arg)
		return history.OK
	case "scan":
		return safety.EncodeVector(o.s.Scan(p))
	default:
		return nil
	}
}

func TestLinearizableUnderRandomSchedules(t *testing.T) {
	spec := safety.SnapshotSpec{N: 3, Initial: 0}
	for seed := int64(0); seed < 120; seed++ {
		obj := &snapObject{s: New("R", 3, 0)}
		res := sim.Run(sim.Config{
			Procs:  3,
			Object: obj,
			Env: sim.Script(map[int][]sim.Invocation{
				1: {{Op: "update", Arg: 11}, {Op: "scan"}, {Op: "update", Arg: 12}},
				2: {{Op: "scan"}, {Op: "update", Arg: 21}, {Op: "scan"}},
				3: {{Op: "update", Arg: 31}, {Op: "scan"}},
			}),
			Scheduler: sim.Random(seed),
			MaxSteps:  2000,
		})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !safety.Linearizable(spec, res.H) {
			t.Fatalf("seed %d: snapshot not linearizable: %s", seed, res.H)
		}
	}
}

func TestLinearizableExhaustive(t *testing.T) {
	// All interleavings of one scan against one update, to a depth
	// covering complete runs (the borrow path has its own directed test).
	spec := safety.SnapshotSpec{N: 2, Initial: 0}
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return &snapObject{s: New("R", 2, 0)} },
		NewEnv: func() sim.Environment {
			return sim.Script(map[int][]sim.Invocation{
				1: {{Op: "scan"}},
				2: {{Op: "update", Arg: 5}},
			})
		},
		Depth: 24,
		Check: explore.CheckSafety("snapshot-linearizability", func(h history.History) bool {
			return safety.Linearizable(spec, h)
		}),
	})
	if err != nil {
		t.Fatalf("exhaustive check failed: %v (witness %v)", err, st.Witness)
	}
	if st.Prefixes < 100 {
		t.Errorf("expected substantial exploration, got %d prefixes", st.Prefixes)
	}
}

func TestBorrowPathTaken(t *testing.T) {
	// Force the borrow: p1 begins a scan (first collect), then p2 performs
	// two full updates, then p1's further collects observe two moves and
	// borrow the embedded view.
	obj := &snapObject{s: New("R", 2, 0)}
	res := sim.Run(sim.Config{
		Procs:  2,
		Object: obj,
		Env: sim.Script(map[int][]sim.Invocation{
			1: {{Op: "scan"}},
			2: {{Op: "update", Arg: 5}, {Op: "update", Arg: 6}},
		}),
		Scheduler: sim.Seq(
			sim.Limit(sim.Solo(1), 3), // invoke + first collect (2 reads)
			sim.Limit(sim.Solo(2), 8), // first update completes
			sim.Limit(sim.Solo(1), 2), // second collect: sees one move
			sim.Limit(sim.Solo(2), 8), // second update completes
			sim.Solo(1),               // third collect: second move → borrow
			sim.Solo(2),
		),
		MaxSteps: 100,
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if obj.s.Borrows() == 0 {
		t.Fatal("schedule should force a borrowed view")
	}
	if !safety.Linearizable(safety.SnapshotSpec{N: 2, Initial: 0}, res.H) {
		t.Fatalf("borrowed scan must stay linearizable: %s", res.H)
	}
}

func TestScanWaitFree(t *testing.T) {
	// A scan's step count is bounded even under continuous interference:
	// with n=2 and a single interfering updater, a scan needs at most
	// 1 + (n+2) collects of n reads each, i.e. well under 20 steps.
	obj := &snapObject{s: New("R", 2, 0)}
	res := sim.Run(sim.Config{
		Procs:  2,
		Object: obj,
		Env: sim.Script(map[int][]sim.Invocation{
			1: {{Op: "scan"}},
			2: {
				{Op: "update", Arg: 1}, {Op: "update", Arg: 2},
				{Op: "update", Arg: 3}, {Op: "update", Arg: 4},
				{Op: "update", Arg: 5}, {Op: "update", Arg: 6},
			},
		}),
		// Give p1 one step for every two of p2's: maximal interference.
		Scheduler: sim.Limit(sim.Alternate(1, 2, 2), 120),
		MaxSteps:  200,
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if res.H.Pending(1) {
		t.Fatalf("scan must complete despite interference (took >%d steps)", res.StepsBy[1])
	}
	if res.StepsBy[1] > 20 {
		t.Errorf("scan took %d steps, want <= 20 (wait-freedom bound)", res.StepsBy[1])
	}
}

func TestSingleWriterSequencesAdvance(t *testing.T) {
	st := &seqStepper{}
	s := New("R", 2, 0)
	for i := 1; i <= 5; i++ {
		s.Update(st, 0, i*10)
	}
	c := s.regs[0].Read(st).(*cell)
	if c.seq != 5 || c.val != 50 {
		t.Errorf("cell = seq %d val %v, want seq 5 val 50", c.seq, c.val)
	}
}
