package history

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses the textual format produced by History.String back into a
// History: events separated by " · ", each "op[@obj]_p(arg)" for
// invocations, "ret[@obj]_p[op][=val]" for responses, "crash_p" for
// crashes. Numeric values parse as ints, "true"/"false" as bools,
// everything else as strings (so a string value that looks like a number
// does not round-trip — test fixtures avoid that).
func Parse(s string) (History, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "ε" {
		return History{}, nil
	}
	var h History
	for _, tok := range strings.Split(s, "·") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		e, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		h = append(h, e)
	}
	return h, nil
}

// MustParse is Parse that panics on error, for test fixtures.
func MustParse(s string) History {
	h, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return h
}

func parseEvent(tok string) (Event, error) {
	if rest, ok := strings.CutPrefix(tok, "crash_"); ok {
		p, err := strconv.Atoi(rest)
		if err != nil {
			return Event{}, fmt.Errorf("history: bad crash event %q: %w", tok, err)
		}
		return Crash(p), nil
	}
	if rest, ok := strings.CutPrefix(tok, "ret"); ok {
		return parseResponse(tok, rest)
	}
	return parseInvoke(tok)
}

func parseResponse(tok, rest string) (Event, error) {
	obj := ""
	if r, ok := strings.CutPrefix(rest, "@"); ok {
		i := strings.IndexByte(r, '_')
		if i < 0 {
			return Event{}, fmt.Errorf("history: bad response %q", tok)
		}
		obj, rest = r[:i], r[i:]
	}
	rest, ok := strings.CutPrefix(rest, "_")
	if !ok {
		return Event{}, fmt.Errorf("history: bad response %q", tok)
	}
	open := strings.IndexByte(rest, '[')
	closing := strings.IndexByte(rest, ']')
	if open < 0 || closing < open {
		return Event{}, fmt.Errorf("history: bad response %q", tok)
	}
	p, err := strconv.Atoi(rest[:open])
	if err != nil {
		return Event{}, fmt.Errorf("history: bad process in %q: %w", tok, err)
	}
	op := rest[open+1 : closing]
	var val Value
	if tail := rest[closing+1:]; tail != "" {
		v, ok := strings.CutPrefix(tail, "=")
		if !ok {
			return Event{}, fmt.Errorf("history: bad response value in %q", tok)
		}
		val = parseValue(v)
	}
	e := Event{Kind: KindResponse, Proc: p, Op: op, Obj: obj, Val: val}
	return e, nil
}

func parseInvoke(tok string) (Event, error) {
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return Event{}, fmt.Errorf("history: bad invocation %q", tok)
	}
	head := tok[:open]
	argStr := tok[open+1 : len(tok)-1]
	under := strings.LastIndexByte(head, '_')
	if under < 0 {
		return Event{}, fmt.Errorf("history: bad invocation %q", tok)
	}
	p, err := strconv.Atoi(head[under+1:])
	if err != nil {
		return Event{}, fmt.Errorf("history: bad process in %q: %w", tok, err)
	}
	name := head[:under]
	obj := ""
	if at := strings.IndexByte(name, '@'); at >= 0 {
		name, obj = name[:at], name[at+1:]
	}
	var arg Value
	if argStr != "" {
		arg = parseValue(argStr)
	}
	return Event{Kind: KindInvoke, Proc: p, Op: name, Obj: obj, Arg: arg}, nil
}

func parseValue(s string) Value {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	if s == "true" {
		return true
	}
	if s == "false" {
		return false
	}
	return s
}
