// Package history implements the event and history formalism of Section 2
// of "Safety-Liveness Exclusion in Distributed Computing" (Bushkov &
// Guerraoui, PODC 2015).
//
// A history is the externally visible part of an execution of an I/O
// automaton modeling a shared-object implementation: a sequence of
// invocation events, response events and crash events, each tagged with a
// process identifier. The package provides well-formedness checking,
// per-process projection (h|p_i in the paper), prefix enumeration,
// equivalence, and operation matching, which the safety and liveness
// checkers build upon.
package history

import (
	"fmt"
	"strings"
)

// Kind distinguishes the external action classes of the paper's model:
// invocations, responses, the special crash_i input actions, and the
// recover_i actions of the crash–recovery extension.
type Kind int

// Event kinds. They start at one so the zero Kind is invalid and cannot be
// confused with a real event.
const (
	KindInvoke Kind = iota + 1
	KindResponse
	KindCrash
	KindRecover
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindInvoke:
		return "invoke"
	case KindResponse:
		return "response"
	case KindCrash:
		return "crash"
	case KindRecover:
		return "recover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a datum carried by an invocation or response. Values must be
// comparable with == (ints, strings, bools, small comparable structs);
// histories are compared structurally.
type Value any

// Distinguished transactional-memory response values, matching the paper's
// notation: ok for successful non-committing operations, A for abort events
// and C for commit events.
const (
	OK     = "ok"
	Abort  = "A"
	Commit = "C"
)

// Event is a single external action of an implementation automaton.
type Event struct {
	// Kind says whether this is an invocation, a response, or a crash.
	Kind Kind
	// Proc is the 1-based identifier of the process performing the event.
	Proc int
	// Op names the operation, e.g. "propose", "start", "read", "write",
	// "tryC". Empty for crash events.
	Op string
	// Obj optionally names the object or transactional variable the
	// operation addresses (e.g. "x1"). Empty when the object is implicit.
	Obj string
	// Arg is the invocation argument; nil when the operation takes none or
	// for responses and crashes.
	Arg Value
	// Val is the response value; nil for invocations and crashes.
	Val Value
}

// Invoke constructs an invocation event.
func Invoke(proc int, op string, arg Value) Event {
	return Event{Kind: KindInvoke, Proc: proc, Op: op, Arg: arg}
}

// InvokeObj constructs an invocation event on a named object (a
// transactional variable in the TM context).
func InvokeObj(proc int, op, obj string, arg Value) Event {
	return Event{Kind: KindInvoke, Proc: proc, Op: op, Obj: obj, Arg: arg}
}

// Response constructs a response event.
func Response(proc int, op string, val Value) Event {
	return Event{Kind: KindResponse, Proc: proc, Op: op, Val: val}
}

// ResponseObj constructs a response event on a named object.
func ResponseObj(proc int, op, obj string, val Value) Event {
	return Event{Kind: KindResponse, Proc: proc, Op: op, Obj: obj, Val: val}
}

// Crash constructs a crash_i event for the given process.
func Crash(proc int) Event {
	return Event{Kind: KindCrash, Proc: proc}
}

// Recover constructs a recover_i event for the given process: the crashed
// process restarts with its volatile state wiped and only durable object
// state surviving. Any operation pending at the crash never responds.
func Recover(proc int) Event {
	return Event{Kind: KindRecover, Proc: proc}
}

// String renders the event in a compact notation close to the paper's:
// propose_1(0) for invocations, ret_1[propose]=0 for responses, crash_1 for
// crashes.
func (e Event) String() string {
	var b strings.Builder
	switch e.Kind {
	case KindInvoke:
		b.WriteString(e.Op)
		if e.Obj != "" {
			b.WriteString("@")
			b.WriteString(e.Obj)
		}
		fmt.Fprintf(&b, "_%d", e.Proc)
		if e.Arg != nil {
			fmt.Fprintf(&b, "(%v)", e.Arg)
		} else {
			b.WriteString("()")
		}
	case KindResponse:
		b.WriteString("ret")
		if e.Obj != "" {
			b.WriteString("@")
			b.WriteString(e.Obj)
		}
		fmt.Fprintf(&b, "_%d[%s]", e.Proc, e.Op)
		if e.Val != nil {
			fmt.Fprintf(&b, "=%v", e.Val)
		}
	case KindCrash:
		fmt.Fprintf(&b, "crash_%d", e.Proc)
	case KindRecover:
		fmt.Fprintf(&b, "recover_%d", e.Proc)
	default:
		fmt.Fprintf(&b, "invalid_%d", e.Proc)
	}
	return b.String()
}

// Equal reports structural equality of two events.
func (e Event) Equal(o Event) bool {
	return e.Kind == o.Kind && e.Proc == o.Proc && e.Op == o.Op &&
		e.Obj == o.Obj && e.Arg == o.Arg && e.Val == o.Val
}
