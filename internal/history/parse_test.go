package history

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in   string
		want History
	}{
		{"ε", History{}},
		{"", History{}},
		{"propose_1(0)", History{Invoke(1, "propose", 0)}},
		{"start_2()", History{Invoke(2, "start", nil)}},
		{"write@x_1(5)", History{InvokeObj(1, "write", "x", 5)}},
		{"ret_1[propose]=0", History{Response(1, "propose", 0)}},
		{"ret_3[tryC]", History{Response(3, "tryC", nil)}},
		{"ret@x_2[read]=A", History{ResponseObj(2, "read", "x", "A")}},
		{"crash_2", History{Crash(2)}},
		{
			"propose_1(0) · ret_1[propose]=0 · crash_2",
			History{Invoke(1, "propose", 0), Response(1, "propose", 0), Crash(2)},
		},
		{"cas_1(true)", History{Invoke(1, "cas", true)}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("Parse(%q) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"garbage",
		"crash_x",
		"ret_1propose",
		"propose_(0)",
		"ret_z[op]=1",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("garbage")
}

// randomParsableHistory builds histories whose values survive the
// formatting round trip (ints, bools, and non-numeric strings).
func randomParsableHistory(r *rand.Rand, events int) History {
	ops := []string{"propose", "read", "write", "tryC", "start"}
	objs := []string{"", "x", "y0"}
	vals := []Value{nil, 0, 1, 42, true, false, "ok", "A", "C", "hello"}
	var h History
	pending := map[int]string{}
	for i := 0; i < events; i++ {
		p := 1 + r.Intn(3)
		if op, ok := pending[p]; ok {
			h = append(h, Event{
				Kind: KindResponse, Proc: p, Op: op,
				Obj: objs[r.Intn(len(objs))], Val: vals[r.Intn(len(vals))],
			})
			delete(pending, p)
			continue
		}
		switch r.Intn(8) {
		case 0:
			h = append(h, Crash(p))
		default:
			op := ops[r.Intn(len(ops))]
			h = append(h, Event{
				Kind: KindInvoke, Proc: p, Op: op,
				Obj: objs[r.Intn(len(objs))], Arg: vals[r.Intn(len(vals))],
			})
			pending[p] = op
		}
	}
	return h
}

func TestQuickParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomParsableHistory(r, int(n)%24)
		back, err := Parse(h.String())
		if err != nil {
			t.Logf("Parse(%q): %v", h.String(), err)
			return false
		}
		if !back.Equal(h) {
			t.Logf("round trip: %s != %s", back, h)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
