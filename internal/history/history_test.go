package history

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventString(t *testing.T) {
	tests := []struct {
		name string
		e    Event
		want string
	}{
		{"invoke with arg", Invoke(1, "propose", 0), "propose_1(0)"},
		{"invoke no arg", Invoke(2, "start", nil), "start_2()"},
		{"invoke on object", InvokeObj(1, "write", "x", 5), "write@x_1(5)"},
		{"response", Response(1, "propose", 0), "ret_1[propose]=0"},
		{"response no val", Response(3, "tryC", nil), "ret_3[tryC]"},
		{"crash", Crash(2), "crash_2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.e.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestWellFormed(t *testing.T) {
	tests := []struct {
		name string
		h    History
		want bool
	}{
		{"empty", History{}, true},
		{"single invoke", History{Invoke(1, "propose", 0)}, true},
		{"invoke response", History{Invoke(1, "propose", 0), Response(1, "propose", 0)}, true},
		{"double invoke same proc", History{Invoke(1, "propose", 0), Invoke(1, "propose", 1)}, false},
		{"response without invoke", History{Response(1, "propose", 0)}, false},
		{"interleaved two procs", History{
			Invoke(1, "propose", 0), Invoke(2, "propose", 1),
			Response(2, "propose", 1), Response(1, "propose", 1),
		}, true},
		{"crash then event", History{Crash(1), Invoke(1, "propose", 0)}, false},
		{"crash while pending ok", History{Invoke(1, "propose", 0), Crash(1)}, true},
		{"response after response", History{
			Invoke(1, "p", 0), Response(1, "p", 0), Response(1, "p", 0),
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.h.WellFormed(); got != tt.want {
				t.Errorf("WellFormed() = %v, want %v for %s", got, tt.want, tt.h)
			}
		})
	}
}

func TestProjectAndPending(t *testing.T) {
	h := History{
		Invoke(1, "propose", 0),
		Invoke(2, "propose", 1),
		Response(1, "propose", 0),
	}
	p1 := h.Project(1)
	if len(p1) != 2 || p1[0].Proc != 1 || p1[1].Proc != 1 {
		t.Fatalf("Project(1) = %v", p1)
	}
	if h.Pending(1) {
		t.Error("proc 1 should not be pending")
	}
	if !h.Pending(2) {
		t.Error("proc 2 should be pending")
	}
	if got := h.PendingProcs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("PendingProcs() = %v, want [2]", got)
	}
}

func TestProcsSorted(t *testing.T) {
	h := History{Invoke(3, "p", 0), Invoke(1, "p", 0), Invoke(2, "p", 0)}
	got := h.Procs()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Procs() = %v, want %v", got, want)
		}
	}
}

func TestPrefixAndIsPrefixOf(t *testing.T) {
	h := History{Invoke(1, "p", 0), Response(1, "p", 0), Invoke(2, "p", 1)}
	if !h.Prefix(2).IsPrefixOf(h) {
		t.Error("Prefix(2) should be a prefix of h")
	}
	if h.Prefix(5).Equal(h) != true {
		t.Error("Prefix beyond length should clamp to h")
	}
	if h.Prefix(-1).Equal(History{}) != true {
		t.Error("negative prefix should be empty")
	}
	other := History{Invoke(1, "p", 0), Response(1, "p", 1)}
	if other.IsPrefixOf(h) {
		t.Error("mismatching history should not be a prefix")
	}
	longer := h.Append(Crash(1))
	if longer.IsPrefixOf(h) {
		t.Error("longer history cannot be a prefix of shorter")
	}
}

func TestEquivalent(t *testing.T) {
	h1 := History{
		Invoke(1, "p", 0), Invoke(2, "p", 1),
		Response(1, "p", 0), Response(2, "p", 0),
	}
	// Same per-process projections, different interleaving.
	h2 := History{
		Invoke(2, "p", 1), Invoke(1, "p", 0),
		Response(2, "p", 0), Response(1, "p", 0),
	}
	if !h1.Equivalent(h2) {
		t.Error("reordered interleaving with identical projections should be equivalent")
	}
	h3 := History{Invoke(1, "p", 0), Response(1, "p", 1)}
	if h1.Equivalent(h3) {
		t.Error("different projections should not be equivalent")
	}
	// Equivalence must consider processes present only in one history.
	h4 := h1.Append(Invoke(3, "p", 2))
	if h1.Equivalent(h4) {
		t.Error("extra process must break equivalence")
	}
}

func TestCrashedCorrect(t *testing.T) {
	h := History{Invoke(1, "p", 0), Crash(1), Invoke(2, "p", 0)}
	if !h.Crashed(1) || h.Correct(1) {
		t.Error("proc 1 crashed")
	}
	if h.Crashed(2) || !h.Correct(2) {
		t.Error("proc 2 is correct")
	}
}

func TestOperationsMatching(t *testing.T) {
	h := History{
		Invoke(1, "propose", 7),
		Invoke(2, "propose", 9),
		Response(1, "propose", 7),
		Invoke(1, "propose", 8),
	}
	ops := h.Operations()
	if len(ops) != 3 {
		t.Fatalf("Operations() returned %d ops, want 3", len(ops))
	}
	if !ops[0].Done || ops[0].Val != 7 || ops[0].ResIndex != 2 {
		t.Errorf("op0 = %+v", ops[0])
	}
	if ops[1].Done {
		t.Errorf("op1 should be pending: %+v", ops[1])
	}
	if ops[2].Done || ops[2].Arg != 8 {
		t.Errorf("op2 = %+v", ops[2])
	}
	if !PrecedesRealTime(ops[0], ops[2]) {
		t.Error("op0 completes before op2 begins")
	}
	if PrecedesRealTime(ops[1], ops[2]) {
		t.Error("pending op cannot precede anything")
	}
}

func TestResponseCount(t *testing.T) {
	h := History{
		Invoke(1, "tryC", nil), Response(1, "tryC", Abort),
		Invoke(1, "tryC", nil), Response(1, "tryC", Commit),
		Invoke(2, "tryC", nil), Response(2, "tryC", Commit),
	}
	good := map[Value]bool{Commit: true}
	if got := h.ResponseCount(1, good); got != 1 {
		t.Errorf("good responses for p1 = %d, want 1", got)
	}
	if got := h.ResponseCount(1, nil); got != 2 {
		t.Errorf("all responses for p1 = %d, want 2", got)
	}
	if got := h.ResponseCount(3, nil); got != 0 {
		t.Errorf("responses for absent proc = %d, want 0", got)
	}
}

func TestAppendDoesNotMutate(t *testing.T) {
	h := make(History, 0, 8)
	h = append(h, Invoke(1, "p", 0))
	h2 := h.Append(Response(1, "p", 0))
	h3 := h.Append(Crash(1))
	if h2[1].Kind != KindResponse || h3[1].Kind != KindCrash {
		t.Error("Append aliased underlying storage between derived histories")
	}
	if len(h) != 1 {
		t.Error("Append mutated the receiver")
	}
}

// randomWellFormed builds a random well-formed history for property tests.
func randomWellFormed(r *rand.Rand, procs, steps int) History {
	var h History
	pending := make(map[int]bool)
	crashed := make(map[int]bool)
	for i := 0; i < steps; i++ {
		p := 1 + r.Intn(procs)
		if crashed[p] {
			continue
		}
		switch {
		case r.Intn(20) == 0:
			h = append(h, Crash(p))
			crashed[p] = true
		case pending[p]:
			h = append(h, Response(p, "op", r.Intn(3)))
			pending[p] = false
		default:
			h = append(h, Invoke(p, "op", r.Intn(3)))
			pending[p] = true
		}
	}
	return h
}

func TestQuickWellFormedClosures(t *testing.T) {
	// Well-formedness is closed under prefixes and projections, and
	// projection commutes with prefix length bookkeeping.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomWellFormed(r, 3, int(steps%60))
		if !h.WellFormed() {
			return false
		}
		for n := 0; n <= len(h); n++ {
			if !h.Prefix(n).WellFormed() {
				return false
			}
		}
		for _, p := range h.Procs() {
			if !h.Project(p).WellFormed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalenceReflexiveAndKeyed(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomWellFormed(r, 3, int(steps%40))
		if !h.Equivalent(h) {
			return false
		}
		// Key must be injective enough to distinguish a strict extension.
		ext := h.Append(Invoke(9, "zz", 1))
		return h.Key() != ext.Key() && h.Clone().Key() == h.Key()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
