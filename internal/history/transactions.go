package history

// Transactional-memory operation names used across the repository, matching
// the paper's TM object type: start, x.read, x.write(v), tryC.
const (
	TMStart = "start"
	TMRead  = "read"
	TMWrite = "write"
	TMTryC  = "tryC"
)

// TxStatus is the completion status of a transaction in a history.
type TxStatus int

// Transaction statuses. A transaction is Live while it has neither committed
// nor aborted, Committed once a tryC returned C, and Aborted once any of its
// operations returned A.
const (
	TxLive TxStatus = iota + 1
	TxCommitted
	TxAborted
)

// String returns the status name.
func (s TxStatus) String() string {
	switch s {
	case TxLive:
		return "live"
	case TxCommitted:
		return "committed"
	case TxAborted:
		return "aborted"
	default:
		return "invalid"
	}
}

// Tx is one transaction of a TM history: the operations of one process from
// a start invocation up to (and including) the first commit or abort
// response.
type Tx struct {
	// Proc is the executing process.
	Proc int
	// Seq is the 1-based index of this transaction within h|proc (the
	// paper's "t-th transaction of p_i").
	Seq int
	// Ops are the matched operations of the transaction in program order.
	Ops []Op
	// Status is the completion status.
	Status TxStatus
	// FirstIndex is the history index of the start invocation; LastIndex is
	// the history index of the final (commit/abort) response, or the last
	// event index of the transaction if it is live.
	FirstIndex int
	LastIndex  int
}

// Reads returns the (variable, value) pairs read by committed read
// operations of the transaction (those that returned a value rather than A).
func (t *Tx) Reads() []VarVal {
	var out []VarVal
	for _, op := range t.Ops {
		if op.Name == TMRead && op.Done && op.Val != Abort {
			out = append(out, VarVal{Var: op.Obj, Val: op.Val})
		}
	}
	return out
}

// Writes returns the final value written to each variable by the
// transaction's successful write operations, in first-write order of the
// variables.
func (t *Tx) Writes() []VarVal {
	idx := make(map[string]int)
	var out []VarVal
	for _, op := range t.Ops {
		if op.Name != TMWrite || !op.Done || op.Val == Abort {
			continue
		}
		if j, ok := idx[op.Obj]; ok {
			out[j].Val = op.Arg
			continue
		}
		idx[op.Obj] = len(out)
		out = append(out, VarVal{Var: op.Obj, Val: op.Arg})
	}
	return out
}

// VarVal is a (transactional variable, value) pair.
type VarVal struct {
	Var string
	Val Value
}

// Transactions groups a TM history into transactions. Operations of each
// process are split at start invocations; a transaction completes at the
// first response equal to C (commit) or A (abort). The returned slice is
// ordered by the history index of the start invocation.
func Transactions(h History) []*Tx {
	perProc := make(map[int][]*Tx)
	current := make(map[int]*Tx)
	openOp := make(map[int]*Op) // proc -> pending op inside its current tx
	var all []*Tx

	for i, e := range h {
		switch e.Kind {
		case KindInvoke:
			if e.Op == TMStart {
				tx := &Tx{
					Proc:       e.Proc,
					Seq:        len(perProc[e.Proc]) + 1,
					Status:     TxLive,
					FirstIndex: i,
					LastIndex:  i,
				}
				perProc[e.Proc] = append(perProc[e.Proc], tx)
				current[e.Proc] = tx
				all = append(all, tx)
			}
			tx := current[e.Proc]
			if tx == nil || tx.Status != TxLive {
				// Invocation outside any live transaction (malformed TM
				// usage); ignore for grouping purposes.
				openOp[e.Proc] = nil
				continue
			}
			tx.Ops = append(tx.Ops, Op{
				Proc: e.Proc, Name: e.Op, Obj: e.Obj, Arg: e.Arg,
				InvIndex: i, ResIndex: -1,
			})
			tx.LastIndex = i
			openOp[e.Proc] = &tx.Ops[len(tx.Ops)-1]
		case KindResponse:
			op := openOp[e.Proc]
			tx := current[e.Proc]
			if op != nil {
				op.Val = e.Val
				op.Done = true
				op.ResIndex = i
				openOp[e.Proc] = nil
			}
			if tx == nil || tx.Status != TxLive {
				continue
			}
			tx.LastIndex = i
			if e.Val == Abort {
				tx.Status = TxAborted
			} else if e.Op == TMTryC && e.Val == Commit {
				tx.Status = TxCommitted
			}
		case KindCrash:
			// A crash leaves the current transaction live forever; nothing
			// to update beyond what is already recorded.
		}
	}
	return all
}

// Concurrent reports whether two transactions overlap in real time in the
// history they came from: neither completes before the other starts.
func Concurrent(a, b *Tx) bool {
	if a.Status != TxLive && a.LastIndex < b.FirstIndex {
		return false
	}
	if b.Status != TxLive && b.LastIndex < a.FirstIndex {
		return false
	}
	return true
}

// TxPrecedes reports whether transaction a completes before transaction b
// starts (the real-time order on transactions used by opacity).
func TxPrecedes(a, b *Tx) bool {
	return a.Status != TxLive && a.LastIndex < b.FirstIndex
}
