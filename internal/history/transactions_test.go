package history

import "testing"

// tmHistory builds the canonical two-process TM history used in several
// tests: p1 starts and reads x=0; p2 starts, reads, writes x=1 and commits;
// p1 writes and aborts.
func tmHistory() History {
	return History{
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
		InvokeObj(1, TMRead, "x", nil), ResponseObj(1, TMRead, "x", 0),
		Invoke(2, TMStart, nil), Response(2, TMStart, OK),
		InvokeObj(2, TMRead, "x", nil), ResponseObj(2, TMRead, "x", 0),
		InvokeObj(2, TMWrite, "x", 1), ResponseObj(2, TMWrite, "x", OK),
		Invoke(2, TMTryC, nil), Response(2, TMTryC, Commit),
		InvokeObj(1, TMWrite, "x", 1), ResponseObj(1, TMWrite, "x", OK),
		Invoke(1, TMTryC, nil), Response(1, TMTryC, Abort),
	}
}

func TestTransactionsGrouping(t *testing.T) {
	txs := Transactions(tmHistory())
	if len(txs) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txs))
	}
	t1, t2 := txs[0], txs[1]
	if t1.Proc != 1 || t1.Seq != 1 || t1.Status != TxAborted {
		t.Errorf("t1 = proc %d seq %d status %v", t1.Proc, t1.Seq, t1.Status)
	}
	if t2.Proc != 2 || t2.Status != TxCommitted {
		t.Errorf("t2 = proc %d status %v", t2.Proc, t2.Status)
	}
	if len(t1.Ops) != 4 {
		t.Errorf("t1 has %d ops, want 4 (start, read, write, tryC)", len(t1.Ops))
	}
	reads := t1.Reads()
	if len(reads) != 1 || reads[0].Var != "x" || reads[0].Val != 0 {
		t.Errorf("t1 reads = %v", reads)
	}
	writes := t2.Writes()
	if len(writes) != 1 || writes[0].Var != "x" || writes[0].Val != 1 {
		t.Errorf("t2 writes = %v", writes)
	}
}

func TestTransactionsSequencing(t *testing.T) {
	// Two sequential transactions by the same process.
	h := History{
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
		Invoke(1, TMTryC, nil), Response(1, TMTryC, Abort),
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
		Invoke(1, TMTryC, nil), Response(1, TMTryC, Commit),
	}
	txs := Transactions(h)
	if len(txs) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txs))
	}
	if txs[0].Seq != 1 || txs[1].Seq != 2 {
		t.Errorf("sequence numbers = %d, %d; want 1, 2", txs[0].Seq, txs[1].Seq)
	}
	if txs[0].Status != TxAborted || txs[1].Status != TxCommitted {
		t.Errorf("statuses = %v, %v", txs[0].Status, txs[1].Status)
	}
	if !TxPrecedes(txs[0], txs[1]) {
		t.Error("first transaction precedes the second in real time")
	}
	if Concurrent(txs[0], txs[1]) {
		t.Error("sequential transactions are not concurrent")
	}
}

func TestTransactionsLiveAndConcurrent(t *testing.T) {
	h := History{
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
		Invoke(2, TMStart, nil), Response(2, TMStart, OK),
		InvokeObj(1, TMRead, "x", nil),
	}
	txs := Transactions(h)
	if len(txs) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txs))
	}
	if txs[0].Status != TxLive || txs[1].Status != TxLive {
		t.Error("both transactions should be live")
	}
	if !Concurrent(txs[0], txs[1]) {
		t.Error("overlapping live transactions are concurrent")
	}
	if TxPrecedes(txs[0], txs[1]) {
		t.Error("a live transaction precedes nothing")
	}
	// The pending read is recorded as an undone op.
	last := txs[0].Ops[len(txs[0].Ops)-1]
	if last.Name != TMRead || last.Done {
		t.Errorf("pending read not recorded: %+v", last)
	}
}

func TestTransactionAbortMidOperation(t *testing.T) {
	// A write that returns A aborts the transaction; subsequent events of
	// the process belong to the next transaction only after a new start.
	h := History{
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
		InvokeObj(1, TMWrite, "x", 5), ResponseObj(1, TMWrite, "x", Abort),
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
	}
	txs := Transactions(h)
	if len(txs) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txs))
	}
	if txs[0].Status != TxAborted {
		t.Errorf("t1 status = %v, want aborted", txs[0].Status)
	}
	if len(txs[0].Writes()) != 0 {
		t.Error("aborted write must not count as a successful write")
	}
}

func TestTransactionStartAbort(t *testing.T) {
	// start itself may return A (the paper's start returns ok or A).
	h := History{
		Invoke(1, TMStart, nil), Response(1, TMStart, Abort),
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
	}
	txs := Transactions(h)
	if len(txs) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txs))
	}
	if txs[0].Status != TxAborted || txs[1].Status != TxLive {
		t.Errorf("statuses = %v, %v", txs[0].Status, txs[1].Status)
	}
}

func TestWritesLastValueWins(t *testing.T) {
	h := History{
		Invoke(1, TMStart, nil), Response(1, TMStart, OK),
		InvokeObj(1, TMWrite, "x", 1), ResponseObj(1, TMWrite, "x", OK),
		InvokeObj(1, TMWrite, "y", 9), ResponseObj(1, TMWrite, "y", OK),
		InvokeObj(1, TMWrite, "x", 2), ResponseObj(1, TMWrite, "x", OK),
		Invoke(1, TMTryC, nil), Response(1, TMTryC, Commit),
	}
	txs := Transactions(h)
	writes := txs[0].Writes()
	if len(writes) != 2 {
		t.Fatalf("writes = %v, want two variables", writes)
	}
	if writes[0].Var != "x" || writes[0].Val != 2 {
		t.Errorf("x write = %v, want final value 2", writes[0])
	}
	if writes[1].Var != "y" || writes[1].Val != 9 {
		t.Errorf("y write = %v", writes[1])
	}
}
