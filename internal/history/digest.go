package history

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// FNV-1a primitives shared by every canonical digest in the tree — the
// simulator's state fingerprints, the safety monitors' residual-state
// digests, and exploration's cache keys. One home for the offset/prime
// constants and the byte fold keeps the mixings from silently
// diverging.

// The one sanctioned home of the raw constants: everything else folds
// through DigestSeed/DigestByte/DigestWord.
//
//slx:rawdigest canonical FNV primitive home
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// DigestSeed returns the FNV-1a offset basis, the initial value of
// every digest.
func DigestSeed() uint64 { return fnvOffset64 }

// DigestByte folds one byte into an FNV-1a digest.
func DigestByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// DigestWord folds a 64-bit word into an FNV-1a digest, little-endian.
func DigestWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = DigestByte(h, byte(v>>(8*i)))
	}
	return h
}

// AppendCanonical appends a canonical encoding of v to dst and reports
// whether v could be encoded. The encoding is injective on encodable
// values: every node carries its kind and dynamic type, and every
// variable-size component is length-delimited, so two values encode
// equal iff they are structurally equal by content — unlike fmt's %v,
// which space-joins composite elements ([]string{"x y"} and
// []string{"x","y"} both print "[x y]"). Map entries are sorted by
// their encodings, so insertion order cannot leak in.
//
// ok=false (the returned slice may hold a partial encoding — discard
// it) when v contains a component whose content cannot be canonically
// encoded:
//
//   - a non-nil pointer below the top level (content encodings equate
//     distinct allocations, which is exactly what pointer-identity
//     state must not allow — see sim.Fingerprintable — and following
//     them could cycle); a nil pointer is content (it encodes as nil),
//     and the one top-level pointer to a composite is dereferenced;
//   - channels, functions, uintptrs, unsafe pointers;
//   - types implementing fmt.Formatter, fmt.Stringer, or error, whose
//     methods take over their fmt rendering — callers that mix encoded
//     values with fmt output could otherwise be fooled by a method
//     that formats an address.
func AppendCanonical(dst []byte, v Value) ([]byte, bool) {
	if v == nil {
		return append(dst, 'z'), true
	}
	return appendCanonical(dst, reflect.ValueOf(v), true)
}

var (
	formatterType = reflect.TypeOf((*fmt.Formatter)(nil)).Elem()
	stringerType  = reflect.TypeOf((*fmt.Stringer)(nil)).Elem()
	errorType     = reflect.TypeOf((*error)(nil)).Elem()
)

// appendLen appends a length or word as 8 little-endian bytes.
func appendLen(dst []byte, n int) []byte { return appendWord(dst, uint64(n)) }

func appendWord(dst []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(v>>(8*i)))
	}
	return dst
}

// appendCanonical encodes one node: kind byte, length-delimited type
// name, then kind-specific content. top marks the root, the only
// position where a non-nil pointer is followed. Cycles would need a
// non-nil nested pointer, which fails before recursing, so the walk
// terminates.
func appendCanonical(dst []byte, v reflect.Value, top bool) ([]byte, bool) {
	t := v.Type()
	if t.Implements(formatterType) || t.Implements(stringerType) || t.Implements(errorType) {
		return dst, false
	}
	name := t.String()
	dst = append(dst, byte(t.Kind()))
	dst = appendLen(dst, len(name))
	dst = append(dst, name...)
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(dst, 1), true
		}
		return append(dst, 0), true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return appendWord(dst, uint64(v.Int())), true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return appendWord(dst, v.Uint()), true
	case reflect.Float32, reflect.Float64:
		return appendWord(dst, math.Float64bits(v.Float())), true
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		dst = appendWord(dst, math.Float64bits(real(c)))
		return appendWord(dst, math.Float64bits(imag(c))), true
	case reflect.String:
		dst = appendLen(dst, v.Len())
		return append(dst, v.String()...), true
	case reflect.Pointer:
		if v.IsNil() {
			return append(dst, 0), true
		}
		if !top {
			return dst, false
		}
		switch v.Elem().Kind() {
		case reflect.Struct, reflect.Array, reflect.Slice, reflect.Map:
			return appendCanonical(append(dst, 1), v.Elem(), false)
		default:
			return dst, false
		}
	case reflect.Interface:
		if v.IsNil() {
			return append(dst, 0), true
		}
		return appendCanonical(append(dst, 1), v.Elem(), false)
	case reflect.Struct:
		ok := true
		for i := 0; i < t.NumField() && ok; i++ {
			dst, ok = appendCanonical(dst, v.Field(i), false)
		}
		return dst, ok
	case reflect.Array, reflect.Slice:
		dst = appendLen(dst, v.Len())
		ok := true
		for i := 0; i < v.Len() && ok; i++ {
			dst, ok = appendCanonical(dst, v.Index(i), false)
		}
		return dst, ok
	case reflect.Map:
		dst = appendLen(dst, v.Len())
		pairs := make([][]byte, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			p, ok := appendCanonical(nil, iter.Key(), false)
			if !ok {
				return dst, false
			}
			p, ok = appendCanonical(p, iter.Value(), false)
			if !ok {
				return dst, false
			}
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i], pairs[j]) < 0 })
		for _, p := range pairs {
			dst = appendLen(dst, len(p))
			dst = append(dst, p...)
		}
		return dst, true
	default:
		// Chan, func, uintptr, unsafe.Pointer, invalid.
		return dst, false
	}
}
