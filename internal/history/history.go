package history

import (
	"fmt"
	"sort"
	"strings"
)

// History is a finite sequence of external events, the object the paper's
// safety and liveness properties are defined over.
type History []Event

// Clone returns a deep copy of the history (events are value types, so a
// slice copy suffices).
func (h History) Clone() History {
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Append returns a new history with the events appended; the receiver is not
// modified. It is the · concatenation operator of the paper.
func (h History) Append(events ...Event) History {
	out := make(History, 0, len(h)+len(events))
	out = append(out, h...)
	out = append(out, events...)
	return out
}

// Project returns h|p_i: the longest subsequence of h consisting only of the
// events of process proc.
func (h History) Project(proc int) History {
	var out History
	for _, e := range h {
		if e.Proc == proc {
			out = append(out, e)
		}
	}
	return out
}

// Procs returns the sorted set of process identifiers appearing in h.
func (h History) Procs() []int {
	seen := make(map[int]bool)
	for _, e := range h {
		seen[e.Proc] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// WellFormed reports whether h is well-formed per Section 2, extended
// with crash–recovery: for every process, the projection is an
// alternating sequence of invocations and responses starting with an
// invocation; a crash event stops the process (no further events) until
// a recover event restarts it, after which the alternation begins anew —
// the operation pending at the crash never receives a response.
func (h History) WellFormed() bool {
	type procState struct {
		pending bool
		crashed bool
	}
	states := make(map[int]*procState)
	for _, e := range h {
		st := states[e.Proc]
		if st == nil {
			st = &procState{}
			states[e.Proc] = st
		}
		if st.crashed && e.Kind != KindRecover {
			return false
		}
		switch e.Kind {
		case KindInvoke:
			if st.pending {
				return false
			}
			st.pending = true
		case KindResponse:
			if !st.pending {
				return false
			}
			st.pending = false
		case KindCrash:
			st.crashed = true
		case KindRecover:
			if !st.crashed {
				return false
			}
			st.crashed = false
			st.pending = false
		default:
			return false
		}
	}
	return true
}

// Pending reports whether process proc has an invocation without a matching
// response in h (the paper's "pending in h").
func (h History) Pending(proc int) bool {
	pending := false
	for _, e := range h {
		if e.Proc != proc {
			continue
		}
		switch e.Kind {
		case KindInvoke:
			pending = true
		case KindResponse:
			pending = false
		case KindRecover:
			// The operation pending at the crash never responds; after
			// recovery the process starts afresh.
			pending = false
		}
	}
	return pending
}

// PendingProcs returns the sorted list of processes pending in h.
func (h History) PendingProcs() []int {
	var out []int
	for _, p := range h.Procs() {
		if h.Pending(p) {
			out = append(out, p)
		}
	}
	return out
}

// Crashed reports whether process proc crashes in h.
func (h History) Crashed(proc int) bool {
	for _, e := range h {
		if e.Proc == proc && e.Kind == KindCrash {
			return true
		}
	}
	return false
}

// Correct reports whether process proc is correct in h, i.e. does not crash.
func (h History) Correct(proc int) bool { return !h.Crashed(proc) }

// Prefix returns the prefix of h of length n. n is clamped to [0, len(h)].
func (h History) Prefix(n int) History {
	if n < 0 {
		n = 0
	}
	if n > len(h) {
		n = len(h)
	}
	return h[:n:n]
}

// IsPrefixOf reports whether h is a prefix of other.
func (h History) IsPrefixOf(other History) bool {
	if len(h) > len(other) {
		return false
	}
	for i, e := range h {
		if !e.Equal(other[i]) {
			return false
		}
	}
	return true
}

// Equal reports event-wise equality.
func (h History) Equal(other History) bool {
	if len(h) != len(other) {
		return false
	}
	for i, e := range h {
		if !e.Equal(other[i]) {
			return false
		}
	}
	return true
}

// Equivalent reports whether h and other are equivalent in the paper's
// sense: for every process p, h|p = other|p.
func (h History) Equivalent(other History) bool {
	procs := make(map[int]bool)
	for _, p := range h.Procs() {
		procs[p] = true
	}
	for _, p := range other.Procs() {
		procs[p] = true
	}
	for p := range procs {
		if !h.Project(p).Equal(other.Project(p)) {
			return false
		}
	}
	return true
}

// String renders the history as events joined by the paper's · separator.
func (h History) String() string {
	if len(h) == 0 {
		return "ε"
	}
	parts := make([]string, len(h))
	for i, e := range h {
		parts[i] = e.String()
	}
	return strings.Join(parts, " · ")
}

// Key returns a canonical string usable as a map key for set membership of
// histories (adversary sets are sets of histories).
func (h History) Key() string {
	var b strings.Builder
	for _, e := range h {
		fmt.Fprintf(&b, "%d|%d|%s|%s|%v|%v;", e.Kind, e.Proc, e.Op, e.Obj, e.Arg, e.Val)
	}
	return b.String()
}

// ResponseCount returns the number of responses by proc whose value is in
// the good set (nil good means every response is good). This realizes the
// paper's G_Tp-based notion of progress.
func (h History) ResponseCount(proc int, good map[Value]bool) int {
	n := 0
	for _, e := range h {
		if e.Kind != KindResponse || e.Proc != proc {
			continue
		}
		if good == nil || good[e.Val] {
			n++
		}
	}
	return n
}

// Op is a matched invocation/response pair (or a pending invocation) in a
// history.
type Op struct {
	// Proc is the process that performed the operation.
	Proc int
	// Name is the operation name from the invocation.
	Name string
	// Obj is the object/variable name, if any.
	Obj string
	// Arg is the invocation argument.
	Arg Value
	// Val is the response value; only meaningful if Done.
	Val Value
	// Done reports whether the operation received a response.
	Done bool
	// InvIndex and ResIndex are positions of the events in the history;
	// ResIndex is -1 for pending operations.
	InvIndex int
	ResIndex int
}

// Operations pairs invocations with their responses in program order per
// process and returns all operations in invocation order. The history must
// be well-formed; otherwise the pairing of the malformed process is
// best-effort.
func (h History) Operations() []Op {
	var ops []Op
	open := make(map[int]int) // proc -> index into ops of pending op
	for i, e := range h {
		switch e.Kind {
		case KindInvoke:
			ops = append(ops, Op{
				Proc: e.Proc, Name: e.Op, Obj: e.Obj, Arg: e.Arg,
				InvIndex: i, ResIndex: -1,
			})
			open[e.Proc] = len(ops) - 1
		case KindResponse:
			if j, ok := open[e.Proc]; ok {
				ops[j].Val = e.Val
				ops[j].Done = true
				ops[j].ResIndex = i
				delete(open, e.Proc)
			}
		}
	}
	return ops
}

// PrecedesRealTime reports whether operation a completes before operation b
// begins in h (the real-time order used by linearizability and opacity).
func PrecedesRealTime(a, b Op) bool {
	return a.Done && a.ResIndex < b.InvIndex
}
