package liveness

import (
	"testing"

	"repro/internal/history"
)

func TestFindLassoSynthetic(t *testing.T) {
	// Steps: a prefix then five repetitions of [1 2 2].
	steps := []int{1, 1, 1}
	for i := 0; i < 5; i++ {
		steps = append(steps, 1, 2, 2)
	}
	e := exec(2, steps, len(steps))
	c, ok := FindLasso(e, 3, 0)
	if !ok {
		t.Fatal("lasso must be found")
	}
	if c.Period != 3 || c.Reps < 4 {
		t.Errorf("certificate = %+v, want period 3 with >=4 reps", c)
	}
}

func TestFindLassoAbsent(t *testing.T) {
	// An aperiodic tail.
	steps := []int{1, 2, 1, 1, 2, 2, 1, 2, 2, 2, 1}
	e := exec(2, steps, len(steps))
	if _, ok := FindLasso(e, 3, 3); ok {
		t.Error("no lasso should be certified on an aperiodic tail")
	}
}

func TestLassoStarvation(t *testing.T) {
	// Two repetitions-of-4 cycles: p2 commits once per cycle, p1 never.
	steps := []int{
		1, 1, 2, 2,
		1, 1, 2, 2,
		1, 1, 2, 2,
	}
	e := exec(2, steps, len(steps),
		stampedEvent{resp(1, history.Abort), 2},
		stampedEvent{resp(2, history.Commit), 4},
		stampedEvent{resp(1, history.Abort), 6},
		stampedEvent{resp(2, history.Commit), 8},
		stampedEvent{resp(1, history.Abort), 10},
		stampedEvent{resp(2, history.Commit), 12},
	)
	c, ok := FindLasso(e, 3, 8)
	if !ok {
		t.Fatal("lasso must be found")
	}
	if !c.Starved(e, TMGood(), 1) {
		t.Errorf("p1 is starved per cycle: %v", c.GoodPerRep(e, TMGood(), 1))
	}
	if c.Starved(e, TMGood(), 2) {
		t.Errorf("p2 commits every cycle: %v", c.GoodPerRep(e, TMGood(), 2))
	}
}
