package liveness

import (
	"testing"

	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// exec builds a synthetic bounded execution: steps is the granted-step
// sequence; events pair history events with the step index at which they
// occurred.
type stampedEvent struct {
	ev   history.Event
	step int
}

func exec(n int, steps []int, window int, events ...stampedEvent) *Execution {
	e := &Execution{
		N:         n,
		Steps:     len(steps),
		StepProcs: steps,
		Window:    window,
	}
	for _, se := range events {
		e.H = append(e.H, se.ev)
		e.EventSteps = append(e.EventSteps, se.step)
	}
	return e
}

func resp(p int, val history.Value) history.Event {
	return history.Response(p, "op", val)
}

func TestSteppersWindow(t *testing.T) {
	// p1 steps early, p2 steps late; with window 2 only p2 counts.
	e := exec(2, []int{1, 1, 2, 2}, 2)
	got := e.Steppers()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Steppers = %v, want [2]", got)
	}
	e.Window = 4
	if got := e.Steppers(); len(got) != 2 {
		t.Errorf("Steppers with full window = %v, want both", got)
	}
	// Oversized window clamps.
	e.Window = 100
	if got := e.Steppers(); len(got) != 2 {
		t.Errorf("Steppers with oversized window = %v", got)
	}
}

func TestProgressingWindowAndGoodSet(t *testing.T) {
	e := exec(2, []int{1, 2, 1, 2}, 2,
		stampedEvent{resp(1, history.Commit), 1}, // outside window
		stampedEvent{resp(2, history.Abort), 3},  // in window, bad
		stampedEvent{resp(2, history.Commit), 4}, // in window, good
	)
	if got := e.Progressing(TMGood()); len(got) != 1 || got[0] != 2 {
		t.Errorf("Progressing(TMGood) = %v, want [2]", got)
	}
	// nil Good counts every response.
	if got := e.Progressing(nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("Progressing(nil) = %v, want [2] (p1's is outside window)", got)
	}
}

func TestCorrect(t *testing.T) {
	e := exec(3, []int{1, 2}, 2,
		stampedEvent{history.Crash(3), 2},
	)
	got := e.Correct()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Correct = %v, want [1 2]", got)
	}
}

func TestLLockFreedom(t *testing.T) {
	good := Good(nil)
	t.Run("one of two progresses", func(t *testing.T) {
		e := exec(2, []int{1, 2, 1, 2}, 4,
			stampedEvent{resp(2, history.OK), 4},
		)
		if !(LLockFreedom{L: 1, Good: good}).Holds(e) {
			t.Error("1-lock-freedom holds: p2 progresses")
		}
		if (LLockFreedom{L: 2, Good: good}).Holds(e) {
			t.Error("2-lock-freedom fails: only one process progresses")
		}
	})
	t.Run("fewer correct than l", func(t *testing.T) {
		// Only p1 is correct; l=2 requires all correct to progress.
		withProgress := exec(2, []int{1, 1}, 2,
			stampedEvent{history.Crash(2), 1},
			stampedEvent{resp(1, history.OK), 2},
		)
		if !(LLockFreedom{L: 2, Good: good}).Holds(withProgress) {
			t.Error("with <2 correct, all correct progressing suffices")
		}
		without := exec(2, []int{1, 1}, 2,
			stampedEvent{history.Crash(2), 1},
		)
		if (LLockFreedom{L: 2, Good: good}).Holds(without) {
			t.Error("the sole correct process does not progress")
		}
	})
}

func TestKObstructionFreedom(t *testing.T) {
	good := Good(nil)
	t.Run("gate open", func(t *testing.T) {
		// Three steppers, k=2: nothing required.
		e := exec(3, []int{1, 2, 3}, 3)
		if !(KObstructionFreedom{K: 2, Good: good}).Holds(e) {
			t.Error("more steppers than k means the property is vacuous")
		}
	})
	t.Run("gate closed all progress", func(t *testing.T) {
		e := exec(3, []int{1, 2, 1, 2}, 4,
			stampedEvent{resp(1, history.OK), 3},
			stampedEvent{resp(2, history.OK), 4},
		)
		if !(KObstructionFreedom{K: 2, Good: good}).Holds(e) {
			t.Error("both steppers progress")
		}
	})
	t.Run("gate closed one starves", func(t *testing.T) {
		e := exec(3, []int{1, 2, 1, 2}, 4,
			stampedEvent{resp(2, history.OK), 4},
		)
		if (KObstructionFreedom{K: 2, Good: good}).Holds(e) {
			t.Error("p1 steps in window but never progresses")
		}
	})
}

func TestLKUnionVersusLiteral(t *testing.T) {
	// One process steps and progresses; three processes are correct.
	// OF_3 holds (the sole stepper progresses) so the union form of
	// (2,3)-freedom holds; the literal implication form demands two
	// progressing processes and fails. This documents the gap between
	// Definition 5.1's phrasing and the LF∪OF remark.
	e := exec(3, []int{1, 1, 1, 1}, 4,
		stampedEvent{resp(1, history.OK), 4},
	)
	if !(LK{L: 2, K: 3}).Holds(e) {
		t.Error("union form: OF_3 branch holds")
	}
	if (LKLiteral{L: 2, K: 3}).Holds(e) {
		t.Error("literal form requires >=2 progressing processes")
	}
}

func TestLKHeadlineCases(t *testing.T) {
	t.Run("bivalence-style starvation violates (1,2)", func(t *testing.T) {
		// Two steppers, both correct, zero progress.
		e := exec(2, []int{1, 2, 1, 2}, 4)
		if (LK{L: 1, K: 2}).Holds(e) {
			t.Error("(1,2)-freedom fails: no one progresses")
		}
		if (LKLiteral{L: 1, K: 2}).Holds(e) {
			t.Error("literal agrees on this case")
		}
	})
	t.Run("solo decisions satisfy (1,1)", func(t *testing.T) {
		e := exec(2, []int{1, 1, 1, 1}, 4,
			stampedEvent{history.Crash(2), 0},
			stampedEvent{resp(1, 7), 4},
		)
		if !(LK{L: 1, K: 1}).Holds(e) {
			t.Error("(1,1)-freedom holds: the solo runner decides")
		}
	})
	t.Run("TM starvation violates (2,2) but not (1,n)", func(t *testing.T) {
		e := exec(2, []int{1, 2, 1, 2}, 4,
			stampedEvent{resp(2, history.Commit), 3},
			stampedEvent{resp(1, history.Abort), 4},
		)
		if (LK{L: 2, K: 2, Good: TMGood()}).Holds(e) {
			t.Error("(2,2)-freedom fails: p1 never commits")
		}
		if !(LK{L: 1, K: 2, Good: TMGood()}).Holds(e) {
			t.Error("(1,2)-freedom holds: p2 commits")
		}
	})
}

func TestWaitFreedomAndLocalProgress(t *testing.T) {
	all := exec(2, []int{1, 2}, 2,
		stampedEvent{resp(1, history.Commit), 1},
		stampedEvent{resp(2, history.Commit), 2},
	)
	if !(WaitFreedom{}).Holds(all) {
		t.Error("everyone progresses")
	}
	if !(LocalProgress{}).Holds(all) {
		t.Error("everyone commits")
	}
	one := exec(2, []int{1, 2}, 2,
		stampedEvent{resp(1, history.Abort), 1},
		stampedEvent{resp(2, history.Commit), 2},
	)
	if (LocalProgress{}).Holds(one) {
		t.Error("p1 aborts forever: local progress fails")
	}
	if !(WaitFreedom{}).Holds(one) {
		t.Error("with nil Good, aborts still count as responses")
	}
	crashed := exec(2, []int{2}, 1,
		stampedEvent{history.Crash(1), 0},
		stampedEvent{resp(2, history.Commit), 1},
	)
	if !(LocalProgress{}).Holds(crashed) {
		t.Error("crashed processes are exempt from progress")
	}
}

func TestSFreedom(t *testing.T) {
	p := SFreedom{Sizes: map[int]bool{2: true}}
	matching := exec(3, []int{1, 2, 1, 2}, 4,
		stampedEvent{resp(1, history.OK), 3},
	)
	if p.Holds(matching) {
		t.Error("|P|=2 matches and p2 does not progress")
	}
	off := exec(3, []int{1, 2, 3}, 3)
	if !p.Holds(off) {
		t.Error("|P|=3 not in Sizes: vacuous")
	}
}

func TestNXLiveness(t *testing.T) {
	p := NXLiveness{WaitFree: []int{1}}
	t.Run("wait-free member must progress", func(t *testing.T) {
		e := exec(2, []int{1, 2, 1, 2}, 4,
			stampedEvent{resp(2, history.OK), 4},
		)
		if p.Holds(e) {
			t.Error("p1 is wait-free and must progress")
		}
	})
	t.Run("obstruction member needs solo progress", func(t *testing.T) {
		e := exec(2, []int{2, 2, 2}, 3)
		if p.Holds(e) {
			t.Error("p2 runs solo and must progress")
		}
		ok := exec(2, []int{2, 2, 2}, 3,
			stampedEvent{history.Crash(1), 0},
			stampedEvent{resp(2, history.OK), 3},
		)
		if !p.Holds(ok) {
			t.Error("solo p2 progresses; crashed p1 exempt")
		}
	})
}

// casObject decides via a single CAS; used for the FromResult integration
// test.
type casObject struct {
	c *base.CAS
}

func (o *casObject) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	o.c.CompareAndSwap(p, nil, inv.Arg)
	return o.c.Read(p)
}

func TestFromResultIntegration(t *testing.T) {
	res := sim.Run(sim.Config{
		Procs:     2,
		Object:    &casObject{c: base.NewCAS("c", nil)},
		Env:       sim.Repeat(sim.Invocation{Op: "propose", Arg: 5}),
		Scheduler: sim.Limit(sim.Alternate(1, 2), 60),
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	e := FromResult(res, 0)
	if e.N != 2 {
		t.Errorf("N = %d", e.N)
	}
	if e.Steps != 60 {
		t.Errorf("Steps = %d", e.Steps)
	}
	if e.Window != 30 {
		t.Errorf("default window = %d, want half the run", e.Window)
	}
	if got := e.Steppers(); len(got) != 2 {
		t.Errorf("both processes step: %v", got)
	}
	// The CAS object is wait-free: both processes keep receiving
	// responses.
	if !(WaitFreedom{}).Holds(e) {
		t.Error("wait-freedom should hold for the CAS object under alternation")
	}
	if !(LK{L: 2, K: 2}).Holds(e) {
		t.Error("(2,2)-freedom should hold too")
	}
}

func TestPropertyNames(t *testing.T) {
	tests := []struct {
		p    Property
		want string
	}{
		{LK{L: 1, K: 2}, "(1,2)-freedom"},
		{LKLiteral{L: 1, K: 2}, "(1,2)-freedom-literal"},
		{LLockFreedom{L: 3}, "3-lock-freedom"},
		{KObstructionFreedom{K: 2}, "2-obstruction-freedom"},
		{WaitFreedom{}, "wait-freedom"},
		{LocalProgress{}, "local-progress"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}
