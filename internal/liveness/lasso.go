package liveness

import "repro/internal/history"

// Lasso repetition certificates. The paper's impossibility adversaries are
// periodic strategies: each starvation cycle repeats the same schedule
// pattern forever. On a bounded run, detecting that the schedule's tail is
// many exact repetitions of a period — and that a victim receives zero
// good responses per repetition — certifies the infinite violation the
// same way the paper's proofs do ("the adversary repeats Step 1").

// Certificate describes a detected periodic tail of an execution.
type Certificate struct {
	// Period is the repetition length in steps.
	Period int
	// Reps is the number of complete repetitions detected.
	Reps int
	// From is the step index at which the certified repetitions begin.
	From int
}

// FindLasso searches for a period p such that the execution's step
// sequence ends with at least minReps complete repetitions of its final p
// steps, returning the certificate covering the most steps (ties broken
// toward the smaller period, so a full strategy cycle beats both trivial
// tail patterns and multiples of itself). maxPeriod bounds the search
// (0 means Steps/minReps).
func FindLasso(e *Execution, minReps, maxPeriod int) (*Certificate, bool) {
	n := len(e.StepProcs)
	if maxPeriod <= 0 {
		maxPeriod = n / minReps
	}
	var best *Certificate
	for p := 1; p <= maxPeriod; p++ {
		reps := 0
		// Count how many trailing windows of length p are equal to the
		// final window.
		for start := n - p; start >= 0; start -= p {
			if !equalWindows(e.StepProcs, start, n-p, p) {
				break
			}
			reps++
		}
		if reps < minReps {
			continue
		}
		cand := &Certificate{Period: p, Reps: reps, From: n - reps*p}
		if best == nil || cand.Reps*cand.Period > best.Reps*best.Period {
			best = cand
		}
	}
	return best, best != nil
}

func equalWindows(xs []int, a, b, p int) bool {
	for i := 0; i < p; i++ {
		if xs[a+i] != xs[b+i] {
			return false
		}
	}
	return true
}

// GoodPerRep returns, for each complete repetition of the certificate, the
// number of good responses process proc received during it (a slice of
// length c.Reps, oldest first). A victim with all-zero entries is starved
// in every cycle — the repetition evidence for a liveness violation.
func (c *Certificate) GoodPerRep(e *Execution, good Good, proc int) []int {
	out := make([]int, c.Reps)
	for i, ev := range e.H {
		if ev.Kind != history.KindResponse || ev.Proc != proc {
			continue
		}
		// EventSteps holds step counts: an event recorded at count s
		// happened during the window of StepProcs[s-1].
		step := e.EventSteps[i]
		if step <= c.From {
			continue
		}
		rep := (step - 1 - c.From) / c.Period
		if rep >= c.Reps {
			rep = c.Reps - 1
		}
		if good == nil || good[ev.Val] {
			out[rep]++
		}
	}
	return out
}

// Starved reports whether proc receives zero good responses in every
// complete repetition.
func (c *Certificate) Starved(e *Execution, good Good, proc int) bool {
	for _, n := range c.GoodPerRep(e, good, proc) {
		if n > 0 {
			return false
		}
	}
	return true
}
