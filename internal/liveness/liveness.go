// Package liveness implements the liveness properties of the paper
// (Sections 3.2 and 5.1) over bounded executions produced by the simulator.
//
// The paper defines liveness on infinite fair executions. Our bounded
// semantics interprets the two "infinitely often" notions over a tail
// window of a long run:
//
//   - a process "takes infinitely many steps" iff it is granted at least
//     one step inside the tail window;
//   - a process "makes progress" iff it receives at least one good response
//     (an element of G_Tp, Section 5.1) inside the tail window.
//
// These proxies are exact for the periodic executions the paper's
// adversaries generate (every loop iteration repeats the same step and
// response pattern) and are used together with repetition certificates from
// the adversary package. Liveness verdicts are only meaningful on fair
// runs: the experiment drivers use fair schedulers (round-robin, alternate,
// or the adversaries themselves, all of which step every live process
// infinitely often).
package liveness

import (
	"fmt"
	"sort"

	"repro/internal/history"
	"repro/internal/sim"
)

// Good is a good-response set G_Tp: the responses that constitute progress.
// A nil Good means every response is good (consensus, registers).
type Good map[history.Value]bool

// TMGood is the TM good-response set: only commit events are progress.
func TMGood() Good { return Good{history.Commit: true} }

// Execution is the bounded view of a (finite prefix of a) fair execution.
type Execution struct {
	// H is the external history.
	H history.History
	// N is the number of processes.
	N int
	// Steps is the total number of granted steps.
	Steps int
	// StepProcs[i] is the process granted step i (crashes excluded).
	StepProcs []int
	// EventSteps[i] is the step index at which H[i] was recorded.
	EventSteps []int
	// Window is the tail-window length in steps used to interpret
	// "infinitely often". It is clamped to [1, Steps] (a zero window
	// defaults to half the run).
	Window int
	// Parked lists processes permanently out of the scheduling game at the
	// end of the run: idle (no more work) or blocked forever by the
	// implementation. Fairness does not require steps from them.
	Parked []int
}

// Fair reports whether the bounded execution is fair in the windowed
// sense of Section 3.2: every process that is correct and not permanently
// parked takes at least one step inside the tail window. Liveness verdicts
// are only meaningful on fair executions; batteries assert this.
func (e *Execution) Fair() bool {
	steppers := toSet(e.Steppers())
	parked := toSet(e.Parked)
	for _, p := range e.Correct() {
		if !parked[p] && !steppers[p] {
			return false
		}
	}
	return true
}

// FromResult builds an Execution from a simulation result. window <= 0
// defaults to half of the run's steps.
func FromResult(res *sim.Result, window int) *Execution {
	stepProcs := make([]int, 0, res.Steps)
	for _, d := range res.Schedule {
		if !d.Crash {
			stepProcs = append(stepProcs, d.Proc)
		}
	}
	if window <= 0 {
		window = res.Steps / 2
	}
	parked := make([]int, 0, len(res.Idle)+len(res.Blocked))
	parked = append(parked, res.Idle...)
	parked = append(parked, res.Blocked...)
	return &Execution{
		H:          res.H,
		N:          len(res.StepsBy) - 1,
		Steps:      res.Steps,
		StepProcs:  stepProcs,
		EventSteps: res.EventSteps,
		Window:     window,
		Parked:     parked,
	}
}

// windowStart returns the first step index inside the tail window.
func (e *Execution) windowStart() int {
	w := e.Window
	if w <= 0 || w > e.Steps {
		w = e.Steps
	}
	return e.Steps - w
}

// Steppers returns the sorted processes that take at least one step inside
// the tail window (the bounded reading of "takes infinitely many steps").
func (e *Execution) Steppers() []int {
	from := e.windowStart()
	seen := make(map[int]bool)
	for i := from; i < len(e.StepProcs); i++ {
		seen[e.StepProcs[i]] = true
	}
	return sortedKeys(seen)
}

// Progressing returns the sorted processes that receive at least one good
// response inside the tail window (the bounded reading of "makes
// progress").
func (e *Execution) Progressing(good Good) []int {
	from := e.windowStart()
	seen := make(map[int]bool)
	for i, ev := range e.H {
		if ev.Kind != history.KindResponse || e.EventSteps[i] < from {
			continue
		}
		if good == nil || good[ev.Val] {
			seen[ev.Proc] = true
		}
	}
	return sortedKeys(seen)
}

// Correct returns the sorted processes that never crash in the execution.
func (e *Execution) Correct() []int {
	var out []int
	for p := 1; p <= e.N; p++ {
		if !e.H.Crashed(p) {
			out = append(out, p)
		}
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Property is a liveness property evaluated on bounded executions.
type Property interface {
	// Name identifies the property in reports (e.g. "(1,2)-freedom").
	Name() string
	// Holds reports whether the execution ensures the property.
	Holds(e *Execution) bool
}

// PropertyFunc adapts a function to Property.
type PropertyFunc struct {
	PropName string
	F        func(e *Execution) bool
}

// Name implements Property.
func (p PropertyFunc) Name() string { return p.PropName }

// Holds implements Property.
func (p PropertyFunc) Holds(e *Execution) bool { return p.F(e) }

// LLockFreedom is the paper's l-lock-freedom: at least l processes make
// progress if at least l processes are correct; otherwise all correct
// processes make progress. It is an independent (scheduler-oblivious)
// progress guarantee.
type LLockFreedom struct {
	L    int
	Good Good
}

// Name implements Property.
func (p LLockFreedom) Name() string { return fmt.Sprintf("%d-lock-freedom", p.L) }

// Holds implements Property.
func (p LLockFreedom) Holds(e *Execution) bool {
	correct := e.Correct()
	prog := e.Progressing(p.Good)
	if len(correct) >= p.L {
		return len(prog) >= p.L
	}
	return containsAll(prog, correct)
}

// KObstructionFreedom is Taubenfeld's k-obstruction-freedom: if at most k
// processes take infinitely many steps, then every process that does must
// make progress. It is a dependent (scheduler-sensitive) guarantee.
type KObstructionFreedom struct {
	K    int
	Good Good
}

// Name implements Property.
func (p KObstructionFreedom) Name() string {
	return fmt.Sprintf("%d-obstruction-freedom", p.K)
}

// Holds implements Property.
func (p KObstructionFreedom) Holds(e *Execution) bool {
	steppers := e.Steppers()
	if len(steppers) > p.K {
		return true // gate open: nothing required
	}
	return containsAll(e.Progressing(p.Good), steppers)
}

// LK is the paper's (l,k)-freedom (Definition 5.1), realized as the union
// LF_l ∪ OF_k noted right after the definition: an execution ensures
// (l,k)-freedom iff it ensures l-lock-freedom or k-obstruction-freedom.
// Requires L <= K.
type LK struct {
	L, K int
	Good Good
}

// Name implements Property.
func (p LK) Name() string { return fmt.Sprintf("(%d,%d)-freedom", p.L, p.K) }

// Holds implements Property.
func (p LK) Holds(e *Execution) bool {
	return (LLockFreedom{L: p.L, Good: p.Good}).Holds(e) ||
		(KObstructionFreedom{K: p.K, Good: p.Good}).Holds(e)
}

// LKLiteral is the literal implication form of Definition 5.1: if at most K
// processes take infinitely many steps, then at least L processes make
// progress when at least L are correct (all correct ones otherwise). It
// differs from the union form on executions where fewer than L processes
// take steps at all; the repository's tests exhibit the difference, and the
// union form is the one used for Figure 1 (it is the one the paper reasons
// with).
type LKLiteral struct {
	L, K int
	Good Good
}

// Name implements Property.
func (p LKLiteral) Name() string {
	return fmt.Sprintf("(%d,%d)-freedom-literal", p.L, p.K)
}

// Holds implements Property.
func (p LKLiteral) Holds(e *Execution) bool {
	if len(e.Steppers()) > p.K {
		return true
	}
	correct := e.Correct()
	prog := e.Progressing(p.Good)
	if len(correct) >= p.L {
		return len(prog) >= p.L
	}
	return containsAll(prog, correct)
}

// WaitFreedom requires every correct process to make progress; it is the
// strongest liveness requirement L_max for object types whose every
// response is good (consensus, registers).
type WaitFreedom struct {
	Good Good
}

// Name implements Property.
func (WaitFreedom) Name() string { return "wait-freedom" }

// Holds implements Property.
func (p WaitFreedom) Holds(e *Execution) bool {
	return containsAll(e.Progressing(p.Good), e.Correct())
}

// LocalProgress is the TM L_max (Bushkov-Guerraoui-Kapalka): every correct
// process eventually commits, i.e. makes commit-progress.
type LocalProgress struct{}

// Name implements Property.
func (LocalProgress) Name() string { return "local-progress" }

// Holds implements Property.
func (LocalProgress) Holds(e *Execution) bool {
	return containsAll(e.Progressing(TMGood()), e.Correct())
}

// SFreedom is Taubenfeld's S-freedom (Section 6): for every set P of
// processes with |P| in Sizes, if exactly the processes of P take
// infinitely many steps (no step contention with outside processes), every
// process in P makes progress.
type SFreedom struct {
	Sizes map[int]bool
	Good  Good
}

// Name implements Property.
func (p SFreedom) Name() string {
	sizes := sortedKeys(p.Sizes)
	return fmt.Sprintf("S-freedom%v", sizes)
}

// Holds implements Property.
func (p SFreedom) Holds(e *Execution) bool {
	steppers := e.Steppers()
	if !p.Sizes[len(steppers)] {
		return true
	}
	return containsAll(e.Progressing(p.Good), steppers)
}

// NXLiveness is the (n,x)-liveness of Imbs-Raynal-Taubenfeld (Section 6):
// the processes in WaitFree (x of them) must always make progress when
// correct; the remaining n-x processes must make progress when they run
// without step contention (obstruction-freedom).
type NXLiveness struct {
	WaitFree []int
	Good     Good
}

// Name implements Property.
func (p NXLiveness) Name() string {
	return fmt.Sprintf("(n,%d)-liveness%v", len(p.WaitFree), p.WaitFree)
}

// Holds implements Property.
func (p NXLiveness) Holds(e *Execution) bool {
	prog := toSet(e.Progressing(p.Good))
	wf := toSet(p.WaitFree)
	for _, w := range p.WaitFree {
		if w <= e.N && !e.H.Crashed(w) && !prog[w] {
			return false
		}
	}
	steppers := e.Steppers()
	if len(steppers) == 1 && !wf[steppers[0]] && !prog[steppers[0]] {
		return false
	}
	return true
}

// containsAll reports whether sorted set super contains every element of
// sorted set sub.
func containsAll(super, sub []int) bool {
	m := toSet(super)
	for _, s := range sub {
		if !m[s] {
			return false
		}
	}
	return true
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
