package safety

import (
	"testing"

	"repro/internal/history"
)

// TestDigestValueSetDelimiterInjection: set elements are
// length-prefixed, so a single value that embeds the rendering of two
// elements cannot digest equal to the two-element set (joined
// undelimited, {"a","b"} and {"a,string=b"} used to render the same
// byte string — a collision between semantically different monitor
// states that the cache would have pruned on).
func TestDigestValueSetDelimiterInjection(t *testing.T) {
	two := &avMonitor{proposed: map[history.Value]bool{"a": true, "b": true}}
	one := &avMonitor{proposed: map[history.Value]bool{"a,string=b": true}}
	d2, ok2 := two.StateDigest()
	d1, ok1 := one.StateDigest()
	if !ok1 || !ok2 {
		t.Fatalf("string-valued monitors must digest: ok1=%v ok2=%v", ok1, ok2)
	}
	if d1 == d2 {
		t.Error("value set {a,b} digests equal to {\"a,string=b\"}: delimiter injection")
	}
}

// TestDigestEventDelimiterInjection: event fields are length-prefixed,
// so a "/" inside one string field cannot shift the boundary to the
// next field.
func TestDigestEventDelimiterInjection(t *testing.T) {
	a := history.History{{Kind: history.KindInvoke, Proc: 1, Op: "a/b", Obj: "c"}}
	b := history.History{{Kind: history.KindInvoke, Proc: 1, Op: "a", Obj: "b/c"}}
	da, oka := DigestHistory("t", a)
	db, okb := DigestHistory("t", b)
	if !oka || !okb {
		t.Fatalf("string-valued events must digest: oka=%v okb=%v", oka, okb)
	}
	if da == db {
		t.Error("Op=a/b,Obj=c digests equal to Op=a,Obj=b/c: delimiter injection")
	}
}

// TestDigestValueInjectiveInsideComposites: the canonical value
// encoding must separate values %v renders identically one level down
// — composite elements are individually delimited, so {"x y"} and
// {"x","y"} (both "[x y]" under %v) digest differently.
func TestDigestValueInjectiveInsideComposites(t *testing.T) {
	a := &avMonitor{proposed: map[history.Value]bool{[2]string{"x y", ""}: true}}
	b := &avMonitor{proposed: map[history.Value]bool{[2]string{"x", "y "}: true}}
	da, oka := a.StateDigest()
	db, okb := b.StateDigest()
	if !oka || !okb {
		t.Fatalf("array-valued monitors must digest: oka=%v okb=%v", oka, okb)
	}
	if da == db {
		t.Error("composite values with shifted element boundaries digest equal")
	}
}

// TestDigestPoisonsAddressValues: a monitor state holding a value whose
// %v rendering would embed a heap address (a nested non-nil pointer)
// must report itself undigestable — the prefix becomes uncacheable —
// rather than produce a digest that varies across runs and can collide
// across distinct states. Mirrors sim.Fingerprinter.Val's guard.
func TestDigestPoisonsAddressValues(t *testing.T) {
	type boxed struct{ p *int }
	bad := boxed{p: new(int)}

	m := &avMonitor{proposed: map[history.Value]bool{bad: true}}
	if _, ok := m.StateDigest(); ok {
		t.Error("avMonitor with nested-pointer proposed value still digests")
	}

	h := history.History{{Kind: history.KindInvoke, Proc: 1, Op: "w", Arg: bad}}
	if _, ok := DigestHistory("t", h); ok {
		t.Error("DigestHistory with nested-pointer argument still digests")
	}
}
