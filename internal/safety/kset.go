package safety

import (
	"strconv"

	"repro/internal/history"
)

// KSetAgreement is the k-set agreement safety property (the paper's
// Section 1 application context, via Borowsky-Gafni [3]): processes decide
// at most k distinct values, and every decided value was proposed by some
// process before the decision. k = 1 is consensus agreement+validity.
type KSetAgreement struct {
	K int
}

// Name implements Property.
func (p KSetAgreement) Name() string {
	if p.K == 1 {
		return "agreement+validity"
	}
	return "k-set-agreement(k=" + strconv.Itoa(p.K) + ")"
}

// Holds implements Property.
func (p KSetAgreement) Holds(h history.History) bool {
	proposed := make(map[history.Value]bool)
	decided := make(map[history.Value]bool)
	for _, e := range h {
		switch {
		case e.Kind == history.KindInvoke && e.Op == ConsensusPropose:
			proposed[e.Arg] = true
		case e.Kind == history.KindResponse && e.Op == ConsensusPropose:
			if !proposed[e.Val] {
				return false // validity
			}
			decided[e.Val] = true
			if len(decided) > p.K {
				return false // k-agreement
			}
		}
	}
	return true
}
