package safety

import (
	"strconv"

	"repro/internal/history"
)

// KSetAgreement is the k-set agreement safety property (the paper's
// Section 1 application context, via Borowsky-Gafni [3]): processes decide
// at most k distinct values, and every decided value was proposed by some
// process before the decision. k = 1 is consensus agreement+validity. The
// native implementation is the incremental ksetMonitor; Holds is the
// BatchAdapter over it.
type KSetAgreement struct {
	K int
}

// Name implements Property.
func (p KSetAgreement) Name() string {
	if p.K == 1 {
		return "agreement+validity"
	}
	return "k-set-agreement(k=" + strconv.Itoa(p.K) + ")"
}

// Holds implements Property.
func (p KSetAgreement) Holds(h history.History) bool {
	return BatchAdapter{PropName: p.Name(), SpawnFn: p.Spawn}.Holds(h)
}

// Spawn returns the incremental k-set agreement monitor.
func (p KSetAgreement) Spawn() Monitor {
	return &ksetMonitor{
		k:        p.K,
		proposed: make(map[history.Value]bool),
		decided:  make(map[history.Value]bool),
	}
}

// ksetMonitor tracks the proposed and decided value sets. Each Step is
// O(1); Fork copies the two small sets.
type ksetMonitor struct {
	k                 int
	proposed, decided map[history.Value]bool
	failed            bool
}

// Step implements Monitor.
func (m *ksetMonitor) Step(e history.Event) bool {
	if m.failed {
		return false
	}
	switch {
	case e.Kind == history.KindInvoke && e.Op == ConsensusPropose:
		m.proposed[e.Arg] = true
	case e.Kind == history.KindResponse && e.Op == ConsensusPropose:
		if !m.proposed[e.Val] {
			m.failed = true // validity
			return false
		}
		m.decided[e.Val] = true
		if len(m.decided) > m.k {
			m.failed = true // k-agreement
			return false
		}
	}
	return true
}

// OK implements Monitor.
func (m *ksetMonitor) OK() bool { return !m.failed }

// Fork implements Monitor.
func (m *ksetMonitor) Fork() Monitor {
	proposed := make(map[history.Value]bool, len(m.proposed))
	for v := range m.proposed {
		proposed[v] = true
	}
	decided := make(map[history.Value]bool, len(m.decided))
	for v := range m.decided {
		decided[v] = true
	}
	return &ksetMonitor{k: m.k, proposed: proposed, decided: decided, failed: m.failed}
}
