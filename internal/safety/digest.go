package safety

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/history"
)

// Digester is the optional canonical-state hook of a Monitor, required
// by exploration's state cache. StateDigest returns a 64-bit digest of
// the monitor's residual state — everything its future Step verdicts
// can depend on — such that two monitors with equal digests accept and
// reject exactly the same event suffixes. ok=false means the monitor
// cannot digest its current state; the exploration then treats the
// prefix as uncacheable.
//
// A digest must abstract away representation accidents (internal
// indices, the order state was accumulated in) but never semantic
// distinctions: equal digests with divergent future verdicts would let
// the cache prune a subtree containing a violation.
type Digester interface {
	StateDigest() (uint64, bool)
}

// digestStrings hashes a canonical sequence of strings (FNV-1a,
// length-delimited so concatenation cannot collide).
func digestStrings(parts ...string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, s := range parts {
		n := len(s)
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(n>>(8*i)))) * prime
		}
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
	}
	return h
}

// digestValueSet canonically encodes a set of values: each rendered
// with its dynamic type, then sorted.
func digestValueSet(set map[history.Value]bool) string {
	keys := make([]string, 0, len(set))
	for v := range set {
		keys = append(keys, fmt.Sprintf("%T=%v", v, v))
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// StateDigest implements Digester: the agreement+validity verdict
// depends only on the proposed-value set and the decided value.
func (m *avMonitor) StateDigest() (uint64, bool) {
	return digestStrings("av",
		digestValueSet(m.proposed),
		fmt.Sprintf("%v/%T=%v/%v", m.have, m.decided, m.decided, m.failed),
	), true
}

// StateDigest implements Digester: the k-set verdict depends only on
// the proposed and decided value sets (and k).
func (m *ksetMonitor) StateDigest() (uint64, bool) {
	return digestStrings("kset",
		fmt.Sprintf("%d/%v", m.k, m.failed),
		digestValueSet(m.proposed),
		digestValueSet(m.decided),
	), true
}

// StateDigest implements Digester: the mutual-exclusion verdict depends
// only on the current critical-section holder.
func (m *mutexMonitor) StateDigest() (uint64, bool) {
	return digestStrings("mutex", fmt.Sprintf("%d/%v", m.holder, m.failed)), true
}

// StateDigest implements Digester. The TM serialization searches
// re-examine the entire accumulated history on every response, so the
// monitor's residual state IS the history: the digest is a canonical
// encoding of the event sequence. Exploration therefore deduplicates TM
// states only across schedules that produced the identical external
// history (interleavings that reorder only internal steps), which is
// sound by construction.
func (m *TMMonitor) StateDigest() (uint64, bool) {
	parts := make([]string, 0, len(m.h)+1)
	parts = append(parts, fmt.Sprintf("tm/%v/%v/%v", m.strict, m.rule, m.failed))
	for _, e := range m.h {
		parts = append(parts, digestEvent(e))
	}
	return digestStrings(parts...), true
}

// digestEvent canonically encodes one history event.
func digestEvent(e history.Event) string {
	return fmt.Sprintf("%d/%d/%s/%s/%T=%v/%T=%v", e.Kind, e.Proc, e.Op, e.Obj, e.Arg, e.Arg, e.Val, e.Val)
}

// DigestHistory canonically digests an event sequence. It is the
// residual-state digest of any monitor that re-judges its accumulated
// history from scratch (the slx batch-monitor fallback uses it).
func DigestHistory(tag string, h history.History) uint64 {
	parts := make([]string, 0, len(h)+1)
	parts = append(parts, tag)
	for _, e := range h {
		parts = append(parts, digestEvent(e))
	}
	return digestStrings(parts...)
}

// StateDigest implements Digester. The linearizability monitor's future
// verdicts depend on its configuration set and the pending operations;
// completed operations are frozen inside every configuration's
// sequential state and never revisited. Configurations are canonically
// encoded as (spec state, promised responses keyed by process) — the
// internal operation indices, which depend on the invocation order the
// history happened to arrive in, are translated to process ids (one
// pending operation per process) so equivalent states reached through
// different interleavings digest identically. The pending operations
// themselves are encoded by (process, op, object, argument).
//
// The one residual dependence on history length is the maxLinOps
// capacity cut-off, which is a function of the per-process operation
// counts; those are part of the simulator's state fingerprint, so equal
// cache keys imply equal capacity too.
func (m *LinMonitor) StateDigest() (uint64, bool) {
	var parts []string
	parts = append(parts, fmt.Sprintf("lin/%v/%d", m.failed, len(m.ops)))

	procs := make([]int, 0, len(m.pending))
	for p := range m.pending {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		op := m.ops[m.pending[p]]
		parts = append(parts, fmt.Sprintf("pend:%d/%s/%s/%T=%v", p, op.name, op.obj, op.arg, op.arg))
	}

	cfgs := make([]string, 0, len(m.configs))
	for _, c := range m.configs {
		var b strings.Builder
		fmt.Fprintf(&b, "st:%T=%v", c.st, c.st)
		if len(c.promises) > 0 {
			idx := make([]int, 0, len(c.promises))
			for i := range c.promises {
				idx = append(idx, i)
			}
			// Sort by the promised operation's process: index order is an
			// accident of invocation arrival.
			sort.Slice(idx, func(a, b int) bool { return m.ops[idx[a]].proc < m.ops[idx[b]].proc })
			for _, i := range idx {
				fmt.Fprintf(&b, ";p%d=%T=%v", m.ops[i].proc, c.promises[i], c.promises[i])
			}
		}
		cfgs = append(cfgs, b.String())
	}
	sort.Strings(cfgs)
	seen := ""
	for _, c := range cfgs {
		if c != seen {
			parts = append(parts, c)
			seen = c
		}
	}
	return digestStrings(parts...), true
}
