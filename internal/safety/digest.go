package safety

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/history"
)

// Digester is the optional canonical-state hook of a Monitor, required
// by exploration's state cache. StateDigest returns a 64-bit digest of
// the monitor's residual state — everything its future Step verdicts
// can depend on — such that two monitors with equal digests accept and
// reject exactly the same event suffixes. ok=false means the monitor
// cannot digest its current state; the exploration then treats the
// prefix as uncacheable.
//
// A digest must abstract away representation accidents (internal
// indices, the order state was accumulated in) but never semantic
// distinctions: equal digests with divergent future verdicts would let
// the cache prune a subtree containing a violation.
type Digester interface {
	StateDigest() (uint64, bool)
}

// digestPart folds one length-delimited string into a running digest;
// the length prefix keeps concatenated parts from colliding.
func digestPart(h uint64, s string) uint64 {
	h = history.DigestWord(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = history.DigestByte(h, s[i])
	}
	return h
}

// digestStrings hashes a canonical sequence of strings (FNV-1a,
// length-delimited so concatenation cannot collide).
func digestStrings(parts ...string) uint64 {
	h := history.DigestSeed()
	for _, s := range parts {
		h = digestPart(h, s)
	}
	return h
}

// field length-prefixes a rendered component so that, within one
// digest part built from several components, variable content cannot
// shift component boundaries ("a"+"b,c" versus "a,b"+"c").
func field(s string) string { return strconv.Itoa(len(s)) + ":" + s }

// valField canonically encodes a value as a length-prefixed component
// (history.AppendCanonical — injective on encodable values, unlike %v,
// whose space-joined composites collide: []string{"x y"} vs
// []string{"x","y"}). ok=false when the value cannot be canonically
// encoded (nested non-nil pointers, channels, functions, fmt-method
// implementers — renderings that could embed allocator addresses,
// nondeterministic across runs and collidable across semantically
// different states): the monitor must then report itself undigestable
// (the prefix becomes uncacheable, never unsound). The simulator-side
// Fingerprinter.Val applies the same guard to object state.
func valField(v history.Value) (string, bool) {
	b, ok := history.AppendCanonical(nil, v)
	if !ok {
		return "", false
	}
	return field(string(b)), true
}

// digestValueSet canonically encodes a set of values: each rendered
// with its dynamic type and length-prefixed, then sorted.
func digestValueSet(set map[history.Value]bool) (string, bool) {
	keys := make([]string, 0, len(set))
	for v := range set {
		k, ok := valField(v)
		if !ok {
			return "", false
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String(), true
}

// StateDigest implements Digester: the agreement+validity verdict
// depends only on the proposed-value set and the decided value.
func (m *avMonitor) StateDigest() (uint64, bool) {
	proposed, ok := digestValueSet(m.proposed)
	if !ok {
		return 0, false
	}
	decided, ok := valField(m.decided)
	if !ok {
		return 0, false
	}
	return digestStrings("av", proposed, strconv.FormatBool(m.have)+"/"+strconv.FormatBool(m.failed), decided), true
}

// StateDigest implements Digester: the k-set verdict depends only on
// the proposed and decided value sets (and k).
func (m *ksetMonitor) StateDigest() (uint64, bool) {
	proposed, ok := digestValueSet(m.proposed)
	if !ok {
		return 0, false
	}
	decided, ok := digestValueSet(m.decided)
	if !ok {
		return 0, false
	}
	return digestStrings("kset", strconv.Itoa(m.k)+"/"+strconv.FormatBool(m.failed), proposed, decided), true
}

// StateDigest implements Digester: the mutual-exclusion verdict depends
// only on the current critical-section holder.
func (m *mutexMonitor) StateDigest() (uint64, bool) {
	return digestStrings("mutex", strconv.Itoa(m.holder)+"/"+strconv.FormatBool(m.failed)), true
}

// StateDigest implements Digester. The TM serialization searches
// re-examine the entire accumulated history on every response, so the
// monitor's residual state IS the history: the digest is a canonical
// encoding of the event sequence. Exploration therefore deduplicates TM
// states only across schedules that produced the identical external
// history (interleavings that reorder only internal steps), which is
// sound by construction.
func (m *TMMonitor) StateDigest() (uint64, bool) {
	return m.dig.Sum("tm/" + strconv.FormatBool(m.strict) + "/" + strconv.FormatBool(m.rule) + "/" + strconv.FormatBool(m.failed))
}

// HistoryDigest is a running canonical digest of an event sequence,
// maintained in O(1) per appended event — the residual-state digest of
// monitors whose state IS their history (TMMonitor, the slx batch
// fallback), which would otherwise re-encode the whole history on
// every explored prefix (O(depth²) along a DFS path). The zero value
// digests the empty sequence; copies are independent, so forked
// monitors just copy the struct.
type HistoryDigest struct {
	h   uint64
	bad bool
}

// Append folds one event in. A value digestEvent refuses marks the
// whole digest undigestable, permanently (matching the from-scratch
// encoding, which would refuse the same event every time).
func (d *HistoryDigest) Append(e history.Event) {
	if d.bad {
		return
	}
	de, ok := digestEvent(e)
	if !ok {
		d.bad = true
		return
	}
	if d.h == 0 {
		d.h = history.DigestSeed()
	}
	d.h = digestPart(d.h, de)
}

// Sum combines a caller tag (the monitor's residual non-history state —
// it may change between calls, which is why it is not folded in
// Append) with the appended events' digest.
func (d *HistoryDigest) Sum(tag string) (uint64, bool) {
	if d.bad {
		return 0, false
	}
	return history.DigestWord(digestPart(history.DigestSeed(), tag), d.h), true
}

// digestEvent canonically encodes one history event, every
// variable-content component length-prefixed.
func digestEvent(e history.Event) (string, bool) {
	arg, ok := valField(e.Arg)
	if !ok {
		return "", false
	}
	val, ok := valField(e.Val)
	if !ok {
		return "", false
	}
	return strconv.Itoa(int(e.Kind)) + "/" + strconv.Itoa(e.Proc) + "/" + field(e.Op) + field(e.Obj) + arg + val, true
}

// DigestHistory canonically digests an event sequence from scratch;
// ok=false when some event's values defeat canonical rendering.
// Monitors that digest per explored prefix should maintain a
// HistoryDigest instead of calling this O(len(h)) form every time.
func DigestHistory(tag string, h history.History) (uint64, bool) {
	var d HistoryDigest
	for _, e := range h {
		d.Append(e)
	}
	return d.Sum(tag)
}

// StateDigest implements Digester. The linearizability monitor's future
// verdicts depend on its configuration set and the pending operations;
// completed operations are frozen inside every configuration's
// sequential state and never revisited. Configurations are canonically
// encoded as (spec state, promised responses keyed by process) — the
// internal operation indices, which depend on the invocation order the
// history happened to arrive in, are translated to process ids (one
// pending operation per process) so equivalent states reached through
// different interleavings digest identically. The pending operations
// themselves are encoded by (process, op, object, argument).
//
// The one residual dependence on history length is the maxLinOps
// capacity cut-off, which is a function of the per-process operation
// counts; those are part of the simulator's state fingerprint, so equal
// cache keys imply equal capacity too.
func (m *LinMonitor) StateDigest() (uint64, bool) {
	var parts []string
	parts = append(parts, "lin/"+strconv.FormatBool(m.strict)+"/"+strconv.FormatBool(m.failed)+"/"+strconv.Itoa(len(m.ops)))

	for p, pi := range m.pending {
		if pi == 0 {
			continue
		}
		op := m.ops[pi-1]
		arg, ok := valField(op.arg)
		if !ok {
			return 0, false
		}
		parts = append(parts, "pend:"+strconv.Itoa(p)+"/"+field(op.name)+field(op.obj)+arg)
	}

	cfgs := make([]string, 0, len(m.configs))
	for _, c := range m.configs {
		var b strings.Builder
		st, ok := valField(c.st)
		if !ok {
			return 0, false
		}
		b.WriteString("st:")
		b.WriteString(st)
		if len(c.promises) > 0 {
			// Sort by the promised operation's process: index order is an
			// accident of invocation arrival.
			byProc := append([]promise(nil), c.promises...)
			sort.Slice(byProc, func(a, b int) bool { return m.ops[byProc[a].idx].proc < m.ops[byProc[b].idx].proc })
			for _, pr := range byProc {
				pv, ok := valField(pr.val)
				if !ok {
					return 0, false
				}
				b.WriteString("p" + strconv.Itoa(m.ops[pr.idx].proc) + "=")
				b.WriteString(pv)
			}
		}
		cfgs = append(cfgs, b.String())
	}
	sort.Strings(cfgs)
	seen := ""
	for _, c := range cfgs {
		if c != seen {
			parts = append(parts, c)
			seen = c
		}
	}
	return digestStrings(parts...), true
}
