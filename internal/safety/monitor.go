package safety

import "repro/internal/history"

// Monitor is the incremental form of a safety Property: a stateful
// checker that consumes a history one event at a time instead of
// re-scanning it from scratch. Monitors exist so exhaustive exploration
// can thread checker state down the DFS — each explored prefix pays only
// for its new events, and branching forks the state instead of replaying
// the prefix into a fresh checker.
//
// The contract mirrors prefix closure (Definition 3.1): once Step
// observes a violation the verdict is sticky — every further Step
// returns false and OK stays false. Step must accept every well-formed
// event sequence, including crash events (which every safety property
// here ignores).
type Monitor interface {
	// Step consumes the next history event and reports whether the
	// property still holds on the consumed prefix. A false return is
	// permanent (violations are irrevocable).
	Step(e history.Event) bool
	// OK reports the current verdict: true iff no consumed prefix
	// violated the property.
	OK() bool
	// Fork returns an independent monitor with this monitor's state.
	// Stepping either copy never affects the other; exploration forks at
	// every branch point of the schedule tree.
	Fork() Monitor
}

// BatchAdapter presents a monitor factory as a batch Property: Holds
// spawns a fresh monitor and replays the whole history through it. It is
// how the simple native-monitor checkers (agreement+validity, k-set
// agreement, mutual exclusion) retain their batch Check surface — the
// monitor is the single implementation, the adapter derives the
// one-shot form.
type BatchAdapter struct {
	// PropName is returned by Name.
	PropName string
	// SpawnFn creates a fresh monitor at the empty history.
	SpawnFn func() Monitor
}

// Name implements Property.
func (a BatchAdapter) Name() string { return a.PropName }

// Holds implements Property by replaying h through a fresh monitor.
func (a BatchAdapter) Holds(h history.History) bool {
	m := a.SpawnFn()
	for _, e := range h {
		if !m.Step(e) {
			return false
		}
	}
	return m.OK()
}

// Spawn returns a fresh monitor.
func (a BatchAdapter) Spawn() Monitor { return a.SpawnFn() }

// Releaser is the optional hook a Monitor implements to recycle forks.
// The caller (ultimately the exploration engine, through the adapter
// layers) invokes Release exactly once, when no further Step, OK, Fork
// or digest call will be made on the monitor; the monitor may then
// reuse its state for later forks. Monitors on error paths are simply
// dropped instead, so implementations need no idempotence.
type Releaser interface {
	Monitor
	Release()
}
