package safety

import (
	"testing"

	"repro/internal/history"
)

// tmEvents provides shorthand constructors for TM histories.
func tmStart(p int) []history.Event {
	return []history.Event{
		history.Invoke(p, history.TMStart, nil),
		history.Response(p, history.TMStart, history.OK),
	}
}

func tmRead(p int, v string, val history.Value) []history.Event {
	return []history.Event{
		history.InvokeObj(p, history.TMRead, v, nil),
		history.ResponseObj(p, history.TMRead, v, val),
	}
}

func tmWrite(p int, v string, val history.Value) []history.Event {
	return []history.Event{
		history.InvokeObj(p, history.TMWrite, v, val),
		history.ResponseObj(p, history.TMWrite, v, history.OK),
	}
}

func tmCommit(p int) []history.Event {
	return []history.Event{
		history.Invoke(p, history.TMTryC, nil),
		history.Response(p, history.TMTryC, history.Commit),
	}
}

func tmAbort(p int) []history.Event {
	return []history.Event{
		history.Invoke(p, history.TMTryC, nil),
		history.Response(p, history.TMTryC, history.Abort),
	}
}

func cat(parts ...[]history.Event) history.History {
	var h history.History
	for _, p := range parts {
		h = append(h, p...)
	}
	return h
}

func TestOpaqueSequentialHistories(t *testing.T) {
	tests := []struct {
		name string
		h    history.History
		want bool
	}{
		{"empty", history.History{}, true},
		{"single committed tx", cat(
			tmStart(1), tmRead(1, "x", 0), tmWrite(1, "x", 1), tmCommit(1),
		), true},
		{"sequential chain sees writes", cat(
			tmStart(1), tmWrite(1, "x", 1), tmCommit(1),
			tmStart(2), tmRead(2, "x", 1), tmCommit(2),
		), true},
		{"sequential chain misses write", cat(
			tmStart(1), tmWrite(1, "x", 1), tmCommit(1),
			tmStart(2), tmRead(2, "x", 0), tmCommit(2),
		), false},
		{"aborted tx invisible", cat(
			tmStart(1), tmWrite(1, "x", 1), tmAbort(1),
			tmStart(2), tmRead(2, "x", 0), tmCommit(2),
		), true},
		{"aborted writes must not leak", cat(
			tmStart(1), tmWrite(1, "x", 1), tmAbort(1),
			tmStart(2), tmRead(2, "x", 1), tmCommit(2),
		), false},
		{"read own write", cat(
			tmStart(1), tmWrite(1, "x", 5), tmRead(1, "x", 5), tmCommit(1),
		), true},
		{"read own write wrong", cat(
			tmStart(1), tmWrite(1, "x", 5), tmRead(1, "x", 0), tmCommit(1),
		), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Opaque(tt.h); got != tt.want {
				t.Errorf("Opaque = %v, want %v for %s", got, tt.want, tt.h)
			}
		})
	}
}

func TestOpaqueConcurrent(t *testing.T) {
	t.Run("aborted tx sees inconsistent snapshot", func(t *testing.T) {
		// T2 reads x=0, then T1 commits x=1,y=1, then T2 reads y=1: no
		// serialization point gives T2 the view (x=0, y=1). Opacity fails
		// even though T2 aborts; strict serializability holds.
		h := cat(
			tmStart(2), tmRead(2, "x", 0),
			tmStart(1), tmWrite(1, "x", 1), tmWrite(1, "y", 1), tmCommit(1),
			tmRead(2, "y", 1), tmAbort(2),
		)
		if Opaque(h) {
			t.Error("inconsistent aborted read must violate opacity")
		}
		if !(StrictSerializability{}).Holds(h) {
			t.Error("strict serializability ignores aborted transactions")
		}
	})
	t.Run("lost update", func(t *testing.T) {
		h := cat(
			tmStart(1), tmStart(2),
			tmRead(1, "x", 0), tmRead(2, "x", 0),
			tmWrite(1, "x", 1), tmWrite(2, "x", 2),
			tmCommit(1), tmCommit(2),
		)
		if Opaque(h) {
			t.Error("lost update must violate opacity")
		}
		if (StrictSerializability{}).Holds(h) {
			t.Error("lost update must violate strict serializability too")
		}
	})
	t.Run("real-time order violation", func(t *testing.T) {
		h := cat(
			tmStart(1), tmWrite(1, "x", 1), tmCommit(1),
			tmStart(2), tmRead(2, "x", 0), tmCommit(2),
		)
		if Opaque(h) {
			t.Error("T2 follows T1 in real time and must see its write")
		}
	})
	t.Run("concurrent reader may serialize before writer", func(t *testing.T) {
		h := cat(
			tmStart(1), tmStart(2),
			tmRead(2, "x", 0),
			tmWrite(1, "x", 1), tmCommit(1),
			tmCommit(2),
		)
		if !Opaque(h) {
			t.Error("T2 can serialize before T1")
		}
	})
	t.Run("pending tryC may commit", func(t *testing.T) {
		h := cat(
			tmStart(1), tmWrite(1, "x", 1),
			[]history.Event{history.Invoke(1, history.TMTryC, nil)},
			tmStart(2), tmRead(2, "x", 1), tmCommit(2),
		)
		if !Opaque(h) {
			t.Error("completion may commit T1, making T2's read legal")
		}
	})
	t.Run("live tx without tryC request must abort in completion", func(t *testing.T) {
		// T1 wrote x=1 but never invoked tryC; T2 must not see the write.
		h := cat(
			tmStart(1), tmWrite(1, "x", 1),
			tmStart(2), tmRead(2, "x", 1), tmCommit(2),
		)
		if Opaque(h) {
			t.Error("completion aborts T1 (no commit request), so T2's read is illegal")
		}
	})
	t.Run("write skew is serializable", func(t *testing.T) {
		// Classic write skew: T1 reads x writes y, T2 reads y writes x;
		// with both reading initial values one serialization order exists
		// only if reads stay consistent: T1: r(x)=0 w(y)=1; T2: r(y)=0
		// w(x)=1. Order T1,T2: T2 reads y=... T2 read y=0 but T1 wrote
		// y=1 → illegal; order T2,T1: T1 reads x=0 but T2 wrote x=1 →
		// illegal. Hence not opaque.
		h := cat(
			tmStart(1), tmStart(2),
			tmRead(1, "x", 0), tmRead(2, "y", 0),
			tmWrite(1, "y", 1), tmWrite(2, "x", 1),
			tmCommit(1), tmCommit(2),
		)
		if Opaque(h) {
			t.Error("write skew with these reads is not serializable")
		}
	})
}

func TestOpacityPrefixClosed(t *testing.T) {
	bad := cat(
		tmStart(2), tmRead(2, "x", 0),
		tmStart(1), tmWrite(1, "x", 1), tmWrite(1, "y", 1), tmCommit(1),
		tmRead(2, "y", 1), tmAbort(2),
	)
	if !PrefixClosed(Opacity{}, bad) {
		t.Error("opacity checker must be prefix-closed along the violating history")
	}
	good := cat(
		tmStart(1), tmWrite(1, "x", 1), tmCommit(1),
		tmStart(2), tmRead(2, "x", 1), tmCommit(2),
	)
	if !PrefixClosed(Opacity{}, good) {
		t.Error("opacity checker must be prefix-closed along the good history")
	}
}

func TestOpaqueFailedOperationsUnconstrained(t *testing.T) {
	// Reads and writes that return A impose no constraints.
	h := cat(
		tmStart(1),
		[]history.Event{
			history.InvokeObj(1, history.TMRead, "x", nil),
			history.ResponseObj(1, history.TMRead, "x", history.Abort),
		},
	)
	if !Opaque(h) {
		t.Error("an aborted read imposes no consistency constraint")
	}
}

func TestStrictSerializabilityRealTime(t *testing.T) {
	// Even strict serializability must respect real-time order of
	// committed transactions.
	h := cat(
		tmStart(1), tmWrite(1, "x", 1), tmCommit(1),
		tmStart(2), tmRead(2, "x", 0), tmCommit(2),
	)
	if (StrictSerializability{}).Holds(h) {
		t.Error("committed T2 follows T1 in real time and must see x=1")
	}
}

func TestPropertyS(t *testing.T) {
	// Build the Section 5.3 scenario: three processes run their t-th
	// transactions concurrently; each invokes tryC after the other two
	// received start responses.
	qualifying := func(third []history.Event) history.History {
		return cat(
			tmStart(1), tmStart(2), tmStart(3), // all start responses in
			tmAbort(1), tmAbort(2), // two abort
			third, // outcome of the third
		)
	}
	t.Run("commit violates the rule", func(t *testing.T) {
		h := qualifying(tmCommit(3))
		if (PropertyS{}).RuleOnly(h) {
			t.Error("a commit in a qualifying group must violate S")
		}
		if (PropertyS{}).Holds(h) {
			t.Error("S includes the rule")
		}
		// Opacity alone is fine with this history.
		if !Opaque(h) {
			t.Error("the history is opaque; only the extra rule fails")
		}
	})
	t.Run("all aborted satisfies the rule", func(t *testing.T) {
		h := qualifying(tmAbort(3))
		if !(PropertyS{}).Holds(h) {
			t.Error("all-aborted qualifying group satisfies S")
		}
	})
	t.Run("two transactions only", func(t *testing.T) {
		h := cat(
			tmStart(1), tmStart(2),
			tmAbort(1), tmCommit(2),
		)
		if !(PropertyS{}).RuleOnly(h) {
			t.Error("the rule needs at least three transactions")
		}
	})
	t.Run("tryC before others start", func(t *testing.T) {
		// p3 commits before p1/p2 even start: the timing condition fails,
		// so the commit is allowed.
		h := cat(
			tmStart(3), tmCommit(3),
			tmStart(1), tmStart(2),
			tmAbort(1), tmAbort(2),
		)
		if !(PropertyS{}).RuleOnly(h) {
			t.Error("non-concurrent / early-commit group is exempt")
		}
	})
	t.Run("different sequence numbers exempt", func(t *testing.T) {
		// p3's committing transaction is its second one; the others are
		// first ones, so no common t exists.
		h := cat(
			tmStart(3), tmAbort(3),
			tmStart(1), tmStart(2), tmStart(3),
			tmAbort(1), tmAbort(2), tmCommit(3),
		)
		if !(PropertyS{}).RuleOnly(h) {
			t.Error("groups require a common per-process sequence number")
		}
	})
	t.Run("prefix closed", func(t *testing.T) {
		h := qualifying(tmCommit(3))
		if !PrefixClosed(PropertyS{}, h) {
			t.Error("S must be prefix-closed")
		}
	})
}
