// Package safety implements the safety properties of the paper (Section
// 3.1): prefix-closed, limit-closed sets of well-formed histories. It
// provides a generic linearizability checker over sequential
// specifications, the consensus agreement+validity property, transactional
// memory opacity and strict serializability, and the Section 5.3 property S
// (opacity plus a timestamp-based abort rule).
//
// Limit closure is automatic for checkers of the form "every finite prefix
// satisfies X", which is how all checkers here are structured.
package safety

import "repro/internal/history"

// Property is a safety property: membership of finite histories in a
// prefix-closed set. Holds must be monotone under prefixes: if Holds(h) is
// false for some prefix of h', then Holds(h') is false.
type Property interface {
	// Name identifies the property in reports.
	Name() string
	// Holds reports whether the finite history h is in the property.
	Holds(h history.History) bool
}

// PropertyFunc adapts a function to Property.
type PropertyFunc struct {
	// PropName is returned by Name.
	PropName string
	// F implements Holds.
	F func(h history.History) bool
}

// Name implements Property.
func (p PropertyFunc) Name() string { return p.PropName }

// Holds implements Property.
func (p PropertyFunc) Holds(h history.History) bool { return p.F(h) }

// PrefixClosed verifies on a concrete history that a property checker is
// prefix-closed along h: once it fails at some prefix it fails at all
// extensions, and if it holds at h it holds at every prefix. Used by tests
// to validate checker implementations against Definition 3.1.
func PrefixClosed(p Property, h history.History) bool {
	failed := false
	for n := 0; n <= len(h); n++ {
		ok := p.Holds(h.Prefix(n))
		if failed && ok {
			return false
		}
		if !ok {
			failed = true
		}
	}
	return true
}
