package safety

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
)

// bruteSerializable is a naive reference implementation of the
// serialization search: plain recursive permutation enumeration with role
// choices, no memoization. Used as an oracle for the memoized DFS.
func bruteSerializable(recs []*txRecord, strict bool) bool {
	n := len(recs)
	placedMask := newBitset(n)
	var rec func(placed int, st varState) bool
	rec = func(placed int, st varState) bool {
		if placed == n {
			return true
		}
		for i, r := range recs {
			if placedMask.test(i) || !placedMask.containsAll(r.precede) {
				continue
			}
			for _, ro := range r.roles {
				switch ro {
				case roleCommitted:
					if !legal(r, st) {
						continue
					}
					placedMask.setBit(i)
					ok := rec(placed+1, applyWrites(r, st))
					placedMask.clearBit(i)
					if ok {
						return true
					}
				case roleAborted:
					if !strict && !legal(r, st) {
						continue
					}
					placedMask.setBit(i)
					ok := rec(placed+1, st)
					placedMask.clearBit(i)
					if ok {
						return true
					}
				}
			}
		}
		return false
	}
	return rec(0, varState{})
}

// randomTMHistory generates a small well-formed TM history with arbitrary
// (frequently inconsistent) read values and outcomes.
func randomTMHistory(r *rand.Rand, procs, events int) history.History {
	vars := []string{"x", "y"}
	var h history.History
	type st struct {
		inTx    bool
		pending string // pending op name, "" if none
		obj     string
	}
	states := make(map[int]*st)
	for i := 0; i < events; i++ {
		p := 1 + r.Intn(procs)
		s := states[p]
		if s == nil {
			s = &st{}
			states[p] = s
		}
		switch {
		case s.pending != "":
			// Respond to the pending operation.
			var val history.Value
			switch s.pending {
			case history.TMStart:
				val = history.OK
			case history.TMRead:
				if r.Intn(6) == 0 {
					val = history.Abort
				} else {
					val = r.Intn(3)
				}
			case history.TMWrite:
				val = history.OK
			case history.TMTryC:
				if r.Intn(2) == 0 {
					val = history.Commit
				} else {
					val = history.Abort
				}
			}
			h = append(h, history.ResponseObj(p, s.pending, s.obj, val))
			if val == history.Abort || (s.pending == history.TMTryC) {
				s.inTx = false
			}
			s.pending = ""
		case !s.inTx:
			h = append(h, history.Invoke(p, history.TMStart, nil))
			s.pending, s.obj = history.TMStart, ""
			s.inTx = true
		default:
			switch r.Intn(3) {
			case 0:
				obj := vars[r.Intn(len(vars))]
				h = append(h, history.InvokeObj(p, history.TMRead, obj, nil))
				s.pending, s.obj = history.TMRead, obj
			case 1:
				obj := vars[r.Intn(len(vars))]
				h = append(h, history.InvokeObj(p, history.TMWrite, obj, r.Intn(3)))
				s.pending, s.obj = history.TMWrite, obj
			default:
				h = append(h, history.Invoke(p, history.TMTryC, nil))
				s.pending, s.obj = history.TMTryC, ""
			}
		}
	}
	return h
}

func TestQuickOpacityMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomTMHistory(r, 2, 4+r.Intn(24))
		recs, ok := buildRecords(h)
		if !ok {
			return false
		}
		if serializable(recs, false) != bruteSerializable(recs, false) {
			t.Logf("opacity mismatch on %s", h)
			return false
		}
		if serializable(recs, true) != bruteSerializable(recs, true) {
			t.Logf("strict-serializability mismatch on %s", h)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOpacityPrefixClosureOnRandomHistories(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomTMHistory(r, 2, 4+r.Intn(16))
		return PrefixClosed(Opacity{}, h) && PrefixClosed(StrictSerializability{}, h)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickStrictSerializabilityWeakerThanOpacity(t *testing.T) {
	// Opacity implies strict serializability on every history.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomTMHistory(r, 2, 4+r.Intn(20))
		if Opaque(h) && !(StrictSerializability{}).Holds(h) {
			t.Logf("opaque but not strictly serializable: %s", h)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
