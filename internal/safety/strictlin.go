package safety

import (
	"fmt"

	"repro/internal/history"
)

// StrictLinearizable reports whether the well-formed history h is
// strictly linearizable with respect to spec: linearizable in the usual
// sense, with the additional crash cutoff of Aguilera–Frølund strict
// linearizability — an operation pending when its process crashes
// either takes effect before the crash point or never. Operations of
// processes that later recover are ordinary fresh operations; the
// recovered process therefore observes exactly the effects that were
// durable at its crash.
//
// The search is the memoized Wing–Gong DFS of Linearizable with one
// extra constraint: a crash-pending operation's interval ends at its
// crash event, so it cannot be linearized once any operation invoked
// after that crash has been (and, being response-less, it may match any
// transition or be omitted). Histories with more than 63 operations are
// rejected with false, matching Linearizable.
func StrictLinearizable(spec SeqSpec, h history.History) bool {
	ops := h.Operations()
	if len(ops) > maxLinOps {
		return false
	}
	// crashedAt[i] is the history index of the crash that closed pending
	// operation i, or -1. Reconstructed with the same per-process pairing
	// walk as Operations: a later invocation of a recovered process opens
	// a fresh operation and leaves the closed one behind.
	crashedAt := make([]int, len(ops))
	for i := range crashedAt {
		crashedAt[i] = -1
	}
	open := make(map[int]int) // proc -> index into ops of its open operation
	k := 0
	for i, e := range h {
		switch e.Kind {
		case history.KindInvoke:
			open[e.Proc] = k
			k++
		case history.KindResponse:
			delete(open, e.Proc)
		case history.KindCrash:
			if j, ok := open[e.Proc]; ok {
				crashedAt[j] = i
				delete(open, e.Proc)
			}
		}
	}

	mustPrecede := make([]uint64, len(ops))
	// barredBy[i] is the mask of operations invoked after operation i's
	// crash: once any of them is linearized, i may no longer be.
	barredBy := make([]uint64, len(ops))
	for i := range ops {
		for j := range ops {
			if i == j {
				continue
			}
			if history.PrecedesRealTime(ops[j], ops[i]) {
				mustPrecede[i] |= 1 << uint(j)
			}
			if crashedAt[i] >= 0 && ops[j].InvIndex > crashedAt[i] {
				barredBy[i] |= 1 << uint(j)
			}
		}
	}
	completedMask := uint64(0)
	for i, op := range ops {
		if op.Done {
			completedMask |= 1 << uint(i)
		}
	}

	type key struct {
		mask  uint64
		state State
	}
	memo := make(map[key]bool)

	var dfs func(mask uint64, st State) bool
	dfs = func(mask uint64, st State) bool {
		if mask&completedMask == completedMask {
			return true
		}
		k := key{mask, st}
		if v, ok := memo[k]; ok {
			return v
		}
		res := false
		for i := range ops {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 || mask&mustPrecede[i] != mustPrecede[i] || mask&barredBy[i] != 0 {
				continue
			}
			op := ops[i]
			for _, tr := range spec.Apply(st, op.Proc, op.Name, op.Obj, op.Arg) {
				if op.Done && tr.Resp != op.Val {
					continue
				}
				if dfs(mask|bit, tr.Next) {
					res = true
					break
				}
			}
			if res {
				break
			}
		}
		memo[k] = res
		return res
	}
	return dfs(0, spec.Init())
}

// StrictLinearizabilityProperty wraps a sequential specification as the
// crash-aware safety Property: a history is in the property iff it is
// strictly linearizable w.r.t. spec. Strict linearizability is
// prefix-closed: a strict linearization of h restricts to one of every
// prefix (dropping operations the prefix has not invoked keeps both the
// real-time order and the crash cutoffs intact).
func StrictLinearizabilityProperty(spec SeqSpec) Property {
	return PropertyFunc{
		PropName: fmt.Sprintf("strict-linearizability(%s)", spec.Name()),
		F:        func(h history.History) bool { return StrictLinearizable(spec, h) },
	}
}
