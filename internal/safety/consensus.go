package safety

import "repro/internal/history"

// ConsensusPropose is the operation name of the consensus object type.
const ConsensusPropose = "propose"

// AgreementValidity is the consensus safety property of the paper's
// corollaries: agreement (all processes decide the same value) and validity
// (every decided value was proposed by some process before the decision).
// It is prefix-closed: both violations are irrevocable. The native
// implementation is the incremental avMonitor; Holds is the BatchAdapter
// over it.
type AgreementValidity struct{}

// Name implements Property.
func (AgreementValidity) Name() string { return "agreement+validity" }

// Holds implements Property.
func (p AgreementValidity) Holds(h history.History) bool {
	return BatchAdapter{PropName: p.Name(), SpawnFn: p.Spawn}.Holds(h)
}

// Spawn returns the incremental agreement+validity monitor.
func (AgreementValidity) Spawn() Monitor {
	return &avMonitor{proposed: make(map[history.Value]bool)}
}

// avMonitor tracks the proposed-value set and the (unique) decided value.
// Each Step is O(1); Fork copies the small proposed set.
type avMonitor struct {
	proposed map[history.Value]bool
	decided  history.Value
	have     bool
	failed   bool
}

// Step implements Monitor.
func (m *avMonitor) Step(e history.Event) bool {
	if m.failed {
		return false
	}
	switch {
	case e.Kind == history.KindInvoke && e.Op == ConsensusPropose:
		m.proposed[e.Arg] = true
	case e.Kind == history.KindResponse && e.Op == ConsensusPropose:
		if !m.proposed[e.Val] {
			m.failed = true // validity: value never proposed so far
			return false
		}
		if m.have && m.decided != e.Val {
			m.failed = true // agreement
			return false
		}
		m.decided = e.Val
		m.have = true
	}
	return true
}

// OK implements Monitor.
func (m *avMonitor) OK() bool { return !m.failed }

// Fork implements Monitor.
func (m *avMonitor) Fork() Monitor {
	proposed := make(map[history.Value]bool, len(m.proposed))
	for v := range m.proposed {
		proposed[v] = true
	}
	return &avMonitor{proposed: proposed, decided: m.decided, have: m.have, failed: m.failed}
}

// Decisions returns the multiset of decided values per process in h.
func Decisions(h history.History) map[int]history.Value {
	out := make(map[int]history.Value)
	for _, e := range h {
		if e.Kind == history.KindResponse && e.Op == ConsensusPropose {
			out[e.Proc] = e.Val
		}
	}
	return out
}
