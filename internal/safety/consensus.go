package safety

import "repro/internal/history"

// ConsensusPropose is the operation name of the consensus object type.
const ConsensusPropose = "propose"

// AgreementValidity is the consensus safety property of the paper's
// corollaries: agreement (all processes decide the same value) and validity
// (every decided value was proposed by some process before the decision).
// It is prefix-closed: both violations are irrevocable.
type AgreementValidity struct{}

// Name implements Property.
func (AgreementValidity) Name() string { return "agreement+validity" }

// Holds implements Property.
func (AgreementValidity) Holds(h history.History) bool {
	proposed := make(map[history.Value]bool)
	var decided history.Value
	haveDecision := false
	for _, e := range h {
		switch {
		case e.Kind == history.KindInvoke && e.Op == ConsensusPropose:
			proposed[e.Arg] = true
		case e.Kind == history.KindResponse && e.Op == ConsensusPropose:
			if !proposed[e.Val] {
				return false // validity: value never proposed so far
			}
			if haveDecision && decided != e.Val {
				return false // agreement
			}
			decided = e.Val
			haveDecision = true
		}
	}
	return true
}

// Decisions returns the multiset of decided values per process in h.
func Decisions(h history.History) map[int]history.Value {
	out := make(map[int]history.Value)
	for _, e := range h {
		if e.Kind == history.KindResponse && e.Op == ConsensusPropose {
			out[e.Proc] = e.Val
		}
	}
	return out
}
