package safety

import (
	"math/rand"
	"testing"

	"repro/internal/history"
)

// TestStrictLinearizableBasics pins the crash semantics on directed
// histories: an operation pending at its process's crash either
// linearizes before the crash point or vanishes — never both, and
// never later.
func TestStrictLinearizableBasics(t *testing.T) {
	spec := RegisterSpec{Initial: 0}
	cases := []struct {
		name string
		h    history.History
		want bool
	}{
		{"crashed write linearizes", history.History{
			history.Invoke(1, "write", 1),
			history.Crash(1),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 1),
		}, true},
		{"crashed write vanishes", history.History{
			history.Invoke(1, "write", 1),
			history.Crash(1),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 0),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 0),
		}, true},
		{"crashed write cannot materialize late", history.History{
			// The write must linearize before the crash (then the first
			// read sees 1) or vanish (then the second cannot see 1);
			// 0-then-1 needs it to take effect between two post-crash
			// reads, which strict linearizability forbids.
			history.Invoke(1, "write", 1),
			history.Crash(1),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 0),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 1),
		}, false},
		{"recovered process starts fresh", history.History{
			history.Invoke(1, "write", 1),
			history.Crash(1),
			history.Recover(1),
			history.Invoke(1, "write", 2),
			history.Response(1, "write", history.OK),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 2),
		}, true},
		{"crash with nothing pending is inert", history.History{
			history.Invoke(1, "write", 1),
			history.Response(1, "write", history.OK),
			history.Crash(1),
			history.Invoke(2, "read", nil),
			history.Response(2, "read", 1),
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := StrictLinearizable(spec, tc.h); got != tc.want {
				t.Errorf("StrictLinearizable = %v, want %v on %s", got, tc.want, tc.h)
			}
			// The incremental monitor must agree with the batch verdict.
			m := NewStrictLinMonitor(spec)
			ok := true
			for _, e := range tc.h {
				ok = m.Step(e)
			}
			if ok != tc.want {
				t.Errorf("monitor = %v, want %v on %s", ok, tc.want, tc.h)
			}
		})
	}
}

// TestStrictImpliesPlainOnLateMaterialization pins the separation: the
// late-materialization history is linearizable in the plain sense (a
// pending operation may take effect at any point) but not strictly.
func TestStrictImpliesPlainOnLateMaterialization(t *testing.T) {
	spec := RegisterSpec{Initial: 0}
	h := history.History{
		history.Invoke(1, "write", 1),
		history.Crash(1),
		history.Invoke(2, "read", nil),
		history.Response(2, "read", 0),
		history.Invoke(2, "read", nil),
		history.Response(2, "read", 1),
	}
	if !Linearizable(spec, h) {
		t.Fatal("plain linearizability must accept the late materialization")
	}
	if StrictLinearizable(spec, h) {
		t.Fatal("strict linearizability must reject it")
	}
}

// randCrashRegisterHistory is randRegisterHistory with crash and
// recovery events mixed in: a crashed process leaves its operation
// pending forever (or until a recovery, after which it may invoke
// afresh).
func randCrashRegisterHistory(r *rand.Rand, n, events int) history.History {
	var h history.History
	type pend struct{ op string }
	pending := make(map[int]*pend)
	crashed := make(map[int]bool)
	for len(h) < events {
		p := 1 + r.Intn(n)
		if crashed[p] {
			if r.Intn(4) == 0 {
				h = append(h, history.Recover(p))
				crashed[p] = false
				pending[p] = nil
			}
			continue
		}
		if r.Intn(10) == 0 {
			h = append(h, history.Crash(p))
			crashed[p] = true
			continue
		}
		if pd := pending[p]; pd != nil {
			if pd.op == "read" {
				h = append(h, history.Response(p, "read", r.Intn(3)))
			} else {
				h = append(h, history.Response(p, "write", history.OK))
			}
			pending[p] = nil
			continue
		}
		if r.Intn(2) == 0 {
			h = append(h, history.Invoke(p, "read", nil))
			pending[p] = &pend{op: "read"}
		} else {
			h = append(h, history.Invoke(p, "write", r.Intn(3)))
			pending[p] = &pend{op: "write"}
		}
	}
	return h
}

// TestMonitorEquivalenceStrictLinearizability cross-checks the strict
// monitor against the batch strict checker at every prefix of random
// crash/recovery histories, forks included, via the shared harness.
func TestMonitorEquivalenceStrictLinearizability(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	spec := RegisterSpec{Initial: 0}
	spawn := func() Monitor { return NewStrictLinMonitor(spec) }
	oracle := func(h history.History) bool { return StrictLinearizable(spec, h) }
	for i := 0; i < 300; i++ {
		h := randCrashRegisterHistory(r, 3, 4+r.Intn(16))
		crossCheck(t, "strict-linearizability(register)", spawn, oracle, h, r.Intn(len(h)))
	}
}

// TestStrictEqualsPlainWithoutCrashes: on crash-free histories the
// strict checker and monitor coincide with the plain ones.
func TestStrictEqualsPlainWithoutCrashes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	spec := RegisterSpec{Initial: 0}
	for i := 0; i < 300; i++ {
		h := randRegisterHistory(r, 3, 4+r.Intn(16))
		plain := Linearizable(spec, h)
		if strict := StrictLinearizable(spec, h); strict != plain {
			t.Fatalf("crash-free divergence: strict=%v plain=%v on %s", strict, plain, h)
		}
	}
}

// TestStrictLinearizabilityPropertyPrefixClosed: the property stays
// failed on every extension once it fails (Definition 3.1), crash and
// recovery events included.
func TestStrictLinearizabilityPropertyPrefixClosed(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p := StrictLinearizabilityProperty(RegisterSpec{Initial: 0})
	for i := 0; i < 120; i++ {
		h := randCrashRegisterHistory(r, 3, 6+r.Intn(14))
		if !PrefixClosed(p, h) {
			t.Fatalf("not prefix-closed along %s", h)
		}
	}
}
