package safety

import "repro/internal/history"

// Lock object type operation names (shared with internal/mutex).
const (
	LockAcquire = "acquire"
	LockRelease = "release"
)

// MutualExclusion is the lock safety property: no two processes are in the
// critical section simultaneously, where the critical section spans from
// an acquire response to the following release invocation, and only the
// holder may release. Both violations are irrevocable, so the property is
// prefix-closed. The native implementation is the incremental mutexMonitor;
// Holds is the BatchAdapter over it.
type MutualExclusion struct{}

// Name implements Property.
func (MutualExclusion) Name() string { return "mutual-exclusion" }

// Holds implements Property.
func (p MutualExclusion) Holds(h history.History) bool {
	return BatchAdapter{PropName: p.Name(), SpawnFn: p.Spawn}.Holds(h)
}

// Spawn returns the incremental mutual-exclusion monitor.
func (MutualExclusion) Spawn() Monitor { return &mutexMonitor{} }

// mutexMonitor tracks the critical-section holder. Each Step is O(1);
// Fork copies two words.
type mutexMonitor struct {
	holder int
	failed bool
}

// Step implements Monitor.
func (m *mutexMonitor) Step(e history.Event) bool {
	if m.failed {
		return false
	}
	switch {
	case e.Kind == history.KindResponse && e.Op == LockAcquire:
		if m.holder != 0 {
			m.failed = true // two processes in the critical section
			return false
		}
		m.holder = e.Proc
	case e.Kind == history.KindInvoke && e.Op == LockRelease:
		if m.holder != e.Proc {
			m.failed = true // release by a non-holder
			return false
		}
		m.holder = 0
	}
	return true
}

// OK implements Monitor.
func (m *mutexMonitor) OK() bool { return !m.failed }

// Fork implements Monitor.
func (m *mutexMonitor) Fork() Monitor { return &mutexMonitor{holder: m.holder, failed: m.failed} }
