package safety

import "repro/internal/history"

// Lock object type operation names (shared with internal/mutex).
const (
	LockAcquire = "acquire"
	LockRelease = "release"
)

// MutualExclusion is the lock safety property: no two processes are in the
// critical section simultaneously, where the critical section spans from
// an acquire response to the following release invocation, and only the
// holder may release. Both violations are irrevocable, so the property is
// prefix-closed.
type MutualExclusion struct{}

// Name implements Property.
func (MutualExclusion) Name() string { return "mutual-exclusion" }

// Holds implements Property.
func (MutualExclusion) Holds(h history.History) bool {
	holder := 0
	for _, e := range h {
		switch {
		case e.Kind == history.KindResponse && e.Op == LockAcquire:
			if holder != 0 {
				return false // two processes in the critical section
			}
			holder = e.Proc
		case e.Kind == history.KindInvoke && e.Op == LockRelease:
			if holder != e.Proc {
				return false // release by a non-holder
			}
			holder = 0
		}
	}
	return true
}
