package safety

import (
	"testing"
	"unsafe"

	"repro/internal/history"
)

// TestCfgKeyStaysInline pins cfgKey under the Go runtime's 128-byte
// threshold for inline map keys. Beyond it, maps store keys indirectly
// and every seen-set insert in the closure search allocates a key copy
// — the monitor's dominant cost in exploration before inlineProm was
// sized to fit.
func TestCfgKeyStaysInline(t *testing.T) {
	if sz := unsafe.Sizeof(cfgKey{}); sz > 128 {
		t.Fatalf("cfgKey is %d bytes, over the 128-byte inline map-key limit; shrink inlineProm", sz)
	}
}

// TestCfgKeyPromiseOverflow exercises the ext overflow path: monitors
// whose configurations carry more than inlineProm promises must still
// deduplicate correctly (same promises → same key, regardless of
// insertion order) and distinguish differing promise sets.
func TestCfgKeyPromiseOverflow(t *testing.T) {
	var proms []promise
	for i := int32(0); i < inlineProm+2; i++ {
		proms = insertPromise(proms, i*2, int(i))
	}
	// Insert a middle promise last: keys are order-independent.
	a := insertPromise(proms, 1, "x")
	b := insertPromise(insertPromise(proms[:2:2], 1, "x"), 4, 1)
	b = append(b, proms[2:]...)
	// Rebuild b properly sorted via insertPromise from scratch.
	var c []promise
	for _, p := range a {
		c = insertPromise(c, p.idx, p.val)
	}
	ka, kc := cfgKeyOf(7, "st", a), cfgKeyOf(7, "st", c)
	if ka != kc {
		t.Fatalf("same promise sets produced different keys:\n%#v\n%#v", ka, kc)
	}
	kd := cfgKeyOf(7, "st", insertPromise(proms, 1, "y"))
	if ka == kd {
		t.Fatal("different promise values collided in the overflow encoding")
	}
	if got := cfgKeyWith(7, "st", proms, 1, "x"); got != ka {
		t.Fatalf("cfgKeyWith mismatch with materialized key:\n%#v\n%#v", got, ka)
	}
	if got := cfgKeyWithout(7, "st", a, 1); got != cfgKeyOf(7, "st", proms) {
		t.Fatalf("cfgKeyWithout mismatch with materialized key: %#v", got)
	}
}

// TestLinMonitorForkSharesOps pins the copy-on-append fork discipline:
// a fork and its parent share the ops backing until either appends, and
// appends on one side never become visible on the other.
func TestLinMonitorForkSharesOps(t *testing.T) {
	m := NewLinMonitor(RegisterSpec{Initial: 0})
	step := func(mon Monitor, evs ...history.Event) {
		for _, e := range evs {
			if !mon.Step(e) {
				t.Fatalf("unexpected violation at %+v", e)
			}
		}
	}
	step(m,
		history.Invoke(1, "write", 1), history.Response(1, "write", history.OK),
		history.Invoke(2, "read", nil))
	f := m.Fork().(*LinMonitor)
	// Diverge: parent completes the read with 1, the fork with a write
	// by proc 3 first. Each side appends to ops independently.
	step(m, history.Response(2, "read", 1))
	step(f, history.Invoke(3, "write", 5), history.Response(3, "write", history.OK), history.Response(2, "read", 5))
	if !m.OK() || !f.OK() {
		t.Fatal("both linearizable branches must stay OK")
	}
	// The fork must not have seen the parent's appends or vice versa.
	if len(m.ops) != 2 || len(f.ops) != 3 {
		t.Fatalf("ops leaked across the fork: parent %d ops, fork %d ops", len(m.ops), len(f.ops))
	}
	// A non-linearizable continuation still fails on the fork.
	step(f, history.Invoke(1, "read", nil))
	if f.Step(history.Response(1, "read", 99)) {
		t.Fatal("fork accepted a read of a never-written value")
	}
}
