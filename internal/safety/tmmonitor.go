package safety

import "repro/internal/history"

// TMMonitor is the incremental form of the TM safety checkers. Opacity
// and strict serializability are defined per-prefix — every prefix ending
// in a response must admit a legal serialization — so the batch checkers
// re-verify every prefix of every history they are handed. The monitor
// exploits that structure: it accumulates the history and runs the
// serialization search exactly once per new response event, so along one
// exploration path each prefix is verified once instead of once per
// descendant. The Section 5.3 timestamp-abort rule is additionally
// re-evaluated on the TM control events that can change it (start
// responses, tryC invocations and responses).
//
// The accumulated history is append-only; Fork clips both copies'
// capacity so a later append by either side reallocates instead of
// clobbering the shared backing array.
type TMMonitor struct {
	h      history.History
	dig    HistoryDigest // running digest of h, for StateDigest
	strict bool          // strict serializability instead of opacity
	rule   bool          // additionally enforce the Section 5.3 timestamp rule
	failed bool
}

// NewOpacityMonitor creates the incremental opacity monitor.
func NewOpacityMonitor() *TMMonitor { return &TMMonitor{} }

// NewStrictSerializabilityMonitor creates the incremental strict
// serializability monitor.
func NewStrictSerializabilityMonitor() *TMMonitor { return &TMMonitor{strict: true} }

// NewPropertySMonitor creates the incremental monitor for the Section
// 5.3 property S (opacity plus the timestamp-abort rule).
func NewPropertySMonitor() *TMMonitor { return &TMMonitor{rule: true} }

// Step implements Monitor.
func (m *TMMonitor) Step(e history.Event) bool {
	if m.failed {
		return false
	}
	m.h = append(m.h, e)
	m.dig.Append(e)
	if e.Kind == history.KindResponse {
		recs, ok := buildRecords(m.h)
		if !ok || !serializable(recs, m.strict) {
			m.failed = true
			return false
		}
	}
	if m.rule && m.ruleEvent(e) && !timestampRuleHolds(m.h) {
		m.failed = true
		return false
	}
	return true
}

// ruleEvent reports whether e can change the timestamp-abort verdict: a
// subset qualifies (or gains a committed member) only through start
// responses, tryC invocations and tryC responses.
func (m *TMMonitor) ruleEvent(e history.Event) bool {
	switch e.Op {
	case history.TMStart:
		return e.Kind == history.KindResponse
	case history.TMTryC:
		return true
	}
	return false
}

// OK implements Monitor.
func (m *TMMonitor) OK() bool { return !m.failed }

// Fork implements Monitor.
func (m *TMMonitor) Fork() Monitor {
	m.h = m.h[:len(m.h):len(m.h)]
	return &TMMonitor{h: m.h, dig: m.dig, strict: m.strict, rule: m.rule, failed: m.failed}
}

// Spawn returns the incremental opacity monitor.
func (Opacity) Spawn() Monitor { return NewOpacityMonitor() }

// Spawn returns the incremental strict serializability monitor.
func (StrictSerializability) Spawn() Monitor { return NewStrictSerializabilityMonitor() }

// Spawn returns the incremental property S monitor.
func (PropertyS) Spawn() Monitor { return NewPropertySMonitor() }
