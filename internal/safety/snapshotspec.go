package safety

import (
	"fmt"
	"strings"

	"repro/internal/history"
)

// SnapshotSpec is the sequential specification of an n-component snapshot
// object over integer values: "update" writes the invoking process's own
// component (single-writer, component = proc-1), "scan" returns the whole
// vector encoded with EncodeVector. Used to check linearizability of the
// software snapshot construction.
type SnapshotSpec struct {
	// N is the number of components.
	N int
	// Initial is the initial value of every component.
	Initial int
}

// Name implements SeqSpec.
func (SnapshotSpec) Name() string { return "snapshot" }

// Init implements SeqSpec.
func (s SnapshotSpec) Init() State {
	vec := make([]history.Value, s.N)
	for i := range vec {
		vec[i] = s.Initial
	}
	return EncodeVector(vec)
}

// Apply implements SeqSpec.
func (s SnapshotSpec) Apply(st State, proc int, op, obj string, arg history.Value) []Transition {
	enc, ok := st.(string)
	if !ok {
		return nil
	}
	switch op {
	case "update":
		parts := strings.Split(enc, ",")
		if proc < 1 || proc > len(parts) {
			return nil
		}
		parts[proc-1] = fmt.Sprintf("%v", arg)
		return []Transition{{Next: strings.Join(parts, ","), Resp: history.OK}}
	case "scan":
		return []Transition{{Next: st, Resp: enc}}
	default:
		return nil
	}
}

// EncodeVector encodes a snapshot vector as a comparable string, the
// response format of SnapshotSpec scans.
func EncodeVector(vec []history.Value) string {
	parts := make([]string, len(vec))
	for i, v := range vec {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return strings.Join(parts, ",")
}
