package safety

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/history"
)

// LinMonitor is the incremental linearizability checker: a just-in-time
// Wing–Gong search that carries its partial-order state along the history
// instead of re-solving the whole prefix at every extension.
//
// The state is a set of configurations. Each configuration witnesses one
// way the operations seen so far can be linearized: a mask of linearized
// operations, the sequential-specification state they produce, and the
// promised responses of operations linearized speculatively before their
// response arrived. Two invariants are maintained after every consumed
// event:
//
//  1. every configuration's mask contains every completed operation
//     (completed operations linearize no later than their response —
//     the real-time order of linearizability), and
//  2. the configuration set is exactly the set of distinct
//     (mask, state, promises) values witnessed by some legal sequential
//     order of the mask's operations that respects real-time order and
//     matches every completed operation's response.
//
// Pending operations are linearized lazily: only when a response forces
// operations before it. Any linearization placing a pending operation
// later is reachable from a smaller configuration, so laziness loses no
// witnesses; the history is linearizable iff the set is non-empty. An
// invocation is O(1) — the configuration set is untouched — and a
// response closes the set over the currently pending operations, which
// on the short prefixes of bounded exploration is far cheaper than the
// from-scratch memoized search.
//
// Configurations are immutable once created, so Fork shares them and
// copies only the slices and maps that index them — the fork cost is
// O(ops + configurations), independent of the specification.
type LinMonitor struct {
	spec    SeqSpec
	ops     []monOp     // all operations seen, in invocation order
	pending map[int]int // proc → index in ops of its pending operation
	configs []*linCfg
	failed  bool
}

// monOp is one observed operation.
type monOp struct {
	proc      int
	name, obj string
	arg       history.Value
	val       history.Value
	done      bool
}

// linCfg is one immutable configuration.
type linCfg struct {
	mask uint64
	st   State
	// promises maps speculatively linearized pending operations to the
	// response the chosen transition committed them to. Immutable.
	promises map[int]history.Value
}

// cfgKey canonically identifies a configuration for deduplication.
type cfgKey struct {
	mask uint64
	st   State
	prom string
}

func (c *linCfg) key() cfgKey {
	k := cfgKey{mask: c.mask, st: c.st}
	if len(c.promises) > 0 {
		idx := make([]int, 0, len(c.promises))
		for i := range c.promises {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		var b strings.Builder
		for _, i := range idx {
			fmt.Fprintf(&b, "%d=%v;", i, c.promises[i])
		}
		k.prom = b.String()
	}
	return k
}

// NewLinMonitor creates the incremental linearizability monitor for spec
// at the empty history.
func NewLinMonitor(spec SeqSpec) *LinMonitor {
	return &LinMonitor{
		spec:    spec,
		pending: make(map[int]int),
		configs: []*linCfg{{mask: 0, st: spec.Init()}},
	}
}

// Spawn implements the monitor side of the linearizability property.
func (m *LinMonitor) Spawn() Monitor { return NewLinMonitor(m.spec) }

// Step implements Monitor.
func (m *LinMonitor) Step(e history.Event) bool {
	if m.failed {
		return false
	}
	switch e.Kind {
	case history.KindInvoke:
		if len(m.ops) >= maxLinOps {
			// Match the batch checker's cap: histories beyond the mask
			// width are rejected.
			m.failed = true
			return false
		}
		m.pending[e.Proc] = len(m.ops)
		m.ops = append(m.ops, monOp{proc: e.Proc, name: e.Op, obj: e.Obj, arg: e.Arg})
	case history.KindResponse:
		idx, ok := m.pending[e.Proc]
		if !ok {
			return true // stray response; well-formed histories never produce one
		}
		delete(m.pending, e.Proc)
		m.ops[idx].done = true
		m.ops[idx].val = e.Val
		m.advance(idx, e.Val)
		if len(m.configs) == 0 {
			m.failed = true
			return false
		}
	case history.KindCrash:
		// A crashed process's operation stays pending: it may take effect
		// or not, which is exactly how pending operations are treated.
	}
	return true
}

// advance consumes the response of operation idx: configurations that
// already linearized it keep only if they promised this response;
// configurations that did not must linearize it now, possibly after
// speculatively linearizing other pending operations.
func (m *LinMonitor) advance(idx int, val history.Value) {
	bit := uint64(1) << uint(idx)
	next := make(map[cfgKey]*linCfg)
	for _, c := range m.configs {
		if c.mask&bit != 0 {
			// Speculatively linearized earlier: the promise must match.
			if pv, ok := c.promises[idx]; ok && pv == val {
				nc := &linCfg{mask: c.mask, st: c.st, promises: withoutPromise(c.promises, idx)}
				next[nc.key()] = nc
			}
			continue
		}
		m.closeOver(c, idx, val, next)
	}
	m.configs = m.configs[:0]
	for _, c := range next {
		m.configs = append(m.configs, c)
	}
}

// closeOver explores every way to reach a configuration containing idx
// from c by linearizing currently pending operations, with idx last.
// Orders placing further pending operations after idx are not explored:
// they remain reachable lazily from the produced configurations.
func (m *LinMonitor) closeOver(c *linCfg, idx int, val history.Value, out map[cfgKey]*linCfg) {
	stack := []*linCfg{c}
	seen := map[cfgKey]bool{c.key(): true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Linearize idx now, closing this branch.
		op := m.ops[idx]
		for _, tr := range m.spec.Apply(cur.st, op.proc, op.name, op.obj, op.arg) {
			if tr.Resp != val {
				continue
			}
			nc := &linCfg{mask: cur.mask | 1<<uint(idx), st: tr.Next, promises: cur.promises}
			out[nc.key()] = nc
		}
		// Or speculatively linearize another pending operation first.
		for j := range m.ops {
			if j == idx || m.ops[j].done || cur.mask&(1<<uint(j)) != 0 {
				continue
			}
			opj := m.ops[j]
			for _, tr := range m.spec.Apply(cur.st, opj.proc, opj.name, opj.obj, opj.arg) {
				nc := &linCfg{
					mask:     cur.mask | 1<<uint(j),
					st:       tr.Next,
					promises: withPromise(cur.promises, j, tr.Resp),
				}
				k := nc.key()
				if !seen[k] {
					seen[k] = true
					stack = append(stack, nc)
				}
			}
		}
	}
}

// withPromise returns promises extended with idx→val (copy; promise maps
// are immutable once attached to a configuration).
func withPromise(promises map[int]history.Value, idx int, val history.Value) map[int]history.Value {
	out := make(map[int]history.Value, len(promises)+1)
	for k, v := range promises {
		out[k] = v
	}
	out[idx] = val
	return out
}

// withoutPromise returns promises with idx removed (copy, nil when empty).
func withoutPromise(promises map[int]history.Value, idx int) map[int]history.Value {
	if len(promises) <= 1 {
		return nil
	}
	out := make(map[int]history.Value, len(promises)-1)
	for k, v := range promises {
		if k != idx {
			out[k] = v
		}
	}
	return out
}

// OK implements Monitor.
func (m *LinMonitor) OK() bool { return !m.failed }

// Fork implements Monitor.
func (m *LinMonitor) Fork() Monitor {
	pending := make(map[int]int, len(m.pending))
	for p, i := range m.pending {
		pending[p] = i
	}
	return &LinMonitor{
		spec:    m.spec,
		ops:     append([]monOp(nil), m.ops...),
		pending: pending,
		configs: append([]*linCfg(nil), m.configs...),
		failed:  m.failed,
	}
}
