package safety

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"repro/internal/history"
)

// LinMonitor is the incremental linearizability checker: a just-in-time
// Wing–Gong search that carries its partial-order state along the history
// instead of re-solving the whole prefix at every extension.
//
// The state is a set of configurations. Each configuration witnesses one
// way the operations seen so far can be linearized: a mask of linearized
// operations, the sequential-specification state they produce, and the
// promised responses of operations linearized speculatively before their
// response arrived. Two invariants are maintained after every consumed
// event:
//
//  1. every configuration's mask contains every completed operation
//     (completed operations linearize no later than their response —
//     the real-time order of linearizability), and
//  2. the configuration set is exactly the set of distinct
//     (mask, state, promises) values witnessed by some legal sequential
//     order of the mask's operations that respects real-time order and
//     matches every completed operation's response.
//
// Pending operations are linearized lazily: only when a response forces
// operations before it. Any linearization placing a pending operation
// later is reachable from a smaller configuration, so laziness loses no
// witnesses; the history is linearizable iff the set is non-empty. An
// invocation is O(1) — the configuration set is untouched — and a
// response closes the set over the currently pending operations, which
// on the short prefixes of bounded exploration is far cheaper than the
// from-scratch memoized search.
//
// The representation is tuned for the exploration hot loop: operations
// are append-only and immutable, so forks share the ops backing array
// (copy-on-append via a capacity clip) and completion lives in a bitmask
// on the monitor; configurations are plain values in a monitor-owned
// slice (no per-configuration heap object); promises are short sorted
// slices, deduplicated through a fully comparable key with the promises
// inlined (no string building); and the search's stack, seen-set and
// output buffer come from a shared pool, so the constant forking of
// exploration never re-grows them.
type LinMonitor struct {
	spec  SeqSpec
	aspec AppendSpec // spec's allocation-free form, nil if not provided
	// strict selects strict (crash-aware) linearizability: an operation
	// pending when its process crashes must linearize before the crash
	// point or never. The monitor then closes the operation at the crash
	// event — each configuration branches into "the operation vanished"
	// and "it linearized before the crash, with any response" — and marks
	// it done so no later event can linearize it. With strict false a
	// crashed operation stays pending forever and may linearize at any
	// later point, which is plain linearizability on crash-free suffixes
	// but too weak once crashed processes recover: a recovered process
	// must observe only effects that were durable at its crash.
	strict bool
	// ops holds every operation seen, in invocation order. Entries are
	// immutable once appended, so Fork shares the backing array: both
	// sides are clipped to length (full slice expression), making any
	// later append reallocate instead of writing through the share.
	ops      []monOp
	doneMask uint64 // bit i set iff ops[i] has responded
	pending  []int  // proc → index+1 in ops of its pending operation (0 = none)
	configs  []linCfg
	failed   bool
	// Inline backings for pending and configs: exploration forks a
	// monitor per branch, and with the small process and configuration
	// counts of bounded exploration both slices fit inline, so Fork
	// allocates one object instead of three.
	pendInline [8]int
}

// linScratch is the transient state of one advance call: the closure
// search's stack and seen-set, the rebuilt configuration set, and the
// spec's transition buffer. Monitors are forked far more often than they
// are advanced, so scratch is pooled globally rather than carried (and
// re-grown) per fork; advance holds one scratch for its full duration,
// which keeps pool use safe under parallel exploration.
type linScratch struct {
	// The seen set is an array of configurations scanned linearly,
	// spilling to a hash map only past seenInline entries: advances see
	// a handful of configurations, and structural comparison (early-exit
	// on the mask word, promise slices shared rather than copied) is far
	// cheaper than building and hashing interface-bearing map keys.
	keys  []linCfg
	seen  map[cfgKey]bool // spill for pathological advances
	spill bool            // seen holds entries from this advance
	stack []linCfg
	next  []linCfg
	trbuf []Transition
}

// seenInline is how many seen-set entries stay in the linear-scan array
// before inserts spill into the hash map.
const seenInline = 32

func (sc *linScratch) reset() {
	sc.keys = sc.keys[:0]
	if sc.spill {
		clear(sc.seen)
		sc.spill = false
	}
}

// markOf reports whether configuration (mask, st, proms) was already
// seen, recording it if not. The recorded entry shares proms.
func (sc *linScratch) markOf(mask uint64, st State, proms []promise) bool {
	for i := range sc.keys {
		k := &sc.keys[i]
		if k.mask == mask && len(k.promises) == len(proms) && k.st == st && promEq(k.promises, proms) {
			return true
		}
	}
	if len(sc.keys) < seenInline {
		sc.keys = append(sc.keys, linCfg{mask: mask, st: st, promises: proms})
		return false
	}
	return sc.spillMark(cfgKeyOf(mask, st, proms))
}

// markWith is markOf for (mask, st, proms+{idx→val}) — the extended
// promise slice is only materialized when the configuration is fresh,
// and is returned for the caller to attach (nil when already seen).
func (sc *linScratch) markWith(mask uint64, st State, proms []promise, idx int32, val history.Value) ([]promise, bool) {
	for i := range sc.keys {
		k := &sc.keys[i]
		if k.mask == mask && len(k.promises) == len(proms)+1 && k.st == st && promEqWith(k.promises, proms, idx, val) {
			return nil, true
		}
	}
	np := insertPromise(proms, idx, val)
	if len(sc.keys) < seenInline {
		sc.keys = append(sc.keys, linCfg{mask: mask, st: st, promises: np})
		return np, false
	}
	if sc.spillMark(cfgKeyOf(mask, st, np)) {
		return nil, true
	}
	return np, false
}

// markWithout is markOf for (mask, st, proms−{idx}), with markWith's
// materialize-only-when-fresh contract.
func (sc *linScratch) markWithout(mask uint64, st State, proms []promise, idx int32) ([]promise, bool) {
	for i := range sc.keys {
		k := &sc.keys[i]
		if k.mask == mask && len(k.promises) == len(proms)-1 && k.st == st && promEqWithout(k.promises, proms, idx) {
			return nil, true
		}
	}
	np := removePromise(proms, idx)
	if len(sc.keys) < seenInline {
		sc.keys = append(sc.keys, linCfg{mask: mask, st: st, promises: np})
		return np, false
	}
	if sc.spillMark(cfgKeyOf(mask, st, np)) {
		return nil, true
	}
	return np, false
}

// spillMark is the over-capacity path: entries past seenInline go into
// the hash map (array entries are never migrated; lookups scan the array
// first, so the two stores are consistent).
func (sc *linScratch) spillMark(k cfgKey) bool {
	if sc.seen[k] {
		return true
	}
	if sc.seen == nil {
		sc.seen = make(map[cfgKey]bool)
	}
	sc.seen[k] = true
	sc.spill = true
	return false
}

// promEq reports a == b elementwise; both are sorted by idx and equal
// in length.
func promEq(a, b []promise) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// promEqWith reports stored == base+{idx→val} (merged in sorted order)
// without materializing the extension; len(stored) == len(base)+1.
func promEqWith(stored, base []promise, idx int32, val history.Value) bool {
	ins := promise{idx: idx, val: val}
	j, used := 0, false
	for i := range stored {
		var want promise
		if !used && (j >= len(base) || idx < base[j].idx) {
			want, used = ins, true
		} else {
			want = base[j]
			j++
		}
		if stored[i] != want {
			return false
		}
	}
	return used && j == len(base)
}

// promEqWithout reports stored == base−{idx}; len(stored) == len(base)−1.
func promEqWithout(stored, base []promise, idx int32) bool {
	i := 0
	for _, p := range base {
		if p.idx == idx {
			continue
		}
		if i >= len(stored) || stored[i] != p {
			return false
		}
		i++
	}
	return i == len(stored)
}

var scratchPool = sync.Pool{New: func() any {
	return &linScratch{}
}}

// monOp is one observed operation, immutable once appended.
type monOp struct {
	proc      int
	name, obj string
	arg       history.Value
}

// promise is one speculative linearization: the pending operation's index
// and the response the chosen transition committed it to.
type promise struct {
	idx int32
	val history.Value
}

// linCfg is one immutable configuration. promises is sorted by idx and
// never mutated once attached, so configurations share promise slices.
type linCfg struct {
	mask     uint64
	st       State
	promises []promise
}

// inlineProm is how many promises a cfgKey holds inline. Promise counts
// are bounded by the concurrently pending operations, so with the small
// process counts of bounded exploration the overflow path is cold. The
// count is also sized to keep cfgKey within the runtime's 128-byte
// inline map-key limit — a larger key would make every seen-set insert
// allocate a copy (see TestCfgKeyStaysInline).
const inlineProm = 3

// cfgKey canonically identifies a configuration for deduplication. It is
// a comparable value — no string rendering on the hot path; promises
// beyond the inline capacity spill into a canonical overflow string.
// Specification states and responses must be ==-comparable (the State
// contract, and closeOver already compares responses with !=).
type cfgKey struct {
	mask uint64
	st   State
	n    uint8
	prom [inlineProm]promise
	ext  string
}

// extProm renders overflow promises (those past the inline capacity)
// canonically; proms is already sorted by idx.
func extProm(proms []promise) string {
	var b strings.Builder
	for _, p := range proms {
		fmt.Fprintf(&b, "%d=%v;", p.idx, p.val)
	}
	return b.String()
}

// cfgKeyOf builds the key of (mask, st, proms) without allocating in the
// inline case.
func cfgKeyOf(mask uint64, st State, proms []promise) cfgKey {
	k := cfgKey{mask: mask, st: st, n: uint8(len(proms))}
	if len(proms) <= inlineProm {
		copy(k.prom[:], proms)
		return k
	}
	copy(k.prom[:], proms[:inlineProm])
	k.ext = extProm(proms[inlineProm:])
	return k
}

// cfgKeyWith builds the key the configuration (mask, st, proms+{idx→val})
// would have, without materializing the extended promise slice in the
// inline case — the slice is only allocated when the key turns out fresh.
func cfgKeyWith(mask uint64, st State, proms []promise, idx int32, val history.Value) cfgKey {
	if len(proms)+1 <= inlineProm {
		k := cfgKey{mask: mask, st: st, n: uint8(len(proms) + 1)}
		i := 0
		for ; i < len(proms) && proms[i].idx < idx; i++ {
			k.prom[i] = proms[i]
		}
		k.prom[i] = promise{idx: idx, val: val}
		for ; i < len(proms); i++ {
			k.prom[i+1] = proms[i]
		}
		return k
	}
	return cfgKeyOf(mask, st, insertPromise(proms, idx, val))
}

// cfgKeyWithout is cfgKeyWith's inverse: the key after removing idx.
func cfgKeyWithout(mask uint64, st State, proms []promise, idx int32) cfgKey {
	if len(proms)-1 <= inlineProm {
		k := cfgKey{mask: mask, st: st, n: uint8(len(proms) - 1)}
		i := 0
		for _, p := range proms {
			if p.idx != idx {
				k.prom[i] = p
				i++
			}
		}
		return k
	}
	return cfgKeyOf(mask, st, removePromise(proms, idx))
}

// insertPromise returns proms extended with idx→val, sorted (copy;
// promise slices are immutable once attached to a configuration).
func insertPromise(proms []promise, idx int32, val history.Value) []promise {
	out := make([]promise, 0, len(proms)+1)
	i := 0
	for ; i < len(proms) && proms[i].idx < idx; i++ {
		out = append(out, proms[i])
	}
	out = append(out, promise{idx: idx, val: val})
	return append(out, proms[i:]...)
}

// removePromise returns proms with idx removed (copy, nil when empty).
func removePromise(proms []promise, idx int32) []promise {
	if len(proms) <= 1 {
		return nil
	}
	out := make([]promise, 0, len(proms)-1)
	for _, p := range proms {
		if p.idx != idx {
			out = append(out, p)
		}
	}
	return out
}

// lookupPromise returns the promised response for idx, if any.
func lookupPromise(proms []promise, idx int32) (history.Value, bool) {
	for _, p := range proms {
		if p.idx == idx {
			return p.val, true
		}
	}
	return nil, false
}

// NewLinMonitor creates the incremental linearizability monitor for spec
// at the empty history.
func NewLinMonitor(spec SeqSpec) *LinMonitor {
	m := &LinMonitor{
		spec:    spec,
		configs: []linCfg{{mask: 0, st: spec.Init()}},
	}
	m.aspec, _ = spec.(AppendSpec)
	return m
}

// NewStrictLinMonitor creates the crash-aware (strict linearizability)
// monitor for spec: operations pending at their process's crash either
// linearize before the crash point or vanish. See the strict field.
func NewStrictLinMonitor(spec SeqSpec) *LinMonitor {
	m := NewLinMonitor(spec)
	m.strict = true
	return m
}

// Spawn implements the monitor side of the linearizability property.
func (m *LinMonitor) Spawn() Monitor {
	s := NewLinMonitor(m.spec)
	s.strict = m.strict
	return s
}

// Step implements Monitor.
func (m *LinMonitor) Step(e history.Event) bool {
	if m.failed {
		return false
	}
	switch e.Kind {
	case history.KindInvoke:
		if len(m.ops) >= maxLinOps {
			// Match the batch checker's cap: histories beyond the mask
			// width are rejected.
			m.failed = true
			return false
		}
		if e.Proc >= 0 {
			for len(m.pending) <= e.Proc {
				m.pending = append(m.pending, 0)
			}
			m.pending[e.Proc] = len(m.ops) + 1
		}
		m.ops = append(m.ops, monOp{proc: e.Proc, name: e.Op, obj: e.Obj, arg: e.Arg})
	case history.KindResponse:
		if e.Proc < 0 || e.Proc >= len(m.pending) || m.pending[e.Proc] == 0 {
			return true // stray response; well-formed histories never produce one
		}
		idx := m.pending[e.Proc] - 1
		m.pending[e.Proc] = 0
		m.doneMask |= uint64(1) << uint(idx)
		m.advance(idx, e.Val)
		if len(m.configs) == 0 {
			m.failed = true
			return false
		}
	case history.KindCrash:
		// Non-strict: a crashed process's operation stays pending — it may
		// take effect or not, at any point, which is exactly how pending
		// operations are treated. Strict: the operation is closed at the
		// crash (linearize now-or-earlier with any response, or vanish).
		if m.strict && e.Proc >= 0 && e.Proc < len(m.pending) && m.pending[e.Proc] != 0 {
			idx := m.pending[e.Proc] - 1
			m.pending[e.Proc] = 0
			m.crashClose(idx)
		}
	case history.KindRecover:
		// Recovery introduces no operation: the recovered process's next
		// invocation is an ordinary fresh operation.
	}
	return true
}

// crashClose consumes the crash of a process with operation idx pending:
// every configuration branches into the operation vanishing (the
// configuration survives unchanged) and linearizing before the crash
// point — possibly after speculatively linearizing other pending
// operations, with any response, since no response event will ever
// check it. idx is then marked done, so no later advance can linearize
// it: that is the strict-linearizability cutoff. Unlike advance, the
// configuration set can only grow here, so the monitor never fails at a
// crash event.
//
// After a crashClose the completed-mask invariant weakens to "every
// responded operation is in every mask": a vanished operation is done
// but absent from the surviving configurations' masks. That is sound —
// a done operation is excluded from pendMask, so its mask bit never
// influences future transitions.
func (m *LinMonitor) crashClose(idx int) {
	bit := uint64(1) << uint(idx)
	sc := scratchPool.Get().(*linScratch)
	sc.reset()
	sc.next = sc.next[:0]
	pendMask := (uint64(1)<<uint(len(m.ops)) - 1) &^ m.doneMask
	for i := range m.configs {
		c := &m.configs[i]
		if c.mask&bit != 0 {
			// Speculatively linearized before the crash: keep, dropping the
			// promise — the response it committed to will never arrive and
			// nothing can observe it.
			if np, dup := sc.markWithout(c.mask, c.st, c.promises, int32(idx)); !dup {
				sc.next = append(sc.next, linCfg{mask: c.mask, st: c.st, promises: np})
			}
			continue
		}
		if sc.markOf(c.mask, c.st, c.promises) {
			continue // already reached while closing an earlier source
		}
		sc.stack = append(sc.stack[:0], *c)
		for len(sc.stack) > 0 {
			cur := sc.stack[len(sc.stack)-1]
			sc.stack = sc.stack[:len(sc.stack)-1]
			// The operation may vanish: cur survives as-is. Every stacked
			// configuration was fresh when marked, so it is appended exactly
			// once — which also keeps cross-source deduplication lossless
			// (the first discoverer of a shared configuration emitted it).
			sc.next = append(sc.next, cur)
			// Or it linearizes here, with any response.
			for _, tr := range m.apply(sc, cur.st, &m.ops[idx]) {
				if !sc.markOf(cur.mask|bit, tr.Next, cur.promises) {
					sc.next = append(sc.next, linCfg{mask: cur.mask | bit, st: tr.Next, promises: cur.promises})
				}
			}
			// Or another pending operation speculatively linearizes first.
			for rest := pendMask &^ cur.mask &^ bit; rest != 0; rest &= rest - 1 {
				j := bits.TrailingZeros64(rest)
				jbit := uint64(1) << uint(j)
				for _, tr := range m.apply(sc, cur.st, &m.ops[j]) {
					np, dup := sc.markWith(cur.mask|jbit, tr.Next, cur.promises, int32(j), tr.Resp)
					if dup {
						continue
					}
					sc.stack = append(sc.stack, linCfg{mask: cur.mask | jbit, st: tr.Next, promises: np})
				}
			}
		}
	}
	m.doneMask |= bit
	m.configs = append(m.configs[:0], sc.next...)
	scratchPool.Put(sc)
}

// apply enumerates spec transitions for op at st, through the spec's
// append form into pooled scratch when available. The returned slice is
// invalidated by the next apply call — callers finish iterating before
// applying again.
func (m *LinMonitor) apply(sc *linScratch, st State, op *monOp) []Transition {
	if m.aspec != nil {
		sc.trbuf = m.aspec.ApplyAppend(sc.trbuf[:0], st, op.proc, op.name, op.obj, op.arg)
		return sc.trbuf
	}
	return m.spec.Apply(st, op.proc, op.name, op.obj, op.arg)
}

// advance consumes the response of operation idx: configurations that
// already linearized it keep only if they promised this response;
// configurations that did not must linearize it now, possibly after
// speculatively linearizing other pending operations.
//
// One seen-set serves the whole response: intermediate configurations
// (mask without idx) and output configurations (mask with idx) occupy
// disjoint key spaces, and an intermediate configuration reached from
// two source configurations closes over identically, so cross-source
// deduplication is sound and saves repeated work.
func (m *LinMonitor) advance(idx int, val history.Value) {
	bit := uint64(1) << uint(idx)
	sc := scratchPool.Get().(*linScratch)
	sc.reset()
	sc.next = sc.next[:0]
	for i := range m.configs {
		c := &m.configs[i]
		if c.mask&bit != 0 {
			// Speculatively linearized earlier: the promise must match.
			pv, ok := lookupPromise(c.promises, int32(idx))
			if !ok || pv != val {
				continue
			}
			if np, dup := sc.markWithout(c.mask, c.st, c.promises, int32(idx)); !dup {
				sc.next = append(sc.next, linCfg{mask: c.mask, st: c.st, promises: np})
			}
			continue
		}
		m.closeOver(sc, c, idx, val)
	}
	m.configs = append(m.configs[:0], sc.next...)
	scratchPool.Put(sc)
}

// closeOver explores every way to reach a configuration containing idx
// from c by linearizing currently pending operations, with idx last.
// Orders placing further pending operations after idx are not explored:
// they remain reachable lazily from the produced configurations. Fresh
// output configurations are appended to sc.next.
func (m *LinMonitor) closeOver(sc *linScratch, c *linCfg, idx int, val history.Value) {
	if sc.markOf(c.mask, c.st, c.promises) {
		return // an earlier source configuration already closed over c
	}
	bit := uint64(1) << uint(idx)
	pendMask := (uint64(1)<<uint(len(m.ops)) - 1) &^ m.doneMask
	sc.stack = append(sc.stack[:0], *c)
	for len(sc.stack) > 0 {
		cur := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		// Linearize idx now, closing this branch.
		for _, tr := range m.apply(sc, cur.st, &m.ops[idx]) {
			if tr.Resp != val {
				continue
			}
			if !sc.markOf(cur.mask|bit, tr.Next, cur.promises) {
				sc.next = append(sc.next, linCfg{mask: cur.mask | bit, st: tr.Next, promises: cur.promises})
			}
		}
		// Or speculatively linearize another pending operation first.
		for rest := pendMask &^ cur.mask &^ bit; rest != 0; rest &= rest - 1 {
			j := bits.TrailingZeros64(rest)
			jbit := uint64(1) << uint(j)
			for _, tr := range m.apply(sc, cur.st, &m.ops[j]) {
				np, dup := sc.markWith(cur.mask|jbit, tr.Next, cur.promises, int32(j), tr.Resp)
				if dup {
					continue
				}
				sc.stack = append(sc.stack, linCfg{mask: cur.mask | jbit, st: tr.Next, promises: np})
			}
		}
	}
}

// OK implements Monitor.
func (m *LinMonitor) OK() bool { return !m.failed }

// linPool recycles released monitors back into Fork: exploration forks
// one monitor per branch and releases it when the branch's subtree is
// done, so steady-state forking reuses the pending and configs backings
// instead of allocating.
var linPool = sync.Pool{New: func() any { return new(LinMonitor) }}

// Fork implements Monitor.
func (m *LinMonitor) Fork() Monitor {
	// Clip ops so both sides copy-on-append instead of copying now:
	// entries are immutable, only the shared backing's spare capacity
	// must not be written through.
	m.ops = m.ops[:len(m.ops):len(m.ops)]
	f := linPool.Get().(*LinMonitor)
	f.spec, f.aspec, f.ops, f.doneMask, f.failed = m.spec, m.aspec, m.ops, m.doneMask, m.failed
	f.strict = m.strict
	if f.pending == nil {
		f.pending = f.pendInline[:0]
	}
	f.pending = append(f.pending[:0], m.pending...)
	f.configs = append(f.configs[:0], m.configs...)
	return f
}

// Release implements Releaser: the fork's branch is fully explored, so
// its backings can serve a later Fork.
func (m *LinMonitor) Release() { linPool.Put(m) }
