package safety

import "repro/internal/history"

// PropertyS is the Section 5.3 safety property: opacity plus the rule that
// for any three or more pairwise-concurrent transactions T1,T2,T3,...
// executed by distinct processes, all being the t-th transaction of their
// process for a common t, if each Ti invokes tryC after at least two other
// transactions of the group received a response for start, then none of
// them may commit ("such transactions should be aborted").
//
// The commit of any member of such a group is the irrevocable bad event,
// which makes the rule prefix-closed; together with opacity the property
// satisfies Definition 3.1.
type PropertyS struct{}

// Name implements Property.
func (PropertyS) Name() string { return "S(opacity+timestamp-abort)" }

// Holds implements Property.
func (PropertyS) Holds(h history.History) bool {
	if !Opaque(h) {
		return false
	}
	return timestampRuleHolds(h)
}

// RuleOnly checks just the timestamp-abort rule (used by tests to isolate
// it from opacity).
func (PropertyS) RuleOnly(h history.History) bool { return timestampRuleHolds(h) }

type sInfo struct {
	tx       *history.Tx
	startRes int // history index of the start response, -1 if none
	tryCInv  int // history index of the tryC invocation, -1 if none
}

func timestampRuleHolds(h history.History) bool {
	txs := history.Transactions(h)
	// Group by per-process sequence number t; within a group there is at
	// most one transaction per process.
	groups := make(map[int][]sInfo)
	for _, tx := range txs {
		info := sInfo{tx: tx, startRes: -1, tryCInv: -1}
		for _, op := range tx.Ops {
			switch op.Name {
			case history.TMStart:
				if op.Done {
					info.startRes = op.ResIndex
				}
			case history.TMTryC:
				info.tryCInv = op.InvIndex
			}
		}
		groups[tx.Seq] = append(groups[tx.Seq], info)
	}
	for _, members := range groups {
		if len(members) < 3 {
			continue
		}
		if !sGroupsOK(members) {
			return false
		}
	}
	return true
}

// sGroupsOK enumerates subsets of size >= 3 of one same-t group and checks
// the abort rule on each qualifying subset.
func sGroupsOK(members []sInfo) bool {
	n := len(members)
	for mask := uint(0); mask < 1<<uint(n); mask++ {
		var sel []sInfo
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sel = append(sel, members[i])
			}
		}
		if len(sel) < 3 {
			continue
		}
		if !subsetQualifies(sel) {
			continue
		}
		for _, in := range sel {
			if in.tx.Status == history.TxCommitted {
				return false
			}
		}
	}
	return true
}

// subsetQualifies reports whether the Section 5.3 conditions hold for the
// subset: pairwise concurrent, and each member invokes tryC after at least
// two other members received their start response.
func subsetQualifies(sel []sInfo) bool {
	for i := range sel {
		for j := i + 1; j < len(sel); j++ {
			if !history.Concurrent(sel[i].tx, sel[j].tx) {
				return false
			}
		}
	}
	for i, in := range sel {
		if in.tryCInv < 0 {
			return false
		}
		others := 0
		for j, other := range sel {
			if j == i || other.startRes < 0 {
				continue
			}
			if other.startRes < in.tryCInv {
				others++
			}
		}
		if others < 2 {
			return false
		}
	}
	return true
}
