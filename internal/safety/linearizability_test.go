package safety

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
)

func inv(p int, op string, arg history.Value) history.Event {
	return history.Invoke(p, op, arg)
}

func res(p int, op string, val history.Value) history.Event {
	return history.Response(p, op, val)
}

func TestLinearizableRegisterBasics(t *testing.T) {
	spec := RegisterSpec{Initial: 0}
	tests := []struct {
		name string
		h    history.History
		want bool
	}{
		{"empty", history.History{}, true},
		{"read initial", history.History{
			inv(1, "read", nil), res(1, "read", 0),
		}, true},
		{"read wrong initial", history.History{
			inv(1, "read", nil), res(1, "read", 7),
		}, false},
		{"sequential write then read", history.History{
			inv(1, "write", 5), res(1, "write", history.OK),
			inv(1, "read", nil), res(1, "read", 5),
		}, true},
		{"stale read after completed write", history.History{
			inv(1, "write", 5), res(1, "write", history.OK),
			inv(2, "read", nil), res(2, "read", 0),
		}, false},
		{"concurrent write read old", history.History{
			inv(1, "write", 5),
			inv(2, "read", nil), res(2, "read", 0),
			res(1, "write", history.OK),
		}, true},
		{"concurrent write read new", history.History{
			inv(1, "write", 5),
			inv(2, "read", nil), res(2, "read", 5),
			res(1, "write", history.OK),
		}, true},
		{"pending write takes effect", history.History{
			inv(1, "write", 9),
			inv(2, "read", nil), res(2, "read", 9),
		}, true},
		{"pending write ignored", history.History{
			inv(1, "write", 9),
			inv(2, "read", nil), res(2, "read", 0),
		}, true},
		{"new-old inversion", history.History{
			inv(1, "write", 1),
			inv(2, "read", nil), res(2, "read", 1),
			inv(3, "read", nil), res(3, "read", 0),
			res(1, "write", history.OK),
		}, false},
		{"crashed pending write may count", history.History{
			inv(1, "write", 3), history.Crash(1),
			inv(2, "read", nil), res(2, "read", 3),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Linearizable(spec, tt.h); got != tt.want {
				t.Errorf("Linearizable = %v, want %v for %s", got, tt.want, tt.h)
			}
		})
	}
}

func TestLinearizableCAS(t *testing.T) {
	spec := CASSpec{Initial: 0}
	tests := []struct {
		name string
		h    history.History
		want bool
	}{
		{"winning cas", history.History{
			inv(1, "cas", CASArg{Old: 0, New: 1}), res(1, "cas", true),
			inv(1, "read", nil), res(1, "read", 1),
		}, true},
		{"two cas same old only one wins", history.History{
			inv(1, "cas", CASArg{Old: 0, New: 1}), res(1, "cas", true),
			inv(2, "cas", CASArg{Old: 0, New: 2}), res(2, "cas", true),
		}, false},
		{"concurrent cas both claim win", history.History{
			inv(1, "cas", CASArg{Old: 0, New: 1}),
			inv(2, "cas", CASArg{Old: 0, New: 2}),
			res(1, "cas", true), res(2, "cas", true),
		}, false},
		{"concurrent cas win then lose", history.History{
			inv(1, "cas", CASArg{Old: 0, New: 1}),
			inv(2, "cas", CASArg{Old: 0, New: 2}),
			res(1, "cas", true), res(2, "cas", false),
		}, true},
		{"chained cas", history.History{
			inv(1, "cas", CASArg{Old: 0, New: 1}), res(1, "cas", true),
			inv(2, "cas", CASArg{Old: 1, New: 2}), res(2, "cas", true),
			inv(1, "read", nil), res(1, "read", 2),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Linearizable(spec, tt.h); got != tt.want {
				t.Errorf("Linearizable = %v, want %v for %s", got, tt.want, tt.h)
			}
		})
	}
}

func TestLinearizabilityPropertyPrefixClosed(t *testing.T) {
	spec := RegisterSpec{Initial: 0}
	prop := LinearizabilityProperty(spec)
	h := history.History{
		inv(1, "write", 1),
		inv(2, "read", nil), res(2, "read", 1),
		inv(3, "read", nil), res(3, "read", 0),
		res(1, "write", history.OK),
	}
	if !PrefixClosed(prop, h) {
		t.Error("linearizability checker must behave prefix-closed along this history")
	}
}

func TestLinearizableTooManyOps(t *testing.T) {
	spec := RegisterSpec{Initial: 0}
	var h history.History
	for i := 0; i < maxLinOps+1; i++ {
		h = append(h, inv(1, "read", nil), res(1, "read", 0))
	}
	if Linearizable(spec, h) {
		t.Error("histories beyond the op bound must be rejected")
	}
}

// bruteLinearizable is an exponential oracle: it tries every permutation of
// every subset of operations that contains all completed ones.
func bruteLinearizable(spec SeqSpec, h history.History) bool {
	ops := h.Operations()
	n := len(ops)
	var rec func(placed []int, used uint64, st State) bool
	rec = func(placed []int, used uint64, st State) bool {
		allCompleted := true
		for i, op := range ops {
			if op.Done && used&(1<<uint(i)) == 0 {
				allCompleted = false
				break
			}
		}
		if allCompleted {
			return true
		}
		for i := 0; i < n; i++ {
			if used&(1<<uint(i)) != 0 {
				continue
			}
			ok := true
			for j := 0; j < n; j++ {
				if j != i && used&(1<<uint(j)) == 0 && history.PrecedesRealTime(ops[j], ops[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			op := ops[i]
			for _, tr := range spec.Apply(st, op.Proc, op.Name, op.Obj, op.Arg) {
				if op.Done && tr.Resp != op.Val {
					continue
				}
				if rec(append(placed, i), used|1<<uint(i), tr.Next) {
					return true
				}
			}
		}
		return false
	}
	return rec(nil, 0, spec.Init())
}

func TestQuickLinearizableMatchesBruteForce(t *testing.T) {
	spec := RegisterSpec{Initial: 0}
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomRegisterHistory(r, 3, 8)
		return Linearizable(spec, h) == bruteLinearizable(spec, h)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randomRegisterHistory generates a small well-formed register history with
// arbitrary (often non-linearizable) response values.
func randomRegisterHistory(r *rand.Rand, procs, events int) history.History {
	var h history.History
	pending := make(map[int]string)
	for i := 0; i < events; i++ {
		p := 1 + r.Intn(procs)
		if op, ok := pending[p]; ok && r.Intn(2) == 0 {
			var val history.Value
			if op == "read" {
				val = r.Intn(3)
			} else {
				val = history.OK
			}
			h = append(h, res(p, op, val))
			delete(pending, p)
			continue
		}
		if _, ok := pending[p]; ok {
			continue
		}
		if r.Intn(2) == 0 {
			h = append(h, inv(p, "read", nil))
			pending[p] = "read"
		} else {
			h = append(h, inv(p, "write", r.Intn(3)))
			pending[p] = "write"
		}
	}
	return h
}

func TestAgreementValidity(t *testing.T) {
	prop := AgreementValidity{}
	tests := []struct {
		name string
		h    history.History
		want bool
	}{
		{"empty", history.History{}, true},
		{"agreeing decisions", history.History{
			inv(1, "propose", 7), inv(2, "propose", 9),
			res(1, "propose", 7), res(2, "propose", 7),
		}, true},
		{"disagreement", history.History{
			inv(1, "propose", 7), inv(2, "propose", 9),
			res(1, "propose", 7), res(2, "propose", 9),
		}, false},
		{"invalid value", history.History{
			inv(1, "propose", 7), res(1, "propose", 3),
		}, false},
		{"decide others proposal", history.History{
			inv(1, "propose", 7), inv(2, "propose", 9),
			res(1, "propose", 9),
		}, true},
		{"decision before that proposal exists", history.History{
			inv(1, "propose", 7), res(1, "propose", 9),
			inv(2, "propose", 9),
		}, false},
		{"pending ok", history.History{
			inv(1, "propose", 7), inv(2, "propose", 9),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := prop.Holds(tt.h); got != tt.want {
				t.Errorf("Holds = %v, want %v", got, tt.want)
			}
			if !PrefixClosed(prop, tt.h) {
				t.Error("agreement+validity must be prefix-closed")
			}
		})
	}
}

func TestDecisions(t *testing.T) {
	h := history.History{
		inv(1, "propose", 7), res(1, "propose", 7),
		inv(2, "propose", 9),
	}
	d := Decisions(h)
	if len(d) != 1 || d[1] != 7 {
		t.Errorf("Decisions = %v", d)
	}
}
