package safety

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/history"
)

// TMInitial is the initial value of every transactional variable, matching
// Algorithm 1's initialization C = (1,(0,0,...)).
const TMInitial = 0

// role is how a transaction is placed in a candidate serialization.
type role int

const (
	roleCommitted role = iota + 1
	roleAborted
)

// txRecord precomputes the data the serialization search needs about one
// transaction.
type txRecord struct {
	tx *history.Tx
	// steps is the program-order sequence of successful reads and writes.
	steps []txStep
	// roles are the allowed placement roles, derived from the completion
	// rules of opacity (Section 4.1): committed transactions must commit,
	// aborted must abort, live with a pending tryC may do either, live
	// without a pending tryC abort.
	roles []role
	// precede is the set of transactions that must be serialized before
	// this one (real-time order).
	precede bitset
}

// bitset is a dynamic bit mask over transaction indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) test(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// withBit returns a copy of b with bit i set.
func (b bitset) withBit(i int) bitset {
	out := make(bitset, len(b))
	copy(out, b)
	out[i/64] |= 1 << uint(i%64)
	return out
}

func (b bitset) setBit(i int) { b[i/64] |= 1 << uint(i%64) }

func (b bitset) clearBit(i int) { b[i/64] &^= 1 << uint(i%64) }

// containsAll reports whether every bit of other is set in b.
func (b bitset) containsAll(other bitset) bool {
	for w := range other {
		if other[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) key() string {
	buf := make([]byte, 0, len(b)*8)
	for _, w := range b {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}

type txStep struct {
	isRead bool
	v      string
	val    history.Value // value read, or value written
}

// maxOpacityTxs is a sanity cap on the number of transactions the memoized
// search handles (the dynamic bitset supports arbitrary counts; the cap
// guards against accidental quadratic blowups on absurd inputs).
const maxOpacityTxs = 4096

// buildRecords analyses a TM history into search records. ok=false when the
// history has too many transactions.
func buildRecords(h history.History) ([]*txRecord, bool) {
	txs := history.Transactions(h)
	if len(txs) > maxOpacityTxs {
		return nil, false
	}
	recs := make([]*txRecord, len(txs))
	for i, tx := range txs {
		r := &txRecord{tx: tx}
		for _, op := range tx.Ops {
			switch {
			case op.Name == history.TMRead && op.Done && op.Val != history.Abort:
				r.steps = append(r.steps, txStep{isRead: true, v: op.Obj, val: op.Val})
			case op.Name == history.TMWrite && op.Done && op.Val != history.Abort:
				r.steps = append(r.steps, txStep{isRead: false, v: op.Obj, val: op.Arg})
			}
		}
		switch tx.Status {
		case history.TxCommitted:
			r.roles = []role{roleCommitted}
		case history.TxAborted:
			r.roles = []role{roleAborted}
		case history.TxLive:
			if pendingTryC(tx) {
				r.roles = []role{roleCommitted, roleAborted}
			} else {
				r.roles = []role{roleAborted}
			}
		}
		recs[i] = r
	}
	for i, a := range recs {
		a.precede = newBitset(len(recs))
		for j, b := range recs {
			if i != j && history.TxPrecedes(b.tx, a.tx) {
				a.precede.setBit(j)
			}
		}
	}
	return recs, true
}

// pendingTryC reports whether the transaction's last operation is a tryC
// invocation without a response.
func pendingTryC(tx *history.Tx) bool {
	if len(tx.Ops) == 0 {
		return false
	}
	last := tx.Ops[len(tx.Ops)-1]
	return last.Name == history.TMTryC && !last.Done
}

// varState is the committed store during serialization, encoded canonically
// for memoization.
type varState map[string]history.Value

func (s varState) key() string {
	if len(s) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v;", k, s[k])
	}
	return b.String()
}

// legal reports whether the transaction's reads are consistent with the
// committed store st at its serialization point (reading its own earlier
// writes first, then st, then the initial value).
func legal(r *txRecord, st varState) bool {
	local := make(map[string]history.Value)
	for _, step := range r.steps {
		if step.isRead {
			want, ok := local[step.v]
			if !ok {
				want, ok = st[step.v]
				if !ok {
					want = TMInitial
				}
			}
			if step.val != want {
				return false
			}
			continue
		}
		local[step.v] = step.val
	}
	return true
}

// applyWrites returns st extended with the transaction's writes (copy on
// write).
func applyWrites(r *txRecord, st varState) varState {
	wrote := false
	for _, step := range r.steps {
		if !step.isRead {
			wrote = true
			break
		}
	}
	if !wrote {
		return st
	}
	out := make(varState, len(st)+2)
	for k, v := range st {
		out[k] = v
	}
	for _, step := range r.steps {
		if !step.isRead {
			out[step.v] = step.val
		}
	}
	return out
}

// serializable runs the memoized DFS: is there an order of all transactions
// (with allowed roles) respecting real-time order in which every placed
// transaction's reads are legal? When strict is true, aborted transactions
// impose no read constraints (strict serializability); otherwise even
// aborted transactions must observe a consistent state (opacity).
func serializable(recs []*txRecord, strict bool) bool {
	n := len(recs)

	type key struct {
		mask  string
		state string
	}
	memo := make(map[key]bool)

	var dfs func(mask bitset, placed int, st varState) bool
	dfs = func(mask bitset, placed int, st varState) bool {
		if placed == n {
			return true
		}
		k := key{mask.key(), st.key()}
		if v, ok := memo[k]; ok {
			return v
		}
		res := false
	candidates:
		for i, r := range recs {
			if mask.test(i) || !mask.containsAll(r.precede) {
				continue
			}
			for _, ro := range r.roles {
				switch ro {
				case roleCommitted:
					if !legal(r, st) {
						continue
					}
					if dfs(mask.withBit(i), placed+1, applyWrites(r, st)) {
						res = true
						break candidates
					}
				case roleAborted:
					if !strict && !legal(r, st) {
						continue
					}
					if dfs(mask.withBit(i), placed+1, st) {
						res = true
						break candidates
					}
				}
			}
		}
		memo[k] = res
		return res
	}
	return dfs(newBitset(n), 0, varState{})
}

// OpaquePrefix reports whether the single finite history h admits a
// completion and an equivalent legal sequential history preserving
// real-time order (the per-prefix condition of opacity).
func OpaquePrefix(h history.History) bool {
	recs, ok := buildRecords(h)
	if !ok {
		return false
	}
	return serializable(recs, false)
}

// Opaque reports whether h ensures opacity: every finite prefix satisfies
// OpaquePrefix. Prefixes are checked after every response event (adding
// invocations cannot invalidate opacity: a new or extended live
// transaction completes as aborted with no additional successful reads, and
// real-time constraints only shrink).
func Opaque(h history.History) bool {
	for i, e := range h {
		if e.Kind == history.KindResponse && !OpaquePrefix(h.Prefix(i+1)) {
			return false
		}
	}
	return OpaquePrefix(h)
}

// Opacity is the opacity safety property as a Property value.
type Opacity struct{}

// Name implements Property.
func (Opacity) Name() string { return "opacity" }

// Holds implements Property.
func (Opacity) Holds(h history.History) bool { return Opaque(h) }

// StrictSerializability requires the committed transactions (plus possibly
// some commit-pending ones) to form a legal sequential history preserving
// real-time order; aborted transactions are invisible and unconstrained.
type StrictSerializability struct{}

// Name implements Property.
func (StrictSerializability) Name() string { return "strict-serializability" }

// Holds implements Property.
func (StrictSerializability) Holds(h history.History) bool {
	for i, e := range h {
		if e.Kind == history.KindResponse && !strictPrefix(h.Prefix(i+1)) {
			return false
		}
	}
	return strictPrefix(h)
}

func strictPrefix(h history.History) bool {
	recs, ok := buildRecords(h)
	if !ok {
		return false
	}
	return serializable(recs, true)
}
