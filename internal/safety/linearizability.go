package safety

import (
	"fmt"

	"repro/internal/history"
)

// State is a sequential-specification state. States must be comparable with
// == (used as memoization keys).
type State any

// Transition is one allowed (state, response) outcome of applying an
// invocation at a state, an element of the paper's Seq ⊆ Inv×St×St×Res.
type Transition struct {
	Next State
	Resp history.Value
}

// SeqSpec is a sequential specification of a shared object type Tp =
// (St, Inv, Res, Seq), presented operationally: Init gives the initial
// state, Apply enumerates the transitions allowed for an invocation at a
// state (possibly several, for nondeterministic specifications).
type SeqSpec interface {
	Name() string
	Init() State
	Apply(st State, proc int, op, obj string, arg history.Value) []Transition
}

// AppendSpec is the allocation-free form of SeqSpec, an optional
// extension: ApplyAppend appends the transitions to dst and returns it,
// letting the incremental monitor reuse one scratch buffer across its
// entire closure search instead of allocating a slice per Apply call.
// Implementations must behave identically to Apply.
type AppendSpec interface {
	ApplyAppend(dst []Transition, st State, proc int, op, obj string, arg history.Value) []Transition
}

// maxLinOps bounds the operation count of the memoized search (operations
// are indexed in a 64-bit mask).
const maxLinOps = 63

// Linearizable reports whether the well-formed history h is linearizable
// with respect to spec: there is a sequential ordering of its operations,
// containing every completed operation and any subset of pending ones,
// that respects real-time order and the specification, with matching
// responses. Pending operations may take effect or not (crashed processes'
// operations are simply pending).
//
// The search is a memoized Wing–Gong style DFS over (linearized set,
// specification state). Histories with more than 63 operations are
// rejected with false (the exclusion experiments never approach this; use
// streams of smaller windows for longer histories).
func Linearizable(spec SeqSpec, h history.History) bool {
	ops := h.Operations()
	if len(ops) > maxLinOps {
		return false
	}
	// mustPrecede[i] is the mask of operations that must be linearized
	// before operation i (those completing before i's invocation).
	mustPrecede := make([]uint64, len(ops))
	for i := range ops {
		for j := range ops {
			if i != j && history.PrecedesRealTime(ops[j], ops[i]) {
				mustPrecede[i] |= 1 << uint(j)
			}
		}
	}
	completedMask := uint64(0)
	for i, op := range ops {
		if op.Done {
			completedMask |= 1 << uint(i)
		}
	}

	type key struct {
		mask  uint64
		state State
	}
	memo := make(map[key]bool)

	var dfs func(mask uint64, st State) bool
	dfs = func(mask uint64, st State) bool {
		if mask&completedMask == completedMask {
			return true
		}
		k := key{mask, st}
		if v, ok := memo[k]; ok {
			return v
		}
		res := false
		for i := range ops {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 || mask&mustPrecede[i] != mustPrecede[i] {
				continue
			}
			op := ops[i]
			for _, tr := range spec.Apply(st, op.Proc, op.Name, op.Obj, op.Arg) {
				if op.Done && tr.Resp != op.Val {
					continue
				}
				if dfs(mask|bit, tr.Next) {
					res = true
					break
				}
			}
			if res {
				break
			}
		}
		memo[k] = res
		return res
	}
	return dfs(0, spec.Init())
}

// LinearizabilityProperty wraps a sequential specification as a safety
// Property: a history is in the property iff it is linearizable w.r.t.
// spec. Linearizability is prefix-closed (a linearization of h induces one
// of every prefix), so this satisfies Definition 3.1.
func LinearizabilityProperty(spec SeqSpec) Property {
	return PropertyFunc{
		PropName: fmt.Sprintf("linearizability(%s)", spec.Name()),
		F:        func(h history.History) bool { return Linearizable(spec, h) },
	}
}

// RegisterSpec is the sequential specification of a read/write register
// holding values, with operations "read" (no argument) and "write" (value
// argument, responds OK).
type RegisterSpec struct {
	// Initial is the register's initial value.
	Initial history.Value
}

// Name implements SeqSpec.
func (RegisterSpec) Name() string { return "register" }

// Init implements SeqSpec.
func (r RegisterSpec) Init() State { return r.Initial }

// Apply implements SeqSpec.
func (r RegisterSpec) Apply(st State, proc int, op, obj string, arg history.Value) []Transition {
	return r.ApplyAppend(nil, st, proc, op, obj, arg)
}

// ApplyAppend implements AppendSpec.
func (RegisterSpec) ApplyAppend(dst []Transition, st State, proc int, op, obj string, arg history.Value) []Transition {
	switch op {
	case "read":
		return append(dst, Transition{Next: st, Resp: st})
	case "write":
		return append(dst, Transition{Next: arg, Resp: history.OK})
	default:
		return dst
	}
}

// CASSpec is the sequential specification of a compare-and-swap object with
// operations "read", "write", and "cas" (argument CASArg, responds true or
// false).
type CASSpec struct {
	Initial history.Value
}

// CASArg is the argument of a "cas" invocation.
type CASArg struct {
	Old, New history.Value
}

// Name implements SeqSpec.
func (CASSpec) Name() string { return "cas" }

// Init implements SeqSpec.
func (c CASSpec) Init() State { return c.Initial }

// Apply implements SeqSpec.
func (c CASSpec) Apply(st State, proc int, op, obj string, arg history.Value) []Transition {
	return c.ApplyAppend(nil, st, proc, op, obj, arg)
}

// ApplyAppend implements AppendSpec.
func (CASSpec) ApplyAppend(dst []Transition, st State, proc int, op, obj string, arg history.Value) []Transition {
	switch op {
	case "read":
		return append(dst, Transition{Next: st, Resp: st})
	case "write":
		return append(dst, Transition{Next: arg, Resp: history.OK})
	case "cas":
		a, ok := arg.(CASArg)
		if !ok {
			return dst
		}
		if st == a.Old {
			return append(dst, Transition{Next: a.New, Resp: true})
		}
		return append(dst, Transition{Next: st, Resp: false})
	default:
		return dst
	}
}
