package safety

// Monitor-equivalence harness: every incremental checker is cross-checked
// against its batch counterpart on randomized histories — synthetic
// random interleavings (which violate the properties often) and histories
// produced by real implementations under randomized schedules (which do
// not). The batch path is the oracle: at every prefix the monitor's
// verdict must equal the batch verdict, before and after forking, and
// forks must be independent of their parents.
//
// For the three scan checkers (agreement+validity, k-set, mutual
// exclusion) whose batch Holds is itself derived from the monitor via
// BatchAdapter, the oracles below are independent re-implementations of
// the original one-pass scans, so the cross-check is not circular.

import (
	"math/rand"
	"testing"

	"repro/internal/history"
)

// oracleAgreementValidity is the original one-pass agreement+validity
// scan, kept as an independent oracle.
func oracleAgreementValidity(h history.History) bool {
	proposed := make(map[history.Value]bool)
	var decided history.Value
	haveDecision := false
	for _, e := range h {
		switch {
		case e.Kind == history.KindInvoke && e.Op == ConsensusPropose:
			proposed[e.Arg] = true
		case e.Kind == history.KindResponse && e.Op == ConsensusPropose:
			if !proposed[e.Val] {
				return false
			}
			if haveDecision && decided != e.Val {
				return false
			}
			decided = e.Val
			haveDecision = true
		}
	}
	return true
}

// oracleKSet is the original one-pass k-set agreement scan.
func oracleKSet(k int) func(history.History) bool {
	return func(h history.History) bool {
		proposed := make(map[history.Value]bool)
		decided := make(map[history.Value]bool)
		for _, e := range h {
			switch {
			case e.Kind == history.KindInvoke && e.Op == ConsensusPropose:
				proposed[e.Arg] = true
			case e.Kind == history.KindResponse && e.Op == ConsensusPropose:
				if !proposed[e.Val] {
					return false
				}
				decided[e.Val] = true
				if len(decided) > k {
					return false
				}
			}
		}
		return true
	}
}

// oracleMutex is the original one-pass mutual-exclusion scan.
func oracleMutex(h history.History) bool {
	holder := 0
	for _, e := range h {
		switch {
		case e.Kind == history.KindResponse && e.Op == LockAcquire:
			if holder != 0 {
				return false
			}
			holder = e.Proc
		case e.Kind == history.KindInvoke && e.Op == LockRelease:
			if holder != e.Proc {
				return false
			}
			holder = 0
		}
	}
	return true
}

// stickyOracle wraps a prefix-monotone batch predicate so that, like a
// monitor, it stays false after the first violating prefix. The
// properties under test are prefix-closed, so the wrapper only papers
// over floating differences it would itself expose via the monotonicity
// check below.
type stickyOracle struct {
	holds  func(history.History) bool
	failed bool
}

func (o *stickyOracle) at(t *testing.T, h history.History) bool {
	ok := o.holds(h)
	if o.failed && ok {
		t.Fatalf("oracle is not prefix-monotone: holds again at %d events on %s", len(h), h)
	}
	if !ok {
		o.failed = true
	}
	return !o.failed
}

// crossCheck drives one monitor through h, comparing with the oracle at
// every prefix; midway it forks a child and checks (a) the child agrees
// with the oracle on the remaining events, and (b) feeding the child does
// not disturb the parent.
func crossCheck(t *testing.T, name string, spawn func() Monitor, oracle func(history.History) bool, h history.History, forkAt int) {
	t.Helper()
	m := spawn()
	ora := &stickyOracle{holds: oracle}
	var fork Monitor
	forkOra := &stickyOracle{}
	for i, e := range h {
		if i == forkAt {
			fork = m.Fork()
			*forkOra = *ora
			forkOra.holds = ora.holds
		}
		ok := m.Step(e)
		want := ora.at(t, h[:i+1])
		if ok != want || m.OK() != want {
			t.Fatalf("%s: monitor=%v/%v oracle=%v at event %d (%s) of %s", name, ok, m.OK(), want, i+1, e, h)
		}
		if fork != nil {
			fok := fork.Step(e)
			fwant := forkOra.at(t, h[:i+1])
			if fok != fwant || fork.OK() != fwant {
				t.Fatalf("%s: fork=%v/%v oracle=%v at event %d of %s", name, fok, fork.OK(), fwant, i+1, h)
			}
		}
	}
	// Fork independence: a fresh fork fed a divergent suffix must not
	// disturb the parent's verdict.
	parentVerdict := m.OK()
	div := m.Fork()
	for i := len(h) - 1; i >= 0 && i >= len(h)-4; i-- {
		div.Step(h[i])
	}
	if m.OK() != parentVerdict {
		t.Fatalf("%s: stepping a fork changed the parent's verdict on %s", name, h)
	}
}

// randConsensusHistory interleaves propose invocations and randomly
// chosen (often invalid) decisions for n processes.
func randConsensusHistory(r *rand.Rand, n, events int) history.History {
	var h history.History
	pending := make(map[int]bool)
	for len(h) < events {
		p := 1 + r.Intn(n)
		if pending[p] {
			h = append(h, history.Response(p, ConsensusPropose, r.Intn(3)))
			pending[p] = false
		} else {
			h = append(h, history.Invoke(p, ConsensusPropose, r.Intn(3)))
			pending[p] = true
		}
	}
	return h
}

// randMutexHistory interleaves acquire/release cycles with responses
// granted blindly, so overlapping critical sections appear often.
func randMutexHistory(r *rand.Rand, n, events int) history.History {
	type st int // 0 idle, 1 acquiring, 2 holding, 3 releasing
	state := make(map[int]st)
	var h history.History
	for len(h) < events {
		p := 1 + r.Intn(n)
		switch state[p] {
		case 0:
			h = append(h, history.Invoke(p, LockAcquire, nil))
			state[p] = 1
		case 1:
			h = append(h, history.Response(p, LockAcquire, "locked"))
			state[p] = 2
		case 2:
			// Sometimes a non-holder "releases" on behalf of another
			// process id to exercise the release-by-non-holder branch.
			q := p
			if r.Intn(8) == 0 {
				q = 1 + r.Intn(n)
			}
			h = append(h, history.Invoke(q, LockRelease, nil))
			state[p] = 3
		case 3:
			h = append(h, history.Response(p, LockRelease, "unlocked"))
			state[p] = 0
		}
	}
	return h
}

// randRegisterHistory generates overlapping reads and writes with read
// responses drawn randomly from the small value domain, yielding a mix
// of linearizable and non-linearizable histories.
func randRegisterHistory(r *rand.Rand, n, events int) history.History {
	var h history.History
	type pend struct {
		op  string
		arg history.Value
	}
	pending := make(map[int]*pend)
	for len(h) < events {
		p := 1 + r.Intn(n)
		if pd := pending[p]; pd != nil {
			if r.Intn(3) == 0 {
				continue // leave it pending a while longer
			}
			if pd.op == "read" {
				h = append(h, history.Response(p, "read", r.Intn(3)))
			} else {
				h = append(h, history.Response(p, "write", history.OK))
			}
			pending[p] = nil
			continue
		}
		if r.Intn(2) == 0 {
			h = append(h, history.Invoke(p, "read", nil))
			pending[p] = &pend{op: "read"}
		} else {
			v := r.Intn(3)
			h = append(h, history.Invoke(p, "write", v))
			pending[p] = &pend{op: "write", arg: v}
		}
	}
	return h
}

// randTMHistory generates small random transactions (start, reads and
// writes on two variables, tryC) with randomly invented read values and
// commit/abort outcomes — opacity violations are frequent.
func randTMHistory(r *rand.Rand, n, events int) history.History {
	vars := []string{"x", "y"}
	type st struct{ phase, ops int }
	state := make(map[int]*st)
	var h history.History
	for len(h) < events {
		p := 1 + r.Intn(n)
		s := state[p]
		if s == nil {
			s = &st{}
			state[p] = s
		}
		switch s.phase {
		case 0:
			h = append(h, history.Invoke(p, history.TMStart, nil))
			s.phase = 1
		case 1:
			h = append(h, history.Response(p, history.TMStart, history.OK))
			s.phase = 2
			s.ops = 1 + r.Intn(2)
		case 2:
			v := vars[r.Intn(len(vars))]
			if r.Intn(2) == 0 {
				h = append(h,
					history.InvokeObj(p, history.TMRead, v, nil),
					history.ResponseObj(p, history.TMRead, v, r.Intn(2)))
			} else {
				h = append(h,
					history.InvokeObj(p, history.TMWrite, v, r.Intn(2)+1),
					history.ResponseObj(p, history.TMWrite, v, history.OK))
			}
			s.ops--
			if s.ops <= 0 {
				s.phase = 3
			}
		case 3:
			h = append(h, history.Invoke(p, history.TMTryC, nil))
			s.phase = 4
		case 4:
			out := history.Value(history.Commit)
			if r.Intn(3) == 0 {
				out = history.Abort
			}
			h = append(h, history.Response(p, history.TMTryC, out))
			s.phase = 0
		}
	}
	return h
}

func TestMonitorEquivalenceAgreementValidity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		h := randConsensusHistory(r, 3, 4+r.Intn(20))
		crossCheck(t, "agreement+validity", AgreementValidity{}.Spawn, oracleAgreementValidity, h, r.Intn(len(h)))
	}
}

func TestMonitorEquivalenceKSet(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2} {
		p := KSetAgreement{K: k}
		for i := 0; i < 300; i++ {
			h := randConsensusHistory(r, 3, 4+r.Intn(20))
			crossCheck(t, p.Name(), p.Spawn, oracleKSet(k), h, r.Intn(len(h)))
		}
	}
}

func TestMonitorEquivalenceMutex(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		h := randMutexHistory(r, 3, 4+r.Intn(20))
		crossCheck(t, "mutual-exclusion", MutualExclusion{}.Spawn, oracleMutex, h, r.Intn(len(h)))
	}
}

func TestMonitorEquivalenceLinearizability(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	spec := RegisterSpec{Initial: 0}
	spawn := func() Monitor { return NewLinMonitor(spec) }
	oracle := func(h history.History) bool { return Linearizable(spec, h) }
	for i := 0; i < 300; i++ {
		h := randRegisterHistory(r, 3, 4+r.Intn(16))
		crossCheck(t, "linearizability(register)", spawn, oracle, h, r.Intn(len(h)))
	}
	// Also against the CAS specification, whose responses depend on state.
	cas := CASSpec{Initial: 0}
	spawnCAS := func() Monitor { return NewLinMonitor(cas) }
	oracleCAS := func(h history.History) bool { return Linearizable(cas, h) }
	for i := 0; i < 200; i++ {
		h := randCASHistory(r, 3, 4+r.Intn(14))
		crossCheck(t, "linearizability(cas)", spawnCAS, oracleCAS, h, r.Intn(len(h)))
	}
}

// randCASHistory mixes read/write/cas operations with random responses.
func randCASHistory(r *rand.Rand, n, events int) history.History {
	var h history.History
	type pend struct{ op string }
	pending := make(map[int]*pend)
	for len(h) < events {
		p := 1 + r.Intn(n)
		if pd := pending[p]; pd != nil {
			switch pd.op {
			case "read":
				h = append(h, history.Response(p, "read", r.Intn(3)))
			case "write":
				h = append(h, history.Response(p, "write", history.OK))
			case "cas":
				h = append(h, history.Response(p, "cas", r.Intn(2) == 0))
			}
			pending[p] = nil
			continue
		}
		switch r.Intn(3) {
		case 0:
			h = append(h, history.Invoke(p, "read", nil))
			pending[p] = &pend{op: "read"}
		case 1:
			h = append(h, history.Invoke(p, "write", r.Intn(3)))
			pending[p] = &pend{op: "write"}
		default:
			h = append(h, history.Invoke(p, "cas", CASArg{Old: r.Intn(3), New: r.Intn(3)}))
			pending[p] = &pend{op: "cas"}
		}
	}
	return h
}

func TestMonitorEquivalenceOpacity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		h := randTMHistory(r, 2, 6+r.Intn(24))
		crossCheck(t, "opacity", Opacity{}.Spawn, Opaque, h, r.Intn(len(h)))
	}
}

func TestMonitorEquivalenceStrictSerializability(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	p := StrictSerializability{}
	for i := 0; i < 150; i++ {
		h := randTMHistory(r, 2, 6+r.Intn(24))
		crossCheck(t, p.Name(), p.Spawn, p.Holds, h, r.Intn(len(h)))
	}
}

func TestMonitorEquivalencePropertyS(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := PropertyS{}
	for i := 0; i < 120; i++ {
		h := randTMHistory(r, 3, 6+r.Intn(24))
		crossCheck(t, p.Name(), p.Spawn, p.Holds, h, r.Intn(len(h)))
	}
}
