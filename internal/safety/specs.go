package safety

import (
	"fmt"
	"strings"

	"repro/internal/history"
)

// Sequential specifications of classic high-level objects (the paper's
// Section 1 context "high-level object implementations from registers
// [19]"), used by the linearizability checker. States are encoded as
// comparable strings via %v formatting, so dequeue/pop responses come back
// as the formatted values: use string payloads (or any values whose %v
// form is the value itself) when checking histories against these specs.

// EmptyResp is the response of a dequeue/pop on an empty container.
const EmptyResp = "empty"

// QueueSpec is a FIFO queue with operations "enq" (argument, responds OK)
// and "deq" (responds the head value or EmptyResp).
type QueueSpec struct{}

// Name implements SeqSpec.
func (QueueSpec) Name() string { return "queue" }

// Init implements SeqSpec.
func (QueueSpec) Init() State { return "" }

// Apply implements SeqSpec.
func (q QueueSpec) Apply(st State, proc int, op, obj string, arg history.Value) []Transition {
	return q.ApplyAppend(nil, st, proc, op, obj, arg)
}

// ApplyAppend implements AppendSpec.
func (QueueSpec) ApplyAppend(dst []Transition, st State, proc int, op, obj string, arg history.Value) []Transition {
	enc, ok := st.(string)
	if !ok {
		return dst
	}
	switch op {
	case "enq":
		next := fmt.Sprintf("%v", arg)
		if enc != "" {
			next = enc + "," + next
		}
		return append(dst, Transition{Next: next, Resp: history.OK})
	case "deq":
		if enc == "" {
			return append(dst, Transition{Next: "", Resp: EmptyResp})
		}
		parts := strings.SplitN(enc, ",", 2)
		rest := ""
		if len(parts) == 2 {
			rest = parts[1]
		}
		return append(dst, Transition{Next: rest, Resp: parts[0]})
	default:
		return dst
	}
}

// StackSpec is a LIFO stack with operations "push" and "pop".
type StackSpec struct{}

// Name implements SeqSpec.
func (StackSpec) Name() string { return "stack" }

// Init implements SeqSpec.
func (StackSpec) Init() State { return "" }

// Apply implements SeqSpec.
func (s StackSpec) Apply(st State, proc int, op, obj string, arg history.Value) []Transition {
	return s.ApplyAppend(nil, st, proc, op, obj, arg)
}

// ApplyAppend implements AppendSpec.
func (StackSpec) ApplyAppend(dst []Transition, st State, proc int, op, obj string, arg history.Value) []Transition {
	enc, ok := st.(string)
	if !ok {
		return dst
	}
	switch op {
	case "push":
		next := fmt.Sprintf("%v", arg)
		if enc != "" {
			next = next + "," + enc
		}
		return append(dst, Transition{Next: next, Resp: history.OK})
	case "pop":
		if enc == "" {
			return append(dst, Transition{Next: "", Resp: EmptyResp})
		}
		parts := strings.SplitN(enc, ",", 2)
		rest := ""
		if len(parts) == 2 {
			rest = parts[1]
		}
		return append(dst, Transition{Next: rest, Resp: parts[0]})
	default:
		return dst
	}
}

// CounterSpec is a fetch-and-increment counter: "inc" responds with the
// pre-increment value, "get" with the current value.
type CounterSpec struct{}

// Name implements SeqSpec.
func (CounterSpec) Name() string { return "counter" }

// Init implements SeqSpec.
func (CounterSpec) Init() State { return 0 }

// Apply implements SeqSpec.
func (c CounterSpec) Apply(st State, proc int, op, obj string, arg history.Value) []Transition {
	return c.ApplyAppend(nil, st, proc, op, obj, arg)
}

// ApplyAppend implements AppendSpec.
func (CounterSpec) ApplyAppend(dst []Transition, st State, proc int, op, obj string, arg history.Value) []Transition {
	n, ok := st.(int)
	if !ok {
		return dst
	}
	switch op {
	case "inc":
		return append(dst, Transition{Next: n + 1, Resp: n})
	case "get":
		return append(dst, Transition{Next: n, Resp: n})
	default:
		return dst
	}
}
