package sample

import (
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/sim"
)

// runner executes one seeded schedule at a time into a schedRec. The
// returned *explore.Violation is a schedule outcome (the rec is still
// merged); a non-nil error is fatal to the whole sampling run. Both
// implementations grant identical decisions for a given seed and
// produce identical recs, witnesses and fingerprints — sessionRunner
// just reuses one live simulation across schedules where replayRunner
// rebuilds runtime, object and environment from scratch every time.
type runner interface {
	sample(seed int64, rec *schedRec) (*explore.Violation, error)
	close()
}

// incremental reports whether the run uses reused sessions: the object
// supports snapshots, replay is not forced, and — when recovery is
// injected — the environment supports fast rewind (session recovery
// cannot rebuild consultation points from response events).
func incremental(cfg *Config) bool {
	if cfg.ForceReplay || !sim.CanSnapshot(cfg.NewObject()) {
		return false
	}
	if cfg.Recoveries > 0 {
		if _, ok := cfg.NewEnv().(sim.RewindableEnv); !ok {
			return false
		}
	}
	return true
}

// newRunner builds the worker's executor: session reuse when the object
// supports snapshots (and replay is not forced), else from-root replay.
func newRunner(cfg *Config) (runner, error) {
	if incremental(cfg) {
		return newSessionRunner(cfg)
	}
	return &replayRunner{cfg: cfg, strat: newStrategy(cfg), mons: cfg.NewMonitors()}, nil
}

// sessionRunner resets one persistent sim.Session to its root mark
// between schedules. Restoring to the root re-grants nothing (no
// process has a pending operation there), so every granted step
// advances a fresh schedule.
type sessionRunner struct {
	cfg     *Config
	sess    *sim.Session
	root    *sim.Mark
	strat   *strategy
	mons    explore.MonitorSet // pristine root set, forked per schedule
	ready   []int
	crashed []int
	prefix  []sim.Decision
}

func newSessionRunner(cfg *Config) (*sessionRunner, error) {
	sess, err := sim.NewSession(sim.SessionConfig{
		Procs:       cfg.Procs,
		Object:      cfg.NewObject(),
		NewEnv:      cfg.NewEnv,
		Fingerprint: cfg.Fingerprint,
	})
	if err != nil {
		return nil, err
	}
	return &sessionRunner{
		cfg:   cfg,
		sess:  sess,
		root:  sess.Mark(),
		strat: newStrategy(cfg),
		mons:  cfg.NewMonitors(),
	}, nil
}

func (r *sessionRunner) sample(seed int64, rec *schedRec) (*explore.Violation, error) {
	n, err := r.sess.Restore(r.root)
	rec.resims += n
	if err != nil {
		return nil, err
	}
	r.strat.reset(seed)
	mons := r.mons.Fork()
	r.prefix = r.prefix[:0]
	steps := 0
	for {
		r.ready = r.sess.ReadyAppend(r.ready[:0])
		if len(r.ready) == 0 || steps >= r.cfg.Steps {
			break
		}
		r.crashed = r.crashed[:0]
		if r.cfg.Recoveries > 0 {
			r.crashed = r.sess.CrashedAppend(r.crashed)
		}
		d, ok := r.strat.decide(r.ready, r.crashed, steps)
		if !ok {
			break
		}
		info, err := r.sess.Extend(d)
		rec.steps += info.Steps
		steps += info.Steps
		if err != nil {
			return nil, err
		}
		r.prefix = append(r.prefix, d)
		for k, ev := range info.Delta {
			rec.events++
			if merr := mons.Step(ev); merr != nil {
				rec.violated = true
				// Copy the history out of the session's live buffer: the
				// session is reused for later samples, which truncate and
				// extend the backing in place.
				h := append(history.History(nil), r.sess.History()...)
				return &explore.Violation{
					Schedule:   append([]sim.Decision{}, r.prefix...),
					H:          h,
					EventIndex: len(h) - len(info.Delta) + k,
					Cause:      merr,
				}, nil
			}
		}
	}
	if r.cfg.Fingerprint {
		rec.fp, rec.fped = r.sess.Fingerprint()
	}
	return nil, nil
}

func (r *sessionRunner) close() { r.sess.Close() }

// replayRunner executes every schedule with a from-root sim.Run whose
// scheduler is the strategy, feeding each newly recorded event to the
// monitor fork before the next decision is drawn (and draining the
// final decision's events after a quiescent stop).
type replayRunner struct {
	cfg    *Config
	strat  *strategy
	mons   explore.MonitorSet
	prefix []sim.Decision
}

func (r *replayRunner) sample(seed int64, rec *schedRec) (*explore.Violation, error) {
	r.strat.reset(seed)
	mons := r.mons.Fork()
	r.prefix = r.prefix[:0]
	var vio *explore.Violation
	steps, seen := 0, 0
	// feed steps the monitors over h[seen:]; false stops the run. The
	// history slice is copied into a reported violation: the witness and
	// its history must outlive this run.
	feed := func(h history.History) bool {
		for seen < len(h) {
			rec.events++
			if merr := mons.Step(h[seen]); merr != nil {
				rec.violated = true
				hh := append(history.History{}, h...)
				vio = &explore.Violation{
					Schedule:   append([]sim.Decision{}, r.prefix...),
					H:          hh[:len(hh):len(hh)],
					EventIndex: seen,
					Cause:      merr,
				}
				return false
			}
			seen++
		}
		return true
	}
	res := sim.Run(sim.Config{
		Procs:  r.cfg.Procs,
		Object: r.cfg.NewObject(),
		Env:    r.cfg.NewEnv(),
		Scheduler: sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
			if !feed(v.H) {
				return sim.Decision{}, false
			}
			if steps >= r.cfg.Steps {
				return sim.Decision{}, false
			}
			d, ok := r.strat.decide(v.Ready, v.Crashed, steps)
			if !ok {
				return sim.Decision{}, false
			}
			if !d.Crash && !d.Recover {
				steps++
			}
			r.prefix = append(r.prefix, d)
			return d, true
		}),
		MaxSteps:    r.cfg.Steps + 1,
		Fingerprint: r.cfg.Fingerprint,
	})
	rec.steps += res.Steps
	if res.Err != nil {
		return nil, res.Err
	}
	if vio != nil || !feed(res.H) {
		return vio, nil
	}
	rec.fp, rec.fped = res.Fingerprint, res.Fingerprinted
	return nil, nil
}

func (r *replayRunner) close() {}
