package sample

import (
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// strategy draws one seeded schedule's decisions. All randomness of a
// schedule comes from its seed in a fixed consultation order — setup
// first (priorities, change points, crash points), then one draw per
// decision that needs one — so a seed alone reproduces the schedule,
// on either execution engine. A strategy is reused across schedules via
// reset (workers keep one each); it is not safe for concurrent use.
type strategy struct {
	procs      int
	steps      int
	d          int
	crashes    int
	recoveries int
	walk       bool

	src rand.Source
	rng *rand.Rand

	// prio[p] is process p's current priority (higher steps first;
	// index 0 unused). Initial priorities are a random permutation of
	// d+1..d+procs; the j-th change point (0-based) demotes the most
	// recent mover to d-j, below every initial priority and every
	// earlier demotion.
	prio []int
	// change holds the PCT change points: sorted granted-step counts
	// after which the most recent mover is demoted. Sampled uniformly
	// from 1..steps with replacement; coincident points collapse onto
	// the same mover (the later demotion wins), which only wastes the
	// duplicate, exactly as in the PCT paper's analysis.
	change []int
	next   int
	// crashAt holds sorted granted-step counts before which one crash
	// decision is injected (uniform in 1..steps, with replacement;
	// coincident points crash consecutively).
	crashAt []int
	nextCr  int
	// recoverAt holds sorted granted-step counts after which one recover
	// decision is injected (uniform in 1..steps, with replacement,
	// drawn after the crash points in the fixed consultation order). A
	// recovery point stays armed until some process is crashed: a point
	// drawn before the first crash fires at the first decision where a
	// crashed process exists.
	recoverAt []int
	nextRv    int
	// last is the process granted the most recent step (0 before any).
	last int
}

func newStrategy(cfg *Config) *strategy {
	src := rand.NewSource(0)
	return &strategy{
		procs:      cfg.Procs,
		steps:      cfg.Steps,
		d:          cfg.ChangePoints,
		crashes:    cfg.Crashes,
		recoveries: cfg.Recoveries,
		walk:       cfg.Strategy == Walk,
		src:        src,
		rng:        rand.New(src),
		prio:       make([]int, cfg.Procs+1),
		change:     make([]int, 0, cfg.ChangePoints),
		crashAt:    make([]int, 0, cfg.Crashes),
		recoverAt:  make([]int, 0, cfg.Recoveries),
	}
}

// reset re-seeds the strategy for one schedule.
func (s *strategy) reset(seed int64) {
	s.src.Seed(seed)
	s.next, s.nextCr, s.nextRv, s.last = 0, 0, 0, 0
	if !s.walk {
		for p := 1; p <= s.procs; p++ {
			s.prio[p] = s.d + p
		}
		for i := s.procs; i > 1; i-- {
			j := s.rng.Intn(i) + 1
			s.prio[i], s.prio[j] = s.prio[j], s.prio[i]
		}
		s.change = s.change[:0]
		for j := 0; j < s.d; j++ {
			s.change = append(s.change, s.rng.Intn(s.steps)+1)
		}
		sort.Ints(s.change)
	}
	s.crashAt = s.crashAt[:0]
	for j := 0; j < s.crashes; j++ {
		s.crashAt = append(s.crashAt, s.rng.Intn(s.steps)+1)
	}
	sort.Ints(s.crashAt)
	s.recoverAt = s.recoverAt[:0]
	for j := 0; j < s.recoveries; j++ {
		s.recoverAt = append(s.recoverAt, s.rng.Intn(s.steps)+1)
	}
	sort.Ints(s.recoverAt)
}

// decide picks the next decision given the sorted ready and crashed
// sets and the number of granted (non-crash) steps taken so far.
// ok=false ends the schedule. Both execution engines call decide with
// identical argument sequences, so their schedules coincide.
func (s *strategy) decide(ready, crashed []int, step int) (sim.Decision, bool) {
	if len(ready) == 0 {
		return sim.Decision{}, false
	}
	if !s.walk {
		for s.next < len(s.change) && s.change[s.next] <= step {
			if s.last != 0 {
				s.prio[s.last] = s.d - s.next
			}
			s.next++
		}
	}
	if s.nextCr < len(s.crashAt) && s.crashAt[s.nextCr] <= step+1 {
		s.nextCr++
		return sim.Decision{Proc: s.pick(ready), Crash: true}, true
	}
	if s.nextRv < len(s.recoverAt) && s.recoverAt[s.nextRv] <= step+1 && len(crashed) > 0 {
		s.nextRv++
		return sim.Decision{Proc: s.pick(crashed), Recover: true}, true
	}
	p := s.pick(ready)
	s.last = p
	return sim.Decision{Proc: p}, true
}

// pick selects a process from the given sorted set: uniformly for Walk,
// the highest-priority one for PCT (also the crash victim — PCT crashes
// the process that would run — and the recovery candidate among the
// crashed processes).
func (s *strategy) pick(ready []int) int {
	if s.walk {
		return ready[s.rng.Intn(len(ready))]
	}
	best := ready[0]
	for _, p := range ready[1:] {
		if s.prio[p] > s.prio[best] {
			best = p
		}
	}
	return best
}
