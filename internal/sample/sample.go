// Package sample is the probabilistic mass-exploration engine: where
// internal/explore enumerates every schedule up to a depth, sample draws
// N seeded schedules from a randomized strategy and checks each one. It
// exists for the regime exhaustive search cannot reach — long schedules
// over many processes — trading certainty for a provable bug-finding
// probability per schedule.
//
// Two strategies are provided. PCT is Probabilistic Concurrency Testing
// (Burckhardt et al., ASPLOS 2010): each schedule draws random distinct
// process priorities plus d priority-change points at uniformly chosen
// steps, always runs the highest-priority ready process, and demotes
// the most recent mover below every initial priority when a change
// point fires; a bug of depth d is found with probability at least
// 1/(n·kᵈ⁻¹) per schedule. Walk picks uniformly among the ready
// processes at every step. Both inject Config.Crashes crash decisions
// at uniformly chosen steps, mirroring exhaustive crash branching
// (only ready processes are crashed: idle and blocked processes take
// no further steps, so crashing them cannot change the future).
//
// The swarm driver fans the N schedules across Workers goroutines.
// Each worker owns one persistent sim.Session that is Mark/Restore-
// reset to the root between schedules instead of being rebuilt from
// scratch (objects without the sim.Snapshottable hook fall back to
// from-root sim.Run execution, with identical verdicts). Every schedule
// feeds a fork of the monitor set, terminal states are deduplicated by
// their injective configuration fingerprints (Stats.DistinctStates),
// and results are merged in schedule-index order, so for a fixed master
// seed the Stats — including which failure is reported — are identical
// at any worker count: the least-index failing schedule always wins,
// the sampling analogue of exhaustive exploration's preorder-least
// violation rule.
package sample

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/explore"
	"repro/internal/sim"
)

// Strategy selects how schedules are drawn.
type Strategy int

// Strategies.
const (
	// PCT: random priorities with Config.ChangePoints demotion points.
	PCT Strategy = iota
	// Walk: uniform random walk over the ready processes.
	Walk
)

// Config describes a sampling run.
type Config struct {
	// Procs is the number of processes.
	Procs int
	// NewObject creates a fresh implementation instance.
	NewObject func() sim.Object
	// NewEnv creates a fresh environment instance.
	NewEnv func() sim.Environment
	// NewMonitors creates the root monitor set once per sampling run;
	// every schedule steps a fork of it. A Step error is the violation,
	// reported wrapped in an *explore.Violation. Required.
	NewMonitors func() explore.MonitorSet
	// Schedules is the number of seeded schedules to sample.
	Schedules int
	// Steps bounds each schedule's granted (non-crash) steps.
	Steps int
	// Crashes injects at most this many crash decisions per schedule,
	// at uniformly chosen steps. 0 disables crash injection.
	Crashes int
	// Recoveries injects at most this many recover decisions per
	// schedule, at uniformly chosen steps. A recovery point fires at the
	// first decision at or after its step where some process is crashed
	// (a point drawn before any crash stays armed). 0 disables recovery
	// injection; it only matters together with Crashes > 0. Like crash
	// injection under incremental execution, recovery requires a
	// rewindable environment (sim.RewindableEnv) when the object runs on
	// reused sessions; other environments fall back to replay execution.
	Recoveries int
	// Strategy selects PCT or Walk.
	Strategy Strategy
	// ChangePoints is PCT's d: the number of priority-change points per
	// schedule (ignored by Walk).
	ChangePoints int
	// Seed is the master seed: schedule i draws all its randomness from
	// Seed+i, so a schedule is reproduced by re-running with its
	// recorded seed and Schedules=1.
	Seed int64
	// Workers is the number of sampling lanes (clamped to [1,
	// Schedules]). Stats are worker-count independent.
	Workers int
	// Spawn optionally offers the extra worker loops of Workers > 1 to
	// an external executor instead of spawning goroutines: loop 0
	// always runs inline on the calling goroutine, so the run makes
	// progress regardless of what the executor does with the offers.
	// Spawn returns whether it accepted a loop; an accepted loop must
	// eventually be run (it exits promptly when no chunks remain), a
	// declined one is simply not started. This is how the slxd service
	// distributes a job's fixed ChunkSize-index chunks across its
	// bounded worker pool while keeping the merged Stats — including
	// which failure is reported — identical to the in-process run. Nil
	// spawns goroutines as before.
	Spawn func(loop func()) bool
	// ForceReplay forces from-root execution even when the object
	// supports session reuse (for cross-checking and benchmarking).
	ForceReplay bool
	// Fingerprint asks each schedule for its terminal-state fingerprint
	// to compute Stats.DistinctStates (no-op when the object does not
	// implement sim.Fingerprintable).
	Fingerprint bool
	// Ctx cancels the run; it is polled once per schedule. On
	// cancellation Run returns the context error together with partial
	// Stats marked Interrupted.
	Ctx context.Context
}

// Stats is the outcome of a sampling run. All fields except Workers are
// functions of the Config alone — never of worker timing — because they
// are accumulated over the deterministic merged prefix of schedules: on
// a violation, the least failing schedule index and every schedule
// before it; on cancellation, the completed prefix.
type Stats struct {
	// Schedules counts the sampled schedules merged into these stats.
	Schedules int
	// DistinctStates counts the distinct terminal-state fingerprints
	// among them (0 without Config.Fingerprint or the object hook).
	DistinctStates int
	// Steps counts granted simulator steps across the merged schedules.
	Steps int
	// Resims counts rebuild steps session restores re-executed (0 in
	// practice: restoring to the root re-grants nothing).
	Resims int
	// Events counts the events fed to the monitor set.
	Events int
	// Workers is the number of sampling goroutines actually used.
	Workers int
	// Incremental reports whether schedules ran on reused sessions
	// (false: from-root replay fallback).
	Incremental bool
	// Failed reports a violation; FailingSchedule is its index and
	// FailingSeed its seed (Config.Seed+FailingSchedule).
	Failed          bool
	FailingSchedule int
	FailingSeed     int64
	// Interrupted marks stats cut short by context cancellation.
	Interrupted bool
}

// ChunkSize is the work-claiming granularity: workers claim blocks of
// ChunkSize consecutive schedule indices, and blocks merge in index
// order. A pure constant (never derived from timing or worker count) so
// the merge order — and with it every Stats field — is reproducible no
// matter which worker, goroutine or external pool slot (Config.Spawn)
// executes which chunk. Exported so the service layer can report and
// document its sharding granularity without restating the number.
const ChunkSize = 64

// schedRec is the per-schedule record a worker hands to the merge.
type schedRec struct {
	ran      bool // executed (false: skipped after a failure bound or cancellation)
	violated bool
	fped     bool
	fp       uint64
	steps    int
	resims   int
	events   int
}

// chunkResult is one claimed block's outcome.
type chunkResult struct {
	recs []schedRec
	vio  *explore.Violation // the violation of the block's single violated rec
}

// Run samples Config.Schedules seeded schedules and returns the merged
// Stats. A violation is returned as an *explore.Violation error (Stats
// non-nil, describing the merged prefix through the failing schedule);
// cancellation returns the context error with partial Stats; engine
// failures return a nil Stats.
func Run(cfg Config) (*Stats, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Schedules {
		workers = cfg.Schedules
	}
	p := &pool{
		cfg:        &cfg,
		chunks:     (cfg.Schedules + ChunkSize - 1) / ChunkSize,
		pending:    make(map[int]*chunkResult),
		maxPending: 4 * workers,
		distinct:   make(map[uint64]struct{}),
		st:         &Stats{Workers: workers, Incremental: incremental(&cfg)},
	}
	p.cond = sync.NewCond(&p.mu)
	p.failBound.Store(math.MaxInt64)
	// Loop 0 runs inline on the calling goroutine so the run always
	// makes progress; the remaining loops are goroutines, or offers to
	// the external executor (Config.Spawn), which may decline them. A
	// loop that starts after every chunk is claimed exits immediately,
	// so late-running accepted offers are harmless.
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		loop := func() {
			defer wg.Done()
			p.worker()
		}
		if cfg.Spawn != nil {
			if !cfg.Spawn(loop) {
				wg.Done()
			}
		} else {
			go loop()
		}
	}
	p.worker()
	wg.Wait()
	p.st.DistinctStates = len(p.distinct)
	switch {
	case p.fatal != nil:
		return nil, p.fatal
	case p.vio != nil:
		return p.st, p.vio
	case p.st.Interrupted:
		err := cfg.Ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		return p.st, err
	default:
		return p.st, nil
	}
}

func validate(cfg *Config) error {
	switch {
	case cfg.Procs < 1:
		return errors.New("sample: Procs must be >= 1")
	case cfg.NewObject == nil || cfg.NewEnv == nil:
		return errors.New("sample: NewObject and NewEnv are required")
	case cfg.NewMonitors == nil:
		return errors.New("sample: NewMonitors is required (sampling has no batch path)")
	case cfg.Schedules < 1:
		return errors.New("sample: Schedules must be >= 1")
	case cfg.Steps < 1:
		return errors.New("sample: Steps must be >= 1")
	case cfg.Crashes < 0 || cfg.Recoveries < 0 || cfg.ChangePoints < 0:
		return errors.New("sample: Crashes, Recoveries and ChangePoints must be >= 0")
	}
	return nil
}

// pool coordinates the workers: chunk claiming with bounded pending
// results, the in-order merge, and the failure bound that lets workers
// skip schedules a known earlier failure makes irrelevant.
type pool struct {
	cfg    *Config
	chunks int

	mu         sync.Mutex
	cond       *sync.Cond
	nextChunk  int                  // next chunk index to claim
	cursor     int                  // next chunk index to merge
	pending    map[int]*chunkResult // submitted chunks not yet reached by cursor
	maxPending int                  // claim-ahead bound (memory backpressure)
	stopped    bool                 // merge finished (violation, cancellation, or fatal)
	st         *Stats
	distinct   map[uint64]struct{}
	vio        *explore.Violation
	fatal      error

	// failBound is the least schedule index any worker has seen violate
	// (MaxInt64 until then). Only schedules with larger indices are ever
	// skipped, and the bound only decreases, so every schedule below the
	// final reported failure is guaranteed to have run — which is what
	// makes the merged Stats worker-count independent.
	failBound atomic.Int64
	cancelled atomic.Bool
}

func (p *pool) worker() {
	r, err := newRunner(p.cfg)
	if err != nil {
		p.setFatal(err)
		return
	}
	defer r.close()
	for {
		c := p.claim()
		if c < 0 {
			return
		}
		p.submit(c, p.runChunk(r, c))
	}
}

// claim hands out the next chunk, waiting while the merge is too far
// behind, and returns -1 when no useful work remains.
func (p *pool) claim() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.fatal != nil || p.cancelled.Load() {
			return -1
		}
		if p.nextChunk >= p.chunks {
			return -1
		}
		if int64(p.nextChunk)*ChunkSize > p.failBound.Load() {
			return -1
		}
		if p.nextChunk-p.cursor < p.maxPending {
			c := p.nextChunk
			p.nextChunk++
			return c
		}
		p.cond.Wait()
	}
}

// runChunk samples the chunk's schedules, polling the context and the
// failure bound before each one.
func (p *pool) runChunk(r runner, c int) *chunkResult {
	lo := c * ChunkSize
	hi := lo + ChunkSize
	if hi > p.cfg.Schedules {
		hi = p.cfg.Schedules
	}
	res := &chunkResult{recs: make([]schedRec, hi-lo)}
	for i := range res.recs {
		idx := lo + i
		if p.cfg.Ctx.Err() != nil {
			p.cancel()
		}
		if p.cancelled.Load() {
			break
		}
		if int64(idx) > p.failBound.Load() {
			break
		}
		rec := &res.recs[i]
		rec.ran = true
		vio, err := r.sample(p.cfg.Seed+int64(idx), rec)
		if err != nil {
			rec.ran = false
			p.setFatal(err)
			break
		}
		if vio != nil {
			p.lowerBound(int64(idx))
			res.vio = vio
			break
		}
	}
	return res
}

// submit stores a finished chunk and advances the in-order merge over
// every contiguous chunk now available.
func (p *pool) submit(c int, res *chunkResult) {
	p.mu.Lock()
	p.pending[c] = res
	for {
		r, ok := p.pending[p.cursor]
		if !ok {
			break
		}
		delete(p.pending, p.cursor)
		if !p.stopped {
			p.merge(p.cursor, r)
		}
		p.cursor++
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// merge folds one chunk into the Stats in schedule order, stopping the
// whole merge at the first violated or unexecuted record. Callers hold
// p.mu.
func (p *pool) merge(c int, res *chunkResult) {
	lo := c * ChunkSize
	for i := range res.recs {
		rec := &res.recs[i]
		if !rec.ran {
			// Only cancellation (or a fatal error) leaves an unexecuted
			// record ahead of every violation; the stats stay a clean
			// prefix.
			p.stopped = true
			p.st.Interrupted = p.fatal == nil
			return
		}
		p.st.Schedules++
		p.st.Steps += rec.steps
		p.st.Resims += rec.resims
		p.st.Events += rec.events
		if rec.violated {
			idx := lo + i
			p.st.Failed = true
			p.st.FailingSchedule = idx
			p.st.FailingSeed = p.cfg.Seed + int64(idx)
			p.vio = res.vio
			p.stopped = true
			return
		}
		if rec.fped {
			p.distinct[rec.fp] = struct{}{}
		}
	}
}

// lowerBound lowers the failure bound to idx if it improves it.
func (p *pool) lowerBound(idx int64) {
	for {
		cur := p.failBound.Load()
		if cur <= idx || p.failBound.CompareAndSwap(cur, idx) {
			return
		}
	}
}

func (p *pool) cancel() {
	p.cancelled.Store(true)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pool) setFatal(err error) {
	p.cancelled.Store(true)
	p.mu.Lock()
	if p.fatal == nil {
		p.fatal = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
