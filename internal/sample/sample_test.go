package sample

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/base"
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

// linSet adapts a safety monitor to explore.MonitorSet.
type linSet struct{ m safety.Monitor }

func (s *linSet) Step(e history.Event) error {
	if !s.m.Step(e) {
		return fmt.Errorf("linearizability violated")
	}
	return nil
}

func (s *linSet) Fork() explore.MonitorSet { return &linSet{m: s.m.Fork()} }

func newLinSet() explore.MonitorSet {
	return &linSet{m: safety.NewLinMonitor(safety.RegisterSpec{Initial: nil})}
}

// okReg is a linearizable register with full session hooks (snapshot,
// fingerprint, footprints) via the base register.
type okReg struct{ r *base.Register }

func (o *okReg) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case "write":
		o.r.Write(p, inv.Arg)
		return history.OK
	case "read":
		return o.r.Read(p)
	}
	return nil
}

func (o *okReg) Footprints() bool                 { return true }
func (o *okReg) Fingerprint(f *sim.Fingerprinter) { o.r.Fingerprint(f) }
func (o *okReg) Snapshot() any                    { return o.r.Snapshot() }
func (o *okReg) Restore(s any)                    { o.r.Restore(s) }

// okRegFrame is one in-flight okReg operation: a single register access.
type okRegFrame struct {
	o   *okReg
	inv sim.Invocation
}

// Begin implements sim.Stepped.
func (o *okReg) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case "read", "write":
		return &okRegFrame{o: o, inv: inv}, nil, sim.StepPaused
	}
	return nil, nil, sim.StepDone
}

// Step implements sim.Frame.
func (f *okRegFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	if f.inv.Op == "read" {
		return f.o.r.ReadW(p), sim.StepDone
	}
	f.o.r.WriteW(p, f.inv.Arg)
	return history.OK, sim.StepDone
}

// Fork implements sim.Frame: the frame is immutable.
func (f *okRegFrame) Fork() sim.Frame { return f }

// lossyReg drops process 2's writes while acknowledging them: its
// write-then-read is not linearizable. Hand-rolled hooks (the reference
// pattern for custom session-capable objects).
type lossyReg struct{ v history.Value }

func (o *lossyReg) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	var out history.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() {
			p.Access("r", false)
			out = o.v
			p.Observe(out)
		})
	case "write":
		p.Exec("write", func() {
			out = history.OK
			p.Access("r", true)
			if p.ID() != 2 {
				o.v = inv.Arg
			}
		})
	}
	return out
}

func (o *lossyReg) Footprints() bool                 { return true }
func (o *lossyReg) Fingerprint(f *sim.Fingerprinter) { f.Str("r"); f.Val(o.v) }
func (o *lossyReg) Snapshot() any                    { return o.v }
func (o *lossyReg) Restore(s any)                    { o.v = s }

// lossyRegFrame is one in-flight lossyReg operation: a single window.
type lossyRegFrame struct {
	o   *lossyReg
	inv sim.Invocation
}

// Begin implements sim.Stepped.
func (o *lossyReg) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case "read", "write":
		return &lossyRegFrame{o: o, inv: inv}, nil, sim.StepPaused
	}
	return nil, nil, sim.StepDone
}

// Step implements sim.Frame.
func (f *lossyRegFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	o := f.o
	if f.inv.Op == "read" {
		p.Access("r", false)
		out := o.v
		p.Observe(out)
		return out, sim.StepDone
	}
	p.Access("r", true)
	if p.ID() != 2 {
		o.v = f.inv.Arg
	}
	return history.OK, sim.StepDone
}

// Fork implements sim.Frame: the frame is immutable.
func (f *lossyRegFrame) Fork() sim.Frame { return f }

func regScript(procs int) func() sim.Environment {
	return func() sim.Environment {
		script := map[int][]sim.Invocation{}
		for p := 1; p <= procs; p++ {
			script[p] = []sim.Invocation{{Op: "write", Arg: p}, {Op: "read"}}
		}
		return sim.Script(script)
	}
}

func okCfg() Config {
	return Config{
		Procs:        3,
		NewObject:    func() sim.Object { return &okReg{r: base.NewRegister("r", nil)} },
		NewEnv:       regScript(3),
		NewMonitors:  newLinSet,
		Schedules:    300,
		Steps:        12,
		Crashes:      1,
		Strategy:     PCT,
		ChangePoints: 3,
		Seed:         7,
		Workers:      1,
		Fingerprint:  true,
	}
}

func lossyCfg() Config {
	cfg := okCfg()
	cfg.NewObject = func() sim.Object { return &lossyReg{} }
	cfg.Crashes = 0
	return cfg
}

// eq compares two Stats modulo the Workers field (a config echo).
func eq(a, b *Stats) bool {
	aa, bb := *a, *b
	aa.Workers, bb.Workers = 0, 0
	return reflect.DeepEqual(aa, bb)
}

// TestSessionReplayParity: the session-reuse and from-root engines must
// produce identical stats, seeds and witnesses for the same master
// seed, on clean and violating objects, with and without crashes.
func TestSessionReplayParity(t *testing.T) {
	for name, mk := range map[string]func() Config{"ok": okCfg, "lossy": lossyCfg} {
		t.Run(name, func(t *testing.T) {
			cfg := mk()
			sess, serr := Run(cfg)
			cfg2 := mk()
			cfg2.ForceReplay = true
			repl, rerr := Run(cfg2)
			if sess == nil || repl == nil {
				t.Fatalf("engine failure: session err=%v, replay err=%v", serr, rerr)
			}
			if !sess.Incremental || repl.Incremental {
				t.Fatalf("engine selection wrong: session Incremental=%v, replay Incremental=%v", sess.Incremental, repl.Incremental)
			}
			sess.Incremental, repl.Incremental = false, false
			if !eq(sess, repl) {
				t.Fatalf("stats diverge:\nsession %+v\nreplay  %+v", sess, repl)
			}
			var sv, rv *explore.Violation
			if errors.As(serr, &sv) != errors.As(rerr, &rv) {
				t.Fatalf("verdicts diverge: session err=%v, replay err=%v", serr, rerr)
			}
			if sv != nil {
				if !reflect.DeepEqual(sv.Schedule, rv.Schedule) || sv.EventIndex != rv.EventIndex {
					t.Fatalf("witnesses diverge:\nsession %v @%d\nreplay  %v @%d", sv.Schedule, sv.EventIndex, rv.Schedule, rv.EventIndex)
				}
				if !reflect.DeepEqual(sv.H, rv.H) {
					t.Fatalf("violation histories diverge:\n%v\n%v", sv.H, rv.H)
				}
			}
			t.Logf("%s: %+v", name, sess)
		})
	}
}

// TestWorkerDeterminism: identical Stats at 1 and 4 workers for a fixed
// master seed, clean and violating.
func TestWorkerDeterminism(t *testing.T) {
	for name, mk := range map[string]func() Config{"ok": okCfg, "lossy": lossyCfg} {
		t.Run(name, func(t *testing.T) {
			cfg1 := mk()
			one, err1 := Run(cfg1)
			cfg4 := mk()
			cfg4.Workers = 4
			four, err4 := Run(cfg4)
			if one == nil || four == nil {
				t.Fatalf("engine failure: %v / %v", err1, err4)
			}
			if !eq(one, four) {
				t.Fatalf("stats depend on worker count:\n1 worker  %+v\n4 workers %+v", one, four)
			}
			var v1, v4 *explore.Violation
			errors.As(err1, &v1)
			errors.As(err4, &v4)
			if (v1 == nil) != (v4 == nil) || (v1 != nil && !reflect.DeepEqual(v1.Schedule, v4.Schedule)) {
				t.Fatalf("violations depend on worker count: %v vs %v", err1, err4)
			}
		})
	}
}

// TestFailingSeedReproduces: a violation's recorded seed re-derives the
// failing schedule as schedule 0 of a single-schedule run, and its
// witness replays to the same violation on a fresh from-root run.
func TestFailingSeedReproduces(t *testing.T) {
	cfg := lossyCfg()
	st, err := Run(cfg)
	if st == nil {
		t.Fatalf("engine failure: %v", err)
	}
	if !st.Failed {
		t.Fatal("PCT must find the lossy-register violation within the budget")
	}
	var vio *explore.Violation
	if !errors.As(err, &vio) {
		t.Fatalf("violation must be an *explore.Violation, got %v", err)
	}
	if want := cfg.Seed + int64(st.FailingSchedule); st.FailingSeed != want {
		t.Fatalf("FailingSeed=%d, want seed+index=%d", st.FailingSeed, want)
	}

	re := lossyCfg()
	re.Seed = st.FailingSeed
	re.Schedules = 1
	rst, rerr := Run(re)
	if rst == nil || !rst.Failed || rst.FailingSchedule != 0 {
		t.Fatalf("failing seed did not reproduce: stats=%+v err=%v", rst, rerr)
	}
	var rvio *explore.Violation
	if !errors.As(rerr, &rvio) || !reflect.DeepEqual(rvio.Schedule, vio.Schedule) {
		t.Fatalf("reproduced witness differs: %v vs %v", rerr, vio.Schedule)
	}

	// The witness replays to the same verdict on a plain fixed-schedule
	// run.
	res := sim.Run(sim.Config{
		Procs:     cfg.Procs,
		Object:    &lossyReg{},
		Env:       regScript(cfg.Procs)(),
		Scheduler: sim.Fixed(vio.Schedule),
		MaxSteps:  len(vio.Schedule) + 1,
	})
	if res.Err != nil {
		t.Fatalf("witness replay failed: %v", res.Err)
	}
	m := safety.NewLinMonitor(safety.RegisterSpec{Initial: nil})
	for _, e := range res.H {
		m.Step(e)
	}
	if m.OK() {
		t.Fatalf("witness %v replayed clean", vio.Schedule)
	}
}

// TestDistinctStates: terminal-state dedup counts more than one state on
// a clean register but never more than the schedule count.
func TestDistinctStates(t *testing.T) {
	st, err := Run(okCfg())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.DistinctStates < 2 || st.DistinctStates > st.Schedules {
		t.Fatalf("implausible distinct-state count %d over %d schedules", st.DistinctStates, st.Schedules)
	}
	cfg := okCfg()
	cfg.Fingerprint = false
	off, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if off.DistinctStates != 0 {
		t.Fatalf("DistinctStates=%d without fingerprinting, want 0", off.DistinctStates)
	}
}

// TestCancellation: a cancelled context yields partial, Interrupted
// stats with the context error — immediately when cancelled up front,
// and mid-run for a schedule count that could never finish in time.
func TestCancellation(t *testing.T) {
	cfg := okCfg()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx
	st, err := Run(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st == nil || !st.Interrupted || st.Schedules != 0 {
		t.Fatalf("want empty interrupted stats, got %+v", st)
	}

	big := okCfg()
	big.Schedules = 10_000_000
	big.Workers = 4
	tctx, tcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer tcancel()
	big.Ctx = tctx
	start := time.Now()
	st, err = Run(big)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v (stats %+v)", err, st)
	}
	if st == nil || !st.Interrupted || st.Schedules >= big.Schedules {
		t.Fatalf("want partial interrupted stats, got %+v", st)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	t.Logf("interrupted after %d schedules", st.Schedules)
}

// TestValidation rejects nonsensical configurations.
func TestValidation(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"schedules": func(c *Config) { c.Schedules = 0 },
		"steps":     func(c *Config) { c.Steps = 0 },
		"monitors":  func(c *Config) { c.NewMonitors = nil },
		"procs":     func(c *Config) { c.Procs = 0 },
	} {
		cfg := okCfg()
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

// TestWalkStrategy: the uniform walk also finds the seeded bug and is
// deterministic across engines.
func TestWalkStrategy(t *testing.T) {
	cfg := lossyCfg()
	cfg.Strategy = Walk
	st, err := Run(cfg)
	if st == nil {
		t.Fatalf("engine failure: %v", err)
	}
	if !st.Failed {
		t.Fatal("walk must find the lossy-register violation within the budget")
	}
	re := lossyCfg()
	re.Strategy = Walk
	re.ForceReplay = true
	rst, _ := Run(re)
	if rst == nil || !eq(func() *Stats { s := *st; s.Incremental = false; return &s }(), func() *Stats { s := *rst; s.Incremental = false; return &s }()) {
		t.Fatalf("walk engines diverge:\nsession %+v\nreplay  %+v", st, rst)
	}
}
