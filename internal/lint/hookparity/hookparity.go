// Package hookparity enforces the engine's hook-parity contract: a
// shared-object implementation (a type with an Apply step method) that
// opts into any of the simulator's optional capability hooks —
// sim.Footprinted (partial-order reduction), sim.Fingerprintable
// (state caching), sim.Snapshottable (incremental execution),
// sim.Recoverable (crash–recovery exploration) — must either implement
// all four or carry an explicit exemption pragma per missing hook:
//
//	//slx:nofootprint   POR must treat every step as conflicting
//	//slx:nofingerprint content fingerprints are unsound (pointer identity)
//	//slx:nosnapshot    exploration must replay from the root
//	//slx:norecover     every cell is durable; recovery is a bare re-spawn
//
// Recoverable is a method pair: a type with CrashVolatile but no
// RecoverFrame (or vice versa) is reported unconditionally, because the
// runtime's interface assertion silently fails on half a pair and the
// object would explore under -recoveries with no crash semantics at
// all.
//
// The runtime composes silently: an object missing a hook simply loses
// the optimization, and the parity tests only cover objects someone
// remembered to register. This check turns "forgot the hook" from a
// silent de-optimization (or, for a wrongly-omitted annotation, an
// undocumented soundness argument) into a compile-time diagnostic.
//
// Hook detection is structural (method names and shapes), so the
// analyzer needs no reference to internal/sim itself and applies
// equally to objects written against the slx/run facade.
package hookparity

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/pragma"
)

// Analyzer is the hookparity check.
var Analyzer = &analysis.Analyzer{
	Name: "hookparity",
	Doc:  "object types opting into one engine capability hook must implement the rest or carry //slx:no* exemptions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Assign.IsValid() {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gen.Doc
				}
				checkType(pass, ts, doc)
			}
		}
	}
	return nil
}

// checkType applies the parity rule to one declared type.
func checkType(pass *analysis.Pass, ts *ast.TypeSpec, doc *ast.CommentGroup) {
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Interface); ok {
		return
	}
	ms := types.NewMethodSet(types.NewPointer(named))

	if !hasApply(ms) {
		return
	}
	footprinted := hasFootprints(ms)
	fingerprintable := hasFingerprint(ms)
	snapshottable := hasSnapshot(ms) && hasRestore(ms)
	crashVolatile := hasCrashVolatile(ms)
	recoverFrame := hasRecoverFrame(ms)
	recoverable := crashVolatile && recoverFrame

	// Half a Recoverable is always wrong: the runtime asserts the whole
	// interface, so the lone method is dead code and crashes wipe
	// nothing (or recovery runs no routine) without a diagnostic.
	if crashVolatile != recoverFrame {
		have, miss := "CrashVolatile", "RecoverFrame() Frame"
		if recoverFrame {
			have, miss = "RecoverFrame", "CrashVolatile()"
		}
		pass.Reportf(ts.Pos(), "%s implements %s but not %s: sim.Recoverable is asserted as a pair, so the half-implemented hook is silently ignored — complete the pair or remove it", ts.Name.Name, have, miss)
	}

	if !footprinted && !fingerprintable && !snapshottable && !recoverable {
		// The type opts into nothing: a plain Object, outside the
		// parity contract.
		return
	}

	if !footprinted && !pragma.Has(doc, "nofootprint") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Footprinted: add Footprints() bool (accesses declared via Proc.Access) or annotate the type //slx:nofootprint with why POR must treat its steps as conflicting", ts.Name.Name)
	}
	if !fingerprintable && !pragma.Has(doc, "nofingerprint") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Fingerprintable: add Fingerprint encoding all shared state or annotate the type //slx:nofingerprint with why content fingerprints are unsound for it (e.g. pointer identity)", ts.Name.Name)
	}
	if !snapshottable && !pragma.Has(doc, "nosnapshot") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Snapshottable: add Snapshot/Restore or annotate the type //slx:nosnapshot with why incremental execution must fall back to from-root replay", ts.Name.Name)
	}
	if !recoverable && !pragma.Has(doc, "norecover") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Recoverable: add CrashVolatile/RecoverFrame stating what a crash wipes and how a process rejoins, or annotate the type //slx:norecover with why a bare re-spawn is sound (typically: every cell is durable)", ts.Name.Name)
	}
}

// signature returns the named method's signature from the method set,
// or nil.
func signature(ms *types.MethodSet, name string) *types.Signature {
	for i := 0; i < ms.Len(); i++ {
		f := ms.At(i).Obj()
		if f.Name() == name {
			if sig, ok := f.Type().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// hasApply matches the sim.Object step method shape:
// Apply(p *Proc, inv Invocation) Value.
func hasApply(ms *types.MethodSet) bool {
	sig := signature(ms, "Apply")
	return sig != nil && sig.Params().Len() == 2 && sig.Results().Len() == 1
}

// hasFootprints matches sim.Footprinted: Footprints() bool.
func hasFootprints(ms *types.MethodSet) bool {
	sig := signature(ms, "Footprints")
	if sig == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// hasFingerprint matches the fingerprint hook shape shared by
// sim.Fingerprintable (Fingerprint(*sim.Fingerprinter)) and the
// base.StateSink form: one parameter, no results, parameter type named
// Fingerprinter or StateSink.
func hasFingerprint(ms *types.MethodSet) bool {
	sig := signature(ms, "Fingerprint")
	if sig == nil || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	t := sig.Params().At(0).Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Fingerprinter" || name == "StateSink"
}

// hasSnapshot matches Snapshot() any.
func hasSnapshot(ms *types.MethodSet) bool {
	sig := signature(ms, "Snapshot")
	return sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1
}

// hasRestore matches Restore(any).
func hasRestore(ms *types.MethodSet) bool {
	sig := signature(ms, "Restore")
	return sig != nil && sig.Params().Len() == 1 && sig.Results().Len() == 0
}

// hasCrashVolatile matches CrashVolatile().
func hasCrashVolatile(ms *types.MethodSet) bool {
	sig := signature(ms, "CrashVolatile")
	return sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// hasRecoverFrame matches RecoverFrame() Frame.
func hasRecoverFrame(ms *types.MethodSet) bool {
	sig := signature(ms, "RecoverFrame")
	return sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1
}
