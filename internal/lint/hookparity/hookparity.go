// Package hookparity enforces the engine's hook-parity contract: a
// shared-object implementation (a type with an Apply step method) that
// opts into any of the simulator's optional capability hooks —
// sim.Footprinted (partial-order reduction), sim.Fingerprintable
// (state caching), sim.Snapshottable (incremental execution) — must
// either implement all three or carry an explicit exemption pragma
// per missing hook:
//
//	//slx:nofootprint   POR must treat every step as conflicting
//	//slx:nofingerprint content fingerprints are unsound (pointer identity)
//	//slx:nosnapshot    exploration must replay from the root
//
// The runtime composes silently: an object missing a hook simply loses
// the optimization, and the parity tests only cover objects someone
// remembered to register. This check turns "forgot the hook" from a
// silent de-optimization (or, for a wrongly-omitted annotation, an
// undocumented soundness argument) into a compile-time diagnostic.
//
// Hook detection is structural (method names and shapes), so the
// analyzer needs no reference to internal/sim itself and applies
// equally to objects written against the slx/run facade.
package hookparity

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/pragma"
)

// Analyzer is the hookparity check.
var Analyzer = &analysis.Analyzer{
	Name: "hookparity",
	Doc:  "object types opting into one engine capability hook must implement the rest or carry //slx:no* exemptions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Assign.IsValid() {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gen.Doc
				}
				checkType(pass, ts, doc)
			}
		}
	}
	return nil
}

// checkType applies the parity rule to one declared type.
func checkType(pass *analysis.Pass, ts *ast.TypeSpec, doc *ast.CommentGroup) {
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Interface); ok {
		return
	}
	ms := types.NewMethodSet(types.NewPointer(named))

	if !hasApply(ms) {
		return
	}
	footprinted := hasFootprints(ms)
	fingerprintable := hasFingerprint(ms)
	snapshottable := hasSnapshot(ms) && hasRestore(ms)
	if !footprinted && !fingerprintable && !snapshottable {
		// The type opts into nothing: a plain Object, outside the
		// parity contract.
		return
	}

	if !footprinted && !pragma.Has(doc, "nofootprint") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Footprinted: add Footprints() bool (accesses declared via Proc.Access) or annotate the type //slx:nofootprint with why POR must treat its steps as conflicting", ts.Name.Name)
	}
	if !fingerprintable && !pragma.Has(doc, "nofingerprint") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Fingerprintable: add Fingerprint encoding all shared state or annotate the type //slx:nofingerprint with why content fingerprints are unsound for it (e.g. pointer identity)", ts.Name.Name)
	}
	if !snapshottable && !pragma.Has(doc, "nosnapshot") {
		pass.Reportf(ts.Pos(), "%s opts into engine hooks but not sim.Snapshottable: add Snapshot/Restore or annotate the type //slx:nosnapshot with why incremental execution must fall back to from-root replay", ts.Name.Name)
	}
}

// signature returns the named method's signature from the method set,
// or nil.
func signature(ms *types.MethodSet, name string) *types.Signature {
	for i := 0; i < ms.Len(); i++ {
		f := ms.At(i).Obj()
		if f.Name() == name {
			if sig, ok := f.Type().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// hasApply matches the sim.Object step method shape:
// Apply(p *Proc, inv Invocation) Value.
func hasApply(ms *types.MethodSet) bool {
	sig := signature(ms, "Apply")
	return sig != nil && sig.Params().Len() == 2 && sig.Results().Len() == 1
}

// hasFootprints matches sim.Footprinted: Footprints() bool.
func hasFootprints(ms *types.MethodSet) bool {
	sig := signature(ms, "Footprints")
	if sig == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// hasFingerprint matches the fingerprint hook shape shared by
// sim.Fingerprintable (Fingerprint(*sim.Fingerprinter)) and the
// base.StateSink form: one parameter, no results, parameter type named
// Fingerprinter or StateSink.
func hasFingerprint(ms *types.MethodSet) bool {
	sig := signature(ms, "Fingerprint")
	if sig == nil || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	t := sig.Params().At(0).Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Fingerprinter" || name == "StateSink"
}

// hasSnapshot matches Snapshot() any.
func hasSnapshot(ms *types.MethodSet) bool {
	sig := signature(ms, "Snapshot")
	return sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1
}

// hasRestore matches Restore(any).
func hasRestore(ms *types.MethodSet) bool {
	sig := signature(ms, "Restore")
	return sig != nil && sig.Params().Len() == 1 && sig.Results().Len() == 0
}
