package hookparity_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/hookparity"
)

func TestHookParity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hookparity.Analyzer, "hookparity")
}
