// Package hookparity is the analyzer fixture: object types in every
// parity state, self-contained stand-ins for sim.Proc, sim.Frame and
// sim.Fingerprinter included.
package hookparity

// Proc stands in for sim.Proc.
type Proc struct{}

// Invocation stands in for sim.Invocation.
type Invocation struct{}

// Fingerprinter stands in for sim.Fingerprinter.
type Fingerprinter struct{}

// Frame stands in for sim.Frame.
type Frame interface{ Step(*Proc) (any, int) }

// full implements every hook, the Recoverable pair included: clean.
type full struct{}

func (f *full) Apply(p *Proc, inv Invocation) any { return nil }
func (f *full) Footprints() bool                  { return true }
func (f *full) Fingerprint(fp *Fingerprinter)     {}
func (f *full) Snapshot() any                     { return nil }
func (f *full) Restore(any)                       {}
func (f *full) CrashVolatile()                    {}
func (f *full) RecoverFrame() Frame               { return nil }

// partial opts into footprints only and carries no exemptions.
type partial struct{} // want `not sim\.Fingerprintable` `not sim\.Snapshottable` `not sim\.Recoverable`

func (q *partial) Apply(p *Proc, inv Invocation) any { return nil }
func (q *partial) Footprints() bool                  { return true }

// halfSnapshot has Snapshot but no Restore: the snapshot hook is
// incomplete, so only the fingerprint side of the pair is satisfied.
//
//slx:norecover fixture: every cell durable
type halfSnapshot struct{} // want `not sim\.Footprint` `not sim\.Snapshottable`

func (h *halfSnapshot) Apply(p *Proc, inv Invocation) any { return nil }
func (h *halfSnapshot) Fingerprint(fp *Fingerprinter)     {}
func (h *halfSnapshot) Snapshot() any                     { return nil }

// annotated opts into snapshots only, with the missing hooks
// explicitly exempted: clean.
//
//slx:nofootprint fixture: steps must conflict
//slx:nofingerprint fixture: pointer identity
//slx:norecover fixture: every cell durable
type annotated struct{}

func (a *annotated) Apply(p *Proc, inv Invocation) any { return nil }
func (a *annotated) Snapshot() any                     { return nil }
func (a *annotated) Restore(any)                       {}

// plain opts into nothing: outside the parity contract, clean.
type plain struct{}

func (pl *plain) Apply(p *Proc, inv Invocation) any { return nil }

// recoverOnly opts into crash–recovery alone; the other hooks must be
// implemented or exempted like for any capability.
type recoverOnly struct{} // want `not sim\.Footprint` `not sim\.Fingerprintable` `not sim\.Snapshottable`

func (r *recoverOnly) Apply(p *Proc, inv Invocation) any { return nil }
func (r *recoverOnly) CrashVolatile()                    {}
func (r *recoverOnly) RecoverFrame() Frame               { return nil }

// halfRecover has CrashVolatile but no RecoverFrame: the runtime's
// interface assertion fails silently, so the half pair is always a
// diagnostic — no pragma can excuse it.
//
//slx:norecover fixture: pragma must not silence the broken pair
type halfRecover struct{} // want `implements CrashVolatile but not RecoverFrame`

func (h *halfRecover) Apply(p *Proc, inv Invocation) any { return nil }
func (h *halfRecover) Footprints() bool                  { return true }
func (h *halfRecover) Fingerprint(fp *Fingerprinter)     {}
func (h *halfRecover) Snapshot() any                     { return nil }
func (h *halfRecover) Restore(any)                       {}
func (h *halfRecover) CrashVolatile()                    {}

var _ = []any{&full{}, &partial{}, &halfSnapshot{}, &annotated{}, &plain{}, &recoverOnly{}, &halfRecover{}}
