// Package hookparity is the analyzer fixture: object types in every
// parity state, self-contained stand-ins for sim.Proc and
// sim.Fingerprinter included.
package hookparity

// Proc stands in for sim.Proc.
type Proc struct{}

// Invocation stands in for sim.Invocation.
type Invocation struct{}

// Fingerprinter stands in for sim.Fingerprinter.
type Fingerprinter struct{}

// full implements every hook: clean.
type full struct{}

func (f *full) Apply(p *Proc, inv Invocation) any { return nil }
func (f *full) Footprints() bool                  { return true }
func (f *full) Fingerprint(fp *Fingerprinter)     {}
func (f *full) Snapshot() any                     { return nil }
func (f *full) Restore(any)                       {}

// partial opts into footprints only and carries no exemptions.
type partial struct{} // want `not sim\.Fingerprintable` `not sim\.Snapshottable`

func (q *partial) Apply(p *Proc, inv Invocation) any { return nil }
func (q *partial) Footprints() bool                  { return true }

// halfSnapshot has Snapshot but no Restore: the snapshot hook is
// incomplete, so only the fingerprint side of the pair is satisfied.
type halfSnapshot struct{} // want `not sim\.Footprint` `not sim\.Snapshottable`

func (h *halfSnapshot) Apply(p *Proc, inv Invocation) any { return nil }
func (h *halfSnapshot) Fingerprint(fp *Fingerprinter)     {}
func (h *halfSnapshot) Snapshot() any                     { return nil }

// annotated opts into snapshots only, with the missing hooks
// explicitly exempted: clean.
//
//slx:nofootprint fixture: steps must conflict
//slx:nofingerprint fixture: pointer identity
type annotated struct{}

func (a *annotated) Apply(p *Proc, inv Invocation) any { return nil }
func (a *annotated) Snapshot() any                     { return nil }
func (a *annotated) Restore(any)                       {}

// plain opts into nothing: outside the parity contract, clean.
type plain struct{}

func (pl *plain) Apply(p *Proc, inv Invocation) any { return nil }

var _ = []any{&full{}, &partial{}, &halfSnapshot{}, &annotated{}, &plain{}}
