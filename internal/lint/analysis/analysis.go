// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The
// slxvet suite (internal/lint) is written against this surface so that
// swapping the driver for the real go/analysis multichecker, should the
// x/tools dependency ever be vendored, is a mechanical change — the
// analyzer bodies already speak its vocabulary (Pass.Fset, Pass.Files,
// Pass.TypesInfo, Pass.Reportf).
//
// The driver (Load + Run) shells out to `go list -export` for package
// metadata and export data, parses the target packages from source, and
// type-checks them with the standard library's gc importer — no
// third-party code anywhere on the path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check: a name, a documentation string, and a
// Run function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and caches. It must be
	// a valid Go identifier.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects the package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to source locations.
	Fset *token.FileSet
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier facts.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Filename: position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned by resolved file location so it
// survives serialization into the facts cache.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Filename string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional
// file:line:col: message (analyzer) form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Filename, d.Line, d.Column, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by file, line, column, then analyzer name, so
// output and cache contents are deterministic.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runPackage applies the analyzers to a single loaded package.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
