package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// SuiteVersion participates in every cache key; bump it when an
// analyzer's behavior changes so stale facts can never mask a new
// finding.
const SuiteVersion = "slxvet-1"

// Cache is the analysis facts directory: per-package diagnostic lists
// keyed by the sha256 of everything a package's findings can depend on
// — the toolchain version, the analyzer suite, the package's own
// sources, and the export data of its direct dependencies (interface
// satisfaction can change when a dependency's method set does). CI
// persists the directory across runs; a miss costs one re-analysis,
// a stale entry is impossible because the content is the key.
type Cache struct {
	dir string
}

// OpenCache creates (if needed) and opens a facts directory. An empty
// dir disables caching.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Key computes the facts key for one loaded package under the given
// analyzer set.
func (c *Cache) Key(pkg *Package, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", SuiteVersion, runtime.Version(), pkg.PkgPath)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s\n", a.Name)
	}
	for _, name := range pkg.Filenames {
		if err := hashFile(h, "src", name); err != nil {
			return "", err
		}
	}
	deps := make([]string, 0, len(pkg.DepExports))
	for path := range pkg.DepExports {
		deps = append(deps, path)
	}
	sort.Strings(deps)
	for _, path := range deps {
		if err := hashFile(h, "dep "+path, pkg.DepExports[path]); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func hashFile(h io.Writer, tag, name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(h, "%s %s\n", tag, name)
	_, err = io.Copy(h, f)
	return err
}

// Get returns the cached diagnostics for key, if present.
func (c *Cache) Get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// Put stores the diagnostics for key.
func (c *Cache) Put(key string, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return err
	}
	return os.WriteFile(c.path(key), data, 0o644)
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// RunCached is Run with a facts cache: packages whose key is present
// reuse their stored diagnostics; the rest are analyzed and stored. A
// nil cache degrades to Run.
func RunCached(pkgs []*Package, analyzers []*Analyzer, cache *Cache) ([]Diagnostic, error) {
	if cache == nil {
		return Run(pkgs, analyzers)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		key, err := cache.Key(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		if ds, ok := cache.Get(key); ok {
			diags = append(diags, ds...)
			continue
		}
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		sortDiagnostics(ds)
		if err := cache.Put(key, ds); err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}
