// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest. A fixture line that
// should trigger N diagnostics carries N quoted regular expressions:
//
//	h = h ^ 1099511628211 // want `raw FNV` `second finding`
//
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic; either mismatch fails the test. Fixture
// packages live under testdata/src/<name> and are loaded through the
// enclosing module, so they may import standard-library packages.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/lint/analysis"
)

// wantRE extracts the quoted expectations from a // want comment.
// Both backquoted and double-quoted forms are accepted.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// want is one expectation: a compiled pattern at a file line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> relative to the caller's directory,
// applies the analyzer, and checks diagnostics against the fixture's
// // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	moduleRoot, err := analysis.ModuleRoot(dir)
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	loaded, err := analysis.LoadDir(moduleRoot, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{loaded}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := collectWants(loaded)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// TestData returns the caller's testdata directory, mirroring the
// x/tools helper of the same name.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// collectWants scans the fixture's comments for // want expectations.
func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// cutWant strips the comment marker and reports whether the comment is
// a want expectation.
func cutWant(comment string) (string, bool) {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(comment); i++ {
		if comment[i:i+len(marker)] == marker {
			return comment[i+len(marker):], true
		}
	}
	return "", false
}

// matchWant marks and reports the first unmatched want on the
// diagnostic's line whose pattern matches its message.
func matchWant(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Filename || w.line != d.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
