package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one target package loaded for analysis: parsed from
// source and type-checked against the export data of its dependencies.
type Package struct {
	// PkgPath is the import path (or the fixture directory base for
	// LoadDir packages).
	PkgPath string
	// Dir is the directory holding the sources.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Filenames are the absolute source paths, parallel to Files.
	Filenames []string
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
	// DepExports maps each dependency import path to its export-data
	// file, recorded for cache keying.
	DepExports map[string]string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list -export -deps -json` in dir and decodes the
// package stream. Export data for every listed package is built as a
// side effect, which is what lets the type checker import dependencies
// without compiling them itself.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ModuleRoot resolves the root directory of the main module containing
// dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return string(bytes.TrimSpace(out)), nil
}

// Load loads and type-checks the packages matching patterns, resolved
// relative to dir (typically the module root). Only non-test sources
// are parsed and analyzed: the soundness contracts slxvet enforces
// bind implementation code, and test-only fixtures are exercised by
// the runtime parity suites instead.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir loads the single package rooted at fixtureDir — a directory
// that need not be part of any module's package graph (analysistest
// fixtures live under testdata, which go list never matches). Imports
// are resolved through moduleDir, so fixtures may import standard
// library and module packages alike.
func LoadDir(moduleDir, fixtureDir string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", fixtureDir)
	}
	sort.Strings(files)

	// A first parse pass collects the fixture's imports so one go list
	// invocation can produce export data for all of them.
	fset := token.NewFileSet()
	var asts []*ast.File
	var names []string
	importSet := make(map[string]bool)
	for _, f := range files {
		path := filepath.Join(fixtureDir, f)
		parsed, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, parsed)
		names = append(names, path)
		for _, spec := range parsed.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[p] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	pkgPath := filepath.Base(fixtureDir)
	return typeCheck(fset, imp, pkgPath, fixtureDir, asts, names, exports)
}

// exportImporter builds a types.Importer that reads the gc export data
// files produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses the named files of one target package and type
// checks them.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	var asts []*ast.File
	var names []string
	for _, f := range goFiles {
		path := filepath.Join(dir, f)
		parsed, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, parsed)
		names = append(names, path)
	}
	return typeCheck(fset, imp, pkgPath, dir, asts, names, exports)
}

func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, asts []*ast.File, names []string, exports map[string]string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:    pkgPath,
		Dir:        dir,
		Fset:       fset,
		Files:      asts,
		Filenames:  names,
		Types:      tpkg,
		Info:       info,
		DepExports: exports,
	}, nil
}
