package detorder_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/detorder"
)

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detorder.Analyzer, "explore")
}
