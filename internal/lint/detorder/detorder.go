// Package detorder enforces determinism in the engine packages
// (internal/explore, internal/sample, internal/sim, internal/service):
// every exploration statistic, witness, digest, and report must be a
// pure function of the configuration and seed, because parity tests,
// the state cache, and the bench-trend gates all compare runs across
// workers, processes, and machines. Three nondeterminism channels are
// flagged:
//
//   - ranging over a map where the iteration order can reach results:
//     appending to a slice that outlives the loop without sorting it
//     afterwards, folding into a digest, or sending on a channel;
//   - time.Now, the wall clock;
//   - the package-level math/rand functions, which draw from the
//     process-global source (seeded rand.New sources are fine).
//
// A finding that is provably order-independent or legitimately
// wall-clock (job timestamps, metrics) carries //slx:nondet with a
// reason on its line or the line above.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/pragma"
)

// Analyzer is the detorder check.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "engine packages must not leak map iteration order, wall-clock time, or global math/rand draws into results",
	Run:  run,
}

// enginePackages are the import-path base names under the check.
var enginePackages = map[string]bool{
	"explore": true, "sample": true, "sim": true, "service": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// backed by the process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !enginePackages[path[strings.LastIndex(path, "/")+1:]] {
		return nil
	}
	for _, file := range pass.Files {
		exempt := pragma.ExemptLines(pass.Fset, file, "nondet")
		reportf := func(pos token.Pos, format string, args ...any) {
			if !exempt[pass.Fset.Position(pos).Line] {
				pass.Reportf(pos, format, args...)
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, reportf)
		}
	}
	return nil
}

// reportFunc suppresses findings on //slx:nondet-exempted lines.
type reportFunc func(pos token.Pos, format string, args ...any)

// checkFunc scans one function for the three nondeterminism channels.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, reportf reportFunc) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(pass.TypesInfo, n) {
				checkMapRange(pass, fn, n, reportf)
			}
		case *ast.CallExpr:
			checkNondetCall(pass, n, reportf)
		}
		return true
	})
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkNondetCall flags time.Now and global math/rand draws.
func checkNondetCall(pass *analysis.Pass, call *ast.CallExpr, reportf reportFunc) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			reportf(call.Pos(), "time.Now in engine code: wall-clock values are nondeterministic across runs; derive times from the configuration or annotate //slx:nondet with why this never reaches a result")
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			reportf(call.Pos(), "global math/rand.%s draws from the process-wide source: draw from the run's seeded rand.Source so schedules replay deterministically", sel.Sel.Name)
		}
	}
}

// checkMapRange flags loop bodies whose per-iteration effects are
// order-sensitive: appends into longer-lived slices (unless the slice
// is sorted after the loop), digest folds, and channel sends.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, r *ast.RangeStmt, reportf reportFunc) {
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if obj, pos, ok := appendTarget(pass.TypesInfo, n, r); ok && !sortedAfter(pass, fn, r, obj) {
				reportf(pos, "map iteration order reaches %s through this append with no sort after the loop: sort the collected slice or annotate //slx:nondet with why order cannot surface", obj.Name())
			}
		case *ast.CallExpr:
			if name, ok := digestCallee(n); ok {
				reportf(n.Pos(), "map iteration order folds into %s: digests must not depend on map order; sort the keys first", name)
			}
		case *ast.SendStmt:
			reportf(n.Pos(), "map iteration order reaches a channel send: consumers observe a nondeterministic sequence; sort the keys first")
		}
		return true
	})
}

// appendTarget matches `v = append(v, ...)` where v outlives the range
// statement, returning v's object and the statement position.
func appendTarget(info *types.Info, as *ast.AssignStmt, r *ast.RangeStmt) (types.Object, token.Pos, bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return nil, token.NoPos, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, token.NoPos, false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil, token.NoPos, false
	}
	if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
		return nil, token.NoPos, false
	}
	obj := refObject(info, as.Lhs[0])
	if obj == nil {
		return nil, token.NoPos, false
	}
	// A variable declared inside the loop body cannot leak iteration
	// order past the loop.
	if obj.Pos() >= r.Pos() && obj.Pos() <= r.End() {
		return nil, token.NoPos, false
	}
	return obj, as.Pos(), true
}

// refObject resolves the variable behind an identifier or field
// selector.
func refObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// sortedAfter reports whether, after the range statement, the function
// passes obj to a sort (sort.* or slices.Sort*) — the idiomatic
// collect-then-sort pattern.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, r *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if refObject(pass.TypesInfo, arg) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// digestCallee matches calls whose target names itself a digest fold.
func digestCallee(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if strings.Contains(strings.ToLower(name), "digest") {
		return name, true
	}
	return "", false
}
