// Package explore is the detorder fixture: the package-path base name
// puts every function in scope, so map iteration and wall-clock /
// global-rand calls here must be deterministic or annotated.
package explore

import (
	"math/rand"
	"sort"
	"time"
)

// leakOrder appends map-range results with no later sort: flagged.
func leakOrder(seen map[string]int) []string {
	var names []string
	for name := range seen {
		names = append(names, name) // want `map iteration order reaches names through this append`
	}
	return names
}

// sortedOrder collects then sorts: the canonical safe pattern.
func sortedOrder(seen map[string]int) []string {
	var names []string
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// foldDigest folds map entries straight into a digest: flagged.
func foldDigest(seen map[string]int, fold func(uint64, int) uint64) uint64 {
	var h uint64
	for _, v := range seen {
		h = foldIntoDigest(h, v, fold) // want `map iteration order folds into foldIntoDigest`
	}
	return h
}

func foldIntoDigest(h uint64, v int, fold func(uint64, int) uint64) uint64 {
	return fold(h, v)
}

// stamp reads the wall clock in engine code: flagged unless annotated.
func stamp() (time.Time, time.Time) {
	now := time.Now() // want `time\.Now in engine code`
	//slx:nondet fixture: metrics only, never reaches a digest
	observed := time.Now()
	return now, observed
}

// pick uses the global math/rand source: flagged. A locally seeded
// source is the deterministic alternative and stays clean.
func pick(n int) (int, int) {
	global := rand.Intn(n) // want `global math/rand\.Intn`
	local := rand.New(rand.NewSource(1)).Intn(n)
	return global, local
}

var _ = []any{leakOrder, sortedOrder, foldDigest, stamp, pick}
