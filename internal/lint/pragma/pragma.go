// Package pragma parses the //slx: exemption comments through which
// code opts out of one of slxvet's soundness contracts. The grammar is
// deliberately pragma-shaped (no space after //, like //go: directives)
// so an exemption is always a conscious annotation, never prose that
// happens to contain a keyword:
//
//	//slx:<directive>[ <reason>]
//
// The directives, each honored by exactly one analyzer:
//
//	//slx:nofootprint    hookparity: the object deliberately opts out
//	                     of footprint tracking (POR treats every step
//	                     as conflicting).
//	//slx:nofingerprint  hookparity: the object's behavior depends on
//	                     pointer identity, which content fingerprints
//	                     cannot express.
//	//slx:nosnapshot     hookparity: the object cannot capture/restore
//	                     its shared state; exploration replays from the
//	                     root instead.
//	//slx:norecover      hookparity: the object holds no volatile state,
//	                     so crash–recovery exploration treats a recovery
//	                     as a bare process re-spawn (nothing to wipe, no
//	                     recovery routine to run).
//	//slx:rawdigest      canonenc: this declaration is the canonical
//	                     home of the raw FNV-1a primitives.
//	//slx:nondet         detorder: this line (or the next) reads
//	                     wall-clock time or iterates a map in an order
//	                     that provably cannot reach engine results.
//	//slx:nostepwindow   replaypure: this Begin/Step-shaped method is
//	                     not a sim continuation (or knowingly bends the
//	                     window contract) and is exempt from the
//	                     window-purity checks.
//
// A reason is not enforced but every annotation in the tree carries
// one: the exemption is an assertion, and the reason is its proof
// sketch.
package pragma

import (
	"go/ast"
	"go/token"
	"strings"
)

// prefix is the comment marker shared by every directive.
const prefix = "//slx:"

// directive extracts the directive name from one comment line, or ""
// if the line is not a pragma.
func directive(comment string) string {
	if !strings.HasPrefix(comment, prefix) {
		return ""
	}
	rest := comment[len(prefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// Has reports whether the comment group (typically a declaration's doc
// comment) contains the named directive.
func Has(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directive(c.Text) == name {
			return true
		}
	}
	return false
}

// ExemptLines returns the set of source lines of file exempted by the
// named directive: the line of each pragma comment and the line after
// it, so both trailing (same-line) and preceding-line annotations work:
//
//	start := time.Now() //slx:nondet wall-clock metric
//
//	//slx:nondet wall-clock metric
//	start := time.Now()
func ExemptLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if directive(c.Text) != name {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}
