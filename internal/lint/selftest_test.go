package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// TestRepoClean is the slxvet smoke test: the full suite over the
// repository itself must report nothing — every soundness-contract
// finding in the tree has been fixed or carries an //slx: exemption
// with its reason. A failure here is a regression against one of the
// engine contracts (or a new object missing its annotation), exactly
// what CI's slxvet job would report.
func TestRepoClean(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestCacheRoundTrip exercises the facts cache cmd/slxvet and CI rely
// on: a second run over unchanged sources must hit for every package
// and reproduce the identical diagnostics.
func TestCacheRoundTrip(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./internal/lint/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	dir := t.TempDir()
	cache, err := analysis.OpenCache(dir)
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	cold, err := analysis.RunCached(pkgs, lint.Analyzers(), cache)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read cache dir: %v", err)
	}
	if len(entries) != len(pkgs) {
		t.Fatalf("cache holds %d entries after analyzing %d packages", len(entries), len(pkgs))
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("unexpected cache entry %q", e.Name())
		}
	}
	warm, err := analysis.RunCached(pkgs, lint.Analyzers(), cache)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm run returned %d diagnostics, cold returned %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Errorf("diagnostic %d differs across runs:\n cold: %s\n warm: %s", i, cold[i], warm[i])
		}
	}
}
