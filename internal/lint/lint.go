// Package lint assembles the slxvet analyzer suite: the four static
// checks that move the engine's hand-maintained soundness contracts —
// hook parity across base objects, canonical digest encoding,
// engine determinism, and session-rebuild purity — from runtime parity
// tests to compile time. cmd/slxvet is the multichecker binary; CI
// runs it next to staticcheck and fails on any diagnostic.
//
// The exemption grammar the analyzers share is documented in
// internal/lint/pragma and in DESIGN.md ("Static soundness
// contracts").
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/canonenc"
	"repro/internal/lint/detorder"
	"repro/internal/lint/hookparity"
	"repro/internal/lint/replaypure"
)

// Analyzers returns the slxvet suite in its stable reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		canonenc.Analyzer,
		detorder.Analyzer,
		hookparity.Analyzer,
		replaypure.Analyzer,
	}
}
