// Package replaypure is the analyzer fixture: continuation methods in
// every contract state, with self-contained stand-ins for sim.Proc,
// sim.Frame and the base window methods.
package replaypure

// Proc stands in for sim.Proc.
type Proc struct{}

// Exec runs one step closure (the blocking handshake).
func (p *Proc) Exec(desc string, step func()) { step() }

// Access declares a footprint entry.
func (p *Proc) Access(name string, write bool) {}

// Observe records the window's observed value.
func (p *Proc) Observe(v any) {}

// ID returns the process id.
func (p *Proc) ID() int { return 1 }

// Invocation stands in for sim.Invocation.
type Invocation struct {
	Op  string
	Arg any
}

// Frame stands in for sim.Frame.
type Frame interface {
	Step(p *Proc) (any, int)
	Fork() Frame
}

// register is a base-object stand-in with a window method.
type register struct{ val any }

// ReadW is a window-form read.
func (r *register) ReadW(p *Proc) any {
	p.Access("r", false)
	p.Observe(r.val)
	return r.val
}

// WriteW is a window-form write.
func (r *register) WriteW(p *Proc, v any) {
	p.Access("r", true)
	r.val = v
}

// cleanObj is the canonical continuation translation: Begin observes
// steering state but declares nothing; the frame does the accesses.
type cleanObj struct {
	r      *register
	active bool
}

// Begin is clean: Observe is allowed in the invocation window.
func (o *cleanObj) Begin(p *Proc, inv Invocation) (Frame, any, int) {
	p.Observe(o.active)
	return &cleanFrame{o: o, inv: inv}, nil, 0
}

type cleanFrame struct {
	o   *cleanObj
	inv Invocation
}

// Step is clean: accesses belong in the granted window.
func (f *cleanFrame) Step(p *Proc) (any, int) {
	p.Access("r", true)
	f.o.r.WriteW(p, f.inv.Arg)
	return nil, 1
}

func (f *cleanFrame) Fork() Frame { return f }

// accessInBegin declares a footprint in the invocation window: flagged.
type accessInBegin struct{ r *register }

func (o *accessInBegin) Begin(p *Proc, inv Invocation) (Frame, any, int) {
	p.Access("r", true) // want `Begin declares a footprint in the invocation window`
	return nil, nil, 1
}

// windowInBegin calls a base window method from Begin: flagged.
type windowInBegin struct{ r *register }

func (o *windowInBegin) Begin(p *Proc, inv Invocation) (Frame, any, int) {
	return nil, o.r.ReadW(p), 1 // want `Begin calls the window method ReadW in the invocation window`
}

// execInBegin performs the blocking handshake from Begin: flagged.
type execInBegin struct{ r *register }

func (o *execInBegin) Begin(p *Proc, inv Invocation) (Frame, any, int) {
	var v any
	p.Exec("read", func() { // want `continuation Begin calls Exec`
		v = o.r.val
	})
	return nil, v, 1
}

// execInStep performs the blocking handshake from Step: flagged.
type execFrame struct{ o *execInBegin }

func (f *execFrame) Step(p *Proc) (any, int) {
	p.Exec("write", func() {}) // want `continuation Step calls Exec`
	return nil, 1
}

func (f *execFrame) Fork() Frame { return f }

// exempted matches the Begin shape but is not a sim continuation; the
// pragma waives the contract.
type exempted struct{ r *register }

//slx:nostepwindow fixture: not a sim continuation method
func (o *exempted) Begin(p *Proc, inv Invocation) (Frame, any, int) {
	p.Access("r", true)
	return nil, nil, 1
}

// otherShape has the Step name but not the continuation signature:
// ignored.
type otherShape struct{}

func (o *otherShape) Step(e any) error {
	p := &Proc{}
	p.Exec("x", func() {})
	return nil
}

var _ = []any{
	(*cleanObj).Begin,
	(*accessInBegin).Begin,
	(*windowInBegin).Begin,
	(*execInBegin).Begin,
	(*execFrame).Step,
	(*exempted).Begin,
	(*otherShape).Step,
}
