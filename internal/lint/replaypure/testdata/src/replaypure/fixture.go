// Package replaypure is the analyzer fixture: step closures in every
// guard state, with a self-contained stand-in for sim.Proc.
package replaypure

// Proc stands in for sim.Proc.
type Proc struct{}

// Exec runs one step closure.
func (p *Proc) Exec(desc string, step func()) { step() }

// Access declares a footprint entry.
func (p *Proc) Access(name string, write bool) {}

// Observe records the step's observed value.
func (p *Proc) Observe(v any) {}

// Replaying reports whether a session rebuild is re-executing steps.
func (p *Proc) Replaying() bool { return false }

// Replayed answers a rebuild step's read from the recorded history.
func (p *Proc) Replayed() any { return nil }

type register struct{ val int }

// readGuarded is the canonical idiom: clean.
func (r *register) readGuarded(p *Proc) int {
	var v int
	p.Exec("read", func() {
		if p.Replaying() {
			v, _ = p.Replayed().(int)
			return
		}
		p.Access("r", false)
		v = r.val
		p.Observe(v)
	})
	return v
}

// readUnguarded declares its access with no Replaying check: flagged.
func (r *register) readUnguarded(p *Proc) int {
	var v int
	p.Exec("read", func() {
		p.Access("r", false) // want `without a preceding Replaying guard`
		v = r.val
		p.Observe(v)
	})
	return v
}

// writeInRebuild touches shared state on the rebuild path: flagged.
func (r *register) writeInRebuild(p *Proc, v int) {
	p.Exec("write", func() {
		if p.Replaying() {
			p.Access("r", true) // want `reachable while Proc\.Replaying is true`
			return
		}
		p.Access("r", true)
		r.val = v
	})
}

// readInverted guards with the negated form: clean.
func (r *register) readInverted(p *Proc) int {
	var v int
	p.Exec("read", func() {
		if !p.Replaying() {
			p.Access("r", false)
			v = r.val
			p.Observe(v)
		} else {
			v, _ = p.Replayed().(int)
		}
	})
	return v
}

// readSessionless never runs under a session; the whole function is
// exempted.
//
//slx:noreplayguard fixture: object is never snapshotted
func (r *register) readSessionless(p *Proc) int {
	var v int
	p.Exec("read", func() {
		p.Access("r", false)
		v = r.val
	})
	return v
}

var _ = []any{
	(*register).readGuarded,
	(*register).readUnguarded,
	(*register).writeInRebuild,
	(*register).readInverted,
	(*register).readSessionless,
}
