package replaypure_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/replaypure"
)

func TestReplayPure(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), replaypure.Analyzer, "replaypure")
}
