// Package replaypure enforces the continuation runtime's window-purity
// contract (sim.Stepped). Operations of session-capable objects run as
// resumable frames: Begin executes the invocation window, each
// Frame.Step call executes one access window, and the engine — not a
// per-process goroutine — grants the windows. Two structural rules keep
// a continuation translation faithful to its blocking oracle:
//
//   - The invocation window carries no footprint: Begin bodies must not
//     declare accesses (Proc.Access, internal/base's declare helper, or
//     any base window method such as ReadW/WriteW/CompareAndSwapW). A
//     Begin that touched shared state would give the operation an extra
//     scheduler-visible step the oracle does not have, desynchronizing
//     schedules, footprints and fingerprints between the two execution
//     engines. Proc.Observe IS allowed: local state that steers the
//     operation (e.g. a transaction's active flag) is folded into the
//     fingerprint in the invocation window by both forms.
//
//   - Continuation code never performs the scheduler handshake: Begin
//     and Step bodies must not call Proc.Exec / Stepper.Exec. Their
//     windows are already granted by the dispatch loop; Exec is the
//     blocking-form handshake and panics under direct dispatch.
//
// The analyzer identifies continuation methods by shape: a method named
// Begin taking (*Proc, Invocation) with three results, or a method
// named Step taking a single *Proc with two results. Methods that match
// the shape but are not sim continuations may exempt themselves with
// //slx:nostepwindow and a reason.
package replaypure

import (
	"go/ast"

	"repro/internal/lint/analysis"
	"repro/internal/lint/pragma"
)

// Analyzer is the replaypure check.
var Analyzer = &analysis.Analyzer{
	Name: "replaypure",
	Doc:  "continuation Begin windows must declare no accesses, and Begin/Step must never call the blocking Exec handshake",
	Run:  run,
}

// method kinds recognized by contKind.
const (
	notCont = iota
	beginMethod
	stepMethod
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			kind := contKind(fn)
			if kind == notCont {
				continue
			}
			if pragma.Has(fn.Doc, "nostepwindow") {
				continue
			}
			checkBody(pass, fn, kind)
		}
	}
	return nil
}

// checkBody scans one continuation method body for contract violations.
func checkBody(pass *analysis.Pass, fn *ast.FuncDecl, kind int) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isExecCall(call) {
			pass.Reportf(call.Pos(), "continuation %s calls Exec: its windows are granted by the dispatch loop, so the blocking handshake would panic; perform the access with a window method (ReadW, WriteW, ...) or Proc.Access instead (or annotate the method //slx:nostepwindow)", fn.Name.Name)
			return true
		}
		if kind != beginMethod {
			return true
		}
		if isAccessCall(call) {
			pass.Reportf(call.Pos(), "Begin declares a footprint in the invocation window: the oracle's invocation window performs no access, so move this into the frame's first Step (or annotate the method //slx:nostepwindow)")
		} else if name, ok := windowCall(call); ok {
			pass.Reportf(call.Pos(), "Begin calls the window method %s in the invocation window: the oracle's invocation window performs no access, so move this into the frame's first Step (or annotate the method //slx:nostepwindow)", name)
		}
		return true
	})
}

// contKind classifies a method declaration: Stepped.Begin-shaped,
// Frame.Step-shaped, or neither. Shapes are matched structurally —
// name, arity and a *Proc first parameter — because the analyzer runs
// without type information.
func contKind(fn *ast.FuncDecl) int {
	params := fn.Type.Params.List
	results := 0
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			if n := len(f.Names); n > 0 {
				results += n
			} else {
				results++
			}
		}
	}
	args := 0
	for _, f := range params {
		if n := len(f.Names); n > 0 {
			args += n
		} else {
			args++
		}
	}
	switch fn.Name.Name {
	case "Begin":
		if args == 2 && results == 3 && len(params) > 0 && isProcPtr(params[0].Type) {
			return beginMethod
		}
	case "Step":
		if args == 1 && results == 2 && len(params) == 1 && isProcPtr(params[0].Type) {
			return stepMethod
		}
	}
	return notCont
}

// isProcPtr matches *Proc, *sim.Proc and *run.Proc parameter types.
func isProcPtr(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := star.X.(type) {
	case *ast.Ident:
		return x.Name == "Proc"
	case *ast.SelectorExpr:
		return x.Sel.Name == "Proc"
	}
	return false
}

// isExecCall matches the blocking handshake `.Exec(desc, func(){...})`.
func isExecCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Exec" && len(call.Args) == 2
}

// isAccessCall matches the footprint declaration forms: a .Access
// method call (sim.Proc) or internal/base's declare helper.
func isAccessCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Access"
	case *ast.Ident:
		return fun.Name == "declare"
	}
	return false
}

// windowMethods is the base-object window-form vocabulary: every one
// declares a footprint for the window it runs in.
var windowMethods = map[string]bool{
	"ReadW": true, "WriteW": true, "CompareAndSwapW": true, "SwapW": true,
	"TestAndSetW": true, "ResetW": true, "AddW": true, "UpdateW": true,
	"ScanW": true,
}

// windowCall matches calls of base window methods (method name ending
// in W from the known vocabulary) and returns the method name.
func windowCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !windowMethods[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}
