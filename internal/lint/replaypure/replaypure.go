// Package replaypure enforces the session-rebuild purity contract
// (sim.Snapshottable, rule 3): inside a base-object step closure —
// a function literal passed to Proc.Exec / Stepper.Exec — the real
// shared-state work must be skipped while a session restore is
// re-executing the pending operation. The idiom is a leading guard:
//
//	p.Exec("read", func() {
//		if p.Replaying() {
//			v = p.Replayed()
//			return
//		}
//		p.Access("r", false)
//		v = r.val
//		p.Observe(v)
//	})
//
// Two violations are flagged, both anchored on the footprint
// declaration (Proc.Access, or internal/base's declare helper) because
// every step closure that touches shared state declares it:
//
//   - an Access call with no dominating Replaying guard: the closure
//     would re-run its real accesses during a rebuild, desynchronizing
//     the restored state from the recorded history;
//   - an Access call inside the Replaying branch itself: rebuild steps
//     must answer reads from Proc.Replayed and mutate nothing.
//
// Objects that are never executed under a session may exempt a whole
// function with //slx:noreplayguard and a reason.
package replaypure

import (
	"go/ast"

	"repro/internal/lint/analysis"
	"repro/internal/lint/pragma"
)

// Analyzer is the replaypure check.
var Analyzer = &analysis.Analyzer{
	Name: "replaypure",
	Doc:  "step closures must guard Proc.Access (and real mutations) behind the Proc.Replaying rebuild check",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pragma.Has(fn.Doc, "noreplayguard") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lit := execClosure(call); lit != nil {
					checkClosure(pass, lit)
					return false // the closure's own Exec nests are handled recursively
				}
				return true
			})
		}
	}
	return nil
}

// execClosure matches `s.Exec(desc, func() { ... })` and returns the
// step closure, or nil.
func execClosure(call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Exec" || len(call.Args) != 2 {
		return nil
	}
	lit, ok := call.Args[1].(*ast.FuncLit)
	if !ok {
		return nil
	}
	return lit
}

// checkClosure walks the closure's statements tracking whether
// execution is dominated by a not-Replaying guard (guarded) or is on
// the Replaying branch itself (replaying).
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	walkStmts(pass, lit.Body.List, false, false)
}

// walkStmts scans a statement list. guarded means a Replaying check
// already diverted rebuild steps away from this path; replaying means
// this path only runs while a rebuild is active.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, guarded, replaying bool) {
	for _, stmt := range stmts {
		guarded = walkStmt(pass, stmt, guarded, replaying)
	}
}

// walkStmt scans one statement and returns the guard state for the
// statements that follow it.
func walkStmt(pass *analysis.Pass, stmt ast.Stmt, guarded, replaying bool) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		switch replayingCond(s.Cond) {
		case 1: // if Replaying() { ... }
			walkStmts(pass, s.Body.List, guarded, true)
			walkElse(pass, s.Else, true, replaying)
			if terminates(s.Body) {
				return true // the rebuild path returned; the rest is live-only
			}
			return guarded
		case -1: // if !Replaying() { ... }
			walkStmts(pass, s.Body.List, true, replaying)
			walkElse(pass, s.Else, guarded, true)
			return guarded
		default:
			walkStmts(pass, s.Body.List, guarded, replaying)
			walkElse(pass, s.Else, guarded, replaying)
			return guarded
		}
	case *ast.BlockStmt:
		walkStmts(pass, s.List, guarded, replaying)
	case *ast.ForStmt:
		walkStmts(pass, s.Body.List, guarded, replaying)
	case *ast.RangeStmt:
		walkStmts(pass, s.Body.List, guarded, replaying)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, guarded, replaying)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, guarded, replaying)
			}
		}
	default:
		checkLeaf(pass, stmt, guarded, replaying)
	}
	return guarded
}

// walkElse dispatches an else branch (a block or a chained if).
func walkElse(pass *analysis.Pass, els ast.Stmt, guarded, replaying bool) {
	switch e := els.(type) {
	case nil:
	case *ast.BlockStmt:
		walkStmts(pass, e.List, guarded, replaying)
	case *ast.IfStmt:
		walkStmt(pass, e, guarded, replaying)
	}
}

// checkLeaf reports Access calls inside a non-branching statement.
func checkLeaf(pass *analysis.Pass, stmt ast.Stmt, guarded, replaying bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isAccessCall(call) {
			return true
		}
		if replaying {
			pass.Reportf(call.Pos(), "Proc.Access reachable while Proc.Replaying is true: rebuild steps must answer reads from Proc.Replayed and perform no real accesses or mutations")
		} else if !guarded {
			pass.Reportf(call.Pos(), "step closure declares an access without a preceding Replaying guard: start the closure with `if replaying { ...; return }` so session rebuilds skip real accesses and mutations (or annotate the function //slx:noreplayguard)")
		}
		return true
	})
}

// terminates reports whether a block always leaves the closure: its
// last statement is a return or a panic call.
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// isAccessCall matches the footprint declaration forms: a .Access
// method call (sim.Proc) or internal/base's declare helper.
func isAccessCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Access"
	case *ast.Ident:
		return fun.Name == "declare"
	}
	return false
}

// replayingCond classifies an if condition: 1 for a Replaying check,
// -1 for its negation, 0 for anything else.
func replayingCond(cond ast.Expr) int {
	switch c := cond.(type) {
	case *ast.CallExpr:
		if isReplayingCall(c) {
			return 1
		}
	case *ast.UnaryExpr:
		if inner, ok := c.X.(*ast.CallExpr); ok && c.Op.String() == "!" && isReplayingCall(inner) {
			return -1
		}
	}
	return 0
}

// isReplayingCall matches .Replaying() (sim.Proc) and internal/base's
// replaying(s) helper.
func isReplayingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Replaying"
	case *ast.Ident:
		return fun.Name == "replaying"
	}
	return false
}
