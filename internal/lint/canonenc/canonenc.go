// Package canonenc enforces the canonical-encoding contract of digest
// and fingerprint code: state digests must be built from the injective
// primitives in internal/history (AppendCanonical and the
// DigestSeed/DigestByte/DigestWord family), never from fmt renderings
// (%v space-joins composite elements, so []string{"x y"} and
// []string{"x","y"} collide), string joins (variable content can shift
// component boundaries), hash/fnv, or hand-rolled FNV arithmetic (four
// divergent copies of the constants were consolidated once already).
//
// Scope — the code whose output feeds cache keys and state dedup:
//
//   - the digest homes, whole-file: internal/history/digest.go,
//     internal/safety/digest.go, internal/sim/fingerprint.go;
//   - every StateDigest or Fingerprint method body, anywhere;
//   - every function whose name mentions Digest or Canonical.
//
// The one legitimate home of the raw FNV constants carries
// //slx:rawdigest on its declaration.
package canonenc

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/pragma"
)

// Analyzer is the canonenc check.
var Analyzer = &analysis.Analyzer{
	Name: "canonenc",
	Doc:  "digest/fingerprint code must use the canonical injective encoder, not fmt/%v, string joins, or raw FNV arithmetic",
	Run:  run,
}

// scopedFiles are the whole-file digest homes, matched by path suffix.
var scopedFiles = []string{
	"internal/history/digest.go",
	"internal/safety/digest.go",
	"internal/sim/fingerprint.go",
}

// fnvConstants are the FNV offset bases and primes (64- and 32-bit)
// whose literal appearance marks hand-rolled digest arithmetic.
var fnvConstants = map[uint64]bool{
	14695981039346656037: true, // FNV-1a 64-bit offset basis
	1099511628211:        true, // FNV 64-bit prime
	2166136261:           true, // FNV-1a 32-bit offset basis
	16777619:             true, // FNV 32-bit prime
}

// forbiddenFmt are the fmt rendering entry points that defeat
// injectivity.
var forbiddenFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if fileScoped(filename) {
			for _, decl := range file.Decls {
				if pragma.Has(declDoc(decl), "rawdigest") {
					continue
				}
				inspect(pass, decl)
			}
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcScoped(fn) {
				continue
			}
			if pragma.Has(fn.Doc, "rawdigest") {
				continue
			}
			inspect(pass, fn.Body)
		}
	}
	return nil
}

// fileScoped reports whether the file is one of the whole-file digest
// homes.
func fileScoped(filename string) bool {
	slash := filepath.ToSlash(filename)
	for _, s := range scopedFiles {
		if strings.HasSuffix(slash, s) {
			return true
		}
	}
	return false
}

// funcScoped reports whether a function's body is digest code by name:
// the StateDigest/Fingerprint hook methods, and anything calling
// itself a digest or canonical encoder.
func funcScoped(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if fn.Recv != nil && (name == "StateDigest" || name == "Fingerprint") {
		return true
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "digest") || strings.Contains(lower, "canonical")
}

// declDoc returns a declaration's doc comment group.
func declDoc(decl ast.Decl) *ast.CommentGroup {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Doc
	case *ast.GenDecl:
		return d.Doc
	}
	return nil
}

// inspect walks one scoped region and reports every forbidden
// construct.
func inspect(pass *analysis.Pass, node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.SelectorExpr:
			if pkgOf(pass.TypesInfo, n) == "hash/fnv" {
				pass.Reportf(n.Pos(), "hash/fnv in digest code: fold through history.DigestSeed/DigestByte/DigestWord so every digest shares one FNV home")
				return false
			}
		case *ast.BasicLit:
			if n.Kind == token.INT && isFNVConstant(n.Value) {
				pass.Reportf(n.Pos(), "raw FNV constant in digest code: use history.DigestSeed/DigestByte/DigestWord (their one home carries //slx:rawdigest)")
			}
		}
		return true
	})
}

// checkCall flags fmt renderings and string joins.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch pkgOf(pass.TypesInfo, sel) {
	case "fmt":
		if forbiddenFmt[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "fmt.%s in digest code: fmt renderings are not injective (%%v space-joins composites); encode with history.AppendCanonical", sel.Sel.Name)
		}
	case "strings":
		if sel.Sel.Name == "Join" {
			pass.Reportf(call.Pos(), "strings.Join in digest code: joined content can shift component boundaries; fold length-delimited parts with the history.Digest* primitives")
		}
	}
}

// pkgOf resolves the package path of a selector's qualifier, or "".
func pkgOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isFNVConstant parses an integer literal and tests it against the
// known FNV offsets and primes.
func isFNVConstant(lit string) bool {
	v, err := strconv.ParseUint(strings.ReplaceAll(lit, "_", ""), 0, 64)
	if err != nil {
		return false
	}
	return fnvConstants[v]
}
