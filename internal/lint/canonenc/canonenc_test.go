package canonenc_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/canonenc"
)

func TestCanonEnc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), canonenc.Analyzer, "canonenc")
}
