// Package canonenc is the analyzer fixture: forbidden constructs
// inside digest-scoped functions, the same constructs left alone
// outside scope, and the //slx:rawdigest exemption.
package canonenc

import (
	"fmt"
	"hash/fnv"
	"strings"
)

type mon struct{ parts []string }

// digestParts is scoped by name ("digest").
func digestParts(parts []string) uint64 {
	h := uint64(14695981039346656037)    // want `raw FNV constant`
	joined := strings.Join(parts, ",")   // want `strings\.Join in digest code`
	rendered := fmt.Sprintf("%v", parts) // want `fmt\.Sprintf in digest code`
	hasher := fnv.New64a()               // want `hash/fnv in digest code`
	_, _ = hasher.Write([]byte(joined + rendered))
	return h
}

// StateDigest is scoped as a hook method body.
func (m *mon) StateDigest() (uint64, bool) {
	return uint64(len(fmt.Sprint(m.parts))), true // want `fmt\.Sprint in digest code`
}

// digestByteImpl is the fixture's primitive home: the raw constant is
// exempt.
//
//slx:rawdigest fixture: the primitives' one home
func digestByteImpl(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * 1099511628211
}

// render is out of scope: fmt and joins are fine in display code.
func render(parts []string) string {
	return fmt.Sprintf("%v", strings.Join(parts, ","))
}

var _ = []any{digestParts, digestByteImpl, render, (*mon)(nil)}
