package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Store is the results store: an in-memory job table with an optional
// JSON-file spill directory. Every mutation goes through the store so
// handlers always observe a consistent job; reads return copies. With a
// spill directory, terminal jobs are written to job-<id>.json as they
// finish and loaded back on startup, so a restarted daemon still serves
// past results (their IDs are skipped by the ID counter).
type Store struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	dir     string   // spill directory, "" for memory-only
	next    int      // next job ID ordinal
	skipped []string // spill files skipped as corrupt on the last load
}

// NewStore opens a store. dir is the spill directory ("" disables
// spilling); existing job-*.json files in it are loaded. A truncated or
// corrupt record — a daemon killed mid-crash leaves those — is skipped
// with a warning rather than blocking startup: losing one past result
// beats refusing to serve any. Leftover .tmp files from torn
// write-then-rename spills are removed.
func NewStore(dir string) (*Store, error) {
	s := &Store{jobs: make(map[string]*Job), dir: dir, next: 1}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spill dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: spill dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".json.tmp") {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		// The ordinal advances even for a record that turns out corrupt,
		// so a fresh job can never reuse its ID and silently resurrect
		// the bad file.
		if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "job-"), ".json")); err == nil && n >= s.next {
			s.next = n + 1
		}
		if err := s.loadSpill(name); err != nil {
			s.skipped = append(s.skipped, name)
			fmt.Fprintf(os.Stderr, "service: spill load %s: skipping corrupt record: %v\n", name, err)
		}
	}
	return s, nil
}

// loadSpill reads and installs one spilled job; any failure marks the
// record corrupt.
func (s *Store) loadSpill(name string) error {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.ID == "" {
		return fmt.Errorf("record has no job ID")
	}
	s.jobs[j.ID] = &j
	return nil
}

// SkippedSpills returns the spill files the last load skipped as
// corrupt, in directory order.
func (s *Store) SkippedSpills() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.skipped...)
}

// Add registers a new job under a fresh ID and returns a copy.
func (s *Store) Add(spec JobSpec) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("job-%d", s.next)
	s.next++
	//slx:nondet job submission timestamp: API metadata, never reaches exploration results
	j := &Job{ID: id, Spec: spec, State: StateQueued, Submitted: time.Now()}
	s.jobs[id] = j
	return *j
}

// Delete removes a job (used to roll back an admission the queue could
// not take).
func (s *Store) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// Get returns a copy of the job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of all jobs, ordered by ID ordinal.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return jobOrdinal(out[i].ID) < jobOrdinal(out[k].ID) })
	return out
}

// Update applies fn to the job under the store lock and spills it when
// fn left it in a terminal state. The *Job passed to fn is the stored
// one; fn must not retain it.
func (s *Store) Update(id string, fn func(*Job)) (Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, false
	}
	fn(j)
	cp := *j
	s.mu.Unlock()
	if s.dir != "" && terminal(cp.State) {
		s.spill(cp)
	}
	return cp, true
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// spill writes one terminal job to its JSON file (write-then-rename so
// a crashed daemon never leaves a torn file for the next load).
func (s *Store) spill(j Job) {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(s.dir, j.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// jobOrdinal extracts the numeric part of a job ID for ordering.
func jobOrdinal(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}
