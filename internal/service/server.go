package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/slx"
)

// Config configures a Server.
type Config struct {
	// Workers is the pool size: the number of goroutines that run jobs
	// and absorb engine worker-loop offers (default 4).
	Workers int
	// Queue is the job queue capacity; submits beyond it get HTTP 429
	// (default 64).
	Queue int
	// SpillDir, when non-empty, is where terminal jobs are written as
	// job-<id>.json and reloaded from on startup.
	SpillDir string
}

// Server is the slxd exploration service: the HTTP API, the bounded
// worker pool, the results store, and the metrics registry.
//
// Sharding happens beneath the slx API. A job occupies one pool worker,
// which drives a plain slx.Checker; when the job's spec asks for more
// than one engine worker, the extra engine loops — stolen-subtree
// workers for exhaustive jobs, chunk-claiming sampling lanes — are
// offered to the pool via slx.WithExecutor. Idle pool workers accept
// offers and run loops for whichever job made them; a saturated pool
// declines, and the job still completes on its own worker (engine loop
// 0 always runs inline). Either way the report is the one the slx API
// defines: verdicts, witnesses and deterministic counters match an
// in-process run by construction.
type Server struct {
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux

	jobs chan string // queued job IDs
	// boost carries offered engine worker loops. It is unbuffered on
	// purpose: an offer succeeds only when an idle worker is already
	// receiving, so an accepted loop always runs — nothing can strand
	// in a buffer after workers exit, which would hang the engine's
	// WaitGroup.
	boost chan func()

	mu      sync.Mutex
	closing bool
	cancels map[string]context.CancelFunc
	tiers   map[string]*slx.VisitedTier

	// baseCtx parents every job context; baseCancel is the shutdown
	// hard-stop.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// NewServer builds a server and starts its worker pool.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	store, err := NewStore(cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:      store,
		metrics:    NewMetrics(),
		jobs:       make(chan string, cfg.Queue),
		boost:      make(chan func()),
		cancels:    make(map[string]context.CancelFunc),
		tiers:      make(map[string]*slx.VisitedTier),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/targets", s.handleTargets)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Store returns the results store.
func (s *Server) Store() *Store { return s.store }

// Shutdown drains the service: no new submits, queued jobs still run,
// then the pool exits. If ctx expires before the drain finishes, every
// job still queued or running is cancelled — each stores its partial,
// Interrupted result — and Shutdown waits for that (fast) wind-down
// before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closing {
		s.closing = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// worker is one pool goroutine: it runs queued jobs and, while idle,
// accepts engine worker loops offered by jobs running elsewhere in the
// pool.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case id, ok := <-s.jobs:
			if !ok {
				return
			}
			s.runJob(id)
		case loop := <-s.boost:
			loop()
		}
	}
}

// offer is the slx.WithExecutor hook: hand an engine worker loop to an
// idle pool worker, or decline so the engine folds the loop's share of
// work into its remaining lanes.
func (s *Server) offer(loop func()) bool {
	select {
	case s.boost <- loop:
		return true
	default:
		return false
	}
}

// tierFor returns the shared visited tier for a spec's target
// configuration, creating it on first use. The key is target plus the
// spec's procs override: visited entries are sound to share only
// between checkers with identical object, environment and monitor
// configurations, and within a target those are determined by the
// process count (budgets such as depth and crashes are carried in the
// entries themselves and compose by domination).
func (s *Server) tierFor(spec JobSpec) *slx.VisitedTier {
	key := fmt.Sprintf("%s/%d", spec.Target, spec.Procs)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tiers[key]
	if !ok {
		t = slx.NewVisitedTier()
		s.tiers[key] = t
	}
	return t
}

// checker builds the job's checker and property: target options first,
// then the spec's (so a spec overrides target defaults), then the
// service-level context, shared tier and executor hook.
func (s *Server) checker(ctx context.Context, spec JobSpec) (*slx.Checker, slx.Property, error) {
	t, ok := LookupTarget(spec.Target)
	if !ok {
		return nil, nil, fmt.Errorf("unknown target %q (targets: %s)", spec.Target, strings.Join(TargetNames(), ", "))
	}
	opts := append(t.Options(), spec.Options()...)
	if spec.SharedCache {
		opts = append(opts, slx.WithVisitedTier(s.tierFor(spec)))
	}
	if ctx != nil {
		opts = append(opts, slx.WithContext(ctx))
	}
	opts = append(opts, slx.WithExecutor(s.offer))
	return slx.New(opts...), t.Property(), nil
}

// Submit validates and enqueues a job. The error string of a rejected
// spec is exactly what the in-process checker would return from
// ValidateExplore, so a client can fix a spec against either surface.
func (s *Server) Submit(spec JobSpec) (Job, int, error) {
	if err := spec.normalize(); err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	c, prop, err := s.checker(nil, spec)
	if err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	if err := c.ValidateExplore(prop); err != nil {
		return Job{}, http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return Job{}, http.StatusServiceUnavailable, errors.New("service is shutting down")
	}
	j := s.store.Add(spec)
	select {
	case s.jobs <- j.ID:
	default:
		s.store.Delete(j.ID)
		return Job{}, http.StatusTooManyRequests, fmt.Errorf("job queue full (%d queued)", cap(s.jobs))
	}
	s.metrics.JobsQueued.Add(1)
	return j, http.StatusAccepted, nil
}

// Cancel cancels a job: a queued job goes terminal immediately, a
// running one has its context cancelled and stores its partial result
// when the engine unwinds. Terminal jobs are left as they are.
func (s *Server) Cancel(id string) (Job, bool) {
	fromQueue := false
	j, ok := s.store.Update(id, func(j *Job) {
		if j.State == StateQueued {
			j.State = StateCancelled
			j.Error = "cancelled before start"
			//slx:nondet job lifecycle timestamp: API metadata, never reaches exploration results
			j.Finished = time.Now()
			fromQueue = true
		}
	})
	if !ok {
		return Job{}, false
	}
	if fromQueue {
		s.metrics.JobsQueued.Add(-1)
		s.metrics.JobsCancelled.Add(1)
	}
	s.mu.Lock()
	cancel := s.cancels[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, true
}

// runJob executes one queued job on the calling pool worker.
func (s *Server) runJob(id string) {
	// Claim the job; a queued job cancelled before pickup stays
	// cancelled and is not run.
	//slx:nondet job duration measurement: metrics only, never reaches exploration results
	start := time.Now()
	claimed := false
	s.store.Update(id, func(j *Job) {
		if j.State == StateQueued {
			j.State = StateRunning
			j.Started = start
			claimed = true
		}
	})
	if !claimed {
		return
	}
	s.metrics.JobsQueued.Add(-1)
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	j, _ := s.store.Get(id)
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.cancels[id] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
		cancel()
	}()

	c, prop, err := s.checker(ctx, j.Spec)
	if err != nil {
		// Unreachable for queued jobs (Submit validated the spec), but
		// kept for defense in depth.
		s.finishJob(id, start, nil, err)
		return
	}
	rep, err := c.Explore(prop)
	s.finishJob(id, start, rep, err)
}

// finishJob classifies a job's outcome, stores it, and records metrics.
func (s *Server) finishJob(id string, start time.Time, rep *slx.Report, err error) {
	//slx:nondet job completion timestamp: API metadata, never reaches exploration results
	end := time.Now()
	var res *Result
	if rep != nil {
		res = NewResult(rep)
	}
	state := StateDone
	msg := ""
	if err != nil {
		msg = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state = StateCancelled
		} else {
			state = StateFailed
			res = nil
		}
	}
	s.store.Update(id, func(j *Job) {
		j.State = state
		j.Finished = end
		j.DurationMs = end.Sub(start).Milliseconds()
		j.Result = res
		j.Error = msg
	})
	switch state {
	case StateDone:
		s.metrics.JobsDone.Add(1)
	case StateCancelled:
		s.metrics.JobsCancelled.Add(1)
	case StateFailed:
		s.metrics.JobsFailed.Add(1)
	}
	if rep != nil {
		s.metrics.Prefixes.Add(int64(rep.Prefixes))
		s.metrics.CacheHits.Add(int64(rep.CacheHits))
		s.metrics.Schedules.Add(int64(rep.Schedules))
	}
	s.metrics.ObserveJob(end.Sub(start))
}

// --- HTTP handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	j, status, err := s.Submit(spec)
	if err != nil {
		httpError(w, status, err)
		return
	}
	writeJSON(w, status, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	type targetInfo struct {
		Name  string `json:"name"`
		About string `json:"about"`
	}
	var out []targetInfo
	for _, name := range TargetNames() {
		t, _ := LookupTarget(name)
		out = append(out, targetInfo{Name: t.Name, About: t.About})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.metrics.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes {"error": "..."} with the given status. The message
// is the error's text verbatim — for rejected specs that is exactly the
// in-process ValidateExplore message.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
