package service_test

// End-to-end tests of the slxd exploration service. The central claim
// is parity by construction: a job submitted over HTTP returns exactly
// the report an in-process slx.Checker produces for the same target and
// spec — same verdicts, same witness schedules, same deterministic
// counters — because the daemon runs each job through the normal
// Checker entry point and shards only via the executor-offer hooks.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/slx"
)

// newTestServer starts a service plus an HTTP front end.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv, err := service.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, hs
}

// doJSON round-trips one request; it returns the status code and decodes
// a 2xx body into out when non-nil.
func doJSON(t *testing.T, method, url string, in, out any) (int, string) {
	t.Helper()
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode/100 == 2 && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
	}
	return resp.StatusCode, string(data)
}

// submit posts a job and requires admission.
func submit(t *testing.T, base string, spec service.JobSpec) service.Job {
	t.Helper()
	var j service.Job
	status, body := doJSON(t, http.MethodPost, base+"/v1/jobs", spec, &j)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, body)
	}
	return j
}

// await polls a job until it reaches a terminal state.
func await(t *testing.T, base, id string) service.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var j service.Job
		if status, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &j); status != http.StatusOK {
			t.Fatalf("get %s: status %d, body %s", id, status, body)
		}
		switch j.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// inProcess runs the same target+spec through a plain in-process
// checker, exactly as a client without a daemon would.
func inProcess(t *testing.T, spec service.JobSpec) *slx.Report {
	t.Helper()
	tgt, ok := service.LookupTarget(spec.Target)
	if !ok {
		t.Fatalf("unknown target %q", spec.Target)
	}
	rep, err := slx.New(append(tgt.Options(), spec.Options()...)...).Explore(tgt.Property())
	if err != nil {
		t.Fatalf("in-process explore: %v", err)
	}
	return rep
}

// requireParity compares a job's stored result against an in-process
// report field by field. Resims is excluded for multi-worker exhaustive
// runs (stolen-subtree seed replays depend on worker timing); every
// other compared counter is deterministic for the configurations the
// tests use.
func requireParity(t *testing.T, j service.Job, want *slx.Report, counterSet string) {
	t.Helper()
	if j.State != service.StateDone {
		t.Fatalf("job state %q (error %q), want done", j.State, j.Error)
	}
	got := j.Result
	if got == nil {
		t.Fatal("done job has no result")
	}
	if got.OK != want.OK() || got.Interrupted != want.Interrupted {
		t.Fatalf("ok/interrupted: got %v/%v, want %v/%v", got.OK, got.Interrupted, want.OK(), want.Interrupted)
	}
	counters := [][3]any{
		{"workers", got.Workers, want.Workers},
		{"schedules", got.Schedules, want.Schedules},
		{"distinct states", got.DistinctStates, want.DistinctStates},
		{"failing seed", int(got.FailingSeed), int(want.FailingSeed)},
	}
	switch counterSet {
	case "all":
		// Sequential (or sampling, which is worker-count independent):
		// every counter is deterministic.
		counters = append(counters, [3]any{"resims", got.Resims, want.Resims})
		fallthrough
	case "no-resims":
		// Clean multi-worker exhaustive: the explored set is the whole
		// tree, so everything but stolen-subtree re-simulation is
		// deterministic.
		counters = append(counters,
			[3]any{"prefixes", got.Prefixes, want.Prefixes},
			[3]any{"sim steps", got.SimSteps, want.SimSteps},
			[3]any{"event scans", got.EventScans, want.EventScans},
			[3]any{"pruned", got.Pruned, want.Pruned},
			[3]any{"cache hits", got.CacheHits, want.CacheHits})
	case "verdict-only":
		// Violating multi-worker exhaustive: how much work happens
		// before the preorder-least failure wins is timing-dependent,
		// but the verdict and witness are not.
	default:
		t.Fatalf("unknown counter set %q", counterSet)
	}
	for _, c := range counters {
		if c[1] != c[2] {
			t.Errorf("%s: daemon %v, in-process %v", c[0], c[1], c[2])
		}
	}
	if len(got.Verdicts) != len(want.Verdicts) {
		t.Fatalf("verdicts: daemon %d, in-process %d", len(got.Verdicts), len(want.Verdicts))
	}
	for i, v := range want.Verdicts {
		g := got.Verdicts[i]
		if g.Property != v.Property || g.Holds != v.Holds || g.Reason != v.Reason {
			t.Errorf("verdict %d: daemon %+v, in-process %+v", i, g, v)
		}
		if !reflect.DeepEqual(g.Witness, v.Witness) {
			t.Errorf("verdict %d witness: daemon %v, in-process %v", i, g.Witness, v.Witness)
		}
	}
	if !reflect.DeepEqual(got.Witness, want.Witness()) {
		t.Errorf("witness: daemon %v, in-process %v", got.Witness, want.Witness())
	}
}

// TestParityExhaustive: exhaustive jobs return the in-process report,
// counters included, across plain, POR+cache, and violating targets.
func TestParityExhaustive(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 2})
	cases := map[string]service.JobSpec{
		"lossyreg/violation": {Target: "lossyreg", Spec: slx.Spec{Depth: 8}},
		"lossyreg/por-cache": {Target: "lossyreg", Spec: slx.Spec{Depth: 8, POR: true, Cache: true}},
		"consensus/clean":    {Target: "consensus", Spec: slx.Spec{Depth: 7, POR: true, Cache: true}},
	}
	for name, spec := range cases {
		spec := spec
		t.Run(name, func(t *testing.T) {
			j := await(t, hs.URL, submit(t, hs.URL, spec).ID)
			requireParity(t, j, inProcess(t, spec), "all")
		})
	}
}

// TestParityMultiWorker: with engine workers > 1 the extra loops are
// offered to the daemon pool; sampling counters are worker-count
// independent by design, clean exhaustive ones except Resims likewise,
// and a violating exhaustive run keeps its deterministic verdict and
// preorder-least witness.
func TestParityMultiWorker(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 4})
	cases := map[string]struct {
		spec     service.JobSpec
		counters string
	}{
		"exhaustive/clean":     {service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 7, Workers: 4}}, "no-resims"},
		"exhaustive/violation": {service.JobSpec{Target: "lossyreg", Spec: slx.Spec{Depth: 8, Workers: 4}}, "verdict-only"},
		"sample": {service.JobSpec{Target: "queueblast",
			Spec: slx.Spec{Sample: true, Schedules: 2000, D: 3, Depth: 24, Seed: 1, Workers: 4}}, "all"},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			j := await(t, hs.URL, submit(t, hs.URL, tc.spec).ID)
			requireParity(t, j, inProcess(t, tc.spec), tc.counters)
		})
	}
}

// TestWitnessReplays: the witness schedule a sampled daemon job hands
// back replays in-process to the same failing verdict.
func TestWitnessReplays(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 2})
	spec := service.JobSpec{Target: "queueblast",
		Spec: slx.Spec{Sample: true, Schedules: 2000, D: 3, Depth: 24, Seed: 1}}
	j := await(t, hs.URL, submit(t, hs.URL, spec).ID)
	if j.Result == nil || j.Result.OK || len(j.Result.Witness) == 0 {
		t.Fatalf("expected a violating result with witness, got %+v", j.Result)
	}
	tgt, _ := service.LookupTarget(spec.Target)
	rep, err := slx.New(append(tgt.Options(), slx.WithMaxSteps(len(j.Result.Witness)+1))...).
		Replay(j.Result.Witness, tgt.Property())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.OK() {
		t.Fatalf("witness %v replayed clean", j.Result.Witness)
	}
	// The replay judge renders its reason slightly differently from the
	// exploration monitor ("event 16/16" vs "event 16"), so parity here
	// is on the failing property, not the message text.
	if want := j.Result.Verdicts[0]; rep.Verdicts[0].Property != want.Property {
		t.Errorf("replay failed %q, job failed %q", rep.Verdicts[0].Property, want.Property)
	}
}

// TestDurableQueueRecoveryJob: the crash–recovery showcase target. The
// roll-forward duplicate needs both budgets — a crash-only job is
// provably clean, a crash+recover job violates — and the daemon's
// witness (crash and recover decisions included) replays in-process to
// the same failing property.
func TestDurableQueueRecoveryJob(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 2})

	clean := service.JobSpec{Target: "durablequeue", Spec: slx.Spec{Depth: 12, Crashes: 1}}
	j := await(t, hs.URL, submit(t, hs.URL, clean).ID)
	requireParity(t, j, inProcess(t, clean), "all")
	if !j.Result.OK {
		t.Fatalf("crash-only job must be clean: %+v", j.Result.Verdicts)
	}

	viol := service.JobSpec{Target: "durablequeue", Spec: slx.Spec{Depth: 12, Crashes: 1, Recoveries: 1}}
	j = await(t, hs.URL, submit(t, hs.URL, viol).ID)
	requireParity(t, j, inProcess(t, viol), "all")
	if j.Result.OK {
		t.Fatal("crash+recover job must find the roll-forward duplicate")
	}
	tgt, _ := service.LookupTarget(viol.Target)
	rep, err := slx.New(append(tgt.Options(), slx.WithMaxSteps(len(j.Result.Witness)+1))...).
		Replay(j.Result.Witness, tgt.Property())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.OK() {
		t.Fatalf("witness %v replayed clean", j.Result.Witness)
	}
}

// TestValidationParity: a rejected spec gets HTTP 400 with exactly the
// message the in-process checker's validation produces.
func TestValidationParity(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 1})
	inProcessMsg := func(spec service.JobSpec, extra ...slx.Option) string {
		tgt, ok := service.LookupTarget(spec.Target)
		if !ok {
			t.Fatalf("unknown target %q", spec.Target)
		}
		opts := append(tgt.Options(), spec.Options()...)
		opts = append(opts, extra...)
		err := slx.New(opts...).ValidateExplore(tgt.Property())
		if err == nil {
			t.Fatalf("spec %+v unexpectedly valid in-process", spec)
		}
		return err.Error()
	}
	cases := map[string]struct {
		spec service.JobSpec
		want func() string
	}{
		"sample+por": {
			spec: service.JobSpec{Target: "lossyreg", Spec: slx.Spec{Sample: true, Schedules: 100, D: 2, POR: true}},
			want: func() string {
				return inProcessMsg(service.JobSpec{Target: "lossyreg", Spec: slx.Spec{Sample: true, Schedules: 100, D: 2, POR: true}})
			},
		},
		"sample+batch": {
			spec: service.JobSpec{Target: "lossyreg", Spec: slx.Spec{Sample: true, Schedules: 100, Batch: true}},
			want: func() string {
				return inProcessMsg(service.JobSpec{Target: "lossyreg", Spec: slx.Spec{Sample: true, Schedules: 100, Batch: true}})
			},
		},
		"sample/no-schedules": {
			spec: service.JobSpec{Target: "consensus", Mode: "sample"},
			want: func() string {
				return inProcessMsg(service.JobSpec{Target: "consensus", Spec: slx.Spec{Sample: true}})
			},
		},
		"batch+cache": {
			spec: service.JobSpec{Target: "consensus", Spec: slx.Spec{Batch: true, Cache: true}},
			want: func() string {
				return inProcessMsg(service.JobSpec{Target: "consensus", Spec: slx.Spec{Batch: true, Cache: true}})
			},
		},
		"shared-cache/no-cache": {
			spec: service.JobSpec{Target: "consensus", SharedCache: true},
			want: func() string {
				return inProcessMsg(service.JobSpec{Target: "consensus"}, slx.WithVisitedTier(slx.NewVisitedTier()))
			},
		},
		"negative-workers": {
			spec: service.JobSpec{Target: "consensus", Spec: slx.Spec{Workers: -2}},
			want: func() string {
				return inProcessMsg(service.JobSpec{Target: "consensus", Spec: slx.Spec{Workers: -2}})
			},
		},
		"unknown-target": {
			spec: service.JobSpec{Target: "nosuch"},
			want: func() string {
				return fmt.Sprintf("unknown target %q (targets: %s)", "nosuch", strings.Join(service.TargetNames(), ", "))
			},
		},
		"contradictory-mode": {
			spec: service.JobSpec{Target: "consensus", Mode: "exhaustive", Spec: slx.Spec{Sample: true, Schedules: 10}},
			want: func() string { return `mode "exhaustive" contradicts "sample": true` },
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			status, body := doJSON(t, http.MethodPost, hs.URL+"/v1/jobs", tc.spec, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", status, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &e); err != nil {
				t.Fatalf("error body %q: %v", body, err)
			}
			if want := tc.want(); e.Error != want {
				t.Errorf("message:\n  daemon:     %q\n  in-process: %q", e.Error, want)
			}
		})
	}
}

// TestConcurrentJobs pushes more jobs than pool slots through a small
// pool, mixing modes and engine worker counts, and requires every job
// to finish with the right verdict. Run under -race this is the
// concurrency certification of the queue, the offers, and the store.
func TestConcurrentJobs(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 2, Queue: 32})
	specs := []service.JobSpec{
		{Target: "lossyreg", Spec: slx.Spec{Depth: 8}},
		{Target: "consensus", Spec: slx.Spec{Depth: 6}},
		{Target: "lossyreg", Spec: slx.Spec{Depth: 8, Workers: 4}},
		{Target: "consensus", Spec: slx.Spec{Depth: 6, POR: true, Cache: true}},
		{Target: "queueblast", Spec: slx.Spec{Sample: true, Schedules: 1000, D: 3, Depth: 24, Seed: 1, Workers: 4}},
		{Target: "consensus", Spec: slx.Spec{Sample: true, Schedules: 500, D: 3, Depth: 8, Seed: 5}},
		{Target: "lossyreg", Spec: slx.Spec{Sample: true, Schedules: 500, D: 2, Depth: 10, Seed: 1}},
		{Target: "consensus", Spec: slx.Spec{Depth: 7, Workers: 2}},
	}
	wantOK := []bool{false, true, false, true, false, true, false, true}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			var j service.Job
			status, body := doJSON(t, http.MethodPost, hs.URL+"/v1/jobs", spec, &j)
			if status != http.StatusAccepted {
				t.Errorf("job %d: status %d body %s", i, status, body)
				return
			}
			ids[i] = j.ID
		}()
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		j := await(t, hs.URL, id)
		if j.State != service.StateDone {
			t.Errorf("job %d (%s): state %q error %q", i, id, j.State, j.Error)
			continue
		}
		if j.Result.OK != wantOK[i] {
			t.Errorf("job %d (%s %s): ok=%v, want %v", i, j.Spec.Target, j.Spec.Mode, j.Result.OK, wantOK[i])
		}
	}
}

// TestCancelRunning: DELETE on a running job stops it and stores the
// partial, Interrupted result.
func TestCancelRunning(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 1})
	// Exhaustive queueblast above depth 10 is astronomically larger
	// than any test budget: the job can only end by cancellation.
	j := submit(t, hs.URL, service.JobSpec{Target: "queueblast", Spec: slx.Spec{Depth: 12}})
	waitState(t, hs.URL, j.ID, service.StateRunning)
	if status, body := doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+j.ID, nil, nil); status != http.StatusOK {
		t.Fatalf("cancel: status %d body %s", status, body)
	}
	got := await(t, hs.URL, j.ID)
	if got.State != service.StateCancelled {
		t.Fatalf("state %q, want cancelled (error %q)", got.State, got.Error)
	}
	if got.Result == nil || !got.Result.Interrupted {
		t.Fatalf("cancelled job should store a partial Interrupted result, got %+v", got.Result)
	}
	if got.Result.Prefixes == 0 {
		t.Error("partial result reports zero explored prefixes")
	}
	if len(got.Result.Verdicts) != 0 {
		t.Errorf("partial exploration must not claim verdicts, got %v", got.Result.Verdicts)
	}
}

// TestJobTimeout: a job's wall-clock budget (spec timeout_ms →
// slx.WithTimeout) cuts it off the same way a DELETE does.
func TestJobTimeout(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 1})
	j := submit(t, hs.URL, service.JobSpec{Target: "queueblast", Spec: slx.Spec{Depth: 12, TimeoutMs: 150}})
	got := await(t, hs.URL, j.ID)
	if got.State != service.StateCancelled {
		t.Fatalf("state %q, want cancelled (error %q)", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("error %q should name the deadline", got.Error)
	}
	if got.Result == nil || !got.Result.Interrupted || got.Result.Prefixes == 0 {
		t.Fatalf("want partial Interrupted result with progress, got %+v", got.Result)
	}
}

// TestCancelQueued: DELETE on a still-queued job goes terminal without
// running.
func TestCancelQueued(t *testing.T) {
	srv, hs := newTestServer(t, service.Config{Workers: 1, Queue: 4})
	blocker := submit(t, hs.URL, service.JobSpec{Target: "queueblast", Spec: slx.Spec{Depth: 12}})
	waitState(t, hs.URL, blocker.ID, service.StateRunning)
	queued := submit(t, hs.URL, service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}})
	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+queued.ID, nil, nil); status != http.StatusOK {
		t.Fatalf("cancel queued: status %d", status)
	}
	got, _ := srv.Store().Get(queued.ID)
	if got.State != service.StateCancelled || got.Result != nil {
		t.Fatalf("queued job after cancel: state %q result %+v", got.State, got.Result)
	}
	doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+blocker.ID, nil, nil)
	await(t, hs.URL, blocker.ID)
}

// TestQueueFull: admissions beyond the queue capacity get 429 and leave
// no ghost job behind.
func TestQueueFull(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 1, Queue: 1})
	blocker := submit(t, hs.URL, service.JobSpec{Target: "queueblast", Spec: slx.Spec{Depth: 12}})
	waitState(t, hs.URL, blocker.ID, service.StateRunning)
	queued := submit(t, hs.URL, service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}})
	status, body := doJSON(t, http.MethodPost, hs.URL+"/v1/jobs", service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d body %s", status, body)
	}
	var jobs []service.Job
	doJSON(t, http.MethodGet, hs.URL+"/v1/jobs", nil, &jobs)
	if len(jobs) != 2 {
		t.Errorf("rejected submit left a ghost job: %d jobs listed", len(jobs))
	}
	doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+queued.ID, nil, nil)
	doJSON(t, http.MethodDelete, hs.URL+"/v1/jobs/"+blocker.ID, nil, nil)
	await(t, hs.URL, blocker.ID)
}

// TestShutdownDrains: a generous shutdown runs every queued job to
// completion before returning; submits during the drain get 503.
func TestShutdownDrains(t *testing.T) {
	srv, err := service.NewServer(service.Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, status, err := srv.Submit(service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}})
		if err != nil {
			t.Fatalf("submit %d: status %d, %v", i, status, err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		j, _ := srv.Store().Get(id)
		if j.State != service.StateDone {
			t.Errorf("job %s: state %q after drain, want done", id, j.State)
		}
	}
	if _, status, err := srv.Submit(service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}}); status != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: status %d err %v, want 503", status, err)
	}
}

// TestShutdownDeadline: when the drain deadline passes, running jobs
// are cancelled, their partial results stored, and Shutdown returns.
func TestShutdownDeadline(t *testing.T) {
	srv, err := service.NewServer(service.Config{Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	j, status, err := srv.Submit(service.JobSpec{Target: "queueblast", Spec: slx.Spec{Depth: 12}})
	if err != nil {
		t.Fatalf("submit: status %d, %v", status, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cur, _ := srv.Store().Get(j.ID); cur.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown: %v, want deadline exceeded", err)
	}
	got, _ := srv.Store().Get(j.ID)
	if got.State != service.StateCancelled || got.Result == nil || !got.Result.Interrupted {
		t.Fatalf("after hard drain: state %q result %+v", got.State, got.Result)
	}
}

// TestSharedCacheTier: a second exhaustive job on the same target with
// shared_cache hits the tier the first one filled, and still reports
// the same verdict.
func TestSharedCacheTier(t *testing.T) {
	_, hs := newTestServer(t, service.Config{Workers: 1})
	spec := service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 8, Cache: true}, SharedCache: true}
	a := await(t, hs.URL, submit(t, hs.URL, spec).ID)
	b := await(t, hs.URL, submit(t, hs.URL, spec).ID)
	if a.State != service.StateDone || b.State != service.StateDone {
		t.Fatalf("states %q/%q", a.State, b.State)
	}
	if b.Result.CacheHits == 0 {
		t.Error("second job should hit the shared visited tier")
	}
	if b.Result.Prefixes >= a.Result.Prefixes {
		t.Errorf("second job explored %d prefixes, first %d: tier saved nothing", b.Result.Prefixes, a.Result.Prefixes)
	}
	if a.Result.OK != b.Result.OK || len(a.Result.Verdicts) != len(b.Result.Verdicts) {
		t.Errorf("verdicts diverge under shared tier: %+v vs %+v", a.Result.Verdicts, b.Result.Verdicts)
	}
}

// TestSpillReload: terminal jobs written to the spill directory are
// served again by a restarted daemon, and new IDs do not collide.
func TestSpillReload(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1 := newTestServer(t, service.Config{Workers: 1, SpillDir: dir})
	spec := service.JobSpec{Target: "lossyreg", Spec: slx.Spec{Depth: 8}}
	first := await(t, hs1.URL, submit(t, hs1.URL, spec).ID)
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv1.Shutdown(ctx)

	_, hs2 := newTestServer(t, service.Config{Workers: 1, SpillDir: dir})
	var reloaded service.Job
	if status, body := doJSON(t, http.MethodGet, hs2.URL+"/v1/jobs/"+first.ID, nil, &reloaded); status != http.StatusOK {
		t.Fatalf("reloaded get: status %d body %s", status, body)
	}
	if reloaded.State != service.StateDone || !reflect.DeepEqual(reloaded.Result, first.Result) {
		t.Fatalf("reloaded job diverges: %+v vs %+v", reloaded, first)
	}
	second := submit(t, hs2.URL, spec)
	if second.ID == first.ID {
		t.Fatalf("restarted daemon reused job ID %s", second.ID)
	}
	await(t, hs2.URL, second.ID)
}

// TestSpillReloadToleratesCorruptRecords: a daemon killed mid-spill can
// leave truncated, garbage or torn files behind; the next start skips
// them with a warning, serves every intact record, and never hands out
// a job ID that would resurrect a skipped file.
func TestSpillReloadToleratesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1 := newTestServer(t, service.Config{Workers: 1, SpillDir: dir})
	spec := service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}}
	first := await(t, hs1.URL, submit(t, hs1.URL, spec).ID)
	hs1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv1.Shutdown(ctx)

	// Sabotage the directory the way a crash would: a truncated record,
	// pure garbage, an empty file, a record with no job ID, and a torn
	// .tmp from an interrupted write-then-rename.
	intact, err := os.ReadFile(filepath.Join(dir, first.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := map[string][]byte{
		"job-7.json":     intact[:len(intact)/2],
		"job-8.json":     []byte("not json at all"),
		"job-9.json":     nil,
		"job-10.json":    []byte(`{"state":"done"}`),
		"job-4.json.tmp": intact,
	}
	for name, data := range corrupt {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv2, hs2 := newTestServer(t, service.Config{Workers: 1, SpillDir: dir})
	var reloaded service.Job
	if status, body := doJSON(t, http.MethodGet, hs2.URL+"/v1/jobs/"+first.ID, nil, &reloaded); status != http.StatusOK {
		t.Fatalf("intact record lost behind corrupt neighbours: status %d body %s", status, body)
	}
	if !reflect.DeepEqual(reloaded.Result, first.Result) {
		t.Fatalf("reloaded job diverges: %+v vs %+v", reloaded, first)
	}
	skipped := srv2.Store().SkippedSpills()
	if len(skipped) != 4 {
		t.Fatalf("skipped %v, want the 4 corrupt records", skipped)
	}
	// The corrupt ordinals are burned: the next job must start past
	// job-10, and the torn .tmp must be gone.
	next := submit(t, hs2.URL, spec)
	for name := range corrupt {
		if next.ID+".json" == name {
			t.Fatalf("new job %s resurrects a skipped record", next.ID)
		}
	}
	if got := jobOrdinalTest(next.ID); got <= 10 {
		t.Fatalf("new job ordinal %d, want > 10 (corrupt IDs burned)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-4.json.tmp")); !os.IsNotExist(err) {
		t.Errorf("torn .tmp survived reload: %v", err)
	}
	await(t, hs2.URL, next.ID)
}

// jobOrdinalTest mirrors the store's ID ordering helper.
func jobOrdinalTest(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// TestProductionSurface: healthz, readyz, metrics and the target
// listing respond sensibly.
func TestProductionSurface(t *testing.T) {
	srv, hs := newTestServer(t, service.Config{Workers: 1})
	await(t, hs.URL, submit(t, hs.URL, service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 6}}).ID)

	for _, path := range []string{"/healthz", "/readyz"} {
		if status, _ := doJSON(t, http.MethodGet, hs.URL+path, nil, nil); status != http.StatusOK {
			t.Errorf("%s: status %d", path, status)
		}
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"slxd_jobs_done_total 1",
		"slxd_jobs_queued 0",
		"slxd_prefixes_explored_total",
		"slxd_job_duration_seconds_bucket{le=\"+Inf\"} 1",
		"slxd_job_duration_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	var targets []struct{ Name, About string }
	if status, body := doJSON(t, http.MethodGet, hs.URL+"/v1/targets", nil, &targets); status != http.StatusOK {
		t.Fatalf("targets: status %d body %s", status, body)
	}
	if len(targets) != len(service.TargetNames()) {
		t.Errorf("targets listed %d, registered %d", len(targets), len(service.TargetNames()))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if status, _ := doJSON(t, http.MethodGet, hs.URL+"/readyz", nil, nil); status != http.StatusServiceUnavailable {
		t.Errorf("readyz while drained: status %d, want 503", status)
	}
	if status, _ := doJSON(t, http.MethodGet, hs.URL+"/healthz", nil, nil); status != http.StatusOK {
		t.Errorf("healthz while drained: status %d, want 200", status)
	}
}

// waitState polls a job until it reaches the given (non-terminal)
// state.
func waitState(t *testing.T, base, id, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var j service.Job
		doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil, &j)
		if j.State == state {
			return
		}
		switch j.State {
		case service.StateDone, service.StateFailed, service.StateCancelled:
			t.Fatalf("job %s went terminal (%s) before reaching %q", id, j.State, state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, j.State, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
