package service

import (
	"fmt"
	"time"

	"repro/slx"
	"repro/slx/run"
)

// Job states. A job is queued on admission, running once a pool worker
// picks it up, and ends in exactly one of done (exploration finished,
// verdicts present — including found violations), failed (the checker
// returned a non-cancellation error), or cancelled (DELETE, job
// timeout, or daemon shutdown cut it short; the partial report, marked
// Interrupted, is still stored).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobSpec is the body of POST /v1/jobs: a target name, the slx.Spec
// exploration options (flattened into the same JSON object), and the
// service-level knobs that have no in-process counterpart.
type JobSpec struct {
	// Target names a registered check target (GET /v1/targets lists
	// them).
	Target string `json:"target"`
	// Mode optionally restates the exploration mode: "exhaustive" or
	// "sample". It is redundant with the sample field — "sample" sets
	// it, "exhaustive" requires it unset — and exists so that a job
	// file reads unambiguously.
	Mode string `json:"mode,omitempty"`
	// Spec carries the one-to-one mapping onto Checker options.
	slx.Spec
	// SharedCache opts the job into the daemon's shared visited-set
	// tier for its target (slx.WithVisitedTier): exhaustive jobs on the
	// same target then skip subtrees other jobs already explored.
	// Requires cache (WithStateCache), like the in-process option.
	SharedCache bool `json:"shared_cache,omitempty"`
}

// normalize folds the redundant Mode field into the spec, rejecting
// contradictions. Validation proper happens against a real Checker so
// the HTTP 400 carries the in-process error message.
func (s *JobSpec) normalize() error {
	switch s.Mode {
	case "":
		if s.Sample {
			s.Mode = "sample"
		} else {
			s.Mode = "exhaustive"
		}
	case "exhaustive":
		if s.Sample {
			return fmt.Errorf(`mode "exhaustive" contradicts "sample": true`)
		}
	case "sample":
		s.Sample = true
	default:
		return fmt.Errorf(`unknown mode %q (want "exhaustive" or "sample")`, s.Mode)
	}
	return nil
}

// Job is a submitted check job as the API returns it: the spec, the
// lifecycle state with its timestamps, and — once terminal — the result
// or the failure message.
type Job struct {
	ID        string    `json:"id"`
	Spec      JobSpec   `json:"spec"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// DurationMs is Finished-Started for terminal jobs.
	DurationMs int64 `json:"duration_ms,omitempty"`
	// Result is the exploration report, present on done and (partial,
	// interrupted) on cancelled jobs.
	Result *Result `json:"result,omitempty"`
	// Error is the failure message on failed jobs and the cancellation
	// cause on cancelled ones.
	Error string `json:"error,omitempty"`
}

// Result is the JSON projection of an slx.Report: every field a client
// needs to compare against an in-process run — verdicts, the replayable
// witness schedule, the failing seed, and the deterministic counters.
type Result struct {
	OK          bool `json:"ok"`
	Interrupted bool `json:"interrupted,omitempty"`

	// Exhaustive-mode statistics.
	Prefixes  int `json:"prefixes,omitempty"`
	Pruned    int `json:"pruned,omitempty"`
	CacheHits int `json:"cache_hits,omitempty"`

	// Sampling-mode statistics.
	Sampled        bool  `json:"sampled,omitempty"`
	Schedules      int   `json:"schedules,omitempty"`
	DistinctStates int   `json:"distinct_states,omitempty"`
	FailingSeed    int64 `json:"failing_seed,omitempty"`

	// Shared statistics.
	SimSteps   int `json:"sim_steps,omitempty"`
	Resims     int `json:"resims,omitempty"`
	EventScans int `json:"event_scans,omitempty"`
	Workers    int `json:"workers,omitempty"`

	Verdicts []VerdictResult `json:"verdicts,omitempty"`
	// Witness is the first failing verdict's schedule: feed it to
	// Checker.Replay (or `slx explore`'s replay path) against the same
	// target to reproduce the violation deterministically.
	Witness []run.Decision `json:"witness,omitempty"`
}

// VerdictResult is the JSON projection of an slx.Verdict.
type VerdictResult struct {
	Property string         `json:"property"`
	Holds    bool           `json:"holds"`
	Reason   string         `json:"reason,omitempty"`
	Witness  []run.Decision `json:"witness,omitempty"`
}

// NewResult projects a report into its JSON form.
func NewResult(rep *slx.Report) *Result {
	r := &Result{
		OK:             rep.OK(),
		Interrupted:    rep.Interrupted,
		Prefixes:       rep.Prefixes,
		Pruned:         rep.Pruned,
		CacheHits:      rep.CacheHits,
		Sampled:        rep.Sampled,
		Schedules:      rep.Schedules,
		DistinctStates: rep.DistinctStates,
		FailingSeed:    rep.FailingSeed,
		SimSteps:       rep.SimSteps,
		Resims:         rep.Resims,
		EventScans:     rep.EventScans,
		Workers:        rep.Workers,
		Witness:        rep.Witness(),
	}
	for _, v := range rep.Verdicts {
		r.Verdicts = append(r.Verdicts, VerdictResult{
			Property: v.Property,
			Holds:    v.Holds,
			Reason:   v.Reason,
			Witness:  v.Witness,
		})
	}
	return r
}
