package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's dependency-free metrics registry. Counters
// and gauges are atomics; the one histogram is a fixed-bucket job
// duration histogram. WriteTo renders the whole registry in the
// Prometheus text exposition format, so GET /metrics is scrapeable
// without importing a client library.
type Metrics struct {
	start time.Time

	// Job lifecycle. Queued and Running are gauges (current depth of
	// the queue and the pool); the rest are monotone counters.
	JobsQueued    atomic.Int64
	JobsRunning   atomic.Int64
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64

	// Exploration work, summed over finished jobs: explored prefixes
	// and state-cache hits (exhaustive), merged schedules (sampling).
	Prefixes  atomic.Int64
	CacheHits atomic.Int64
	Schedules atomic.Int64

	// durations is the per-job wall-clock histogram: bucket[i] counts
	// jobs with duration <= durationBuckets[i], cumulatively, plus the
	// +Inf bucket at the end. sum is total nanoseconds.
	durations [len(durationBuckets) + 1]atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
}

// durationBuckets are the histogram's upper bounds, in seconds.
var durationBuckets = [...]float64{0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// NewMetrics returns a registry; start anchors the schedules/sec rate.
func NewMetrics() *Metrics {
	//slx:nondet metrics rate anchor: observability only, never reaches exploration results
	return &Metrics{start: time.Now()}
}

// ObserveJob records one finished job's duration.
func (m *Metrics) ObserveJob(d time.Duration) {
	s := d.Seconds()
	for i, le := range durationBuckets {
		if s <= le {
			m.durations[i].Add(1)
		}
	}
	m.durations[len(durationBuckets)].Add(1)
	m.count.Add(1)
	m.sum.Add(int64(d))
}

// WriteTo renders the registry in Prometheus text format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("slxd_jobs_queued", "Jobs waiting in the queue.", m.JobsQueued.Load())
	gauge("slxd_jobs_running", "Jobs currently on a worker.", m.JobsRunning.Load())
	counter("slxd_jobs_done_total", "Jobs finished with verdicts.", m.JobsDone.Load())
	counter("slxd_jobs_failed_total", "Jobs failed with an error.", m.JobsFailed.Load())
	counter("slxd_jobs_cancelled_total", "Jobs cancelled or timed out.", m.JobsCancelled.Load())
	counter("slxd_prefixes_explored_total", "Schedule prefixes explored by exhaustive jobs.", m.Prefixes.Load())
	counter("slxd_cache_hits_total", "State-cache subtree hits across jobs.", m.CacheHits.Load())
	counter("slxd_schedules_total", "Sampled schedules merged across jobs.", m.Schedules.Load())

	rate := 0.0
	if up := time.Since(m.start).Seconds(); up > 0 {
		rate = float64(m.Schedules.Load()) / up
	}
	fmt.Fprintf(cw, "# HELP slxd_schedules_per_second Sampled schedules per second of daemon uptime.\n# TYPE slxd_schedules_per_second gauge\nslxd_schedules_per_second %g\n", rate)

	fmt.Fprintf(cw, "# HELP slxd_job_duration_seconds Wall-clock duration of finished jobs.\n# TYPE slxd_job_duration_seconds histogram\n")
	for i, le := range durationBuckets {
		fmt.Fprintf(cw, "slxd_job_duration_seconds_bucket{le=%q} %d\n", trimFloat(le), m.durations[i].Load())
	}
	fmt.Fprintf(cw, "slxd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.durations[len(durationBuckets)].Load())
	fmt.Fprintf(cw, "slxd_job_duration_seconds_sum %g\n", time.Duration(m.sum.Load()).Seconds())
	fmt.Fprintf(cw, "slxd_job_duration_seconds_count %d\n", m.count.Load())
	return cw.n, cw.err
}

// trimFloat renders a bucket bound the way Prometheus clients do:
// shortest decimal form.
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// countingWriter tracks bytes and the first error for WriteTo's
// contract.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
