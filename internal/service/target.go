// Package service implements the slxd exploration service: a daemon
// that accepts check jobs over HTTP/JSON, runs them on a bounded worker
// pool where each worker drives an ordinary slx.Checker, and keeps the
// resulting reports in a results store. Sharding happens underneath the
// public API — engine worker loops are offered to the shared pool via
// slx.WithExecutor — so a job's report is identical to the in-process
// report by construction: same verdicts, same witness schedules, same
// deterministic counters.
package service

import (
	"fmt"
	"sort"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
	"repro/slx/tm"
)

// Target is one named check target: the object, environment and process
// count to explore, plus the property to check. A job names a target;
// the registry supplies the code halves of the checker that the job's
// Spec cannot carry over JSON.
type Target struct {
	// Name is the registry key, as it appears in a JobSpec.
	Name string
	// About is the one-line description shown in listings.
	About string
	// Options builds the target's object, environment and process-count
	// options. Spec options are appended after these, so a spec that
	// sets procs overrides the target default.
	Options func() []slx.Option
	// Property builds the property to check. Called per job: monitors
	// are stateful, so targets must not share property instances.
	Property func() slx.Property
}

// targets is the registry. cmd/slx explore and the slxd daemon both
// resolve target names here, so the CLI and the service cannot drift.
var targets = map[string]Target{
	"consensus": {
		Name:  "consensus",
		About: "commit-adopt consensus, agreement+validity",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(2),
				slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
				slx.WithEnv(func() run.Environment {
					return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
				}),
			}
		},
		Property: func() slx.Property { return check.AgreementValidity() },
	},
	"i12": {
		Name:    "i12",
		About:   "TM implementation I_12, property S",
		Options: func() []slx.Option { return tmTarget(func() run.Object { return tm.NewI12(2) }) },
		Property: func() slx.Property {
			return check.PropertyS()
		},
	},
	"globalcas": {
		Name:    "globalcas",
		About:   "global-CAS TM, opacity",
		Options: func() []slx.Option { return tmTarget(func() run.Object { return tm.NewGlobalCAS(2) }) },
		Property: func() slx.Property {
			return check.Opacity()
		},
	},
	"lossyreg": {
		Name:  "lossyreg",
		About: "seeded-bug register (process 2's writes are lost), linearizability",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(2),
				slx.WithObject(func() run.Object { return &lossyRegister{v: 0} }),
				slx.WithEnv(func() run.Environment {
					return run.Script(map[int][]run.Invocation{
						1: {{Op: "write", Arg: 1}, {Op: "read"}},
						2: {{Op: "write", Arg: 2}, {Op: "read"}},
					})
				}),
			}
		},
		Property: func() slx.Property {
			return check.Linearizability(check.RegisterSpec{Initial: 0})
		},
	},
	"queueblast": {
		Name:  "queueblast",
		About: "seeded deep-bug evicting queue, 8 procs, linearizability",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(8),
				slx.WithObject(func() run.Object { return &blastQueue{} }),
				slx.WithEnv(func() run.Environment {
					script := map[int][]run.Invocation{}
					for p := 1; p <= 4; p++ {
						script[p] = []run.Invocation{{Op: "enq", Arg: fmt.Sprintf("v%d", p)}}
					}
					for p := 5; p <= 8; p++ {
						script[p] = []run.Invocation{{Op: "deq"}, {Op: "deq"}}
					}
					return run.Script(script)
				}),
			}
		},
		Property: func() slx.Property {
			return check.Linearizability(check.QueueSpec{})
		},
	},
}

// tmTarget is the shared environment of the two TM targets: each
// process loops a single-write transaction on the same variable.
func tmTarget(newObj func() run.Object) []slx.Option {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	return []slx.Option{
		slx.WithProcs(2),
		slx.WithObject(newObj),
		slx.WithEnv(func() run.Environment { return tm.TxnLoop(tpl) }),
	}
}

// LookupTarget resolves a registered target by name.
func LookupTarget(name string) (Target, bool) {
	t, ok := targets[name]
	return t, ok
}

// TargetNames lists the registered targets in sorted order.
func TargetNames() []string {
	names := make([]string, 0, len(targets))
	for n := range targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lossyRegister is the seeded-bug register target: process 2's writes
// acknowledge without taking effect, so its write-then-read history is
// not linearizable. Both exhaustive explore (depth 8) and sampling find
// it, exercising the violation paths end to end.
type lossyRegister struct{ v hist.Value }

func (r *lossyRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() {
			p.Access("r", false)
			out = r.v
			p.Observe(out)
		})
	case "write":
		p.Exec("write", func() {
			out = hist.OK
			p.Access("r", true)
			if p.ID() != 2 {
				r.v = inv.Arg
			}
		})
	}
	return out
}

// lossyFrame is one in-flight lossyRegister operation: a single access
// window. The frame is immutable, so Fork returns the receiver.
type lossyFrame struct {
	r   *lossyRegister
	inv run.Invocation
}

// Begin implements run.Stepped. Unknown operations perform no access and
// complete in the invocation window, matching Apply's empty switch arm.
func (r *lossyRegister) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "read", "write":
		return &lossyFrame{r: r, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *lossyFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	r := f.r
	if f.inv.Op == "read" {
		p.Access("r", false)
		out := r.v
		p.Observe(out)
		return out, run.StepDone
	}
	p.Access("r", true)
	if p.ID() != 2 {
		r.v = f.inv.Arg
	}
	return hist.OK, run.StepDone
}

// Fork implements run.Frame.
func (f *lossyFrame) Fork() run.Frame { return f }

func (r *lossyRegister) Footprints() bool { return true }

func (r *lossyRegister) Fingerprint(f *run.Fingerprinter) { f.Str("r"); f.Val(r.v) }

func (r *lossyRegister) Snapshot() any { return r.v }

func (r *lossyRegister) Restore(s any) { r.v = s }

// blastCapacity is the buffer bound past which blastQueue drops its
// head.
const blastCapacity = 3

// blastQueue is the deep-bug queue from examples/queueblast: a bounded
// FIFO whose enqueue silently evicts the oldest element once three
// items are buffered. Enqueue takes two granted steps (reserve, then
// publish), so the minimal violating schedule needs four completed
// enqueues plus an observing dequeue — exhaustive exploration below
// depth 8 is provably clean while the bug is alive, which makes this
// the service's sampling showcase target.
type blastQueue struct{ items []hist.Value }

func (q *blastQueue) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "enq":
		p.Exec("reserve", func() {
			p.Access("q", true)
		})
		p.Exec("publish", func() {
			out = hist.OK
			p.Access("q", true)
			q.items = append(q.items, inv.Arg)
			if len(q.items) > blastCapacity {
				// The seeded bug: silently evict the oldest element.
				q.items = q.items[1:]
			}
		})
	case "deq":
		p.Exec("deq", func() {
			p.Access("q", true)
			if len(q.items) == 0 {
				out = "empty"
			} else {
				out = q.items[0]
				q.items = q.items[1:]
			}
			p.Observe(out)
		})
	}
	return out
}

// blastFrame is one in-flight blastQueue operation: reserve+publish for
// enq, a single window for deq.
type blastFrame struct {
	q   *blastQueue
	inv run.Invocation
	pc  int
}

// Begin implements run.Stepped.
func (q *blastQueue) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "enq", "deq":
		return &blastFrame{q: q, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *blastFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	if f.inv.Op == "enq" {
		if f.pc == 0 { // reserve
			p.Access("q", true)
			f.pc = 1
			return nil, run.StepPaused
		}
		// publish
		p.Access("q", true)
		q.items = append(q.items, f.inv.Arg)
		if len(q.items) > blastCapacity {
			// The seeded bug: silently evict the oldest element.
			q.items = q.items[1:]
		}
		return hist.OK, run.StepDone
	}
	p.Access("q", true)
	var out hist.Value
	if len(q.items) == 0 {
		out = "empty"
	} else {
		out = q.items[0]
		q.items = q.items[1:]
	}
	p.Observe(out)
	return out, run.StepDone
}

// Fork implements run.Frame.
func (f *blastFrame) Fork() run.Frame {
	c := *f
	return &c
}

func (q *blastQueue) Footprints() bool { return true }

func (q *blastQueue) Fingerprint(f *run.Fingerprinter) {
	f.Str("q")
	f.Int(len(q.items))
	for _, v := range q.items {
		f.Val(v)
	}
}

func (q *blastQueue) Snapshot() any { return append([]hist.Value(nil), q.items...) }

func (q *blastQueue) Restore(s any) { q.items = append(q.items[:0:0], s.([]hist.Value)...) }
