// Package service implements the slxd exploration service: a daemon
// that accepts check jobs over HTTP/JSON, runs them on a bounded worker
// pool where each worker drives an ordinary slx.Checker, and keeps the
// resulting reports in a results store. Sharding happens underneath the
// public API — engine worker loops are offered to the shared pool via
// slx.WithExecutor — so a job's report is identical to the in-process
// report by construction: same verdicts, same witness schedules, same
// deterministic counters.
package service

import (
	"fmt"
	"sort"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
	"repro/slx/tm"
)

// Target is one named check target: the object, environment and process
// count to explore, plus the property to check. A job names a target;
// the registry supplies the code halves of the checker that the job's
// Spec cannot carry over JSON.
type Target struct {
	// Name is the registry key, as it appears in a JobSpec.
	Name string
	// About is the one-line description shown in listings.
	About string
	// Options builds the target's object, environment and process-count
	// options. Spec options are appended after these, so a spec that
	// sets procs overrides the target default.
	Options func() []slx.Option
	// Property builds the property to check. Called per job: monitors
	// are stateful, so targets must not share property instances.
	Property func() slx.Property
}

// targets is the registry. cmd/slx explore and the slxd daemon both
// resolve target names here, so the CLI and the service cannot drift.
var targets = map[string]Target{
	"consensus": {
		Name:  "consensus",
		About: "commit-adopt consensus, agreement+validity",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(2),
				slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
				slx.WithEnv(func() run.Environment {
					return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
				}),
			}
		},
		Property: func() slx.Property { return check.AgreementValidity() },
	},
	"i12": {
		Name:    "i12",
		About:   "TM implementation I_12, property S",
		Options: func() []slx.Option { return tmTarget(func() run.Object { return tm.NewI12(2) }) },
		Property: func() slx.Property {
			return check.PropertyS()
		},
	},
	"globalcas": {
		Name:    "globalcas",
		About:   "global-CAS TM, opacity",
		Options: func() []slx.Option { return tmTarget(func() run.Object { return tm.NewGlobalCAS(2) }) },
		Property: func() slx.Property {
			return check.Opacity()
		},
	},
	"lossyreg": {
		Name:  "lossyreg",
		About: "seeded-bug register (process 2's writes are lost), linearizability",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(2),
				slx.WithObject(func() run.Object { return &lossyRegister{v: 0} }),
				slx.WithEnv(func() run.Environment {
					return run.Script(map[int][]run.Invocation{
						1: {{Op: "write", Arg: 1}, {Op: "read"}},
						2: {{Op: "write", Arg: 2}, {Op: "read"}},
					})
				}),
			}
		},
		Property: func() slx.Property {
			return check.Linearizability(check.RegisterSpec{Initial: 0})
		},
	},
	"durablequeue": {
		Name:  "durablequeue",
		About: "seeded recovery bug: roll-forward queue duplicates a crashed enqueue (explore with crashes+recoveries)",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(2),
				slx.WithObject(func() run.Object { return newDurQueue(2) }),
				slx.WithEnv(func() run.Environment {
					return run.Script(map[int][]run.Invocation{
						1: {{Op: "enq", Arg: "a"}},
						2: {{Op: "deq"}, {Op: "deq"}},
					})
				}),
			}
		},
		Property: func() slx.Property {
			return check.StrictLinearizability(check.QueueSpec{})
		},
	},
	"queueblast": {
		Name:  "queueblast",
		About: "seeded deep-bug evicting queue, 8 procs, linearizability",
		Options: func() []slx.Option {
			return []slx.Option{
				slx.WithProcs(8),
				slx.WithObject(func() run.Object { return &blastQueue{} }),
				slx.WithEnv(func() run.Environment {
					script := map[int][]run.Invocation{}
					for p := 1; p <= 4; p++ {
						script[p] = []run.Invocation{{Op: "enq", Arg: fmt.Sprintf("v%d", p)}}
					}
					for p := 5; p <= 8; p++ {
						script[p] = []run.Invocation{{Op: "deq"}, {Op: "deq"}}
					}
					return run.Script(script)
				}),
			}
		},
		Property: func() slx.Property {
			return check.Linearizability(check.QueueSpec{})
		},
	},
}

// tmTarget is the shared environment of the two TM targets: each
// process loops a single-write transaction on the same variable.
func tmTarget(newObj func() run.Object) []slx.Option {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	return []slx.Option{
		slx.WithProcs(2),
		slx.WithObject(newObj),
		slx.WithEnv(func() run.Environment { return tm.TxnLoop(tpl) }),
	}
}

// LookupTarget resolves a registered target by name.
func LookupTarget(name string) (Target, bool) {
	t, ok := targets[name]
	return t, ok
}

// TargetNames lists the registered targets in sorted order.
func TargetNames() []string {
	names := make([]string, 0, len(targets))
	for n := range targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lossyRegister is the seeded-bug register target: process 2's writes
// acknowledge without taking effect, so its write-then-read history is
// not linearizable. Both exhaustive explore (depth 8) and sampling find
// it, exercising the violation paths end to end.
//
//slx:norecover the seeded bug is crash-free; the register is modeled durable
type lossyRegister struct{ v hist.Value }

func (r *lossyRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() {
			p.Access("r", false)
			out = r.v
			p.Observe(out)
		})
	case "write":
		p.Exec("write", func() {
			out = hist.OK
			p.Access("r", true)
			if p.ID() != 2 {
				r.v = inv.Arg
			}
		})
	}
	return out
}

// lossyFrame is one in-flight lossyRegister operation: a single access
// window. The frame is immutable, so Fork returns the receiver.
type lossyFrame struct {
	r   *lossyRegister
	inv run.Invocation
}

// Begin implements run.Stepped. Unknown operations perform no access and
// complete in the invocation window, matching Apply's empty switch arm.
func (r *lossyRegister) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "read", "write":
		return &lossyFrame{r: r, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *lossyFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	r := f.r
	if f.inv.Op == "read" {
		p.Access("r", false)
		out := r.v
		p.Observe(out)
		return out, run.StepDone
	}
	p.Access("r", true)
	if p.ID() != 2 {
		r.v = f.inv.Arg
	}
	return hist.OK, run.StepDone
}

// Fork implements run.Frame.
func (f *lossyFrame) Fork() run.Frame { return f }

func (r *lossyRegister) Footprints() bool { return true }

func (r *lossyRegister) Fingerprint(f *run.Fingerprinter) { f.Str("r"); f.Val(r.v) }

func (r *lossyRegister) Snapshot() any { return r.v }

func (r *lossyRegister) Restore(s any) { r.v = s }

// blastCapacity is the buffer bound past which blastQueue drops its
// head.
const blastCapacity = 3

// blastQueue is the deep-bug queue from examples/queueblast: a bounded
// FIFO whose enqueue silently evicts the oldest element once three
// items are buffered. Enqueue takes two granted steps (reserve, then
// publish), so the minimal violating schedule needs four completed
// enqueues plus an observing dequeue — exhaustive exploration below
// depth 8 is provably clean while the bug is alive, which makes this
// the service's sampling showcase target.
//
//slx:norecover the blast scenario is crash-free; all state is modeled durable
type blastQueue struct{ items []hist.Value }

func (q *blastQueue) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "enq":
		p.Exec("reserve", func() {
			p.Access("q", true)
		})
		p.Exec("publish", func() {
			out = hist.OK
			p.Access("q", true)
			q.items = append(q.items, inv.Arg)
			if len(q.items) > blastCapacity {
				// The seeded bug: silently evict the oldest element.
				q.items = q.items[1:]
			}
		})
	case "deq":
		p.Exec("deq", func() {
			p.Access("q", true)
			if len(q.items) == 0 {
				out = "empty"
			} else {
				out = q.items[0]
				q.items = q.items[1:]
			}
			p.Observe(out)
		})
	}
	return out
}

// blastFrame is one in-flight blastQueue operation: reserve+publish for
// enq, a single window for deq.
type blastFrame struct {
	q   *blastQueue
	inv run.Invocation
	pc  int
}

// Begin implements run.Stepped.
func (q *blastQueue) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "enq", "deq":
		return &blastFrame{q: q, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *blastFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	if f.inv.Op == "enq" {
		if f.pc == 0 { // reserve
			p.Access("q", true)
			f.pc = 1
			return nil, run.StepPaused
		}
		// publish
		p.Access("q", true)
		q.items = append(q.items, f.inv.Arg)
		if len(q.items) > blastCapacity {
			// The seeded bug: silently evict the oldest element.
			q.items = q.items[1:]
		}
		return hist.OK, run.StepDone
	}
	p.Access("q", true)
	var out hist.Value
	if len(q.items) == 0 {
		out = "empty"
	} else {
		out = q.items[0]
		q.items = q.items[1:]
	}
	p.Observe(out)
	return out, run.StepDone
}

// Fork implements run.Frame.
func (f *blastFrame) Fork() run.Frame {
	c := *f
	return &c
}

func (q *blastQueue) Footprints() bool { return true }

func (q *blastQueue) Fingerprint(f *run.Fingerprinter) {
	f.Str("q")
	f.Int(len(q.items))
	for _, v := range q.items {
		f.Val(v)
	}
}

func (q *blastQueue) Snapshot() any { return append([]hist.Value(nil), q.items...) }

func (q *blastQueue) Restore(s any) { q.items = append(q.items[:0:0], s.([]hist.Value)...) }

// durQueue is the recovery-bug queue from examples/durablequeue: every
// enqueue is journaled in a per-process redo log (write intent, flush,
// apply, clear, flush the clear), but the recovery routine rolls the
// log forward UNCONDITIONALLY — it never checks whether the crashed
// enqueue already took effect. The protocol is correct crash-free and
// correct under crashes alone (a crashed process never replays its
// log); the duplicate needs a crash between the apply and the final
// clear flush plus a recovery, where strict linearizability flags the
// twice-delivered element. This is the service's crash–recovery
// showcase target: explore it with crashes>=1 and recoveries>=1.
type durQueue struct {
	items  []hist.Value // committed queue (durable)
	logVol []*durRec    // per-proc redo log, volatile cache (1-based)
	logDur []*durRec    // per-proc redo log, durable cell (1-based)
}

// durRec is one redo-log record, immutable once written.
type durRec struct{ arg hist.Value }

func newDurQueue(n int) *durQueue {
	return &durQueue{logVol: make([]*durRec, n+1), logDur: make([]*durRec, n+1)}
}

// durLogName is the footprint label of proc p's redo log.
func durLogName(p int) string { return fmt.Sprintf("log.%d", p) }

// deq is the shared single-window dequeue body.
func (q *durQueue) deq(p *run.Proc) hist.Value {
	p.Access("q", true)
	var out hist.Value
	if len(q.items) == 0 {
		out = "empty"
	} else {
		out = q.items[0]
		q.items = q.items[1:]
	}
	p.Observe(out)
	return out
}

func (q *durQueue) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "enq":
		id := p.ID()
		p.Exec("log", func() {
			p.Access(durLogName(id), true)
			q.logVol[id] = &durRec{arg: inv.Arg}
		})
		p.Exec("log-flush", func() {
			p.Access(durLogName(id), true)
			q.logDur[id] = q.logVol[id]
		})
		p.Exec("apply", func() {
			p.Access("q", true)
			q.items = append(q.items, inv.Arg)
		})
		p.Exec("log-clear", func() {
			p.Access(durLogName(id), true)
			q.logVol[id] = nil
		})
		p.Exec("clear-flush", func() {
			p.Access(durLogName(id), true)
			q.logDur[id] = nil
			out = hist.OK
		})
	case "deq":
		p.Exec("deq", func() { out = q.deq(p) })
	}
	return out
}

// durFrame is one in-flight durQueue operation. pc (enq): 0 = write
// log, 1 = flush log, 2 = apply, 3 = clear log, 4 = flush the clear;
// deq is a single window.
type durFrame struct {
	q   *durQueue
	inv run.Invocation
	pc  int
}

// Begin implements run.Stepped.
func (q *durQueue) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "enq", "deq":
		return &durFrame{q: q, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *durFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	if f.inv.Op == "deq" {
		return q.deq(p), run.StepDone
	}
	id := p.ID()
	switch f.pc {
	case 0:
		p.Access(durLogName(id), true)
		q.logVol[id] = &durRec{arg: f.inv.Arg}
	case 1:
		p.Access(durLogName(id), true)
		q.logDur[id] = q.logVol[id]
	case 2:
		p.Access("q", true)
		q.items = append(q.items, f.inv.Arg)
	case 3:
		p.Access(durLogName(id), true)
		q.logVol[id] = nil
	case 4:
		p.Access(durLogName(id), true)
		q.logDur[id] = nil
		return hist.OK, run.StepDone
	}
	f.pc++
	return nil, run.StepPaused
}

// Fork implements run.Frame.
func (f *durFrame) Fork() run.Frame {
	c := *f
	return &c
}

func (q *durQueue) Footprints() bool { return true }

// CrashVolatile implements run.Recoverable: every log cache reverts to
// its durable cell; the committed queue survives.
func (q *durQueue) CrashVolatile() { copy(q.logVol, q.logDur) }

// RecoverFrame implements run.Recoverable.
func (q *durQueue) RecoverFrame() run.Frame { return &durRecovery{q: q} }

// durRecovery is the recovery routine: read the durable log and roll it
// forward. pc: 0 = read log (done if empty), 1 = re-apply, 2 = clear
// log, 3 = flush the clear.
type durRecovery struct {
	q   *durQueue
	pc  int
	rec *durRec
}

// Step implements run.Frame.
func (f *durRecovery) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	id := p.ID()
	switch f.pc {
	case 0:
		p.Access(durLogName(id), false)
		if q.logVol[id] == nil {
			return nil, run.StepDone
		}
		f.rec = q.logVol[id]
	case 1:
		// The seeded bug: an unconditional roll-forward re-applies an
		// enqueue that already took effect before the crash.
		p.Access("q", true)
		q.items = append(q.items, f.rec.arg)
	case 2:
		p.Access(durLogName(id), true)
		q.logVol[id] = nil
	case 3:
		p.Access(durLogName(id), true)
		q.logDur[id] = nil
		return nil, run.StepDone
	}
	f.pc++
	return nil, run.StepPaused
}

// Fork implements run.Frame.
func (f *durRecovery) Fork() run.Frame {
	c := *f
	return &c
}

func (q *durQueue) Fingerprint(f *run.Fingerprinter) {
	f.Str("dq")
	f.Int(len(q.items))
	for _, v := range q.items {
		f.Val(v)
	}
	for p := 1; p < len(q.logVol); p++ {
		for _, r := range [2]*durRec{q.logVol[p], q.logDur[p]} {
			if r == nil {
				f.Int(0)
			} else {
				f.Int(1)
				f.Val(r.arg)
			}
		}
	}
}

// durState is a captured configuration (log records are immutable, so
// the slices copy shallowly).
type durState struct {
	items  []hist.Value
	logVol []*durRec
	logDur []*durRec
}

func (q *durQueue) Snapshot() any {
	return durState{
		items:  append([]hist.Value(nil), q.items...),
		logVol: append([]*durRec(nil), q.logVol...),
		logDur: append([]*durRec(nil), q.logDur...),
	}
}

func (q *durQueue) Restore(s any) {
	st := s.(durState)
	q.items = append(q.items[:0:0], st.items...)
	copy(q.logVol, st.logVol)
	copy(q.logDur, st.logDur)
}
