package tm

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// DurableTM is GlobalCAS extended with crash–recovery: a write-ahead
// commit log makes every commit decision durable before it takes
// effect. tryC follows the discipline
//
//	write commit intent {prev, next} (volatile) → flush (durable)
//	→ CAS the central memory → clear intent → flush the clear
//
// and the recovery routine of a crashed process redoes its durable
// intent with a prev-pointer guard (memState records are freshly
// allocated and never reused, so the redo CAS succeeds exactly when the
// crashed commit had not taken effect — the transaction then commits
// during recovery, invisibly to the crashed process, or vanishes).
//
// Durable state: the central CAS and the flushed halves of the commit
// logs. Volatile state: the log caches and every process-local
// transaction context — a crash wipes all contexts, so transactions
// live at the crash observe inactive contexts and abort, and a
// recovered process must start a fresh transaction (TxnLoop issues a
// fresh start after a recover event).
//
//slx:nofingerprint CAS compares *memState pointers: content-equal snapshots still differ (ABA)
type DurableTM struct {
	c     *base.CAS
	logs  []*base.DurableRegister // indexed by 1-based proc id
	local []procTx
}

// commitIntent is one durable commit record, immutable once stored.
type commitIntent struct {
	prev, next *memState
}

// NewDurableTM creates the implementation for n processes.
func NewDurableTM(n int) *DurableTM {
	t := &DurableTM{
		c:     base.NewCAS("C", &memState{version: 1}),
		logs:  make([]*base.DurableRegister, n+1),
		local: make([]procTx, n+1),
	}
	for p := 1; p <= n; p++ {
		t.logs[p] = base.NewDurableRegister(fmt.Sprintf("commitlog.%d", p), nil)
	}
	return t
}

// Footprints implements sim.Footprinted: cross-process state is the
// central CAS and the commit logs, each declaring its accesses.
func (t *DurableTM) Footprints() bool { return true }

// CrashVolatile implements sim.Recoverable: the log caches revert to
// their flushed values and every transaction context is wiped (local
// contexts are volatile memory; a live transaction finds its context
// inactive and aborts).
func (t *DurableTM) CrashVolatile() {
	for _, r := range t.logs {
		if r != nil {
			r.CrashWipe()
		}
	}
	for i := range t.local {
		t.local[i] = procTx{}
	}
}

// RecoverFrame implements sim.Recoverable.
func (t *DurableTM) RecoverFrame() sim.Frame { return &dtmRecFrame{t: t} }

// dtmState is a captured DurableTM configuration.
type dtmState struct {
	c     any
	logs  []any
	local []txSnap
}

// Snapshot implements sim.Snapshottable.
func (t *DurableTM) Snapshot() any {
	st := &dtmState{c: t.c.Snapshot(), logs: make([]any, len(t.logs)), local: snapLocals(t.local)}
	for i, r := range t.logs {
		if r != nil {
			st.logs[i] = r.Snapshot()
		}
	}
	return st
}

// Restore implements sim.Snapshottable.
func (t *DurableTM) Restore(v any) {
	st := v.(*dtmState)
	t.c.Restore(st.c)
	for i, r := range t.logs {
		if r != nil {
			r.Restore(st.logs[i])
		}
	}
	restoreLocals(t.local, st.local)
}

// Apply implements sim.Object.
func (t *DurableTM) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	return tmApply(t, p, inv)
}

// start/read/write are GlobalCAS's, over this object's local contexts.

func (t *DurableTM) start(p *sim.Proc) history.Value {
	l := &t.local[p.ID()]
	st := t.c.Read(p).(*memState)
	l.snapshot = st
	l.values = make(map[string]history.Value, len(st.vals))
	for k, v := range st.vals {
		l.values[k] = v
	}
	l.active = true
	return history.OK
}

func (t *DurableTM) read(p *sim.Proc, v string) history.Value {
	l := &t.local[p.ID()]
	if !l.active {
		return history.Abort
	}
	if val, ok := l.values[v]; ok {
		return val
	}
	return 0
}

func (t *DurableTM) write(p *sim.Proc, v string, val history.Value) history.Value {
	l := &t.local[p.ID()]
	if !l.active {
		return history.Abort
	}
	l.values[v] = val
	return history.OK
}

func (t *DurableTM) tryC(p *sim.Proc) history.Value {
	l := &t.local[p.ID()]
	p.Observe(l.active)
	if !l.active {
		return history.Abort
	}
	l.active = false
	reg := t.logs[p.ID()]
	next := &memState{version: l.snapshot.version + 1, vals: l.values}
	reg.Write(p, &commitIntent{prev: l.snapshot, next: next})
	reg.Flush(p)
	resp := history.Value(history.Abort)
	if t.c.CompareAndSwap(p, l.snapshot, next) {
		resp = history.Commit
	}
	reg.Write(p, nil)
	reg.Flush(p)
	return resp
}

// Begin implements sim.Stepped (window form of the same protocol;
// start, read and write match GlobalCAS's shapes).
func (t *DurableTM) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case history.TMStart:
		return &dtmStartFrame{t: t}, nil, sim.StepPaused
	case history.TMTryC:
		l := &t.local[p.ID()]
		p.Observe(l.active)
		if !l.active {
			return nil, history.Abort, sim.StepDone
		}
		l.active = false
		next := &memState{version: l.snapshot.version + 1, vals: l.values}
		return &dtmCommitFrame{t: t, in: &commitIntent{prev: l.snapshot, next: next}}, nil, sim.StepPaused
	case history.TMRead:
		return nil, t.read(p, inv.Obj), sim.StepDone
	case history.TMWrite:
		return nil, t.write(p, inv.Obj, inv.Arg), sim.StepDone
	default:
		return nil, history.Abort, sim.StepDone
	}
}

// dtmStartFrame is an in-flight start: one read of the central CAS.
type dtmStartFrame struct {
	t *DurableTM
}

// Step implements sim.Frame.
func (f *dtmStartFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	t := f.t
	l := &t.local[p.ID()]
	st := t.c.ReadW(p).(*memState)
	l.snapshot = st
	l.values = make(map[string]history.Value, len(st.vals))
	for k, v := range st.vals {
		l.values[k] = v
	}
	l.active = true
	return history.OK, sim.StepDone
}

// Fork implements sim.Frame: the frame holds no mutable state.
func (f *dtmStartFrame) Fork() sim.Frame { return f }

// dtmCommitFrame is an in-flight tryC past the active check. pc: 0 =
// write intent, 1 = flush, 2 = commit CAS, 3 = clear intent, 4 = flush
// the clear.
type dtmCommitFrame struct {
	t    *DurableTM
	in   *commitIntent
	pc   int
	resp history.Value
}

// Step implements sim.Frame.
func (f *dtmCommitFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	reg := f.t.logs[p.ID()]
	switch f.pc {
	case 0:
		reg.WriteW(p, f.in)
		f.pc = 1
	case 1:
		reg.FlushW(p)
		f.pc = 2
	case 2:
		f.resp = history.Abort
		if f.t.c.CompareAndSwapW(p, f.in.prev, f.in.next) {
			f.resp = history.Commit
		}
		f.pc = 3
	case 3:
		reg.WriteW(p, nil)
		f.pc = 4
	case 4:
		reg.FlushW(p)
		return f.resp, sim.StepDone
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *dtmCommitFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// dtmRecFrame is the recovery routine: read the durable commit log,
// redo it with the prev-guard, clear it. pc: 0 = read log (done if
// none), 1 = guarded redo CAS, 2 = clear log, 3 = flush the clear.
type dtmRecFrame struct {
	t  *DurableTM
	pc int
	in *commitIntent
}

// Step implements sim.Frame.
func (f *dtmRecFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	reg := f.t.logs[p.ID()]
	switch f.pc {
	case 0:
		in, _ := reg.ReadW(p).(*commitIntent)
		if in == nil {
			return nil, sim.StepDone
		}
		f.in = in
		f.pc = 1
	case 1:
		// See Persistent's recovery: the guard makes the redo idempotent —
		// the crashed commit takes effect at most once.
		f.t.c.CompareAndSwapW(p, f.in.prev, f.in.next)
		f.pc = 2
	case 2:
		reg.WriteW(p, nil)
		f.pc = 3
	case 3:
		reg.FlushW(p)
		return nil, sim.StepDone
	}
	return nil, sim.StepPaused
}

// Fork implements sim.Frame.
func (f *dtmRecFrame) Fork() sim.Frame {
	c := *f
	return &c
}
