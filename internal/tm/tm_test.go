package tm

import (
	"testing"

	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func run(t *testing.T, obj sim.Object, procs int, env sim.Environment, sched sim.Scheduler, maxSteps int) *sim.Result {
	t.Helper()
	res := sim.Run(sim.Config{
		Procs: procs, Object: obj, Env: env, Scheduler: sched, MaxSteps: maxSteps,
	})
	if res.Err != nil {
		t.Fatalf("run error: %v", res.Err)
	}
	if !res.H.WellFormed() {
		t.Fatalf("history not well-formed: %s", res.H)
	}
	return res
}

// commits counts commit responses per process.
func commits(h history.History) map[int]int {
	out := make(map[int]int)
	for _, e := range h {
		if e.Kind == history.KindResponse && e.Val == history.Commit {
			out[e.Proc]++
		}
	}
	return out
}

func TestI12SequentialSemantics(t *testing.T) {
	// One process: write then read back in the next transaction.
	env := sim.Script(map[int][]sim.Invocation{
		1: {
			{Op: history.TMStart},
			{Op: history.TMWrite, Obj: "x", Arg: 42},
			{Op: history.TMTryC},
			{Op: history.TMStart},
			{Op: history.TMRead, Obj: "x"},
			{Op: history.TMTryC},
		},
	})
	res := run(t, NewI12(1), 1, env, &sim.RoundRobin{}, 0)
	txs := history.Transactions(res.H)
	if len(txs) != 2 {
		t.Fatalf("got %d transactions", len(txs))
	}
	if txs[0].Status != history.TxCommitted || txs[1].Status != history.TxCommitted {
		t.Fatalf("both transactions should commit: %v %v", txs[0].Status, txs[1].Status)
	}
	reads := txs[1].Reads()
	if len(reads) != 1 || reads[0].Val != 42 {
		t.Errorf("second transaction read %v, want 42", reads)
	}
	if !safety.Opaque(res.H) {
		t.Error("history must be opaque")
	}
}

func TestI12ReadOwnWrite(t *testing.T) {
	env := sim.Script(map[int][]sim.Invocation{
		1: {
			{Op: history.TMStart},
			{Op: history.TMWrite, Obj: "x", Arg: 5},
			{Op: history.TMRead, Obj: "x"},
			{Op: history.TMTryC},
		},
	})
	res := run(t, NewI12(1), 1, env, &sim.RoundRobin{}, 0)
	for _, op := range res.H.Operations() {
		if op.Name == history.TMRead && op.Done && op.Val != 5 {
			t.Errorf("read own write returned %v, want 5", op.Val)
		}
	}
}

func TestI12ConflictAborts(t *testing.T) {
	// p1 starts and snapshots; p2 runs a full committing transaction; p1
	// then tries to commit and must abort (version moved).
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	// p1: start(3 steps: invoke+update+read) + write(1) ... then p2 full
	// tx: start(3) write(1) tryC(3: invoke+scan+cas), then p1 tryC(3).
	sched := sim.FixedProcs([]int{
		1, 1, 1, 1, // p1 start + write
		2, 2, 2, 2, 2, 2, 2, // p2 start + write + tryC
		1, 1, 1, // p1 tryC
	})
	res := run(t, NewI12(2), 2, TxnLoop(tpl), sched, 0)
	cs := commits(res.H)
	if cs[2] != 1 {
		t.Fatalf("p2 should commit exactly once, got %v; history %s", cs, res.H)
	}
	if cs[1] != 0 {
		t.Fatalf("p1 must abort (stale snapshot), got %v commits", cs[1])
	}
	if !safety.Opaque(res.H) {
		t.Error("history must be opaque")
	}
}

func TestI12OpacityAndSUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		tpl := RandomWorkload(seed, 3, 4, 3)
		res := run(t, NewI12(3), 3, TxnLoop(tpl), sim.Random(seed), 160)
		if !safety.Opaque(res.H) {
			t.Fatalf("seed %d: opacity violated: %s", seed, res.H)
		}
		if !(safety.PropertyS{}).Holds(res.H) {
			t.Fatalf("seed %d: property S violated: %s", seed, res.H)
		}
	}
}

func TestI12CrashResilience(t *testing.T) {
	// Crash p1 at assorted points; p2 must still commit and opacity hold.
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	for crashAt := 1; crashAt <= 8; crashAt++ {
		var pre []sim.Decision
		for i := 0; i < crashAt; i++ {
			pre = append(pre, sim.Decision{Proc: 1})
		}
		pre = append(pre, sim.Decision{Proc: 1, Crash: true})
		res := run(t, NewI12(2), 2, TxnLoop(tpl),
			sim.Seq(sim.Fixed(pre), sim.Limit(sim.Solo(2), 40)), 200)
		if !safety.Opaque(res.H) {
			t.Fatalf("crashAt %d: opacity violated: %s", crashAt, res.H)
		}
		if commits(res.H)[2] == 0 {
			t.Fatalf("crashAt %d: p2 must commit despite p1's crash", crashAt)
		}
	}
}

func TestI12TwoProcessesProgress(t *testing.T) {
	// Lemma 5.4's liveness half: with two processes taking steps, the
	// timestamp rule never fires (count <= 2) and commits keep happening.
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	res := run(t, NewI12(2), 2, TxnLoop(tpl),
		sim.Limit(sim.Alternate(1, 2), 400), 400)
	e := liveness.FromResult(res, 0)
	if !(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(e) {
		t.Errorf("(1,2)-freedom must hold for I12 with two steppers; commits=%v", commits(res.H))
	}
	if !safety.Opaque(res.H) {
		t.Error("opacity must hold")
	}
}

func TestI12ThreeLockstepAllAbortForever(t *testing.T) {
	// The Section 5.3 adversary in schedule form: three processes run
	// empty transactions in lockstep. Every tryC scan sees three equal
	// timestamps, count reaches 3, and everything aborts forever —
	// (1,3)-freedom is violated (the price of property S).
	tpl := map[int]Txn{1: {}, 2: {}, 3: {}}
	res := run(t, NewI12(3), 3, TxnLoop(tpl),
		sim.Limit(sim.Alternate(1, 2, 3), 600), 600)
	if cs := commits(res.H); len(cs) != 0 {
		t.Fatalf("lockstep transactions must all abort, got commits %v", cs)
	}
	e := liveness.FromResult(res, 0)
	if (liveness.LK{L: 1, K: 3, Good: liveness.TMGood()}).Holds(e) {
		t.Error("(1,3)-freedom must be violated")
	}
	if !(safety.PropertyS{}).Holds(res.H) {
		t.Error("property S holds (everything aborted)")
	}
}

func TestI12StaleThirdTimestampRecovery(t *testing.T) {
	// p3 runs several transactions, then parks. p1 and p2 begin at low
	// timestamps: the rule fires at first (three announced timestamps >=
	// theirs) but their timestamps eventually pass p3's stale one, and
	// commits resume — (1,2)-freedom survives parked processes.
	tpl := map[int]Txn{1: {}, 2: {}, 3: {}}
	res := run(t, NewI12(3), 3, TxnLoop(tpl),
		sim.Seq(
			sim.Limit(sim.Solo(3), 30), // p3 commits a few, timestamp grows
			sim.Limit(sim.Alternate(1, 2), 500),
		), 600)
	e := liveness.FromResult(res, 100)
	if !(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(e) {
		t.Errorf("commits must resume once timestamps pass the stale one; commits=%v", commits(res.H))
	}
}

func TestGlobalCASLockFreedom(t *testing.T) {
	// Under heavy same-variable contention, some process always commits.
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	res := run(t, NewGlobalCAS(2), 2, TxnLoop(tpl),
		sim.Limit(sim.Alternate(1, 2), 400), 400)
	e := liveness.FromResult(res, 0)
	if !(liveness.LLockFreedom{L: 1, Good: liveness.TMGood()}).Holds(e) {
		t.Errorf("1-lock-freedom must hold; commits=%v", commits(res.H))
	}
	if !safety.Opaque(res.H) {
		t.Error("opacity must hold")
	}
}

func TestGlobalCASOpacityUnderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		tpl := RandomWorkload(seed+1000, 3, 4, 3)
		res := run(t, NewGlobalCAS(3), 3, TxnLoop(tpl), sim.Random(seed), 160)
		if !safety.Opaque(res.H) {
			t.Fatalf("seed %d: opacity violated: %s", seed, res.H)
		}
	}
}

func TestGlobalCASDoesNotEnsureS(t *testing.T) {
	// Without the timestamp rule, the Section 5.3 group can commit: three
	// processes start concurrently, then commit one after another — the
	// first tryC succeeds, violating S's abort rule.
	tpl := map[int]Txn{1: {}, 2: {}, 3: {}}
	// All three start (start = invoke + C.read = 2 steps), then p1
	// commits.
	sched := sim.FixedProcs([]int{
		1, 1, 2, 2, 3, 3, // three starts
		1, 1, 1, // p1 tryC: invoke + cas (+ slack)
		2, 2, 2,
		3, 3, 3,
	})
	res := run(t, NewGlobalCAS(3), 3, TxnLoop(tpl), sched, 0)
	if cs := commits(res.H); len(cs) == 0 {
		t.Fatal("someone must commit without the rule")
	}
	if (safety.PropertyS{}).Holds(res.H) {
		t.Error("GlobalCAS must violate property S on this schedule")
	}
	if !safety.Opaque(res.H) {
		t.Error("opacity itself still holds")
	}
}

func TestAborter(t *testing.T) {
	tpl := map[int]Txn{1: {Accesses: []Access{{Var: "x"}}}}
	res := run(t, Aborter{}, 1, TxnLoop(tpl), sim.Limit(&sim.RoundRobin{}, 40), 40)
	if len(commits(res.H)) != 0 {
		t.Error("Aborter never commits")
	}
	if !safety.Opaque(res.H) {
		t.Error("aborting everything is trivially opaque")
	}
	e := liveness.FromResult(res, 0)
	if (liveness.LocalProgress{}).Holds(e) {
		t.Error("local progress must fail for the Aborter")
	}
	// Every operation does return a response, though: with nil Good the
	// process "progresses" — the motivation for restricting G_Tp.
	if got := e.Progressing(nil); len(got) != 1 {
		t.Errorf("responses keep flowing: %v", got)
	}
}

func TestTxnLoopRestartsAfterAbort(t *testing.T) {
	tpl := map[int]Txn{1: {Accesses: []Access{{Var: "x"}}}}
	res := run(t, Aborter{}, 1, TxnLoop(tpl), sim.Limit(&sim.RoundRobin{}, 20), 20)
	// Every transaction is a lone aborted start.
	txs := history.Transactions(res.H)
	if len(txs) < 2 {
		t.Fatalf("expected several restarted transactions, got %d", len(txs))
	}
	for _, tx := range txs[:len(txs)-1] {
		if tx.Status != history.TxAborted {
			t.Errorf("tx %d status %v, want aborted", tx.Seq, tx.Status)
		}
		if len(tx.Ops) != 1 {
			t.Errorf("aborted start must restart immediately, ops=%d", len(tx.Ops))
		}
	}
}

func TestRandomWorkloadDeterminism(t *testing.T) {
	a := RandomWorkload(5, 3, 4, 3)
	b := RandomWorkload(5, 3, 4, 3)
	for p := 1; p <= 3; p++ {
		if len(a[p].Accesses) != len(b[p].Accesses) {
			t.Fatalf("workload not deterministic for proc %d", p)
		}
		for i := range a[p].Accesses {
			if a[p].Accesses[i] != b[p].Accesses[i] {
				t.Fatalf("workload not deterministic: %+v vs %+v", a[p].Accesses[i], b[p].Accesses[i])
			}
		}
	}
}
