package tm

import (
	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// Transaction statuses for the DSTM descriptor.
const (
	txActive    = "active"
	txCommitted = "committed"
	txAborted   = "aborted"
)

// txDesc is a DSTM transaction descriptor: its status word is the
// transaction's single linearization point.
type txDesc struct {
	status *base.CAS
}

// orec is a per-variable ownership record: the variable's value is
// rec.newVal if the owner committed, rec.oldVal otherwise.
type orec struct {
	owner  *txDesc
	oldVal history.Value
	newVal history.Value
}

// DSTM is a simplified obstruction-free TM in the style of Herlihy,
// Luchangco, Moir and Scherer (the paper's reference [21]): per-variable
// ownership records, visible reads, and abort-the-other conflict
// resolution. A transaction running without step contention steals every
// ownership record it needs and commits ((1,1)-freedom); two contenders
// can abort each other forever, so unlike GlobalCAS it is not lock-free —
// the deterministic lockstep test exhibits the mutual-abort livelock.
//
// Opacity: acquiring a variable first aborts any active owner, so between
// two of a transaction's operations no other transaction can have touched
// its variables without aborting it first; every operation begins by
// checking the own status and returns A once aborted. Values resolve
// through the previous owner's status, one level deep, because each
// acquisition snapshots the resolved current value into oldVal.
type DSTM struct {
	orecs map[string]*base.CAS
	local []dstmLocal
}

type dstmLocal struct {
	desc *txDesc
}

// NewDSTM creates the implementation for n processes.
func NewDSTM(n int) *DSTM {
	return &DSTM{
		orecs: make(map[string]*base.CAS),
		local: make([]dstmLocal, n+1),
	}
}

// Apply implements sim.Object.
func (t *DSTM) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	return tmApply(t, p, inv)
}

func (t *DSTM) orecFor(v string) *base.CAS {
	c, ok := t.orecs[v]
	if !ok {
		c = base.NewCAS("orec:"+v, (*orec)(nil))
		t.orecs[v] = c
	}
	return c
}

func (t *DSTM) start(p *sim.Proc) history.Value {
	t.local[p.ID()].desc = &txDesc{
		status: base.NewCAS("tx", txActive),
	}
	return history.OK
}

// active reports whether p's current transaction is still active (one
// status read = one step).
func (t *DSTM) active(p *sim.Proc) bool {
	d := t.local[p.ID()].desc
	return d != nil && d.status.Read(p) == txActive
}

// resolve returns the current committed value of the record (nil record =
// initial value 0). It reads the previous owner's status (one step).
func (t *DSTM) resolve(p *sim.Proc, rec *orec) history.Value {
	if rec == nil {
		return 0
	}
	if rec.owner.status.Read(p) == txCommitted {
		return rec.newVal
	}
	return rec.oldVal
}

// acquire takes ownership of v for p's transaction and returns the value
// the transaction observes. For writes, newVal becomes val; for reads the
// record keeps the current value. Returns ok=false when the transaction
// was aborted by a competitor.
func (t *DSTM) acquire(p *sim.Proc, v string, write bool, val history.Value) (history.Value, bool) {
	mine := t.local[p.ID()].desc
	oc := t.orecFor(v)
	for {
		if !t.active(p) {
			return nil, false
		}
		cur, _ := oc.Read(p).(*orec)
		if cur != nil && cur.owner == mine {
			// Re-access of an owned variable. Validate the own status
			// before exposing the value: if a competitor aborted us, the
			// value would join an inconsistent read set (opacity for
			// aborted transactions).
			if !write {
				if !t.active(p) {
					return nil, false
				}
				return cur.newVal, true
			}
			next := &orec{owner: mine, oldVal: cur.oldVal, newVal: val}
			if oc.CompareAndSwap(p, cur, next) {
				if !t.active(p) {
					return nil, false
				}
				return val, true
			}
			continue
		}
		if cur != nil && cur.owner.status.Read(p) == txActive {
			// Obstruction-free conflict resolution: abort the owner.
			cur.owner.status.CompareAndSwap(p, txActive, txAborted)
			continue
		}
		resolved := t.resolve(p, cur)
		newVal := resolved
		if write {
			newVal = val
		}
		next := &orec{owner: mine, oldVal: resolved, newVal: newVal}
		if oc.CompareAndSwap(p, cur, next) {
			// Post-acquire validation: if our status still reads active
			// here, no competitor has stolen any of our records up to this
			// instant (stealing aborts first), so every value we have
			// returned is simultaneously current — a consistent snapshot.
			if !t.active(p) {
				return nil, false
			}
			return resolved, true
		}
	}
}

func (t *DSTM) read(p *sim.Proc, v string) history.Value {
	got, ok := t.acquire(p, v, false, nil)
	if !ok {
		return history.Abort
	}
	return got
}

func (t *DSTM) write(p *sim.Proc, v string, val history.Value) history.Value {
	if _, ok := t.acquire(p, v, true, val); !ok {
		return history.Abort
	}
	return history.OK
}

func (t *DSTM) tryC(p *sim.Proc) history.Value {
	d := t.local[p.ID()].desc
	if d == nil {
		return history.Abort
	}
	t.local[p.ID()].desc = nil
	if d.status.CompareAndSwap(p, txActive, txCommitted) {
		return history.Commit
	}
	return history.Abort
}
