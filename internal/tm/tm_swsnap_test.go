package tm

import (
	"testing"

	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// newI12SW builds Algorithm 1 on the software snapshot: registers plus a
// single CAS, no hardware snapshot primitive.
func newI12SW(n int) *I12 {
	return NewI12WithSnapshot(n, snapshot.New("R", n, 0))
}

func TestI12SoftwareSnapshotSequential(t *testing.T) {
	env := sim.Script(map[int][]sim.Invocation{
		1: {
			{Op: "start"},
			{Op: "write", Obj: "x", Arg: 42},
			{Op: "tryC"},
			{Op: "start"},
			{Op: "read", Obj: "x"},
			{Op: "tryC"},
		},
	})
	res := run(t, newI12SW(1), 1, env, &sim.RoundRobin{}, 0)
	for _, op := range res.H.Operations() {
		if op.Name == "read" && op.Done && op.Val != 42 {
			t.Errorf("read returned %v, want 42", op.Val)
		}
	}
	if !safety.Opaque(res.H) {
		t.Error("history must be opaque")
	}
}

func TestI12SoftwareSnapshotOpacityAndS(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		tpl := RandomWorkload(seed+2000, 3, 4, 2)
		res := run(t, newI12SW(3), 3, TxnLoop(tpl), sim.Random(seed), 260)
		if !safety.Opaque(res.H) {
			t.Fatalf("seed %d: opacity violated: %s", seed, res.H)
		}
		if !(safety.PropertyS{}).Holds(res.H) {
			t.Fatalf("seed %d: property S violated: %s", seed, res.H)
		}
	}
}

func TestI12SoftwareSnapshotTwoProcessProgress(t *testing.T) {
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	res := run(t, newI12SW(2), 2, TxnLoop(tpl),
		sim.Limit(sim.Alternate(1, 2), 800), 800)
	e := liveness.FromResult(res, 0)
	if !(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(e) {
		t.Errorf("(1,2)-freedom must hold on the software-snapshot I12; commits=%v", commits(res.H))
	}
}

func TestI12SoftwareSnapshotThreeLockstepAborts(t *testing.T) {
	// The Section 5.3 behavior must survive the snapshot substitution:
	// three same-paced processes all abort forever.
	tpl := map[int]Txn{1: {}, 2: {}, 3: {}}
	res := run(t, newI12SW(3), 3, TxnLoop(tpl),
		sim.Limit(sim.Alternate(1, 2, 3), 1200), 1200)
	if cs := commits(res.H); len(cs) != 0 {
		t.Fatalf("lockstep transactions must all abort, got commits %v", cs)
	}
	if !(safety.PropertyS{}).Holds(res.H) {
		t.Error("property S holds on the all-aborted history")
	}
}
