package tm

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/sim"
)

func TestDurableTMSequentialSemantics(t *testing.T) {
	env := sim.Script(map[int][]sim.Invocation{
		1: {
			{Op: history.TMStart},
			{Op: history.TMWrite, Obj: "x", Arg: 42},
			{Op: history.TMRead, Obj: "x"},
			{Op: history.TMTryC},
			{Op: history.TMStart},
			{Op: history.TMRead, Obj: "x"},
			{Op: history.TMTryC},
		},
	})
	res := run(t, NewDurableTM(1), 1, env, &sim.RoundRobin{}, 0)
	reads := 0
	for _, op := range res.H.Operations() {
		if op.Name == history.TMRead && op.Done {
			reads++
			if op.Val != 42 {
				t.Errorf("read returned %v, want 42", op.Val)
			}
		}
	}
	if reads != 2 {
		t.Fatalf("expected 2 reads, got %d", reads)
	}
	if cs := commits(res.H); cs[1] != 2 {
		t.Fatalf("expected 2 commits, got %v", cs)
	}
	if !safety.Opaque(res.H) {
		t.Error("history must be opaque")
	}
}

// TestDurableTMCrashAfterFlushRecoveryCommits crashes p1 between its
// intent flush and the commit CAS: the durable log survives, so the
// recovery routine must redo the commit — p2 then observes x=7 although
// p1 never received a commit response.
func TestDurableTMCrashAfterFlushRecoveryCommits(t *testing.T) {
	d := NewDurableTM(2)
	env := sim.Script(map[int][]sim.Invocation{
		1: {{Op: history.TMStart}, {Op: history.TMWrite, Obj: "x", Arg: 7}, {Op: history.TMTryC}},
		2: {{Op: history.TMStart}, {Op: history.TMRead, Obj: "x"}, {Op: history.TMTryC}},
	})
	phase := 0
	sched := sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		switch phase {
		case 0: // run p1 until its intent is durable but not yet applied
			if d.logs[1].PeekDurable() != nil && d.c.Peek().(*memState).version == 1 {
				phase = 1
				return sim.Decision{Proc: 1, Crash: true}, true
			}
			return sim.Decision{Proc: 1}, true
		case 1:
			phase = 2
			return sim.Decision{Proc: 1, Recover: true}, true
		case 2: // run p1's recovery until the redo lands
			if d.c.Peek().(*memState).vals["x"] == history.Value(7) {
				phase = 3
			} else {
				return sim.Decision{Proc: 1}, true
			}
		}
		if !v.ReadyContains(2) {
			return sim.Decision{}, false
		}
		return sim.Decision{Proc: 2}, true
	})
	res := run(t, d, 2, env, sched, 200)
	var read history.Value
	for _, op := range res.H.Operations() {
		if op.Proc == 2 && op.Name == history.TMRead && op.Done {
			read = op.Val
		}
	}
	if read != history.Value(7) {
		t.Fatalf("p2 read %v, want 7 (the recovered commit must be visible)", read)
	}
	if cs := commits(res.H); cs[1] != 0 || cs[2] != 1 {
		t.Fatalf("commits %v: p1 crashed before its response, p2 must commit", cs)
	}
	if !safety.Opaque(res.H) {
		t.Fatalf("history must be opaque (p1 is commit-pending): %s", res.H)
	}
}

// TestDurableTMCrashBeforeFlushVanishes crashes p1 after the intent
// write but before its flush: the intent is volatile, the crash wipes
// it, and recovery finds nothing to redo — the transaction vanishes.
func TestDurableTMCrashBeforeFlushVanishes(t *testing.T) {
	d := NewDurableTM(2)
	env := sim.Script(map[int][]sim.Invocation{
		1: {{Op: history.TMStart}, {Op: history.TMWrite, Obj: "x", Arg: 7}, {Op: history.TMTryC}},
		2: {{Op: history.TMStart}, {Op: history.TMRead, Obj: "x"}, {Op: history.TMTryC}},
	})
	phase := 0
	sched := sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		switch phase {
		case 0: // run p1 until the intent is written but still volatile
			if d.logs[1].Peek() != nil && d.logs[1].PeekDurable() == nil {
				phase = 1
				return sim.Decision{Proc: 1, Crash: true}, true
			}
			return sim.Decision{Proc: 1}, true
		case 1:
			phase = 2
			return sim.Decision{Proc: 1, Recover: true}, true
		case 2: // one recovery step: the wiped log reads empty
			phase = 3
			return sim.Decision{Proc: 1}, true
		}
		if !v.ReadyContains(2) {
			return sim.Decision{}, false
		}
		return sim.Decision{Proc: 2}, true
	})
	res := run(t, d, 2, env, sched, 200)
	if d.logs[1].Peek() != nil || d.logs[1].PeekDurable() != nil {
		t.Fatal("the unflushed intent must vanish with the crash")
	}
	for _, op := range res.H.Operations() {
		if op.Proc == 2 && op.Name == history.TMRead && op.Done && op.Val == history.Value(7) {
			t.Fatal("p2 observed a write whose commit intent was never durable")
		}
	}
	if got := d.c.Peek().(*memState).version; got != 2 {
		t.Fatalf("central memory version %d, want 2 (only p2's commit)", got)
	}
	if !safety.Opaque(res.H) {
		t.Fatalf("history must be opaque: %s", res.H)
	}
}

// TestDurableTMOpacityExhaustiveWithRecovery explores every schedule —
// including every crash point and recovery interleaving — of a
// two-process write/read workload and requires opacity throughout (a
// crashed tryC is commit-pending: it may take effect, via recovery,
// or vanish, but never both and never partially).
func TestDurableTMOpacityExhaustiveWithRecovery(t *testing.T) {
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Var: "x"}}},
	}
	exhaust := func(recoveries int) int {
		st, err := explore.Run(explore.Config{
			Procs:      2,
			NewObject:  func() sim.Object { return NewDurableTM(2) },
			NewEnv:     func() sim.Environment { return TxnLoop(tpl) },
			Depth:      11,
			Crashes:    1,
			Recoveries: recoveries,
			Check: explore.CheckSafety("opacity", func(h history.History) bool {
				return safety.Opaque(h)
			}),
		})
		if err != nil {
			t.Fatalf("explore (recoveries=%d): %v", recoveries, err)
		}
		return st.Prefixes
	}
	without, with := exhaust(0), exhaust(1)
	if without == 0 {
		t.Fatal("no exploration happened")
	}
	if with <= without {
		t.Fatalf("recovery branching must strictly widen the tree: %d vs %d prefixes", with, without)
	}
}

// TestDurableTMRandomWithRecoveries drives random schedules with crash
// and recovery decisions mixed in and checks opacity of every history.
func TestDurableTMRandomWithRecoveries(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		tpl := RandomWorkload(seed+900, 3, 4, 3)
		sched := sim.RandomRecovery(seed, 0.04, 0.3, 2, 2)
		res := run(t, NewDurableTM(3), 3, TxnLoop(tpl), sim.Limit(sched, 160), 200)
		if !safety.Opaque(res.H) {
			t.Fatalf("seed %d: opacity violated: %s", seed, res.H)
		}
	}
}
