// Package tm implements the transactional-memory shared object type of the
// paper with four implementations:
//
//   - I12: the paper's Algorithm 1 verbatim — a single compare-and-swap
//     object C holding (version, values), a snapshot object R[1..n] of
//     per-process timestamps, and the count>=3 timestamp abort rule. Lemma
//     5.4: I12 ensures opacity, the Section 5.3 property S, and
//     (1,2)-freedom. The snapshot can be the hardware primitive or the
//     software construction from registers (NewI12WithSnapshot).
//   - GlobalCAS: Algorithm 1 without the timestamp rule, i.e. the
//     AGP-style TM of the paper's reference [16]. It ensures opacity and
//     1-lock-freedom (a failed commit CAS means another transaction
//     committed), hence (1,n)-freedom — the white column of Figure 1(b).
//     It stands in for Fraser's OSTM [9]; see DESIGN.md for why the
//     substitution is faithful.
//   - DSTM (dstm.go): a simplified obstruction-free TM in the style of the
//     paper's reference [21] — opaque, (1,1)-free, and demonstrably not
//     lock-free.
//   - Aborter: aborts everything; trivially opaque, zero progress. It
//     motivates restricting TM good responses to commit events.
//
// The TM operations are "start", "read" (Obj = variable name), "write"
// (Obj + Arg) and "tryC", with responses ok / value / C / A exactly as in
// the paper's Section 4.1.
package tm

import (
	"math/rand"

	"repro/internal/base"
	"repro/internal/history"
	"repro/internal/sim"
)

// memState is the immutable record stored in the central CAS object C:
// a version number plus the committed values of all transactional
// variables. CAS compares pointer identities, the standard technique for
// CAS-based STM.
type memState struct {
	version int
	vals    map[string]history.Value
}

// procTx is the process-local transaction context (the paper's
// process-local variables: version, values, timestamp).
type procTx struct {
	snapshot  *memState                // (version, oldval) read by start
	values    map[string]history.Value // local read/write buffer
	written   bool
	active    bool
	timestamp int
}

// SnapshotObject is the snapshot interface Algorithm 1 needs: per-process
// timestamp announcement plus an atomic scan. It is satisfied by the
// hardware base.Snapshot (one-step scan) and by the software
// snapshot.SW built from single-writer registers. Implementations that
// additionally provide Snapshot() any / Restore(any) (both in-repo ones
// do) let the TM participate in incremental exploration; without them
// the TM falls back to replay execution (see I12.Snapshotting).
type SnapshotObject interface {
	Update(s base.Stepper, i int, v history.Value)
	Scan(s base.Stepper) []history.Value
}

// snapRestorer is the state-capture facet of a SnapshotObject.
type snapRestorer interface {
	Snapshot() any
	Restore(any)
}

// steppedSnap is the window-form facet of a SnapshotObject: update and
// scan each complete within a single already-granted access window,
// which is what the continuation frames need. The hardware base.Snapshot
// provides it; the software snapshot built from registers does not (its
// scan takes many steps), so I12-with-software-snapshot reports
// Snapshotting()==false and exploration uses the replay fallback.
type steppedSnap interface {
	UpdateW(a base.Accessor, i int, v history.Value)
	ScanW(a base.Accessor, dst []history.Value) []history.Value
}

// txSnap is one process's captured transaction context. The read/write
// buffer is copied both ways: write() mutates it in place, and the same
// snapshot may be restored many times.
type txSnap struct {
	snapshot  *memState
	values    map[string]history.Value
	written   bool
	active    bool
	timestamp int
}

func snapLocals(local []procTx) []txSnap {
	out := make([]txSnap, len(local))
	for i := range local {
		l := &local[i]
		out[i] = txSnap{snapshot: l.snapshot, written: l.written, active: l.active, timestamp: l.timestamp}
		if l.values != nil {
			m := make(map[string]history.Value, len(l.values))
			for k, v := range l.values {
				m[k] = v
			}
			out[i].values = m
		}
	}
	return out
}

func restoreLocals(local []procTx, snaps []txSnap) {
	for i := range local {
		s := &snaps[i]
		l := &local[i]
		l.snapshot = s.snapshot
		l.written = s.written
		l.active = s.active
		l.timestamp = s.timestamp
		if s.values == nil {
			l.values = nil
			continue
		}
		m := make(map[string]history.Value, len(s.values))
		for k, v := range s.values {
			m[k] = v
		}
		l.values = m
	}
}

// I12 is the paper's Algorithm 1, implementing a TM that ensures S and
// (1,2)-freedom.
//
//slx:nofingerprint CAS compares *memState pointers: content-equal snapshots still differ (ABA)
//slx:norecover local transaction contexts are not crash-modeled; DurableTM is the crash-recovery variant
type I12 struct {
	c     *base.CAS
	r     SnapshotObject
	local []procTx // index 0 unused
}

// NewI12 creates the implementation for n processes using the hardware
// snapshot primitive.
func NewI12(n int) *I12 {
	return &I12{
		c:     base.NewCAS("C", &memState{version: 1}),
		r:     base.NewSnapshot("R", n, 0),
		local: make([]procTx, n+1),
	}
}

// NewI12WithSnapshot creates the implementation with a caller-provided
// snapshot object (e.g. the software snapshot from registers), so the TM
// is built from registers plus a single CAS.
func NewI12WithSnapshot(n int, snap SnapshotObject) *I12 {
	return &I12{
		c:     base.NewCAS("C", &memState{version: 1}),
		r:     snap,
		local: make([]procTx, n+1),
	}
}

// Apply implements sim.Object.
func (t *I12) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	return tmApply(t, p, inv)
}

// Footprints implements sim.Footprinted: cross-process state is the
// central CAS C and the snapshot R (both declaring base objects when the
// hardware primitives are used); the local contexts are per-process.
// With a software snapshot (NewI12WithSnapshot) the component registers
// declare themselves instead, which is equally sound.
func (t *I12) Footprints() bool { return true }

// tmState is a captured TM configuration.
type tmState struct {
	c     any
	r     any
	local []txSnap
}

// Snapshotting reports whether the snapshot object supports both state
// capture and single-window update/scan; false sends exploration to the
// replay fallback (see sim.CanSnapshot).
func (t *I12) Snapshotting() bool {
	if _, ok := t.r.(snapRestorer); !ok {
		return false
	}
	_, ok := t.r.(steppedSnap)
	return ok
}

// Snapshot implements sim.Snapshottable: the central CAS (pointer
// identity preserved — memState records are immutable), the snapshot
// object, and the per-process transaction contexts.
func (t *I12) Snapshot() any {
	st := &tmState{c: t.c.Snapshot(), local: snapLocals(t.local)}
	if r, ok := t.r.(snapRestorer); ok {
		st.r = r.Snapshot()
	}
	return st
}

// Restore implements sim.Snapshottable.
func (t *I12) Restore(v any) {
	st := v.(*tmState)
	t.c.Restore(st.c)
	if r, ok := t.r.(snapRestorer); ok {
		r.Restore(st.r)
	}
	restoreLocals(t.local, st.local)
}

func (t *I12) start(p *sim.Proc) history.Value {
	l := &t.local[p.ID()]
	l.timestamp++
	t.r.Update(p, p.ID()-1, l.timestamp)
	st := t.c.Read(p).(*memState)
	l.snapshot = st
	l.values = make(map[string]history.Value, len(st.vals))
	for k, v := range st.vals {
		l.values[k] = v
	}
	l.written = false
	l.active = true
	return history.OK
}

func (t *I12) read(p *sim.Proc, v string) history.Value {
	l := &t.local[p.ID()]
	if !l.active {
		return history.Abort
	}
	if val, ok := l.values[v]; ok {
		return val
	}
	return 0
}

func (t *I12) write(p *sim.Proc, v string, val history.Value) history.Value {
	l := &t.local[p.ID()]
	if !l.active {
		return history.Abort
	}
	l.values[v] = val
	l.written = true
	return history.OK
}

func (t *I12) tryC(p *sim.Proc) history.Value {
	l := &t.local[p.ID()]
	// The active flag is local state that steers the operation's control
	// flow, so it is folded into the local-state fingerprint (both here
	// and in the continuation form's Begin).
	p.Observe(l.active)
	if !l.active {
		return history.Abort
	}
	l.active = false
	// The timestamp abort rule: count processes whose announced timestamp
	// is at least ours (including ourselves, as in the paper's loop); three
	// or more means at least two concurrent same-timestamp transactions
	// observed our start, so abort.
	snap := t.r.Scan(p)
	count := 0
	for _, ts := range snap {
		if ts.(int) >= l.timestamp {
			count++
		}
	}
	if count >= 3 {
		return history.Abort
	}
	next := &memState{version: l.snapshot.version + 1, vals: l.values}
	if t.c.CompareAndSwap(p, l.snapshot, next) {
		return history.Commit
	}
	return history.Abort
}

// Begin implements sim.Stepped. "read" and "write" are pure local-buffer
// operations — zero accesses, so the whole operation completes in the
// invocation window. "start" bumps the local timestamp in the invocation
// window (it steers no shared access yet), then announces and reads C in
// two access windows. "tryC" takes its active-flag branch in the
// invocation window, mirroring the blocking form where the flag check
// precedes the first access.
//
// Begin is only reached when Snapshotting() is true, so the snapshot
// object is known to implement steppedSnap.
func (t *I12) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case history.TMStart:
		l := &t.local[p.ID()]
		l.timestamp++
		return &i12StartFrame{t: t}, nil, sim.StepPaused
	case history.TMTryC:
		l := &t.local[p.ID()]
		p.Observe(l.active)
		if !l.active {
			return nil, history.Abort, sim.StepDone
		}
		l.active = false
		return &i12TryCFrame{t: t}, nil, sim.StepPaused
	case history.TMRead:
		return nil, t.read(p, inv.Obj), sim.StepDone
	case history.TMWrite:
		return nil, t.write(p, inv.Obj, inv.Arg), sim.StepDone
	default:
		return nil, history.Abort, sim.StepDone
	}
}

// i12StartFrame is an in-flight start: announce the timestamp, then read
// the central CAS and initialize the read/write buffer.
type i12StartFrame struct {
	t  *I12
	pc int
}

// Step implements sim.Frame.
func (f *i12StartFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	t := f.t
	l := &t.local[p.ID()]
	if f.pc == 0 {
		t.r.(steppedSnap).UpdateW(p, p.ID()-1, l.timestamp)
		f.pc = 1
		return nil, sim.StepPaused
	}
	st := t.c.ReadW(p).(*memState)
	l.snapshot = st
	l.values = make(map[string]history.Value, len(st.vals))
	for k, v := range st.vals {
		l.values[k] = v
	}
	l.written = false
	l.active = true
	return history.OK, sim.StepDone
}

// Fork implements sim.Frame.
func (f *i12StartFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// i12TryCFrame is an in-flight tryC past the active check: scan the
// timestamps (aborting on the count rule in the scan's window, as in the
// blocking form), then attempt the commit CAS.
type i12TryCFrame struct {
	t    *I12
	next *memState
	pc   int
}

// Step implements sim.Frame.
func (f *i12TryCFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	t := f.t
	l := &t.local[p.ID()]
	if f.pc == 0 {
		snap := t.r.(steppedSnap).ScanW(p, nil)
		count := 0
		for _, ts := range snap {
			if ts.(int) >= l.timestamp {
				count++
			}
		}
		if count >= 3 {
			return history.Abort, sim.StepDone
		}
		f.next = &memState{version: l.snapshot.version + 1, vals: l.values}
		f.pc = 1
		return nil, sim.StepPaused
	}
	if t.c.CompareAndSwapW(p, l.snapshot, f.next) {
		return history.Commit, sim.StepDone
	}
	return history.Abort, sim.StepDone
}

// Fork implements sim.Frame.
func (f *i12TryCFrame) Fork() sim.Frame {
	c := *f
	return &c
}

// GlobalCAS is Algorithm 1 without the timestamp rule: an opaque,
// 1-lock-free TM (the paper's reference [16] AGP algorithm).
//
//slx:nofingerprint CAS compares *memState pointers: content-equal snapshots still differ (ABA)
//slx:norecover local transaction contexts are not crash-modeled; DurableTM is the crash-recovery variant
type GlobalCAS struct {
	c     *base.CAS
	local []procTx
}

// NewGlobalCAS creates the implementation for n processes.
func NewGlobalCAS(n int) *GlobalCAS {
	return &GlobalCAS{
		c:     base.NewCAS("C", &memState{version: 1}),
		local: make([]procTx, n+1),
	}
}

// Apply implements sim.Object.
func (t *GlobalCAS) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	return tmApply(t, p, inv)
}

// Footprints implements sim.Footprinted: the only cross-process state is
// the central CAS C; the transaction contexts are per-process.
func (t *GlobalCAS) Footprints() bool { return true }

// Snapshot implements sim.Snapshottable (see I12.Snapshot).
func (t *GlobalCAS) Snapshot() any {
	return &tmState{c: t.c.Snapshot(), local: snapLocals(t.local)}
}

// Restore implements sim.Snapshottable.
func (t *GlobalCAS) Restore(v any) {
	st := v.(*tmState)
	t.c.Restore(st.c)
	restoreLocals(t.local, st.local)
}

func (t *GlobalCAS) start(p *sim.Proc) history.Value {
	l := &t.local[p.ID()]
	st := t.c.Read(p).(*memState)
	l.snapshot = st
	l.values = make(map[string]history.Value, len(st.vals))
	for k, v := range st.vals {
		l.values[k] = v
	}
	l.active = true
	return history.OK
}

func (t *GlobalCAS) read(p *sim.Proc, v string) history.Value {
	l := &t.local[p.ID()]
	if !l.active {
		return history.Abort
	}
	if val, ok := l.values[v]; ok {
		return val
	}
	return 0
}

func (t *GlobalCAS) write(p *sim.Proc, v string, val history.Value) history.Value {
	l := &t.local[p.ID()]
	if !l.active {
		return history.Abort
	}
	l.values[v] = val
	return history.OK
}

func (t *GlobalCAS) tryC(p *sim.Proc) history.Value {
	l := &t.local[p.ID()]
	p.Observe(l.active)
	if !l.active {
		return history.Abort
	}
	l.active = false
	next := &memState{version: l.snapshot.version + 1, vals: l.values}
	if t.c.CompareAndSwap(p, l.snapshot, next) {
		return history.Commit
	}
	return history.Abort
}

// Begin implements sim.Stepped (see I12.Begin; GlobalCAS has no
// snapshot object, so start is a single read and tryC a single CAS).
// Both frames are immutable after Begin, so Fork returns the receiver.
func (t *GlobalCAS) Begin(p *sim.Proc, inv sim.Invocation) (sim.Frame, history.Value, sim.StepStatus) {
	switch inv.Op {
	case history.TMStart:
		return &gcasStartFrame{t: t}, nil, sim.StepPaused
	case history.TMTryC:
		l := &t.local[p.ID()]
		p.Observe(l.active)
		if !l.active {
			return nil, history.Abort, sim.StepDone
		}
		l.active = false
		next := &memState{version: l.snapshot.version + 1, vals: l.values}
		return &gcasCommitFrame{t: t, old: l.snapshot, next: next}, nil, sim.StepPaused
	case history.TMRead:
		return nil, t.read(p, inv.Obj), sim.StepDone
	case history.TMWrite:
		return nil, t.write(p, inv.Obj, inv.Arg), sim.StepDone
	default:
		return nil, history.Abort, sim.StepDone
	}
}

// gcasStartFrame is an in-flight start: one read of the central CAS.
type gcasStartFrame struct {
	t *GlobalCAS
}

// Step implements sim.Frame.
func (f *gcasStartFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	t := f.t
	l := &t.local[p.ID()]
	st := t.c.ReadW(p).(*memState)
	l.snapshot = st
	l.values = make(map[string]history.Value, len(st.vals))
	for k, v := range st.vals {
		l.values[k] = v
	}
	l.active = true
	return history.OK, sim.StepDone
}

// Fork implements sim.Frame: the frame holds no mutable state.
func (f *gcasStartFrame) Fork() sim.Frame { return f }

// gcasCommitFrame is an in-flight tryC past the active check: one
// commit CAS.
type gcasCommitFrame struct {
	t         *GlobalCAS
	old, next *memState
}

// Step implements sim.Frame.
func (f *gcasCommitFrame) Step(p *sim.Proc) (history.Value, sim.StepStatus) {
	if f.t.c.CompareAndSwapW(p, f.old, f.next) {
		return history.Commit, sim.StepDone
	}
	return history.Abort, sim.StepDone
}

// Fork implements sim.Frame: the frame holds no mutable state.
func (f *gcasCommitFrame) Fork() sim.Frame { return f }

// Aborter responds A to every operation. It is trivially opaque and makes
// no progress whatsoever — requiring only "every operation returns" is
// vacuous for TM, which is why G_Tp is restricted to commits.
type Aborter struct{}

// Apply implements sim.Object.
func (Aborter) Apply(p *sim.Proc, inv sim.Invocation) history.Value {
	return history.Abort
}

// tmImpl is the internal operation set shared by I12 and GlobalCAS.
type tmImpl interface {
	start(p *sim.Proc) history.Value
	read(p *sim.Proc, v string) history.Value
	write(p *sim.Proc, v string, val history.Value) history.Value
	tryC(p *sim.Proc) history.Value
}

func tmApply(t tmImpl, p *sim.Proc, inv sim.Invocation) history.Value {
	switch inv.Op {
	case history.TMStart:
		return t.start(p)
	case history.TMRead:
		return t.read(p, inv.Obj)
	case history.TMWrite:
		return t.write(p, inv.Obj, inv.Arg)
	case history.TMTryC:
		return t.tryC(p)
	default:
		return history.Abort
	}
}

// Txn is a transaction template for workload environments: a sequence of
// read/write accesses followed by a commit request.
type Txn struct {
	// Accesses are performed in order after start.
	Accesses []Access
}

// Access is one read or write of a transaction template.
type Access struct {
	// Write says whether this is a write (otherwise a read).
	Write bool
	// Var is the transactional variable name.
	Var string
	// Val is the written value (writes only).
	Val history.Value
}

// txnLoopEnv drives each process through its transaction template over
// and over. It keeps no mutable state: the position within the cycle is
// derived from the history view (invocations since the process's latest
// start), which makes the environment rewindable for free — a
// sim.Session restore needs no environment rewind at all.
type txnLoopEnv struct {
	templates map[int]Txn
}

// Next implements sim.Environment.
func (e *txnLoopEnv) Next(proc int, v *sim.View) (sim.Invocation, bool) {
	tpl, ok := e.templates[proc]
	if !ok {
		return sim.Invocation{}, false
	}
	// Walk the history backwards: record the process's most recent
	// response and count its invocations back to (and including) its
	// latest start. The process has no pending operation at consultation
	// time, so the latest response (if any) is its latest event.
	m := 0
	inTxn := false
	var lastResp history.Value
	sawResp := false
	for i := len(v.H) - 1; i >= 0; i-- {
		ev := &v.H[i]
		if ev.Proc != proc {
			continue
		}
		if ev.Kind == history.KindCrash || ev.Kind == history.KindRecover {
			// The walk reached a crash boundary before a start: the process
			// was recovered and has not invoked since. Its crashed
			// transaction never completes and the local context was lost,
			// so the cycle restarts with a fresh start (inTxn stays false).
			break
		}
		if !sawResp && ev.Kind == history.KindResponse {
			sawResp = true
			lastResp = ev.Val
		}
		if ev.Kind == history.KindInvoke {
			m++
			if ev.Op == history.TMStart {
				inTxn = true
				break
			}
		}
	}
	// An aborted operation ends the transaction early; a completed cycle
	// (start, accesses, tryC all invoked) or no transaction yet also
	// means the next invocation is a fresh start.
	if (sawResp && lastResp == history.Abort) || !inTxn || m == len(tpl.Accesses)+2 {
		return sim.Invocation{Op: history.TMStart}, true
	}
	if m <= len(tpl.Accesses) {
		a := tpl.Accesses[m-1]
		if a.Write {
			return sim.Invocation{Op: history.TMWrite, Obj: a.Var, Arg: a.Val}, true
		}
		return sim.Invocation{Op: history.TMRead, Obj: a.Var}, true
	}
	return sim.Invocation{Op: history.TMTryC}, true
}

// EnvSnapshot implements sim.RewindableEnv: there is no state to capture.
func (e *txnLoopEnv) EnvSnapshot() any { return nil }

// EnvRestore implements sim.RewindableEnv.
func (e *txnLoopEnv) EnvRestore(any) {}

// TxnLoop is an environment in which each process executes its transaction
// template over and over: start, the accesses, tryC, repeat. If a process
// has no template it is parked. Aborted operations end the transaction
// early (the next invocation is a fresh start).
func TxnLoop(templates map[int]Txn) sim.Environment {
	return &txnLoopEnv{templates: templates}
}

// RandomWorkload builds per-process transaction templates with opsPerTx
// accesses over vars variables, deterministically from seed. Written
// values are tagged with the writing process to make histories
// discriminating.
func RandomWorkload(seed int64, procs, vars, opsPerTx int) map[int]Txn {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, vars)
	for i := range names {
		names[i] = string(rune('x'+i%3)) + string(rune('0'+i/3))
	}
	out := make(map[int]Txn, procs)
	for p := 1; p <= procs; p++ {
		var t Txn
		for i := 0; i < opsPerTx; i++ {
			a := Access{Var: names[rng.Intn(len(names))]}
			if rng.Intn(2) == 0 {
				a.Write = true
				a.Val = p*100 + i
			}
			t.Accesses = append(t.Accesses, a)
		}
		out[p] = t
	}
	return out
}
