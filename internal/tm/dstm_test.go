package tm

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

// exhaustiveDSTM checks opacity of DSTM on every schedule to the given
// depth, returning the number of explored prefixes.
func exhaustiveDSTM(tpl map[int]Txn, depth int) (int, error) {
	st, err := explore.Run(explore.Config{
		Procs:     2,
		NewObject: func() sim.Object { return NewDSTM(2) },
		NewEnv:    func() sim.Environment { return TxnLoop(tpl) },
		Depth:     depth,
		Check: explore.CheckSafety("opacity", func(h history.History) bool {
			return safety.Opaque(h)
		}),
	})
	if err != nil {
		return 0, err
	}
	return st.Prefixes, nil
}

func TestDSTMSequentialSemantics(t *testing.T) {
	env := sim.Script(map[int][]sim.Invocation{
		1: {
			{Op: "start"},
			{Op: "write", Obj: "x", Arg: 42},
			{Op: "read", Obj: "x"},
			{Op: "tryC"},
			{Op: "start"},
			{Op: "read", Obj: "x"},
			{Op: "tryC"},
		},
	})
	res := run(t, NewDSTM(1), 1, env, &sim.RoundRobin{}, 0)
	reads := 0
	for _, op := range res.H.Operations() {
		if op.Name == "read" && op.Done {
			reads++
			if op.Val != 42 {
				t.Errorf("read returned %v, want 42", op.Val)
			}
		}
	}
	if reads != 2 {
		t.Fatalf("expected 2 reads, got %d", reads)
	}
	if !safety.Opaque(res.H) {
		t.Error("history must be opaque")
	}
}

func TestDSTMAbortedWritesInvisible(t *testing.T) {
	// p1 writes x inside a transaction that p2 then aborts by stealing;
	// p2 must read the initial value.
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 7}}},
		2: {Accesses: []Access{{Var: "x"}}},
	}
	res := run(t, NewDSTM(2), 2, TxnLoop(tpl),
		sim.Seq(
			sim.Limit(sim.Solo(1), 6),  // p1: start + write acquires x
			sim.Limit(sim.Solo(2), 12), // p2: steals x, reads, commits
		), 60)
	// p2's read must return the initial 0, not p1's uncommitted 7.
	for _, op := range res.H.Operations() {
		if op.Proc == 2 && op.Name == "read" && op.Done && op.Val == 7 {
			t.Fatal("p2 observed an uncommitted write")
		}
	}
	if !safety.Opaque(res.H) {
		t.Fatalf("history must be opaque: %s", res.H)
	}
}

func TestDSTMOpacityUnderRandomSchedules(t *testing.T) {
	// Seed 34 of this generator found the post-acquire validation bug
	// during development; keep the seed range wide.
	for seed := int64(0); seed < 250; seed++ {
		tpl := RandomWorkload(seed+500, 3, 4, 3)
		res := run(t, NewDSTM(3), 3, TxnLoop(tpl), sim.Random(seed), 200)
		if !safety.Opaque(res.H) {
			t.Fatalf("seed %d: opacity violated: %s", seed, res.H)
		}
	}
}

func TestDSTMOpacityExhaustiveShallow(t *testing.T) {
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Var: "x"}}},
	}
	res := 0
	for depth := 10; depth <= 12; depth += 2 {
		st, err := exhaustiveDSTM(tpl, depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		res += st
	}
	if res == 0 {
		t.Fatal("no exploration happened")
	}
}

func TestDSTMObstructionFreedom(t *testing.T) {
	// After arbitrary contention, a solo runner steals what it needs and
	// commits.
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	res := run(t, NewDSTM(2), 2, TxnLoop(tpl),
		sim.Seq(
			sim.Limit(sim.Random(11), 50),
			sim.Fixed([]sim.Decision{{Proc: 2, Crash: true}}),
			sim.Limit(sim.Solo(1), 60),
		), 200)
	if commits(res.H)[1] == 0 {
		t.Fatal("the solo runner must commit (obstruction-freedom)")
	}
	e := liveness.FromResult(res, 30)
	if !(liveness.LK{L: 1, K: 1, Good: liveness.TMGood()}).Holds(e) {
		t.Error("(1,1)-freedom must hold on the solo tail")
	}
}

// TestDSTMMutualAbortLivelock demonstrates that DSTM is NOT lock-free,
// unlike GlobalCAS: a scheduler that always runs the process which does
// not own the contended variable makes the two transactions abort each
// other forever — a fair execution with zero commits.
func TestDSTMMutualAbortLivelock(t *testing.T) {
	d := NewDSTM(2)
	tpl := map[int]Txn{
		1: {Accesses: []Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []Access{{Write: true, Var: "x", Val: 2}}},
	}
	last := 1
	steal := sim.SchedulerFunc(func(v *sim.View) (sim.Decision, bool) {
		target := last
		if oc, ok := d.orecs["x"]; ok {
			if rec, _ := oc.Peek().(*orec); rec != nil && rec.owner.status.Peek() == txActive {
				// Run the non-owner so it steals the record before the
				// owner can commit.
				for pid := 1; pid <= 2; pid++ {
					if d.local[pid].desc == rec.owner {
						target = 3 - pid
					}
				}
			}
		}
		last = target
		if !v.ReadyContains(target) {
			return sim.Decision{}, false
		}
		return sim.Decision{Proc: target}, true
	})
	res := run(t, d, 2, TxnLoop(tpl), sim.Limit(steal, 800), 800)
	if cs := commits(res.H); len(cs) != 0 {
		t.Fatalf("steal scheduler should livelock DSTM, got commits %v", cs)
	}
	e := liveness.FromResult(res, 0)
	if !e.Fair() {
		t.Fatal("the livelock schedule must be fair")
	}
	if (liveness.LLockFreedom{L: 1, Good: liveness.TMGood()}).Holds(e) {
		t.Error("1-lock-freedom must fail: DSTM is only obstruction-free")
	}
	// The same schedule logic cannot hurt GlobalCAS: its failed CAS
	// implies the other committed, so commits always flow (shown by the
	// lockstep test in tm_test.go).
}

func TestDSTMNotPropertyS(t *testing.T) {
	// Like GlobalCAS, DSTM lacks the timestamp rule: the Section 5.3 group
	// can commit.
	tpl := map[int]Txn{1: {}, 2: {}, 3: {}}
	sched := sim.FixedProcs([]int{
		1, 2, 3, // three starts (1 step each: descriptor allocation is local)
		1, 1, 2, 2, 3, 3, // tryCs
	})
	res := run(t, NewDSTM(3), 3, TxnLoop(tpl), sched, 0)
	if cs := commits(res.H); len(cs) == 0 {
		t.Fatal("someone must commit")
	}
	if (safety.PropertyS{}).Holds(res.H) {
		t.Error("DSTM must violate property S on this schedule")
	}
}
