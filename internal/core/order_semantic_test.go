package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/history"
	"repro/internal/liveness"
)

// randomExecution builds an arbitrary bounded execution with random
// steppers, crashes and good responses.
func randomExecution(r *rand.Rand, n int) *liveness.Execution {
	steps := 8 + r.Intn(24)
	e := &liveness.Execution{N: n, Steps: steps, Window: 1 + r.Intn(steps)}
	crashed := make(map[int]bool)
	for i := 0; i < steps; i++ {
		p := 1 + r.Intn(n)
		e.StepProcs = append(e.StepProcs, p)
		switch r.Intn(6) {
		case 0:
			if !crashed[p] {
				val := history.Value(history.Commit)
				if r.Intn(2) == 0 {
					val = history.Abort
				}
				e.H = append(e.H, history.Response(p, "op", val))
				e.EventSteps = append(e.EventSteps, i+1)
			}
		case 1:
			q := 1 + r.Intn(n)
			if !crashed[q] {
				crashed[q] = true
				e.H = append(e.H, history.Crash(q))
				e.EventSteps = append(e.EventSteps, i+1)
			}
		}
	}
	return e
}

// TestQuickLKOrderSemantics: the lattice order must agree with the
// checkers — whenever point p is StrongerEq than q, every execution
// satisfying (p.L,p.K)-freedom satisfies (q.L,q.K)-freedom.
func TestQuickLKOrderSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 600}
	good := liveness.TMGood()
	f := func(seed int64, a, b uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4
		e := randomExecution(r, n)
		p := LKPoint{L: 1 + int(a)%n, K: 1 + int(a)%n + int(b)%2}
		q := LKPoint{L: 1 + int(b)%n, K: 1 + int(b)%n + int(a)%2}
		if p.K > n || q.K > n {
			return true
		}
		holdsP := (liveness.LK{L: p.L, K: p.K, Good: good}).Holds(e)
		holdsQ := (liveness.LK{L: q.L, K: q.K, Good: good}).Holds(e)
		if p.StrongerEq(q) && holdsP && !holdsQ {
			t.Logf("order violated: %v holds but weaker %v fails on N=%d steps=%v H=%s",
				p, q, e.N, e.StepProcs, e.H)
			return false
		}
		if q.StrongerEq(p) && holdsQ && !holdsP {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLKLiteralOrderSemantics: the same monotonicity holds for the
// literal Definition 5.1 reading.
func TestQuickLKLiteralOrderSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64, a, b uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3
		e := randomExecution(r, n)
		p := LKPoint{L: 1 + int(a)%n, K: 1 + int(a)%n + int(b)%2}
		q := LKPoint{L: 1 + int(b)%n, K: 1 + int(b)%n + int(a)%2}
		if p.K > n || q.K > n || !p.StrongerEq(q) {
			return true
		}
		holdsP := (liveness.LKLiteral{L: p.L, K: p.K}).Holds(e)
		holdsQ := (liveness.LKLiteral{L: q.L, K: q.K}).Holds(e)
		return !holdsP || holdsQ
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTheorem44TwoImplSweep widens the exhaustive Theorem 4.4 verification
// to models with two implementations.
func TestTheorem44TwoImplSweep(t *testing.T) {
	u := 3
	all := uint32(1)<<uint(u) - 1
	for lmax := uint32(1); lmax <= all; lmax++ {
		for f1 := uint32(1); f1 <= all; f1++ {
			for f2 := f1; f2 <= all; f2++ {
				m := &FiniteModel{U: u, Lmax: lmax, Impls: []uint32{f1, f2}}
				r, err := m.CheckTheorem44()
				if err != nil {
					t.Fatal(err)
				}
				if !r.Agrees {
					t.Fatalf("Theorem 4.4 fails on Lmax=%b f1=%b f2=%b: %+v", lmax, f1, f2, r)
				}
				if !r.WeakestIsGmaxComplement {
					t.Fatalf("weakest != complement(Gmax) on Lmax=%b f1=%b f2=%b", lmax, f1, f2)
				}
			}
		}
	}
}
