// Package core is the paper's primary contribution mechanized: the
// safety-liveness exclusion machinery.
//
// It provides:
//
//   - the (l,k)-freedom lattice with its partial order, the classification
//     of the (l,k) plane against implementation batteries (regenerating
//     Figure 1), and the extraction of strongest-implementable /
//     weakest-non-implementable points (Theorems 5.2, 5.3 and the Section
//     5.3 counterexample);
//   - adversary sets (Definition 4.3) over finitely generated history
//     sets, with intersections and the G_max of Theorem 4.4 (Corollaries
//     4.5 and 4.6);
//   - a finite abstract model on which Theorem 4.4 itself is verified by
//     brute force (both directions of the iff);
//   - the Theorem 4.9 engine over the I/O-automata models of the trivial
//     implementations I_t and I_b.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// LKPoint is a point (l,k) of the (l,k)-freedom plane, 1 <= l <= k <= n.
type LKPoint struct {
	L, K int
}

// String renders the point as "(l,k)".
func (p LKPoint) String() string { return fmt.Sprintf("(%d,%d)", p.L, p.K) }

// Valid reports whether the point satisfies 1 <= l <= k.
func (p LKPoint) Valid() bool { return 1 <= p.L && p.L <= p.K }

// StrongerEq reports whether p is at least as strong as q: an
// implementation ensuring (p.L,p.K)-freedom ensures (q.L,q.K)-freedom. The
// order is componentwise: LF_l shrinks as l grows and OF_k shrinks as k
// grows, so LF_{l1} ∪ OF_{k1} ⊆ LF_{l2} ∪ OF_{k2} iff l1 >= l2 and
// k1 >= k2 (Figure 1's "the more to the right and the higher, the
// stronger").
func (p LKPoint) StrongerEq(q LKPoint) bool { return p.L >= q.L && p.K >= q.K }

// Comparable reports whether p and q are ordered either way.
func (p LKPoint) Comparable(q LKPoint) bool {
	return p.StrongerEq(q) || q.StrongerEq(p)
}

// Plane enumerates all valid points with k <= n, in (k, l) order.
func Plane(n int) []LKPoint {
	var out []LKPoint
	for k := 1; k <= n; k++ {
		for l := 1; l <= k; l++ {
			out = append(out, LKPoint{L: l, K: k})
		}
	}
	return out
}

// PointClass is the Figure 1 color of a point.
type PointClass int

// Point classes. White marks properties that do not exclude the safety
// property (implementable together with it); black marks properties that
// do.
const (
	White PointClass = iota + 1
	Black
)

// String names the class.
func (c PointClass) String() string {
	switch c {
	case White:
		return "white"
	case Black:
		return "black"
	default:
		return fmt.Sprintf("PointClass(%d)", int(c))
	}
}

// PointInfo is the classification of one point with its evidence.
type PointInfo struct {
	Point LKPoint
	Class PointClass
	// Witness names the implementation whose battery certifies a white
	// point, or the battery run that violates the property for a black
	// point.
	Witness string
}

// PlaneClassification is the result of classifying the whole plane.
type PlaneClassification struct {
	// N is the plane bound.
	N int
	// SafetyName names the safety property S of the panel.
	SafetyName string
	// Points maps each valid (l,k) to its classification.
	Points map[LKPoint]PointInfo
}

// Class returns the class of a point.
func (pc *PlaneClassification) Class(p LKPoint) PointClass {
	return pc.Points[p].Class
}

// Whites returns the white points, sorted.
func (pc *PlaneClassification) Whites() []LKPoint { return pc.ofClass(White) }

// Blacks returns the black points, sorted.
func (pc *PlaneClassification) Blacks() []LKPoint { return pc.ofClass(Black) }

func (pc *PlaneClassification) ofClass(c PointClass) []LKPoint {
	var out []LKPoint
	for _, p := range Plane(pc.N) {
		if pc.Points[p].Class == c {
			out = append(out, p)
		}
	}
	return out
}

// MaximalWhites returns the maximal elements of the white set: white points
// with no strictly stronger white point. A unique maximal white point is
// the strongest implementable (l,k)-freedom property.
func (pc *PlaneClassification) MaximalWhites() []LKPoint {
	return maximal(pc.Whites())
}

// MinimalBlacks returns the minimal elements of the black set: black points
// with no strictly weaker black point. A unique minimal black point is the
// weakest non-implementable (l,k)-freedom property.
func (pc *PlaneClassification) MinimalBlacks() []LKPoint {
	return minimal(pc.Blacks())
}

// StrongestImplementable returns the unique strongest white point, if one
// exists (ok=false when the maximal whites are not a singleton, the
// Section 5.3 situation on the black side).
func (pc *PlaneClassification) StrongestImplementable() (LKPoint, bool) {
	m := pc.MaximalWhites()
	if len(m) == 1 {
		return m[0], true
	}
	return LKPoint{}, false
}

// WeakestNonImplementable returns the unique weakest black point, if one
// exists.
func (pc *PlaneClassification) WeakestNonImplementable() (LKPoint, bool) {
	m := pc.MinimalBlacks()
	if len(m) == 1 {
		return m[0], true
	}
	return LKPoint{}, false
}

// Monotone checks the classification for order consistency: every point
// stronger than a black point is black, and every point weaker than a white
// point is white. A violation means the battery evidence is inconsistent.
func (pc *PlaneClassification) Monotone() error {
	pts := Plane(pc.N)
	for _, p := range pts {
		for _, q := range pts {
			if p.StrongerEq(q) && pc.Class(q) == Black && pc.Class(p) == White {
				return fmt.Errorf("core: %v is white but weaker %v is black", p, q)
			}
		}
	}
	return nil
}

// Render draws the plane as ASCII art in the layout of Figure 1: k grows to
// the right, l grows upward; o = white (does not exclude S), x = black
// (excludes S), . = invalid (l > k).
func (pc *PlaneClassification) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "S = %s (n = %d)\n", pc.SafetyName, pc.N)
	for l := pc.N; l >= 1; l-- {
		fmt.Fprintf(&b, "l=%d ", l)
		for k := 1; k <= pc.N; k++ {
			switch {
			case l > k:
				b.WriteString(" .")
			case pc.Class(LKPoint{L: l, K: k}) == White:
				b.WriteString(" o")
			default:
				b.WriteString(" x")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("    ")
	for k := 1; k <= pc.N; k++ {
		fmt.Fprintf(&b, "k%d", k)
	}
	b.WriteString("\n")
	return b.String()
}

func maximal(pts []LKPoint) []LKPoint {
	var out []LKPoint
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q != p && q.StrongerEq(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sortPoints(out)
	return out
}

func minimal(pts []LKPoint) []LKPoint {
	var out []LKPoint
	for _, p := range pts {
		dominates := false
		for _, q := range pts {
			if q != p && p.StrongerEq(q) {
				dominates = true
				break
			}
		}
		if !dominates {
			out = append(out, p)
		}
	}
	sortPoints(out)
	return out
}

func sortPoints(pts []LKPoint) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].K != pts[j].K {
			return pts[i].K < pts[j].K
		}
		return pts[i].L < pts[j].L
	})
}
