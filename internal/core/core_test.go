package core

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/history"
	"repro/internal/safety"
	"repro/internal/tm"
)

func TestFigure1aConsensusPlane(t *testing.T) {
	pc, err := Figure1a(4)
	if err != nil {
		t.Fatalf("classification failed: %v", err)
	}
	if err := pc.Monotone(); err != nil {
		t.Fatalf("classification inconsistent: %v", err)
	}
	// The paper's panel (a): (1,1) is the only white point.
	whites := pc.Whites()
	if len(whites) != 1 || whites[0] != (LKPoint{1, 1}) {
		t.Fatalf("whites = %v, want exactly [(1,1)]\n%s", whites, pc.Render())
	}
	s, ok := pc.StrongestImplementable()
	if !ok || s != (LKPoint{1, 1}) {
		t.Errorf("strongest implementable = %v, %v; want (1,1)", s, ok)
	}
	w, ok := pc.WeakestNonImplementable()
	if !ok || w != (LKPoint{1, 2}) {
		t.Errorf("weakest non-implementable = %v, %v; want (1,2)", w, ok)
	}
}

func TestFigure1bTMPlane(t *testing.T) {
	pc := Figure1b(4)
	if err := pc.Monotone(); err != nil {
		t.Fatalf("classification inconsistent: %v", err)
	}
	// The paper's panel (b): the l=1 column is white, everything else
	// black.
	for _, p := range Plane(4) {
		want := Black
		if p.L == 1 {
			want = White
		}
		if got := pc.Class(p); got != want {
			t.Errorf("%v classified %v, want %v\n%s", p, got, want, pc.Render())
		}
	}
	s, ok := pc.StrongestImplementable()
	if !ok || s != (LKPoint{1, 4}) {
		t.Errorf("strongest implementable = %v, %v; want (1,n)=(1,4)", s, ok)
	}
	w, ok := pc.WeakestNonImplementable()
	if !ok || w != (LKPoint{2, 2}) {
		t.Errorf("weakest non-implementable = %v, %v; want (2,2)", w, ok)
	}
	// Theorem 5.3's remark: the two are incomparable.
	if s.Comparable(w) {
		t.Error("(1,n) and (2,2) must be incomparable")
	}
}

func TestSection53NoWeakest(t *testing.T) {
	pc := Section53Plane(4)
	if err := pc.Monotone(); err != nil {
		t.Fatalf("classification inconsistent: %v", err)
	}
	// Against property S, I12 certifies (1,1) and (1,2); (2,2) and (1,3)
	// are both black and minimal: no weakest excluding (l,k)-freedom.
	s, ok := pc.StrongestImplementable()
	if !ok || s != (LKPoint{1, 2}) {
		t.Errorf("strongest implementable = %v, %v; want (1,2)", s, ok)
	}
	mb := pc.MinimalBlacks()
	if len(mb) != 2 {
		t.Fatalf("minimal blacks = %v, want the incomparable pair\n%s", mb, pc.Render())
	}
	if mb[0] != (LKPoint{2, 2}) || mb[1] != (LKPoint{1, 3}) {
		t.Errorf("minimal blacks = %v, want [(2,2) (1,3)]", mb)
	}
	if _, ok := pc.WeakestNonImplementable(); ok {
		t.Error("no unique weakest non-implementable point may exist")
	}
}

func TestCorollary45GmaxEmpty(t *testing.T) {
	f1 := NewHistorySet("F1", adversary.ConsensusF1(0, 1)...)
	f2 := NewHistorySet("F2", adversary.ConsensusF2(0, 1)...)
	if f1.Len() != 6 || f2.Len() != 6 {
		t.Fatalf("|F1|=%d |F2|=%d", f1.Len(), f2.Len())
	}
	// Definition 4.3 condition (2) on the finite representation: every
	// history leaves a correct process pending, violating L_max.
	if !f1.PendingCorrectSomewhere() || !f2.PendingCorrectSomewhere() {
		t.Error("adversary-set histories must violate wait-freedom")
	}
	g := Gmax(f1, f2)
	if !g.Empty() {
		t.Fatalf("G_max must be empty, got %d histories", g.Len())
	}
}

func TestCorollary46TMGmaxEmpty(t *testing.T) {
	// Generate the two TM adversary sets by unrolling the strategies
	// against the I12 implementation at several horizons and taking the
	// run histories. Disjointness follows from the first event (start_1
	// vs start_2).
	runs1 := tmStarveHistories(t, 1, 2)
	runs2 := tmStarveHistories(t, 2, 1)
	f1 := NewHistorySet("TM-F1", runs1...)
	f2 := NewHistorySet("TM-F2", runs2...)
	if f1.Len() == 0 || f2.Len() == 0 {
		t.Fatal("empty adversary sets")
	}
	if !Gmax(f1, f2).Empty() {
		t.Fatal("the swapped TM adversary sets must be disjoint")
	}
}

func tmStarveHistories(t *testing.T, victim, helper int) []history.History {
	t.Helper()
	var out []history.History
	for _, steps := range []int{120, 240, 360} {
		adv := adversary.NewTMStarve(victim, helper)
		res := adv.Attack(tm.NewI12(2), 2, steps)
		if res.Err != nil {
			t.Fatalf("attack: %v", res.Err)
		}
		out = append(out, res.H)
	}
	return out
}

func TestBatteriesAreFair(t *testing.T) {
	// Liveness verdicts are only meaningful on fair runs; every battery
	// run must be fair in the windowed sense.
	cb, err := ConsensusBattery(3)
	if err != nil {
		t.Fatal(err)
	}
	batteries := append(TMOpacityBatteries(3), cb)
	for _, b := range batteries {
		if err := b.Validate(); err != nil {
			t.Errorf("battery fairness: %v", err)
		}
	}
}

func TestKSetCorollaryGmaxEmpty(t *testing.T) {
	// The paper's Section 1 remark applied: the swapped k-set adversary
	// sets are disjoint, so no weakest liveness excludes k-set agreement
	// either.
	values := []history.Value{10, 20, 30}
	f1 := NewHistorySet("kset-F1", adversary.KSetF1(2, values)...)
	f2 := NewHistorySet("kset-F2", adversary.KSetF2(2, values)...)
	if f1.Len() == 0 || f2.Len() == 0 {
		t.Fatal("empty k-set adversary sets")
	}
	for _, h := range f1.Histories() {
		if !(safety.KSetAgreement{K: 2}).Holds(h) {
			t.Fatalf("F1 history must satisfy 2-set agreement: %s", h)
		}
	}
	if !f1.PendingCorrectSomewhere() || !f2.PendingCorrectSomewhere() {
		t.Error("k-set adversary histories must violate L_max")
	}
	if !Gmax(f1, f2).Empty() {
		t.Fatal("the swapped k-set adversary sets must be disjoint")
	}
}

func TestHistorySetOps(t *testing.T) {
	h1 := history.History{history.Invoke(1, "propose", 0)}
	h2 := history.History{history.Invoke(2, "propose", 0)}
	a := NewHistorySet("a", h1, h2, h1)
	if a.Len() != 2 {
		t.Errorf("duplicates must collapse: %d", a.Len())
	}
	b := NewHistorySet("b", h2)
	i := Intersect(a, b)
	if i.Len() != 1 || !i.Contains(h2) || i.Contains(h1) {
		t.Errorf("intersection wrong: %v", i.Histories())
	}
	if Gmax(a, b).Len() != 1 {
		t.Error("Gmax of two sets is their intersection")
	}
	if Gmax().Len() != 0 {
		t.Error("empty family yields empty Gmax")
	}
}

func TestTheorem44OnFiniteModels(t *testing.T) {
	t.Run("weakest exists", func(t *testing.T) {
		r, err := ModelWithWeakest().CheckTheorem44()
		if err != nil {
			t.Fatal(err)
		}
		if !r.WeakestExists {
			t.Error("a weakest excluding property must exist")
		}
		if !r.GmaxIsAdversary {
			t.Error("G_max must be an adversary set")
		}
		if !r.Agrees {
			t.Error("both sides of the iff must agree")
		}
		if !r.WeakestIsGmaxComplement {
			t.Errorf("weakest %b must be the complement of Gmax %b", r.Weakest, r.Gmax)
		}
	})
	t.Run("no weakest (corollary shape)", func(t *testing.T) {
		r, err := ModelWithoutWeakest().CheckTheorem44()
		if err != nil {
			t.Fatal(err)
		}
		if r.WeakestExists {
			t.Error("no weakest excluding property may exist")
		}
		if r.GmaxIsAdversary {
			t.Error("G_max must fail to be an adversary set")
		}
		if !r.Agrees {
			t.Error("both sides of the iff must agree")
		}
	})
	t.Run("exhaustive random models", func(t *testing.T) {
		// Theorem 4.4 must hold on every finite model: sweep a family of
		// small models exhaustively.
		for u := 2; u <= 4; u++ {
			all := uint32(1)<<uint(u) - 1
			for lmax := uint32(1); lmax <= all; lmax++ {
				for f1 := uint32(1); f1 <= all; f1++ {
					m := &FiniteModel{U: u, Lmax: lmax, Impls: []uint32{f1}}
					r, err := m.CheckTheorem44()
					if err != nil {
						t.Fatal(err)
					}
					if !r.Agrees {
						t.Fatalf("Theorem 4.4 fails on U=%d Lmax=%b fair=%b: %+v", u, lmax, f1, r)
					}
					if !r.WeakestIsGmaxComplement {
						t.Fatalf("weakest != complement(Gmax) on U=%d Lmax=%b fair=%b", u, lmax, f1)
					}
				}
			}
		}
	})
}

func TestTheorem49(t *testing.T) {
	r, err := CheckTheorem49(5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Holds() {
		t.Fatalf("Theorem 4.9 proof steps failed:\n%s", r)
	}
}

func TestFiniteModelValidate(t *testing.T) {
	bad := &FiniteModel{U: 25}
	if err := bad.Validate(); err == nil {
		t.Error("oversized universe must be rejected")
	}
	outside := &FiniteModel{U: 2, Lmax: 1 << 3}
	if err := outside.Validate(); err == nil {
		t.Error("Lmax outside universe must be rejected")
	}
}
